# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-check
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build-check/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build-check/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build-check/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build-check/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
add_test(hamming_test "/root/repo/build-check/hamming_test")
set_tests_properties(hamming_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
add_test(join_test "/root/repo/build-check/join_test")
set_tests_properties(join_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
add_test(lp_test "/root/repo/build-check/lp_test")
set_tests_properties(lp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
add_test(matmul_test "/root/repo/build-check/matmul_test")
set_tests_properties(matmul_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
add_test(mutation_test "/root/repo/build-check/mutation_test")
set_tests_properties(mutation_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build-check/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;38;add_test;/root/repo/CMakeLists.txt;0;")
