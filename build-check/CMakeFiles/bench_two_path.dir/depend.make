# Empty dependencies file for bench_two_path.
# This may be replaced when dependencies are built.
