file(REMOVE_RECURSE
  "CMakeFiles/bench_two_path.dir/bench/bench_two_path.cc.o"
  "CMakeFiles/bench_two_path.dir/bench/bench_two_path.cc.o.d"
  "bench_two_path"
  "bench_two_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
