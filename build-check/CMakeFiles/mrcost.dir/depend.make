# Empty dependencies file for mrcost.
# This may be replaced when dependencies are built.
