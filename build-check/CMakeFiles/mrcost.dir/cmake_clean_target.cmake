file(REMOVE_RECURSE
  "libmrcost.a"
)
