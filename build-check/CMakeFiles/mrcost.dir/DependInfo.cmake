
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/combinatorics.cc" "CMakeFiles/mrcost.dir/src/common/combinatorics.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/common/combinatorics.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/mrcost.dir/src/common/random.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/mrcost.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/mrcost.dir/src/common/status.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/mrcost.dir/src/common/table.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/common/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/mrcost.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "CMakeFiles/mrcost.dir/src/core/cost_model.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/core/cost_model.cc.o.d"
  "/root/repo/src/core/lower_bound.cc" "CMakeFiles/mrcost.dir/src/core/lower_bound.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/core/lower_bound.cc.o.d"
  "/root/repo/src/core/presence.cc" "CMakeFiles/mrcost.dir/src/core/presence.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/core/presence.cc.o.d"
  "/root/repo/src/core/schema_stats.cc" "CMakeFiles/mrcost.dir/src/core/schema_stats.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/core/schema_stats.cc.o.d"
  "/root/repo/src/core/schema_validator.cc" "CMakeFiles/mrcost.dir/src/core/schema_validator.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/core/schema_validator.cc.o.d"
  "/root/repo/src/core/tradeoff.cc" "CMakeFiles/mrcost.dir/src/core/tradeoff.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/core/tradeoff.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "CMakeFiles/mrcost.dir/src/engine/metrics.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/engine/metrics.cc.o.d"
  "/root/repo/src/engine/pipeline.cc" "CMakeFiles/mrcost.dir/src/engine/pipeline.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/engine/pipeline.cc.o.d"
  "/root/repo/src/engine/shuffle.cc" "CMakeFiles/mrcost.dir/src/engine/shuffle.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/engine/shuffle.cc.o.d"
  "/root/repo/src/engine/simulator.cc" "CMakeFiles/mrcost.dir/src/engine/simulator.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/engine/simulator.cc.o.d"
  "/root/repo/src/graph/alon.cc" "CMakeFiles/mrcost.dir/src/graph/alon.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/graph/alon.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/mrcost.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/mrcost.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/problem.cc" "CMakeFiles/mrcost.dir/src/graph/problem.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/graph/problem.cc.o.d"
  "/root/repo/src/graph/sample_graph_mr.cc" "CMakeFiles/mrcost.dir/src/graph/sample_graph_mr.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/graph/sample_graph_mr.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "CMakeFiles/mrcost.dir/src/graph/subgraph.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/graph/subgraph.cc.o.d"
  "/root/repo/src/graph/triangle.cc" "CMakeFiles/mrcost.dir/src/graph/triangle.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/graph/triangle.cc.o.d"
  "/root/repo/src/graph/two_path.cc" "CMakeFiles/mrcost.dir/src/graph/two_path.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/graph/two_path.cc.o.d"
  "/root/repo/src/hamming/bitstring.cc" "CMakeFiles/mrcost.dir/src/hamming/bitstring.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/hamming/bitstring.cc.o.d"
  "/root/repo/src/hamming/bounds.cc" "CMakeFiles/mrcost.dir/src/hamming/bounds.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/hamming/bounds.cc.o.d"
  "/root/repo/src/hamming/coverage.cc" "CMakeFiles/mrcost.dir/src/hamming/coverage.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/hamming/coverage.cc.o.d"
  "/root/repo/src/hamming/problem.cc" "CMakeFiles/mrcost.dir/src/hamming/problem.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/hamming/problem.cc.o.d"
  "/root/repo/src/hamming/schemas.cc" "CMakeFiles/mrcost.dir/src/hamming/schemas.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/hamming/schemas.cc.o.d"
  "/root/repo/src/hamming/similarity_join.cc" "CMakeFiles/mrcost.dir/src/hamming/similarity_join.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/hamming/similarity_join.cc.o.d"
  "/root/repo/src/join/aggregate.cc" "CMakeFiles/mrcost.dir/src/join/aggregate.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/aggregate.cc.o.d"
  "/root/repo/src/join/edge_cover.cc" "CMakeFiles/mrcost.dir/src/join/edge_cover.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/edge_cover.cc.o.d"
  "/root/repo/src/join/generators.cc" "CMakeFiles/mrcost.dir/src/join/generators.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/generators.cc.o.d"
  "/root/repo/src/join/hypercube.cc" "CMakeFiles/mrcost.dir/src/join/hypercube.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/hypercube.cc.o.d"
  "/root/repo/src/join/problem.cc" "CMakeFiles/mrcost.dir/src/join/problem.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/problem.cc.o.d"
  "/root/repo/src/join/query.cc" "CMakeFiles/mrcost.dir/src/join/query.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/query.cc.o.d"
  "/root/repo/src/join/serial_join.cc" "CMakeFiles/mrcost.dir/src/join/serial_join.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/serial_join.cc.o.d"
  "/root/repo/src/join/shares.cc" "CMakeFiles/mrcost.dir/src/join/shares.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/shares.cc.o.d"
  "/root/repo/src/join/simplex.cc" "CMakeFiles/mrcost.dir/src/join/simplex.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/simplex.cc.o.d"
  "/root/repo/src/join/two_round.cc" "CMakeFiles/mrcost.dir/src/join/two_round.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/join/two_round.cc.o.d"
  "/root/repo/src/matmul/matrix.cc" "CMakeFiles/mrcost.dir/src/matmul/matrix.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/matmul/matrix.cc.o.d"
  "/root/repo/src/matmul/mr_multiply.cc" "CMakeFiles/mrcost.dir/src/matmul/mr_multiply.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/matmul/mr_multiply.cc.o.d"
  "/root/repo/src/matmul/problem.cc" "CMakeFiles/mrcost.dir/src/matmul/problem.cc.o" "gcc" "CMakeFiles/mrcost.dir/src/matmul/problem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
