# Empty dependencies file for example_skewed_cluster.
# This may be replaced when dependencies are built.
