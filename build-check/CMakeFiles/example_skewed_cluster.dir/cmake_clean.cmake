file(REMOVE_RECURSE
  "CMakeFiles/example_skewed_cluster.dir/examples/skewed_cluster.cpp.o"
  "CMakeFiles/example_skewed_cluster.dir/examples/skewed_cluster.cpp.o.d"
  "example_skewed_cluster"
  "example_skewed_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_skewed_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
