# Empty dependencies file for bench_hamming_weight.
# This may be replaced when dependencies are built.
