file(REMOVE_RECURSE
  "CMakeFiles/bench_hamming_weight.dir/bench/bench_hamming_weight.cc.o"
  "CMakeFiles/bench_hamming_weight.dir/bench/bench_hamming_weight.cc.o.d"
  "bench_hamming_weight"
  "bench_hamming_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hamming_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
