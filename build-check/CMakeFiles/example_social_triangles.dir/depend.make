# Empty dependencies file for example_social_triangles.
# This may be replaced when dependencies are built.
