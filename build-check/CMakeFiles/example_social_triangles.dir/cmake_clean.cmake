file(REMOVE_RECURSE
  "CMakeFiles/example_social_triangles.dir/examples/social_triangles.cpp.o"
  "CMakeFiles/example_social_triangles.dir/examples/social_triangles.cpp.o.d"
  "example_social_triangles"
  "example_social_triangles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
