file(REMOVE_RECURSE
  "CMakeFiles/bench_model.dir/bench/bench_model.cc.o"
  "CMakeFiles/bench_model.dir/bench/bench_model.cc.o.d"
  "bench_model"
  "bench_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
