# Empty dependencies file for bench_model.
# This may be replaced when dependencies are built.
