file(REMOVE_RECURSE
  "CMakeFiles/bench_matmul.dir/bench/bench_matmul.cc.o"
  "CMakeFiles/bench_matmul.dir/bench/bench_matmul.cc.o.d"
  "bench_matmul"
  "bench_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
