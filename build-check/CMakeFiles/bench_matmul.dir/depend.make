# Empty dependencies file for bench_matmul.
# This may be replaced when dependencies are built.
