file(REMOVE_RECURSE
  "CMakeFiles/example_join_optimizer.dir/examples/join_optimizer.cpp.o"
  "CMakeFiles/example_join_optimizer.dir/examples/join_optimizer.cpp.o.d"
  "example_join_optimizer"
  "example_join_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_join_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
