# Empty dependencies file for example_join_optimizer.
# This may be replaced when dependencies are built.
