# Empty dependencies file for example_matrix_pipeline.
# This may be replaced when dependencies are built.
