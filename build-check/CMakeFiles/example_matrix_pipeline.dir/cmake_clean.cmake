file(REMOVE_RECURSE
  "CMakeFiles/example_matrix_pipeline.dir/examples/matrix_pipeline.cpp.o"
  "CMakeFiles/example_matrix_pipeline.dir/examples/matrix_pipeline.cpp.o.d"
  "example_matrix_pipeline"
  "example_matrix_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matrix_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
