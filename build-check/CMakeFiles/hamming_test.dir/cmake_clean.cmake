file(REMOVE_RECURSE
  "CMakeFiles/hamming_test.dir/tests/hamming_test.cc.o"
  "CMakeFiles/hamming_test.dir/tests/hamming_test.cc.o.d"
  "hamming_test"
  "hamming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
