file(REMOVE_RECURSE
  "CMakeFiles/example_similarity_join.dir/examples/similarity_join.cpp.o"
  "CMakeFiles/example_similarity_join.dir/examples/similarity_join.cpp.o.d"
  "example_similarity_join"
  "example_similarity_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_similarity_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
