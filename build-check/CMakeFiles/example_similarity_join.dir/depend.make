# Empty dependencies file for example_similarity_join.
# This may be replaced when dependencies are built.
