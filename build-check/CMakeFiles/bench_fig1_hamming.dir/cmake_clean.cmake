file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_hamming.dir/bench/bench_fig1_hamming.cc.o"
  "CMakeFiles/bench_fig1_hamming.dir/bench/bench_fig1_hamming.cc.o.d"
  "bench_fig1_hamming"
  "bench_fig1_hamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
