# Empty dependencies file for bench_fig1_hamming.
# This may be replaced when dependencies are built.
