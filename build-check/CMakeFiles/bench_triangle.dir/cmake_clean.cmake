file(REMOVE_RECURSE
  "CMakeFiles/bench_triangle.dir/bench/bench_triangle.cc.o"
  "CMakeFiles/bench_triangle.dir/bench/bench_triangle.cc.o.d"
  "bench_triangle"
  "bench_triangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
