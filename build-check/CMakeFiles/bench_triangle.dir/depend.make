# Empty dependencies file for bench_triangle.
# This may be replaced when dependencies are built.
