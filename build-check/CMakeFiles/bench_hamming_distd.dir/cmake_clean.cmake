file(REMOVE_RECURSE
  "CMakeFiles/bench_hamming_distd.dir/bench/bench_hamming_distd.cc.o"
  "CMakeFiles/bench_hamming_distd.dir/bench/bench_hamming_distd.cc.o.d"
  "bench_hamming_distd"
  "bench_hamming_distd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hamming_distd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
