# Empty dependencies file for bench_hamming_distd.
# This may be replaced when dependencies are built.
