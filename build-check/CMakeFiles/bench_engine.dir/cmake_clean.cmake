file(REMOVE_RECURSE
  "CMakeFiles/bench_engine.dir/bench/bench_engine.cc.o"
  "CMakeFiles/bench_engine.dir/bench/bench_engine.cc.o.d"
  "bench_engine"
  "bench_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
