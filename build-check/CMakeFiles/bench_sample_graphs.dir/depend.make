# Empty dependencies file for bench_sample_graphs.
# This may be replaced when dependencies are built.
