file(REMOVE_RECURSE
  "CMakeFiles/bench_sample_graphs.dir/bench/bench_sample_graphs.cc.o"
  "CMakeFiles/bench_sample_graphs.dir/bench/bench_sample_graphs.cc.o.d"
  "bench_sample_graphs"
  "bench_sample_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sample_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
