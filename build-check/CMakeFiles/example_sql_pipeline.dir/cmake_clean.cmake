file(REMOVE_RECURSE
  "CMakeFiles/example_sql_pipeline.dir/examples/sql_pipeline.cpp.o"
  "CMakeFiles/example_sql_pipeline.dir/examples/sql_pipeline.cpp.o.d"
  "example_sql_pipeline"
  "example_sql_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sql_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
