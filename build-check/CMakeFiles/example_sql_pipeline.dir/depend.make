# Empty dependencies file for example_sql_pipeline.
# This may be replaced when dependencies are built.
