// The mrcost-worker binary: one process per distributed worker, spawned by
// dist::Coordinator with its end of a socketpair on a fixed fd. All real
// logic lives in src/dist/worker.cc so tests can drive RunWorker directly.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/dist/worker.h"

int main(int argc, char** argv) {
  int fd = 3;  // the coordinator dup2s the socket here before exec
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fd=", 5) == 0) {
      fd = std::atoi(argv[i] + 5);
    } else {
      std::fprintf(stderr, "mrcost-worker: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return mrcost::dist::RunWorker(fd);
}
