// The stage-graph execution core (src/engine/executor.h): dependency
// scheduling on the shared ThreadPool, the staged round's determinism
// across strategies/threads/shards (byte-identical to the serial
// reference), the per-stage timing metrics, and the bounded AsyncRunner
// behind ExecuteAsync.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/engine/executor.h"
#include "src/engine/job.h"

namespace mrcost::engine {
namespace {

// ------------------------------------------------------- task scheduling

TEST(StageGraphExecutor, RunsTasksInDependencyOrder) {
  common::ThreadPool pool(4);
  StageGraphExecutor exec(pool);
  std::atomic<int> stage{0};
  std::vector<int> observed(3, -1);

  const auto a = exec.AddTask(StageKind::kMap, 0, {}, [&] {
    observed[0] = stage.fetch_add(1);
  });
  const auto b = exec.AddTask(StageKind::kShuffle, 0, {a}, [&] {
    observed[1] = stage.fetch_add(1);
  });
  exec.AddTask(StageKind::kReduce, 0, {b}, [&] {
    observed[2] = stage.fetch_add(1);
  });
  exec.Wait();
  EXPECT_EQ(observed[0], 0);
  EXPECT_EQ(observed[1], 1);
  EXPECT_EQ(observed[2], 2);
}

TEST(StageGraphExecutor, DiamondJoinWaitsForAllDependencies) {
  common::ThreadPool pool(4);
  StageGraphExecutor exec(pool);
  std::atomic<int> sources_done{0};
  bool join_saw_both = false;

  const auto a = exec.AddTask(StageKind::kMap, 0, {}, [&] {
    ++sources_done;
  });
  const auto b = exec.AddTask(StageKind::kMap, 0, {}, [&] {
    ++sources_done;
  });
  exec.AddTask(StageKind::kShuffle, 0, {a, b}, [&] {
    join_saw_both = sources_done.load() == 2;
  });
  exec.Wait();
  EXPECT_TRUE(join_saw_both);
}

TEST(StageGraphExecutor, TasksAddedAgainstCompletedDepsStillRun) {
  // The plan driver stages round k+1 after round k's tasks may already
  // have drained; deps on finished tasks must count as satisfied.
  common::ThreadPool pool(2);
  StageGraphExecutor exec(pool);
  const auto a = exec.AddTask(StageKind::kMap, 0, {}, [] {});
  exec.Wait();
  bool ran = false;
  exec.AddTask(StageKind::kReduce, 1, {a, StageGraphExecutor::kNoTask},
               [&] { ran = true; });
  exec.Wait();
  EXPECT_TRUE(ran);
}

TEST(StageGraphExecutor, RecordsSpansForEveryTask) {
  common::ThreadPool pool(2);
  StageGraphExecutor exec(pool);
  const auto a = exec.AddTask(StageKind::kMap, 7, {}, [] {
    volatile int sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  });
  exec.Wait();
  const TaskSpan span = exec.SpanOf(a);
  EXPECT_GE(span.end_ms, span.begin_ms);
  const auto records = exec.SnapshotRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].round_tag, 7u);
  EXPECT_EQ(records[0].kind, StageKind::kMap);
}

// ------------------------------------------------ staged-round semantics

/// Order-sensitive fold so any grouping or ordering deviation from the
/// serial reference changes the output bytes.
struct FoldJob {
  static void Map(const std::uint64_t& x,
                  Emitter<std::uint64_t, std::uint64_t>& emitter) {
    emitter.Emit(x % 193, x);
    emitter.Emit(x % 677, x * 3 + 1);
  }
  static void Reduce(const std::uint64_t& key,
                     const std::vector<std::uint64_t>& values,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                         out) {
    std::uint64_t acc = key;
    for (std::uint64_t v : values) acc = acc * 1099511628211ULL + v;
    out.emplace_back(key, acc);
  }
};

TEST(StagedRound, ByteIdenticalAcrossStrategiesThreadsAndShards) {
  std::vector<std::uint64_t> inputs(20000);
  std::iota(inputs.begin(), inputs.end(), 0);

  JobOptions serial;
  serial.num_threads = 1;
  serial.shuffle.strategy = ShuffleStrategy::kSerial;
  const auto reference =
      RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                   std::pair<std::uint64_t, std::uint64_t>>(
          inputs, FoldJob::Map, FoldJob::Reduce, serial);

  for (std::size_t threads : {1u, 2u, 4u}) {
    for (std::size_t shards : {0u, 1u, 3u, 8u}) {
      for (ShuffleStrategy strategy :
           {ShuffleStrategy::kSerial, ShuffleStrategy::kSharded,
            ShuffleStrategy::kExternal}) {
        JobOptions options;
        options.num_threads = threads;
        options.num_shards = shards;
        options.shuffle.strategy = strategy;
        if (strategy == ShuffleStrategy::kExternal) {
          options.shuffle.memory_budget_bytes = 1 << 12;
        }
        const auto run =
            RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::pair<std::uint64_t, std::uint64_t>>(
                inputs, FoldJob::Map, FoldJob::Reduce, options);
        EXPECT_EQ(run.outputs, reference.outputs)
            << "threads=" << threads << " shards=" << shards
            << " strategy=" << ToString(strategy);
        EXPECT_EQ(run.metrics.pairs_shuffled,
                  reference.metrics.pairs_shuffled);
        EXPECT_EQ(run.metrics.num_reducers, reference.metrics.num_reducers);
        EXPECT_EQ(run.metrics.max_reducer_input,
                  reference.metrics.max_reducer_input);
      }
    }
  }
}

TEST(StagedRound, ReportsStageTimings) {
  std::vector<std::uint64_t> inputs(30000);
  std::iota(inputs.begin(), inputs.end(), 0);
  JobOptions options;
  options.num_threads = 4;
  options.num_shards = 4;
  options.shuffle.strategy = ShuffleStrategy::kSharded;
  const auto run =
      RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                   std::pair<std::uint64_t, std::uint64_t>>(
          inputs, FoldJob::Map, FoldJob::Reduce, options);
  const JobMetrics& m = run.metrics;
  EXPECT_TRUE(m.timed());
  EXPECT_GT(m.span_ms, 0.0);
  EXPECT_GT(m.map_ms, 0.0);
  EXPECT_GT(m.shuffle_ms, 0.0);
  EXPECT_GT(m.reduce_ms, 0.0);
  EXPECT_GE(m.barrier_wait_ms, 0.0);
  EXPECT_GE(m.overlap_fraction(), 0.0);
  EXPECT_LE(m.overlap_fraction(), 2.0);  // two adjacent-stage pairs
}

TEST(StagedRound, EmptyInputProducesEmptyTimedRound) {
  std::vector<std::uint64_t> inputs;
  const auto run =
      RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                   std::pair<std::uint64_t, std::uint64_t>>(
          inputs, FoldJob::Map, FoldJob::Reduce, {});
  EXPECT_TRUE(run.outputs.empty());
  EXPECT_EQ(run.metrics.num_inputs, 0u);
  EXPECT_EQ(run.metrics.num_reducers, 0u);
}

TEST(StagedRound, SimulationIdenticalAcrossSchedules) {
  // Simulation reports are a pure function of the (deterministic) shuffle
  // result, so the staged executor must reproduce them for every thread
  // count even though task completion order varies.
  std::vector<std::uint64_t> inputs(5000);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto run_with_threads = [&](std::size_t threads) {
    JobOptions options;
    options.num_threads = threads;
    options.simulation.num_workers = 6;
    options.simulation.straggler_fraction = 0.3;
    options.simulation.straggler_slowdown = 3.0;
    options.simulation.seed = 11;
    return RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                        std::pair<std::uint64_t, std::uint64_t>>(
        inputs, FoldJob::Map, FoldJob::Reduce, options);
  };
  const auto one = run_with_threads(1);
  const auto four = run_with_threads(4);
  EXPECT_EQ(one.outputs, four.outputs);
  EXPECT_DOUBLE_EQ(one.metrics.makespan, four.metrics.makespan);
  EXPECT_DOUBLE_EQ(one.metrics.load_imbalance, four.metrics.load_imbalance);
  EXPECT_DOUBLE_EQ(one.metrics.worker_loads.sum(),
                   four.metrics.worker_loads.sum());
}

// ------------------------------------------------------- speculation

// Speculation tests drive the executor with a manual clock
// (SetClockForTest) and tasks gated on atomics, so backup triggering is a
// deterministic function of the test script, not of scheduler timing.

TEST(StageGraphExecutor, SpeculationBackupWinsAgainstStraggler) {
  common::ThreadPool pool(4);
  StageGraphExecutor exec(pool);
  std::atomic<double> clock_ms{0.0};
  exec.SetClockForTest([&] { return clock_ms.load(); });
  SpeculationConfig spec;
  spec.enabled = true;
  spec.slowdown_factor = 2.0;
  spec.min_completed = 3;
  spec.min_task_ms = 0.0;
  exec.ConfigureSpeculation(spec);

  // Three fast peers establish the median duration for (round 5, reduce).
  for (int i = 0; i < 3; ++i) {
    exec.AddTask(StageKind::kReduce, 5, {}, [] {}, /*speculatable=*/true);
  }
  exec.Wait();

  // The straggler: the first attempt spins until the backup (second
  // attempt of the same fn) releases it, so the backup always finishes
  // first and the original's result is the duplicate to discard.
  std::atomic<int> entries{0};
  std::atomic<bool> release{false};
  exec.AddTask(
      StageKind::kReduce, 5, {},
      [&] {
        if (entries.fetch_add(1) == 0) {
          while (!release.load()) std::this_thread::yield();
        } else {
          release.store(true);
        }
      },
      /*speculatable=*/true);
  while (entries.load() == 0) std::this_thread::yield();
  clock_ms.store(1000.0);  // straggler is now far past the threshold
  exec.Wait();

  EXPECT_EQ(entries.load(), 2);  // the task genuinely ran twice
  const auto stats = exec.speculation_stats(5);
  EXPECT_EQ(stats.launched, 1u);
  EXPECT_EQ(stats.won, 1u);
  EXPECT_EQ(stats.discarded, 1u);
  // Other rounds are untouched.
  EXPECT_EQ(exec.speculation_stats(0).launched, 0u);
}

TEST(StageGraphExecutor, SpeculationNeverFiresOnUniformTasks) {
  // Regression: with every task the same speed there is no straggler, so
  // no backup may launch no matter how many tasks complete.
  common::ThreadPool pool(4);
  StageGraphExecutor exec(pool);
  std::atomic<double> clock_ms{0.0};
  exec.SetClockForTest([&] { return clock_ms.load(); });
  SpeculationConfig spec;
  spec.enabled = true;
  spec.slowdown_factor = 2.0;
  spec.min_completed = 3;
  exec.ConfigureSpeculation(spec);

  std::atomic<int> runs{0};
  for (int i = 0; i < 16; ++i) {
    exec.AddTask(StageKind::kReduce, 3, {}, [&] { ++runs; },
                 /*speculatable=*/true);
  }
  exec.Wait();
  EXPECT_EQ(runs.load(), 16);  // every task ran exactly once
  const auto stats = exec.speculation_stats(3);
  EXPECT_EQ(stats.launched, 0u);
  EXPECT_EQ(stats.won, 0u);
  EXPECT_EQ(stats.discarded, 0u);
}

TEST(StageGraphExecutor, SpeculationWaitsForMinCompletedPeers) {
  // With fewer completed peers than min_completed the median is not
  // trusted and no backup launches, even for an arbitrarily slow task.
  common::ThreadPool pool(4);
  StageGraphExecutor exec(pool);
  std::atomic<double> clock_ms{0.0};
  exec.SetClockForTest([&] { return clock_ms.load(); });
  SpeculationConfig spec;
  spec.enabled = true;
  spec.slowdown_factor = 2.0;
  spec.min_completed = 3;
  spec.min_task_ms = 0.0;
  exec.ConfigureSpeculation(spec);

  for (int i = 0; i < 2; ++i) {  // one short of min_completed
    exec.AddTask(StageKind::kReduce, 7, {}, [] {}, /*speculatable=*/true);
  }
  exec.Wait();

  std::atomic<bool> entered{false};
  exec.AddTask(
      StageKind::kReduce, 7, {},
      [&] {
        entered.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
      },
      /*speculatable=*/true);
  while (!entered.load()) std::this_thread::yield();
  clock_ms.store(1000.0);
  exec.Wait();
  EXPECT_EQ(exec.speculation_stats(7).launched, 0u);
}

TEST(StageGraphExecutor, DuplicateResultCommitsExactlyOnce) {
  // Both attempts race to finish; whichever wins, exactly one result may
  // commit (the StagedRound first-wins pattern) and exactly one attempt
  // is discarded.
  common::ThreadPool pool(4);
  StageGraphExecutor exec(pool);
  std::atomic<double> clock_ms{0.0};
  exec.SetClockForTest([&] { return clock_ms.load(); });
  SpeculationConfig spec;
  spec.enabled = true;
  spec.slowdown_factor = 2.0;
  spec.min_completed = 3;
  spec.min_task_ms = 0.0;
  exec.ConfigureSpeculation(spec);

  for (int i = 0; i < 3; ++i) {
    exec.AddTask(StageKind::kReduce, 9, {}, [] {}, /*speculatable=*/true);
  }
  exec.Wait();

  std::atomic<int> entries{0};
  std::atomic<bool> both_running{false};
  std::mutex commit_mu;
  int commits = 0;
  exec.AddTask(
      StageKind::kReduce, 9, {},
      [&] {
        if (entries.fetch_add(1) == 0) {
          // Original: hold until the backup is also inside the fn, then
          // both race to the commit.
          while (!both_running.load()) std::this_thread::yield();
        } else {
          both_running.store(true);
        }
        std::unique_lock<std::mutex> lock(commit_mu);
        if (commits == 0) ++commits;  // first-wins commit
      },
      /*speculatable=*/true);
  while (entries.load() == 0) std::this_thread::yield();
  clock_ms.store(1000.0);
  exec.Wait();

  EXPECT_EQ(entries.load(), 2);
  EXPECT_EQ(commits, 1);
  const auto stats = exec.speculation_stats(9);
  EXPECT_EQ(stats.launched, 1u);
  EXPECT_EQ(stats.discarded, 1u);
  EXPECT_LE(stats.won, 1u);  // ties go to whichever attempt finished first
}

TEST(StagedRound, SpeculationPreservesOutputsAndReportsStats) {
  // End-to-end: an aggressive speculation config on a real round may
  // launch backups freely, but outputs stay byte-identical to the serial
  // reference and the stats stay consistent.
  std::vector<std::uint64_t> inputs(20000);
  std::iota(inputs.begin(), inputs.end(), 0);
  JobOptions serial;
  serial.num_threads = 1;
  serial.shuffle.strategy = ShuffleStrategy::kSerial;
  const auto reference =
      RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                   std::pair<std::uint64_t, std::uint64_t>>(
          inputs, FoldJob::Map, FoldJob::Reduce, serial);

  JobOptions options;
  options.num_threads = 4;
  options.num_shards = 8;
  options.shuffle.strategy = ShuffleStrategy::kSharded;
  options.speculation.enabled = true;
  options.speculation.slowdown_factor = 1.0;  // hair trigger
  options.speculation.min_completed = 1;
  options.speculation.min_task_ms = 0.0;
  const auto run =
      RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                   std::pair<std::uint64_t, std::uint64_t>>(
          inputs, FoldJob::Map, FoldJob::Reduce, options);
  EXPECT_EQ(run.outputs, reference.outputs);
  EXPECT_GE(run.metrics.speculative_launched, run.metrics.speculative_won);
}

// ------------------------------------------------------------ AsyncRunner

TEST(AsyncRunner, RunsQueuedWorkToCompletion) {
  auto f1 = AsyncRunner::Global().Run([] { return 1 + 1; });
  auto f2 = AsyncRunner::Global().Run([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 2);
  EXPECT_EQ(f2.get(), "done");
}

TEST(AsyncRunner, ManyConcurrentSubmissionsAllResolve) {
  // The point of the runner: dozens of outstanding futures share a fixed
  // pool instead of spawning a thread each — and all of them resolve.
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(AsyncRunner::Global().Run([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

}  // namespace
}  // namespace mrcost::engine
