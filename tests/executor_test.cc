// The stage-graph execution core (src/engine/executor.h): dependency
// scheduling on the shared ThreadPool, the staged round's determinism
// across strategies/threads/shards (byte-identical to the serial
// reference), the per-stage timing metrics, and the bounded AsyncRunner
// behind ExecuteAsync.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/engine/executor.h"
#include "src/engine/job.h"

namespace mrcost::engine {
namespace {

// ------------------------------------------------------- task scheduling

TEST(StageGraphExecutor, RunsTasksInDependencyOrder) {
  common::ThreadPool pool(4);
  StageGraphExecutor exec(pool);
  std::atomic<int> stage{0};
  std::vector<int> observed(3, -1);

  const auto a = exec.AddTask(StageKind::kMap, 0, {}, [&] {
    observed[0] = stage.fetch_add(1);
  });
  const auto b = exec.AddTask(StageKind::kShuffle, 0, {a}, [&] {
    observed[1] = stage.fetch_add(1);
  });
  exec.AddTask(StageKind::kReduce, 0, {b}, [&] {
    observed[2] = stage.fetch_add(1);
  });
  exec.Wait();
  EXPECT_EQ(observed[0], 0);
  EXPECT_EQ(observed[1], 1);
  EXPECT_EQ(observed[2], 2);
}

TEST(StageGraphExecutor, DiamondJoinWaitsForAllDependencies) {
  common::ThreadPool pool(4);
  StageGraphExecutor exec(pool);
  std::atomic<int> sources_done{0};
  bool join_saw_both = false;

  const auto a = exec.AddTask(StageKind::kMap, 0, {}, [&] {
    ++sources_done;
  });
  const auto b = exec.AddTask(StageKind::kMap, 0, {}, [&] {
    ++sources_done;
  });
  exec.AddTask(StageKind::kShuffle, 0, {a, b}, [&] {
    join_saw_both = sources_done.load() == 2;
  });
  exec.Wait();
  EXPECT_TRUE(join_saw_both);
}

TEST(StageGraphExecutor, TasksAddedAgainstCompletedDepsStillRun) {
  // The plan driver stages round k+1 after round k's tasks may already
  // have drained; deps on finished tasks must count as satisfied.
  common::ThreadPool pool(2);
  StageGraphExecutor exec(pool);
  const auto a = exec.AddTask(StageKind::kMap, 0, {}, [] {});
  exec.Wait();
  bool ran = false;
  exec.AddTask(StageKind::kReduce, 1, {a, StageGraphExecutor::kNoTask},
               [&] { ran = true; });
  exec.Wait();
  EXPECT_TRUE(ran);
}

TEST(StageGraphExecutor, RecordsSpansForEveryTask) {
  common::ThreadPool pool(2);
  StageGraphExecutor exec(pool);
  const auto a = exec.AddTask(StageKind::kMap, 7, {}, [] {
    volatile int sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  });
  exec.Wait();
  const TaskSpan span = exec.SpanOf(a);
  EXPECT_GE(span.end_ms, span.begin_ms);
  const auto records = exec.SnapshotRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].round_tag, 7u);
  EXPECT_EQ(records[0].kind, StageKind::kMap);
}

// ------------------------------------------------ staged-round semantics

/// Order-sensitive fold so any grouping or ordering deviation from the
/// serial reference changes the output bytes.
struct FoldJob {
  static void Map(const std::uint64_t& x,
                  Emitter<std::uint64_t, std::uint64_t>& emitter) {
    emitter.Emit(x % 193, x);
    emitter.Emit(x % 677, x * 3 + 1);
  }
  static void Reduce(const std::uint64_t& key,
                     const std::vector<std::uint64_t>& values,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                         out) {
    std::uint64_t acc = key;
    for (std::uint64_t v : values) acc = acc * 1099511628211ULL + v;
    out.emplace_back(key, acc);
  }
};

TEST(StagedRound, ByteIdenticalAcrossStrategiesThreadsAndShards) {
  std::vector<std::uint64_t> inputs(20000);
  std::iota(inputs.begin(), inputs.end(), 0);

  JobOptions serial;
  serial.num_threads = 1;
  serial.shuffle.strategy = ShuffleStrategy::kSerial;
  const auto reference =
      RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                   std::pair<std::uint64_t, std::uint64_t>>(
          inputs, FoldJob::Map, FoldJob::Reduce, serial);

  for (std::size_t threads : {1u, 2u, 4u}) {
    for (std::size_t shards : {0u, 1u, 3u, 8u}) {
      for (ShuffleStrategy strategy :
           {ShuffleStrategy::kSerial, ShuffleStrategy::kSharded,
            ShuffleStrategy::kExternal}) {
        JobOptions options;
        options.num_threads = threads;
        options.num_shards = shards;
        options.shuffle.strategy = strategy;
        if (strategy == ShuffleStrategy::kExternal) {
          options.shuffle.memory_budget_bytes = 1 << 12;
        }
        const auto run =
            RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::pair<std::uint64_t, std::uint64_t>>(
                inputs, FoldJob::Map, FoldJob::Reduce, options);
        EXPECT_EQ(run.outputs, reference.outputs)
            << "threads=" << threads << " shards=" << shards
            << " strategy=" << ToString(strategy);
        EXPECT_EQ(run.metrics.pairs_shuffled,
                  reference.metrics.pairs_shuffled);
        EXPECT_EQ(run.metrics.num_reducers, reference.metrics.num_reducers);
        EXPECT_EQ(run.metrics.max_reducer_input,
                  reference.metrics.max_reducer_input);
      }
    }
  }
}

TEST(StagedRound, ReportsStageTimings) {
  std::vector<std::uint64_t> inputs(30000);
  std::iota(inputs.begin(), inputs.end(), 0);
  JobOptions options;
  options.num_threads = 4;
  options.num_shards = 4;
  options.shuffle.strategy = ShuffleStrategy::kSharded;
  const auto run =
      RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                   std::pair<std::uint64_t, std::uint64_t>>(
          inputs, FoldJob::Map, FoldJob::Reduce, options);
  const JobMetrics& m = run.metrics;
  EXPECT_TRUE(m.timed());
  EXPECT_GT(m.span_ms, 0.0);
  EXPECT_GT(m.map_ms, 0.0);
  EXPECT_GT(m.shuffle_ms, 0.0);
  EXPECT_GT(m.reduce_ms, 0.0);
  EXPECT_GE(m.barrier_wait_ms, 0.0);
  EXPECT_GE(m.overlap_fraction(), 0.0);
  EXPECT_LE(m.overlap_fraction(), 2.0);  // two adjacent-stage pairs
}

TEST(StagedRound, EmptyInputProducesEmptyTimedRound) {
  std::vector<std::uint64_t> inputs;
  const auto run =
      RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                   std::pair<std::uint64_t, std::uint64_t>>(
          inputs, FoldJob::Map, FoldJob::Reduce, {});
  EXPECT_TRUE(run.outputs.empty());
  EXPECT_EQ(run.metrics.num_inputs, 0u);
  EXPECT_EQ(run.metrics.num_reducers, 0u);
}

TEST(StagedRound, SimulationIdenticalAcrossSchedules) {
  // Simulation reports are a pure function of the (deterministic) shuffle
  // result, so the staged executor must reproduce them for every thread
  // count even though task completion order varies.
  std::vector<std::uint64_t> inputs(5000);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto run_with_threads = [&](std::size_t threads) {
    JobOptions options;
    options.num_threads = threads;
    options.simulation.num_workers = 6;
    options.simulation.straggler_fraction = 0.3;
    options.simulation.straggler_slowdown = 3.0;
    options.simulation.seed = 11;
    return RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                        std::pair<std::uint64_t, std::uint64_t>>(
        inputs, FoldJob::Map, FoldJob::Reduce, options);
  };
  const auto one = run_with_threads(1);
  const auto four = run_with_threads(4);
  EXPECT_EQ(one.outputs, four.outputs);
  EXPECT_DOUBLE_EQ(one.metrics.makespan, four.metrics.makespan);
  EXPECT_DOUBLE_EQ(one.metrics.load_imbalance, four.metrics.load_imbalance);
  EXPECT_DOUBLE_EQ(one.metrics.worker_loads.sum(),
                   four.metrics.worker_loads.sum());
}

// ------------------------------------------------------------ AsyncRunner

TEST(AsyncRunner, RunsQueuedWorkToCompletion) {
  auto f1 = AsyncRunner::Global().Run([] { return 1 + 1; });
  auto f2 = AsyncRunner::Global().Run([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 2);
  EXPECT_EQ(f2.get(), "done");
}

TEST(AsyncRunner, ManyConcurrentSubmissionsAllResolve) {
  // The point of the runner: dozens of outstanding futures share a fixed
  // pool instead of spawning a thread each — and all of them resolve.
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(AsyncRunner::Global().Run([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

}  // namespace
}  // namespace mrcost::engine
