#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/join/edge_cover.h"
#include "src/join/query.h"
#include "src/join/relation.h"
#include "src/join/serial_join.h"
#include "src/join/simplex.h"

namespace mrcost::join {
namespace {

// ------------------------------------------------------------- simplex

TEST(Simplex, SimpleTwoVariable) {
  // min x + y  s.t.  x + 2y >= 4, 3x + y >= 6  -> optimum at intersection
  // (8/5, 6/5), objective 14/5.
  auto result = SolveMinLp({1, 1}, {{1, 2}, {3, 1}}, {4, 6});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective, 14.0 / 5.0, 1e-9);
  EXPECT_NEAR(result->x[0], 8.0 / 5.0, 1e-9);
  EXPECT_NEAR(result->x[1], 6.0 / 5.0, 1e-9);
}

TEST(Simplex, BindingSingleConstraint) {
  // min 2x + y  s.t.  x + y >= 10: put everything on the cheap variable.
  auto result = SolveMinLp({2, 1}, {{1, 1}}, {10});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, 10.0, 1e-9);
  EXPECT_NEAR(result->x[1], 10.0, 1e-9);
}

TEST(Simplex, InfeasibleDetected) {
  // x >= 1 and -x >= 1 cannot both hold for x >= 0.
  auto result = SolveMinLp({1}, {{1}, {-1}}, {1, 1});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(Simplex, UnboundedDetected) {
  // min -x s.t. x >= 1: objective decreases without bound.
  auto result = SolveMinLp({-1}, {{1}}, {1});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kOutOfRange);
}

TEST(Simplex, ShapeValidation) {
  EXPECT_FALSE(SolveMinLp({1, 1}, {{1}}, {1}).ok());
  EXPECT_FALSE(SolveMinLp({1}, {{1}}, {1, 2}).ok());
}

TEST(Simplex, DegenerateRedundantConstraints) {
  // Duplicated constraints must not break phase 1 or cycle.
  auto result =
      SolveMinLp({1, 1}, {{1, 1}, {1, 1}, {1, 1}}, {2, 2, 2});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroRhsFeasibleAtOrigin) {
  auto result = SolveMinLp({1, 2}, {{1, 0}, {0, 1}}, {0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective, 0.0, 1e-9);
}

// --------------------------------------------------------- edge covers

TEST(EdgeCover, TriangleQueryIsThreeHalves) {
  // The triangle query R(A,B),S(B,C),T(A,C): rho* = 3/2 with x = 1/2 each.
  auto cover = SolveFractionalEdgeCover(CliqueQuery(3));
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(cover->rho, 1.5, 1e-9);
  for (double w : cover->weights) EXPECT_NEAR(w, 0.5, 1e-9);
}

TEST(EdgeCover, ChainQueries) {
  // rho*(chain of N binary relations) = ceil((N+1)/2): end attributes
  // force full weight on the end atoms.
  EXPECT_NEAR(SolveFractionalEdgeCover(ChainQuery(1))->rho, 1.0, 1e-9);
  EXPECT_NEAR(SolveFractionalEdgeCover(ChainQuery(2))->rho, 2.0, 1e-9);
  EXPECT_NEAR(SolveFractionalEdgeCover(ChainQuery(3))->rho, 2.0, 1e-9);
  EXPECT_NEAR(SolveFractionalEdgeCover(ChainQuery(4))->rho, 3.0, 1e-9);
  EXPECT_NEAR(SolveFractionalEdgeCover(ChainQuery(5))->rho, 3.0, 1e-9);
  EXPECT_NEAR(SolveFractionalEdgeCover(ChainQuery(7))->rho, 4.0, 1e-9);
}

TEST(EdgeCover, OddChainMatchesPaperFormula) {
  // For odd N the paper uses rho = (N+1)/2 (Section 5.5.2).
  for (int n_rel : {1, 3, 5, 7, 9}) {
    EXPECT_NEAR(SolveFractionalEdgeCover(ChainQuery(n_rel))->rho,
                (n_rel + 1) / 2.0, 1e-9)
        << n_rel;
  }
}

TEST(EdgeCover, CycleQueriesAreHalfLength) {
  // rho*(C_s) = s/2 (each atom at weight 1/2).
  for (int s : {3, 4, 5, 6, 8}) {
    EXPECT_NEAR(SolveFractionalEdgeCover(CycleQuery(s))->rho, s / 2.0, 1e-9)
        << s;
  }
}

TEST(EdgeCover, CliqueQueriesAreHalfNodes) {
  // rho*(K_s as a join of C(s,2) binary atoms) = s/2.
  for (int s : {3, 4, 5}) {
    EXPECT_NEAR(SolveFractionalEdgeCover(CliqueQuery(s))->rho, s / 2.0, 1e-9)
        << s;
  }
}

TEST(EdgeCover, StarQueryIsNumberOfDimensions) {
  // B_i appears only in D_i, forcing x_{D_i} = 1; those also cover the
  // shared attributes, so the fact atom gets weight 0 and rho = N
  // (Section 5.5.2's rho = N).
  for (int n_dims : {2, 3, 5}) {
    auto cover = SolveFractionalEdgeCover(StarQuery(n_dims));
    ASSERT_TRUE(cover.ok());
    EXPECT_NEAR(cover->rho, n_dims, 1e-9);
    EXPECT_NEAR(cover->weights[0], 0.0, 1e-9);  // fact atom
  }
}

TEST(EdgeCover, AgmBound) {
  // Triangle query with all relations of size m: bound = m^{3/2}.
  auto cover = SolveFractionalEdgeCover(CliqueQuery(3));
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(AgmBound(*cover, {100, 100, 100}), std::pow(100.0, 1.5),
              1e-6);
  // Bound is monotone in relation sizes.
  EXPECT_LT(AgmBound(*cover, {100, 100, 100}),
            AgmBound(*cover, {100, 100, 400}));
}

// ------------------------------------ AGM bound, verified empirically

class AgmVerifyTest
    : public ::testing::TestWithParam<std::tuple<const char*, int,
                                                 std::uint64_t>> {};

TEST_P(AgmVerifyTest, JoinOutputNeverExceedsAgmBound) {
  // The AGM inequality |O| <= prod |R_e|^{x_e} must hold for every
  // instance; random instances across query shapes probe the LP solution
  // end to end (a wrong cover would eventually be caught here).
  const auto [kind, param, seed] = GetParam();
  const std::string k = kind;
  const Query query = k == "chain"   ? ChainQuery(param)
                      : k == "cycle" ? CycleQuery(param)
                      : k == "star"  ? StarQuery(param)
                                     : CliqueQuery(param);
  auto cover = SolveFractionalEdgeCover(query);
  ASSERT_TRUE(cover.ok());

  common::SplitMix64 rng(seed);
  std::vector<Relation> rels;
  std::vector<std::uint64_t> sizes;
  for (int e = 0; e < query.num_atoms(); ++e) {
    const Atom& atom = query.atoms()[e];
    std::vector<std::string> names;
    for (int a : atom.attributes) {
      names.push_back(query.attribute_names()[a]);
    }
    Relation rel(atom.relation, names);
    const std::uint64_t size = 20 + rng.UniformBelow(60);
    for (std::uint64_t i = 0; i < size; ++i) {
      Tuple t(atom.attributes.size());
      for (Value& v : t) v = static_cast<Value>(rng.UniformBelow(8));
      rel.Add(t);
    }
    sizes.push_back(rel.size());
    rels.push_back(std::move(rel));
  }
  std::vector<const Relation*> ptrs;
  for (const auto& r : rels) ptrs.push_back(&r);
  const auto results = SerialMultiwayJoin(query, ptrs);
  EXPECT_LE(static_cast<double>(results.size()),
            AgmBound(*cover, sizes) * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AgmVerifyTest,
    ::testing::Values(std::tuple{"chain", 2, 1ull}, std::tuple{"chain", 3, 2ull},
                      std::tuple{"chain", 4, 3ull},
                      std::tuple{"cycle", 3, 4ull},
                      std::tuple{"cycle", 4, 5ull},
                      std::tuple{"clique", 3, 6ull},
                      std::tuple{"star", 2, 7ull},
                      std::tuple{"star", 3, 8ull}));

TEST(EdgeCover, BoundsFormulas) {
  // Section 5.5.1 closed form at rho = 3/2 (triangle), m = 3 attributes:
  // r >= n / q^{1/2}.
  EXPECT_NEAR(MultiwayJoinLowerBound(100, 3, 1.5, 400), 100.0 / 20.0, 1e-9);
  // Chain form (N=3): (n/sqrt(q))^2.
  EXPECT_NEAR(ChainJoinReplication(100, 3, 400), 25.0, 1e-9);
  // Star bound shrinks as q grows.
  EXPECT_GT(StarJoinLowerBound(1e6, 1e3, 3, 100),
            StarJoinLowerBound(1e6, 1e3, 3, 1000));
}

}  // namespace
}  // namespace mrcost::join
