#include <cstdint>
#include <numeric>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/byte_size.h"
#include "src/common/random.h"
#include "src/common/thread_pool.h"
#include "src/core/lower_bound.h"
#include "src/engine/emitter.h"
#include "src/engine/hashing.h"
#include "src/engine/job.h"
#include "src/engine/metrics.h"
#include "src/engine/pipeline.h"
#include "src/engine/shuffle.h"
#include "src/engine/simulator.h"
#include "src/storage/block.h"

namespace mrcost::engine {
namespace {

// ------------------------------------------------------------ hashing

TEST(Hashing, IntegralStability) {
  EXPECT_EQ(HashValue(42), HashValue(42));
  EXPECT_NE(HashValue(42), HashValue(43));
}

TEST(Hashing, PairAndTuple) {
  EXPECT_EQ(HashValue(std::pair{1, 2}), HashValue(std::pair{1, 2}));
  EXPECT_NE(HashValue(std::pair{1, 2}), HashValue(std::pair{2, 1}));
  EXPECT_EQ(HashValue(std::tuple{1, 2, 3}), HashValue(std::tuple{1, 2, 3}));
  EXPECT_NE(HashValue(std::tuple{1, 2, 3}), HashValue(std::tuple{3, 2, 1}));
}

TEST(Hashing, Strings) {
  EXPECT_EQ(HashValue(std::string("abc")), HashValue(std::string("abc")));
  EXPECT_NE(HashValue(std::string("abc")), HashValue(std::string("abd")));
  EXPECT_NE(HashValue(std::string()), HashValue(std::string("a")));
}

TEST(Hashing, Vectors) {
  EXPECT_NE(HashValue(std::vector<int>{1, 2}),
            HashValue(std::vector<int>{2, 1}));
  EXPECT_NE(HashValue(std::vector<int>{}),
            HashValue(std::vector<int>{0}));
}

// ---------------------------------------------------------- byte size

TEST(ByteSize, TriviallyCopyable) {
  EXPECT_EQ(common::ByteSizeOf(1), sizeof(int));
  EXPECT_EQ(common::ByteSizeOf(1.0), sizeof(double));
}

TEST(ByteSize, Composites) {
  // The in-memory footprint convention of src/common/byte_size.h:
  // composites sum their members, containers count their object plus the
  // heap payload their elements own.
  EXPECT_EQ(common::ByteSizeOf(std::pair<int, double>{1, 2.0}),
            sizeof(int) + sizeof(double));
  EXPECT_EQ(common::ByteSizeOf(std::vector<int>{1, 2, 3}),
            sizeof(std::vector<int>) + 3 * sizeof(int));
  EXPECT_EQ(common::ByteSizeOf(std::pair<int, std::vector<int>>{1, {2, 3}}),
            sizeof(int) + sizeof(std::vector<int>) + 2 * sizeof(int));
}

TEST(ByteSize, StringSmallBufferConvention) {
  // Strings at or under the modeled SSO capacity cost only the object;
  // longer strings add their heap payload.
  EXPECT_EQ(common::ByteSizeOf(std::string("hello")), sizeof(std::string));
  const std::string sso_edge(common::kStringSsoCapacity, 'x');
  EXPECT_EQ(common::ByteSizeOf(sso_edge), sizeof(std::string));
  const std::string heap(common::kStringSsoCapacity + 1, 'x');
  EXPECT_EQ(common::ByteSizeOf(heap),
            sizeof(std::string) + common::kStringSsoCapacity + 1);
  // A vector of heap strings prices both levels of the hierarchy.
  const std::vector<std::string> v{heap, heap};
  EXPECT_EQ(common::ByteSizeOf(v),
            sizeof(std::vector<std::string>) + 2 * common::ByteSizeOf(heap));
}

TEST(ByteSize, StringViewConvention) {
  // A view prices the view object plus the full viewed payload — no SSO
  // discount, because the viewed bytes always live somewhere else (a
  // block's key arena, typically) regardless of their length.
  EXPECT_EQ(common::ByteSizeOf(std::string_view{}), sizeof(std::string_view));
  EXPECT_EQ(common::ByteSizeOf(std::string_view{"abc"}),
            sizeof(std::string_view) + 3);
  const std::string heap(100, 'x');
  EXPECT_EQ(common::ByteSizeOf(std::string_view{heap}),
            sizeof(std::string_view) + 100);
}

TEST(ByteSize, BlockTypesConvention) {
  // Blocks and runs follow the same convention: object plus every owned
  // payload. An empty block is just the object plus its slab's offset
  // sentinel.
  storage::KVBlock<std::string, std::uint64_t> block;
  EXPECT_EQ(common::ByteSizeOf(block),
            sizeof(block) + sizeof(std::uint64_t));  // offset sentinel
  block.Append(std::string("hello block"), 7);
  const std::size_t key_arena = block.keys().bytes().size();
  EXPECT_EQ(common::ByteSizeOf(block),
            sizeof(block) + key_arena + 2 * sizeof(std::uint64_t)  // offsets
                + sizeof(std::uint64_t)                            // hash
                + sizeof(std::uint64_t));                          // value

  storage::ColumnarRun run;
  EXPECT_EQ(common::ByteSizeOf(run),
            sizeof(run) + 2 * sizeof(std::uint64_t));  // two slab sentinels
}

// ------------------------------------------------------------- emitter

TEST(Emitter, EmitBatchEmptyBatchIsNoOp) {
  Emitter<int, int> emitter;
  std::uint64_t flushes = 0;
  // Budget 0: any flush-eligible call would trigger the sink at once.
  emitter.SetOverflow(0, [&flushes](Emitter<int, int>::Block&) { ++flushes; });
  Emitter<int, int>::Batch batch;
  emitter.EmitBatch(batch);
  EXPECT_EQ(emitter.num_emitted(), 0u);
  EXPECT_EQ(emitter.bytes(), 0u);
  EXPECT_EQ(emitter.blocks_emitted(), 0u);
  EXPECT_EQ(flushes, 0u);  // empty batch must not trigger a flush
}

TEST(Emitter, EmitBatchExactlyAtFlushBoundary) {
  // Budget equal to the batch's exact ByteSizeOf: the batch lands and the
  // block flushes once, leaving the buffer empty (>= boundary, not >).
  Emitter<int, int> emitter;
  Emitter<int, int>::Batch batch{{1, 10}, {2, 20}};
  std::uint64_t batch_bytes = 0;
  for (const auto& [k, v] : batch) {
    batch_bytes += common::ByteSizeOf(k) + common::ByteSizeOf(v);
  }
  std::uint64_t flushes = 0;
  std::uint64_t flushed_rows = 0;
  emitter.SetOverflow(batch_bytes,
                      [&](Emitter<int, int>::Block& block) {
                        ++flushes;
                        flushed_rows += block.rows();
                      });
  emitter.EmitBatch(batch);
  EXPECT_EQ(flushes, 1u);
  EXPECT_EQ(flushed_rows, 2u);
  EXPECT_TRUE(emitter.block().empty());
  EXPECT_EQ(emitter.num_emitted(), 2u);
  EXPECT_EQ(emitter.bytes(), batch_bytes);
  EXPECT_EQ(emitter.blocks_emitted(), 1u);
}

TEST(Emitter, EmitBatchReusesMovedFromBatch) {
  // EmitBatch consumes the batch but keeps its capacity, so one buffer
  // can be refilled across inputs (the thread_local pattern the graph
  // and join mappers use).
  Emitter<std::string, int> emitter;
  Emitter<std::string, int>::Batch batch;
  batch.emplace_back(std::string(64, 'a'), 1);
  batch.emplace_back(std::string(64, 'b'), 2);
  emitter.EmitBatch(batch);
  EXPECT_TRUE(batch.empty());
  const std::size_t kept_capacity = batch.capacity();
  EXPECT_GE(kept_capacity, 2u);

  // Refill the moved-from slots and emit again: the second round must be
  // fully counted and must not disturb the first round's rows.
  batch.emplace_back(std::string(64, 'c'), 3);
  batch.emplace_back(std::string(64, 'd'), 4);
  emitter.EmitBatch(batch);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.capacity(), kept_capacity);
  EXPECT_EQ(emitter.num_emitted(), 4u);
  ASSERT_EQ(emitter.block().rows(), 4u);
  EXPECT_EQ(emitter.block().value(0), 1);
  EXPECT_EQ(emitter.block().value(3), 4);
  EXPECT_EQ(emitter.block().KeyAt(0), std::string(64, 'a'));
  EXPECT_EQ(emitter.block().KeyAt(3), std::string(64, 'd'));
}

// ---------------------------------------------------------------- job

/// A toy job: map each integer x to key x % modulus; reducer sums values.
JobResult<std::pair<int, std::int64_t>> SumByResidue(
    const std::vector<int>& inputs, int modulus, const JobOptions& options) {
  auto map_fn = [modulus](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x % modulus, x);
  };
  auto reduce_fn = [](const int& key, const std::vector<int>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t sum = 0;
    for (int v : values) sum += v;
    out.emplace_back(key, sum);
  };
  return RunMapReduce<int, int, int, std::pair<int, std::int64_t>>(
      inputs, map_fn, reduce_fn, options);
}

TEST(Job, BasicGroupingAndMetrics) {
  std::vector<int> inputs(100);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto result = SumByResidue(inputs, 10, {});
  ASSERT_EQ(result.outputs.size(), 10u);
  std::int64_t total = 0;
  for (const auto& [key, sum] : result.outputs) total += sum;
  EXPECT_EQ(total, 99 * 100 / 2);

  const JobMetrics& m = result.metrics;
  EXPECT_EQ(m.num_inputs, 100u);
  EXPECT_EQ(m.pairs_shuffled, 100u);  // one pair per input
  EXPECT_EQ(m.num_reducers, 10u);
  EXPECT_EQ(m.max_reducer_input, 10u);
  EXPECT_DOUBLE_EQ(m.replication_rate(), 1.0);
  EXPECT_EQ(m.num_outputs, 10u);
}

TEST(Job, ReplicationRateCountsAllEmits) {
  // Map each input to 3 distinct keys: r must be exactly 3.
  std::vector<int> inputs(50);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x, x);
    emitter.Emit(x + 1000, x);
    emitter.Emit(x + 2000, x);
  };
  auto reduce_fn = [](const int& key, const std::vector<int>& values,
                      std::vector<int>& out) {
    (void)key;
    out.push_back(static_cast<int>(values.size()));
  };
  auto result =
      RunMapReduce<int, int, int, int>(inputs, map_fn, reduce_fn, {});
  EXPECT_DOUBLE_EQ(result.metrics.replication_rate(), 3.0);
  EXPECT_EQ(result.metrics.num_reducers, 150u);
}

TEST(Job, ValueOrderIsInputOrder) {
  // All inputs to one key; values must arrive in input order regardless of
  // the number of map threads.
  std::vector<int> inputs(1000);
  std::iota(inputs.begin(), inputs.end(), 0);
  for (std::size_t threads : {1u, 4u, 16u}) {
    JobOptions options;
    options.num_threads = threads;
    auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
      emitter.Emit(0, x);
    };
    auto reduce_fn = [](const int&, const std::vector<int>& values,
                        std::vector<std::vector<int>>& out) {
      out.push_back(values);
    };
    auto result = RunMapReduce<int, int, int, std::vector<int>>(
        inputs, map_fn, reduce_fn, options);
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(result.outputs[0], inputs) << "threads=" << threads;
  }
}

TEST(Job, DeterministicAcrossThreadCounts) {
  std::vector<int> inputs(997);
  std::iota(inputs.begin(), inputs.end(), 0);
  JobOptions one;
  one.num_threads = 1;
  JobOptions many;
  many.num_threads = 8;
  auto a = SumByResidue(inputs, 13, one);
  auto b = SumByResidue(inputs, 13, many);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.metrics.pairs_shuffled, b.metrics.pairs_shuffled);
  EXPECT_EQ(a.metrics.num_reducers, b.metrics.num_reducers);
}

TEST(Job, EmptyInput) {
  auto result = SumByResidue({}, 10, {});
  EXPECT_TRUE(result.outputs.empty());
  EXPECT_EQ(result.metrics.num_inputs, 0u);
  EXPECT_EQ(result.metrics.pairs_shuffled, 0u);
  EXPECT_EQ(result.metrics.replication_rate(), 0.0);
}

TEST(Job, MapCanEmitNothing) {
  std::vector<int> inputs{1, 2, 3};
  auto map_fn = [](const int&, Emitter<int, int>&) {};
  auto reduce_fn = [](const int&, const std::vector<int>&,
                      std::vector<int>&) {};
  auto result =
      RunMapReduce<int, int, int, int>(inputs, map_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.pairs_shuffled, 0u);
  EXPECT_EQ(result.metrics.num_reducers, 0u);
}

TEST(Job, BytesShuffledAccounting) {
  std::vector<int> inputs{1, 2, 3};
  auto map_fn = [](const int& x, Emitter<int, double>& emitter) {
    emitter.Emit(x, 1.5);
  };
  auto reduce_fn = [](const int&, const std::vector<double>&,
                      std::vector<int>&) {};
  auto result =
      RunMapReduce<int, int, double, int>(inputs, map_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.bytes_shuffled,
            3 * (sizeof(int) + sizeof(double)));
}

TEST(Job, ReducerSizeDistribution) {
  // Keys 0..4 get 1, 2, 3, 4, 5 values respectively.
  std::vector<int> inputs;
  for (int key = 0; key < 5; ++key) {
    for (int i = 0; i <= key; ++i) inputs.push_back(key);
  }
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x, 1);
  };
  auto reduce_fn = [](const int&, const std::vector<int>&,
                      std::vector<int>&) {};
  auto result =
      RunMapReduce<int, int, int, int>(inputs, map_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.max_reducer_input, 5u);
  EXPECT_EQ(result.metrics.reducer_sizes.count(), 5);
  EXPECT_DOUBLE_EQ(result.metrics.reducer_sizes.mean(), 3.0);
}

TEST(Job, SimulatedWorkerLoads) {
  std::vector<int> inputs(300);
  std::iota(inputs.begin(), inputs.end(), 0);
  JobOptions options;
  options.simulation.num_workers = 7;
  auto result = SumByResidue(inputs, 100, options);
  EXPECT_EQ(result.metrics.worker_loads.count(), 7);
  // Loads sum to the total pairs shuffled.
  EXPECT_DOUBLE_EQ(result.metrics.worker_loads.sum(),
                   static_cast<double>(result.metrics.pairs_shuffled));
}

TEST(Job, StringKeysWork) {
  std::vector<std::string> inputs{"a", "bb", "a", "ccc", "bb", "a"};
  auto map_fn = [](const std::string& w,
                   Emitter<std::string, std::uint64_t>& emitter) {
    emitter.Emit(w, 1);
  };
  auto reduce_fn = [](const std::string& w,
                      const std::vector<std::uint64_t>& ones,
                      std::vector<std::pair<std::string, std::size_t>>& out) {
    out.emplace_back(w, ones.size());
  };
  auto result =
      RunMapReduce<std::string, std::string, std::uint64_t,
                   std::pair<std::string, std::size_t>>(inputs, map_fn,
                                                        reduce_fn, {});
  ASSERT_EQ(result.outputs.size(), 3u);
  // First-seen key order is deterministic.
  EXPECT_EQ(result.outputs[0], (std::pair<std::string, std::size_t>{"a", 3}));
  EXPECT_EQ(result.outputs[1],
            (std::pair<std::string, std::size_t>{"bb", 2}));
}

// ----------------------------------------------------------- combiner

TEST(Combiner, SameResultLessCommunication) {
  // Word-count shape: many repeated keys per chunk. The combiner must not
  // change the output but must shrink pairs_shuffled.
  std::vector<int> inputs(10000);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<int>(i % 7);  // 7 distinct keys
  }
  auto map_fn = [](const int& x, Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(x, 1);
  };
  auto combine_fn = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto reduce_fn = [](const int& key,
                      const std::vector<std::int64_t>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  auto plain = RunMapReduce<int, int, std::int64_t,
                            std::pair<int, std::int64_t>>(
      inputs, map_fn, reduce_fn, {});
  auto combined = RunMapReduceCombined<int, int, std::int64_t,
                                       std::pair<int, std::int64_t>>(
      inputs, map_fn, combine_fn, reduce_fn, {});
  auto sort_pairs = [](auto& v) { std::sort(v.begin(), v.end()); };
  sort_pairs(plain.outputs);
  sort_pairs(combined.outputs);
  EXPECT_EQ(plain.outputs, combined.outputs);
  EXPECT_EQ(combined.metrics.pairs_before_combine, inputs.size());
  EXPECT_LT(combined.metrics.pairs_shuffled,
            combined.metrics.pairs_before_combine / 100);
  EXPECT_EQ(plain.metrics.pairs_before_combine,
            plain.metrics.pairs_shuffled);
}

TEST(Combiner, NoOpWhenKeysAreUnique) {
  // Join-shaped traffic (all keys distinct): a combiner cannot help — the
  // footnote-1 point that combining does not reduce schema-mandated
  // deliveries.
  std::vector<int> inputs(500);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x, x);
  };
  auto combine_fn = [](int a, int) { return a; };
  auto reduce_fn = [](const int&, const std::vector<int>&,
                      std::vector<int>&) {};
  auto result = RunMapReduceCombined<int, int, int, int>(
      inputs, map_fn, combine_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.pairs_shuffled,
            result.metrics.pairs_before_combine);
}

TEST(Combiner, DeterministicAcrossThreadCounts) {
  std::vector<int> inputs(4321);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<int>(i % 13);
  }
  auto map_fn = [](const int& x, Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(x, x);
  };
  auto combine_fn = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto reduce_fn = [](const int& key,
                      const std::vector<std::int64_t>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  JobOptions one;
  one.num_threads = 1;
  JobOptions many;
  many.num_threads = 8;
  auto a = RunMapReduceCombined<int, int, std::int64_t,
                                std::pair<int, std::int64_t>>(
      inputs, map_fn, combine_fn, reduce_fn, one);
  auto b = RunMapReduceCombined<int, int, std::int64_t,
                                std::pair<int, std::int64_t>>(
      inputs, map_fn, combine_fn, reduce_fn, many);
  std::sort(a.outputs.begin(), a.outputs.end());
  std::sort(b.outputs.begin(), b.outputs.end());
  EXPECT_EQ(a.outputs, b.outputs);
  // Sums are thread-layout independent even though per-chunk combining
  // differs.
  EXPECT_EQ(a.metrics.pairs_before_combine, b.metrics.pairs_before_combine);
}

TEST(Combiner, EmptyInput) {
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x, 1);
  };
  auto combine_fn = [](int a, int b) { return a + b; };
  auto reduce_fn = [](const int&, const std::vector<int>&,
                      std::vector<int>&) {};
  auto result = RunMapReduceCombined<int, int, int, int>(
      {}, map_fn, combine_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.pairs_shuffled, 0u);
  EXPECT_TRUE(result.outputs.empty());
}

// ------------------------------------------------------------ shuffle

/// Fanout-3 workload with colliding keys: enough key reuse that grouping
/// order matters and enough keys that every shard owns some.
JobResult<std::pair<int, std::uint64_t>> FanoutJob(
    const JobOptions& options) {
  std::vector<int> inputs(3000);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x % 97, x);
    emitter.Emit(x % 251, x + 1);
    emitter.Emit(x % 599, x + 2);
  };
  auto reduce_fn = [](const int& key, const std::vector<int>& values,
                      std::vector<std::pair<int, std::uint64_t>>& out) {
    // Order-sensitive fold; unsigned so the deliberate wraparound is
    // defined (the sanitized CI job runs this test under UBSan).
    auto acc = static_cast<std::uint64_t>(key);
    for (int v : values) acc = acc * 31 + static_cast<std::uint64_t>(v);
    out.emplace_back(key, acc);
  };
  return RunMapReduce<int, int, int, std::pair<int, std::uint64_t>>(
      inputs, map_fn, reduce_fn, options);
}

TEST(Shuffle, DeterministicAcrossThreadAndShardCounts) {
  JobOptions baseline;
  baseline.num_threads = 1;
  baseline.num_shards = 1;
  const auto reference = FanoutJob(baseline);
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (std::size_t shards : {0u, 1u, 2u, 8u, 16u}) {
      JobOptions options;
      options.num_threads = threads;
      options.num_shards = shards;
      const auto run = FanoutJob(options);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      EXPECT_EQ(run.outputs, reference.outputs);
      EXPECT_EQ(run.metrics.pairs_shuffled, reference.metrics.pairs_shuffled);
      EXPECT_EQ(run.metrics.bytes_shuffled, reference.metrics.bytes_shuffled);
      EXPECT_EQ(run.metrics.num_reducers, reference.metrics.num_reducers);
      EXPECT_EQ(run.metrics.max_reducer_input,
                reference.metrics.max_reducer_input);
    }
  }
}

TEST(Shuffle, CombinedDeterministicAcrossThreadAndShardCounts) {
  std::vector<int> inputs(5000);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<int>(i % 613);
  }
  auto map_fn = [](const int& x, Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(x, x);
    emitter.Emit(x + 1000, 2 * x);
  };
  auto combine_fn = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto reduce_fn = [](const int& key,
                      const std::vector<std::int64_t>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  auto run = [&](std::size_t threads, std::size_t shards) {
    JobOptions options;
    options.num_threads = threads;
    options.num_shards = shards;
    auto result = RunMapReduceCombined<int, int, std::int64_t,
                                       std::pair<int, std::int64_t>>(
        inputs, map_fn, combine_fn, reduce_fn, options);
    std::sort(result.outputs.begin(), result.outputs.end());
    return result;
  };
  const auto reference = run(1, 1);
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (std::size_t shards : {1u, 4u, 16u}) {
      const auto sharded = run(threads, shards);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      EXPECT_EQ(sharded.outputs, reference.outputs);
      EXPECT_EQ(sharded.metrics.pairs_before_combine,
                reference.metrics.pairs_before_combine);
      // pairs_shuffled depends on the chunking (per-chunk combining), which
      // is fixed per thread count; at equal thread counts it must match.
      if (threads == 1) {
        EXPECT_EQ(sharded.metrics.pairs_shuffled,
                  reference.metrics.pairs_shuffled);
        EXPECT_EQ(sharded.metrics.bytes_shuffled,
                  reference.metrics.bytes_shuffled);
      }
    }
  }
}

TEST(Shuffle, ShardedMatchesSerialDirectly) {
  // Exercise ShardedShuffle/SerialShuffle below the job layer, with
  // multi-chunk input and repeated keys straddling chunk boundaries.
  auto make_chunks = [] {
    std::vector<std::vector<std::pair<int, int>>> chunks(5);
    int v = 0;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      for (int i = 0; i < 200; ++i) {
        chunks[c].emplace_back((v * 7) % 143, v);
        ++v;
      }
    }
    return chunks;
  };
  auto serial_chunks = make_chunks();
  const auto serial = SerialShuffle(serial_chunks);
  common::ThreadPool pool(4);
  for (std::size_t shards : {2u, 3u, 8u, 64u}) {
    auto chunks = make_chunks();
    const auto sharded = ShardedShuffle(chunks, pool, shards);
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(sharded.keys, serial.keys);
    EXPECT_EQ(sharded.groups, serial.groups);
  }
}

TEST(Shuffle, ResolveShardCount) {
  EXPECT_EQ(ResolveShardCount(7, 4, 1 << 20), 7u);   // explicit wins
  EXPECT_EQ(ResolveShardCount(0, 1, 1 << 20), 1u);   // single thread
  EXPECT_EQ(ResolveShardCount(0, 8, 1 << 20), 8u);   // one per thread
  EXPECT_EQ(ResolveShardCount(0, 8, 100), 1u);       // tiny job stays serial
}

TEST(Shuffle, IndexOfHashRangeAndBalance) {
  for (std::size_t n : {1u, 2u, 7u, 64u}) {
    std::vector<std::uint64_t> load(n, 0);
    const std::size_t kKeys = 100000;
    for (std::size_t k = 0; k < kKeys; ++k) {
      const std::size_t idx = IndexOfHash(HashValue(k), n);
      ASSERT_LT(idx, n);
      ++load[idx];
    }
    const double mean = static_cast<double>(kKeys) / n;
    for (std::uint64_t l : load) {
      EXPECT_LT(static_cast<double>(l), 1.15 * mean) << "n=" << n;
      EXPECT_GT(static_cast<double>(l), 0.85 * mean) << "n=" << n;
    }
  }
}

TEST(Shuffle, SimulatedWorkerLoadBalance) {
  // The finalized-hash placement must spread many uniform keys evenly over
  // the simulated workers (the biased low-bit placement this replaced
  // could collapse onto a subset of workers for structured keys).
  std::vector<int> inputs(40000);
  std::iota(inputs.begin(), inputs.end(), 0);
  JobOptions options;
  options.simulation.num_workers = 16;
  auto result = SumByResidue(inputs, 20000, options);
  ASSERT_EQ(result.metrics.worker_loads.count(), 16);
  const double mean = result.metrics.worker_loads.mean();
  EXPECT_LT(result.metrics.worker_loads.max(), 1.15 * mean);
  EXPECT_GT(result.metrics.worker_loads.min(), 0.85 * mean);
}

// ------------------------------------------- shuffle property harness

/// Key distributions the equivalence property is checked under: the
/// regimes where a sharded shuffle can diverge from the serial reference
/// (hot keys concentrating in one shard, every key distinct, every pair
/// the same key).
enum class KeyDist { kUniform, kZipf, kAllSame, kAllDistinct };

const char* Name(KeyDist dist) {
  switch (dist) {
    case KeyDist::kUniform: return "uniform";
    case KeyDist::kZipf: return "zipf";
    case KeyDist::kAllSame: return "all-same";
    case KeyDist::kAllDistinct: return "all-distinct";
  }
  return "?";
}

/// Seed-deterministic random chunks: chunk count, chunk sizes (including
/// empty chunks), and keys all drawn from `seed`.
std::vector<std::vector<std::pair<std::uint64_t, int>>> RandomChunks(
    KeyDist dist, std::uint64_t seed) {
  common::SplitMix64 rng(seed);
  const common::ZipfDistribution zipf(64, 1.3);
  const std::size_t num_chunks = 1 + rng.UniformBelow(8);
  std::vector<std::vector<std::pair<std::uint64_t, int>>> chunks(num_chunks);
  int serial = 0;
  for (auto& chunk : chunks) {
    const std::size_t size = rng.UniformBelow(400);
    chunk.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      std::uint64_t key = 0;
      switch (dist) {
        case KeyDist::kUniform:
          key = rng.UniformBelow(150);
          break;
        case KeyDist::kZipf:
          key = zipf.Sample(rng);
          break;
        case KeyDist::kAllSame:
          key = 42;
          break;
        case KeyDist::kAllDistinct:
          key = static_cast<std::uint64_t>(serial);
          break;
      }
      chunk.emplace_back(key, serial++);
    }
  }
  return chunks;
}

TEST(ShuffleProperty, SerialVsShardedEquivalence) {
  // For every distribution, seed, and shard count 1..16: keys, group
  // contents, and global first-seen order must match the serial reference
  // exactly. Both shuffles consume their chunks, so each run rebuilds them
  // (RandomChunks is a pure function of its arguments).
  common::ThreadPool pool(4);
  for (KeyDist dist : {KeyDist::kUniform, KeyDist::kZipf, KeyDist::kAllSame,
                       KeyDist::kAllDistinct}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      auto serial_chunks = RandomChunks(dist, seed);
      const auto serial = SerialShuffle(serial_chunks);
      for (std::size_t shards = 1; shards <= 16; ++shards) {
        auto chunks = RandomChunks(dist, seed);
        const auto sharded = ShardedShuffle(chunks, pool, shards);
        SCOPED_TRACE(std::string(Name(dist)) +
                     " seed=" + std::to_string(seed) +
                     " shards=" + std::to_string(shards));
        ASSERT_EQ(sharded.keys, serial.keys);
        ASSERT_EQ(sharded.groups, serial.groups);
      }
    }
  }
}

TEST(Shuffle, IndexOfHashSingleBucket) {
  // n = 1: every hash, including the extremes, must land in bucket 0.
  EXPECT_EQ(IndexOfHash(0, 1), 0u);
  EXPECT_EQ(IndexOfHash(~std::uint64_t{0}, 1), 0u);
  common::SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(IndexOfHash(rng.Next(), 1), 0u);
  }
}

TEST(Shuffle, IndexOfHashCoversFullRange) {
  // fastrange maps the hash's high bits onto [0, n): the extremes of the
  // hash space must reach the extremes of the bucket range.
  for (std::size_t n : {2u, 7u, 64u, 1000u}) {
    EXPECT_EQ(IndexOfHash(0, n), 0u) << n;
    EXPECT_EQ(IndexOfHash(~std::uint64_t{0}, n), n - 1) << n;
  }
}

TEST(Shuffle, ResolveShardCountZeroPairs) {
  // A zero-pair job must stay serial under auto sharding (no useful
  // shards), while an explicit request still wins.
  EXPECT_EQ(ResolveShardCount(0, 8, 0), 1u);
  EXPECT_EQ(ResolveShardCount(3, 8, 0), 3u);
}

// ---------------------------------------------------------- simulator

TEST(Simulator, WorkerSpeedsDeterministic) {
  SimulationOptions options;
  options.num_workers = 8;
  options.speed_jitter = 0.2;
  options.straggler_fraction = 0.25;
  options.straggler_slowdown = 4.0;
  options.seed = 7;
  const auto a = WorkerSpeeds(options);
  const auto b = WorkerSpeeds(options);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b);
  // Exactly floor(0.25 * 8) = 2 stragglers: jittered speeds live in
  // [0.8, 1.2], slowed ones in [0.2, 0.3] — cleanly separable at 0.5.
  int stragglers = 0;
  for (double s : a) {
    if (s < 0.5) ++stragglers;
  }
  EXPECT_EQ(stragglers, 2);
  options.seed = 8;
  EXPECT_NE(WorkerSpeeds(options), a);
}

TEST(Simulator, StragglerSetIndependentOfJitterStream) {
  // Regression for the shared-RNG bug: straggler selection used to draw
  // from the same stream as the speed jitter, so toggling the jitter knob
  // silently reshuffled which workers straggled (and any sweep varying
  // jitter swept the straggler set with it). The straggler set must be a
  // function of (seed, num_workers, fraction) alone.
  SimulationOptions options;
  options.num_workers = 16;
  options.straggler_fraction = 0.25;
  options.straggler_slowdown = 4.0;
  options.seed = 13;
  const auto without_jitter = StragglerWorkers(options);
  options.speed_jitter = 0.2;
  const auto with_jitter = StragglerWorkers(options);
  EXPECT_EQ(without_jitter, with_jitter);

  // Pinned values for seed 13: any change to the straggler stream (its
  // constant, the sampler, or the ordering) must show up here.
  const std::vector<std::uint64_t> expected = {1, 4, 10, 15};
  EXPECT_EQ(without_jitter, expected);

  // The slowed speeds land exactly on the pinned set.
  const auto speeds = WorkerSpeeds(options);
  for (std::uint64_t w = 0; w < speeds.size(); ++w) {
    const bool slowed = speeds[w] < 0.5;  // jittered >= 0.8, slowed <= 0.3
    const bool pinned =
        std::find(expected.begin(), expected.end(), w) != expected.end();
    EXPECT_EQ(slowed, pinned) << "worker " << w;
  }

  // A different seed picks a different set.
  options.seed = 14;
  EXPECT_NE(StragglerWorkers(options), expected);
}

TEST(Simulator, DirectQueuesCapacityAndMakespan) {
  // Hand-placed reducers: with 2 workers, IndexOfHash takes the hash's top
  // bit, so hash 0 and 1<<62 land on worker 0 and ~0 lands on worker 1.
  std::vector<ReducerLoad> loads;
  loads.push_back(ReducerLoad{0, 5, 50});
  loads.push_back(ReducerLoad{~std::uint64_t{0}, 2, 20});
  loads.push_back(ReducerLoad{std::uint64_t{1} << 62, 1, 10});
  SimulationOptions options;
  options.num_workers = 2;
  options.reducer_capacity_q = 4;  // the 5-pair reducer violates
  const auto report = SimulateCluster(loads, options);
  ASSERT_EQ(report.queues.size(), 2u);
  EXPECT_EQ(report.queues[0].pairs, 6u);
  EXPECT_EQ(report.queues[1].pairs, 2u);
  EXPECT_EQ(report.queues[0].reducers, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_DOUBLE_EQ(report.makespan, 6.0);       // cost_per_pair = 1, speed 1
  EXPECT_DOUBLE_EQ(report.ideal_makespan, 4.0);  // 8 pairs / 2 workers
  EXPECT_DOUBLE_EQ(report.load_imbalance, 1.5);  // max 6 / mean 4
  EXPECT_DOUBLE_EQ(report.straggler_impact, 1.0);
  EXPECT_EQ(report.capacity_violations, 1u);
  EXPECT_EQ(report.max_worker_pairs, 6u);
}

TEST(Simulator, ByteCapacityViaByteCost) {
  std::vector<ReducerLoad> loads;
  loads.push_back(ReducerLoad{0, 1, 100});
  loads.push_back(ReducerLoad{~std::uint64_t{0}, 1, 10});
  SimulationOptions options;
  options.num_workers = 2;
  options.reducer_capacity_bytes = 50;
  options.cost_per_pair = 0;
  options.cost_per_byte = 1.0;
  const auto report = SimulateCluster(loads, options);
  EXPECT_EQ(report.capacity_violations, 1u);
  EXPECT_DOUBLE_EQ(report.makespan, 100.0);
}

TEST(Simulator, StragglerStretchesMakespan) {
  // 64 equal reducers over 4 workers; slowing half the workers 4x must
  // stretch the makespan by ~4x relative to the homogeneous cluster.
  std::vector<ReducerLoad> loads;
  common::SplitMix64 rng(11);
  for (int i = 0; i < 64; ++i) {
    loads.push_back(ReducerLoad{rng.Next(), 10, 80});
  }
  SimulationOptions fair;
  fair.num_workers = 4;
  const auto baseline = SimulateCluster(loads, fair);
  SimulationOptions slow = fair;
  slow.straggler_fraction = 0.5;
  slow.straggler_slowdown = 4.0;
  slow.seed = 3;
  const auto straggled = SimulateCluster(loads, slow);
  EXPECT_DOUBLE_EQ(baseline.straggler_impact, 1.0);
  EXPECT_GE(straggled.straggler_impact, 2.0);
  EXPECT_GT(straggled.makespan, baseline.makespan);
  // Placement is speed-independent, so load stats are unchanged.
  EXPECT_DOUBLE_EQ(straggled.worker_pairs.max(), baseline.worker_pairs.max());
  EXPECT_EQ(straggled.load_imbalance, baseline.load_imbalance);
}

/// A key-skewed job: `inputs` keys drawn Zipf(exponent) over `num_keys`
/// (exponent 0 = uniform), one pair per input.
JobResult<std::pair<std::uint64_t, std::int64_t>> ZipfJob(
    double exponent, const JobOptions& options) {
  common::SplitMix64 rng(99);
  const common::ZipfDistribution zipf(512, exponent);
  std::vector<std::uint64_t> inputs(20000);
  for (auto& x : inputs) x = zipf.Sample(rng);
  auto map_fn = [](const std::uint64_t& x,
                   Emitter<std::uint64_t, int>& emitter) {
    emitter.Emit(x, 1);
  };
  auto reduce_fn = [](const std::uint64_t& key, const std::vector<int>& values,
                      std::vector<std::pair<std::uint64_t, std::int64_t>>&
                          out) {
    out.emplace_back(key, static_cast<std::int64_t>(values.size()));
  };
  return RunMapReduce<std::uint64_t, std::uint64_t, int,
                      std::pair<std::uint64_t, std::int64_t>>(
      inputs, map_fn, reduce_fn, options);
}

TEST(Simulator, OutputsBitIdenticalWithAndWithoutSimulation) {
  // The acceptance bar: simulation may only touch metrics. Reduce outputs
  // must be bit-identical across simulation on/off, worker counts, thread
  // counts, and shard counts.
  JobOptions plain;
  plain.num_threads = 1;
  plain.num_shards = 1;
  const auto reference = ZipfJob(1.1, plain);
  for (std::size_t workers : {1u, 4u, 31u}) {
    for (std::size_t threads : {1u, 8u}) {
      for (std::size_t shards : {1u, 8u}) {
        JobOptions options;
        options.num_threads = threads;
        options.num_shards = shards;
        options.simulation.num_workers = workers;
        options.simulation.straggler_fraction = 0.3;
        options.simulation.straggler_slowdown = 3.0;
        options.simulation.speed_jitter = 0.1;
        options.simulation.seed = 5;
        const auto run = ZipfJob(1.1, options);
        SCOPED_TRACE("workers=" + std::to_string(workers) +
                     " threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards));
        ASSERT_EQ(run.outputs, reference.outputs);
      }
    }
  }
}

TEST(Simulator, MetricsDeterministicAcrossThreadCounts) {
  // Fixed seed => identical makespan/load metrics for every thread and
  // shard count: the simulation is a pure function of the (deterministic)
  // shuffle result and the options.
  JobOptions base;
  base.num_threads = 1;
  base.num_shards = 1;
  base.simulation.num_workers = 16;
  base.simulation.speed_jitter = 0.15;
  base.simulation.straggler_fraction = 0.25;
  base.simulation.straggler_slowdown = 2.0;
  base.simulation.reducer_capacity_q = 100;
  base.simulation.seed = 42;
  const auto reference = ZipfJob(1.3, base);
  EXPECT_GT(reference.metrics.makespan, 0.0);
  for (std::size_t threads : {2u, 8u}) {
    for (std::size_t shards : {1u, 4u, 16u}) {
      JobOptions options = base;
      options.num_threads = threads;
      options.num_shards = shards;
      const auto run = ZipfJob(1.3, options);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      EXPECT_DOUBLE_EQ(run.metrics.makespan, reference.metrics.makespan);
      EXPECT_DOUBLE_EQ(run.metrics.load_imbalance,
                       reference.metrics.load_imbalance);
      EXPECT_DOUBLE_EQ(run.metrics.straggler_impact,
                       reference.metrics.straggler_impact);
      EXPECT_EQ(run.metrics.capacity_violations,
                reference.metrics.capacity_violations);
      EXPECT_DOUBLE_EQ(run.metrics.worker_loads.max(),
                       reference.metrics.worker_loads.max());
      EXPECT_DOUBLE_EQ(run.metrics.worker_loads.mean(),
                       reference.metrics.worker_loads.mean());
    }
  }
}

TEST(Simulator, CapacityViolationsInsteadOfSilentOverfill) {
  // Keys 0..4 receive 1..5 values; a recipe that promises q = 3 must
  // report the two oversized reducers (4 and 5), not silently absorb them.
  std::vector<int> inputs;
  for (int key = 0; key < 5; ++key) {
    for (int i = 0; i <= key; ++i) inputs.push_back(key);
  }
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x, 1);
  };
  auto reduce_fn = [](const int&, const std::vector<int>&,
                      std::vector<int>&) {};
  JobOptions options;
  options.simulation.num_workers = 4;
  options.simulation.reducer_capacity_q = 3;
  auto result =
      RunMapReduce<int, int, int, int>(inputs, map_fn, reduce_fn, options);
  EXPECT_EQ(result.metrics.capacity_violations, 2u);
  ASSERT_TRUE(result.metrics.simulated());
  // And with a generous q, no violations.
  options.simulation.reducer_capacity_q = 5;
  result = RunMapReduce<int, int, int, int>(inputs, map_fn, reduce_fn,
                                            options);
  EXPECT_EQ(result.metrics.capacity_violations, 0u);
}

TEST(Simulator, ZipfSkewRaisesImbalance) {
  JobOptions options;
  options.simulation.num_workers = 8;
  const auto uniform = ZipfJob(0.0, options);
  const auto skewed = ZipfJob(1.5, options);
  // Uniform keys spread evenly; heavy Zipf concentrates pairs on whichever
  // worker owns key rank 0.
  EXPECT_LT(uniform.metrics.load_imbalance, 1.3);
  EXPECT_GT(skewed.metrics.load_imbalance,
            1.5 * uniform.metrics.load_imbalance);
  EXPECT_GT(skewed.metrics.makespan, uniform.metrics.makespan);
}

TEST(SimulatorDeathTest, SkewKnobsWithoutWorkersFailLoudly) {
  // Setting capacity/skew knobs but forgetting num_workers would
  // otherwise silently skip the simulation (makespan 0, "no violations").
  JobOptions options;
  options.simulation.reducer_capacity_q = 256;
  EXPECT_DEATH(options.ResolvedSimulation(), "MRCOST_CHECK failed");
}

TEST(Simulator, WorkerCountOnlySimulation) {
  // simulation.num_workers alone runs the (skew-free) simulation and
  // fills worker_loads, with makespan alongside.
  JobOptions options;
  options.simulation.num_workers = 7;
  const auto sim = options.ResolvedSimulation();
  EXPECT_TRUE(sim.enabled());
  EXPECT_EQ(sim.num_workers, 7u);
  const auto run = ZipfJob(0.0, options);
  EXPECT_EQ(run.metrics.worker_loads.count(), 7);
  EXPECT_DOUBLE_EQ(run.metrics.worker_loads.sum(),
                   static_cast<double>(run.metrics.pairs_shuffled));
  EXPECT_GT(run.metrics.makespan, 0.0);
}

TEST(Simulator, PipelineWideSimulationAndCostReports) {
  // A pipeline-level SimulationOptions must reach every round, surface in
  // PipelineMetrics aggregates, and ride along in CompareToLowerBound's
  // per-round reports.
  PipelineOptions options;
  options.simulation.num_workers = 4;
  options.simulation.reducer_capacity_q = 5;
  Pipeline pipeline(options);
  std::vector<int> inputs(100);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map1 = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x % 10, x);  // 10 keys x 10 values: violates q = 5
  };
  auto reduce1 = [](const int& key, const std::vector<int>& values,
                    std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t sum = 0;
    for (int v : values) sum += v;
    out.emplace_back(key, sum);
  };
  auto sums = pipeline.AddRound<int, int, int, std::pair<int, std::int64_t>>(
      inputs, map1, reduce1);
  auto map2 = [](const std::pair<int, std::int64_t>& p,
                 Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(p.first % 2, p.second);
  };
  auto reduce2 = [](const int& key, const std::vector<std::int64_t>& values,
                    std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t sum = 0;
    for (std::int64_t v : values) sum += v;
    out.emplace_back(key, sum);
  };
  pipeline.AddRound<std::pair<int, std::int64_t>, int, std::int64_t,
                    std::pair<int, std::int64_t>>(sums, map2, reduce2);

  const PipelineMetrics& m = pipeline.metrics();
  ASSERT_EQ(m.rounds.size(), 2u);
  EXPECT_TRUE(m.rounds[0].simulated());
  EXPECT_TRUE(m.rounds[1].simulated());
  EXPECT_EQ(m.rounds[0].capacity_violations, 10u);  // all 10 reducers > 5
  EXPECT_EQ(m.rounds[1].capacity_violations, 0u);   // 2 keys x 5 values
  EXPECT_GT(m.max_makespan(), 0.0);
  EXPECT_GE(m.total_makespan(), m.max_makespan());
  EXPECT_EQ(m.total_capacity_violations(), 10u);
  EXPECT_GE(m.max_load_imbalance(), 1.0);

  core::Recipe recipe;
  recipe.problem_name = "synthetic";
  recipe.g = [](double q) { return q; };
  recipe.num_inputs = 100;
  recipe.num_outputs = 100;
  const auto reports = CompareToLowerBound(m, recipe);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].simulated);
  EXPECT_DOUBLE_EQ(reports[0].makespan, m.rounds[0].makespan);
  EXPECT_EQ(reports[0].capacity_violations, 10u);
  EXPECT_NE(ToString(reports).find("capacity_violations=10"),
            std::string::npos);
}

// --------------------------------------------------------- caller pool

TEST(Job, CallerOwnedPoolIsReused) {
  common::ThreadPool pool(3);
  JobOptions options;
  options.pool = &pool;
  EXPECT_EQ(options.ResolvedThreads(), 3u);
  std::vector<int> inputs(500);
  std::iota(inputs.begin(), inputs.end(), 0);
  const auto baseline = SumByResidue(inputs, 17, {});
  // Two consecutive rounds on the same pool: both must match a fresh-pool
  // run exactly.
  for (int round = 0; round < 2; ++round) {
    const auto pooled = SumByResidue(inputs, 17, options);
    EXPECT_EQ(pooled.outputs, baseline.outputs);
    EXPECT_EQ(pooled.metrics.pairs_shuffled, baseline.metrics.pairs_shuffled);
  }
}

// ----------------------------------------------------------- pipeline

TEST(Pipeline, TwoRoundMetricsAccumulate) {
  // Round 1: sum by residue mod 10; round 2: regroup the 10 sums by
  // parity and sum again.
  std::vector<int> inputs(100);
  std::iota(inputs.begin(), inputs.end(), 0);
  Pipeline pipeline;
  auto map1 = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x % 10, x);
  };
  auto reduce1 = [](const int& key, const std::vector<int>& values,
                    std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t sum = 0;
    for (int v : values) sum += v;
    out.emplace_back(key, sum);
  };
  auto sums = pipeline.AddRound<int, int, int, std::pair<int, std::int64_t>>(
      inputs, map1, reduce1);
  ASSERT_EQ(sums.size(), 10u);

  auto map2 = [](const std::pair<int, std::int64_t>& p,
                 Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(p.first % 2, p.second);
  };
  auto reduce2 = [](const int& key,
                    const std::vector<std::int64_t>& values,
                    std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t sum = 0;
    for (std::int64_t v : values) sum += v;
    out.emplace_back(key, sum);
  };
  auto totals = pipeline.AddRound<std::pair<int, std::int64_t>, int,
                                  std::int64_t,
                                  std::pair<int, std::int64_t>>(sums, map2,
                                                                reduce2);
  ASSERT_EQ(totals.size(), 2u);
  std::int64_t grand = 0;
  for (const auto& [parity, sum] : totals) grand += sum;
  EXPECT_EQ(grand, 99 * 100 / 2);

  ASSERT_EQ(pipeline.num_rounds(), 2u);
  const PipelineMetrics& m = pipeline.metrics();
  EXPECT_EQ(m.rounds[0].num_inputs, 100u);
  EXPECT_EQ(m.rounds[1].num_inputs, 10u);
  EXPECT_EQ(m.total_pairs(), 110u);
  EXPECT_DOUBLE_EQ(m.replication_rate(0), 1.0);
  EXPECT_DOUBLE_EQ(m.replication_rate(1), 1.0);
  // All 110 shuffled pairs charged against the 100 round-1 inputs.
  EXPECT_DOUBLE_EQ(m.total_replication_rate(), 1.1);
}

TEST(Pipeline, SharedPoolAndPerRoundOptions) {
  common::ThreadPool pool(2);
  PipelineOptions options;
  options.pool = &pool;
  Pipeline pipeline(options);
  EXPECT_EQ(&pipeline.pool(), &pool);
  std::vector<int> inputs(200);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x % 5, x);
  };
  auto reduce_fn = [](const int& key, const std::vector<int>& values,
                      std::vector<std::pair<int, std::size_t>>& out) {
    out.emplace_back(key, values.size());
  };
  JobOptions round;
  round.simulation.num_workers = 3;
  auto outputs = pipeline.AddRound<int, int, int,
                                   std::pair<int, std::size_t>>(
      inputs, map_fn, reduce_fn, round);
  EXPECT_EQ(outputs.size(), 5u);
  EXPECT_EQ(pipeline.metrics().rounds[0].worker_loads.count(), 3);
}

TEST(Pipeline, RoundDefaultsMergeFieldWise) {
  // The historical footgun: per-round options used to replace the
  // defaults wholesale, so a round overriding only num_shards silently
  // dropped the pipeline's memory budget. MergedJobOptions inherits every
  // unset field instead — the round below must still spill.
  PipelineOptions options;
  options.round_defaults.shuffle.memory_budget_bytes = 1 << 10;
  options.round_defaults.simulation.num_workers = 4;
  Pipeline pipeline(options);
  std::vector<int> inputs(4000);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x % 512, x);
  };
  auto reduce_fn = [](const int& key, const std::vector<int>& values,
                      std::vector<std::pair<int, std::size_t>>& out) {
    out.emplace_back(key, values.size());
  };
  JobOptions round;
  round.num_shards = 2;  // the only field the round overrides
  auto outputs =
      pipeline.AddRound<int, int, int, std::pair<int, std::size_t>>(
          inputs, map_fn, reduce_fn, round);
  EXPECT_EQ(outputs.size(), 512u);
  const JobMetrics& m = pipeline.metrics().rounds[0];
  // Budget inherited from the defaults: the round ran externally...
  EXPECT_TRUE(m.external_shuffle());
  EXPECT_GT(m.spill_runs, 0u);
  // ...and the defaults' simulation reached it too.
  EXPECT_EQ(m.worker_loads.count(), 4);

  // The pipeline-wide shuffle backstop composes field-wise as well: a
  // round forcing only the strategy still inherits the backstop budget.
  JobOptions merged = MergedJobOptions(round, options.round_defaults);
  EXPECT_EQ(merged.num_shards, 2u);
  EXPECT_EQ(merged.shuffle.memory_budget_bytes, std::uint64_t{1} << 10);
  EXPECT_EQ(merged.simulation.num_workers, 4u);
}

// ------------------------------------------- shuffle-config resolution

/// A fully populated config, distinct from the per-field overrides below.
ShuffleConfig FullShuffleDefaults() {
  ShuffleConfig defaults;
  defaults.strategy = ShuffleStrategy::kSharded;
  defaults.memory_budget_bytes = 1 << 20;
  defaults.spill_dir = "/tmp/mrcost-default-spill";
  defaults.merge_fan_in = 16;
  return defaults;
}

TEST(ShuffleConfigResolution, SingleFieldOverridesInheritTheRest) {
  // The documented resolution order, exercised field by field: a round
  // overriding exactly one field keeps that field and inherits the other
  // three from the fallback.
  const ShuffleConfig defaults = FullShuffleDefaults();

  {
    ShuffleConfig round;
    round.strategy = ShuffleStrategy::kExternal;
    const ShuffleConfig merged = round.MergedOver(defaults);
    EXPECT_EQ(merged.strategy, ShuffleStrategy::kExternal);
    EXPECT_EQ(merged.memory_budget_bytes, defaults.memory_budget_bytes);
    EXPECT_EQ(merged.spill_dir, defaults.spill_dir);
    EXPECT_EQ(merged.merge_fan_in, defaults.merge_fan_in);
  }
  {
    ShuffleConfig round;
    round.memory_budget_bytes = 1 << 12;
    const ShuffleConfig merged = round.MergedOver(defaults);
    EXPECT_EQ(merged.strategy, defaults.strategy);
    EXPECT_EQ(merged.memory_budget_bytes, std::uint64_t{1} << 12);
    EXPECT_EQ(merged.spill_dir, defaults.spill_dir);
    EXPECT_EQ(merged.merge_fan_in, defaults.merge_fan_in);
  }
  {
    ShuffleConfig round;
    round.spill_dir = "/tmp/mrcost-round-spill";
    const ShuffleConfig merged = round.MergedOver(defaults);
    EXPECT_EQ(merged.strategy, defaults.strategy);
    EXPECT_EQ(merged.memory_budget_bytes, defaults.memory_budget_bytes);
    EXPECT_EQ(merged.spill_dir, "/tmp/mrcost-round-spill");
    EXPECT_EQ(merged.merge_fan_in, defaults.merge_fan_in);
  }
  {
    ShuffleConfig round;
    round.merge_fan_in = 2;
    const ShuffleConfig merged = round.MergedOver(defaults);
    EXPECT_EQ(merged.strategy, defaults.strategy);
    EXPECT_EQ(merged.memory_budget_bytes, defaults.memory_budget_bytes);
    EXPECT_EQ(merged.spill_dir, defaults.spill_dir);
    EXPECT_EQ(merged.merge_fan_in, 2u);
  }
}

TEST(ShuffleConfigResolution, UnsetInheritsEverythingAndZeroStaysZero) {
  const ShuffleConfig defaults = FullShuffleDefaults();
  const ShuffleConfig inherited = ShuffleConfig{}.MergedOver(defaults);
  EXPECT_EQ(inherited.strategy, defaults.strategy);
  EXPECT_EQ(inherited.memory_budget_bytes, defaults.memory_budget_bytes);
  EXPECT_EQ(inherited.spill_dir, defaults.spill_dir);
  EXPECT_EQ(inherited.merge_fan_in, defaults.merge_fan_in);
  EXPECT_TRUE(inherited.configured());

  const ShuffleConfig untouched = ShuffleConfig{}.MergedOver(ShuffleConfig{});
  EXPECT_EQ(untouched.strategy, ShuffleStrategy::kAuto);
  EXPECT_EQ(untouched.memory_budget_bytes, 0u);
  EXPECT_TRUE(untouched.spill_dir.empty());
  EXPECT_EQ(untouched.merge_fan_in, 0u);
  EXPECT_FALSE(untouched.configured());
}

TEST(ShuffleConfigResolution, ThreeLayerOrderRoundBeatsDefaultsBeatsBackstop) {
  // The full chain Pipeline::Resolve / the plan executor apply: per-round
  // fields win, then the round defaults, then the pipeline-wide backstop
  // — field by field, not wholesale.
  ShuffleConfig backstop;
  backstop.strategy = ShuffleStrategy::kSerial;
  backstop.memory_budget_bytes = 1 << 22;
  backstop.spill_dir = "/tmp/mrcost-backstop-spill";
  backstop.merge_fan_in = 64;

  ShuffleConfig defaults;  // sets two of four fields
  defaults.memory_budget_bytes = 1 << 16;
  defaults.merge_fan_in = 8;

  ShuffleConfig round;  // sets one field the defaults also set, one not
  round.merge_fan_in = 3;
  round.strategy = ShuffleStrategy::kExternal;

  const ShuffleConfig merged =
      round.MergedOver(defaults).MergedOver(backstop);
  EXPECT_EQ(merged.strategy, ShuffleStrategy::kExternal);  // round
  EXPECT_EQ(merged.memory_budget_bytes,
            std::uint64_t{1} << 16);                       // defaults
  EXPECT_EQ(merged.spill_dir, backstop.spill_dir);         // backstop
  EXPECT_EQ(merged.merge_fan_in, 3u);                      // round
}

TEST(ShuffleConfigResolution, ResolvedStrategyFollowsBudget) {
  ShuffleConfig config;
  EXPECT_EQ(config.Resolved(), ShuffleStrategy::kSharded);
  config.memory_budget_bytes = 1;
  EXPECT_EQ(config.Resolved(), ShuffleStrategy::kExternal);
  config.strategy = ShuffleStrategy::kSerial;  // explicit beats the rule
  EXPECT_EQ(config.Resolved(), ShuffleStrategy::kSerial);
}

TEST(Pipeline, CombinedRound) {
  std::vector<int> inputs(1000);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<int>(i % 4);
  }
  Pipeline pipeline;
  auto map_fn = [](const int& x, Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(x, 1);
  };
  auto combine_fn = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto reduce_fn = [](const int& key,
                      const std::vector<std::int64_t>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  auto counts = pipeline.AddCombinedRound<int, int, std::int64_t,
                                          std::pair<int, std::int64_t>>(
      inputs, map_fn, combine_fn, reduce_fn);
  ASSERT_EQ(counts.size(), 4u);
  const JobMetrics& m = pipeline.metrics().rounds[0];
  EXPECT_EQ(m.pairs_before_combine, 1000u);
  EXPECT_LT(m.pairs_shuffled, m.pairs_before_combine);
}

TEST(Pipeline, CompareToLowerBound) {
  // A synthetic recipe with g(q) = q and |O| = 2|I|: Equation 4 gives
  // r >= q*|O| / (g(q)*|I|) = 2 at every q.
  core::Recipe recipe;
  recipe.problem_name = "synthetic";
  recipe.g = [](double q) { return q; };
  recipe.num_inputs = 100;
  recipe.num_outputs = 200;

  PipelineMetrics metrics;
  JobMetrics round;
  round.num_inputs = 100;
  round.pairs_shuffled = 300;  // realized r = 3
  round.max_reducer_input = 10;
  metrics.Add(round);

  const auto reports = CompareToLowerBound(metrics, recipe);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].round, 1u);
  EXPECT_DOUBLE_EQ(reports[0].realized_q, 10.0);
  EXPECT_DOUBLE_EQ(reports[0].realized_r, 3.0);
  EXPECT_DOUBLE_EQ(reports[0].lower_bound_r, 2.0);
  EXPECT_DOUBLE_EQ(reports[0].optimality_ratio, 1.5);
  EXPECT_NE(ToString(reports).find("ratio=1.5"), std::string::npos);
}

// ------------------------------------------------------------ metrics

TEST(Metrics, PipelineAccumulates) {
  PipelineMetrics pipeline;
  JobMetrics round1;
  round1.pairs_shuffled = 100;
  round1.bytes_shuffled = 800;
  round1.max_reducer_input = 10;
  JobMetrics round2;
  round2.pairs_shuffled = 50;
  round2.bytes_shuffled = 400;
  round2.max_reducer_input = 25;
  pipeline.Add(round1);
  pipeline.Add(round2);
  EXPECT_EQ(pipeline.total_pairs(), 150u);
  EXPECT_EQ(pipeline.total_bytes(), 1200u);
  EXPECT_EQ(pipeline.max_reducer_input(), 25u);
  EXPECT_NE(pipeline.ToString().find("2 round(s)"), std::string::npos);
}

TEST(Metrics, ReplicationRateFormula) {
  JobMetrics m;
  m.num_inputs = 10;
  m.pairs_shuffled = 35;
  EXPECT_DOUBLE_EQ(m.replication_rate(), 3.5);
}

}  // namespace
}  // namespace mrcost::engine
