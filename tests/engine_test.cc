#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/byte_size.h"
#include "src/engine/hashing.h"
#include "src/engine/job.h"
#include "src/engine/metrics.h"

namespace mrcost::engine {
namespace {

// ------------------------------------------------------------ hashing

TEST(Hashing, IntegralStability) {
  EXPECT_EQ(HashValue(42), HashValue(42));
  EXPECT_NE(HashValue(42), HashValue(43));
}

TEST(Hashing, PairAndTuple) {
  EXPECT_EQ(HashValue(std::pair{1, 2}), HashValue(std::pair{1, 2}));
  EXPECT_NE(HashValue(std::pair{1, 2}), HashValue(std::pair{2, 1}));
  EXPECT_EQ(HashValue(std::tuple{1, 2, 3}), HashValue(std::tuple{1, 2, 3}));
  EXPECT_NE(HashValue(std::tuple{1, 2, 3}), HashValue(std::tuple{3, 2, 1}));
}

TEST(Hashing, Strings) {
  EXPECT_EQ(HashValue(std::string("abc")), HashValue(std::string("abc")));
  EXPECT_NE(HashValue(std::string("abc")), HashValue(std::string("abd")));
  EXPECT_NE(HashValue(std::string()), HashValue(std::string("a")));
}

TEST(Hashing, Vectors) {
  EXPECT_NE(HashValue(std::vector<int>{1, 2}),
            HashValue(std::vector<int>{2, 1}));
  EXPECT_NE(HashValue(std::vector<int>{}),
            HashValue(std::vector<int>{0}));
}

// ---------------------------------------------------------- byte size

TEST(ByteSize, TriviallyCopyable) {
  EXPECT_EQ(ByteSizeOf(1), sizeof(int));
  EXPECT_EQ(ByteSizeOf(1.0), sizeof(double));
}

TEST(ByteSize, Composites) {
  EXPECT_EQ(ByteSizeOf(std::pair<int, double>{1, 2.0}),
            sizeof(int) + sizeof(double));
  EXPECT_EQ(ByteSizeOf(std::string("hello")),
            sizeof(std::size_t) + 5);
  EXPECT_EQ(ByteSizeOf(std::vector<int>{1, 2, 3}),
            sizeof(std::size_t) + 3 * sizeof(int));
  EXPECT_EQ(ByteSizeOf(std::pair<int, std::vector<int>>{1, {2, 3}}),
            sizeof(int) + sizeof(std::size_t) + 2 * sizeof(int));
}

// ---------------------------------------------------------------- job

/// A toy job: map each integer x to key x % modulus; reducer sums values.
JobResult<std::pair<int, std::int64_t>> SumByResidue(
    const std::vector<int>& inputs, int modulus, const JobOptions& options) {
  auto map_fn = [modulus](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x % modulus, x);
  };
  auto reduce_fn = [](const int& key, const std::vector<int>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t sum = 0;
    for (int v : values) sum += v;
    out.emplace_back(key, sum);
  };
  return RunMapReduce<int, int, int, std::pair<int, std::int64_t>>(
      inputs, map_fn, reduce_fn, options);
}

TEST(Job, BasicGroupingAndMetrics) {
  std::vector<int> inputs(100);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto result = SumByResidue(inputs, 10, {});
  ASSERT_EQ(result.outputs.size(), 10u);
  std::int64_t total = 0;
  for (const auto& [key, sum] : result.outputs) total += sum;
  EXPECT_EQ(total, 99 * 100 / 2);

  const JobMetrics& m = result.metrics;
  EXPECT_EQ(m.num_inputs, 100u);
  EXPECT_EQ(m.pairs_shuffled, 100u);  // one pair per input
  EXPECT_EQ(m.num_reducers, 10u);
  EXPECT_EQ(m.max_reducer_input, 10u);
  EXPECT_DOUBLE_EQ(m.replication_rate(), 1.0);
  EXPECT_EQ(m.num_outputs, 10u);
}

TEST(Job, ReplicationRateCountsAllEmits) {
  // Map each input to 3 distinct keys: r must be exactly 3.
  std::vector<int> inputs(50);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x, x);
    emitter.Emit(x + 1000, x);
    emitter.Emit(x + 2000, x);
  };
  auto reduce_fn = [](const int& key, const std::vector<int>& values,
                      std::vector<int>& out) {
    (void)key;
    out.push_back(static_cast<int>(values.size()));
  };
  auto result =
      RunMapReduce<int, int, int, int>(inputs, map_fn, reduce_fn, {});
  EXPECT_DOUBLE_EQ(result.metrics.replication_rate(), 3.0);
  EXPECT_EQ(result.metrics.num_reducers, 150u);
}

TEST(Job, ValueOrderIsInputOrder) {
  // All inputs to one key; values must arrive in input order regardless of
  // the number of map threads.
  std::vector<int> inputs(1000);
  std::iota(inputs.begin(), inputs.end(), 0);
  for (std::size_t threads : {1u, 4u, 16u}) {
    JobOptions options;
    options.num_threads = threads;
    auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
      emitter.Emit(0, x);
    };
    auto reduce_fn = [](const int&, const std::vector<int>& values,
                        std::vector<std::vector<int>>& out) {
      out.push_back(values);
    };
    auto result = RunMapReduce<int, int, int, std::vector<int>>(
        inputs, map_fn, reduce_fn, options);
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(result.outputs[0], inputs) << "threads=" << threads;
  }
}

TEST(Job, DeterministicAcrossThreadCounts) {
  std::vector<int> inputs(997);
  std::iota(inputs.begin(), inputs.end(), 0);
  JobOptions one;
  one.num_threads = 1;
  JobOptions many;
  many.num_threads = 8;
  auto a = SumByResidue(inputs, 13, one);
  auto b = SumByResidue(inputs, 13, many);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.metrics.pairs_shuffled, b.metrics.pairs_shuffled);
  EXPECT_EQ(a.metrics.num_reducers, b.metrics.num_reducers);
}

TEST(Job, EmptyInput) {
  auto result = SumByResidue({}, 10, {});
  EXPECT_TRUE(result.outputs.empty());
  EXPECT_EQ(result.metrics.num_inputs, 0u);
  EXPECT_EQ(result.metrics.pairs_shuffled, 0u);
  EXPECT_EQ(result.metrics.replication_rate(), 0.0);
}

TEST(Job, MapCanEmitNothing) {
  std::vector<int> inputs{1, 2, 3};
  auto map_fn = [](const int&, Emitter<int, int>&) {};
  auto reduce_fn = [](const int&, const std::vector<int>&,
                      std::vector<int>&) {};
  auto result =
      RunMapReduce<int, int, int, int>(inputs, map_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.pairs_shuffled, 0u);
  EXPECT_EQ(result.metrics.num_reducers, 0u);
}

TEST(Job, BytesShuffledAccounting) {
  std::vector<int> inputs{1, 2, 3};
  auto map_fn = [](const int& x, Emitter<int, double>& emitter) {
    emitter.Emit(x, 1.5);
  };
  auto reduce_fn = [](const int&, const std::vector<double>&,
                      std::vector<int>&) {};
  auto result =
      RunMapReduce<int, int, double, int>(inputs, map_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.bytes_shuffled,
            3 * (sizeof(int) + sizeof(double)));
}

TEST(Job, ReducerSizeDistribution) {
  // Keys 0..4 get 1, 2, 3, 4, 5 values respectively.
  std::vector<int> inputs;
  for (int key = 0; key < 5; ++key) {
    for (int i = 0; i <= key; ++i) inputs.push_back(key);
  }
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x, 1);
  };
  auto reduce_fn = [](const int&, const std::vector<int>&,
                      std::vector<int>&) {};
  auto result =
      RunMapReduce<int, int, int, int>(inputs, map_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.max_reducer_input, 5u);
  EXPECT_EQ(result.metrics.reducer_sizes.count(), 5);
  EXPECT_DOUBLE_EQ(result.metrics.reducer_sizes.mean(), 3.0);
}

TEST(Job, SimulatedWorkerLoads) {
  std::vector<int> inputs(300);
  std::iota(inputs.begin(), inputs.end(), 0);
  JobOptions options;
  options.num_simulated_workers = 7;
  auto result = SumByResidue(inputs, 100, options);
  EXPECT_EQ(result.metrics.worker_loads.count(), 7);
  // Loads sum to the total pairs shuffled.
  EXPECT_DOUBLE_EQ(result.metrics.worker_loads.sum(),
                   static_cast<double>(result.metrics.pairs_shuffled));
}

TEST(Job, StringKeysWork) {
  std::vector<std::string> inputs{"a", "bb", "a", "ccc", "bb", "a"};
  auto map_fn = [](const std::string& w,
                   Emitter<std::string, std::uint64_t>& emitter) {
    emitter.Emit(w, 1);
  };
  auto reduce_fn = [](const std::string& w,
                      const std::vector<std::uint64_t>& ones,
                      std::vector<std::pair<std::string, std::size_t>>& out) {
    out.emplace_back(w, ones.size());
  };
  auto result =
      RunMapReduce<std::string, std::string, std::uint64_t,
                   std::pair<std::string, std::size_t>>(inputs, map_fn,
                                                        reduce_fn, {});
  ASSERT_EQ(result.outputs.size(), 3u);
  // First-seen key order is deterministic.
  EXPECT_EQ(result.outputs[0], (std::pair<std::string, std::size_t>{"a", 3}));
  EXPECT_EQ(result.outputs[1],
            (std::pair<std::string, std::size_t>{"bb", 2}));
}

// ----------------------------------------------------------- combiner

TEST(Combiner, SameResultLessCommunication) {
  // Word-count shape: many repeated keys per chunk. The combiner must not
  // change the output but must shrink pairs_shuffled.
  std::vector<int> inputs(10000);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<int>(i % 7);  // 7 distinct keys
  }
  auto map_fn = [](const int& x, Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(x, 1);
  };
  auto combine_fn = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto reduce_fn = [](const int& key,
                      const std::vector<std::int64_t>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  auto plain = RunMapReduce<int, int, std::int64_t,
                            std::pair<int, std::int64_t>>(
      inputs, map_fn, reduce_fn, {});
  auto combined = RunMapReduceCombined<int, int, std::int64_t,
                                       std::pair<int, std::int64_t>>(
      inputs, map_fn, combine_fn, reduce_fn, {});
  auto sort_pairs = [](auto& v) { std::sort(v.begin(), v.end()); };
  sort_pairs(plain.outputs);
  sort_pairs(combined.outputs);
  EXPECT_EQ(plain.outputs, combined.outputs);
  EXPECT_EQ(combined.metrics.pairs_before_combine, inputs.size());
  EXPECT_LT(combined.metrics.pairs_shuffled,
            combined.metrics.pairs_before_combine / 100);
  EXPECT_EQ(plain.metrics.pairs_before_combine,
            plain.metrics.pairs_shuffled);
}

TEST(Combiner, NoOpWhenKeysAreUnique) {
  // Join-shaped traffic (all keys distinct): a combiner cannot help — the
  // footnote-1 point that combining does not reduce schema-mandated
  // deliveries.
  std::vector<int> inputs(500);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x, x);
  };
  auto combine_fn = [](int a, int) { return a; };
  auto reduce_fn = [](const int&, const std::vector<int>&,
                      std::vector<int>&) {};
  auto result = RunMapReduceCombined<int, int, int, int>(
      inputs, map_fn, combine_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.pairs_shuffled,
            result.metrics.pairs_before_combine);
}

TEST(Combiner, DeterministicAcrossThreadCounts) {
  std::vector<int> inputs(4321);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<int>(i % 13);
  }
  auto map_fn = [](const int& x, Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(x, x);
  };
  auto combine_fn = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto reduce_fn = [](const int& key,
                      const std::vector<std::int64_t>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  JobOptions one;
  one.num_threads = 1;
  JobOptions many;
  many.num_threads = 8;
  auto a = RunMapReduceCombined<int, int, std::int64_t,
                                std::pair<int, std::int64_t>>(
      inputs, map_fn, combine_fn, reduce_fn, one);
  auto b = RunMapReduceCombined<int, int, std::int64_t,
                                std::pair<int, std::int64_t>>(
      inputs, map_fn, combine_fn, reduce_fn, many);
  std::sort(a.outputs.begin(), a.outputs.end());
  std::sort(b.outputs.begin(), b.outputs.end());
  EXPECT_EQ(a.outputs, b.outputs);
  // Sums are thread-layout independent even though per-chunk combining
  // differs.
  EXPECT_EQ(a.metrics.pairs_before_combine, b.metrics.pairs_before_combine);
}

TEST(Combiner, EmptyInput) {
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x, 1);
  };
  auto combine_fn = [](int a, int b) { return a + b; };
  auto reduce_fn = [](const int&, const std::vector<int>&,
                      std::vector<int>&) {};
  auto result = RunMapReduceCombined<int, int, int, int>(
      {}, map_fn, combine_fn, reduce_fn, {});
  EXPECT_EQ(result.metrics.pairs_shuffled, 0u);
  EXPECT_TRUE(result.outputs.empty());
}

// ------------------------------------------------------------ metrics

TEST(Metrics, PipelineAccumulates) {
  PipelineMetrics pipeline;
  JobMetrics round1;
  round1.pairs_shuffled = 100;
  round1.bytes_shuffled = 800;
  round1.max_reducer_input = 10;
  JobMetrics round2;
  round2.pairs_shuffled = 50;
  round2.bytes_shuffled = 400;
  round2.max_reducer_input = 25;
  pipeline.Add(round1);
  pipeline.Add(round2);
  EXPECT_EQ(pipeline.total_pairs(), 150u);
  EXPECT_EQ(pipeline.total_bytes(), 1200u);
  EXPECT_EQ(pipeline.max_reducer_input(), 25u);
  EXPECT_NE(pipeline.ToString().find("2 round(s)"), std::string::npos);
}

TEST(Metrics, ReplicationRateFormula) {
  JobMetrics m;
  m.num_inputs = 10;
  m.pairs_shuffled = 35;
  EXPECT_DOUBLE_EQ(m.replication_rate(), 3.5);
}

}  // namespace
}  // namespace mrcost::engine
