// Engine- and driver-level coverage of ShuffleStrategy::kExternal: the
// spill-to-disk shuffle must be byte-identical to the in-memory shuffles
// at every budget, report its spill counters through JobMetrics /
// PipelineMetrics / RoundCostReport, and carry all four problem-family
// drivers end-to-end with a memory budget far below the intermediate data
// size — the capacity-q regime the paper reasons about, actually enforced
// instead of simulated.

#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/engine/job.h"
#include "src/engine/metrics.h"
#include "src/engine/pipeline.h"
#include "src/engine/shuffle.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/sample_graph_mr.h"
#include "src/hamming/bitstring.h"
#include "src/hamming/similarity_join.h"
#include "src/join/generators.h"
#include "src/join/query.h"
#include "src/join/relation.h"
#include "src/join/two_round.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"

namespace mrcost::engine {
namespace {

TEST(ShuffleStrategyResolution, AutoFollowsBudget) {
  JobOptions options;
  EXPECT_EQ(options.ResolvedShuffleStrategy(), ShuffleStrategy::kSharded);
  options.shuffle.memory_budget_bytes = 1 << 16;
  EXPECT_EQ(options.ResolvedShuffleStrategy(), ShuffleStrategy::kExternal);
  options.shuffle.strategy = ShuffleStrategy::kSharded;
  EXPECT_EQ(options.ResolvedShuffleStrategy(), ShuffleStrategy::kSharded);
  options.shuffle.strategy = ShuffleStrategy::kSerial;
  options.shuffle.memory_budget_bytes = 0;
  EXPECT_EQ(options.ResolvedShuffleStrategy(), ShuffleStrategy::kSerial);
  EXPECT_STREQ(ToString(ShuffleStrategy::kExternal), "external");
}

TEST(ShuffleConfigResolution, FieldWiseMergeOrder) {
  // The documented resolution order: explicit per-round fields win, unset
  // fields inherit the fallback, and a still-kAuto strategy follows the
  // (merged) budget.
  ShuffleConfig fallback;
  fallback.strategy = ShuffleStrategy::kSharded;
  fallback.memory_budget_bytes = 1 << 20;
  fallback.spill_dir = "/tmp/fallback";
  fallback.merge_fan_in = 8;

  ShuffleConfig round;  // everything unset
  EXPECT_FALSE(round.configured());
  ShuffleConfig merged = round.MergedOver(fallback);
  EXPECT_EQ(merged.strategy, ShuffleStrategy::kSharded);
  EXPECT_EQ(merged.memory_budget_bytes, std::uint64_t{1} << 20);
  EXPECT_EQ(merged.spill_dir, "/tmp/fallback");
  EXPECT_EQ(merged.merge_fan_in, 8u);

  round.strategy = ShuffleStrategy::kExternal;
  round.spill_dir = "/tmp/round";
  merged = round.MergedOver(fallback);
  EXPECT_EQ(merged.strategy, ShuffleStrategy::kExternal);  // round wins
  EXPECT_EQ(merged.spill_dir, "/tmp/round");               // round wins
  EXPECT_EQ(merged.memory_budget_bytes,
            std::uint64_t{1} << 20);  // inherited field-wise
  EXPECT_EQ(merged.merge_fan_in, 8u);

  // kAuto resolution after the merge: budget => external.
  ShuffleConfig auto_config;
  EXPECT_EQ(auto_config.Resolved(), ShuffleStrategy::kSharded);
  auto_config.memory_budget_bytes = 1;
  EXPECT_EQ(auto_config.Resolved(), ShuffleStrategy::kExternal);
}

/// The fanout workload of the sharded-shuffle determinism tests: colliding
/// keys, order-sensitive reduce fold.
JobResult<std::pair<int, std::uint64_t>> FanoutJob(const JobOptions& options) {
  std::vector<int> inputs(3000);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x % 97, x);
    emitter.Emit(x % 251, x + 1);
    emitter.Emit(x % 599, x + 2);
  };
  auto reduce_fn = [](const int& key, const std::vector<int>& values,
                      std::vector<std::pair<int, std::uint64_t>>& out) {
    auto acc = static_cast<std::uint64_t>(key);
    for (int v : values) acc = acc * 31 + static_cast<std::uint64_t>(v);
    out.emplace_back(key, acc);
  };
  return RunMapReduce<int, int, int, std::pair<int, std::uint64_t>>(
      inputs, map_fn, reduce_fn, options);
}

TEST(ExternalShuffleJob, IdenticalToInMemoryAcrossBudgetsAndThreads) {
  JobOptions baseline;
  baseline.num_threads = 1;
  baseline.num_shards = 1;
  const auto reference = FanoutJob(baseline);
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{1} << 10,
                                 std::uint64_t{1} << 14,
                                 std::uint64_t{1} << 30}) {
      JobOptions options;
      options.num_threads = threads;
      options.shuffle.strategy = ShuffleStrategy::kExternal;
      options.shuffle.memory_budget_bytes = budget;
      const auto run = FanoutJob(options);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " budget=" + std::to_string(budget));
      EXPECT_EQ(run.outputs, reference.outputs);
      EXPECT_EQ(run.metrics.pairs_shuffled, reference.metrics.pairs_shuffled);
      EXPECT_EQ(run.metrics.bytes_shuffled, reference.metrics.bytes_shuffled);
      EXPECT_EQ(run.metrics.num_reducers, reference.metrics.num_reducers);
      EXPECT_EQ(run.metrics.max_reducer_input,
                reference.metrics.max_reducer_input);
      EXPECT_TRUE(run.metrics.external_shuffle());
      EXPECT_GE(run.metrics.merge_passes, 1u);
      if (budget < (std::uint64_t{1} << 14)) {
        EXPECT_GT(run.metrics.spill_runs, 0u);
        EXPECT_GT(run.metrics.spill_bytes_written, 0u);
      }
    }
  }
  // The in-memory strategies report no spill activity.
  EXPECT_FALSE(reference.metrics.external_shuffle());
  EXPECT_EQ(reference.metrics.spill_runs, 0u);
}

TEST(ExternalShuffleJob, CombinedRoundMatchesInMemory) {
  std::vector<int> inputs(8000);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<int>(i % 613);
  }
  auto map_fn = [](const int& x, Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(x, x);
    emitter.Emit(x + 1000, 2 * x);
  };
  auto combine_fn = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto reduce_fn = [](const int& key, const std::vector<std::int64_t>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  auto run = [&](const JobOptions& options) {
    auto result = RunMapReduceCombined<int, int, std::int64_t,
                                       std::pair<int, std::int64_t>>(
        inputs, map_fn, combine_fn, reduce_fn, options);
    return result;
  };
  JobOptions plain;
  plain.num_threads = 2;
  const auto reference = run(plain);
  JobOptions external = plain;
  external.shuffle.memory_budget_bytes = 1 << 10;
  const auto spilled = run(external);
  EXPECT_EQ(spilled.outputs, reference.outputs);
  EXPECT_EQ(spilled.metrics.pairs_shuffled, reference.metrics.pairs_shuffled);
  EXPECT_EQ(spilled.metrics.pairs_before_combine,
            reference.metrics.pairs_before_combine);
  EXPECT_TRUE(spilled.metrics.external_shuffle());
  EXPECT_GT(spilled.metrics.spill_runs, 0u);
}

TEST(ExternalShuffleJob, SimulationComposesWithSpilling) {
  // Capacity-q enforcement (simulated) and the real memory budget must
  // coexist: same outputs, both metric families populated.
  JobOptions options;
  options.shuffle.memory_budget_bytes = 1 << 10;
  options.simulation.num_workers = 4;
  options.simulation.reducer_capacity_q = 8;
  const auto run = FanoutJob(options);
  const auto reference = FanoutJob({});
  EXPECT_EQ(run.outputs, reference.outputs);
  EXPECT_TRUE(run.metrics.simulated());
  EXPECT_TRUE(run.metrics.external_shuffle());
  EXPECT_GT(run.metrics.makespan, 0.0);
  EXPECT_GT(run.metrics.spill_runs, 0u);
}

TEST(ExternalShufflePipeline, BackstopReachesEveryRoundAndReports) {
  PipelineOptions options;
  options.shuffle.memory_budget_bytes = 1 << 10;
  Pipeline pipeline(options);
  std::vector<int> inputs(4000);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map1 = [](const int& x, Emitter<int, int>& emitter) {
    emitter.Emit(x % 100, x);
  };
  auto reduce1 = [](const int& key, const std::vector<int>& values,
                    std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t sum = 0;
    for (int v : values) sum += v;
    out.emplace_back(key, sum);
  };
  auto sums = pipeline.AddRound<int, int, int, std::pair<int, std::int64_t>>(
      inputs, map1, reduce1);
  ASSERT_EQ(sums.size(), 100u);
  auto map2 = [](const std::pair<int, std::int64_t>& p,
                 Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(p.first % 2, p.second);
  };
  auto reduce2 = [](const int& key, const std::vector<std::int64_t>& values,
                    std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t sum = 0;
    for (std::int64_t v : values) sum += v;
    out.emplace_back(key, sum);
  };
  pipeline.AddRound<std::pair<int, std::int64_t>, int, std::int64_t,
                    std::pair<int, std::int64_t>>(sums, map2, reduce2);

  const PipelineMetrics& m = pipeline.metrics();
  ASSERT_EQ(m.rounds.size(), 2u);
  EXPECT_TRUE(m.rounds[0].external_shuffle());
  EXPECT_TRUE(m.rounds[1].external_shuffle());
  EXPECT_GT(m.rounds[0].spill_runs, 0u);
  EXPECT_GT(m.total_spill_runs(), 0u);
  EXPECT_GT(m.total_spill_bytes(), 0u);
  EXPECT_GE(m.total_merge_passes(), 2u);
  EXPECT_NE(m.ToString().find("spill runs="), std::string::npos);

  core::Recipe recipe;
  recipe.problem_name = "synthetic";
  recipe.g = [](double q) { return q; };
  recipe.num_inputs = 4000;
  recipe.num_outputs = 100;
  const auto reports = CompareToLowerBound(m, recipe);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].external_shuffle);
  EXPECT_EQ(reports[0].spill_runs, m.rounds[0].spill_runs);
  EXPECT_EQ(reports[0].spill_bytes_written, m.rounds[0].spill_bytes_written);
  EXPECT_NE(ToString(reports).find("spill_runs="), std::string::npos);
}

// ------------------------------------------ family drivers end to end

TEST(ExternalShuffleEndToEnd, HammingSimilarityJoinUnderTightBudget) {
  // The acceptance bar: the hamming driver completes with a budget below
  // 25% of the intermediate data size, produces byte-identical results to
  // the in-memory sharded shuffle, and reports nonzero spill counters.
  const int b = 12, k = 4, d = 1;
  const auto strings = hamming::AllStrings(b);
  const auto in_memory =
      hamming::SplittingSimilarityJoin(strings, b, k, d, {});
  ASSERT_TRUE(in_memory.ok()) << in_memory.status();

  JobOptions options;
  options.shuffle.memory_budget_bytes = in_memory->metrics.bytes_shuffled / 5;
  ASSERT_GT(options.shuffle.memory_budget_bytes, 0u);
  const auto external =
      hamming::SplittingSimilarityJoin(strings, b, k, d, options);
  ASSERT_TRUE(external.ok()) << external.status();

  EXPECT_EQ(external->pairs, in_memory->pairs);
  EXPECT_EQ(external->metrics.pairs_shuffled,
            in_memory->metrics.pairs_shuffled);
  EXPECT_EQ(external->metrics.bytes_shuffled,
            in_memory->metrics.bytes_shuffled);
  EXPECT_EQ(external->metrics.num_reducers, in_memory->metrics.num_reducers);
  EXPECT_EQ(external->metrics.max_reducer_input,
            in_memory->metrics.max_reducer_input);
  EXPECT_TRUE(external->metrics.external_shuffle());
  EXPECT_GT(external->metrics.spill_runs, 0u);
  EXPECT_GT(external->metrics.spill_bytes_written, 0u);
  // The budget really was <25% of what crossed the shuffle.
  EXPECT_LT(4 * options.shuffle.memory_budget_bytes,
            in_memory->metrics.bytes_shuffled);
}

TEST(ExternalShuffleEndToEnd, JoinAggregateUnderTightBudget) {
  const join::Query query = join::ChainQuery(2);
  const auto relations = join::ZipfRelationsForQuery(
      query, /*size=*/800, /*domain=*/40, /*exponent=*/0.8, /*seed=*/5);
  std::vector<const join::Relation*> ptrs;
  for (const auto& r : relations) ptrs.push_back(&r);
  const std::vector<int> shares{1, 4, 1};

  const auto in_memory = join::HyperCubeJoinAggregate(
      query, ptrs, shares, /*group_attr=*/0, /*sum_attr=*/2,
      /*pre_aggregate=*/false, /*seed=*/3, {});
  ASSERT_TRUE(in_memory.ok()) << in_memory.status();

  JobOptions options;
  options.shuffle.memory_budget_bytes = in_memory->metrics.total_bytes() / 5;
  ASSERT_GT(options.shuffle.memory_budget_bytes, 0u);
  const auto external = join::HyperCubeJoinAggregate(
      query, ptrs, shares, 0, 2, false, 3, options);
  ASSERT_TRUE(external.ok()) << external.status();

  EXPECT_EQ(external->sums, in_memory->sums);
  EXPECT_EQ(external->metrics.total_pairs(), in_memory->metrics.total_pairs());
  EXPECT_EQ(external->metrics.total_bytes(), in_memory->metrics.total_bytes());
  EXPECT_GT(external->metrics.total_spill_runs(), 0u);
  EXPECT_GT(external->metrics.total_spill_bytes(), 0u);
  EXPECT_LT(4 * options.shuffle.memory_budget_bytes,
            in_memory->metrics.total_bytes());
}

TEST(ExternalShuffleEndToEnd, MatmulOnePhaseUnderBudget) {
  const int n = 24, tile = 6;
  matmul::Matrix r(n, n), s(n, n);
  common::SplitMix64 rng(11);
  r.FillRandom(rng);
  s.FillRandom(rng);
  const auto in_memory = matmul::MultiplyOnePhase(r, s, tile, {});
  ASSERT_TRUE(in_memory.ok()) << in_memory.status();

  JobOptions options;
  options.shuffle.memory_budget_bytes = in_memory->metrics.bytes_shuffled / 5;
  const auto external = matmul::MultiplyOnePhase(r, s, tile, options);
  ASSERT_TRUE(external.ok()) << external.status();
  EXPECT_EQ(external->product.MaxAbsDiff(in_memory->product), 0.0);
  EXPECT_EQ(external->metrics.pairs_shuffled,
            in_memory->metrics.pairs_shuffled);
  EXPECT_GT(external->metrics.spill_runs, 0u);
}

TEST(ExternalShuffleEndToEnd, SampleGraphUnderBudget) {
  const graph::Graph data = graph::ZipfGraph(/*n=*/300, /*m=*/1500,
                                             /*exponent=*/0.7, /*seed=*/17);
  const graph::Graph pattern(3, {{0, 1}, {1, 2}, {0, 2}});  // triangle
  const auto in_memory =
      graph::MRSampleGraphInstances(data, pattern, /*k=*/6, /*seed=*/2, {});

  JobOptions options;
  options.shuffle.memory_budget_bytes = in_memory.metrics.bytes_shuffled / 5;
  const auto external =
      graph::MRSampleGraphInstances(data, pattern, 6, 2, options);
  EXPECT_EQ(external.instance_count, in_memory.instance_count);
  EXPECT_EQ(external.metrics.pairs_shuffled,
            in_memory.metrics.pairs_shuffled);
  EXPECT_GT(external.metrics.spill_runs, 0u);
}

}  // namespace
}  // namespace mrcost::engine
