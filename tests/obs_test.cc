// The observability layer (src/obs/): trace recording across threads,
// the Chrome trace_event JSON round trip, speculative attempt tagging
// through the real stage-graph executor, registry snapshot determinism,
// and the capture scope's file output.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/engine/executor.h"
#include "src/engine/job.h"
#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace mrcost::obs {
namespace {

/// Enables the global recorder for one test body and clears it after.
class RecorderScope {
 public:
  RecorderScope() { TraceRecorder::Global().Enable(); }
  ~RecorderScope() { TraceRecorder::Global().Disable(); }
};

const TraceEvent* FindEvent(const std::vector<TraceEvent>& events,
                            const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string ArgValue(const TraceEvent& event, const std::string& key) {
  for (const TraceArg& arg : event.args) {
    if (arg.key == key) return arg.value;
  }
  return "";
}

// ------------------------------------------------------- recording

TEST(Trace, DisabledRecorderRecordsNothing) {
  ASSERT_FALSE(TraceRecorder::enabled());
  {
    TraceSpan span("ignored", "test");
    EXPECT_FALSE(span.active());
  }
  TraceInstant("also-ignored", "test");
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST(Trace, SpansNestAndCarryArgs) {
  RecorderScope scope;
  {
    TraceSpan outer("outer", "test", /*round=*/3, /*shard=*/1);
    outer.AddArg(Arg("pairs", std::uint64_t{42}));
    { TraceSpan inner("inner", "test", 3, 1); }
  }
  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = FindEvent(events, "outer");
  const TraceEvent* inner = FindEvent(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->round, 3u);
  EXPECT_EQ(outer->shard, 1u);
  EXPECT_EQ(ArgValue(*outer, "pairs"), "42");
  // RAII nesting: the inner span's window sits inside the outer's.
  EXPECT_GE(inner->t_start_us, outer->t_start_us);
  EXPECT_LE(inner->t_end_us, outer->t_end_us);
}

TEST(Trace, ThreadsGetDistinctLanes) {
  RecorderScope scope;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("work", "test", /*round=*/0,
                       /*shard=*/static_cast<std::uint32_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(Trace, RingBufferDropsOldestAndCounts) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("churn", "test", static_cast<std::uint32_t>(i));
  }
  const auto events = recorder.Snapshot();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(recorder.dropped_events(), 6u);
  // The retained four are the newest (rounds 6..9), oldest-first.
  EXPECT_EQ(events.front().round, 6u);
  EXPECT_EQ(events.back().round, 9u);
  recorder.Disable();
}

// ------------------------------------------------------- JSON round trip

TEST(TraceExport, RoundTripPreservesEvents) {
  RecorderScope scope;
  {
    TraceSpan span("MapPartition", "map", /*round=*/2, /*shard=*/5);
    span.AddArg(Arg("pairs", std::uint64_t{1000}));
    span.AddArg(Arg("ratio", 1.5));
    span.AddArg(Arg("label", "a \"quoted\"\nvalue"));
  }
  TraceInstant("SpeculativeBackup", "speculation", 2,
               {Arg("shard", std::uint32_t{5})});
  const auto recorded = TraceRecorder::Global().Snapshot();
  const std::string json = ToChromeTraceJson(recorded);

  auto parsed = ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), recorded.size());
  const TraceEvent* span = FindEvent(*parsed, "MapPartition");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->phase, 'X');
  EXPECT_EQ(span->category, "map");
  EXPECT_EQ(span->round, 2u);
  EXPECT_EQ(span->shard, 5u);
  EXPECT_EQ(ArgValue(*span, "pairs"), "1000");
  EXPECT_EQ(ArgValue(*span, "ratio"), "1.5");
  EXPECT_EQ(ArgValue(*span, "label"), "a \"quoted\"\nvalue");
  const TraceEvent* instant = FindEvent(*parsed, "SpeculativeBackup");
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(instant->phase, 'i');
}

TEST(TraceExport, RejectsMalformedJson) {
  EXPECT_FALSE(ParseChromeTrace("not json").ok());
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\":[{]}").ok());
  EXPECT_FALSE(ParseChromeTrace("{\"noEvents\":1}").ok());
}

// --------------------------------------------- executor attempt tagging

TEST(TraceExecutor, SpeculativeAttemptsShareTaskIdWithOneWin) {
  RecorderScope scope;
  common::ThreadPool pool(4);
  engine::StageGraphExecutor exec(pool);
  std::atomic<double> clock_ms{0.0};
  exec.SetClockForTest([&] { return clock_ms.load(); });
  engine::SpeculationConfig spec;
  spec.enabled = true;
  spec.slowdown_factor = 2.0;
  spec.min_completed = 3;
  spec.min_task_ms = 0.0;
  exec.ConfigureSpeculation(spec);

  for (int i = 0; i < 3; ++i) {
    exec.AddTask(engine::StageKind::kReduce, 5, {}, [] {},
                 /*speculatable=*/true, "ReduceShard",
                 static_cast<std::uint32_t>(i));
  }
  exec.Wait();

  // Same script as the executor's own speculation test: the straggler's
  // first attempt spins until the backup runs, so the backup always wins.
  std::atomic<int> entries{0};
  std::atomic<bool> release{false};
  exec.AddTask(
      engine::StageKind::kReduce, 5, {},
      [&] {
        if (entries.fetch_add(1) == 0) {
          while (!release.load()) std::this_thread::yield();
        } else {
          release.store(true);
        }
      },
      /*speculatable=*/true, "ReduceShard", 3);
  while (entries.load() == 0) std::this_thread::yield();
  clock_ms.store(1000.0);
  exec.Wait();

  const auto events = TraceRecorder::Global().Snapshot();
  // Group attempt spans by task id.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> attempts;
  for (const TraceEvent& e : events) {
    if (e.phase == 'X' && !ArgValue(e, "attempt").empty()) {
      attempts[e.task_id].push_back(&e);
    }
  }
  ASSERT_EQ(attempts.size(), 4u);  // four tasks, speculated or not
  int speculated = 0;
  for (const auto& [task_id, group] : attempts) {
    ASSERT_GE(group.size(), 1u);
    ASSERT_LE(group.size(), 2u);
    int wins = 0;
    for (const TraceEvent* e : group) {
      if (ArgValue(*e, "outcome") == "win") ++wins;
    }
    EXPECT_EQ(wins, 1) << "task " << task_id;
    if (group.size() == 2) {
      ++speculated;
      std::set<std::string> kinds{ArgValue(*group[0], "attempt"),
                                  ArgValue(*group[1], "attempt")};
      EXPECT_EQ(kinds, (std::set<std::string>{"primary", "backup"}));
      // The backup beat the spinning straggler, so it holds the win.
      for (const TraceEvent* e : group) {
        if (ArgValue(*e, "attempt") == "backup") {
          EXPECT_EQ(ArgValue(*e, "outcome"), "win");
        } else {
          EXPECT_EQ(ArgValue(*e, "outcome"), "loss");
        }
      }
    }
  }
  EXPECT_EQ(speculated, 1);
  // The SpeculativeBackup launch instant was recorded too.
  EXPECT_NE(FindEvent(events, "SpeculativeBackup"), nullptr);
}

// ------------------------------------------------------- registry

TEST(Registry, ShardsMergeAcrossThreads) {
  Registry registry;
  registry.Enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.AddCounter("work.items");
        registry.ObserveStats("work.size", static_cast<double>(i));
        registry.ObserveHistogram("work.hist",
                                  static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.count("work.items"), 1u);
  EXPECT_EQ(snapshot.counters.at("work.items"),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  ASSERT_EQ(snapshot.stats.count("work.size"), 1u);
  EXPECT_EQ(snapshot.stats.at("work.size").count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(snapshot.stats.at("work.size").mean(),
                   (kPerThread - 1) / 2.0);
  ASSERT_EQ(snapshot.histograms.count("work.hist"), 1u);
  EXPECT_EQ(snapshot.histograms.at("work.hist").total(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  registry.Disable();
}

TEST(Registry, SnapshotJsonIsDeterministic) {
  // Identical recording sequences must serialize byte-identically —
  // iteration order never depends on shard or hash-map order.
  auto record = [](Registry& registry) {
    registry.Enable();
    registry.AddCounter("b.second", 2);
    registry.AddCounter("a.first", 1);
    registry.SetGauge("gauge.x", 1.25);
    registry.ObserveStats("stats.s", 3.0);
    registry.ObserveStats("stats.s", 5.0);
    registry.ObserveHistogram("hist.h", 7);
    std::string json = registry.TakeSnapshot().ToJson();
    registry.Disable();
    return json;
  };
  Registry first, second;
  const std::string a = record(first);
  const std::string b = record(second);
  EXPECT_EQ(a, b);
  // Sanity: keys appear in sorted order in the document.
  EXPECT_LT(a.find("a.first"), a.find("b.second"));
}

TEST(Registry, EngineCountersAreRunDeterministic) {
  // Two identical single-round jobs publish identical engine.* counters.
  // Timing-derived entries (durations, speculative outcomes) are
  // legitimately run-dependent and excluded.
  auto run_job = [] {
    Registry& registry = Registry::Global();
    registry.Enable();
    std::vector<std::uint64_t> inputs(1000);
    for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = i;
    auto map_fn = [](const std::uint64_t& x,
                     engine::Emitter<std::uint64_t, int>& emitter) {
      emitter.Emit(x % 37, 1);
    };
    auto reduce_fn = [](const std::uint64_t& key,
                        const std::vector<int>& values,
                        std::vector<std::uint64_t>& out) {
      out.push_back(key * 1000 + values.size());
    };
    engine::JobOptions options;
    options.num_threads = 4;
    auto result =
        engine::RunMapReduce<std::uint64_t, std::uint64_t, int,
                             std::uint64_t>(inputs, map_fn, reduce_fn,
                                            options);
    std::map<std::string, std::uint64_t> engine_counters;
    for (const auto& [name, value] :
         registry.TakeSnapshot().counters) {
      if (name.rfind("engine.", 0) == 0) engine_counters[name] = value;
    }
    registry.Disable();
    return engine_counters;
  };
  const auto first = run_job();
  const auto second = run_job();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.at("engine.inputs"), 1000u);
  EXPECT_EQ(first.at("engine.pairs_shuffled"), 1000u);
  EXPECT_EQ(first.at("engine.reducers"), 37u);
}

// ------------------------------------------------------- capture scope

TEST(ScopedCapture, WritesTraceAndMetricsFiles) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string trace_path = (dir / "mrcost_obs_test_trace.json").string();
  const std::string metrics_path =
      (dir / "mrcost_obs_test_metrics.json").string();
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  {
    ScopedCapture capture(trace_path, metrics_path);
    ASSERT_TRUE(capture.active());
    TraceSpan span("captured", "test");
    Registry::Global().AddCounter("capture.test", 3);
  }
  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  auto parsed = ParseChromeTrace(trace_buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_NE(FindEvent(*parsed, "captured"), nullptr);

  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good());
  std::stringstream metrics_buf;
  metrics_buf << metrics_in.rdbuf();
  EXPECT_NE(metrics_buf.str().find("\"capture.test\":3"),
            std::string::npos);
  // Capture scopes close fully: recording is off again.
  EXPECT_FALSE(TraceRecorder::enabled());
  EXPECT_FALSE(MetricsEnabled());
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(ScopedCapture, EmptyPathsAreInactive) {
  ScopedCapture capture("", "");
  EXPECT_FALSE(capture.active());
  EXPECT_FALSE(TraceRecorder::enabled());
}

TEST(CaptureFlags, ParsesSharedFlagConvention) {
  const char* argv_in[] = {"prog", "--trace_out=/tmp/t.json", "positional",
                           "--metrics_out=/tmp/m.json"};
  const CaptureFlags flags =
      ParseCaptureFlags(4, const_cast<char**>(argv_in));
  EXPECT_EQ(flags.trace_out, "/tmp/t.json");
  EXPECT_EQ(flags.metrics_out, "/tmp/m.json");
  const CaptureFlags none = ParseCaptureFlags(1, const_cast<char**>(argv_in));
  EXPECT_TRUE(none.trace_out.empty());
}

// -------------------------------------------- end-to-end through a job

TEST(TraceEndToEnd, JobProducesStageSpansForEveryRound) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string trace_path =
      (dir / "mrcost_obs_test_job_trace.json").string();
  std::remove(trace_path.c_str());
  {
    ScopedCapture capture(trace_path);
    std::vector<std::uint64_t> inputs(500);
    for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = i;
    auto map_fn = [](const std::uint64_t& x,
                     engine::Emitter<std::uint64_t, int>& emitter) {
      emitter.Emit(x % 11, 1);
    };
    auto reduce_fn = [](const std::uint64_t& key,
                        const std::vector<int>& values,
                        std::vector<std::uint64_t>& out) {
      out.push_back(key + values.size());
    };
    engine::JobOptions options;
    options.num_threads = 4;
    options.num_shards = 4;
    auto result = engine::RunMapReduce<std::uint64_t, std::uint64_t, int,
                                       std::uint64_t>(inputs, map_fn,
                                                      reduce_fn, options);
    ASSERT_EQ(result.outputs.size(), 11u);
  }
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = ParseChromeTrace(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  std::set<std::string> categories;
  for (const TraceEvent& e : *parsed) categories.insert(e.category);
  EXPECT_TRUE(categories.count("map"));
  EXPECT_TRUE(categories.count("shuffle"));
  EXPECT_TRUE(categories.count("reduce"));
  EXPECT_TRUE(categories.count("round"));
  const TraceEvent* round = nullptr;
  for (const TraceEvent& e : *parsed) {
    if (e.category == "round") round = &e;
  }
  ASSERT_NE(round, nullptr);
  EXPECT_FALSE(ArgValue(*round, "realized_q").empty());
  EXPECT_FALSE(ArgValue(*round, "realized_r").empty());
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace mrcost::obs
