#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/lower_bound.h"
#include "src/core/schema_stats.h"
#include "src/core/schema_validator.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"
#include "src/matmul/problem.h"

namespace mrcost::matmul {
namespace {

Matrix RandomMatrix(int n, std::uint64_t seed) {
  common::SplitMix64 rng(seed);
  Matrix m(n, n);
  m.FillRandom(rng);
  return m;
}

// -------------------------------------------------------------- matrix

TEST(Matrix, SerialMultiplyHandChecked) {
  Matrix a(2, 2), b(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  b.At(0, 0) = 5;
  b.At(0, 1) = 6;
  b.At(1, 0) = 7;
  b.At(1, 1) = 8;
  const Matrix c = SerialMultiply(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50);
}

TEST(Matrix, IdentityMultiplication) {
  const int n = 16;
  Matrix identity(n, n);
  for (int i = 0; i < n; ++i) identity.At(i, i) = 1.0;
  const Matrix a = RandomMatrix(n, 5);
  EXPECT_DOUBLE_EQ(SerialMultiply(a, identity).MaxAbsDiff(a), 0.0);
  EXPECT_DOUBLE_EQ(SerialMultiply(identity, a).MaxAbsDiff(a), 0.0);
}

// ------------------------------------------------------------- problem

TEST(MatMulProblem, DependenciesAreRowAndColumn) {
  const MatMulProblem p(4);
  EXPECT_EQ(p.num_inputs(), 32u);
  EXPECT_EQ(p.num_outputs(), 16u);
  // t_{1,2}: row 1 of R (ids 4..7), column 2 of S (ids 16 + {2,6,10,14}).
  const auto deps = p.InputsOfOutput(1 * 4 + 2);
  EXPECT_EQ(deps.size(), 8u);
  EXPECT_NE(std::find(deps.begin(), deps.end(), 4u), deps.end());
  EXPECT_NE(std::find(deps.begin(), deps.end(), 16u + 2u), deps.end());
}

class OnePhaseSchemaTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OnePhaseSchemaTest, ValidAndExactlyOptimal) {
  const auto [n, s] = GetParam();
  const MatMulProblem problem(n);
  auto schema = OnePhaseSchema::Make(n, s);
  ASSERT_TRUE(schema.ok()) << schema.status();
  const std::uint64_t q = schema->reducer_size();  // 2sn
  EXPECT_TRUE(core::ValidateSchema(problem, *schema, q).ok());
  const auto stats = core::ComputeSchemaStats(*schema, problem.num_inputs());
  // r = n/s exactly, which equals the Section 6.1 bound 2n^2/q.
  EXPECT_DOUBLE_EQ(stats.replication_rate, static_cast<double>(n) / s);
  EXPECT_DOUBLE_EQ(MatMulLowerBound(n, static_cast<double>(q)),
                   static_cast<double>(n) / s);
  EXPECT_EQ(stats.max_reducer_load, q);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OnePhaseSchemaTest,
                         ::testing::Values(std::tuple{4, 1}, std::tuple{4, 2},
                                           std::tuple{4, 4}, std::tuple{6, 2},
                                           std::tuple{6, 3},
                                           std::tuple{8, 2},
                                           std::tuple{8, 4},
                                           std::tuple{9, 3}));

TEST(OnePhaseSchema, RejectsNonDivisor) {
  EXPECT_FALSE(OnePhaseSchema::Make(8, 3).ok());
  EXPECT_FALSE(OnePhaseSchema::Make(8, 0).ok());
}

// ---------------------------------------- phase-1 cube schema (Fig. 5)

class CubeSchemaTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CubeSchemaTest, CoversEveryProductAtQEquals2st) {
  const auto [n, s, t] = GetParam();
  const MatMulPhase1Problem problem(n);
  auto schema = TwoPhaseCubeSchema::Make(n, s, t);
  ASSERT_TRUE(schema.ok()) << schema.status();
  // The schema's q is exactly 2st (the Section 6.3 constraint).
  EXPECT_TRUE(
      core::ValidateSchema(problem, *schema, schema->reducer_size()).ok());
  EXPECT_FALSE(
      core::ValidateSchema(problem, *schema, schema->reducer_size() - 1)
          .ok());
  // Replication: each element goes to n/s reducers.
  const auto stats = core::ComputeSchemaStats(*schema, problem.num_inputs());
  EXPECT_DOUBLE_EQ(stats.replication_rate, static_cast<double>(n) / s);
  EXPECT_EQ(stats.max_reducer_load, schema->reducer_size());
  // Total communication: each of the 2n^2 elements goes to n/s cells, so
  // assignments = 2n^3/s — the Section 6.3 round-1 formula.
  EXPECT_DOUBLE_EQ(static_cast<double>(stats.total_assignments),
                   2.0 * n * n * n / s);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CubeSchemaTest,
                         ::testing::Values(std::tuple{4, 2, 1},
                                           std::tuple{6, 2, 3},
                                           std::tuple{6, 3, 2},
                                           std::tuple{8, 4, 2},
                                           std::tuple{8, 2, 2},
                                           std::tuple{9, 3, 3}));

TEST(CubeSchema, Phase1ProblemShape) {
  const MatMulPhase1Problem p(5);
  EXPECT_EQ(p.num_inputs(), 50u);
  EXPECT_EQ(p.num_outputs(), 125u);
  // x_{1,2,3} depends on r_12 (id 7) and s_23 (id 25 + 13).
  const auto deps = p.InputsOfOutput((1 * 5 + 2) * 5 + 3);
  EXPECT_EQ(deps, (std::vector<core::InputId>{7, 25 + 13}));
}

TEST(CubeSchema, RejectsNonDivisors) {
  EXPECT_FALSE(TwoPhaseCubeSchema::Make(8, 3, 2).ok());
  EXPECT_FALSE(TwoPhaseCubeSchema::Make(8, 2, 3).ok());
}

TEST(MatMulBounds, RecipeMatchesClosedForm) {
  const core::Recipe recipe = MatMulRecipe(32);
  for (double q : {64.0, 256.0, 2048.0}) {
    EXPECT_NEAR(core::ReplicationLowerBound(recipe, q),
                MatMulLowerBound(32, q), 1e-9);
  }
  EXPECT_TRUE(core::CheckMonotoneGOverQ(recipe, 1, 1e8).ok());
}

// ---------------------------------------------------------- one phase

class OnePhaseMultiplyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OnePhaseMultiplyTest, MatchesSerialAndCommunicationFormula) {
  const auto [n, tile] = GetParam();
  const Matrix a = RandomMatrix(n, 100 + n);
  const Matrix b = RandomMatrix(n, 200 + n);
  auto result = MultiplyOnePhase(a, b, tile);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(result->product.MaxAbsDiff(SerialMultiply(a, b)), 1e-9);
  // Communication: every R element goes to n/tile reducers, likewise S:
  // pairs = 2n^2 * (n/tile) = 4n^4 / q with q = 2*tile*n.
  const double q = 2.0 * tile * n;
  EXPECT_DOUBLE_EQ(static_cast<double>(result->metrics.pairs_shuffled),
                   OnePhaseCommunication(n, q));
  EXPECT_DOUBLE_EQ(result->metrics.replication_rate(),
                   static_cast<double>(n) / tile);
  EXPECT_EQ(result->metrics.max_reducer_input, static_cast<std::uint64_t>(q));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OnePhaseMultiplyTest,
                         ::testing::Values(std::tuple{4, 2}, std::tuple{8, 2},
                                           std::tuple{8, 4},
                                           std::tuple{12, 3},
                                           std::tuple{16, 4},
                                           std::tuple{16, 16},
                                           std::tuple{20, 5}));

TEST(OnePhase, RejectsBadTile) {
  const Matrix a = RandomMatrix(8, 1), b = RandomMatrix(8, 2);
  EXPECT_FALSE(MultiplyOnePhase(a, b, 3).ok());
  const Matrix rect(8, 4);
  EXPECT_FALSE(MultiplyOnePhase(a, rect, 2).ok());
}

// ---------------------------------------------------------- two phase

class TwoPhaseMultiplyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TwoPhaseMultiplyTest, MatchesSerialAndCommunicationFormula) {
  const auto [n, s, t] = GetParam();
  const Matrix a = RandomMatrix(n, 300 + n);
  const Matrix b = RandomMatrix(n, 400 + n);
  auto result = MultiplyTwoPhase(a, b, s, t);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(result->product.MaxAbsDiff(SerialMultiply(a, b)), 1e-9);
  ASSERT_EQ(result->metrics.rounds.size(), 2u);
  const double n3 = std::pow(static_cast<double>(n), 3);
  // Round 1 moves 2n^3/s pairs; round 2 moves n^3/t partial sums
  // (Section 6.3).
  EXPECT_DOUBLE_EQ(
      static_cast<double>(result->metrics.rounds[0].pairs_shuffled),
      2.0 * n3 / s);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(result->metrics.rounds[1].pairs_shuffled),
      n3 / t);
  // Round-1 reducers receive q = 2st inputs each.
  EXPECT_EQ(result->metrics.rounds[0].max_reducer_input,
            static_cast<std::uint64_t>(2 * s * t));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwoPhaseMultiplyTest,
                         ::testing::Values(std::tuple{4, 2, 1},
                                           std::tuple{8, 2, 1},
                                           std::tuple{8, 4, 2},
                                           std::tuple{12, 4, 2},
                                           std::tuple{12, 2, 2},
                                           std::tuple{16, 4, 2},
                                           std::tuple{16, 8, 4},
                                           std::tuple{18, 6, 3}));

TEST(TwoPhase, RejectsBadTiles) {
  const Matrix a = RandomMatrix(8, 1), b = RandomMatrix(8, 2);
  EXPECT_FALSE(MultiplyTwoPhase(a, b, 3, 2).ok());
  EXPECT_FALSE(MultiplyTwoPhase(a, b, 2, 3).ok());
}

TEST(TwoPhase, AspectRatio2To1IsOptimal) {
  // At fixed q = 2st = 16, communication 2n^3/s + n^3/t is minimized at
  // s = 2t, i.e. (s,t) = (4,2); both square (wrong) aspect ratios lose.
  const int n = 16;
  const double q = 16;
  auto comm = [&](int s, int t) {
    const double n3 = std::pow(static_cast<double>(n), 3);
    return 2.0 * n3 / s + n3 / t;
  };
  EXPECT_LT(comm(4, 2), comm(2, 4));
  EXPECT_LT(comm(4, 2), comm(8, 1));
  // At the integral optimum the closed form 4n^3/sqrt(q) is exact.
  EXPECT_DOUBLE_EQ(comm(4, 2), TwoPhaseCommunication(n, q));
}

TEST(TwoPhase, NeverWorseThanOnePhaseBelowCrossover) {
  // Section 6.3's headline: for q < n^2, two-phase communication is lower;
  // they cross at q = n^2.
  const int n = 64;
  for (double q : {128.0, 512.0, 2048.0}) {
    EXPECT_LT(TwoPhaseCommunication(n, q), OnePhaseCommunication(n, q))
        << q;
  }
  const double crossover = static_cast<double>(n) * n;
  EXPECT_NEAR(TwoPhaseCommunication(n, crossover),
              OnePhaseCommunication(n, crossover), 1e-6);
  EXPECT_GT(TwoPhaseCommunication(n, 2 * crossover),
            OnePhaseCommunication(n, 2 * crossover));
}

TEST(TwoPhase, MeasuredCommunicationBeatsOnePhaseAtSameQ) {
  // Run both algorithms at matched reducer-size q and compare measured
  // totals — the paper's claim on real data flows.
  const int n = 16;
  const int s = 4, t = 2;               // q = 2st = 16
  const int one_phase_tile = 1;         // one-phase with q = 2n = 32 >= 16
  const Matrix a = RandomMatrix(n, 1), b = RandomMatrix(n, 2);
  auto two = MultiplyTwoPhase(a, b, s, t);
  auto one = MultiplyOnePhase(a, b, one_phase_tile);
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(one.ok());
  EXPECT_LT(two->metrics.total_pairs(), one->metrics.pairs_shuffled);
}

TEST(TwoPhase, OptimalTilesRespectDivisibilityAndRatio) {
  const auto [s, t] = OptimalTwoPhaseTiles(64, 256);
  EXPECT_EQ(64 % s, 0);
  EXPECT_EQ(64 % t, 0);
  EXPECT_EQ(s, 16);  // sqrt(256)
  EXPECT_EQ(t, 8);   // sqrt(256)/2
}

}  // namespace
}  // namespace mrcost::matmul
