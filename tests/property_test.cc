// Cross-module property tests: the paper's central soundness claim is that
// the recipe of Section 2.4 lower-bounds the replication rate of EVERY
// valid mapping schema. Here we confront every implemented algorithm with
// the corresponding bound: for each schema we measure its true q (max
// reducer load) and true r over the full input domain, check validity, and
// assert r >= lower_bound(q) (within floating-point slack). If any schema
// ever dipped below the bound, either the schema enumeration or the bound
// derivation would be broken.

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/combinatorics.h"
#include "src/core/lower_bound.h"
#include "src/core/schema_stats.h"
#include "src/core/schema_validator.h"
#include "src/graph/bucketing.h"
#include "src/graph/problem.h"
#include "src/graph/triangle.h"
#include "src/graph/two_path.h"
#include "src/hamming/bounds.h"
#include "src/hamming/problem.h"
#include "src/hamming/schemas.h"
#include "src/matmul/problem.h"

namespace mrcost {
namespace {

/// Validates `schema` against `problem` at the schema's realized q, then
/// asserts measured r >= recipe bound at that q.
void CheckSoundness(const core::Problem& problem,
                    const core::MappingSchema& schema,
                    const core::Recipe& recipe, double slack = 1.000001) {
  const auto stats = core::ComputeSchemaStats(schema, problem.num_inputs());
  const std::uint64_t q = stats.max_reducer_load;
  ASSERT_TRUE(core::ValidateSchema(problem, schema, q).ok())
      << schema.name();
  const double bound = core::ClampedReplicationLowerBound(
      recipe, static_cast<double>(q));
  EXPECT_GE(stats.replication_rate * slack, bound)
      << schema.name() << ": measured r=" << stats.replication_rate
      << " below bound " << bound << " at q=" << q;
}

// --------------------------------------------------------- Hamming-1

class HammingSoundness : public ::testing::TestWithParam<int> {};

TEST_P(HammingSoundness, AllSchemasRespectTheLowerBound) {
  const int b = GetParam();
  const hamming::HammingProblem problem(b, 1);
  const core::Recipe recipe = hamming::Hamming1Recipe(b);

  CheckSoundness(problem, hamming::PairsSchema(b), recipe);
  CheckSoundness(problem,
                 hamming::SingleReducerSchema(problem.num_inputs()), recipe);
  for (int c = 2; c <= b; ++c) {
    if (b % c == 0) {
      auto splitting = hamming::SplittingSchema::Make(b, c);
      ASSERT_TRUE(splitting.ok());
      CheckSoundness(problem, *splitting, recipe);
    }
    auto uneven = hamming::UnevenSplittingSchema::Make(b, c);
    ASSERT_TRUE(uneven.ok());
    CheckSoundness(problem, *uneven, recipe);
  }
  if (b % 2 == 0) {
    for (int k = 1; k <= b / 2; ++k) {
      if ((b / 2) % k != 0) continue;
      auto weight = hamming::Weight2DSchema::Make(b, k);
      ASSERT_TRUE(weight.ok());
      CheckSoundness(problem, *weight, recipe);
    }
  }
  for (int d : {3, 4}) {
    if (b % d != 0) continue;
    auto kd = hamming::WeightKDSchema::Make(b, d, 1);
    if (kd.ok()) CheckSoundness(problem, *kd, recipe);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HammingSoundness,
                         ::testing::Values(4, 6, 8, 10, 12));

TEST(HammingSoundness, SplittingSitsExactlyOnTheBound) {
  // The Splitting algorithm is the tight case: measured r equals the bound
  // exactly (Figure 1's dots lie on the hyperbola).
  for (const auto& [b, c] :
       std::vector<std::pair<int, int>>{{8, 2}, {8, 4}, {12, 3}}) {
    const hamming::HammingProblem problem(b, 1);
    auto schema = hamming::SplittingSchema::Make(b, c);
    ASSERT_TRUE(schema.ok());
    const auto stats =
        core::ComputeSchemaStats(*schema, problem.num_inputs());
    const double bound = core::ReplicationLowerBound(
        hamming::Hamming1Recipe(b),
        static_cast<double>(stats.max_reducer_load));
    EXPECT_NEAR(stats.replication_rate, bound, 1e-9);
  }
}

// ---------------------------------------------------------- triangles

class TriangleSoundness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TriangleSoundness, PartitionSchemaRespectsBound) {
  const auto [n, k] = GetParam();
  const graph::TriangleProblem problem(n);
  const graph::NodeBucketer bucketer(k, /*seed=*/3);
  const graph::TrianglePartitionSchema schema(n, bucketer);
  // The triangle g(q) bound is derived with the approximations |I|=n^2/2,
  // |O|=n^3/6; at small n the exact binomials differ by ~ (1 - 1/n), so
  // allow that much slack.
  CheckSoundness(problem, schema, graph::TriangleRecipe(n), 1.10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriangleSoundness,
                         ::testing::Values(std::tuple{10, 1}, std::tuple{10, 2},
                                           std::tuple{12, 3},
                                           std::tuple{15, 4},
                                           std::tuple{18, 3},
                                           std::tuple{20, 5}));

// ------------------------------------------------------------ 2-paths

class TwoPathSoundness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TwoPathSoundness, BothSchemasRespectBound) {
  const auto [n, k] = GetParam();
  const graph::TwoPathProblem problem(n);
  const core::Recipe recipe = graph::TwoPathRecipe(n);
  CheckSoundness(problem, graph::TwoPathNodeSchema(n), recipe, 1.15);
  const graph::NodeBucketer bucketer(k, 7);
  CheckSoundness(problem, graph::TwoPathBucketSchema(n, bucketer), recipe,
                 1.15);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwoPathSoundness,
                         ::testing::Values(std::tuple{8, 2}, std::tuple{10, 3},
                                           std::tuple{12, 2},
                                           std::tuple{14, 4}));

// ----------------------------------------------------------- mat mul

class MatMulSoundness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatMulSoundness, OnePhaseSchemaSitsExactlyOnTheBound) {
  const auto [n, s] = GetParam();
  const matmul::MatMulProblem problem(n);
  auto schema = matmul::OnePhaseSchema::Make(n, s);
  ASSERT_TRUE(schema.ok());
  CheckSoundness(problem, *schema, matmul::MatMulRecipe(n));
  // Exactness: r == 2n^2/q.
  const auto stats = core::ComputeSchemaStats(*schema, problem.num_inputs());
  EXPECT_DOUBLE_EQ(
      stats.replication_rate,
      matmul::MatMulLowerBound(n, static_cast<double>(
                                      stats.max_reducer_load)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatMulSoundness,
                         ::testing::Values(std::tuple{4, 2}, std::tuple{8, 2},
                                           std::tuple{8, 4}, std::tuple{9, 3},
                                           std::tuple{12, 4},
                                           std::tuple{12, 6}));

// ----------------------------------------------- distance-d splitting

class DistanceDSoundness
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistanceDSoundness, SchemaIsValidForItsRealizedQ) {
  // No tight lower bound exists for d >= 2 (Section 3.6); the property we
  // can still assert is schema validity at the realized q and the exact
  // replication C(k,d).
  const auto [b, k, d] = GetParam();
  auto schema = hamming::SplittingDistanceDSchema::Make(b, k, d);
  ASSERT_TRUE(schema.ok());
  const hamming::HammingProblem problem(b, d);
  const auto stats = core::ComputeSchemaStats(*schema, problem.num_inputs());
  EXPECT_TRUE(
      core::ValidateSchema(problem, *schema, stats.max_reducer_load).ok());
  EXPECT_DOUBLE_EQ(stats.replication_rate,
                   static_cast<double>(common::BinomialExact(k, d)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistanceDSoundness,
                         ::testing::Values(std::tuple{8, 4, 2},
                                           std::tuple{10, 5, 2},
                                           std::tuple{12, 4, 3},
                                           std::tuple{12, 6, 2}));

}  // namespace
}  // namespace mrcost
