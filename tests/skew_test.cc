// The randomized skew/fault harness (adaptive skew defense): Zipf-skewed
// synthetic jobs and all four problem-family reproductions run under
// straggler injection through every defense combination — {hash,
// sampled-range} partitioning x speculation on/off x hot-key splitting —
// asserting (1) the defended engine's outputs stay byte-identical to the
// undefended run for every thread/shard count, and (2) the sampled-range
// partitioner strictly improves the simulated load balance once the key
// distribution is genuinely skewed (zipf >= 1.2). The defenses may only
// move *where* and *when* work runs, never *what* it computes.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/engine/job.h"
#include "src/engine/partitioner.h"
#include "src/engine/plan.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/triangle.h"
#include "src/hamming/bitstring.h"
#include "src/hamming/similarity_join.h"
#include "src/join/generators.h"
#include "src/join/hypercube.h"
#include "src/join/query.h"
#include "src/join/relation.h"
#include "src/join/shares.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"

namespace mrcost::engine {
namespace {

// ------------------------------------------------ synthetic zipf workload

/// Order-sensitive fold over Zipf-drawn keys: any deviation in grouping,
/// group order, or value order under a defense changes the output bytes.
struct ZipfJob {
  std::vector<std::uint64_t> inputs;

  ZipfJob(std::size_t n, std::uint64_t num_keys, double exponent,
          std::uint64_t seed) {
    common::SplitMix64 rng(seed);
    common::ZipfDistribution zipf(num_keys, exponent);
    inputs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) inputs.push_back(zipf.Sample(rng));
  }

  static void Map(const std::uint64_t& x,
                  Emitter<std::uint64_t, std::uint64_t>& emitter) {
    emitter.Emit(x, x * 2654435761ULL);
    emitter.Emit(x / 3 + 1, x + 1);
  }
  static void Reduce(const std::uint64_t& key,
                     const std::vector<std::uint64_t>& values,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                         out) {
    std::uint64_t acc = key;
    for (std::uint64_t v : values) acc = acc * 1099511628211ULL + v;
    out.emplace_back(key, acc);
  }

  JobResult<std::pair<std::uint64_t, std::uint64_t>> Run(
      const JobOptions& options) const {
    return RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                        std::pair<std::uint64_t, std::uint64_t>>(
        inputs, Map, Reduce, options);
  }
};

/// The straggler-injected simulated cluster every harness run executes
/// on: 16 workers, a quarter of them 4x slow, mild jitter.
SimulationOptions StragglerCluster(std::uint64_t seed) {
  SimulationOptions sim;
  sim.num_workers = 16;
  sim.straggler_fraction = 0.25;
  sim.straggler_slowdown = 4.0;
  sim.speed_jitter = 0.1;
  sim.seed = seed;
  return sim;
}

TEST(SkewHarness, DefensesPreserveOutputsAcrossZipfStragglersAndShards) {
  // The core property: for every zipf exponent x partitioner x
  // speculation x threads x shards combination, the defended run's
  // outputs are byte-identical to the undefended serial reference.
  const double exponents[] = {0.8, 1.2, 1.6};
  for (std::size_t e = 0; e < 3; ++e) {
    const ZipfJob job(20000, 512, exponents[e], /*seed=*/29 + e);
    JobOptions serial;
    serial.num_threads = 1;
    serial.shuffle.strategy = ShuffleStrategy::kSerial;
    const auto reference = job.Run(serial);

    for (PartitionerKind partitioner :
         {PartitionerKind::kHash, PartitionerKind::kSampledRange}) {
      for (bool speculation : {false, true}) {
        for (std::size_t threads : {1u, 4u}) {
          for (std::size_t shards : {1u, 3u, 8u}) {
            SCOPED_TRACE(std::string("zipf=") +
                         std::to_string(exponents[e]) + " partitioner=" +
                         ToString(partitioner) + " speculation=" +
                         (speculation ? "on" : "off") + " threads=" +
                         std::to_string(threads) + " shards=" +
                         std::to_string(shards));
            JobOptions options;
            options.num_threads = threads;
            options.num_shards = shards;
            options.shuffle.strategy = ShuffleStrategy::kSharded;
            options.shuffle.partitioner = partitioner;
            options.speculation.enabled = speculation;
            options.speculation.slowdown_factor = 1.5;  // fire eagerly
            options.speculation.min_completed = 1;
            options.speculation.min_task_ms = 0.0;
            options.simulation = StragglerCluster(/*seed=*/5);
            options.simulation.defense.partitioner = partitioner;
            options.simulation.defense.speculation = speculation;
            options.simulation.defense.hot_key_split_threshold = 2048;

            const auto run = job.Run(options);
            EXPECT_EQ(run.outputs, reference.outputs);
            EXPECT_EQ(run.metrics.pairs_shuffled,
                      reference.metrics.pairs_shuffled);
            EXPECT_EQ(run.metrics.num_reducers,
                      reference.metrics.num_reducers);
            EXPECT_GE(run.metrics.speculative_launched,
                      run.metrics.speculative_won);
          }
        }
      }
    }
  }
}

TEST(SkewHarness, SampledRangeStrictlyImprovesImbalanceUnderSkew) {
  // At zipf >= 1.2 the weighted range assignment must beat blind hashing
  // on simulated worker balance, for every seed tried. Hot-key splitting
  // is on for both sides (same threshold), so the comparison isolates
  // placement: hash still collides unrelated hot ranges onto one worker,
  // the sampled range plan packs by weight.
  for (double exponent : {1.2, 1.6}) {
    for (std::uint64_t seed : {3u, 11u, 27u}) {
      SCOPED_TRACE("zipf=" + std::to_string(exponent) +
                   " seed=" + std::to_string(seed));
      const ZipfJob job(30000, 2048, exponent, seed);
      auto imbalance_with = [&](PartitionerKind partitioner) {
        JobOptions options;
        options.num_threads = 4;
        options.simulation = StragglerCluster(seed);
        options.simulation.defense.partitioner = partitioner;
        options.simulation.defense.hot_key_split_threshold = 512;
        const auto run = job.Run(options);
        return run.metrics.load_imbalance;
      };
      const double hashed = imbalance_with(PartitionerKind::kHash);
      const double ranged = imbalance_with(PartitionerKind::kSampledRange);
      EXPECT_LT(ranged, hashed);
      EXPECT_GE(ranged, 1.0);  // still a valid imbalance ratio
    }
  }
}

TEST(SkewHarness, HotKeySplitRestoresCapacityCompliance) {
  // An all-hot workload blows the simulated capacity q; splitting at q
  // must remove the violations (each sub-group fits) while counting what
  // it split — and never change the engine outputs.
  const ZipfJob job(20000, 8, /*exponent=*/1.6, /*seed=*/41);
  JobOptions serial;
  serial.num_threads = 1;
  serial.shuffle.strategy = ShuffleStrategy::kSerial;
  const auto reference = job.Run(serial);

  JobOptions undefended;
  undefended.num_threads = 4;
  undefended.simulation = StragglerCluster(9);
  undefended.simulation.reducer_capacity_q = 1024;
  const auto broken = job.Run(undefended);
  ASSERT_GT(broken.metrics.capacity_violations, 0u);

  JobOptions defended = undefended;
  defended.simulation.defense.hot_key_split_threshold = 1024;
  const auto fixed = job.Run(defended);
  EXPECT_EQ(fixed.metrics.capacity_violations, 0u);
  EXPECT_GT(fixed.metrics.hot_keys_split, 0u);
  EXPECT_EQ(fixed.outputs, reference.outputs);
  EXPECT_EQ(broken.outputs, reference.outputs);
}

TEST(SkewHarness, SimulatedSpeculationRecoversMakespan) {
  // With stragglers holding hot queues, simulated backups must cut the
  // makespan (first-finisher semantics: effective finish is the min of
  // the original and the backup) and report what they launched.
  const ZipfJob job(30000, 512, /*exponent=*/1.4, /*seed=*/7);
  JobOptions undefended;
  undefended.num_threads = 4;
  undefended.simulation = StragglerCluster(21);
  const auto slow = job.Run(undefended);

  JobOptions defended = undefended;
  defended.simulation.defense.speculation = true;
  defended.simulation.defense.speculation_slowdown_factor = 1.5;
  const auto fast = job.Run(defended);
  EXPECT_GT(fast.metrics.speculative_launched, 0u);
  EXPECT_GE(fast.metrics.speculative_launched,
            fast.metrics.speculative_won);
  EXPECT_LT(fast.metrics.makespan, slow.metrics.makespan);
  EXPECT_EQ(fast.outputs, slow.outputs);
}

// ----------------------------------- the four families, defended vs not

/// Full defense: sampled-range shard placement, engine speculation, and
/// the simulated cluster's own defenses, on the straggler cluster.
JobOptions DefendedOptions(std::uint64_t seed) {
  JobOptions options;
  options.num_threads = 4;
  options.shuffle.partitioner = PartitionerKind::kSampledRange;
  options.speculation.enabled = true;
  options.speculation.slowdown_factor = 1.5;
  options.speculation.min_completed = 1;
  options.speculation.min_task_ms = 0.0;
  options.simulation = StragglerCluster(seed);
  options.simulation.defense.partitioner = PartitionerKind::kSampledRange;
  options.simulation.defense.speculation = true;
  options.simulation.defense.hot_key_split_threshold = 4096;
  return options;
}

JobOptions UndefendedOptions(std::uint64_t seed) {
  JobOptions options;
  options.num_threads = 4;
  options.simulation = StragglerCluster(seed);
  return options;
}

TEST(SkewFamilies, HammingByteIdenticalUnderDefense) {
  const int b = 16;
  const auto strings = hamming::SkewedStrings(b, 3000, /*num_hubs=*/8,
                                              /*exponent=*/1.2, /*seed=*/3);
  auto plain = hamming::SplittingSimilarityJoin(strings, b, /*k=*/4,
                                                /*d=*/1,
                                                UndefendedOptions(17));
  auto defended = hamming::SplittingSimilarityJoin(strings, b, 4, 1,
                                                   DefendedOptions(17));
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_TRUE(defended.ok()) << defended.status();
  EXPECT_EQ(defended->pairs, plain->pairs);
  EXPECT_EQ(defended->metrics.pairs_shuffled, plain->metrics.pairs_shuffled);
}

TEST(SkewFamilies, JoinByteIdenticalUnderDefense) {
  const auto query = join::ChainQuery(3);
  const join::Value domain = 30;
  const auto rels = join::ZipfRelationsForQuery(
      query, /*size_per_relation=*/400, domain, /*exponent=*/1.0,
      /*seed=*/17);
  std::vector<const join::Relation*> ptrs;
  for (const auto& r : rels) ptrs.push_back(&r);
  auto shares = join::OptimizeShares(query, {400, 400, 400}, 16);
  ASSERT_TRUE(shares.ok());
  const auto rounded = join::RoundShares(shares->shares, 16);
  auto plain = join::HyperCubeJoin(query, ptrs, rounded, /*seed=*/1,
                                   UndefendedOptions(23));
  auto defended = join::HyperCubeJoin(query, ptrs, rounded, 1,
                                      DefendedOptions(23));
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_TRUE(defended.ok()) << defended.status();
  EXPECT_EQ(defended->results, plain->results);
  EXPECT_EQ(defended->metrics.pairs_shuffled, plain->metrics.pairs_shuffled);
}

TEST(SkewFamilies, MatmulByteIdenticalUnderDefense) {
  const int n = 48;
  common::SplitMix64 rng(9);
  matmul::Matrix a(n, n), b(n, n);
  a.FillZipf(rng, 1.0);
  b.FillZipf(rng, 1.0);
  auto plain = matmul::MultiplyOnePhase(a, b, /*tile=*/8,
                                        UndefendedOptions(31));
  auto defended = matmul::MultiplyOnePhase(a, b, 8, DefendedOptions(31));
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_TRUE(defended.ok()) << defended.status();
  EXPECT_EQ(defended->product.MaxAbsDiff(plain->product), 0.0);
  EXPECT_EQ(defended->metrics.pairs_shuffled, plain->metrics.pairs_shuffled);
}

TEST(SkewFamilies, TrianglesByteIdenticalUnderDefense) {
  const auto g = graph::ZipfGraph(/*n=*/300, /*m=*/2000, /*exponent=*/1.0,
                                  /*seed=*/23);
  const auto plain = graph::MRTriangles(g, /*k=*/4, /*seed=*/11,
                                        UndefendedOptions(37));
  const auto defended = graph::MRTriangles(g, 4, 11, DefendedOptions(37));
  EXPECT_EQ(defended.triangles, plain.triangles);
  EXPECT_EQ(defended.metrics.pairs_shuffled, plain.metrics.pairs_shuffled);
  EXPECT_EQ(defended.metrics.num_reducers, plain.metrics.num_reducers);
}

}  // namespace
}  // namespace mrcost::engine
