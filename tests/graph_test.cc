#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/combinatorics.h"
#include "src/core/schema_stats.h"
#include "src/core/schema_validator.h"
#include "src/graph/alon.h"
#include "src/graph/bucketing.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/problem.h"
#include "src/graph/sample_graph_mr.h"
#include "src/graph/subgraph.h"
#include "src/graph/triangle.h"
#include "src/graph/two_path.h"

namespace mrcost::graph {
namespace {

// --------------------------------------------------------------- graph

TEST(Graph, NormalizesEdges) {
  Graph g(4, {{2, 1}, {1, 2}, {0, 3}, {3, 3}});
  EXPECT_EQ(g.num_edges(), 2u);  // dedup + loop dropped
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_TRUE(g.HasEdge(3, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(3, 3));
}

TEST(Graph, AdjacencySorted) {
  Graph g(5, {{0, 4}, {0, 1}, {0, 3}});
  EXPECT_EQ(g.Neighbors(0), (std::vector<NodeId>{1, 3, 4}));
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(2), 0u);
}

TEST(Graph, PairRankRoundTrip) {
  for (std::uint64_t n : {2ull, 5ull, 17ull}) {
    std::uint64_t rank = 0;
    for (std::uint64_t u = 0; u < n; ++u) {
      for (std::uint64_t v = u + 1; v < n; ++v) {
        EXPECT_EQ(PairRank(n, u, v), rank);
        const auto [a, b] = PairUnrank(n, rank);
        EXPECT_EQ(a, u);
        EXPECT_EQ(b, v);
        ++rank;
      }
    }
    EXPECT_EQ(rank, n * (n - 1) / 2);
  }
}

TEST(Graph, TripleRankRoundTrip) {
  const std::uint64_t n = 9;
  std::uint64_t rank = 0;
  for (std::uint64_t a = 0; a < n; ++a) {
    for (std::uint64_t b = a + 1; b < n; ++b) {
      for (std::uint64_t c = b + 1; c < n; ++c) {
        EXPECT_EQ(TripleRank(n, a, b, c), rank);
        const auto t = TripleUnrank(n, rank);
        EXPECT_EQ(t[0], a);
        EXPECT_EQ(t[1], b);
        EXPECT_EQ(t[2], c);
        ++rank;
      }
    }
  }
  EXPECT_EQ(rank, common::BinomialExact(9, 3));
}

// ---------------------------------------------------------- generators

TEST(Generators, CompleteGraph) {
  const Graph g = CompleteGraph(10);
  EXPECT_EQ(g.num_edges(), 45u);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(g.Degree(u), 9u);
}

TEST(Generators, RandomGnmExactEdgeCount) {
  for (std::uint64_t m : {0ull, 10ull, 100ull, 190ull}) {
    const Graph g = RandomGnm(20, m, /*seed=*/7);
    EXPECT_EQ(g.num_edges(), m);
  }
}

TEST(Generators, RandomGnmDeterministic) {
  const Graph a = RandomGnm(30, 100, 42);
  const Graph b = RandomGnm(30, 100, 42);
  EXPECT_EQ(a.edges(), b.edges());
  const Graph c = RandomGnm(30, 100, 43);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Generators, CycleAndPath) {
  const Graph c5 = CycleGraph(5);
  EXPECT_EQ(c5.num_edges(), 5u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(c5.Degree(u), 2u);
  const Graph p3 = PathGraph(3);
  EXPECT_EQ(p3.num_nodes(), 4u);
  EXPECT_EQ(p3.num_edges(), 3u);
}

TEST(Generators, PreferentialAttachment) {
  const Graph g = PreferentialAttachmentGraph(200, 3, 11);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_GT(g.num_edges(), 400u);
  // Heavy tail: the max degree should well exceed the attachment count.
  std::uint64_t max_degree = 0;
  for (NodeId u = 0; u < 200; ++u) {
    max_degree = std::max(max_degree, g.Degree(u));
  }
  EXPECT_GT(max_degree, 10u);
}

// ---------------------------------------------------- serial triangles

TEST(SerialTriangles, KnownCounts) {
  EXPECT_EQ(SerialTriangleCount(CompleteGraph(4)), 4u);
  EXPECT_EQ(SerialTriangleCount(CompleteGraph(6)),
            common::BinomialExact(6, 3));
  EXPECT_EQ(SerialTriangleCount(CycleGraph(5)), 0u);
  EXPECT_EQ(SerialTriangleCount(CycleGraph(3)), 1u);
  EXPECT_EQ(SerialTriangleCount(PathGraph(5)), 0u);
}

TEST(SerialTriangles, ListsSortedTriples) {
  const auto triangles = SerialTriangles(CompleteGraph(4));
  ASSERT_EQ(triangles.size(), 4u);
  for (const Triangle& t : triangles) {
    EXPECT_LT(t[0], t[1]);
    EXPECT_LT(t[1], t[2]);
  }
  EXPECT_TRUE(std::is_sorted(triangles.begin(), triangles.end()));
}

// --------------------------------------------------- triangle problems

TEST(TriangleProblem, ModelCounts) {
  const TriangleProblem p(10);
  EXPECT_EQ(p.num_inputs(), 45u);
  EXPECT_EQ(p.num_outputs(), 120u);
  // Each output depends on exactly its three edges.
  const auto deps = p.InputsOfOutput(0);  // triple {0,1,2}
  EXPECT_EQ(deps.size(), 3u);
  EXPECT_EQ(deps[0], PairRank(10, 0, 1));
  EXPECT_EQ(deps[1], PairRank(10, 0, 2));
  EXPECT_EQ(deps[2], PairRank(10, 1, 2));
}

class TrianglePartitionSchemaTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrianglePartitionSchemaTest, ValidAndReplicationIsK) {
  const auto [n, k] = GetParam();
  const TriangleProblem problem(n);
  const NodeBucketer bucketer(k, /*seed=*/5);
  const TrianglePartitionSchema schema(n, bucketer);
  // Coverage must hold for any q big enough; check with q = |I|.
  EXPECT_TRUE(
      core::ValidateSchema(problem, schema, problem.num_inputs()).ok());
  // Replication rate is exactly k for every edge (Section 4.1 algorithm).
  const auto stats = core::ComputeSchemaStats(schema, problem.num_inputs());
  EXPECT_DOUBLE_EQ(stats.replication_rate, k);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrianglePartitionSchemaTest,
                         ::testing::Values(std::tuple{8, 2}, std::tuple{10, 3},
                                           std::tuple{12, 4},
                                           std::tuple{15, 5},
                                           std::tuple{9, 1}));

// --------------------------------------------------------- MRTriangles

class MRTrianglesTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(MRTrianglesTest, MatchesSerialOnRandomGraphs) {
  const auto [n, density, k] = GetParam();
  const std::uint64_t possible =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const auto m = static_cast<std::uint64_t>(density * possible);
  const Graph g = RandomGnm(n, m, /*seed=*/n * 31 + k);
  const auto serial = SerialTriangles(g);
  const auto mr = MRTriangles(g, k, /*seed=*/17);
  EXPECT_EQ(mr.triangles, serial);
  // Replication rate is exactly k whenever there is at least one edge.
  if (m > 0) {
    EXPECT_DOUBLE_EQ(mr.metrics.replication_rate(), k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MRTrianglesTest,
    ::testing::Values(std::tuple{10, 1.0, 2}, std::tuple{10, 1.0, 3},
                      std::tuple{20, 0.5, 4}, std::tuple{30, 0.2, 5},
                      std::tuple{30, 0.2, 1}, std::tuple{40, 0.1, 6},
                      std::tuple{25, 0.0, 3}, std::tuple{50, 0.05, 8}));

TEST(MRTriangles, CompleteGraphAllFound) {
  const Graph g = CompleteGraph(12);
  const auto mr = MRTriangles(g, 4, 3);
  EXPECT_EQ(mr.triangles.size(), common::BinomialExact(12, 3));
}

TEST(MRTriangles, DedupRuleAblation) {
  // Without the multiset-ownership rule, triangles whose buckets collide
  // are emitted by several reducers; with it, exactly once. This is the
  // ablation DESIGN.md calls out.
  const Graph g = CompleteGraph(10);
  const auto with_rule = MRTriangles(g, 3, 7, {}, /*dedup_rule=*/true);
  const auto without_rule = MRTriangles(g, 3, 7, {}, /*dedup_rule=*/false);
  EXPECT_EQ(with_rule.triangles.size(), common::BinomialExact(10, 3));
  EXPECT_GT(without_rule.triangles.size(), with_rule.triangles.size());
}

// ------------------------------------- node-iterator (two rounds, [21])

class NodeIteratorTest
    : public ::testing::TestWithParam<std::tuple<int, double, bool>> {};

TEST_P(NodeIteratorTest, MatchesSerialOnRandomGraphs) {
  const auto [n, density, ordering] = GetParam();
  const std::uint64_t possible =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const Graph g =
      RandomGnm(n, static_cast<std::uint64_t>(density * possible),
                /*seed=*/n * 7 + (ordering ? 1 : 0));
  const auto result = MRTrianglesNodeIterator(g, ordering);
  EXPECT_EQ(result.triangles, SerialTriangles(g));
  ASSERT_EQ(result.metrics.rounds.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NodeIteratorTest,
    ::testing::Values(std::tuple{10, 1.0, true}, std::tuple{10, 1.0, false},
                      std::tuple{20, 0.5, true},
                      std::tuple{20, 0.5, false},
                      std::tuple{40, 0.15, true},
                      std::tuple{30, 0.0, true}));

TEST(NodeIterator, Round1CommunicationIsMOrTwoM) {
  const Graph g = CompleteGraph(20);
  const auto ordered = MRTrianglesNodeIterator(g, true);
  const auto unordered = MRTrianglesNodeIterator(g, false);
  EXPECT_EQ(ordered.metrics.rounds[0].pairs_shuffled, g.num_edges());
  EXPECT_EQ(unordered.metrics.rounds[0].pairs_shuffled, 2 * g.num_edges());
}

TEST(NodeIterator, LowDegreeOrderingTamesSkew) {
  // On a skewed graph, unordered wedge generation centers Theta(d_max^2)
  // wedges on hubs ("the curse of the last reducer"); the (degree, id)
  // ordering collapses that.
  const Graph g = PreferentialAttachmentGraph(400, 3, 5);
  const auto ordered = MRTrianglesNodeIterator(g, true);
  const auto unordered = MRTrianglesNodeIterator(g, false);
  EXPECT_EQ(ordered.triangles, unordered.triangles);
  EXPECT_LT(ordered.metrics.rounds[1].pairs_shuffled,
            unordered.metrics.rounds[1].pairs_shuffled / 3);
}

TEST(NodeIterator, AgreesWithPartitionAlgorithm) {
  const Graph g = RandomGnm(50, 400, 9);
  EXPECT_EQ(MRTrianglesNodeIterator(g, true).triangles,
            MRTriangles(g, 4, 2).triangles);
}

TEST(TriangleBounds, RecipeMatchesClosedForm) {
  const core::Recipe recipe = TriangleRecipe(100);
  for (double q : {8.0, 50.0, 512.0}) {
    // Recipe bound: q|O|/(g(q)|I|) with |O| ~ n^3/6, |I| ~ n^2/2 matches
    // n/sqrt(2q) up to the C(n,2)/C(n,3) vs n^2/2, n^3/6 approximation.
    EXPECT_NEAR(core::ReplicationLowerBound(recipe, q) /
                    TriangleLowerBound(100, q),
                1.0, 0.05)
        << q;
  }
  EXPECT_TRUE(core::CheckMonotoneGOverQ(recipe, 1, 1e7).ok());
}

TEST(TriangleBounds, SparseScaling) {
  // q_t = q * C(n,2)/m and the bound becomes sqrt(m/q).
  const NodeId n = 1000;
  const std::uint64_t m = 50000;
  const double q = 1000;
  const double qt = SparseTriangleTargetQ(n, m, q);
  EXPECT_NEAR(qt, q * (n * (n - 1) / 2.0) / m, 1e-9);
  EXPECT_NEAR(SparseTriangleLowerBound(m, q), std::sqrt(50.0), 1e-9);
}

// ------------------------------------------------------------ 2-paths

TEST(SerialTwoPaths, KnownCounts) {
  // Star K_{1,3}: middle has degree 3 -> C(3,2) = 3 two-paths.
  const Graph star(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(SerialTwoPathCount(star), 3u);
  EXPECT_EQ(SerialTwoPaths(star).size(), 3u);
  // Complete graph: 3 * C(n,3) two-paths.
  EXPECT_EQ(SerialTwoPathCount(CompleteGraph(7)),
            3 * common::BinomialExact(7, 3));
  // Path with 2 edges has exactly one 2-path.
  EXPECT_EQ(SerialTwoPathCount(PathGraph(2)), 1u);
}

TEST(TwoPathProblem, ModelCounts) {
  const TwoPathProblem p(8);
  EXPECT_EQ(p.num_inputs(), 28u);
  EXPECT_EQ(p.num_outputs(), 3 * common::BinomialExact(8, 3));
  // Every output depends on exactly two edges sharing the middle node.
  for (core::OutputId o = 0; o < p.num_outputs(); ++o) {
    EXPECT_EQ(p.InputsOfOutput(o).size(), 2u);
  }
}

TEST(TwoPathNodeSchema, ValidWithQEqualNMinus1) {
  const TwoPathProblem problem(9);
  const TwoPathNodeSchema schema(9);
  // Each node-reducer receives its incident possible edges: q = n-1.
  EXPECT_TRUE(core::ValidateSchema(problem, schema, 8).ok());
  const auto stats = core::ComputeSchemaStats(schema, problem.num_inputs());
  EXPECT_DOUBLE_EQ(stats.replication_rate, 2.0);
  EXPECT_EQ(stats.max_reducer_load, 8u);
}

class TwoPathBucketSchemaTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TwoPathBucketSchemaTest, ValidAndReplicationIs2KMinus2) {
  const auto [n, k] = GetParam();
  const TwoPathProblem problem(n);
  const NodeBucketer bucketer(k, 23);
  const TwoPathBucketSchema schema(n, bucketer);
  EXPECT_TRUE(
      core::ValidateSchema(problem, schema, problem.num_inputs()).ok());
  const auto stats = core::ComputeSchemaStats(schema, problem.num_inputs());
  EXPECT_DOUBLE_EQ(stats.replication_rate, 2.0 * (k - 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwoPathBucketSchemaTest,
                         ::testing::Values(std::tuple{8, 2}, std::tuple{9, 3},
                                           std::tuple{12, 4},
                                           std::tuple{10, 5}));

class MRTwoPathsTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(MRTwoPathsTest, BothAlgorithmsMatchSerial) {
  const auto [n, density, k] = GetParam();
  const std::uint64_t possible =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const Graph g =
      RandomGnm(n, static_cast<std::uint64_t>(density * possible),
                /*seed=*/n + 100 * k);
  const auto serial = SerialTwoPaths(g);
  EXPECT_EQ(MRTwoPathsNode(g).paths, serial);
  EXPECT_EQ(MRTwoPathsBucket(g, k, /*seed=*/3).paths, serial);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MRTwoPathsTest,
    ::testing::Values(std::tuple{10, 1.0, 2}, std::tuple{12, 0.6, 3},
                      std::tuple{16, 0.4, 4}, std::tuple{20, 0.3, 5},
                      std::tuple{24, 0.2, 2}, std::tuple{15, 0.0, 3}));

TEST(MRTwoPathsBucket, NodeAlgorithmReplicationIs2) {
  const Graph g = CompleteGraph(12);
  const auto result = MRTwoPathsNode(g);
  EXPECT_DOUBLE_EQ(result.metrics.replication_rate(), 2.0);
}

TEST(MRTwoPathsBucket, ReplicationIs2KMinus2) {
  const Graph g = CompleteGraph(12);
  for (int k : {2, 3, 4}) {
    const auto result = MRTwoPathsBucket(g, k, 9);
    EXPECT_DOUBLE_EQ(result.metrics.replication_rate(), 2.0 * (k - 1));
  }
}

TEST(TwoPathBounds, ClampedAtOne) {
  EXPECT_DOUBLE_EQ(TwoPathLowerBound(10, 5), 4.0);
  EXPECT_DOUBLE_EQ(TwoPathLowerBound(10, 40), 1.0);  // 2n/q < 1 -> clamp
}

// ---------------------------------------------------- subgraph counts

TEST(Subgraph, TriangleInstancesMatchSerial) {
  for (int n : {6, 9}) {
    for (double density : {0.3, 0.8}) {
      const std::uint64_t possible =
          static_cast<std::uint64_t>(n) * (n - 1) / 2;
      const Graph g =
          RandomGnm(n, static_cast<std::uint64_t>(density * possible),
                    /*seed=*/n);
      EXPECT_EQ(CountInstances(CycleGraph(3), g), SerialTriangleCount(g));
    }
  }
}

TEST(Subgraph, KnownPatternCounts) {
  // C4 instances in K4: choose 4 nodes (1 way), 3 distinct 4-cycles.
  EXPECT_EQ(CountInstances(CycleGraph(4), CompleteGraph(4)), 3u);
  // K4 in K6: C(6,4).
  EXPECT_EQ(CountInstances(CompleteGraph(4), CompleteGraph(6)),
            common::BinomialExact(6, 4));
  // 2-paths via pattern matching match the dedicated counter.
  const Graph g = RandomGnm(10, 20, 5);
  EXPECT_EQ(CountInstances(PathGraph(2), g), SerialTwoPathCount(g));
}

TEST(Subgraph, Automorphisms) {
  EXPECT_EQ(CountAutomorphisms(CycleGraph(3)), 6u);
  EXPECT_EQ(CountAutomorphisms(CycleGraph(4)), 8u);
  EXPECT_EQ(CountAutomorphisms(CycleGraph(5)), 10u);
  EXPECT_EQ(CountAutomorphisms(PathGraph(2)), 2u);
  EXPECT_EQ(CountAutomorphisms(CompleteGraph(4)), 24u);
}

// ----------------------------------------------------------- Alon class

TEST(AlonClass, KnownMembers) {
  // "Every cycle, every graph with a perfect matching, and every complete
  // graph is in the Alon class. Paths of odd length are also in the Alon
  // class." (Section 5.1)
  EXPECT_TRUE(InAlonClass(CycleGraph(3)));
  EXPECT_TRUE(InAlonClass(CycleGraph(4)));
  EXPECT_TRUE(InAlonClass(CycleGraph(5)));
  EXPECT_TRUE(InAlonClass(CycleGraph(6)));
  EXPECT_TRUE(InAlonClass(CompleteGraph(4)));
  EXPECT_TRUE(InAlonClass(CompleteGraph(5)));
  EXPECT_TRUE(InAlonClass(PathGraph(1)));  // a single edge
  EXPECT_TRUE(InAlonClass(PathGraph(3)));  // odd path: perfect matching
  EXPECT_TRUE(InAlonClass(PathGraph(5)));
}

TEST(AlonClass, KnownNonMembers) {
  // "Paths of even length are not in the Alon class." (Section 5.1)
  EXPECT_FALSE(InAlonClass(PathGraph(2)));
  EXPECT_FALSE(InAlonClass(PathGraph(4)));
  // A star K_{1,3} has no perfect matching and no odd Ham cycle partition.
  EXPECT_FALSE(InAlonClass(Graph(4, {{0, 1}, {0, 2}, {0, 3}})));
  // An empty graph on 2 nodes cannot be partitioned into edges.
  EXPECT_FALSE(InAlonClass(Graph(2, {})));
}

TEST(AlonClass, BoundFormulas) {
  // Triangle (s=3): bound reduces to (n/sqrt(q))^1.
  EXPECT_DOUBLE_EQ(AlonSampleLowerBound(100, 3, 400), 5.0);
  // Edge form at s=4: m/q.
  EXPECT_DOUBLE_EQ(AlonSampleEdgeLowerBound(10000, 4, 100), 100.0);
  EXPECT_TRUE(core::CheckMonotoneGOverQ(AlonSampleRecipe(50, 4), 1, 1e6).ok());
}

// --------------------------------------------------- MR sample graphs

class MRSampleGraphTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(MRSampleGraphTest, CountsMatchSerialForSeveralPatterns) {
  const auto [n, density, k] = GetParam();
  const std::uint64_t possible =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const Graph g =
      RandomGnm(n, static_cast<std::uint64_t>(density * possible),
                /*seed=*/n * 13 + k);
  const std::vector<Graph> patterns = {CycleGraph(3), CycleGraph(4),
                                       PathGraph(2), CompleteGraph(4)};
  for (const Graph& pattern : patterns) {
    const auto mr = MRSampleGraphInstances(g, pattern, k, /*seed=*/1);
    EXPECT_EQ(mr.instance_count, CountInstances(pattern, g))
        << "pattern with " << pattern.num_nodes() << " nodes, "
        << pattern.num_edges() << " edges";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MRSampleGraphTest,
                         ::testing::Values(std::tuple{8, 0.8, 2},
                                           std::tuple{10, 0.5, 3},
                                           std::tuple{12, 0.4, 2},
                                           std::tuple{14, 0.3, 4}));

TEST(MRSampleGraph, ReplicationGrowsAsKToSMinus2) {
  // For an s-node pattern, each edge goes to MultisetCount(k, s-2)-ish
  // reducers; with s=3 that is exactly k, with s=4 it is C(k+1,2) minus
  // collisions. Verify the s=3 case exactly.
  const Graph g = CompleteGraph(10);
  const auto mr = MRSampleGraphInstances(g, CycleGraph(3), 4, 2);
  EXPECT_DOUBLE_EQ(mr.metrics.replication_rate(), 4.0);
}

}  // namespace
}  // namespace mrcost::graph
