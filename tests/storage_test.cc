#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/engine/shuffle.h"
#include "src/storage/external_merge.h"
#include "src/storage/run_writer.h"
#include "src/storage/serde.h"
#include "src/storage/spill_file.h"

namespace mrcost::storage {
namespace {

/// Per-process scratch directory; removed by the last test that uses it.
std::string TestDir() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mrcost-storage-test-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string TestPath(const std::string& name) {
  return (std::filesystem::path(TestDir()) / name).string();
}

// -------------------------------------------------------------- serde

template <typename T>
T RoundTrip(const T& value) {
  std::string bytes;
  SerializeValue(value, bytes);
  const char* p = bytes.data();
  const char* end = p + bytes.size();
  T out;
  EXPECT_TRUE(DeserializeValue(p, end, out));
  EXPECT_EQ(p, end) << "deserialize must consume every byte";
  return out;
}

TEST(Serde, RoundTripsEngineKeyAndValueTypes) {
  EXPECT_EQ(RoundTrip(std::uint64_t{42}), 42u);
  EXPECT_EQ(RoundTrip(std::int32_t{-7}), -7);
  EXPECT_EQ(RoundTrip(std::string()), "");
  EXPECT_EQ(RoundTrip(std::string("hello")), "hello");
  EXPECT_EQ(RoundTrip(std::string(1000, 'x')), std::string(1000, 'x'));
  EXPECT_EQ(RoundTrip(std::vector<int>{1, 2, 3}),
            (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(RoundTrip(std::vector<std::vector<int>>{{1}, {}, {2, 3}}),
            (std::vector<std::vector<int>>{{1}, {}, {2, 3}}));
  // The join drivers' shuffle value: (atom index, tuple).
  const std::pair<int, std::vector<std::int32_t>> tuple_value{2, {5, -1, 9}};
  EXPECT_EQ(RoundTrip(tuple_value), tuple_value);
  const std::tuple<int, std::string, double> mixed{1, "ab", 2.5};
  EXPECT_EQ(RoundTrip(mixed), mixed);
}

TEST(Serde, TruncatedInputFailsCleanly) {
  std::string bytes;
  SerializeValue(std::pair<std::uint64_t, std::string>{7, "payload"}, bytes);
  // Every strict prefix must fail, never read past `end`, never crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const char* p = bytes.data();
    const char* end = p + cut;
    std::pair<std::uint64_t, std::string> out;
    EXPECT_FALSE(DeserializeValue(p, end, out)) << "cut=" << cut;
  }
}

TEST(Serde, CorruptVectorCountCannotForceHugeAllocation) {
  std::string bytes;
  SerializeValue(std::vector<int>{1, 2, 3}, bytes);
  // Overwrite the count with a huge value: must fail, not allocate.
  const std::uint64_t huge = ~std::uint64_t{0};
  bytes.replace(0, sizeof(huge),
                reinterpret_cast<const char*>(&huge), sizeof(huge));
  const char* p = bytes.data();
  std::vector<int> out;
  EXPECT_FALSE(DeserializeValue(p, p + bytes.size(), out));
}

// --------------------------------------------------------- spill file

TEST(SpillFile, Crc32KnownAnswer) {
  // The IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(SpillFile, BlocksRoundTrip) {
  const std::string path = TestPath("roundtrip.spill");
  auto writer = SpillFileWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->AppendBlock("first block").ok());
  ASSERT_TRUE(writer->AppendBlock(std::string(100000, 'z')).ok());
  ASSERT_TRUE(writer->AppendBlock("").ok());
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_GT(writer->bytes_written(), 100000u);

  auto reader = SpillFileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  std::string payload;
  bool done = false;
  ASSERT_TRUE(reader->Next(payload, done).ok());
  ASSERT_FALSE(done);
  EXPECT_EQ(payload, "first block");
  ASSERT_TRUE(reader->Next(payload, done).ok());
  EXPECT_EQ(payload, std::string(100000, 'z'));
  ASSERT_TRUE(reader->Next(payload, done).ok());
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(reader->Next(payload, done).ok());
  EXPECT_TRUE(done);
}

TEST(SpillFile, MissingFileIsNotFound) {
  auto reader = SpillFileReader::Open(TestPath("does-not-exist.spill"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), common::StatusCode::kNotFound);
}

TEST(SpillFile, BadMagicRejected) {
  const std::string path = TestPath("badmagic.spill");
  std::ofstream(path, std::ios::binary) << "XXXXYYYYsome bytes";
  auto reader = SpillFileReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(SpillFile, TruncatedHeaderAndBlockReturnOutOfRange) {
  const std::string path = TestPath("truncated.spill");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t magic = kSpillMagic;
    out.write(reinterpret_cast<const char*>(&magic), 2);  // half a magic
  }
  auto reader = SpillFileReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), common::StatusCode::kOutOfRange);

  // A valid header + block, then the file cut mid-payload.
  auto writer = SpillFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->AppendBlock("a payload that will be cut").ok());
  ASSERT_TRUE(writer->Close().ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 5);
  auto cut = SpillFileReader::Open(path);
  ASSERT_TRUE(cut.ok());
  std::string payload;
  bool done = false;
  const auto status = cut->Next(payload, done);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kOutOfRange);
}

TEST(SpillFile, FlippedByteFailsCrc) {
  const std::string path = TestPath("corrupt.spill");
  auto writer = SpillFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->AppendBlock("sensitive payload bytes").ok());
  ASSERT_TRUE(writer->Close().ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3, std::ios::end);  // inside the payload
    f.put('!');
  }
  auto reader = SpillFileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::string payload;
  bool done = false;
  const auto status = reader->Next(payload, done);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kInternal);
}

// ------------------------------------------------- runs and the merge

SpillRecord MakeRecord(std::uint64_t hash, std::uint64_t pos,
                       std::uint64_t key, int value) {
  SpillRecord rec;
  rec.hash = hash;
  rec.pos = pos;
  SerializeValue(key, rec.bytes);
  rec.key_size = static_cast<std::uint32_t>(rec.bytes.size());
  SerializeValue(value, rec.bytes);
  return rec;
}

TEST(RunWriter, EncodeDecodeRecord) {
  const SpillRecord rec = MakeRecord(7, 9, 1234, -5);
  std::string block;
  EncodeRecord(rec, block);
  const char* p = block.data();
  SpillRecord out;
  ASSERT_TRUE(DecodeRecord(p, block.data() + block.size(), out));
  EXPECT_EQ(p, block.data() + block.size());
  EXPECT_EQ(out.hash, rec.hash);
  EXPECT_EQ(out.pos, rec.pos);
  EXPECT_EQ(out.key_size, rec.key_size);
  EXPECT_EQ(out.bytes, rec.bytes);
}

TEST(RunWriter, BudgetTriggersSpills) {
  RunSpiller spiller(TestDir());
  RunWriter<std::uint64_t, int> writer(&spiller, 200, /*chunk_id=*/0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer.Add(/*hash=*/static_cast<std::uint64_t>(i),
                           static_cast<std::uint64_t>(i), i)
                    .ok());
  }
  const auto tail = writer.TakeTail();
  EXPECT_GT(spiller.spill_runs(), 0u);
  EXPECT_GT(spiller.bytes_written(), 0u);
  // Every record is either in a run or in the tail.
  std::uint64_t on_disk = 0;
  for (const std::string& path : spiller.spill_run_paths()) {
    DiskRunSource source(path);
    SpillRecord rec;
    while (source.Next(rec)) ++on_disk;
    ASSERT_TRUE(source.status().ok()) << source.status();
  }
  EXPECT_EQ(on_disk + tail.size(), 100u);
}

TEST(RunWriter, ZeroBudgetSpillsEveryRecord) {
  RunSpiller spiller(TestDir());
  RunWriter<std::uint64_t, int> writer(&spiller, 0, /*chunk_id=*/0);
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(writer.Add(static_cast<std::uint64_t>(i),
                           static_cast<std::uint64_t>(i), i)
                    .ok());
  }
  EXPECT_TRUE(writer.TakeTail().empty());
  EXPECT_EQ(spiller.spill_runs(), 17u);
}

TEST(RunSpiller, RemovesItsFilesOnDestruction) {
  std::vector<std::string> paths;
  {
    RunSpiller spiller(TestDir());
    std::vector<SpillRecord> records{MakeRecord(1, 1, 1, 1)};
    ASSERT_TRUE(spiller.SpillRun(records).ok());
    paths = spiller.run_paths();
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_TRUE(std::filesystem::exists(paths[0]));
  }
  EXPECT_FALSE(std::filesystem::exists(paths[0]));
}

TEST(LoserTree, EmptyAndSingleSource) {
  LoserTree empty({});
  SpillRecord rec;
  EXPECT_FALSE(empty.Next(rec));

  std::vector<SpillRecord> records;
  records.push_back(MakeRecord(2, 0, 2, 20));
  records.push_back(MakeRecord(5, 1, 5, 50));
  MemoryRunSource source(std::move(records));
  std::vector<RunSource*> sources{&source};
  LoserTree tree(sources);
  ASSERT_TRUE(tree.Next(rec));
  EXPECT_EQ(rec.hash, 2u);
  ASSERT_TRUE(tree.Next(rec));
  EXPECT_EQ(rec.hash, 5u);
  EXPECT_FALSE(tree.Next(rec));
  EXPECT_TRUE(tree.status().ok());
}

TEST(LoserTree, MergesManySourcesInOrder) {
  // 7 sources with interleaved hashes; positions globally unique.
  common::SplitMix64 rng(13);
  std::vector<MemoryRunSource> owned;
  std::vector<std::vector<SpillRecord>> runs(7);
  std::uint64_t pos = 0;
  for (int i = 0; i < 500; ++i) {
    runs[rng.UniformBelow(7)].push_back(
        MakeRecord(rng.UniformBelow(40), pos, rng.UniformBelow(40),
                   static_cast<int>(pos)));
    ++pos;
  }
  std::vector<RunSource*> sources;
  for (auto& run : runs) {
    std::sort(run.begin(), run.end(),
              [](const SpillRecord& a, const SpillRecord& b) {
                return SpillRecordLess(a, b);
              });
    owned.emplace_back(std::move(run));
  }
  for (auto& source : owned) sources.push_back(&source);
  LoserTree tree(sources);
  SpillRecord prev;
  SpillRecord rec;
  std::size_t count = 0;
  while (tree.Next(rec)) {
    if (count > 0) {
      EXPECT_TRUE(SpillRecordLess(prev, rec));
    }
    prev = rec;
    ++count;
  }
  EXPECT_EQ(count, 500u);
  EXPECT_TRUE(tree.status().ok());
}

TEST(ExternalMerge, CorruptRunSurfacesStatusNotCrash) {
  RunSpiller spiller(TestDir());
  std::vector<SpillRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(MakeRecord(static_cast<std::uint64_t>(i), i,
                                 static_cast<std::uint64_t>(i), i));
  }
  ASSERT_TRUE(spiller.SpillRun(records).ok());
  const std::string path = spiller.spill_run_paths()[0];
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 7);

  std::vector<std::unique_ptr<RunSource>> sources;
  sources.push_back(std::make_unique<DiskRunSource>(path));
  SpillStats stats;
  auto merged = MergeRunsToGroups<std::uint64_t, int>(
      std::move(sources), spiller, kDefaultMergeFanIn, stats);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), common::StatusCode::kOutOfRange);
}

// ----------------------------------- round-trip property vs the engine

/// The four key distributions of the PR 2 shuffle harness: the regimes
/// where an external merge could diverge from the in-memory reference.
enum class KeyDist { kUniform, kZipf, kAllSame, kAllDistinct };

const char* Name(KeyDist dist) {
  switch (dist) {
    case KeyDist::kUniform: return "uniform";
    case KeyDist::kZipf: return "zipf";
    case KeyDist::kAllSame: return "all-same";
    case KeyDist::kAllDistinct: return "all-distinct";
  }
  return "?";
}

std::vector<std::vector<std::pair<std::uint64_t, int>>> RandomChunks(
    KeyDist dist, std::uint64_t seed) {
  common::SplitMix64 rng(seed);
  const common::ZipfDistribution zipf(64, 1.3);
  const std::size_t num_chunks = 1 + rng.UniformBelow(8);
  std::vector<std::vector<std::pair<std::uint64_t, int>>> chunks(num_chunks);
  int serial = 0;
  for (auto& chunk : chunks) {
    const std::size_t size = rng.UniformBelow(400);
    chunk.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      std::uint64_t key = 0;
      switch (dist) {
        case KeyDist::kUniform: key = rng.UniformBelow(150); break;
        case KeyDist::kZipf: key = zipf.Sample(rng); break;
        case KeyDist::kAllSame: key = 42; break;
        case KeyDist::kAllDistinct:
          key = static_cast<std::uint64_t>(serial);
          break;
      }
      chunk.emplace_back(key, serial++);
    }
  }
  return chunks;
}

TEST(ExternalShuffleProperty, MatchesSerialShuffleAcrossDistributions) {
  // For every distribution, seed, and budget (from spill-everything to
  // spill-nothing): keys, group contents, and global first-seen order must
  // match the serial in-memory reference exactly.
  common::ThreadPool pool(4);
  for (KeyDist dist : {KeyDist::kUniform, KeyDist::kZipf, KeyDist::kAllSame,
                       KeyDist::kAllDistinct}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      auto serial_chunks = RandomChunks(dist, seed);
      const auto serial = engine::SerialShuffle(serial_chunks);
      for (std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{256},
                                   std::uint64_t{4096},
                                   std::uint64_t{1} << 30}) {
        auto chunks = RandomChunks(dist, seed);
        engine::ShuffleConfig options;
        options.memory_budget_bytes = budget;
        options.spill_dir = TestDir();
        SpillStats stats;
        auto external =
            engine::ExternalShuffle(chunks, pool, options, &stats);
        SCOPED_TRACE(std::string(Name(dist)) +
                     " seed=" + std::to_string(seed) +
                     " budget=" + std::to_string(budget));
        ASSERT_TRUE(external.ok()) << external.status();
        ASSERT_EQ(external->keys, serial.keys);
        ASSERT_EQ(external->groups, serial.groups);
        EXPECT_GE(stats.merge_passes, 1u);
        if (budget == 0) {
          EXPECT_GT(stats.spill_runs, 0u);
        }
      }
    }
  }
}

TEST(ExternalShuffleProperty, TinyFanInForcesMultiPassMerge) {
  common::ThreadPool pool(4);
  auto serial_chunks = RandomChunks(KeyDist::kUniform, 9);
  const auto serial = engine::SerialShuffle(serial_chunks);
  auto chunks = RandomChunks(KeyDist::kUniform, 9);
  engine::ShuffleConfig options;
  options.memory_budget_bytes = 512;  // many small runs
  options.merge_fan_in = 2;           // smallest legal fan-in
  options.spill_dir = TestDir();
  SpillStats stats;
  auto external = engine::ExternalShuffle(chunks, pool, options, &stats);
  ASSERT_TRUE(external.ok()) << external.status();
  EXPECT_EQ(external->keys, serial.keys);
  EXPECT_EQ(external->groups, serial.groups);
  EXPECT_GT(stats.merge_passes, 1u);
  EXPECT_GT(stats.spill_runs, 2u);
}

TEST(ExternalShuffleProperty, StringKeysAndValues) {
  // Variable-length keys exercise the key-byte comparison path.
  std::vector<std::vector<std::pair<std::string, std::string>>> chunks(3);
  common::SplitMix64 rng(21);
  for (auto& chunk : chunks) {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t k = rng.UniformBelow(37);
      chunk.emplace_back("key-" + std::string(k % 5, 'x') +
                             std::to_string(k),
                         "value-" + std::to_string(i));
    }
  }
  auto serial_chunks = chunks;
  const auto serial = engine::SerialShuffle(serial_chunks);
  common::ThreadPool pool(2);
  engine::ShuffleConfig options;
  options.memory_budget_bytes = 2048;
  options.spill_dir = TestDir();
  auto external = engine::ExternalShuffle(chunks, pool, options);
  ASSERT_TRUE(external.ok()) << external.status();
  EXPECT_EQ(external->keys, serial.keys);
  EXPECT_EQ(external->groups, serial.groups);
}

/// Removes the per-process scratch directory. gtest runs suites in
/// declaration order within a file, so keep this test last.
TEST(ZCleanup, RemoveTestDir) {
  std::error_code ec;
  std::filesystem::remove_all(TestDir(), ec);
  EXPECT_FALSE(ec) << ec.message();
}

}  // namespace
}  // namespace mrcost::storage
