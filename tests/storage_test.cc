#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/engine/shuffle.h"
#include "src/storage/block.h"
#include "src/storage/external_merge.h"
#include "src/storage/run_writer.h"
#include "src/storage/serde.h"
#include "src/storage/spill_file.h"

namespace mrcost::storage {
namespace {

/// Per-process scratch directory; removed by the last test that uses it.
std::string TestDir() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mrcost-storage-test-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string TestPath(const std::string& name) {
  return (std::filesystem::path(TestDir()) / name).string();
}

// -------------------------------------------------------------- serde

template <typename T>
T RoundTrip(const T& value) {
  std::string bytes;
  SerializeValue(value, bytes);
  const char* p = bytes.data();
  const char* end = p + bytes.size();
  T out;
  EXPECT_TRUE(DeserializeValue(p, end, out));
  EXPECT_EQ(p, end) << "deserialize must consume every byte";
  return out;
}

TEST(Serde, RoundTripsEngineKeyAndValueTypes) {
  EXPECT_EQ(RoundTrip(std::uint64_t{42}), 42u);
  EXPECT_EQ(RoundTrip(std::int32_t{-7}), -7);
  EXPECT_EQ(RoundTrip(std::string()), "");
  EXPECT_EQ(RoundTrip(std::string("hello")), "hello");
  EXPECT_EQ(RoundTrip(std::string(1000, 'x')), std::string(1000, 'x'));
  EXPECT_EQ(RoundTrip(std::vector<int>{1, 2, 3}),
            (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(RoundTrip(std::vector<std::vector<int>>{{1}, {}, {2, 3}}),
            (std::vector<std::vector<int>>{{1}, {}, {2, 3}}));
  // The join drivers' shuffle value: (atom index, tuple).
  const std::pair<int, std::vector<std::int32_t>> tuple_value{2, {5, -1, 9}};
  EXPECT_EQ(RoundTrip(tuple_value), tuple_value);
  const std::tuple<int, std::string, double> mixed{1, "ab", 2.5};
  EXPECT_EQ(RoundTrip(mixed), mixed);
}

TEST(Serde, TruncatedInputFailsCleanly) {
  std::string bytes;
  SerializeValue(std::pair<std::uint64_t, std::string>{7, "payload"}, bytes);
  // Every strict prefix must fail, never read past `end`, never crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const char* p = bytes.data();
    const char* end = p + cut;
    std::pair<std::uint64_t, std::string> out;
    EXPECT_FALSE(DeserializeValue(p, end, out)) << "cut=" << cut;
  }
}

TEST(Serde, CorruptVectorCountCannotForceHugeAllocation) {
  std::string bytes;
  SerializeValue(std::vector<int>{1, 2, 3}, bytes);
  // Overwrite the count with a huge value: must fail, not allocate.
  const std::uint64_t huge = ~std::uint64_t{0};
  bytes.replace(0, sizeof(huge),
                reinterpret_cast<const char*>(&huge), sizeof(huge));
  const char* p = bytes.data();
  std::vector<int> out;
  EXPECT_FALSE(DeserializeValue(p, p + bytes.size(), out));
}

// --------------------------------------------------------- spill file

TEST(SpillFile, Crc32KnownAnswer) {
  // The IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(SpillFile, BlocksRoundTrip) {
  const std::string path = TestPath("roundtrip.spill");
  auto writer = SpillFileWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->AppendBlock("first block").ok());
  ASSERT_TRUE(writer->AppendBlock(std::string(100000, 'z')).ok());
  ASSERT_TRUE(writer->AppendBlock("").ok());
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_GT(writer->bytes_written(), 100000u);

  auto reader = SpillFileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  std::string payload;
  bool done = false;
  ASSERT_TRUE(reader->Next(payload, done).ok());
  ASSERT_FALSE(done);
  EXPECT_EQ(payload, "first block");
  ASSERT_TRUE(reader->Next(payload, done).ok());
  EXPECT_EQ(payload, std::string(100000, 'z'));
  ASSERT_TRUE(reader->Next(payload, done).ok());
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(reader->Next(payload, done).ok());
  EXPECT_TRUE(done);
}

TEST(SpillFile, MissingFileIsNotFound) {
  auto reader = SpillFileReader::Open(TestPath("does-not-exist.spill"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), common::StatusCode::kNotFound);
}

TEST(SpillFile, BadMagicRejected) {
  const std::string path = TestPath("badmagic.spill");
  std::ofstream(path, std::ios::binary) << "XXXXYYYYsome bytes";
  auto reader = SpillFileReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(SpillFile, TruncatedHeaderAndBlockReturnOutOfRange) {
  const std::string path = TestPath("truncated.spill");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t magic = kSpillMagic;
    out.write(reinterpret_cast<const char*>(&magic), 2);  // half a magic
  }
  auto reader = SpillFileReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), common::StatusCode::kOutOfRange);

  // A valid header + block, then the file cut mid-payload.
  auto writer = SpillFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->AppendBlock("a payload that will be cut").ok());
  ASSERT_TRUE(writer->Close().ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 5);
  auto cut = SpillFileReader::Open(path);
  ASSERT_TRUE(cut.ok());
  std::string payload;
  bool done = false;
  const auto status = cut->Next(payload, done);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kOutOfRange);
}

TEST(SpillFile, FlippedByteFailsCrc) {
  const std::string path = TestPath("corrupt.spill");
  auto writer = SpillFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->AppendBlock("sensitive payload bytes").ok());
  ASSERT_TRUE(writer->Close().ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3, std::ios::end);  // inside the payload
    f.put('!');
  }
  auto reader = SpillFileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::string payload;
  bool done = false;
  const auto status = reader->Next(payload, done);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kInternal);
}

// ------------------------------------------------- runs and the merge

SpillRecord MakeRecord(std::uint64_t hash, std::uint64_t pos,
                       std::uint64_t key, int value) {
  SpillRecord rec;
  rec.hash = hash;
  rec.pos = pos;
  SerializeValue(key, rec.bytes);
  rec.key_size = static_cast<std::uint32_t>(rec.bytes.size());
  SerializeValue(value, rec.bytes);
  return rec;
}

TEST(RunWriter, EncodeDecodeRecord) {
  const SpillRecord rec = MakeRecord(7, 9, 1234, -5);
  std::string block;
  EncodeRecord(rec, block);
  const char* p = block.data();
  SpillRecord out;
  ASSERT_TRUE(DecodeRecord(p, block.data() + block.size(), out));
  EXPECT_EQ(p, block.data() + block.size());
  EXPECT_EQ(out.hash, rec.hash);
  EXPECT_EQ(out.pos, rec.pos);
  EXPECT_EQ(out.key_size, rec.key_size);
  EXPECT_EQ(out.bytes, rec.bytes);
}

TEST(RunWriter, BudgetTriggersSpills) {
  RunSpiller spiller(TestDir());
  RunWriter<std::uint64_t, int> writer(&spiller, 200, /*chunk_id=*/0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer.Add(/*hash=*/static_cast<std::uint64_t>(i),
                           static_cast<std::uint64_t>(i), i)
                    .ok());
  }
  const auto tail = writer.TakeTail();
  EXPECT_GT(spiller.spill_runs(), 0u);
  EXPECT_GT(spiller.bytes_written(), 0u);
  // Every record is either in a run or in the tail.
  std::uint64_t on_disk = 0;
  for (const std::string& path : spiller.spill_run_paths()) {
    DiskRunSource source(path);
    SpillRecord rec;
    while (source.Next(rec)) ++on_disk;
    ASSERT_TRUE(source.status().ok()) << source.status();
  }
  EXPECT_EQ(on_disk + tail.size(), 100u);
}

TEST(RunWriter, ZeroBudgetSpillsEveryRecord) {
  RunSpiller spiller(TestDir());
  RunWriter<std::uint64_t, int> writer(&spiller, 0, /*chunk_id=*/0);
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(writer.Add(static_cast<std::uint64_t>(i),
                           static_cast<std::uint64_t>(i), i)
                    .ok());
  }
  EXPECT_TRUE(writer.TakeTail().empty());
  EXPECT_EQ(spiller.spill_runs(), 17u);
}

TEST(RunSpiller, RemovesItsFilesOnDestruction) {
  std::vector<std::string> paths;
  {
    RunSpiller spiller(TestDir());
    std::vector<SpillRecord> records{MakeRecord(1, 1, 1, 1)};
    ASSERT_TRUE(spiller.SpillRun(records).ok());
    paths = spiller.run_paths();
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_TRUE(std::filesystem::exists(paths[0]));
  }
  EXPECT_FALSE(std::filesystem::exists(paths[0]));
}

TEST(LoserTree, EmptyAndSingleSource) {
  LoserTree empty({});
  SpillRecord rec;
  EXPECT_FALSE(empty.Next(rec));

  std::vector<SpillRecord> records;
  records.push_back(MakeRecord(2, 0, 2, 20));
  records.push_back(MakeRecord(5, 1, 5, 50));
  MemoryRunSource source(std::move(records));
  std::vector<RunSource*> sources{&source};
  LoserTree tree(sources);
  ASSERT_TRUE(tree.Next(rec));
  EXPECT_EQ(rec.hash, 2u);
  ASSERT_TRUE(tree.Next(rec));
  EXPECT_EQ(rec.hash, 5u);
  EXPECT_FALSE(tree.Next(rec));
  EXPECT_TRUE(tree.status().ok());
}

TEST(LoserTree, MergesManySourcesInOrder) {
  // 7 sources with interleaved hashes; positions globally unique.
  common::SplitMix64 rng(13);
  std::vector<MemoryRunSource> owned;
  std::vector<std::vector<SpillRecord>> runs(7);
  std::uint64_t pos = 0;
  for (int i = 0; i < 500; ++i) {
    runs[rng.UniformBelow(7)].push_back(
        MakeRecord(rng.UniformBelow(40), pos, rng.UniformBelow(40),
                   static_cast<int>(pos)));
    ++pos;
  }
  std::vector<RunSource*> sources;
  for (auto& run : runs) {
    std::sort(run.begin(), run.end(),
              [](const SpillRecord& a, const SpillRecord& b) {
                return SpillRecordLess(a, b);
              });
    owned.emplace_back(std::move(run));
  }
  for (auto& source : owned) sources.push_back(&source);
  LoserTree tree(sources);
  SpillRecord prev;
  SpillRecord rec;
  std::size_t count = 0;
  while (tree.Next(rec)) {
    if (count > 0) {
      EXPECT_TRUE(SpillRecordLess(prev, rec));
    }
    prev = rec;
    ++count;
  }
  EXPECT_EQ(count, 500u);
  EXPECT_TRUE(tree.status().ok());
}

TEST(ExternalMerge, CorruptRunSurfacesStatusNotCrash) {
  RunSpiller spiller(TestDir());
  std::vector<SpillRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(MakeRecord(static_cast<std::uint64_t>(i), i,
                                 static_cast<std::uint64_t>(i), i));
  }
  ASSERT_TRUE(spiller.SpillRun(records).ok());
  const std::string path = spiller.spill_run_paths()[0];
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 7);

  std::vector<std::unique_ptr<RunSource>> sources;
  sources.push_back(std::make_unique<DiskRunSource>(path));
  SpillStats stats;
  auto merged = MergeRunsToGroups<std::uint64_t, int>(
      std::move(sources), spiller, kDefaultMergeFanIn, stats);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), common::StatusCode::kOutOfRange);
}

// ----------------------------------------------------- columnar blocks

/// The four key distributions of the PR 2 shuffle harness: the regimes
/// where an external merge could diverge from the in-memory reference.
enum class KeyDist { kUniform, kZipf, kAllSame, kAllDistinct };

const char* Name(KeyDist dist) {
  switch (dist) {
    case KeyDist::kUniform: return "uniform";
    case KeyDist::kZipf: return "zipf";
    case KeyDist::kAllSame: return "all-same";
    case KeyDist::kAllDistinct: return "all-distinct";
  }
  return "?";
}

std::vector<std::vector<std::pair<std::uint64_t, int>>> RandomChunks(
    KeyDist dist, std::uint64_t seed) {
  common::SplitMix64 rng(seed);
  const common::ZipfDistribution zipf(64, 1.3);
  const std::size_t num_chunks = 1 + rng.UniformBelow(8);
  std::vector<std::vector<std::pair<std::uint64_t, int>>> chunks(num_chunks);
  int serial = 0;
  for (auto& chunk : chunks) {
    const std::size_t size = rng.UniformBelow(400);
    chunk.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      std::uint64_t key = 0;
      switch (dist) {
        case KeyDist::kUniform: key = rng.UniformBelow(150); break;
        case KeyDist::kZipf: key = zipf.Sample(rng); break;
        case KeyDist::kAllSame: key = 42; break;
        case KeyDist::kAllDistinct:
          key = static_cast<std::uint64_t>(serial);
          break;
      }
      chunk.emplace_back(key, serial++);
    }
  }
  return chunks;
}

TEST(Varint, RoundTripsAndRejectsTruncation) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{1} << 44, ~std::uint64_t{0}}) {
    std::string bytes;
    PutVarint(v, bytes);
    const char* p = bytes.data();
    std::uint64_t out = 0;
    ASSERT_TRUE(GetVarint(p, bytes.data() + bytes.size(), out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(p, bytes.data() + bytes.size());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const char* q = bytes.data();
      EXPECT_FALSE(GetVarint(q, bytes.data() + cut, out)) << "cut=" << cut;
    }
  }
  for (const std::int64_t v : {std::int64_t{0}, std::int64_t{-1},
                               std::int64_t{1}, std::int64_t{1} << 50,
                               -(std::int64_t{1} << 50)}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(Codec, Lz77RoundTripsAssortedPayloads) {
  const Codec& lz = Lz77Codec();
  common::SplitMix64 rng(3);
  std::string random_bytes(2000, '\0');
  for (char& c : random_bytes) {
    c = static_cast<char>(rng.UniformBelow(256));
  }
  const std::vector<std::string> payloads = {
      "", "a", "abc", std::string(100000, 'z'),
      "abcabcabcabcabcabcabcabc", random_bytes,
      std::string(17, 'x') + random_bytes + std::string(17, 'x')};
  for (const std::string& raw : payloads) {
    std::string compressed;
    lz.Compress(raw, compressed);
    std::string back;
    ASSERT_TRUE(lz.Decompress(compressed, raw.size(), back).ok());
    EXPECT_EQ(back, raw);
  }
  // Redundant input must actually shrink.
  std::string compressed;
  lz.Compress(std::string(100000, 'z'), compressed);
  EXPECT_LT(compressed.size(), 1000u);
  // Corrupt streams surface a Status, never garbage or a crash.
  lz.Compress("abcabcabcabcabcabcabcabc", compressed);
  std::string back;
  for (std::size_t cut = 0; cut < compressed.size(); ++cut) {
    EXPECT_FALSE(
        lz.Decompress(std::string_view(compressed.data(), cut), 24, back)
            .ok())
        << "cut=" << cut;
  }
}

/// A spill record whose hash follows the block convention (HashBytes over
/// the serialized key), so decoded blocks reproduce it.
SpillRecord MakeBlockRecord(std::uint64_t key, int value,
                            std::uint64_t pos) {
  SpillRecord rec;
  rec.pos = pos;
  SerializeValue(key, rec.bytes);
  rec.key_size = static_cast<std::uint32_t>(rec.bytes.size());
  rec.hash = HashBytes(rec.key_bytes());
  SerializeValue(value, rec.bytes);
  return rec;
}

ColumnarRun RunFromRecords(std::vector<SpillRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const SpillRecord& a, const SpillRecord& b) {
              return SpillRecordLess(a, b);
            });
  ColumnarRun run;
  for (const SpillRecord& rec : records) {
    run.Append(RecordView{rec.hash, rec.pos, rec.key_bytes(),
                          rec.value_bytes()});
  }
  return run;
}

std::vector<SpillRecord> BlockRecordsFor(KeyDist dist, std::uint64_t seed) {
  std::vector<SpillRecord> records;
  std::uint32_t chunk_id = 0;
  for (const auto& chunk : RandomChunks(dist, seed)) {
    std::uint64_t local = 0;
    for (const auto& [key, value] : chunk) {
      records.push_back(
          MakeBlockRecord(key, value, MakeSpillPos(chunk_id, local++)));
    }
    ++chunk_id;
  }
  return records;
}

TEST(BlockCodec, RoundTripsAcrossKeyDistributions) {
  // Every distribution, both codecs: encode the sorted run as one block,
  // decode it, and require every column back exactly — the hash column
  // included, which the decoder recomputes rather than reads.
  for (KeyDist dist : {KeyDist::kUniform, KeyDist::kZipf, KeyDist::kAllSame,
                       KeyDist::kAllDistinct}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const ColumnarRun run = RunFromRecords(BlockRecordsFor(dist, seed));
      for (const Codec* codec : {&IdentityCodec(), &Lz77Codec()}) {
        SCOPED_TRACE(std::string(codec->name()) + " seed=" +
                     std::to_string(seed));
        std::string payload;
        BlockEncodeStats stats;
        EncodeBlock(run, 0, run.rows(), *codec, payload, stats);
        EXPECT_EQ(stats.blocks, 1u);
        ColumnarRun back;
        ASSERT_TRUE(DecodeBlock(payload, back).ok());
        ASSERT_EQ(back.rows(), run.rows());
        for (std::size_t i = 0; i < run.rows(); ++i) {
          ASSERT_EQ(back.hashes[i], run.hashes[i]) << i;
          ASSERT_EQ(back.positions[i], run.positions[i]) << i;
          ASSERT_EQ(back.keys.At(i), run.keys.At(i)) << i;
          ASSERT_EQ(back.values.At(i), run.values.At(i)) << i;
        }
      }
    }
  }
}

TEST(BlockCodec, DictionaryKicksInForLowCardinality) {
  const ColumnarRun same =
      RunFromRecords(BlockRecordsFor(KeyDist::kAllSame, 5));
  ASSERT_GT(same.rows(), 2u);
  std::string payload;
  BlockEncodeStats stats;
  EncodeBlock(same, 0, same.rows(), IdentityCodec(), payload, stats);
  EXPECT_EQ(stats.dict_blocks, 1u);
  // One dictionary entry replaces every per-row key: far below raw.
  EXPECT_LT(stats.encoded_bytes,
            same.keys.bytes().size() + same.rows() * 8);

  const ColumnarRun distinct =
      RunFromRecords(BlockRecordsFor(KeyDist::kAllDistinct, 5));
  stats = {};
  EncodeBlock(distinct, 0, distinct.rows(), IdentityCodec(), payload,
              stats);
  EXPECT_EQ(stats.dict_blocks, 0u);
}

TEST(BlockCodec, CorruptPayloadSurfacesStatusNotCrash) {
  const ColumnarRun run =
      RunFromRecords(BlockRecordsFor(KeyDist::kUniform, 7));
  std::string payload;
  BlockEncodeStats stats;
  EncodeBlock(run, 0, run.rows(), Lz77Codec(), payload, stats);
  ColumnarRun back;
  // Unknown codec id.
  std::string bad = payload;
  bad[0] = 42;
  EXPECT_FALSE(DecodeBlock(bad, back).ok());
  // Every truncation of the payload fails cleanly.
  for (std::size_t cut = 0; cut < payload.size(); cut += 7) {
    EXPECT_FALSE(
        DecodeBlock(std::string_view(payload.data(), cut), back).ok())
        << "cut=" << cut;
  }
  // Bit flips inside the compressed body: either the codec or the body
  // parser must reject or produce a clean decode — never crash. (The CRC
  // frame normally catches these; this exercises the layer below it.)
  for (std::size_t i = 2; i < bad.size(); i += 11) {
    bad = payload;
    bad[i] = static_cast<char>(bad[i] ^ 0x5A);
    ColumnarRun scratch;
    DecodeBlock(bad, scratch).ok();  // must not crash; status is free
  }
}

TEST(BlockSpill, WriterRoundTripsThroughDiskSource) {
  RunSpiller spiller(TestDir());
  ColumnarRun run = RunFromRecords(BlockRecordsFor(KeyDist::kZipf, 11));
  const ColumnarRun expect =
      RunFromRecords(BlockRecordsFor(KeyDist::kZipf, 11));
  ASSERT_TRUE(spiller.SpillBlockRun(run).ok());
  EXPECT_TRUE(run.empty()) << "spill consumes the run";
  EXPECT_EQ(spiller.spill_runs(), 1u);
  EXPECT_GT(spiller.bytes_written(), 0u);
  EXPECT_GT(spiller.encode_stats().blocks, 0u);

  DiskBlockRunSource source(spiller.spill_run_paths()[0]);
  std::size_t i = 0;
  while (const RecordView* rec = source.Peek()) {
    ASSERT_LT(i, expect.rows());
    EXPECT_EQ(rec->hash, expect.hashes[i]);
    EXPECT_EQ(rec->pos, expect.positions[i]);
    EXPECT_EQ(rec->key, expect.keys.At(i));
    EXPECT_EQ(rec->value, expect.values.At(i));
    source.Advance();
    ++i;
  }
  ASSERT_TRUE(source.status().ok()) << source.status();
  EXPECT_EQ(i, expect.rows());
}

TEST(BlockSpill, TruncatedAndCorruptedRunsSurfaceStatus) {
  // Truncation mid-frame: kOutOfRange from the frame layer.
  RunSpiller spiller(TestDir());
  ColumnarRun run = RunFromRecords(BlockRecordsFor(KeyDist::kUniform, 13));
  ASSERT_TRUE(spiller.SpillBlockRun(run).ok());
  const std::string path = spiller.spill_run_paths()[0];
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  {
    DiskBlockRunSource source(path);
    while (source.Peek() != nullptr) source.Advance();
    ASSERT_FALSE(source.status().ok());
    EXPECT_EQ(source.status().code(), common::StatusCode::kOutOfRange);
  }
  // A flipped byte inside the compressed frame: the CRC catches it
  // (kInternal) before the codec ever sees the bytes.
  ColumnarRun again = RunFromRecords(BlockRecordsFor(KeyDist::kUniform, 13));
  ASSERT_TRUE(spiller.SpillBlockRun(again).ok());
  const std::string path2 = spiller.spill_run_paths()[1];
  {
    std::fstream f(path2, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3, std::ios::end);
    f.put('!');
  }
  {
    DiskBlockRunSource source(path2);
    while (source.Peek() != nullptr) source.Advance();
    ASSERT_FALSE(source.status().ok());
    EXPECT_EQ(source.status().code(), common::StatusCode::kInternal);
  }
  // A record-format (v1) run fed to the block reader: version mismatch.
  std::vector<SpillRecord> v1;
  v1.push_back(MakeBlockRecord(1, 1, 1));
  ASSERT_TRUE(spiller.SpillRun(v1).ok());
  {
    DiskBlockRunSource source(spiller.spill_run_paths()[2]);
    EXPECT_EQ(source.Peek(), nullptr);
    EXPECT_EQ(source.status().code(),
              common::StatusCode::kInvalidArgument);
  }
}

TEST(BlockMerge, MatchesRecordMergeAcrossDistributions) {
  // The block merge must produce byte-for-byte the groups the record
  // merge produces: same keys, same group contents, same first_pos — for
  // every distribution, spilled and in-memory runs mixed.
  for (KeyDist dist : {KeyDist::kUniform, KeyDist::kZipf, KeyDist::kAllSame,
                       KeyDist::kAllDistinct}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(std::string(Name(dist)) + " seed=" +
                   std::to_string(seed));
      const auto records = BlockRecordsFor(dist, seed);
      // Deal records round-robin into 5 runs; spill runs 0-2, keep 3-4 in
      // memory.
      std::vector<std::vector<SpillRecord>> runs(5);
      for (std::size_t i = 0; i < records.size(); ++i) {
        runs[i % runs.size()].push_back(records[i]);
      }

      RunSpiller rec_spiller(TestDir());
      std::vector<std::unique_ptr<RunSource>> rec_sources;
      RunSpiller blk_spiller(TestDir());
      std::vector<std::unique_ptr<BlockRunSource>> blk_sources;
      for (std::size_t r = 0; r < runs.size(); ++r) {
        ColumnarRun run = RunFromRecords(runs[r]);
        auto sorted = runs[r];
        std::sort(sorted.begin(), sorted.end(),
                  [](const SpillRecord& a, const SpillRecord& b) {
                    return SpillRecordLess(a, b);
                  });
        if (r < 3) {
          auto to_spill = sorted;
          ASSERT_TRUE(rec_spiller.SpillRun(to_spill).ok());
          rec_sources.push_back(std::make_unique<DiskRunSource>(
              rec_spiller.spill_run_paths().back()));
          ASSERT_TRUE(blk_spiller.SpillBlockRun(run).ok());
          blk_sources.push_back(std::make_unique<DiskBlockRunSource>(
              blk_spiller.spill_run_paths().back()));
        } else {
          rec_sources.push_back(
              std::make_unique<MemoryRunSource>(std::move(sorted)));
          blk_sources.push_back(
              std::make_unique<MemoryBlockRunSource>(std::move(run)));
        }
      }

      SpillStats rec_stats;
      auto rec_merged = MergeRunsToGroups<std::uint64_t, int>(
          std::move(rec_sources), rec_spiller, /*max_fan_in=*/2, rec_stats);
      ASSERT_TRUE(rec_merged.ok()) << rec_merged.status();
      SpillStats blk_stats;
      auto blk_merged = MergeBlockRunsToGroups<std::uint64_t, int>(
          std::move(blk_sources), blk_spiller, /*max_fan_in=*/2, blk_stats);
      ASSERT_TRUE(blk_merged.ok()) << blk_merged.status();

      EXPECT_EQ(blk_merged->keys, rec_merged->keys);
      EXPECT_EQ(blk_merged->groups, rec_merged->groups);
      EXPECT_EQ(blk_merged->first_pos, rec_merged->first_pos);
      EXPECT_EQ(blk_stats.merge_passes, rec_stats.merge_passes);
    }
  }
}

TEST(SpillFile, BlockFormatVersionAcceptedUnknownRejected) {
  const std::string path = TestPath("v2.spill");
  auto writer = SpillFileWriter::Create(path, kSpillFormatVersionBlocks);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->AppendBlock("payload").ok());
  ASSERT_TRUE(writer->Close().ok());
  auto reader = SpillFileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->version(), kSpillFormatVersionBlocks);

  auto bad = SpillFileWriter::Create(path, 99);
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(bad->Close().ok());
  auto rejected = SpillFileReader::Open(path);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(),
            common::StatusCode::kInvalidArgument);
}

// ----------------------------------- round-trip property vs the engine

TEST(ExternalShuffleProperty, MatchesSerialShuffleAcrossDistributions) {
  // For every distribution, seed, and budget (from spill-everything to
  // spill-nothing): keys, group contents, and global first-seen order must
  // match the serial in-memory reference exactly.
  common::ThreadPool pool(4);
  for (KeyDist dist : {KeyDist::kUniform, KeyDist::kZipf, KeyDist::kAllSame,
                       KeyDist::kAllDistinct}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      auto serial_chunks = RandomChunks(dist, seed);
      const auto serial = engine::SerialShuffle(serial_chunks);
      for (std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{256},
                                   std::uint64_t{4096},
                                   std::uint64_t{1} << 30}) {
        auto chunks = RandomChunks(dist, seed);
        engine::ShuffleConfig options;
        options.memory_budget_bytes = budget;
        options.spill_dir = TestDir();
        SpillStats stats;
        auto external =
            engine::ExternalShuffle(chunks, pool, options, &stats);
        SCOPED_TRACE(std::string(Name(dist)) +
                     " seed=" + std::to_string(seed) +
                     " budget=" + std::to_string(budget));
        ASSERT_TRUE(external.ok()) << external.status();
        ASSERT_EQ(external->keys, serial.keys);
        ASSERT_EQ(external->groups, serial.groups);
        EXPECT_GE(stats.merge_passes, 1u);
        if (budget == 0) {
          EXPECT_GT(stats.spill_runs, 0u);
        }
      }
    }
  }
}

TEST(ExternalShuffleProperty, TinyFanInForcesMultiPassMerge) {
  common::ThreadPool pool(4);
  auto serial_chunks = RandomChunks(KeyDist::kUniform, 9);
  const auto serial = engine::SerialShuffle(serial_chunks);
  auto chunks = RandomChunks(KeyDist::kUniform, 9);
  engine::ShuffleConfig options;
  options.memory_budget_bytes = 512;  // many small runs
  options.merge_fan_in = 2;           // smallest legal fan-in
  options.spill_dir = TestDir();
  SpillStats stats;
  auto external = engine::ExternalShuffle(chunks, pool, options, &stats);
  ASSERT_TRUE(external.ok()) << external.status();
  EXPECT_EQ(external->keys, serial.keys);
  EXPECT_EQ(external->groups, serial.groups);
  EXPECT_GT(stats.merge_passes, 1u);
  EXPECT_GT(stats.spill_runs, 2u);
}

TEST(ExternalShuffleProperty, StringKeysAndValues) {
  // Variable-length keys exercise the key-byte comparison path.
  std::vector<std::vector<std::pair<std::string, std::string>>> chunks(3);
  common::SplitMix64 rng(21);
  for (auto& chunk : chunks) {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t k = rng.UniformBelow(37);
      chunk.emplace_back("key-" + std::string(k % 5, 'x') +
                             std::to_string(k),
                         "value-" + std::to_string(i));
    }
  }
  auto serial_chunks = chunks;
  const auto serial = engine::SerialShuffle(serial_chunks);
  common::ThreadPool pool(2);
  engine::ShuffleConfig options;
  options.memory_budget_bytes = 2048;
  options.spill_dir = TestDir();
  auto external = engine::ExternalShuffle(chunks, pool, options);
  ASSERT_TRUE(external.ok()) << external.status();
  EXPECT_EQ(external->keys, serial.keys);
  EXPECT_EQ(external->groups, serial.groups);
}

/// Removes the per-process scratch directory. gtest runs suites in
/// declaration order within a file, so keep this test last.
TEST(ZCleanup, RemoveTestDir) {
  std::error_code ec;
  std::filesystem::remove_all(TestDir(), ec);
  EXPECT_FALSE(ec) << ec.message();
}

}  // namespace
}  // namespace mrcost::storage
