// The lazy typed dataflow Plan API (src/engine/plan.h): building is free
// of execution, Estimate prices rounds against the Section 2.4 recipe
// before any data moves, Explain narrates the physical plan, and Execute
// lowers onto the eager Pipeline machinery byte-identically for every
// shuffle strategy — verified here on a synthetic round (plan vs eager,
// metrics compared field by field) and on all four problem-family drivers
// across {serial, sharded, external} x seeds.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/engine/job.h"
#include "src/engine/partitioner.h"
#include "src/engine/plan.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/sample_graph_mr.h"
#include "src/hamming/bitstring.h"
#include "src/hamming/bounds.h"
#include "src/hamming/similarity_join.h"
#include "src/join/generators.h"
#include "src/join/query.h"
#include "src/join/relation.h"
#include "src/join/two_round.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"
#include "src/matmul/problem.h"

namespace mrcost::engine {
namespace {

/// A synthetic recipe accepting any (q, r); only the bound math matters.
core::Recipe SyntheticRecipe(double num_inputs, double num_outputs) {
  core::Recipe recipe;
  recipe.problem_name = "synthetic";
  recipe.g = [](double q) { return q * q; };
  recipe.num_inputs = num_inputs;
  recipe.num_outputs = num_outputs;
  return recipe;
}

void ExpectSameMetrics(const JobMetrics& a, const JobMetrics& b) {
  EXPECT_EQ(a.num_inputs, b.num_inputs);
  EXPECT_EQ(a.pairs_shuffled, b.pairs_shuffled);
  EXPECT_EQ(a.pairs_before_combine, b.pairs_before_combine);
  EXPECT_EQ(a.bytes_shuffled, b.bytes_shuffled);
  EXPECT_EQ(a.num_reducers, b.num_reducers);
  EXPECT_EQ(a.max_reducer_input, b.max_reducer_input);
  EXPECT_EQ(a.num_outputs, b.num_outputs);
  EXPECT_EQ(a.spill_runs, b.spill_runs);
  EXPECT_EQ(a.spill_bytes_written, b.spill_bytes_written);
  EXPECT_EQ(a.merge_passes, b.merge_passes);
}

// --------------------------------------------------------------- laziness

TEST(Plan, BuildingRunsNothing) {
  static std::atomic<int> map_calls{0};
  map_calls = 0;
  std::vector<int> inputs(100);
  std::iota(inputs.begin(), inputs.end(), 0);
  Plan plan;
  auto counts =
      plan.Source(std::move(inputs))
          .Map<int, int>([](const int& x, Emitter<int, int>& emitter) {
            ++map_calls;
            emitter.Emit(x % 10, x);
          })
          .ReduceByKey<std::pair<int, std::size_t>>(
              [](const int& key, const std::vector<int>& values,
                 std::vector<std::pair<int, std::size_t>>& out) {
                out.emplace_back(key, values.size());
              });
  EXPECT_EQ(map_calls.load(), 0);  // nothing ran
  EXPECT_EQ(plan.num_rounds(), 1u);

  // Estimate with fully declared hints (r and reducer count) prices the
  // round without executing the map function at all.
  StageEstimate hint;
  hint.replication = 1;
  hint.num_reducers = 10;
  Plan hinted;
  std::vector<int> inputs2(100);
  std::iota(inputs2.begin(), inputs2.end(), 0);
  auto hinted_ds =
      hinted.Source(std::move(inputs2))
          .Map<int, int>([](const int& x, Emitter<int, int>& e) {
            ++map_calls;
            e.Emit(x % 10, x);
          })
          .WithEstimate(hint)
          .ReduceByKey<std::pair<int, std::size_t>>(
              [](const int& key, const std::vector<int>& values,
                 std::vector<std::pair<int, std::size_t>>& out) {
                out.emplace_back(key, values.size());
              });
  (void)hinted_ds;
  const auto hinted_estimate =
      hinted.Estimate(SyntheticRecipe(100, 10));
  EXPECT_EQ(map_calls.load(), 0);  // declared stages are never sampled
  ASSERT_EQ(hinted_estimate.rounds.size(), 1u);
  EXPECT_FALSE(hinted_estimate.rounds[0].sampled);
  EXPECT_DOUBLE_EQ(hinted_estimate.rounds[0].predicted_q, 10.0);

  auto run = counts.Execute();
  // The strategy chooser samples the map function before the round runs,
  // so the map executes at least once per input (sampling included).
  EXPECT_GE(map_calls.load(), 100);
  EXPECT_EQ(run.outputs.size(), 10u);
  ASSERT_EQ(run.metrics.rounds.size(), 1u);
  EXPECT_EQ(run.metrics.rounds[0].pairs_shuffled, 100u);
  ASSERT_EQ(run.round_strategies.size(), 1u);
}

// ----------------------------------------------- plan-vs-eager equivalence

/// The shared synthetic workload: colliding keys, order-sensitive fold.
struct SyntheticJob {
  std::vector<int> inputs;
  SyntheticJob() : inputs(5000) {
    std::iota(inputs.begin(), inputs.end(), 0);
  }
  static void MapFn(const int& x, Emitter<int, std::uint64_t>& emitter) {
    emitter.Emit(x % 97, static_cast<std::uint64_t>(x));
    emitter.Emit(x % 251, static_cast<std::uint64_t>(x) + 1);
  }
  static void ReduceFn(const int& key,
                       const std::vector<std::uint64_t>& values,
                       std::vector<std::pair<int, std::uint64_t>>& out) {
    std::uint64_t acc = static_cast<std::uint64_t>(key);
    for (std::uint64_t v : values) acc = acc * 31 + v;
    out.emplace_back(key, acc);
  }
};

TEST(Plan, ExecuteMatchesEagerPipelineForEveryStrategy) {
  SyntheticJob job;
  for (ShuffleStrategy strategy :
       {ShuffleStrategy::kSerial, ShuffleStrategy::kSharded,
        ShuffleStrategy::kExternal}) {
    SCOPED_TRACE(ToString(strategy));
    JobOptions options;
    options.num_threads = 2;
    options.shuffle.strategy = strategy;
    if (strategy == ShuffleStrategy::kExternal) {
      options.shuffle.memory_budget_bytes = 1 << 12;
    }

    // Eager path: the Pipeline the plan lowers onto.
    Pipeline pipeline(options);
    auto eager =
        pipeline.AddRound<int, int, std::uint64_t,
                          std::pair<int, std::uint64_t>>(
            job.inputs, SyntheticJob::MapFn, SyntheticJob::ReduceFn);
    const PipelineMetrics eager_metrics = pipeline.TakeMetrics();

    // Lazy path, same options.
    Plan plan;
    auto ds = plan.Source(job.inputs)
                  .Map<int, std::uint64_t>(SyntheticJob::MapFn)
                  .ReduceByKey<std::pair<int, std::uint64_t>>(
                      SyntheticJob::ReduceFn);
    auto run = ds.Execute(ExecutionOptions(options));

    EXPECT_EQ(run.outputs, eager);  // byte-identical
    ASSERT_EQ(run.metrics.rounds.size(), 1u);
    ExpectSameMetrics(run.metrics.rounds[0], eager_metrics.rounds[0]);
    ASSERT_EQ(run.round_strategies.size(), 1u);
    EXPECT_EQ(run.round_strategies[0], strategy);
  }
}

TEST(Plan, CombinedRoundMatchesEager) {
  std::vector<int> inputs(8000);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<int>(i % 613);
  }
  auto map_fn = [](const int& x, Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(x, x);
    emitter.Emit(x + 1000, 2 * x);
  };
  auto combine_fn = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto reduce_fn = [](const int& key, const std::vector<std::int64_t>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  JobOptions options;
  options.num_threads = 2;

  Pipeline pipeline(options);
  auto eager = pipeline.AddCombinedRound<int, int, std::int64_t,
                                         std::pair<int, std::int64_t>>(
      inputs, map_fn, combine_fn, reduce_fn);
  const PipelineMetrics eager_metrics = pipeline.TakeMetrics();

  Plan plan;
  auto run = plan.Source(inputs)
                 .Map<int, std::int64_t>(map_fn)
                 .CombineByKey(combine_fn)
                 .ReduceByKey<std::pair<int, std::int64_t>>(reduce_fn)
                 .Execute(ExecutionOptions(options));
  EXPECT_EQ(run.outputs, eager);
  ASSERT_EQ(run.metrics.rounds.size(), 1u);
  ExpectSameMetrics(run.metrics.rounds[0], eager_metrics.rounds[0]);
  EXPECT_LT(run.metrics.rounds[0].pairs_shuffled,
            run.metrics.rounds[0].pairs_before_combine);
}

TEST(Plan, IntermediateDatasetExecutesOnlyItsAncestry) {
  std::vector<int> inputs(500);
  std::iota(inputs.begin(), inputs.end(), 0);
  Plan plan;
  auto round1 = plan.Source(std::move(inputs))
                    .Map<int, int>([](const int& x, Emitter<int, int>& e) {
                      e.Emit(x % 50, x);
                    })
                    .ReduceByKey<std::pair<int, std::int64_t>>(
                        [](const int& key, const std::vector<int>& values,
                           std::vector<std::pair<int, std::int64_t>>& out) {
                          std::int64_t sum = 0;
                          for (int v : values) sum += v;
                          out.emplace_back(key, sum);
                        });
  auto round2 =
      round1
          .Map<int, std::int64_t>(
              [](const std::pair<int, std::int64_t>& p,
                 Emitter<int, std::int64_t>& e) { e.Emit(p.first % 5, p.second); })
          .ReduceByKey<std::pair<int, std::int64_t>>(
              [](const int& key, const std::vector<std::int64_t>& values,
                 std::vector<std::pair<int, std::int64_t>>& out) {
                std::int64_t sum = 0;
                for (std::int64_t v : values) sum += v;
                out.emplace_back(key, sum);
              });
  EXPECT_EQ(plan.num_rounds(), 2u);

  auto first = round1.Execute();
  EXPECT_EQ(first.metrics.rounds.size(), 1u);  // round 2 did not run
  EXPECT_EQ(first.outputs.size(), 50u);

  auto both = round2.Execute();
  EXPECT_EQ(both.metrics.rounds.size(), 2u);
  EXPECT_EQ(both.outputs.size(), 5u);
}

TEST(Plan, ExecuteAsyncMatchesSync) {
  SyntheticJob job;
  JobOptions options;
  options.num_threads = 2;
  Plan plan;
  auto ds = plan.Source(job.inputs)
                .Map<int, std::uint64_t>(SyntheticJob::MapFn)
                .ReduceByKey<std::pair<int, std::uint64_t>>(
                    SyntheticJob::ReduceFn);
  auto sync = ds.Execute(ExecutionOptions(options));
  auto future = ds.ExecuteAsync(ExecutionOptions(options));
  auto async = future.get();
  EXPECT_EQ(async.outputs, sync.outputs);
  ExpectSameMetrics(async.metrics.rounds[0], sync.metrics.rounds[0]);
}

// ------------------------------------------------ per-round strategy chooser

TEST(Plan, ChooserSkipsSpillWhenRoundFitsBudget) {
  // Eager rule: any budget forces the external shuffle. The plan chooser
  // only goes external when the round's estimated intermediate bytes
  // exceed the budget — same outputs, no spill metrics.
  SyntheticJob job;
  JobOptions options;
  options.shuffle.memory_budget_bytes = 1 << 30;  // far above the data

  auto eager = RunMapReduce<int, int, std::uint64_t,
                            std::pair<int, std::uint64_t>>(
      job.inputs, SyntheticJob::MapFn, SyntheticJob::ReduceFn, options);
  EXPECT_TRUE(eager.metrics.external_shuffle());

  Plan plan;
  auto run = plan.Source(job.inputs)
                 .Map<int, std::uint64_t>(SyntheticJob::MapFn)
                 .ReduceByKey<std::pair<int, std::uint64_t>>(
                     SyntheticJob::ReduceFn)
                 .Execute(ExecutionOptions(options));
  EXPECT_EQ(run.outputs, eager.outputs);
  EXPECT_FALSE(run.metrics.rounds[0].external_shuffle());
  ASSERT_EQ(run.round_strategies.size(), 1u);
  EXPECT_EQ(run.round_strategies[0], ShuffleStrategy::kSharded);
}

TEST(Plan, ChooserDecidesPerRoundNotPerPipeline) {
  // A two-round plan whose round 1 is far over budget and whose round 2 is
  // far under it: only round 1 pays the spill path. (The eager pipeline
  // backstop would run both rounds externally.)
  std::vector<int> inputs(20000);
  std::iota(inputs.begin(), inputs.end(), 0);
  PipelineOptions pipeline_options;
  // Round 1's intermediate is ~940 KiB, round 2's ~64 KiB; the budget sits
  // between them with room for the chooser's 2x in-memory headroom.
  pipeline_options.shuffle.memory_budget_bytes = 384 << 10;

  Plan plan;
  auto round1 = plan.Source(std::move(inputs))
                    .Map<std::uint64_t, std::uint64_t>(
                        [](const int& x,
                           Emitter<std::uint64_t, std::uint64_t>& e) {
                          const auto v = static_cast<std::uint64_t>(x);
                          e.Emit(v % 4096, v);
                          e.Emit((v * 31) % 4096, v + 1);
                          e.Emit((v * 131) % 4096, v + 2);
                        },
                        "big fan-out")
                    .ReduceByKey<std::pair<std::uint64_t, std::uint64_t>>(
                        [](const std::uint64_t& key,
                           const std::vector<std::uint64_t>& values,
                           std::vector<std::pair<std::uint64_t,
                                                 std::uint64_t>>& out) {
                          std::uint64_t sum = 0;
                          for (std::uint64_t v : values) sum += v;
                          out.emplace_back(key, sum);
                        });
  auto round2 =
      round1
          .Map<std::uint64_t, std::uint64_t>(
              [](const std::pair<std::uint64_t, std::uint64_t>& p,
                 Emitter<std::uint64_t, std::uint64_t>& e) {
                e.Emit(p.first % 8, p.second);
              },
              "tiny regroup")
          .ReduceByKey<std::pair<std::uint64_t, std::uint64_t>>(
              [](const std::uint64_t& key,
                 const std::vector<std::uint64_t>& values,
                 std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) {
                std::uint64_t sum = 0;
                for (std::uint64_t v : values) sum += v;
                out.emplace_back(key, sum);
              });

  auto run = round2.Execute(ExecutionOptions(pipeline_options));
  ASSERT_EQ(run.metrics.rounds.size(), 2u);
  EXPECT_TRUE(run.metrics.rounds[0].external_shuffle());
  EXPECT_GT(run.metrics.rounds[0].spill_runs, 0u);
  EXPECT_FALSE(run.metrics.rounds[1].external_shuffle());
  ASSERT_EQ(run.round_strategies.size(), 2u);
  EXPECT_EQ(run.round_strategies[0], ShuffleStrategy::kExternal);
  EXPECT_NE(run.round_strategies[1], ShuffleStrategy::kExternal);

  // Byte-identical to the no-budget run.
  auto reference = round2.Execute();
  EXPECT_EQ(run.outputs, reference.outputs);
}

TEST(Plan, ExplicitShardRequestSuppressesSerialDowngrade) {
  // A tiny round would be downgraded to the serial shuffle by the
  // chooser, but an explicit num_shards request asks for the sharded
  // code path and must keep it.
  std::vector<int> inputs(200);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto build = [&](Plan& plan) {
    return plan.Source(inputs)
        .Map<int, int>([](const int& x, Emitter<int, int>& e) {
          e.Emit(x % 10, x);
        })
        .ReduceByKey<std::pair<int, std::size_t>>(
            [](const int& key, const std::vector<int>& values,
               std::vector<std::pair<int, std::size_t>>& out) {
              out.emplace_back(key, values.size());
            });
  };
  Plan tiny;
  auto serial_run = build(tiny).Execute();
  ASSERT_EQ(serial_run.round_strategies.size(), 1u);
  EXPECT_EQ(serial_run.round_strategies[0], ShuffleStrategy::kSerial);

  JobOptions options;
  options.num_shards = 4;
  Plan sharded;
  auto sharded_run = build(sharded).Execute(ExecutionOptions(options));
  ASSERT_EQ(sharded_run.round_strategies.size(), 1u);
  EXPECT_EQ(sharded_run.round_strategies[0], ShuffleStrategy::kSharded);
  EXPECT_EQ(sharded_run.outputs, serial_run.outputs);
}

TEST(Plan, ExplicitStrategyBypassesChooser) {
  SyntheticJob job;
  JobOptions options;
  options.shuffle.strategy = ShuffleStrategy::kExternal;
  options.shuffle.memory_budget_bytes = 1 << 30;  // would fit in memory
  Plan plan;
  auto run = plan.Source(job.inputs)
                 .Map<int, std::uint64_t>(SyntheticJob::MapFn)
                 .ReduceByKey<std::pair<int, std::uint64_t>>(
                     SyntheticJob::ReduceFn)
                 .Execute(ExecutionOptions(options));
  EXPECT_TRUE(run.metrics.rounds[0].external_shuffle());
  EXPECT_EQ(run.round_strategies[0], ShuffleStrategy::kExternal);
}

// --------------------------------------------------------- Estimate/Explain

TEST(Plan, EstimateBeforeExecutionAndPropagation) {
  // Two-phase matmul: round 1's estimate is fully declared, round 2's
  // input count must be propagated (inputs_known == false) before
  // execution and read off the materialized intermediate after.
  const int n = 12, s_rows = 4, t_js = 2;
  matmul::Matrix r(n, n), s(n, n);
  common::SplitMix64 rng(7);
  r.FillRandom(rng);
  s.FillRandom(rng);
  auto plan = matmul::BuildMultiplyTwoPhasePlan(r, s, s_rows, t_js);
  ASSERT_TRUE(plan.ok()) << plan.status();

  const core::Recipe recipe = matmul::MatMulRecipe(n);
  const auto before = plan->plan.Estimate(recipe);
  ASSERT_EQ(before.rounds.size(), 2u);
  EXPECT_TRUE(before.rounds[0].inputs_known);
  EXPECT_DOUBLE_EQ(before.rounds[0].num_inputs, 2.0 * n * n);
  // Section 6.3: r = n/s, q = 2st.
  EXPECT_DOUBLE_EQ(before.rounds[0].predicted_r, double(n) / s_rows);
  EXPECT_DOUBLE_EQ(before.rounds[0].predicted_q, 2.0 * s_rows * t_js);
  EXPECT_GE(before.rounds[0].lower_bound_r, 0.0);
  // Round 2: propagated input count n^3/t, one pair each, q = n/t.
  EXPECT_FALSE(before.rounds[1].inputs_known);
  EXPECT_DOUBLE_EQ(before.rounds[1].num_inputs,
                   double(n) * n * n / t_js);
  EXPECT_DOUBLE_EQ(before.rounds[1].predicted_q, double(n) / t_js);
  EXPECT_NE(before.ToString().find("propagated"), std::string::npos);
  EXPECT_GT(before.total_predicted_pairs(), 0.0);

  // Execute, then re-estimate: round 2's input is now materialized.
  auto run = plan->sums.Execute();
  const auto after = plan->plan.Estimate(recipe);
  EXPECT_TRUE(after.rounds[1].inputs_known);
  EXPECT_DOUBLE_EQ(after.rounds[1].num_inputs,
                   static_cast<double>(run.metrics.rounds[1].num_inputs));
}

TEST(Plan, EstimateAgreesWithRealizedOnTableWorkloads) {
  // The acceptance bar: Estimate's predicted (r, q) matches the realized
  // JobMetrics on the paper-table workloads, before execution.

  // Hamming splitting (Tables 1/2 geometry): b = 12, k = 3, d = 1 on the
  // full domain — r = C(3,1) = 3, q = 2^4 = 16, exactly on the bound.
  {
    const int b = 12, k = 3, d = 1;
    auto plan = hamming::BuildSplittingSimilarityJoinPlan(
        hamming::AllStrings(b), b, k, d);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const auto estimate = plan->plan.Estimate(hamming::Hamming1Recipe(b));
    ASSERT_EQ(estimate.rounds.size(), 1u);
    const auto run = plan->pairs.Execute();
    const JobMetrics& realized = run.metrics.rounds[0];
    EXPECT_DOUBLE_EQ(estimate.rounds[0].predicted_r,
                     realized.replication_rate());
    EXPECT_DOUBLE_EQ(estimate.rounds[0].predicted_q,
                     static_cast<double>(realized.max_reducer_input));
    // The splitting algorithm is exactly optimal at its q, and its fully
    // declared geometry is priced without sampling the map function.
    EXPECT_NEAR(estimate.rounds[0].optimality_ratio, 1.0, 1e-9);
    EXPECT_FALSE(estimate.rounds[0].sampled);
  }

  // One-phase matmul (Section 6.2): r = n/s, q = 2sn.
  {
    const int n = 24, tile = 6;
    matmul::Matrix r(n, n), s(n, n);
    common::SplitMix64 rng(3);
    r.FillRandom(rng);
    s.FillRandom(rng);
    auto plan = matmul::BuildMultiplyOnePhasePlan(r, s, tile);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const auto estimate = plan->plan.Estimate(matmul::MatMulRecipe(n));
    const auto run = plan->cells.Execute();
    const JobMetrics& realized = run.metrics.rounds[0];
    EXPECT_DOUBLE_EQ(estimate.rounds[0].predicted_r,
                     realized.replication_rate());
    EXPECT_DOUBLE_EQ(estimate.rounds[0].predicted_q,
                     static_cast<double>(realized.max_reducer_input));
  }

  // HyperCube join: the Shares schema's weighted fan-out.
  {
    const join::Query query = join::ChainQuery(2);
    const auto relations = join::ZipfRelationsForQuery(
        query, /*size=*/500, /*domain=*/40, /*exponent=*/0.5, /*seed=*/9);
    std::vector<const join::Relation*> ptrs;
    for (const auto& rel : relations) ptrs.push_back(&rel);
    const std::vector<int> shares{2, 4, 2};
    auto plan = join::BuildHyperCubeJoinAggregatePlan(
        query, ptrs, shares, /*group_attr=*/0, /*sum_attr=*/2,
        /*pre_aggregate=*/false, /*seed=*/3);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const auto estimate =
        plan->plan.Estimate(SyntheticRecipe(1000, 100));
    ASSERT_EQ(estimate.rounds.size(), 2u);
    const auto run = plan->sums.Execute();
    EXPECT_DOUBLE_EQ(estimate.rounds[0].predicted_r,
                     run.metrics.rounds[0].replication_rate());
  }

  // Sample-graph enumeration: no declared hints — an exhaustive sample of
  // the map function reproduces the realized r and q exactly.
  {
    const graph::Graph data =
        graph::ZipfGraph(/*n=*/120, /*m=*/500, /*exponent=*/0.6, /*seed=*/4);
    const graph::Graph pattern(3, {{0, 1}, {1, 2}, {0, 2}});
    auto plan = graph::BuildSampleGraphPlan(data, pattern, /*k=*/5,
                                            /*seed=*/11);
    EstimateOptions exhaustive;
    exhaustive.max_sample_inputs = 0;  // sample every input
    const auto estimate = plan.plan.Estimate(
        SyntheticRecipe(data.num_edges(), 1), exhaustive);
    ASSERT_EQ(estimate.rounds.size(), 1u);
    EXPECT_TRUE(estimate.rounds[0].sampled);
    const auto run = plan.counts.Execute();
    const JobMetrics& realized = run.metrics.rounds[0];
    EXPECT_DOUBLE_EQ(estimate.rounds[0].predicted_r,
                     realized.replication_rate());
    EXPECT_DOUBLE_EQ(estimate.rounds[0].predicted_q,
                     static_cast<double>(realized.max_reducer_input));
    EXPECT_DOUBLE_EQ(estimate.rounds[0].predicted_reducers,
                     static_cast<double>(realized.num_reducers));
  }
}

TEST(Plan, EstimatePropagatesPerProducerOnBranchedPlans) {
  // Two rounds consuming the same intermediate: each must read its own
  // producer's predicted output count, not whatever round was estimated
  // last (the single-carried-scalar failure mode).
  std::vector<int> inputs(100);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const int& x, Emitter<int, int>& e) { e.Emit(x, x); };
  auto reduce_fn = [](const int& key, const std::vector<int>&,
                      std::vector<int>& out) { out.push_back(key); };

  StageEstimate hint_a;
  hint_a.replication = 2;
  hint_a.num_reducers = 10;
  hint_a.outputs_per_reducer = 3;  // a predicts 30 outputs
  StageEstimate hint_big;
  hint_big.replication = 1;
  hint_big.num_reducers = 5;
  hint_big.outputs_per_reducer = 100;  // c predicts 500 outputs

  Plan plan;
  auto a = plan.Source(std::move(inputs))
               .Map<int, int>(map_fn, "a")
               .WithEstimate(hint_a)
               .ReduceByKey<int>(reduce_fn);
  auto c = a.Map<int, int>(map_fn, "c")
               .WithEstimate(hint_big)
               .ReduceByKey<int>(reduce_fn);
  auto d = a.Map<int, int>(map_fn, "d")
               .WithEstimate(hint_a)
               .ReduceByKey<int>(reduce_fn);
  (void)c;
  (void)d;

  const auto estimate = plan.Estimate(SyntheticRecipe(100, 10));
  ASSERT_EQ(estimate.rounds.size(), 3u);
  // Both branches read a's predicted 30 outputs, d unaffected by c.
  EXPECT_DOUBLE_EQ(estimate.rounds[1].num_inputs, 30.0);
  EXPECT_DOUBLE_EQ(estimate.rounds[2].num_inputs, 30.0);
}

TEST(Plan, PlannedStrategyMatchesExecuteChooser) {
  // A fully declared stage with a budget: the planned_strategy annotation
  // must apply the same bytes-vs-budget rule the Execute chooser does
  // (sampling for bytes when none are declared), not blanket-report
  // external just because a budget is set.
  const int b = 12, k = 3, d = 1;
  auto plan = hamming::BuildSplittingSimilarityJoinPlan(
      hamming::AllStrings(b), b, k, d);
  ASSERT_TRUE(plan.ok());

  EstimateOptions roomy;
  roomy.shuffle.memory_budget_bytes = 1 << 30;  // far above ~192 KiB
  const auto fits = plan->plan.Estimate(hamming::Hamming1Recipe(b), roomy);
  EXPECT_EQ(fits.rounds[0].planned_strategy, ShuffleStrategy::kSharded);

  EstimateOptions tight;
  tight.shuffle.memory_budget_bytes = 1 << 10;  // far below
  const auto spills = plan->plan.Estimate(hamming::Hamming1Recipe(b), tight);
  EXPECT_EQ(spills.rounds[0].planned_strategy, ShuffleStrategy::kExternal);

  // And Execute agrees with the roomy annotation: no spill.
  JobOptions options;
  options.shuffle.memory_budget_bytes = 1 << 30;
  auto run = plan->pairs.Execute(ExecutionOptions(options));
  ASSERT_EQ(run.round_strategies.size(), 1u);
  EXPECT_EQ(run.round_strategies[0], ShuffleStrategy::kSharded);
}

TEST(Plan, PipelineWideSimulationReachesEveryRound) {
  // ExecutionOptions::pipeline.simulation must simulate every round the
  // plan executes (the backstop Pipeline::Resolve applies), not just be
  // narrated by Explain — executed and explained plans have to agree.
  SyntheticJob job;
  Plan plan;
  auto ds = plan.Source(job.inputs)
                .Map<int, std::uint64_t>(SyntheticJob::MapFn)
                .ReduceByKey<std::pair<int, std::uint64_t>>(
                    SyntheticJob::ReduceFn);
  ExecutionOptions options;
  options.pipeline.simulation.num_workers = 8;
  auto run = ds.Execute(options);
  ASSERT_EQ(run.metrics.rounds.size(), 1u);
  EXPECT_TRUE(run.metrics.rounds[0].simulated());
  EXPECT_EQ(run.metrics.rounds[0].worker_loads.count(), 8);
  EXPECT_GT(run.metrics.rounds[0].makespan, 0.0);
  // A round's own simulation still wins whole over the backstop.
  Plan own;
  JobOptions round_options;
  round_options.simulation.num_workers = 3;
  auto own_run = own.Source(job.inputs)
                     .Map<int, std::uint64_t>(SyntheticJob::MapFn)
                     .WithOptions(round_options)
                     .ReduceByKey<std::pair<int, std::uint64_t>>(
                         SyntheticJob::ReduceFn)
                     .Execute(options);
  EXPECT_EQ(own_run.metrics.rounds[0].worker_loads.count(), 3);
}

TEST(Plan, ExplainNarratesThePhysicalPlan) {
  const int n = 12;
  matmul::Matrix r(n, n), s(n, n);
  common::SplitMix64 rng(5);
  r.FillRandom(rng);
  s.FillRandom(rng);
  auto plan = matmul::BuildMultiplyTwoPhasePlan(r, s, 4, 2);
  ASSERT_TRUE(plan.ok());

  ExecutionOptions options;
  options.pipeline.shuffle.memory_budget_bytes = 1 << 10;
  options.pipeline.simulation.num_workers = 8;
  const std::string text = plan->plan.Explain(options);
  EXPECT_NE(text.find("source 'matrix elements'"), std::string::npos);
  EXPECT_NE(text.find("round 1 'two-phase cubes'"), std::string::npos);
  EXPECT_NE(text.find("round 2"), std::string::npos);
  EXPECT_NE(text.find("external"), std::string::npos);  // over tiny budget
  EXPECT_NE(text.find("memory budget"), std::string::npos);
  EXPECT_NE(text.find("8 workers"), std::string::npos);
  // Round 2's input is unmaterialized before execution.
  EXPECT_NE(text.find("chooser decides at run time"), std::string::npos);

  // Explicit strategies are reported as such.
  ExecutionOptions explicit_options;
  explicit_options.pipeline.round_defaults.shuffle.strategy =
      ShuffleStrategy::kSerial;
  const std::string explicit_text = plan->plan.Explain(explicit_options);
  EXPECT_NE(explicit_text.find("serial (explicit)"), std::string::npos);
}

// --------------------------------------- family drivers across strategies

/// Per-strategy JobOptions for the family sweeps; tight budget so external
/// really spills.
JobOptions StrategyOptions(ShuffleStrategy strategy) {
  JobOptions options;
  options.shuffle.strategy = strategy;
  if (strategy == ShuffleStrategy::kExternal) {
    options.shuffle.memory_budget_bytes = 1 << 12;
  }
  return options;
}

TEST(PlanFamilies, HammingAcrossStrategiesAndSeeds) {
  for (std::uint64_t seed : {1u, 2u}) {
    const auto strings = hamming::SkewedStrings(
        /*b=*/12, /*n=*/600, /*num_hubs=*/8, /*exponent=*/0.8, seed);
    const auto serial_pairs = hamming::SerialSimilarityJoin(strings, 1);
    const auto reference =
        hamming::SplittingSimilarityJoin(strings, 12, 3, 1, {});
    ASSERT_TRUE(reference.ok()) << reference.status();
    EXPECT_EQ(reference->pairs, serial_pairs);
    for (ShuffleStrategy strategy :
         {ShuffleStrategy::kSerial, ShuffleStrategy::kSharded,
          ShuffleStrategy::kExternal}) {
      SCOPED_TRACE(std::string(ToString(strategy)) +
                   " seed=" + std::to_string(seed));
      const auto run = hamming::SplittingSimilarityJoin(
          strings, 12, 3, 1, StrategyOptions(strategy));
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(run->pairs, reference->pairs);
      EXPECT_EQ(run->metrics.pairs_shuffled,
                reference->metrics.pairs_shuffled);
      EXPECT_EQ(run->metrics.bytes_shuffled,
                reference->metrics.bytes_shuffled);
      EXPECT_EQ(run->metrics.num_reducers, reference->metrics.num_reducers);
      EXPECT_EQ(run->metrics.max_reducer_input,
                reference->metrics.max_reducer_input);
    }
  }
}

TEST(PlanFamilies, JoinAggregateAcrossStrategiesAndSeeds) {
  const join::Query query = join::ChainQuery(2);
  for (std::uint64_t seed : {5u, 6u}) {
    const auto relations = join::ZipfRelationsForQuery(
        query, /*size=*/600, /*domain=*/30, /*exponent=*/0.8, seed);
    std::vector<const join::Relation*> ptrs;
    for (const auto& rel : relations) ptrs.push_back(&rel);
    const std::vector<int> shares{1, 4, 1};
    const auto serial =
        join::SerialJoinAggregate(query, ptrs, /*group_attr=*/0,
                                  /*sum_attr=*/2);
    const auto reference = join::HyperCubeJoinAggregate(
        query, ptrs, shares, 0, 2, /*pre_aggregate=*/false, /*seed=*/3, {});
    ASSERT_TRUE(reference.ok()) << reference.status();
    EXPECT_EQ(reference->sums, serial);
    for (ShuffleStrategy strategy :
         {ShuffleStrategy::kSerial, ShuffleStrategy::kSharded,
          ShuffleStrategy::kExternal}) {
      SCOPED_TRACE(std::string(ToString(strategy)) +
                   " seed=" + std::to_string(seed));
      const auto run = join::HyperCubeJoinAggregate(
          query, ptrs, shares, 0, 2, false, 3, StrategyOptions(strategy));
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(run->sums, reference->sums);
      EXPECT_EQ(run->metrics.total_pairs(),
                reference->metrics.total_pairs());
      EXPECT_EQ(run->metrics.total_bytes(),
                reference->metrics.total_bytes());
    }
  }
}

TEST(PlanFamilies, MatmulTwoPhaseAcrossStrategies) {
  const int n = 16;
  matmul::Matrix r(n, n), s(n, n);
  common::SplitMix64 rng(21);
  r.FillRandom(rng);
  s.FillRandom(rng);
  const matmul::Matrix expected = matmul::SerialMultiply(r, s);
  const auto reference = matmul::MultiplyTwoPhase(r, s, 4, 2, {});
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_LT(reference->product.MaxAbsDiff(expected), 1e-9);
  for (ShuffleStrategy strategy :
       {ShuffleStrategy::kSerial, ShuffleStrategy::kSharded,
        ShuffleStrategy::kExternal}) {
    SCOPED_TRACE(ToString(strategy));
    const auto run =
        matmul::MultiplyTwoPhase(r, s, 4, 2, StrategyOptions(strategy));
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->product.MaxAbsDiff(reference->product), 0.0);
    EXPECT_EQ(run->metrics.total_pairs(), reference->metrics.total_pairs());
    EXPECT_EQ(run->metrics.total_bytes(), reference->metrics.total_bytes());
  }
}

// ---------------------------------------------- streaming vs barrier

/// Execution options for the streaming comparisons: explicit strategy
/// (tight budget when external) and the streaming switch.
ExecutionOptions StreamingOptions(ShuffleStrategy strategy, bool streaming) {
  ExecutionOptions options(StrategyOptions(strategy));
  options.streaming = streaming;
  return options;
}

TEST(PlanStreaming, StreamedRoundOverlapsProducerReduce) {
  // Round 1: many keys with a deliberately heavy reduce, spread over
  // several shards; round 2: a cheap per-key regroup. With streaming on,
  // round 2's map for shard s starts the moment shard s finishes
  // reducing, while later shards still reduce — so the streamed edge has
  // wall-clock overlap, and outputs stay byte-identical to the barrier
  // schedule.
  std::vector<int> inputs(60000);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto build = [&](Plan& plan) {
    auto round1 =
        plan.Source(inputs)
            .Map<std::uint64_t, std::uint64_t>(
                [](const int& x, Emitter<std::uint64_t, std::uint64_t>& e) {
                  const auto v = static_cast<std::uint64_t>(x);
                  e.Emit(v % 1024, v);
                },
                "fan-in")
            .ReduceByKey<std::pair<std::uint64_t, std::uint64_t>>(
                [](const std::uint64_t& key,
                   const std::vector<std::uint64_t>& values,
                   std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                       out) {
                  std::uint64_t acc = key;
                  for (int pass = 0; pass < 200; ++pass) {
                    for (std::uint64_t v : values) acc = acc * 31 + v;
                  }
                  out.emplace_back(key, acc);
                });
    return round1
        .Map<std::uint64_t, std::uint64_t>(
            [](const std::pair<std::uint64_t, std::uint64_t>& p,
               Emitter<std::uint64_t, std::uint64_t>& e) {
              e.Emit(p.first % 16, p.second);
            },
            "regroup")
        .WithPerKeyInput()
        .ReduceByKey<std::pair<std::uint64_t, std::uint64_t>>(
            [](const std::uint64_t& key,
               const std::vector<std::uint64_t>& values,
               std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) {
              std::uint64_t acc = key;
              for (std::uint64_t v : values) acc = acc * 131 + v;
              out.emplace_back(key, acc);
            });
  };
  Plan plan;
  auto target = build(plan);
  ExecutionOptions streaming;
  streaming.pipeline.num_threads = 4;
  streaming.pipeline.round_defaults.num_shards = 8;
  ExecutionOptions barrier = streaming;
  barrier.streaming = false;

  auto streamed_run = target.Execute(streaming);
  auto barrier_run = target.Execute(barrier);

  EXPECT_EQ(streamed_run.outputs, barrier_run.outputs);
  ASSERT_EQ(streamed_run.metrics.rounds.size(), 2u);
  EXPECT_EQ(streamed_run.metrics.streamed_rounds, 1u);
  EXPECT_EQ(barrier_run.metrics.streamed_rounds, 0u);
  EXPECT_GT(streamed_run.metrics.exec_span_ms, 0.0);
  // The acceptance bar: the streamed edge overlapped in wall clock.
  EXPECT_GT(streamed_run.metrics.streamed_overlap_ms, 0.0);
  EXPECT_GT(streamed_run.metrics.overlap_fraction(), 0.0);
  // Non-timing metrics are schedule-independent.
  for (std::size_t i = 0; i < 2; ++i) {
    ExpectSameMetrics(streamed_run.metrics.rounds[i],
                      barrier_run.metrics.rounds[i]);
  }
}

TEST(PlanStreaming, FallsBackWhenStreamingDoesNotApply) {
  std::vector<int> inputs(3000);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map1 = [](const int& x, Emitter<int, std::int64_t>& e) {
    e.Emit(x % 100, x);
  };
  auto sum_reduce = [](const int& key,
                       const std::vector<std::int64_t>& values,
                       std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  auto map2 = [](const std::pair<int, std::int64_t>& p,
                 Emitter<int, std::int64_t>& e) {
    e.Emit(p.first % 10, p.second);
  };

  // External consumer strategy: spilling wants the whole input on hand,
  // so the per-key hint is ignored and the rounds run with a barrier.
  {
    Plan plan;
    auto target = plan.Source(inputs)
                      .Map<int, std::int64_t>(map1)
                      .ReduceByKey<std::pair<int, std::int64_t>>(sum_reduce)
                      .Map<int, std::int64_t>(map2)
                      .WithPerKeyInput()
                      .ReduceByKey<std::pair<int, std::int64_t>>(sum_reduce);
    auto run = target.Execute(
        StreamingOptions(ShuffleStrategy::kExternal, /*streaming=*/true));
    EXPECT_EQ(run.metrics.streamed_rounds, 0u);
    EXPECT_EQ(run.outputs.size(), 10u);
  }

  // Combined consumer: the chunk-local combine is chunking-dependent, so
  // a combined round never streams its input.
  {
    Plan plan;
    auto target = plan.Source(inputs)
                      .Map<int, std::int64_t>(map1)
                      .ReduceByKey<std::pair<int, std::int64_t>>(sum_reduce)
                      .Map<int, std::int64_t>(map2)
                      .CombineByKey([](std::int64_t a, std::int64_t b) {
                        return a + b;
                      })
                      .WithPerKeyInput()
                      .ReduceByKey<std::pair<int, std::int64_t>>(sum_reduce);
    auto run = target.Execute();
    EXPECT_EQ(run.metrics.streamed_rounds, 0u);
    EXPECT_EQ(run.outputs.size(), 10u);
  }

  // Branched consumers: finalize may only chase one streamed reader, so
  // a producer with two needed consumers runs with a barrier.
  {
    Plan plan;
    auto round1 = plan.Source(inputs)
                      .Map<int, std::int64_t>(map1)
                      .ReduceByKey<std::pair<int, std::int64_t>>(sum_reduce);
    auto left = round1.Map<int, std::int64_t>(map2)
                    .WithPerKeyInput()
                    .ReduceByKey<std::pair<int, std::int64_t>>(sum_reduce);
    auto right = round1.Map<int, std::int64_t>(map2)
                     .WithPerKeyInput()
                     .ReduceByKey<std::pair<int, std::int64_t>>(sum_reduce);
    (void)left;
    auto metrics = plan.Execute();
    EXPECT_EQ(metrics.streamed_rounds, 0u);
    auto run = right.Execute();
    EXPECT_EQ(run.outputs.size(), 10u);
  }
}

TEST(PlanStreaming, FamiliesByteIdenticalToBarrierAcrossStrategiesAndSeeds) {
  // The acceptance matrix: streaming == barrier, byte for byte, for all
  // four families x {serial, sharded, external} x seeds. The multi-round
  // families (matmul two-phase, join-aggregate) actually stream; the
  // one-round families pin the degenerate case.
  const std::vector<ShuffleStrategy> strategies = {
      ShuffleStrategy::kSerial, ShuffleStrategy::kSharded,
      ShuffleStrategy::kExternal};

  // Two-phase matmul: round 2 declares the per-key hint.
  for (std::uint64_t seed : {31u, 32u}) {
    const int n = 16;
    matmul::Matrix r(n, n), s(n, n);
    common::SplitMix64 rng(seed);
    r.FillRandom(rng);
    s.FillRandom(rng);
    auto plan = matmul::BuildMultiplyTwoPhasePlan(r, s, 4, 2);
    ASSERT_TRUE(plan.ok()) << plan.status();
    for (ShuffleStrategy strategy : strategies) {
      SCOPED_TRACE(std::string("matmul ") + ToString(strategy) +
                   " seed=" + std::to_string(seed));
      auto streamed = plan->sums.Execute(StreamingOptions(strategy, true));
      auto barrier = plan->sums.Execute(StreamingOptions(strategy, false));
      EXPECT_EQ(streamed.outputs, barrier.outputs);
      ASSERT_EQ(streamed.metrics.rounds.size(), 2u);
      for (std::size_t i = 0; i < 2; ++i) {
        ExpectSameMetrics(streamed.metrics.rounds[i],
                          barrier.metrics.rounds[i]);
      }
      EXPECT_EQ(barrier.metrics.streamed_rounds, 0u);
      if (strategy != ShuffleStrategy::kExternal) {
        EXPECT_EQ(streamed.metrics.streamed_rounds, 1u);
      }
    }
  }

  // HyperCube join + aggregate: round 2 declares the per-key hint.
  {
    const join::Query query = join::ChainQuery(2);
    for (std::uint64_t seed : {41u, 42u}) {
      const auto relations = join::ZipfRelationsForQuery(
          query, /*size=*/500, /*domain=*/30, /*exponent=*/0.7, seed);
      std::vector<const join::Relation*> ptrs;
      for (const auto& rel : relations) ptrs.push_back(&rel);
      const std::vector<int> shares{1, 4, 1};
      auto plan = join::BuildHyperCubeJoinAggregatePlan(
          query, ptrs, shares, /*group_attr=*/0, /*sum_attr=*/2,
          /*pre_aggregate=*/false, /*seed=*/3);
      ASSERT_TRUE(plan.ok()) << plan.status();
      for (ShuffleStrategy strategy : strategies) {
        SCOPED_TRACE(std::string("join ") + ToString(strategy) +
                     " seed=" + std::to_string(seed));
        auto streamed = plan->sums.Execute(StreamingOptions(strategy, true));
        auto barrier = plan->sums.Execute(StreamingOptions(strategy, false));
        EXPECT_EQ(streamed.outputs, barrier.outputs);
        ASSERT_EQ(streamed.metrics.rounds.size(), 2u);
        for (std::size_t i = 0; i < 2; ++i) {
          ExpectSameMetrics(streamed.metrics.rounds[i],
                            barrier.metrics.rounds[i]);
        }
      }
    }
  }

  // Hamming splitting join (one round: the degenerate streaming case).
  for (std::uint64_t seed : {51u, 52u}) {
    const auto strings = hamming::SkewedStrings(
        /*b=*/12, /*n=*/400, /*num_hubs=*/8, /*exponent=*/0.8, seed);
    auto plan = hamming::BuildSplittingSimilarityJoinPlan(strings, 12, 3, 1);
    ASSERT_TRUE(plan.ok()) << plan.status();
    for (ShuffleStrategy strategy : strategies) {
      SCOPED_TRACE(std::string("hamming ") + ToString(strategy) +
                   " seed=" + std::to_string(seed));
      auto streamed = plan->pairs.Execute(StreamingOptions(strategy, true));
      auto barrier = plan->pairs.Execute(StreamingOptions(strategy, false));
      EXPECT_EQ(streamed.outputs, barrier.outputs);
      ExpectSameMetrics(streamed.metrics.rounds[0],
                        barrier.metrics.rounds[0]);
    }
  }

  // Sample-graph enumeration (one round).
  for (std::uint64_t seed : {61u, 62u}) {
    const graph::Graph data =
        graph::ZipfGraph(/*n=*/150, /*m=*/600, /*exponent=*/0.6, seed);
    const graph::Graph pattern(3, {{0, 1}, {1, 2}, {0, 2}});
    auto plan = graph::BuildSampleGraphPlan(data, pattern, /*k=*/5,
                                            /*seed=*/7);
    for (ShuffleStrategy strategy : strategies) {
      SCOPED_TRACE(std::string("graph ") + ToString(strategy) +
                   " seed=" + std::to_string(seed));
      auto streamed = plan.counts.Execute(StreamingOptions(strategy, true));
      auto barrier = plan.counts.Execute(StreamingOptions(strategy, false));
      EXPECT_EQ(streamed.outputs, barrier.outputs);
      ExpectSameMetrics(streamed.metrics.rounds[0],
                        barrier.metrics.rounds[0]);
    }
  }
}

TEST(PlanFamilies, SampleGraphAcrossStrategiesAndSeeds) {
  const graph::Graph pattern(3, {{0, 1}, {1, 2}, {0, 2}});  // triangle
  for (std::uint64_t seed : {13u, 14u}) {
    const graph::Graph data =
        graph::ZipfGraph(/*n=*/200, /*m=*/800, /*exponent=*/0.7, seed);
    const auto reference =
        graph::MRSampleGraphInstances(data, pattern, /*k=*/5, /*seed=*/2, {});
    for (ShuffleStrategy strategy :
         {ShuffleStrategy::kSerial, ShuffleStrategy::kSharded,
          ShuffleStrategy::kExternal}) {
      SCOPED_TRACE(std::string(ToString(strategy)) +
                   " seed=" + std::to_string(seed));
      const auto run = graph::MRSampleGraphInstances(
          data, pattern, 5, 2, StrategyOptions(strategy));
      EXPECT_EQ(run.instance_count, reference.instance_count);
      EXPECT_EQ(run.metrics.pairs_shuffled, reference.metrics.pairs_shuffled);
      EXPECT_EQ(run.metrics.bytes_shuffled, reference.metrics.bytes_shuffled);
      EXPECT_EQ(run.metrics.num_reducers, reference.metrics.num_reducers);
    }
  }
}

// ------------------------------------- skew defense: hot-key splitting

using U64Shuffle = ShuffleResult<std::uint64_t, std::uint64_t>;

U64Shuffle CopyShuffle(const U64Shuffle& result) {
  return result;
}

TEST(HotKeySplit, SingleKeyHoldingEveryPairSplitsToCapacity) {
  // The degenerate extreme: one key owns 100% of the pairs. The split
  // must produce ceil(size / q) sub-groups, every one within q, all under
  // the replicated key, and the merge must restore the original exactly.
  U64Shuffle result;
  result.keys.push_back(7);
  result.groups.emplace_back(1000);
  std::iota(result.groups[0].begin(), result.groups[0].end(), 0ull);
  const U64Shuffle original = CopyShuffle(result);

  auto split = SplitHotGroups(std::move(result), /*threshold=*/100);
  EXPECT_EQ(split.stats.hot_keys_split, 1u);
  EXPECT_EQ(split.stats.sub_groups, 10u);
  EXPECT_EQ(split.stats.extra_replicas(), 9u);
  ASSERT_EQ(split.shuffled.keys.size(), 10u);
  for (std::size_t i = 0; i < split.shuffled.keys.size(); ++i) {
    EXPECT_EQ(split.shuffled.keys[i], 7u);       // key replicated
    EXPECT_LE(split.shuffled.groups[i].size(), 100u);  // within q
    EXPECT_EQ(split.origin[i], 0u);
  }
  const auto merged = MergeSplitGroups(std::move(split));
  EXPECT_EQ(merged.keys, original.keys);
  EXPECT_EQ(merged.groups, original.groups);
}

TEST(HotKeySplit, GroupExactlyAtCapacityIsNotSplit) {
  // The boundary case: a group of exactly q pairs already fits and must
  // not pay any replication; q + 1 pairs must split (into two parts).
  U64Shuffle result;
  result.keys = {1, 2};
  result.groups.emplace_back(64);   // exactly at threshold
  result.groups.emplace_back(65);   // one over
  std::iota(result.groups[0].begin(), result.groups[0].end(), 0ull);
  std::iota(result.groups[1].begin(), result.groups[1].end(), 100ull);
  const U64Shuffle original = CopyShuffle(result);

  auto split = SplitHotGroups(std::move(result), /*threshold=*/64);
  EXPECT_EQ(split.stats.hot_keys_split, 1u);  // only the 65-pair group
  EXPECT_EQ(split.stats.sub_groups, 2u);
  ASSERT_EQ(split.shuffled.keys.size(), 3u);
  EXPECT_EQ(split.shuffled.groups[0].size(), 64u);  // untouched
  EXPECT_EQ(split.shuffled.groups[1].size(), 33u);  // 65 -> 33 + 32
  EXPECT_EQ(split.shuffled.groups[2].size(), 32u);
  const auto merged = MergeSplitGroups(std::move(split));
  EXPECT_EQ(merged.keys, original.keys);
  EXPECT_EQ(merged.groups, original.groups);
}

TEST(HotKeySplit, ZeroThresholdDisablesSplitting) {
  U64Shuffle result;
  result.keys = {1};
  result.groups.emplace_back(5000, 9ull);
  const U64Shuffle original = CopyShuffle(result);
  auto split = SplitHotGroups(std::move(result), /*threshold=*/0);
  EXPECT_EQ(split.stats.hot_keys_split, 0u);
  EXPECT_EQ(split.stats.sub_groups, 0u);
  EXPECT_EQ(split.shuffled.keys, original.keys);
  EXPECT_EQ(split.shuffled.groups, original.groups);
}

TEST(HotKeySplit, SplitThenMergeIsIdentityAcrossKeyDistributions) {
  // Split-then-merge must be the identity on the SerialShuffle result of
  // every PR-2 key distribution — uniform, zipf, all-same, all-distinct —
  // which is the invariant that keeps defended outputs byte-identical.
  enum class Dist { kUniform, kZipf, kAllSame, kAllDistinct };
  for (Dist dist :
       {Dist::kUniform, Dist::kZipf, Dist::kAllSame, Dist::kAllDistinct}) {
    SCOPED_TRACE(static_cast<int>(dist));
    common::SplitMix64 rng(17 + static_cast<std::uint64_t>(dist));
    common::ZipfDistribution zipf(400, 1.3);
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> chunks(
        3);
    std::uint64_t serial = 0;
    for (auto& chunk : chunks) {
      for (int i = 0; i < 2000; ++i, ++serial) {
        std::uint64_t key = 0;
        switch (dist) {
          case Dist::kUniform: key = rng.UniformBelow(300); break;
          case Dist::kZipf: key = zipf.Sample(rng); break;
          case Dist::kAllSame: key = 42; break;
          case Dist::kAllDistinct: key = serial; break;
        }
        chunk.emplace_back(key, serial);
      }
    }
    U64Shuffle reference = SerialShuffle(chunks);
    const U64Shuffle original = CopyShuffle(reference);
    for (std::uint64_t threshold : {1u, 16u, 1000u, 100000u}) {
      auto split = SplitHotGroups(CopyShuffle(original), threshold);
      for (const auto& group : split.shuffled.groups) {
        EXPECT_LE(group.size(), threshold);
      }
      const auto merged = MergeSplitGroups(std::move(split));
      EXPECT_EQ(merged.keys, original.keys) << "threshold=" << threshold;
      EXPECT_EQ(merged.groups, original.groups) << "threshold=" << threshold;
    }
  }
}

// --------------------------------- skew defense: chooser and calibration

TEST(PlanChooser, PartitionerFollowsSampledSkew) {
  ShuffleConfig config;  // partitioner left kAuto
  internal::MapSample sample;
  sample.valid = true;
  sample.sampled_inputs = 100;
  sample.pairs_per_input = 10.0;  // 1000 sampled pairs
  sample.distinct_keys = 100;     // mean group = 10

  sample.max_group = 100;  // hottest key 10x the mean: skewed
  EXPECT_EQ(internal::ChoosePartitioner(config, sample),
            PartitionerKind::kSampledRange);
  sample.max_group = 20;  // 2x the mean: even enough for hashing
  EXPECT_EQ(internal::ChoosePartitioner(config, sample), PartitionerKind::kHash);

  // An explicit partitioner always wins over the sample.
  config.partitioner = PartitionerKind::kHash;
  sample.max_group = 100;
  EXPECT_EQ(internal::ChoosePartitioner(config, sample), PartitionerKind::kHash);
  config.partitioner = PartitionerKind::kSampledRange;
  sample.max_group = 20;
  EXPECT_EQ(internal::ChoosePartitioner(config, sample),
            PartitionerKind::kSampledRange);

  // No sample to read: fall back to hashing.
  config.partitioner = PartitionerKind::kAuto;
  sample.valid = false;
  EXPECT_EQ(internal::ChoosePartitioner(config, sample), PartitionerKind::kHash);
}

TEST(PlanChooser, SampledRangeExecutionStaysByteIdentical) {
  SyntheticJob job;
  JobOptions serial;
  serial.num_threads = 1;
  serial.shuffle.strategy = ShuffleStrategy::kSerial;
  const auto reference =
      RunMapReduce<int, int, std::uint64_t, std::pair<int, std::uint64_t>>(
          job.inputs, SyntheticJob::MapFn, SyntheticJob::ReduceFn, serial);

  JobOptions options;
  options.num_threads = 4;
  options.num_shards = 8;
  options.shuffle.strategy = ShuffleStrategy::kSharded;
  options.shuffle.partitioner = PartitionerKind::kSampledRange;
  const auto run =
      RunMapReduce<int, int, std::uint64_t, std::pair<int, std::uint64_t>>(
          job.inputs, SyntheticJob::MapFn, SyntheticJob::ReduceFn, options);
  EXPECT_EQ(run.outputs, reference.outputs);
  ExpectSameMetrics(run.metrics, reference.metrics);
  EXPECT_GT(run.metrics.partition_skew_ratio, 0.0);  // placement reported
}

TEST(RuntimeCalibration, LearnsSkewByEwmaAndClampsAtOne) {
  core::RuntimeCalibration calibration;
  EXPECT_EQ(calibration.observations(), 0u);
  EXPECT_DOUBLE_EQ(calibration.skew_factor(), 1.0);  // neutral until fed
  calibration.Observe(/*load_imbalance=*/2.0, /*straggler_impact=*/1.5);
  EXPECT_DOUBLE_EQ(calibration.skew_factor(), 3.0);  // first obs taken whole
  calibration.Observe(1.0, 1.0);  // a perfectly balanced round
  EXPECT_NEAR(calibration.skew_factor(), 0.7 * 3.0 + 0.3 * 1.0, 1e-12);

  // Ratios below 1 clamp to 1: a lucky round cannot promise speedups.
  core::RuntimeCalibration clamped;
  clamped.Observe(0.5, 0.0);
  EXPECT_DOUBLE_EQ(clamped.skew_factor(), 1.0);
}

TEST(RuntimeCalibration, ExecutionFeedbackInflatesEstimate) {
  // A skewed simulated execution observes its realized imbalance into the
  // calibration; a later Estimate holding the same object prices the
  // wall-clock terms higher than the uncalibrated estimate.
  SyntheticJob job;
  Plan plan;
  auto ds = plan.Source(job.inputs)
                .Map<int, std::uint64_t>(SyntheticJob::MapFn)
                .ReduceByKey<std::pair<int, std::uint64_t>>(
                    SyntheticJob::ReduceFn);
  core::RuntimeCalibration calibration;
  ExecutionOptions options;
  options.pipeline.simulation.num_workers = 8;
  options.pipeline.simulation.straggler_fraction = 0.25;
  options.pipeline.simulation.straggler_slowdown = 4.0;
  options.pipeline.simulation.seed = 11;
  options.calibration = &calibration;
  ds.Execute(options);
  ASSERT_GE(calibration.observations(), 1u);
  EXPECT_GT(calibration.skew_factor(), 1.0);

  EstimateOptions estimate_options;
  estimate_options.cost_model.communication_weight = 1.0;
  estimate_options.cost_model.processing_weight = 1.0;
  estimate_options.cost_model.wallclock_weight = 0.1;
  const auto recipe = SyntheticRecipe(job.inputs.size(), 251);
  const double baseline =
      plan.Estimate(recipe, estimate_options).total_cost();
  estimate_options.calibration = &calibration;
  const double calibrated =
      plan.Estimate(recipe, estimate_options).total_cost();
  EXPECT_GT(calibrated, baseline);
}

}  // namespace
}  // namespace mrcost::engine
