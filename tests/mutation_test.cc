// Adversarial and mutation tests: break things on purpose and check that
// the validating machinery notices. A validator that accepts broken
// schemas would silently void every upper-bound claim in the benches, so
// these tests guard the guards.

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/schema_stats.h"
#include "src/core/schema_validator.h"
#include "src/graph/generators.h"
#include "src/graph/problem.h"
#include "src/graph/triangle.h"
#include "src/hamming/bounds.h"
#include "src/hamming/problem.h"
#include "src/hamming/schemas.h"

namespace mrcost {
namespace {

/// Wraps a schema and drops the assignment of one victim input to one of
/// its reducers — the minimal coverage-breaking mutation.
class DropOneAssignment final : public core::MappingSchema {
 public:
  DropOneAssignment(const core::MappingSchema& inner, core::InputId victim)
      : inner_(inner), victim_(victim) {}

  std::string name() const override { return "mutated(" + inner_.name() + ")"; }
  std::uint64_t num_reducers() const override {
    return inner_.num_reducers();
  }
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override {
    auto reducers = inner_.ReducersOfInput(input);
    if (input == victim_ && !reducers.empty()) reducers.pop_back();
    return reducers;
  }

 private:
  const core::MappingSchema& inner_;
  core::InputId victim_;
};

/// Redirects every assignment of one victim input to reducer 0 —
/// a wrong-place (rather than missing) mutation.
class MisrouteOneInput final : public core::MappingSchema {
 public:
  MisrouteOneInput(const core::MappingSchema& inner, core::InputId victim)
      : inner_(inner), victim_(victim) {}

  std::string name() const override {
    return "misrouted(" + inner_.name() + ")";
  }
  std::uint64_t num_reducers() const override {
    return inner_.num_reducers();
  }
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override {
    if (input == victim_) return {0};
    return inner_.ReducersOfInput(input);
  }

 private:
  const core::MappingSchema& inner_;
  core::InputId victim_;
};

class SchemaMutationTest : public ::testing::TestWithParam<core::InputId> {};

TEST_P(SchemaMutationTest, DroppedAssignmentIsCaught) {
  const int b = 8, c = 2;
  const hamming::HammingProblem problem(b, 1);
  auto schema = hamming::SplittingSchema::Make(b, c);
  ASSERT_TRUE(schema.ok());
  // Sanity: the intact schema validates.
  ASSERT_TRUE(
      core::ValidateSchema(problem, *schema, schema->reducer_size()).ok());
  const DropOneAssignment mutated(*schema, GetParam());
  const auto status =
      core::ValidateSchema(problem, mutated, schema->reducer_size());
  EXPECT_FALSE(status.ok()) << "victim=" << GetParam();
  EXPECT_NE(status.message().find("not covered"), std::string::npos);
}

TEST_P(SchemaMutationTest, MisroutedInputIsCaught) {
  const int b = 8, c = 2;
  const hamming::HammingProblem problem(b, 1);
  auto schema = hamming::SplittingSchema::Make(b, c);
  ASSERT_TRUE(schema.ok());
  const MisrouteOneInput mutated(*schema, GetParam());
  // Coverage must break for every victim: each string participates in
  // b distance-1 pairs, and reducer 0 cannot host them all.
  EXPECT_FALSE(
      core::ValidateSchema(problem, mutated, schema->reducer_size()).ok());
}

INSTANTIATE_TEST_SUITE_P(Victims, SchemaMutationTest,
                         ::testing::Values(0u, 1u, 37u, 128u, 200u, 255u));

TEST(SchemaMutation, TriangleSchemaMutationsMostlyCaught) {
  // Dropping one (edge -> reducer) assignment uncovers the triangles whose
  // bucket multiset is the dropped reducer. That set is empty only when
  // the third bucket of the dropped multiset contains no node besides the
  // edge's own endpoints, so a large majority of single drops must be
  // caught — and the validator must never crash on any of them.
  const graph::NodeId n = 10;
  const graph::TriangleProblem problem(n);
  const graph::NodeBucketer bucketer(3, 1);
  const graph::TrianglePartitionSchema schema(n, bucketer);
  ASSERT_TRUE(
      core::ValidateSchema(problem, schema, problem.num_inputs()).ok());
  int caught = 0;
  const int victims = static_cast<int>(problem.num_inputs());
  for (core::InputId victim = 0;
       victim < static_cast<core::InputId>(victims); ++victim) {
    const DropOneAssignment mutated(schema, victim);
    if (!core::ValidateSchema(problem, mutated, problem.num_inputs())
             .ok()) {
      ++caught;
    }
  }
  EXPECT_GE(caught, victims * 8 / 10) << caught << "/" << victims;
}

TEST(SchemaMutation, StatsStillComputableOnMutants) {
  // Stats computation must not assume validity.
  const int b = 6;
  auto schema = hamming::SplittingSchema::Make(b, 2);
  ASSERT_TRUE(schema.ok());
  const DropOneAssignment mutated(*schema, 5);
  const auto intact = core::ComputeSchemaStats(*schema, 1u << b);
  const auto broken = core::ComputeSchemaStats(mutated, 1u << b);
  EXPECT_EQ(broken.total_assignments, intact.total_assignments - 1);
}

// --------------------------------------------------- uneven splitting

class UnevenSplittingTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UnevenSplittingTest, CoversAndReplicatesExactlyC) {
  const auto [b, c] = GetParam();
  auto schema = hamming::UnevenSplittingSchema::Make(b, c);
  ASSERT_TRUE(schema.ok()) << schema.status();
  const hamming::HammingProblem problem(b, 1);
  EXPECT_TRUE(
      core::ValidateSchema(problem, *schema, schema->reducer_size()).ok());
  const auto stats =
      core::ComputeSchemaStats(*schema, problem.num_inputs());
  EXPECT_DOUBLE_EQ(stats.replication_rate, c);
  EXPECT_EQ(stats.max_reducer_load, schema->reducer_size());
  // Within one bit of the hyperbola: r = c <= b/floor(b/c) and the
  // lower bound at the realized q is b/ceil(b/c).
  const double bound = hamming::Hamming1LowerBound(
      b, static_cast<double>(stats.max_reducer_load));
  EXPECT_GE(stats.replication_rate, bound - 1e-9);
  EXPECT_LE(stats.replication_rate / bound,
            static_cast<double>((b + c - 1) / c) / (b / c) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnevenSplittingTest,
                         ::testing::Values(std::tuple{10, 3},
                                           std::tuple{10, 4},
                                           std::tuple{11, 2},
                                           std::tuple{11, 3},
                                           std::tuple{13, 5},
                                           std::tuple{12, 5},
                                           std::tuple{9, 2},
                                           std::tuple{7, 7}));

TEST(UnevenSplitting, SegmentsPartitionTheBits) {
  auto schema = hamming::UnevenSplittingSchema::Make(11, 3);
  ASSERT_TRUE(schema.ok());
  int covered = 0;
  int prev_end = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(schema->SegmentStart(i), prev_end);
    covered += schema->SegmentLength(i);
    prev_end += schema->SegmentLength(i);
  }
  EXPECT_EQ(covered, 11);
  // 11 = 4 + 4 + 3.
  EXPECT_EQ(schema->SegmentLength(0), 4);
  EXPECT_EQ(schema->SegmentLength(2), 3);
  EXPECT_EQ(schema->reducer_size(), 16u);
}

TEST(UnevenSplitting, MatchesEvenSplittingOnDivisors) {
  const int b = 12, c = 4;
  auto uneven = hamming::UnevenSplittingSchema::Make(b, c);
  auto even = hamming::SplittingSchema::Make(b, c);
  ASSERT_TRUE(uneven.ok());
  ASSERT_TRUE(even.ok());
  const auto su = core::ComputeSchemaStats(*uneven, 1u << b);
  const auto se = core::ComputeSchemaStats(*even, 1u << b);
  EXPECT_EQ(su.total_assignments, se.total_assignments);
  EXPECT_EQ(su.max_reducer_load, se.max_reducer_load);
}

// ----------------------------------------------------- zipf generator

TEST(Zipf, RankZeroIsMostFrequent) {
  common::SplitMix64 rng(12);
  common::ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 100);  // far above uniform share
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(Zipf, HigherExponentIsMoreSkewed) {
  common::SplitMix64 rng_a(5), rng_b(5);
  common::ZipfDistribution mild(1000, 0.8);
  common::ZipfDistribution steep(1000, 2.0);
  int mild_head = 0, steep_head = 0;
  for (int i = 0; i < 5000; ++i) {
    mild_head += mild.Sample(rng_a) < 10;
    steep_head += steep.Sample(rng_b) < 10;
  }
  EXPECT_GT(steep_head, mild_head);
}

TEST(Zipf, SingletonDomain) {
  common::SplitMix64 rng(3);
  common::ZipfDistribution zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

// -------------------------------------------- randomized fuzz checks

TEST(Fuzz, RandomSchemasAgainstRandomProblemsNeverCrashValidator) {
  // Random bipartite-dependency problems and random assignments: the
  // validator must terminate with a clean verdict on arbitrary garbage,
  // and a single-reducer schema must always pass coverage.
  common::SplitMix64 rng(2027);
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t num_inputs = 4 + rng.UniformBelow(40);
    const std::uint64_t num_outputs = 1 + rng.UniformBelow(50);
    std::vector<std::vector<core::InputId>> outputs(num_outputs);
    for (auto& deps : outputs) {
      const int arity = 1 + static_cast<int>(rng.UniformBelow(3));
      for (int i = 0; i < arity; ++i) {
        deps.push_back(rng.UniformBelow(num_inputs));
      }
    }
    const core::ExplicitProblem problem("fuzz", num_inputs, outputs);

    // Single reducer: always valid at q = |I|.
    std::vector<std::vector<core::ReducerId>> all(num_inputs, {0});
    const core::ExplicitSchema single("single", 1, all);
    EXPECT_TRUE(core::ValidateSchema(problem, single, num_inputs).ok());

    // Random assignment to 4 reducers: validator returns a clean verdict
    // either way, and whenever it accepts, the acceptance is genuine —
    // recheck one random output's coverage by hand.
    std::vector<std::vector<core::ReducerId>> random_assign(num_inputs);
    for (auto& rs : random_assign) {
      const int copies = 1 + static_cast<int>(rng.UniformBelow(2));
      for (int i = 0; i < copies; ++i) rs.push_back(rng.UniformBelow(4));
    }
    const core::ExplicitSchema random_schema("random", 4, random_assign);
    const auto verdict =
        core::ValidateSchema(problem, random_schema, num_inputs);
    if (verdict.ok() && num_outputs > 0) {
      const auto deps =
          problem.InputsOfOutput(rng.UniformBelow(num_outputs));
      bool covered = false;
      for (core::ReducerId r = 0; r < 4 && !covered; ++r) {
        bool all_here = true;
        for (core::InputId in : deps) {
          const auto& rs = random_assign[in];
          if (std::find(rs.begin(), rs.end(), r) == rs.end()) {
            all_here = false;
            break;
          }
        }
        covered = all_here;
      }
      EXPECT_TRUE(covered) << "validator accepted an uncovered output";
    }
  }
}

TEST(Fuzz, StatsMatchManualRecount) {
  common::SplitMix64 rng(99);
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t num_inputs = 5 + rng.UniformBelow(30);
    const std::uint64_t num_reducers = 1 + rng.UniformBelow(6);
    std::vector<std::vector<core::ReducerId>> assignment(num_inputs);
    std::uint64_t manual_total = 0;
    std::vector<std::uint64_t> manual_load(num_reducers, 0);
    for (auto& rs : assignment) {
      const int copies = static_cast<int>(rng.UniformBelow(3));
      for (int i = 0; i < copies; ++i) {
        const core::ReducerId r = rng.UniformBelow(num_reducers);
        rs.push_back(r);
        ++manual_total;
        ++manual_load[r];
      }
    }
    const core::ExplicitSchema schema("fuzz-stats", num_reducers,
                                      assignment);
    const auto stats = core::ComputeSchemaStats(schema, num_inputs);
    EXPECT_EQ(stats.total_assignments, manual_total);
    EXPECT_EQ(stats.max_reducer_load,
              *std::max_element(manual_load.begin(), manual_load.end()));
  }
}

// ------------------------------------------- clustering coefficient

TEST(Clustering, KnownValues) {
  EXPECT_DOUBLE_EQ(graph::GlobalClusteringCoefficient(graph::CompleteGraph(3)),
                   1.0);
  EXPECT_DOUBLE_EQ(graph::GlobalClusteringCoefficient(graph::CompleteGraph(5)),
                   1.0);
  // Star: wedges but no triangles.
  EXPECT_DOUBLE_EQ(graph::GlobalClusteringCoefficient(
                       graph::Graph(4, {{0, 1}, {0, 2}, {0, 3}})),
                   0.0);
  // Wedge-free graph: defined as 0.
  EXPECT_DOUBLE_EQ(graph::GlobalClusteringCoefficient(
                       graph::Graph(4, {{0, 1}, {2, 3}})),
                   0.0);
}

}  // namespace
}  // namespace mrcost
