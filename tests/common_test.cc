#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bit_util.h"
#include "src/common/combinatorics.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table.h"

namespace mrcost::common {
namespace {

// ----------------------------------------------------------- bit_util

TEST(BitUtil, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(1), 1);
  EXPECT_EQ(PopCount(0xff), 8);
  EXPECT_EQ(PopCount(~std::uint64_t{0}), 64);
}

TEST(BitUtil, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(~std::uint64_t{0}), 63);
}

TEST(BitUtil, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(65));
}

TEST(BitUtil, ExtractDeposit) {
  const std::uint64_t x = 0b1011'0110;
  EXPECT_EQ(ExtractBits(x, 0, 4), 0b0110u);
  EXPECT_EQ(ExtractBits(x, 4, 4), 0b1011u);
  EXPECT_EQ(DepositBits(x, 0, 4, 0b1111), 0b1011'1111u);
  EXPECT_EQ(DepositBits(x, 4, 4, 0), 0b0000'0110u);
}

TEST(BitUtil, RemoveBitField) {
  // Removing the middle 4 bits of 0xABC (12 bits) leaves 0xAC.
  EXPECT_EQ(RemoveBitField(0xABC, 4, 4), 0xACu);
  // Removing low bits shifts everything down.
  EXPECT_EQ(RemoveBitField(0xABC, 0, 4), 0xABu);
  // Removing the high field keeps the low bits.
  EXPECT_EQ(RemoveBitField(0xABC, 8, 4), 0xBCu);
}

TEST(BitUtil, RemoveBitFieldAtWordBoundary) {
  const std::uint64_t x = ~std::uint64_t{0};
  EXPECT_EQ(RemoveBitField(x, 32, 32), 0xFFFFFFFFu);
  EXPECT_EQ(RemoveBitField(x, 0, 64), 0u);
}

// ------------------------------------------------------ combinatorics

TEST(Combinatorics, BinomialSmall) {
  EXPECT_EQ(BinomialExact(0, 0), 1u);
  EXPECT_EQ(BinomialExact(5, 0), 1u);
  EXPECT_EQ(BinomialExact(5, 5), 1u);
  EXPECT_EQ(BinomialExact(5, 2), 10u);
  EXPECT_EQ(BinomialExact(10, 3), 120u);
  EXPECT_EQ(BinomialExact(52, 5), 2598960u);
  EXPECT_EQ(BinomialExact(3, 5), 0u);
  EXPECT_EQ(BinomialExact(5, -1), 0u);
}

TEST(Combinatorics, BinomialPascalIdentity) {
  for (int n = 1; n < 40; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_EQ(BinomialExact(n, k),
                BinomialExact(n - 1, k - 1) + BinomialExact(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Combinatorics, BinomialLargeExact) {
  // C(64, 32) fits in 64 bits.
  EXPECT_EQ(BinomialExact(64, 32), 1832624140942590534ull);
  // C(100, 50) does not: saturation expected.
  EXPECT_EQ(BinomialExact(100, 50),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Combinatorics, BinomialDoubleTracksExact) {
  for (int n = 1; n <= 40; ++n) {
    for (int k = 0; k <= n; ++k) {
      const double exact = static_cast<double>(BinomialExact(n, k));
      EXPECT_NEAR(BinomialDouble(n, k) / exact, 1.0, 1e-9);
    }
  }
}

TEST(Combinatorics, FactorialExact) {
  EXPECT_EQ(FactorialExact(0), 1u);
  EXPECT_EQ(FactorialExact(5), 120u);
  EXPECT_EQ(FactorialExact(20), 2432902008176640000ull);
  EXPECT_EQ(FactorialExact(21), std::numeric_limits<std::uint64_t>::max());
}

TEST(Combinatorics, LogFactorialMatchesExact) {
  for (int n : {1, 2, 10, 20, 100, 300, 1000}) {
    double direct = 0.0;
    for (int i = 2; i <= n; ++i) direct += std::log(static_cast<double>(i));
    EXPECT_NEAR(LogFactorial(n), direct, 1e-6 * std::max(1.0, direct));
  }
}

TEST(Combinatorics, Log2BinomialMatchesExact) {
  for (int n : {8, 20, 40}) {
    for (int k : {0, 1, n / 2, n}) {
      const double exact =
          std::log2(static_cast<double>(BinomialExact(n, k)));
      EXPECT_NEAR(Log2Binomial(n, k), exact, 1e-9) << n << " " << k;
    }
  }
  EXPECT_TRUE(std::isinf(Log2Binomial(5, 9)));
}

TEST(Combinatorics, CentralBinomialStirlingShape) {
  // The Section 3.4 estimate: C(n, n/2) ~ 2^n / sqrt(pi n / 2).
  for (int n : {16, 32, 64}) {
    const double stirling =
        std::ldexp(1.0, n) / std::sqrt(M_PI * n / 2.0);
    EXPECT_NEAR(CentralBinomial(n) / stirling, 1.0, 0.05) << n;
  }
}

TEST(Combinatorics, SubsetsEnumeration) {
  const auto subsets = AllSubsetsOfSize(5, 3);
  EXPECT_EQ(subsets.size(), 10u);
  // Lexicographic order.
  EXPECT_EQ(subsets.front(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(subsets.back(), (std::vector<int>{2, 3, 4}));
  const std::set<std::vector<int>> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), subsets.size());
}

class CombinationRankRoundTrip
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CombinationRankRoundTrip, RankUnrankIdentity) {
  const auto [n, k] = GetParam();
  const std::uint64_t count = BinomialExact(n, k);
  for (std::uint64_t r = 0; r < count; ++r) {
    const std::vector<int> subset = CombinationUnrank(n, k, r);
    EXPECT_EQ(CombinationRank(n, subset), r);
    EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CombinationRankRoundTrip,
                         ::testing::Values(std::pair{1, 1}, std::pair{5, 2},
                                           std::pair{6, 3}, std::pair{8, 4},
                                           std::pair{10, 1},
                                           std::pair{10, 9},
                                           std::pair{12, 6}));

TEST(Combinatorics, CombinationRankIsLexicographic) {
  // Successive unranks are lexicographically increasing.
  const int n = 7, k = 3;
  std::vector<int> prev = CombinationUnrank(n, k, 0);
  for (std::uint64_t r = 1; r < BinomialExact(n, k); ++r) {
    const std::vector<int> cur = CombinationUnrank(n, k, r);
    EXPECT_LT(prev, cur);
    prev = cur;
  }
}

class MultisetRankRoundTrip
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MultisetRankRoundTrip, RankUnrankIdentity) {
  const auto [n, s] = GetParam();
  const std::uint64_t count = MultisetCount(n, s);
  for (std::uint64_t r = 0; r < count; ++r) {
    const std::vector<int> multiset = MultisetUnrank(n, s, r);
    EXPECT_EQ(MultisetRank(n, multiset), r);
    EXPECT_TRUE(std::is_sorted(multiset.begin(), multiset.end()));
    for (int v : multiset) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultisetRankRoundTrip,
                         ::testing::Values(std::pair{2, 3}, std::pair{4, 3},
                                           std::pair{5, 2}, std::pair{6, 3},
                                           std::pair{3, 5}));

TEST(Combinatorics, MultisetCountMatchesFormula) {
  EXPECT_EQ(MultisetCount(4, 3), BinomialExact(6, 3));
  EXPECT_EQ(MultisetCount(1, 5), 1u);
  EXPECT_EQ(MultisetCount(10, 1), 10u);
}

// ------------------------------------------------------------- random

TEST(Random, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(Random, UniformBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformBelow(17), 17u);
  }
}

TEST(Random, UniformBelowCoversAllResidues) {
  SplitMix64 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Random, UniformDoubleInUnitInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Random, SampleWithoutReplacementDistinct) {
  SplitMix64 rng(5);
  for (std::uint64_t n : {10ull, 100ull, 1000ull}) {
    for (std::uint64_t k : {std::uint64_t{1}, n / 3, n}) {
      auto sample = SampleWithoutReplacement(n, k, rng);
      EXPECT_EQ(sample.size(), k);
      std::set<std::uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (std::uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(Random, ShufflePreservesMultiset) {
  SplitMix64 rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  Shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// -------------------------------------------------------------- stats

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(s.skew(), 9.0 / 5.0, 1e-12);
}

TEST(Stats, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.skew(), 0.0);
}

TEST(Stats, HistogramBuckets) {
  Log2Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(1024);
  EXPECT_EQ(h.total(), 5);
  const std::string render = h.ToString();
  EXPECT_NE(render.find("[0]"), std::string::npos);
  EXPECT_NE(render.find("[2^10, 2^11)"), std::string::npos);
}

TEST(Stats, RunningStatsMergeMatchesSerial) {
  // Merging two partials must equal accumulating the concatenation —
  // count, sum, extremes, and the Welford m2 (through stddev).
  const std::vector<double> left{2.0, 4.0, 4.0, 4.0};
  const std::vector<double> right{5.0, 5.0, 7.0, 9.0};
  RunningStats a, b, serial;
  for (double x : left) {
    a.Add(x);
    serial.Add(x);
  }
  for (double x : right) {
    b.Add(x);
    serial.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), serial.count());
  EXPECT_DOUBLE_EQ(a.sum(), serial.sum());
  EXPECT_DOUBLE_EQ(a.mean(), serial.mean());
  EXPECT_DOUBLE_EQ(a.min(), serial.min());
  EXPECT_DOUBLE_EQ(a.max(), serial.max());
  EXPECT_NEAR(a.stddev(), serial.stddev(), 1e-12);
  EXPECT_NEAR(a.skew(), serial.skew(), 1e-12);
}

TEST(Stats, RunningStatsMergeEmptySides) {
  RunningStats filled;
  for (double x : {1.0, 3.0, 8.0}) filled.Add(x);
  const double mean = filled.mean();
  const double stddev = filled.stddev();

  RunningStats empty;
  filled.Merge(empty);  // merging in empty is a no-op
  EXPECT_EQ(filled.count(), 3);
  EXPECT_DOUBLE_EQ(filled.mean(), mean);
  EXPECT_DOUBLE_EQ(filled.stddev(), stddev);

  RunningStats target;  // merging into empty copies the other side
  target.Merge(filled);
  EXPECT_EQ(target.count(), 3);
  EXPECT_DOUBLE_EQ(target.mean(), mean);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 8.0);
  EXPECT_NEAR(target.stddev(), stddev, 1e-12);
}

TEST(Stats, HistogramMerge) {
  Log2Histogram a, b, serial;
  for (std::uint64_t x : {0ull, 1ull, 2ull, 1024ull}) {
    a.Add(x);
    serial.Add(x);
  }
  for (std::uint64_t x : {0ull, 3ull, 1ull << 20}) {
    b.Add(x);
    serial.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), serial.total());
  EXPECT_EQ(a.zeros(), serial.zeros());
  EXPECT_EQ(a.num_buckets(), serial.num_buckets());
  for (std::size_t i = 0; i < serial.num_buckets(); ++i) {
    EXPECT_EQ(a.bucket(i), serial.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.ToString(), serial.ToString());

  Log2Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.ToString(), serial.ToString());
}

// -------------------------------------------------------------- table

TEST(Table, AlignmentAndContent) {
  Table t({"name", "value"});
  t.AddRow().Add("alpha").Add(std::int64_t{42});
  t.AddRow().Add("b").Add(3.5);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| alpha | 42"), std::string::npos);
  EXPECT_NE(s.find("3.5000"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, Csv) {
  Table t({"a", "b"});
  t.AddRow().Add(1).Add(2);
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.5), "0.5000");
  EXPECT_EQ(FormatDouble(1.0e9), "1000000000");  // exact integers print bare
  EXPECT_EQ(FormatDouble(1.23e9 + 0.5), "1.230e+09");  // non-integral, large
  EXPECT_EQ(FormatDouble(3.2e-6), "3.200e-06");
  EXPECT_EQ(FormatDouble(12345678.0), "12345678");
}

// -------------------------------------------------------------- status

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::InvalidArgument("bad q");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad q");
}

TEST(Status, ResultHoldsValueOrError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mrcost::common
