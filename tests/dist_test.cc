// The multi-process distributed runtime (src/dist/): RPC framing and its
// corruption Status paths, the shuffle data-plane messages and raw wire
// frames, the coordinator's task-attempt state machine, TempDir, the
// recipe registry, and — the load-bearing contract — e2e byte-identity of
// every family driver between the in-process and multi-process backends,
// across worker counts, shuffle transports (spill files and wire
// streaming), in-process shuffle strategies, and a SIGKILL'd worker both
// mid-map and mid-fetch.

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/temp_dir.h"
#include "src/dist/coordinator.h"
#include "src/dist/protocol.h"
#include "src/dist/recipes.h"
#include "src/dist/registry.h"
#include "src/dist/rpc.h"
#include "src/engine/plan.h"
#include "src/graph/generators.h"
#include "src/graph/sample_graph_mr.h"
#include "src/hamming/bitstring.h"
#include "src/hamming/similarity_join.h"
#include "src/join/generators.h"
#include "src/join/hypercube.h"
#include "src/join/query.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"
#include "src/obs/export.h"
#include "src/storage/block.h"
#include "src/storage/serde.h"
#include "src/storage/spill_file.h"
#include "src/storage/wire_run.h"

namespace mrcost {
namespace {

using common::Status;
using common::StatusCode;

// ------------------------------------------------------------ RPC framing

struct Pipe {
  int fds[2];
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    Close(0);
    Close(1);
  }
  void Close(int i) {
    if (fds[i] >= 0) {
      ::close(fds[i]);
      fds[i] = -1;
    }
  }
};

TEST(RpcFrame, RoundTripsPayloads) {
  Pipe pipe;
  const std::string payloads[] = {"", "x", std::string(100000, 'q')};
  // The 100 KB frame exceeds the default pipe buffer, so the writes must
  // run concurrently with the reads (as they do between processes).
  std::thread writer([&] {
    for (const std::string& sent : payloads) {
      EXPECT_TRUE(dist::WriteFrame(pipe.fds[1], sent).ok());
    }
  });
  for (const std::string& sent : payloads) {
    std::string got;
    ASSERT_TRUE(dist::ReadFrame(pipe.fds[0], got).ok());
    EXPECT_EQ(got, sent);
  }
  writer.join();
}

TEST(RpcFrame, CleanEofIsNotFound) {
  Pipe pipe;
  pipe.Close(1);
  std::string got;
  const Status status = dist::ReadFrame(pipe.fds[0], got);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(dist::IsEof(status));
}

TEST(RpcFrame, TruncatedFrameIsOutOfRange) {
  // Full header promising 32 bytes, then only 5 bytes and EOF.
  Pipe pipe;
  const std::uint32_t len = 32;
  const std::uint32_t crc = 0;
  ASSERT_EQ(::write(pipe.fds[1], &len, 4), 4);
  ASSERT_EQ(::write(pipe.fds[1], &crc, 4), 4);
  ASSERT_EQ(::write(pipe.fds[1], "hello", 5), 5);
  pipe.Close(1);
  std::string got;
  const Status status = dist::ReadFrame(pipe.fds[0], got);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(dist::IsEof(status));
}

TEST(RpcFrame, TruncatedHeaderIsOutOfRange) {
  Pipe pipe;
  ASSERT_EQ(::write(pipe.fds[1], "abc", 3), 3);
  pipe.Close(1);
  std::string got;
  EXPECT_EQ(dist::ReadFrame(pipe.fds[0], got).code(),
            StatusCode::kOutOfRange);
}

TEST(RpcFrame, CorruptPayloadIsInternal) {
  Pipe pipe;
  ASSERT_TRUE(dist::WriteFrame(pipe.fds[1], "important bytes").ok());
  // Flip one payload byte in flight: read the raw frame, corrupt, resend.
  char buffer[64];
  const ssize_t raw = ::read(pipe.fds[0], buffer, sizeof(buffer));
  ASSERT_GT(raw, 8);
  buffer[9] ^= 0x40;
  ASSERT_EQ(::write(pipe.fds[1], buffer, raw), raw);
  std::string got;
  EXPECT_EQ(dist::ReadFrame(pipe.fds[0], got).code(), StatusCode::kInternal);
}

TEST(RpcFrame, OversizeLengthIsInvalidArgument) {
  Pipe pipe;
  const std::uint32_t len = dist::kMaxFrameBytes + 1;
  const std::uint32_t crc = 0;
  ASSERT_EQ(::write(pipe.fds[1], &len, 4), 4);
  ASSERT_EQ(::write(pipe.fds[1], &crc, 4), 4);
  std::string got;
  EXPECT_EQ(dist::ReadFrame(pipe.fds[0], got).code(),
            StatusCode::kInvalidArgument);
}

TEST(RpcFrame, UncheckedFrameIsAccepted) {
  // Data-plane frames skip the checksum (kUncheckedCrc); ReadFrame must
  // pass them through without a CRC complaint.
  Pipe pipe;
  ASSERT_TRUE(
      dist::WriteFrame(pipe.fds[1], "bulk bytes", /*checksum=*/false).ok());
  std::string got;
  ASSERT_TRUE(dist::ReadFrame(pipe.fds[0], got).ok());
  EXPECT_EQ(got, "bulk bytes");
}

TEST(RpcFrame, PartsFrameArrivesConcatenated) {
  // WriteFrameParts writevs head and body from separate buffers; the
  // receiver must see one contiguous payload, and the checksum must cover
  // the concatenation (Crc32Resume), not just the first part.
  Pipe pipe;
  ASSERT_TRUE(
      dist::WriteFrameParts(pipe.fds[1], "head|", "body bytes").ok());
  std::string got;
  ASSERT_TRUE(dist::ReadFrame(pipe.fds[0], got).ok());
  EXPECT_EQ(got, "head|body bytes");
}

TEST(RpcFrame, ShortWritesReassembleAcrossSocketpair) {
  // A frame far larger than a deliberately tiny socket buffer forces
  // writev to return short over and over; WriteAllV must resume mid-iovec
  // (and mid-part) until every byte lands, and the reader must stitch the
  // short reads back into one exact payload.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const int tiny = 4 * 1024;
  ::setsockopt(sv[1], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
  ::setsockopt(sv[0], SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  const std::string head = "hdr:";
  std::string body(1 << 20, '\0');
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<char>('a' + i % 26);
  }
  std::thread writer([&] {
    EXPECT_TRUE(
        dist::WriteFrameParts(sv[1], head, body, /*checksum=*/false).ok());
  });
  std::string got;
  ASSERT_TRUE(dist::ReadFrame(sv[0], got).ok());
  writer.join();
  ASSERT_EQ(got.size(), head.size() + body.size());
  EXPECT_EQ(got.compare(0, head.size(), head), 0);
  EXPECT_EQ(got.compare(head.size(), std::string::npos, body), 0);
  ::close(sv[0]);
  ::close(sv[1]);
}

// --------------------------------------------------------------- protocol

TEST(Protocol, HelloRoundTrips) {
  dist::HelloMsg hello;
  hello.worker_index = 3;
  hello.recipe = "hamming_splitting";
  hello.args = "b=10,k=5,d=1";
  hello.spill_dir = "/tmp/x";
  hello.trace_enabled = 1;
  hello.heartbeat_interval_ms = 12.5;
  hello.self_kill_after_tasks = 2;
  hello.coord_now_us = 987654321;
  hello.shuffle_transport = 1;
  hello.retain_budget_bytes = 1 << 20;
  hello.self_kill_after_fetches = 3;
  const std::string payload = dist::EncodeHello(hello);
  ASSERT_EQ(*dist::PeekType(payload), dist::MsgType::kHello);
  dist::HelloMsg decoded;
  ASSERT_TRUE(dist::DecodeHello(payload, decoded).ok());
  EXPECT_EQ(decoded.worker_index, hello.worker_index);
  EXPECT_EQ(decoded.recipe, hello.recipe);
  EXPECT_EQ(decoded.args, hello.args);
  EXPECT_EQ(decoded.spill_dir, hello.spill_dir);
  EXPECT_EQ(decoded.trace_enabled, 1);
  EXPECT_EQ(decoded.heartbeat_interval_ms, 12.5);
  EXPECT_EQ(decoded.self_kill_after_tasks, 2u);
  EXPECT_EQ(decoded.coord_now_us, 987654321u);
  EXPECT_EQ(decoded.shuffle_transport, 1);
  EXPECT_EQ(decoded.retain_budget_bytes, 1u << 20);
  EXPECT_EQ(decoded.self_kill_after_fetches, 3u);
}

TEST(Protocol, TaskMessagesRoundTrip) {
  dist::MapTaskMsg map;
  map.task_id = 42;
  map.node = 1;
  map.chunk = 7;
  map.num_shards = 4;
  map.chunk_path = "/x/c7.chunk";
  map.run_prefix = "/x/r1-c7-a1";
  dist::MapTaskMsg map2;
  ASSERT_TRUE(dist::DecodeMapTask(dist::EncodeMapTask(map), map2).ok());
  EXPECT_EQ(map2.task_id, 42u);
  EXPECT_EQ(map2.run_prefix, map.run_prefix);

  dist::ReduceTaskMsg reduce;
  reduce.task_id = 43;
  reduce.shard = 2;
  reduce.run_paths = {"/x/a.run", "/x/b.run"};
  reduce.run_endpoints = {"/x/w0.sock", ""};
  reduce.fetch_credits = 8;
  reduce.result_path = "/x/s2.res";
  dist::ReduceTaskMsg reduce2;
  ASSERT_TRUE(
      dist::DecodeReduceTask(dist::EncodeReduceTask(reduce), reduce2).ok());
  EXPECT_EQ(reduce2.run_paths, reduce.run_paths);
  EXPECT_EQ(reduce2.run_endpoints, reduce.run_endpoints);
  EXPECT_EQ(reduce2.fetch_credits, 8u);

  dist::TaskDoneMsg done;
  done.task_id = 43;
  done.ok = 1;
  done.retryable = 1;
  done.payload = std::string("\x01\x02\x00\x03", 4);
  dist::TaskDoneMsg done2;
  ASSERT_TRUE(dist::DecodeTaskDone(dist::EncodeTaskDone(done), done2).ok());
  EXPECT_EQ(done2.payload, done.payload);
  EXPECT_EQ(done2.retryable, 1);

  const std::string truncated =
      dist::EncodeTaskDone(done).substr(0, 6);
  EXPECT_FALSE(dist::DecodeTaskDone(truncated, done2).ok());
}

TEST(Protocol, ShuffleMessagesRoundTrip) {
  dist::FetchRunMsg fetch;
  fetch.run_id = "r1-c7-a1-s3.wire";
  fetch.credits = 6;
  dist::FetchRunMsg fetch2;
  ASSERT_TRUE(dist::DecodeFetchRun(dist::EncodeFetchRun(fetch), fetch2).ok());
  EXPECT_EQ(fetch2.run_id, fetch.run_id);
  EXPECT_EQ(fetch2.credits, 6u);

  dist::RunCreditMsg credit;
  credit.credits = 2;
  dist::RunCreditMsg credit2;
  ASSERT_TRUE(
      dist::DecodeRunCredit(dist::EncodeRunCredit(credit), credit2).ok());
  EXPECT_EQ(credit2.credits, 2u);

  dist::RunEndMsg end;
  end.blocks = 5;
  end.rows = 1234;
  end.credit_wait_ms = 1.5;
  dist::RunEndMsg end2;
  ASSERT_TRUE(dist::DecodeRunEnd(dist::EncodeRunEnd(end), end2).ok());
  EXPECT_EQ(end2.blocks, 5u);
  EXPECT_EQ(end2.rows, 1234u);
  EXPECT_EQ(end2.credit_wait_ms, 1.5);

  dist::RunErrorMsg error;
  error.message = "unknown run r9";
  dist::RunErrorMsg error2;
  ASSERT_TRUE(
      dist::DecodeRunError(dist::EncodeRunError(error), error2).ok());
  EXPECT_EQ(error2.message, error.message);
}

TEST(Protocol, RunBlockStreamsVerbatim) {
  // The scatter-write fast path must deliver exactly what EncodeRunBlock
  // would have: one frame whose payload is the type word + raw block
  // bytes, viewable in place.
  Pipe pipe;
  const std::string frame("\xFF\x01raw\x00block", 10);
  ASSERT_TRUE(dist::WriteRunBlock(pipe.fds[1], frame).ok());
  std::string payload;
  ASSERT_TRUE(dist::ReadFrame(pipe.fds[0], payload).ok());
  ASSERT_EQ(*dist::PeekType(payload), dist::MsgType::kRunBlock);
  EXPECT_EQ(payload, dist::EncodeRunBlock(frame));
  const auto view = dist::RunBlockView(payload);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(*view, frame);
}

// ----------------------------------------------------- task state machine

TEST(TaskStateMachine, FirstCommitWinsAcrossReissue) {
  dist::TaskStateMachine machine;
  machine.Add(1);
  machine.Add(2);
  EXPECT_EQ(machine.state(1), dist::TaskStateMachine::State::kPending);

  machine.Assign(1, /*worker=*/0);
  machine.Assign(2, /*worker=*/0);
  EXPECT_EQ(machine.worker_of(1), 0);
  EXPECT_EQ(machine.attempts(1), 1);

  // Worker 0 misses heartbeats and is declared dead: both running tasks
  // come back pending, to be re-issued.
  const auto reassigned = machine.ReassignWorker(0);
  EXPECT_EQ(reassigned.size(), 2u);
  EXPECT_EQ(machine.state(1), dist::TaskStateMachine::State::kPending);
  EXPECT_EQ(machine.worker_of(1), -1);

  machine.Assign(1, /*worker=*/1);
  EXPECT_EQ(machine.attempts(1), 2);
  EXPECT_TRUE(machine.Commit(1));
  // The zombie attempt's late commit loses.
  EXPECT_FALSE(machine.Commit(1));
  EXPECT_EQ(machine.state(1), dist::TaskStateMachine::State::kDone);
  EXPECT_FALSE(machine.AllDone());

  machine.Assign(2, 1);
  EXPECT_TRUE(machine.Commit(2));
  EXPECT_TRUE(machine.AllDone());

  // Reassigning a worker with nothing running is a no-op.
  EXPECT_TRUE(machine.ReassignWorker(1).empty());
}

// ---------------------------------------------------------------- TempDir

TEST(TempDir, CreatesUniqueDirsAndRemoves) {
  auto a = common::TempDir::Create();
  auto b = common::TempDir::Create();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->path(), b->path());
  EXPECT_TRUE(std::filesystem::is_directory(a->path()));

  const std::string path = a->path();
  std::filesystem::create_directories(path + "/nested/deep");
  std::ofstream(path + "/nested/file.bin") << "x";
  ASSERT_TRUE(a->Remove().ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(a->Remove().ok());  // idempotent
}

TEST(TempDir, DestructorCleansUnlessKept) {
  std::string removed_path;
  std::string kept_path;
  {
    auto dir = common::TempDir::Create();
    ASSERT_TRUE(dir.ok());
    removed_path = dir->path();
    auto kept = common::TempDir::Create();
    ASSERT_TRUE(kept.ok());
    kept->Keep();
    kept_path = kept->path();
    common::TempDir moved = std::move(*kept);
    EXPECT_TRUE(moved.kept());
  }
  EXPECT_FALSE(std::filesystem::exists(removed_path));
  EXPECT_TRUE(std::filesystem::exists(kept_path));
  std::filesystem::remove_all(kept_path);
}

TEST(TempDir, CreatesUnderRequestedBase) {
  auto base = common::TempDir::Create();
  ASSERT_TRUE(base.ok());
  auto nested = common::TempDir::Create(base->path(), "job-");
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->path().find(base->path()), 0u);
  EXPECT_NE(nested->path().find("job-"), std::string::npos);
}

// ----------------------------------------------------------- capture flags

TEST(CaptureFlags, ParsesSpillFlags) {
  const char* argv[] = {"prog", "--spill_dir=/tmp/spills", "--keep_spills",
                        "--trace_out=/tmp/t.json", "positional"};
  const obs::CaptureFlags flags =
      obs::ParseCaptureFlags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.spill_dir, "/tmp/spills");
  EXPECT_TRUE(flags.keep_spills);
  EXPECT_EQ(flags.trace_out, "/tmp/t.json");

  const char* none[] = {"prog"};
  const obs::CaptureFlags defaults =
      obs::ParseCaptureFlags(1, const_cast<char**>(none));
  EXPECT_TRUE(defaults.spill_dir.empty());
  EXPECT_FALSE(defaults.keep_spills);
}

// ----------------------------------------------------------- the registry

TEST(PlanRegistry, BuildsBuiltinsAndRejectsUnknown) {
  auto& registry = dist::PlanRegistry::Global();
  const auto names = registry.Names();
  for (const char* expected :
       {"hamming_splitting", "hamming_ball", "join_triangle",
        "matmul_one_phase", "matmul_two_phase", "graph_sample", "quickstart",
        "shuffle_sweep"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }

  auto plan = registry.Build("shuffle_sweep", "pairs=100,keys=7");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graph()->dist_recipe, "shuffle_sweep");
  EXPECT_EQ(plan->graph()->dist_args, "pairs=100,keys=7");

  EXPECT_EQ(registry.Build("no_such_recipe", "").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(registry.Build("shuffle_sweep", "pairs").ok());
}

// ------------------------------------------------- wire shuffle storage

TEST(WireRun, RawFramesRoundTrip) {
  storage::ColumnarRun run;
  for (int i = 0; i < 1000; ++i) {
    const std::string key =
        "k" + std::string(i % 7, 'x') + std::to_string(i);
    const std::string value =
        i % 11 ? std::string(i % 50, static_cast<char>('a' + i % 26))
               : std::string();
    run.hashes.push_back(storage::HashBytes(key));
    run.positions.push_back(static_cast<std::uint64_t>(i));
    run.keys.Append(key);
    run.values.Append(value);
  }

  std::vector<std::string> frames;
  storage::BlockEncodeStats stats;
  storage::EncodeRawRunFrames(run, /*block_bytes=*/512, frames, stats);
  ASSERT_GT(frames.size(), 1u);  // tiny blocks force multiple frames
  EXPECT_EQ(stats.blocks, frames.size());

  storage::ColumnarRun got;
  storage::ColumnarRun block;
  for (const std::string& frame : frames) {
    ASSERT_TRUE(storage::DecodeAnyBlock(frame, block).ok());
    for (std::size_t i = 0; i < block.rows(); ++i) {
      got.hashes.push_back(block.hashes[i]);
      got.positions.push_back(block.positions[i]);
      got.keys.Append(block.keys.At(i));
      got.values.Append(block.values.At(i));
    }
  }
  ASSERT_EQ(got.rows(), run.rows());
  EXPECT_EQ(got.hashes, run.hashes);
  EXPECT_EQ(got.positions, run.positions);
  for (std::size_t i = 0; i < run.rows(); ++i) {
    EXPECT_EQ(got.keys.At(i), run.keys.At(i)) << i;
    EXPECT_EQ(got.values.At(i), run.values.At(i)) << i;
  }

  // A truncated raw frame fails loudly instead of mis-decoding.
  std::string bad = frames[0];
  bad.pop_back();
  EXPECT_FALSE(storage::DecodeAnyBlock(bad, block).ok());

  // DecodeAnyBlock also dispatches codec frames (the overflow-file path).
  std::vector<std::string> codec_frames;
  storage::BlockEncodeStats codec_stats;
  storage::EncodeRunFrames(run, nullptr, /*block_bytes=*/512, codec_frames,
                           codec_stats);
  ASSERT_FALSE(codec_frames.empty());
  ASSERT_TRUE(storage::DecodeAnyBlock(codec_frames[0], block).ok());
  EXPECT_EQ(block.keys.At(0), run.keys.At(0));
}

TEST(WireRun, RegistryOverflowsPastBudget) {
  auto dir = common::TempDir::Create();
  ASSERT_TRUE(dir.ok());
  storage::RunRegistry registry(dir->path() + "/ovf",
                                /*retain_budget_bytes=*/64);

  ASSERT_TRUE(registry.Put("a", {std::string(40, 'x')}, 1).ok());
  EXPECT_EQ(registry.retained_bytes(), 40u);
  auto a = registry.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->overflow_path.empty());
  ASSERT_EQ(a->frames.size(), 1u);

  // The second run would exceed the 64-byte budget: it must land on disk
  // as a spill-v2 file holding the same frame payloads, not in memory.
  ASSERT_TRUE(
      registry.Put("b", {std::string(40, 'y'), std::string(8, 'z')}, 2)
          .ok());
  auto b = registry.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->overflow_path.empty());
  EXPECT_TRUE(b->frames.empty());
  EXPECT_EQ(registry.overflow_bytes(), 48u);
  auto file = storage::SpillFileReader::Open(b->overflow_path);
  ASSERT_TRUE(file.ok());
  std::string payload;
  bool done = false;
  ASSERT_TRUE(file->Next(payload, done).ok());
  ASSERT_FALSE(done);
  EXPECT_EQ(payload, std::string(40, 'y'));
  ASSERT_TRUE(file->Next(payload, done).ok());
  EXPECT_EQ(payload, std::string(8, 'z'));

  EXPECT_EQ(registry.Find("missing"), nullptr);
  EXPECT_FALSE(registry.Put("a", {}, 0).ok());  // duplicate id
}

// ------------------------------------------------- e2e backend identity

/// Byte-identity taken literally: outputs serialized through the same
/// serde the shuffle uses, compared as strings.
template <typename T>
std::string SerializedBytes(const std::vector<T>& values) {
  std::string bytes;
  for (const T& value : values) {
    T copy = value;
    storage::SerializeValue(copy, bytes);
  }
  return bytes;
}

engine::ExecutionOptions MultiProcessOptions(int workers) {
  engine::ExecutionOptions options;
  options.backend = engine::ExecutionBackend::kMultiProcess;
  options.dist.num_workers = workers;
  return options;
}

/// Runs `build()`'s dataset under the in-process backend (with the given
/// shuffle strategy) and under the multi-process backend for each worker
/// count and each shuffle transport, asserting byte-identical outputs.
/// `build` must return a freshly built, recipe-stamped dataset each call.
template <typename BuildFn>
void ExpectBackendsAgree(BuildFn build, const std::string& recipe,
                         const std::string& args) {
  const auto stamped = [&] {
    auto dataset = build();
    dataset.plan().graph()->dist_recipe = recipe;
    dataset.plan().graph()->dist_args = args;
    return dataset;
  };

  const std::string reference =
      SerializedBytes(stamped().Execute({}).outputs);
  ASSERT_FALSE(reference.empty());

  for (const int workers : {1, 2, 4}) {
    for (const engine::ShuffleTransport transport :
         {engine::ShuffleTransport::kSpillFiles,
          engine::ShuffleTransport::kWireStream}) {
      engine::ExecutionOptions options = MultiProcessOptions(workers);
      options.dist.shuffle_transport = transport;
      const auto result = stamped().Execute(options);
      EXPECT_EQ(SerializedBytes(result.outputs), reference)
          << recipe << " diverged at " << workers << " workers over "
          << (transport == engine::ShuffleTransport::kWireStream ? "wire"
                                                                 : "spill");
      ASSERT_FALSE(result.metrics.rounds.empty());
    }
  }
}

TEST(DistBackend, HammingSplittingByteIdentical) {
  ExpectBackendsAgree(
      [] {
        auto built = hamming::BuildSplittingSimilarityJoinPlan(
            hamming::AllStrings(10), 10, 5, 1);
        MRCOST_CHECK_OK(built.status());
        return built->pairs;
      },
      "hamming_splitting", "b=10,k=5,d=1");
}

TEST(DistBackend, HammingBallByteIdentical) {
  ExpectBackendsAgree(
      [] {
        auto built = hamming::BuildBallSimilarityJoinPlan(
            hamming::AllStrings(8), 8, 1);
        MRCOST_CHECK_OK(built.status());
        return built->pairs;
      },
      "hamming_ball", "b=8,d=1");
}

TEST(DistBackend, JoinTriangleByteIdentical) {
  // The relations must outlive every Execute; static matches the recipe
  // cache's process lifetime.
  static const join::Query query = join::CycleQuery(3);
  static const std::vector<join::Relation> relations =
      join::ZipfRelationsForQuery(query, 500, 32, 0.3, 7);
  ExpectBackendsAgree(
      [] {
        std::vector<const join::Relation*> ptrs;
        for (const auto& r : relations) ptrs.push_back(&r);
        auto built = join::BuildHyperCubeJoinPlan(
            query, ptrs, std::vector<int>(query.num_attributes(), 2), 7);
        MRCOST_CHECK_OK(built.status());
        return built->tuples;
      },
      "join_triangle", "tuples=500,domain=32,exponent=0.3,share=2,seed=7");
}

TEST(DistBackend, MatmulOnePhaseByteIdentical) {
  static const auto matrices = [] {
    matmul::Matrix r(32, 32), s(32, 32);
    common::SplitMix64 rng(11);
    r.FillRandom(rng);
    s.FillRandom(rng);
    return std::make_pair(std::move(r), std::move(s));
  }();
  ExpectBackendsAgree(
      [] {
        auto built = matmul::BuildMultiplyOnePhasePlan(matrices.first,
                                                       matrices.second, 8);
        MRCOST_CHECK_OK(built.status());
        return built->cells;
      },
      "matmul_one_phase", "n=32,tile=8,seed=11");
}

TEST(DistBackend, MatmulTwoPhaseMultiRoundByteIdentical) {
  // Two rounds: the second round's input is the first round's output slot
  // — exercises the coordinator's round barrier and chunk re-slicing.
  static const auto matrices = [] {
    matmul::Matrix r(16, 16), s(16, 16);
    common::SplitMix64 rng(11);
    r.FillRandom(rng);
    s.FillRandom(rng);
    return std::make_pair(std::move(r), std::move(s));
  }();
  ExpectBackendsAgree(
      [] {
        auto built = matmul::BuildMultiplyTwoPhasePlan(matrices.first,
                                                       matrices.second, 4, 4);
        MRCOST_CHECK_OK(built.status());
        return built->sums;
      },
      "matmul_two_phase", "n=16,s_rows=4,t_js=4,seed=11");
}

TEST(DistBackend, GraphSampleByteIdentical) {
  static const graph::Graph data = graph::RandomGnm(60, 200, 5);
  static const graph::Graph pattern = graph::CycleGraph(3);
  ExpectBackendsAgree(
      [] {
        return graph::BuildSampleGraphPlan(data, pattern, 4, 6).counts;
      },
      "graph_sample", "nodes=60,edges=200,k=4,seed=5");
}

TEST(DistBackend, AgreesWithEveryInProcessStrategy) {
  // The multi-process output must match the in-process output under every
  // explicit shuffle strategy, not just the chooser's pick.
  auto& registry = dist::PlanRegistry::Global();
  const std::string args = "pairs=5000,keys=97,seed=3";
  const auto outputs = [&](const engine::ExecutionOptions& options) {
    auto plan = registry.Build("shuffle_sweep", args);
    MRCOST_CHECK_OK(plan.status());
    engine::PipelineMetrics metrics = plan->Execute(options);
    (void)metrics;
    // The sweep's target is its last node; read it back typed.
    auto slot = std::static_pointer_cast<
        std::vector<std::pair<std::uint64_t, std::uint64_t>>>(
        plan->graph()->slots.back());
    return SerializedBytes(*slot);
  };

  const std::string multi = outputs(MultiProcessOptions(2));
  for (const engine::ShuffleStrategy strategy :
       {engine::ShuffleStrategy::kSerial, engine::ShuffleStrategy::kSharded,
        engine::ShuffleStrategy::kExternal}) {
    engine::ExecutionOptions options;
    options.pipeline.round_defaults.shuffle.strategy = strategy;
    EXPECT_EQ(outputs(options), multi)
        << "strategy " << static_cast<int>(strategy);
  }
}

TEST(DistBackend, SurvivesWorkerKillMidMapByteIdentical) {
  auto& registry = dist::PlanRegistry::Global();
  const std::string args = "pairs=20000,keys=256,seed=9";

  auto reference_plan = registry.Build("shuffle_sweep", args);
  MRCOST_CHECK_OK(reference_plan.status());
  reference_plan->Execute({});
  const auto reference = SerializedBytes(
      *std::static_pointer_cast<
          std::vector<std::pair<std::uint64_t, std::uint64_t>>>(
          reference_plan->graph()->slots.back()));

  auto base = common::TempDir::Create();
  ASSERT_TRUE(base.ok());
  const std::string metrics_path = base->path() + "/metrics.json";

  engine::ExecutionOptions options = MultiProcessOptions(2);
  // Worker 0 SIGKILLs itself on its first map task; its tasks must be
  // re-issued to worker 1 with byte-identical results.
  options.dist.kill_worker_index = 0;
  options.dist.kill_after_tasks = 1;
  options.metrics_out = metrics_path;

  auto killed_plan = registry.Build("shuffle_sweep", args);
  MRCOST_CHECK_OK(killed_plan.status());
  killed_plan->Execute(options);
  const auto survived = SerializedBytes(
      *std::static_pointer_cast<
          std::vector<std::pair<std::uint64_t, std::uint64_t>>>(
          killed_plan->graph()->slots.back()));
  EXPECT_EQ(survived, reference);

  // The coordinator must have actually observed the death and re-issued.
  std::ifstream in(metrics_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string metrics_json = buffer.str();
  EXPECT_NE(metrics_json.find("\"dist.workers_died\":1"), std::string::npos)
      << metrics_json;
  EXPECT_NE(metrics_json.find("\"dist.reissued_tasks\""), std::string::npos);
}

TEST(DistBackend, SurvivesWorkerKillMidFetchByteIdentical) {
  // Wire transport, with worker 0 SIGKILLing itself after sending the
  // first block of its first served FetchRun: the reducer sees the stream
  // truncate mid-run, fails retryably, the executor re-runs the dead
  // worker's maps elsewhere, and the re-fetch must still produce
  // byte-identical output.
  auto& registry = dist::PlanRegistry::Global();
  const std::string args = "pairs=20000,keys=256,seed=9";

  auto reference_plan = registry.Build("shuffle_sweep", args);
  MRCOST_CHECK_OK(reference_plan.status());
  reference_plan->Execute({});
  const auto reference = SerializedBytes(
      *std::static_pointer_cast<
          std::vector<std::pair<std::uint64_t, std::uint64_t>>>(
          reference_plan->graph()->slots.back()));

  auto base = common::TempDir::Create();
  ASSERT_TRUE(base.ok());
  const std::string metrics_path = base->path() + "/metrics.json";

  engine::ExecutionOptions options = MultiProcessOptions(2);
  options.dist.shuffle_transport = engine::ShuffleTransport::kWireStream;
  options.dist.kill_worker_index = 0;
  options.dist.kill_after_fetches = 1;
  options.metrics_out = metrics_path;

  auto killed_plan = registry.Build("shuffle_sweep", args);
  MRCOST_CHECK_OK(killed_plan.status());
  killed_plan->Execute(options);
  const auto survived = SerializedBytes(
      *std::static_pointer_cast<
          std::vector<std::pair<std::uint64_t, std::uint64_t>>>(
          killed_plan->graph()->slots.back()));
  EXPECT_EQ(survived, reference);

  std::ifstream in(metrics_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string metrics_json = buffer.str();
  EXPECT_NE(metrics_json.find("\"dist.workers_died\":1"), std::string::npos)
      << metrics_json;
  // The executor must have re-run at least one map to replace the dead
  // worker's unfetchable runs.
  const std::string key = "\"dist.refetched_runs\":";
  const auto pos = metrics_json.find(key);
  ASSERT_NE(pos, std::string::npos) << metrics_json;
  EXPECT_NE(metrics_json[pos + key.size()], '0') << metrics_json;
}

TEST(DistBackend, UnstampedPlanFallsBackInProcess) {
  // A plan never registered as a recipe cannot cross processes; the multi
  // backend must still produce correct results (in-process fallback).
  engine::Plan plan;
  std::vector<std::uint64_t> rows(100);
  std::iota(rows.begin(), rows.end(), 0);
  auto sums =
      plan.Source(std::move(rows))
          .Map<std::uint64_t, std::uint64_t>(
              [](const std::uint64_t& row,
                 engine::Emitter<std::uint64_t, std::uint64_t>& emit) {
                emit.Emit(row % 10, row);
              })
          .ReduceByKey<std::pair<std::uint64_t, std::uint64_t>>(
              [](const std::uint64_t& key,
                 const std::vector<std::uint64_t>& vs,
                 std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) {
                std::uint64_t sum = 0;
                for (auto v : vs) sum += v;
                out.push_back({key, sum});
              });
  const auto expected = sums.Execute({}).outputs;
  const auto fallback = sums.Execute(MultiProcessOptions(2)).outputs;
  EXPECT_EQ(SerializedBytes(fallback), SerializedBytes(expected));
}

}  // namespace
}  // namespace mrcost
