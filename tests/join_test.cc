#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/schema_stats.h"
#include "src/core/schema_validator.h"
#include "src/join/aggregate.h"
#include "src/join/hypercube.h"
#include "src/join/problem.h"
#include "src/join/query.h"
#include "src/join/relation.h"
#include "src/join/serial_join.h"
#include "src/join/shares.h"
#include "src/join/two_round.h"

namespace mrcost::join {
namespace {

/// Random relation for an atom: `size` tuples with values in [0, domain).
Relation RandomRelation(const Query& query, int atom_idx,
                        std::uint64_t size, Value domain,
                        common::SplitMix64& rng) {
  const Atom& atom = query.atoms()[atom_idx];
  std::vector<std::string> attr_names;
  for (int a : atom.attributes) {
    attr_names.push_back(query.attribute_names()[a]);
  }
  Relation rel(atom.relation, attr_names);
  std::set<Tuple> seen;
  while (rel.size() < size &&
         seen.size() <
             static_cast<std::size_t>(std::pow(domain, rel.arity()))) {
    Tuple t(rel.arity());
    for (Value& v : t) {
      v = static_cast<Value>(rng.UniformBelow(domain));
    }
    if (seen.insert(t).second) rel.Add(t);
  }
  return rel;
}

std::vector<Relation> RandomInstance(const Query& query, std::uint64_t size,
                                     Value domain, std::uint64_t seed) {
  common::SplitMix64 rng(seed);
  std::vector<Relation> rels;
  for (int e = 0; e < query.num_atoms(); ++e) {
    rels.push_back(RandomRelation(query, e, size, domain, rng));
  }
  return rels;
}

std::vector<const Relation*> Pointers(const std::vector<Relation>& rels) {
  std::vector<const Relation*> out;
  for (const Relation& r : rels) out.push_back(&r);
  return out;
}

// ---------------------------------------------------------- serial join

TEST(SerialJoin, HandBuiltBinaryJoin) {
  // Example 2.1: R(A,B) |x| S(B,C).
  const Query q = ChainQuery(2);
  Relation r("R1", {"A0", "A1"});
  r.Add({1, 10});
  r.Add({2, 10});
  r.Add({3, 20});
  Relation s("R2", {"A1", "A2"});
  s.Add({10, 100});
  s.Add({10, 200});
  s.Add({30, 300});
  const auto results = SerialMultiwayJoin(q, {&r, &s});
  // (1,10)x{100,200}, (2,10)x{100,200} -> 4 results; (3,20) dangles.
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], (Tuple{1, 10, 100}));
  EXPECT_EQ(results[3], (Tuple{2, 10, 200}));
}

TEST(SerialJoin, EmptyRelationGivesEmptyResult) {
  const Query q = ChainQuery(2);
  Relation r("R1", {"A0", "A1"});
  r.Add({1, 2});
  Relation s("R2", {"A1", "A2"});
  EXPECT_TRUE(SerialMultiwayJoin(q, {&r, &s}).empty());
}

TEST(SerialJoin, TriangleQueryCountsTriangleEmbeddings) {
  // Clique query over a symmetric edge relation counts ordered triangles.
  const Query q = CliqueQuery(3);
  // Build the symmetric closure of triangle {0,1,2} plus a dangling edge.
  Relation e1("R1", {"A0", "A1"});
  Relation e2("R2", {"A1", "A2"});
  Relation e3("R3", {"A0", "A2"});
  for (auto [a, b] :
       std::vector<std::pair<Value, Value>>{{0, 1}, {1, 0}, {1, 2}, {2, 1},
                                            {0, 2}, {2, 0}, {2, 3}, {3, 2}}) {
    e1.Add({a, b});
    e2.Add({a, b});
    e3.Add({a, b});
  }
  const auto results = SerialMultiwayJoin(q, {&e1, &e2, &e3});
  // 3! = 6 ordered embeddings of the single triangle.
  EXPECT_EQ(results.size(), 6u);
}

// ------------------------------------------------------ HyperCube join

class HyperCubeTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, int, int, std::uint64_t>> {
 protected:
  Query MakeQuery() const {
    const auto [kind, param, domain, size] = GetParam();
    (void)domain;
    (void)size;
    const std::string k = kind;
    if (k == "chain") return ChainQuery(param);
    if (k == "star") return StarQuery(param);
    if (k == "cycle") return CycleQuery(param);
    return CliqueQuery(param);
  }
};

TEST_P(HyperCubeTest, MatchesSerialJoin) {
  const auto [kind, param, domain, size] = GetParam();
  (void)kind;
  (void)param;
  const Query query = MakeQuery();
  const auto rels = RandomInstance(query, size, domain, /*seed=*/77);
  const auto ptrs = Pointers(rels);
  const auto serial = SerialMultiwayJoin(query, ptrs);

  // A couple of share vectors, including intentionally lopsided ones.
  std::vector<std::vector<int>> share_vectors;
  share_vectors.push_back(std::vector<int>(query.num_attributes(), 1));
  share_vectors.push_back(std::vector<int>(query.num_attributes(), 2));
  {
    std::vector<int> lopsided(query.num_attributes(), 1);
    lopsided[0] = 3;
    lopsided[query.num_attributes() - 1] = 2;
    share_vectors.push_back(lopsided);
  }
  for (const auto& shares : share_vectors) {
    auto result = HyperCubeJoin(query, ptrs, shares, /*seed=*/5);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->results, serial);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HyperCubeTest,
    ::testing::Values(std::tuple{"chain", 2, 8, 40ull},
                      std::tuple{"chain", 3, 6, 50ull},
                      std::tuple{"chain", 5, 4, 30ull},
                      std::tuple{"star", 2, 8, 40ull},
                      std::tuple{"star", 3, 5, 30ull},
                      std::tuple{"cycle", 3, 8, 40ull},
                      std::tuple{"cycle", 4, 5, 30ull},
                      std::tuple{"clique", 3, 8, 40ull}));

TEST(HyperCube, AllInOneCellEqualsSerial) {
  const Query query = ChainQuery(3);
  const auto rels = RandomInstance(query, 30, 5, 3);
  const auto ptrs = Pointers(rels);
  std::vector<int> ones(query.num_attributes(), 1);
  auto result = HyperCubeJoin(query, ptrs, ones, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.num_reducers, 1u);
  // r = 1: every tuple sent exactly once.
  EXPECT_DOUBLE_EQ(result->metrics.replication_rate(), 1.0);
}

TEST(HyperCube, ReplicationMatchesSharesFormula) {
  // For a chain R1(A0,A1), R2(A1,A2) with shares (s0,s1,s2): R1 tuples are
  // replicated s2 times, R2 tuples s0 times.
  const Query query = ChainQuery(2);
  const auto rels = RandomInstance(query, 50, 10, 9);
  const auto ptrs = Pointers(rels);
  auto result = HyperCubeJoin(query, ptrs, {3, 1, 4}, 1);
  ASSERT_TRUE(result.ok());
  const double expected_pairs = 50.0 * 4 + 50.0 * 3;
  EXPECT_DOUBLE_EQ(static_cast<double>(result->metrics.pairs_shuffled),
                   expected_pairs);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(result->metrics.pairs_shuffled) / 100.0,
      PredictedCommunication(query, {50, 50}, {3.0, 1.0, 4.0}) / 100.0);
}

TEST(HyperCube, ValidatesArguments) {
  const Query query = ChainQuery(2);
  const auto rels = RandomInstance(query, 5, 4, 2);
  const auto ptrs = Pointers(rels);
  EXPECT_FALSE(HyperCubeJoin(query, ptrs, {1, 1}, 0).ok());     // bad width
  EXPECT_FALSE(HyperCubeJoin(query, ptrs, {1, 0, 1}, 0).ok());  // share < 1
  EXPECT_FALSE(HyperCubeJoin(query, {ptrs[0]}, {1, 1, 1}, 0).ok());
}

// -------------------------------------------------------------- shares

TEST(Shares, PredictedCommunicationFormula) {
  const Query query = ChainQuery(2);  // R1(A0,A1), R2(A1,A2)
  // shares (2,3,4): R1 replicated by share(A2)=4, R2 by share(A0)=2.
  EXPECT_DOUBLE_EQ(PredictedCommunication(query, {100, 200}, {2, 3, 4}),
                   100.0 * 4 + 200.0 * 2);
}

TEST(Shares, OptimizerRespectsBudget) {
  const Query query = ChainQuery(3);
  auto result = OptimizeShares(query, {1000, 1000, 1000}, 64);
  ASSERT_TRUE(result.ok());
  double product = 1.0;
  for (double s : result->shares) {
    EXPECT_GE(s, 1.0 - 1e-6);
    product *= s;
  }
  EXPECT_NEAR(product, 64.0, 1e-3);
}

TEST(Shares, OptimizerBeatsOrMatchesUniform) {
  for (int n_rel : {2, 3, 4}) {
    const Query query = ChainQuery(n_rel);
    const std::vector<std::uint64_t> sizes(query.num_atoms(), 10000);
    const double p = 256;
    auto opt = OptimizeShares(query, sizes, p);
    ASSERT_TRUE(opt.ok());
    std::vector<double> uniform(query.num_attributes(),
                                std::pow(p, 1.0 / query.num_attributes()));
    EXPECT_LE(opt->communication,
              PredictedCommunication(query, sizes, uniform) * (1 + 1e-6))
        << "N=" << n_rel;
  }
}

TEST(Shares, ChainEndpointsGetNoShare) {
  // For chains, the dangling attributes A0 and AN burn communication on
  // both relations but help neither; the optimizer must drive their share
  // to ~1.
  const Query query = ChainQuery(3);
  auto result = OptimizeShares(query, {1000, 1000, 1000}, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->shares.front(), 1.0, 0.05);
  EXPECT_NEAR(result->shares.back(), 1.0, 0.05);
}

TEST(Shares, StarClosedFormMatchesOptimizer) {
  // Paper Section 5.5.2: with a large fact table, all shares go to the
  // fact attributes, p^{1/N} each.
  const int n_dims = 3;
  const Query query = StarQuery(n_dims);
  const std::vector<std::uint64_t> sizes = {1000000, 1000, 1000, 1000};
  const double p = 64;
  const SharesSolution closed = StarShares(query, sizes, p);
  for (int i = 0; i < n_dims; ++i) {
    EXPECT_NEAR(closed.shares[i], std::pow(p, 1.0 / n_dims), 1e-9);
  }
  auto opt = OptimizeShares(query, sizes, p);
  ASSERT_TRUE(opt.ok());
  // The optimizer should be at least as good, and close.
  EXPECT_LE(opt->communication, closed.communication * 1.001);
  EXPECT_GE(opt->communication, closed.communication * 0.8);
}

TEST(Shares, RoundSharesStaysWithinBudget) {
  const std::vector<double> shares{2.7, 1.4, 3.9, 1.0};
  const double p = 2.7 * 1.4 * 3.9 * 1.0;
  const auto rounded = RoundShares(shares, p);
  double product = 1.0;
  for (int s : rounded) {
    EXPECT_GE(s, 1);
    product *= s;
  }
  EXPECT_LE(product, p + 1e-9);
}

TEST(Shares, OptimizeValidatesArgs) {
  const Query query = ChainQuery(2);
  EXPECT_FALSE(OptimizeShares(query, {10, 10}, 0.5).ok());
  EXPECT_FALSE(OptimizeShares(query, {10}, 4).ok());
}

// ---------------------------------------------------------- aggregates

TEST(Aggregate, Tokenize) {
  const auto words = Tokenize({"Hello, hello world!", "WORLD of worlds"});
  EXPECT_EQ(words, (std::vector<std::string>{"hello", "hello", "world",
                                             "world", "of", "worlds"}));
}

TEST(Aggregate, WordCountIsEmbarrassinglyParallel) {
  // Example 2.5: viewing inputs as occurrences, r == 1 identically.
  const auto words =
      Tokenize({"the quick brown fox", "the lazy dog", "the fox"});
  const auto result = WordCount(words);
  EXPECT_DOUBLE_EQ(result.metrics.replication_rate(), 1.0);
  // Counts are correct.
  for (const auto& [word, count] : result.counts) {
    if (word == "the") {
      EXPECT_EQ(count, 3u);
    }
    if (word == "fox") {
      EXPECT_EQ(count, 2u);
    }
    if (word == "dog") {
      EXPECT_EQ(count, 1u);
    }
  }
  const std::uint64_t total = std::accumulate(
      result.counts.begin(), result.counts.end(), std::uint64_t{0},
      [](std::uint64_t acc, const auto& kv) { return acc + kv.second; });
  EXPECT_EQ(total, words.size());
}

TEST(Aggregate, GroupBySum) {
  // Example 2.4: SELECT A, SUM(B).
  const std::vector<std::pair<Value, Value>> rows{
      {1, 10}, {2, 5}, {1, -3}, {3, 0}, {2, 7}};
  const auto result = GroupBySum(rows);
  ASSERT_EQ(result.sums.size(), 3u);
  EXPECT_EQ(result.sums[0], (std::pair<Value, std::int64_t>{1, 7}));
  EXPECT_EQ(result.sums[1], (std::pair<Value, std::int64_t>{2, 12}));
  EXPECT_EQ(result.sums[2], (std::pair<Value, std::int64_t>{3, 0}));
  EXPECT_DOUBLE_EQ(result.metrics.replication_rate(), 1.0);
}

TEST(Aggregate, GroupBySumEmpty) {
  const auto result = GroupBySum({});
  EXPECT_TRUE(result.sums.empty());
}

// --------------------------------------- Example 2.1 / 2.4 as problems

TEST(JoinProblem, NaturalJoinModelCounts) {
  // Example 2.1: |I| = NA*NB + NB*NC, |O| = NA*NB*NC, two inputs/output.
  const NaturalJoinProblem p(3, 4, 5);
  EXPECT_EQ(p.num_inputs(), 3u * 4 + 4u * 5);
  EXPECT_EQ(p.num_outputs(), 3u * 4 * 5);
  for (core::OutputId o = 0; o < p.num_outputs(); ++o) {
    EXPECT_EQ(p.InputsOfOutput(o).size(), 2u);
  }
  // Output (a=1,b=2,c=3): depends on R(1,2)=id 6 and S(2,3)=id 12+13.
  const auto deps = p.InputsOfOutput((1 * 4 + 2) * 5 + 3);
  EXPECT_EQ(deps[0], 6u);
  EXPECT_EQ(deps[1], 12u + 2 * 5 + 3);
}

TEST(JoinProblem, HashJoinSchemaIsValidWithRZero) {
  const NaturalJoinProblem p(4, 6, 5);
  const HashJoinSchema schema(p);
  // q per reducer: NA R-tuples + NC S-tuples sharing that b.
  EXPECT_TRUE(core::ValidateSchema(p, schema, 4 + 5).ok());
  EXPECT_FALSE(core::ValidateSchema(p, schema, 8).ok());  // q too small
  const auto stats = core::ComputeSchemaStats(schema, p.num_inputs());
  EXPECT_DOUBLE_EQ(stats.replication_rate, 1.0);
  EXPECT_EQ(stats.max_reducer_load, 9u);
  EXPECT_EQ(stats.nonempty_reducers, 6u);
}

TEST(JoinProblem, GroupByModelAndSchema) {
  const GroupByProblem p(5, 7);
  EXPECT_EQ(p.num_inputs(), 35u);
  EXPECT_EQ(p.num_outputs(), 5u);
  EXPECT_EQ(p.InputsOfOutput(2).size(), 7u);
  const GroupBySchema schema(p, 7);
  EXPECT_TRUE(core::ValidateSchema(p, schema, 7).ok());
  EXPECT_FALSE(core::ValidateSchema(p, schema, 6).ok());
  const auto stats = core::ComputeSchemaStats(schema, p.num_inputs());
  EXPECT_DOUBLE_EQ(stats.replication_rate, 1.0);  // embarrassingly parallel
}

// ------------------------------------------- two-round join+aggregate

class JoinAggregateTest
    : public ::testing::TestWithParam<std::tuple<const char*, int, bool>> {};

TEST_P(JoinAggregateTest, MatchesSerialWithAndWithoutPreAggregation) {
  const auto [kind, param, pre_aggregate] = GetParam();
  const std::string k = kind;
  const Query query = k == "chain" ? ChainQuery(param) : StarQuery(param);
  const auto rels = RandomInstance(query, 60, 6, /*seed=*/11);
  const auto ptrs = Pointers(rels);
  const int group_attr = 0;
  const int sum_attr = query.num_attributes() - 1;
  const auto serial =
      SerialJoinAggregate(query, ptrs, group_attr, sum_attr);
  std::vector<int> shares(query.num_attributes(), 2);
  auto result = HyperCubeJoinAggregate(query, ptrs, shares, group_attr,
                                       sum_attr, pre_aggregate, /*seed=*/3);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->sums, serial);
  ASSERT_EQ(result->metrics.rounds.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinAggregateTest,
    ::testing::Values(std::tuple{"chain", 2, false},
                      std::tuple{"chain", 2, true},
                      std::tuple{"chain", 3, false},
                      std::tuple{"chain", 3, true},
                      std::tuple{"star", 2, false},
                      std::tuple{"star", 2, true},
                      std::tuple{"star", 3, true}));

TEST(JoinAggregate, PreAggregationShrinksRound2) {
  // Dense chain join: many results share group values, so per-cell
  // partial sums must shrink round-2 traffic (the Sec 6.3 analogue).
  const Query query = ChainQuery(2);
  Relation r("R1", {"A0", "A1"});
  Relation s("R2", {"A1", "A2"});
  for (Value a = 0; a < 12; ++a) {
    for (Value b = 0; b < 12; ++b) {
      r.Add({a % 3, b});  // only 3 distinct group values
      s.Add({a, b});
    }
  }
  const std::vector<const Relation*> ptrs{&r, &s};
  const std::vector<int> shares{2, 2, 2};
  auto plain =
      HyperCubeJoinAggregate(query, ptrs, shares, 0, 2, false, 1);
  auto pre = HyperCubeJoinAggregate(query, ptrs, shares, 0, 2, true, 1);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(plain->sums, pre->sums);
  // Round 1 identical, round 2 strictly smaller with pre-aggregation.
  EXPECT_EQ(plain->metrics.rounds[0].pairs_shuffled,
            pre->metrics.rounds[0].pairs_shuffled);
  EXPECT_LT(pre->metrics.rounds[1].pairs_shuffled,
            plain->metrics.rounds[1].pairs_shuffled);
}

TEST(JoinAggregate, ValidatesAttributeIndexes) {
  const Query query = ChainQuery(2);
  const auto rels = RandomInstance(query, 5, 4, 2);
  const auto ptrs = Pointers(rels);
  EXPECT_FALSE(
      HyperCubeJoinAggregate(query, ptrs, {1, 1, 1}, -1, 0, false, 0).ok());
  EXPECT_FALSE(
      HyperCubeJoinAggregate(query, ptrs, {1, 1, 1}, 0, 99, false, 0).ok());
}

}  // namespace
}  // namespace mrcost::join
