#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cost_model.h"
#include "src/core/lower_bound.h"
#include "src/core/mapping_schema.h"
#include "src/core/presence.h"
#include "src/core/problem.h"
#include "src/core/schema_stats.h"
#include "src/core/schema_validator.h"
#include "src/core/tradeoff.h"

namespace mrcost::core {
namespace {

/// The tiny natural-join problem of Example 2.1 with |A|=|B|=|C|=2:
/// inputs 0..3 are R(a,b) tuples, 4..7 are S(b,c) tuples; outputs are the
/// 8 triples (a,b,c) -> {R(a,b), S(b,c)}.
ExplicitProblem TinyJoinProblem() {
  std::vector<std::vector<InputId>> outputs;
  for (InputId a = 0; a < 2; ++a) {
    for (InputId b = 0; b < 2; ++b) {
      for (InputId c = 0; c < 2; ++c) {
        outputs.push_back({a * 2 + b, 4 + b * 2 + c});
      }
    }
  }
  return ExplicitProblem("tiny-join", 8, std::move(outputs));
}

TEST(Problem, ExplicitProblemAccessors) {
  const ExplicitProblem p = TinyJoinProblem();
  EXPECT_EQ(p.num_inputs(), 8u);
  EXPECT_EQ(p.num_outputs(), 8u);
  EXPECT_EQ(p.InputsOfOutput(0), (std::vector<InputId>{0, 4}));
  EXPECT_EQ(p.name(), "tiny-join");
}

TEST(SchemaStats, CountsAssignments) {
  // Two reducers; inputs 0,1 -> reducer 0; inputs 2,3 -> both reducers.
  ExplicitSchema schema("s", 2, {{0}, {0}, {0, 1}, {0, 1}});
  const SchemaStats stats = ComputeSchemaStats(schema, 4);
  EXPECT_EQ(stats.total_assignments, 6u);
  EXPECT_EQ(stats.max_reducer_load, 4u);
  EXPECT_EQ(stats.nonempty_reducers, 2u);
  EXPECT_DOUBLE_EQ(stats.replication_rate, 1.5);
}

TEST(Validator, AcceptsCoveringSchema) {
  const ExplicitProblem p = TinyJoinProblem();
  // Group by b: reducer 0 covers b=0 (inputs R(.,0)={0,2}, S(0,.)={4,5}),
  // reducer 1 covers b=1 (inputs {1,3}, {6,7}).
  ExplicitSchema schema("by-b", 2,
                        {{0}, {1}, {0}, {1}, {0}, {0}, {1}, {1}});
  EXPECT_TRUE(ValidateSchema(p, schema, 4).ok());
}

TEST(Validator, RejectsOversizedReducer) {
  const ExplicitProblem p = TinyJoinProblem();
  ExplicitSchema schema("all-in-one", 1,
                        {{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}});
  EXPECT_TRUE(ValidateSchema(p, schema, 8).ok());
  const auto status = ValidateSchema(p, schema, 7);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("exceeding q=7"), std::string::npos);
}

TEST(Validator, RejectsUncoveredOutput) {
  const ExplicitProblem p = TinyJoinProblem();
  // Split R tuples from S tuples: no output is covered.
  ExplicitSchema schema("r-vs-s", 2,
                        {{0}, {0}, {0}, {0}, {1}, {1}, {1}, {1}});
  const auto status = ValidateSchema(p, schema, 8);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not covered"), std::string::npos);
}

TEST(Validator, RejectsOutOfRangeReducer) {
  const ExplicitProblem p = TinyJoinProblem();
  ExplicitSchema schema("broken", 1,
                        {{5}, {0}, {0}, {0}, {0}, {0}, {0}, {0}});
  EXPECT_EQ(ValidateSchema(p, schema, 8).code(),
            common::StatusCode::kInternal);
}

// -------------------------------------------------------- lower bound

Recipe QuadraticRecipe() {
  // g(q) = q^2 / 2 (the 2-paths shape), |I| = 100, |O| = 10000.
  Recipe r;
  r.problem_name = "test";
  r.g = [](double q) { return q * q / 2.0; };
  r.num_inputs = 100;
  r.num_outputs = 10000;
  return r;
}

TEST(LowerBound, RecipeFormula) {
  const Recipe r = QuadraticRecipe();
  // r >= q*|O| / (g(q)*|I|) = q*10000 / (q^2/2 * 100) = 200/q.
  EXPECT_DOUBLE_EQ(ReplicationLowerBound(r, 10), 20.0);
  EXPECT_DOUBLE_EQ(ReplicationLowerBound(r, 100), 2.0);
  EXPECT_DOUBLE_EQ(ReplicationLowerBound(r, 400), 0.5);
  EXPECT_DOUBLE_EQ(ClampedReplicationLowerBound(r, 400), 1.0);
}

TEST(LowerBound, InfiniteWhenNoOutputsCoverable) {
  Recipe r = QuadraticRecipe();
  r.g = [](double) { return 0.0; };
  EXPECT_TRUE(std::isinf(ReplicationLowerBound(r, 10)));
}

TEST(LowerBound, MonotonicityCheckPasses) {
  EXPECT_TRUE(CheckMonotoneGOverQ(QuadraticRecipe(), 1, 1e6).ok());
}

TEST(LowerBound, MonotonicityCheckCatchesViolation) {
  Recipe r = QuadraticRecipe();
  r.g = [](double q) { return std::sqrt(q); };  // g/q decreasing
  const auto status = CheckMonotoneGOverQ(r, 1, 1e6);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
}

TEST(LowerBound, MonotonicityCheckValidatesArgs) {
  EXPECT_FALSE(CheckMonotoneGOverQ(QuadraticRecipe(), -1, 10).ok());
  EXPECT_FALSE(CheckMonotoneGOverQ(QuadraticRecipe(), 10, 1).ok());
}

// ---------------------------------------------------------- cost model

TEST(CostModel, CostFormula) {
  CostModel model{2.0, 3.0, 0.5};
  EXPECT_DOUBLE_EQ(model.Cost(10, 4), 2.0 * 10 + 3.0 * 4 + 0.5 * 16);
}

TEST(CostModel, PickCheapest) {
  std::vector<TradeoffPoint> curve{
      {2, 16, "q=2"}, {4, 8, "q=4"}, {16, 2, "q=16"}, {256, 1, "q=256"}};
  // Pure communication cost: pick the largest q.
  CostModel comm_only{1.0, 0.0, 0.0};
  EXPECT_EQ(PickCheapest(curve, comm_only).label, "q=256");
  // Heavy processing cost: pick a small q.
  CostModel proc_heavy{1.0, 10.0, 0.0};
  EXPECT_EQ(PickCheapest(curve, proc_heavy).label, "q=2");
}

TEST(CostModel, PickCheapestTieBreaksTowardSmallQ) {
  std::vector<TradeoffPoint> curve{{2, 1, "small"}, {8, 1, "large"}};
  CostModel comm_only{1.0, 0.0, 0.0};
  EXPECT_EQ(PickCheapest(curve, comm_only).label, "small");
}

TEST(CostModel, GoldenSectionFindsMinimum) {
  // f(q) = 100/q + q has minimum at q = 10.
  const double q = GoldenSectionMinimize(
      [](double x) { return 100.0 / x + x; }, 0.1, 1000.0);
  EXPECT_NEAR(q, 10.0, 1e-3);
}

TEST(CostModel, GoldenSectionOnExample11) {
  // Example 1.1: cost = a f(q) + b q with f(q) = b_bits/log2(q). With
  // a=1000, b=1 and b_bits=20 the optimum is interior; check first-order
  // optimality numerically rather than a closed form.
  auto cost = [](double q) {
    return 1000.0 * 20.0 / std::log2(q) + q;
  };
  const double q = GoldenSectionMinimize(cost, 2.0, 1e7);
  const double eps = q * 1e-4;
  EXPECT_LT(cost(q), cost(q - eps) + 1e-9);
  EXPECT_LT(cost(q), cost(q + eps) + 1e-9);
}

// ------------------------------------------------------------ tradeoff

TEST(Tradeoff, SampleCurveShapes) {
  const auto curve = SampleLowerBoundCurve(QuadraticRecipe(), 1, 1024, 11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().q, 1.0);
  EXPECT_NEAR(curve.back().q, 1024.0, 1e-6);
  // Monotone non-increasing in q (it is a hyperbola, clamped at 1).
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].r, curve[i - 1].r + 1e-9);
  }
  EXPECT_GE(curve.back().r, 1.0);  // clamped
}

TEST(Tradeoff, UnclampedCanDropBelowOne) {
  const auto curve =
      SampleLowerBoundCurve(QuadraticRecipe(), 300, 1000, 3, false);
  EXPECT_LT(curve.back().r, 1.0);
}

TEST(CostModel, OptimalQOnCurve) {
  // With cost = a*r(q) + b*q and r(q) = 200/q (the quadratic recipe),
  // cost = 200a/q + bq is minimized at q = sqrt(200 a / b).
  const Recipe recipe = QuadraticRecipe();
  const CostModel model{/*a=*/50.0, /*b=*/2.0, /*c=*/0.0};
  const double q = OptimalQOnCurve(recipe, model, 1.0, 200.0);
  EXPECT_NEAR(q, std::sqrt(200.0 * 50.0 / 2.0), 0.5);
}

TEST(CostModel, OptimalQPrefersMaxQWhenCommunicationOnly) {
  const Recipe recipe = QuadraticRecipe();
  const CostModel comm_only{1.0, 0.0, 0.0};
  // Pure communication: r decreases with q until the clamp, so any q past
  // the clamp point is optimal; the returned q must cost no more than the
  // endpoints.
  const double q = OptimalQOnCurve(recipe, comm_only, 1.0, 1e6);
  const double cost_at_q =
      comm_only.Cost(ClampedReplicationLowerBound(recipe, q), q);
  EXPECT_LE(cost_at_q,
            comm_only.Cost(ClampedReplicationLowerBound(recipe, 1.0), 1.0));
}

// ------------------------------------------------- presence (Sec 2.3)

TEST(Presence, ExpectedLoadMatchesXTimesQt) {
  // A single reducer holding all 4096 inputs, x = 0.25: realized load
  // concentrates near 1024.
  ExplicitSchema all("all", 1,
                     std::vector<std::vector<ReducerId>>(4096, {0}));
  const auto stats = SimulatePresence(all, 4096, 0.25, 50, /*seed=*/7);
  EXPECT_EQ(stats.target_q, 4096u);
  EXPECT_DOUBLE_EQ(stats.expected_load, 1024.0);
  EXPECT_NEAR(stats.realized_max_load.mean(), 1024.0, 40.0);
  // Relative deviation is small at this q_t.
  EXPECT_LT(stats.relative_deviation.mean(), 0.05);
}

TEST(Presence, DeviationShrinksWithQt) {
  // Section 2.3's "vanishingly small chance of significant deviation for
  // large q": compare a schema with tiny reducers against one with big
  // reducers at the same x.
  auto uniform_schema = [](std::uint64_t num_inputs,
                           std::uint64_t num_reducers) {
    std::vector<std::vector<ReducerId>> assignment(num_inputs);
    for (std::uint64_t i = 0; i < num_inputs; ++i) {
      assignment[i] = {i % num_reducers};
    }
    return ExplicitSchema("uniform", num_reducers, std::move(assignment));
  };
  const auto small = SimulatePresence(uniform_schema(8192, 512), 8192, 0.5,
                                      20, /*seed=*/3);
  const auto large = SimulatePresence(uniform_schema(8192, 8), 8192, 0.5,
                                      20, /*seed=*/3);
  EXPECT_GT(small.relative_deviation.mean(),
            3.0 * large.relative_deviation.mean());
}

TEST(Presence, EffectiveTargetQ) {
  // q_t = q / x (the Sec 2.3 / 4.2 rescaling).
  EXPECT_DOUBLE_EQ(EffectiveTargetQ(100, 0.1), 1000.0);
  EXPECT_DOUBLE_EQ(EffectiveTargetQ(64, 1.0), 64.0);
}

}  // namespace
}  // namespace mrcost::core
