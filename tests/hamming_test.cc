#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/combinatorics.h"
#include "src/common/random.h"
#include "src/core/schema_stats.h"
#include "src/core/schema_validator.h"
#include "src/hamming/bitstring.h"
#include "src/hamming/bounds.h"
#include "src/hamming/coverage.h"
#include "src/hamming/problem.h"
#include "src/hamming/schemas.h"
#include "src/hamming/similarity_join.h"

namespace mrcost::hamming {
namespace {

// ----------------------------------------------------------- bitstring

TEST(BitString, HammingDistance) {
  EXPECT_EQ(HammingDistance(0b0000, 0b0000), 0);
  EXPECT_EQ(HammingDistance(0b0001, 0b0000), 1);
  EXPECT_EQ(HammingDistance(0b1010, 0b0101), 4);
}

TEST(BitString, Neighbors) {
  const auto nbrs = NeighborsAtDistance1(0b101, 3);
  EXPECT_EQ(nbrs, (std::vector<BitString>{0b100, 0b111, 0b001}));
}

TEST(BitString, AllStrings) {
  const auto all = AllStrings(4);
  EXPECT_EQ(all.size(), 16u);
  EXPECT_EQ(all.front(), 0u);
  EXPECT_EQ(all.back(), 15u);
}

TEST(BitString, SegmentWeight) {
  EXPECT_EQ(SegmentWeight(0b1101'0110, 0, 4), 2);
  EXPECT_EQ(SegmentWeight(0b1101'0110, 4, 4), 3);
}

// ------------------------------------------------------------- problem

TEST(HammingProblem, OutputCountDistance1) {
  // |O| = (b/2) 2^b (Example 2.3).
  for (int b : {2, 4, 6, 8, 10}) {
    const HammingProblem p(b, 1);
    EXPECT_EQ(p.num_outputs(),
              static_cast<std::uint64_t>(b) * (1ull << b) / 2)
        << "b=" << b;
  }
}

TEST(HammingProblem, OutputCountDistanceD) {
  // |O| = C(b,d) 2^{b-1}.
  for (int b : {4, 6, 8}) {
    for (int d = 1; d <= 3; ++d) {
      const HammingProblem p(b, d);
      EXPECT_EQ(p.num_outputs(),
                common::BinomialExact(b, d) * (1ull << (b - 1)))
          << "b=" << b << " d=" << d;
    }
  }
}

TEST(HammingProblem, PairsAreAtExactDistance) {
  const HammingProblem p(8, 2);
  for (const auto& [u, v] : p.pairs()) {
    EXPECT_LT(u, v);
    EXPECT_EQ(HammingDistance(u, v), 2);
  }
}

// ------------------------------------------- schemas: extremes (Sec 3.3)

TEST(PairsSchema, IsValidAtQ2) {
  const HammingProblem p(6, 1);
  const PairsSchema schema(6);
  EXPECT_TRUE(core::ValidateSchema(p, schema, 2).ok());
}

TEST(PairsSchema, ReplicationIsExactlyB) {
  // Theorem 3.2 at q=2: r = b / log2(2) = b, met exactly.
  for (int b : {3, 5, 8}) {
    const PairsSchema schema(b);
    const auto stats =
        core::ComputeSchemaStats(schema, std::uint64_t{1} << b);
    EXPECT_DOUBLE_EQ(stats.replication_rate, b);
    EXPECT_EQ(stats.max_reducer_load, 2u);
  }
}

TEST(SingleReducerSchema, IsValidAtFullDomain) {
  const HammingProblem p(5, 1);
  const SingleReducerSchema schema(1u << 5);
  EXPECT_TRUE(core::ValidateSchema(p, schema, 1u << 5).ok());
  const auto stats = core::ComputeSchemaStats(schema, 1u << 5);
  EXPECT_DOUBLE_EQ(stats.replication_rate, 1.0);  // r = b/log2(2^b) = 1
}

// ------------------------------------------- Splitting (Sec 3.3), swept

class SplittingSchemaTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplittingSchemaTest, ValidAndMatchesLowerBoundExactly) {
  const auto [b, c] = GetParam();
  auto schema = SplittingSchema::Make(b, c);
  ASSERT_TRUE(schema.ok()) << schema.status();
  const HammingProblem problem(b, 1);

  // Constraint check at the schema's own q = 2^{b/c}.
  const std::uint64_t q = schema->reducer_size();
  EXPECT_TRUE(core::ValidateSchema(problem, *schema, q).ok());

  // Replication rate is exactly c, which equals the Theorem 3.2 bound
  // b / log2(q) = b / (b/c) = c: the algorithm is exactly optimal.
  const auto stats = core::ComputeSchemaStats(*schema, problem.num_inputs());
  EXPECT_DOUBLE_EQ(stats.replication_rate, c);
  EXPECT_DOUBLE_EQ(Hamming1LowerBound(b, static_cast<double>(q)), c);
  // Every reducer receives exactly 2^{b/c} strings.
  EXPECT_EQ(stats.max_reducer_load, q);
  EXPECT_EQ(stats.total_assignments,
            static_cast<std::uint64_t>(c) * problem.num_inputs());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplittingSchemaTest,
    ::testing::Values(std::tuple{4, 2}, std::tuple{6, 2}, std::tuple{6, 3},
                      std::tuple{8, 2}, std::tuple{8, 4}, std::tuple{9, 3},
                      std::tuple{10, 5}, std::tuple{12, 2},
                      std::tuple{12, 3}, std::tuple{12, 4},
                      std::tuple{12, 6}, std::tuple{10, 10}));

TEST(SplittingSchema, RejectsNonDivisor) {
  EXPECT_FALSE(SplittingSchema::Make(10, 3).ok());
  EXPECT_FALSE(SplittingSchema::Make(8, 0).ok());
  EXPECT_FALSE(SplittingSchema::Make(8, 9).ok());
}

TEST(SplittingSchema, LemmaThreeOneIsTightOnSplittingReducers) {
  // Each Splitting reducer receives q = 2^{b/c} inputs forming a
  // sub-hypercube of dimension b/c, which contains exactly (q/2) log2 q
  // distance-1 pairs — Lemma 3.1 holds with equality.
  const int b = 8, c = 2;
  const double q = 1 << (b / c);
  const double outputs_in_subcube = (b / c) * std::pow(2.0, b / c) / 2.0;
  EXPECT_DOUBLE_EQ(Hamming1CoverBound(q), outputs_in_subcube);
}

// ---------------------------------------- Weight-based (Sec 3.4), swept

class Weight2DSchemaTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Weight2DSchemaTest, CoversAllDistance1Pairs) {
  const auto [b, k] = GetParam();
  auto schema = Weight2DSchema::Make(b, k);
  ASSERT_TRUE(schema.ok()) << schema.status();
  const HammingProblem problem(b, 1);
  // No q constraint of interest here (cells are big); validate coverage
  // with q = |I|.
  EXPECT_TRUE(
      core::ValidateSchema(problem, *schema, problem.num_inputs()).ok());
}

TEST_P(Weight2DSchemaTest, ReplicationApproaches1Plus2OverK) {
  const auto [b, k] = GetParam();
  auto schema = Weight2DSchema::Make(b, k);
  ASSERT_TRUE(schema.ok());
  const auto stats =
      core::ComputeSchemaStats(*schema, std::uint64_t{1} << b);
  if (schema->num_groups() == 1) {
    // Degenerate single-cell case: nothing borders anything, r = 1.
    EXPECT_DOUBLE_EQ(stats.replication_rate, 1.0);
    return;
  }
  // r = 1 + (fraction of strings with a border half-weight). The paper's
  // estimate is 2/k; binomial discreteness makes small-b cases wobble, so
  // assert the structural bounds 1 < r <= 2 plus closeness to 1 + 2/k.
  EXPECT_GT(stats.replication_rate, 1.0);
  EXPECT_LE(stats.replication_rate, 2.0);
  const double estimate = 1.0 + 2.0 / k;
  EXPECT_NEAR(stats.replication_rate, estimate, 0.35)
      << "b=" << b << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Weight2DSchemaTest,
                         ::testing::Values(std::tuple{8, 2}, std::tuple{8, 4},
                                           std::tuple{12, 2},
                                           std::tuple{12, 3},
                                           std::tuple{12, 6},
                                           std::tuple{14, 7},
                                           std::tuple{16, 4},
                                           std::tuple{16, 2}));

TEST(Weight2DSchema, RejectsBadParameters) {
  EXPECT_FALSE(Weight2DSchema::Make(7, 2).ok());   // odd b
  EXPECT_FALSE(Weight2DSchema::Make(12, 5).ok());  // 5 does not divide 6
}

class WeightKDSchemaTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WeightKDSchemaTest, CoversAllDistance1Pairs) {
  const auto [b, d, k] = GetParam();
  auto schema = WeightKDSchema::Make(b, d, k);
  ASSERT_TRUE(schema.ok()) << schema.status();
  const HammingProblem problem(b, 1);
  EXPECT_TRUE(
      core::ValidateSchema(problem, *schema, problem.num_inputs()).ok());
  // Replication is bounded by 1 + d/k in the limit; structurally r <= 1+d,
  // and exactly 1 in the degenerate single-cell case.
  const auto stats =
      core::ComputeSchemaStats(*schema, problem.num_inputs());
  if (schema->num_groups_per_dim() == 1) {
    EXPECT_DOUBLE_EQ(stats.replication_rate, 1.0);
  } else {
    EXPECT_GT(stats.replication_rate, 1.0);
    EXPECT_LE(stats.replication_rate, 1.0 + d);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeightKDSchemaTest,
                         ::testing::Values(std::tuple{12, 3, 2},
                                           std::tuple{12, 2, 3},
                                           std::tuple{12, 4, 3},
                                           std::tuple{12, 6, 2},
                                           std::tuple{8, 4, 2},
                                           std::tuple{16, 4, 2}));

TEST(WeightKDSchema, MatchesWeight2DWhenDIs2) {
  const int b = 12, k = 3;
  auto kd = WeightKDSchema::Make(b, 2, k);
  auto two_d = Weight2DSchema::Make(b, k);
  ASSERT_TRUE(kd.ok());
  ASSERT_TRUE(two_d.ok());
  const auto stats_kd = core::ComputeSchemaStats(*kd, 1u << b);
  const auto stats_2d = core::ComputeSchemaStats(*two_d, 1u << b);
  EXPECT_EQ(stats_kd.total_assignments, stats_2d.total_assignments);
  EXPECT_EQ(stats_kd.max_reducer_load, stats_2d.max_reducer_load);
}

// --------------------------------------------- Ball-2 (Sec 3.6), swept

class BallSchemaTest : public ::testing::TestWithParam<int> {};

TEST_P(BallSchemaTest, CoversDistance2Pairs) {
  const int b = GetParam();
  const HammingProblem problem(b, 2);
  const BallSchema schema(b, /*include_center=*/false);
  EXPECT_TRUE(
      core::ValidateSchema(problem, schema, static_cast<std::uint64_t>(b))
          .ok());
  const auto stats = core::ComputeSchemaStats(schema, 1u << b);
  EXPECT_DOUBLE_EQ(stats.replication_rate, b);   // one reducer per flip
  EXPECT_EQ(stats.max_reducer_load, static_cast<std::uint64_t>(b));
}

TEST_P(BallSchemaTest, WithCenterAlsoCoversDistance1) {
  const int b = GetParam();
  const BallSchema schema(b, /*include_center=*/true);
  const HammingProblem d1(b, 1);
  const HammingProblem d2(b, 2);
  EXPECT_TRUE(core::ValidateSchema(
                  d1, schema, static_cast<std::uint64_t>(b) + 1)
                  .ok());
  EXPECT_TRUE(core::ValidateSchema(
                  d2, schema, static_cast<std::uint64_t>(b) + 1)
                  .ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BallSchemaTest, ::testing::Values(3, 5, 8));

TEST(BallSchema, CoversQuadraticallyManyOutputs) {
  // Section 3.6: a Ball-2 reducer covers C(b,2) = Theta(q^2) outputs,
  // which is why the Lemma 3.1-style argument cannot extend to d=2.
  const int b = 8;
  const double q = b;
  const double covered = common::BinomialDouble(b, 2);
  EXPECT_GT(covered, Hamming1CoverBound(q));
}

// -------------------------- Splitting for distance d (Sec 3.6), swept

class SplittingDTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SplittingDTest, CoversDistanceDPairs) {
  const auto [b, k, d] = GetParam();
  auto schema = SplittingDistanceDSchema::Make(b, k, d);
  ASSERT_TRUE(schema.ok()) << schema.status();
  // Covers every distance d' <= d; validate for each problem instance.
  for (int dist = 1; dist <= d; ++dist) {
    const HammingProblem problem(b, dist);
    EXPECT_TRUE(core::ValidateSchema(problem, *schema,
                                     std::uint64_t{1} << (d * (b / k)))
                    .ok())
        << "dist=" << dist;
  }
  const auto stats =
      core::ComputeSchemaStats(*schema, std::uint64_t{1} << b);
  EXPECT_DOUBLE_EQ(stats.replication_rate,
                   static_cast<double>(common::BinomialExact(k, d)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplittingDTest,
                         ::testing::Values(std::tuple{8, 4, 2},
                                           std::tuple{8, 4, 3},
                                           std::tuple{12, 4, 2},
                                           std::tuple{12, 6, 2},
                                           std::tuple{12, 3, 2},
                                           std::tuple{10, 5, 3}));

TEST(SplittingDistanceD, RejectsBadParameters) {
  EXPECT_FALSE(SplittingDistanceDSchema::Make(12, 5, 2).ok());  // 5 !| 12
  EXPECT_FALSE(SplittingDistanceDSchema::Make(12, 4, 4).ok());  // d >= k
  EXPECT_FALSE(SplittingDistanceDSchema::Make(12, 4, 0).ok());
}

// ------------------------------------------------------------- bounds

TEST(Bounds, CoverBoundEdgeCases) {
  EXPECT_DOUBLE_EQ(Hamming1CoverBound(1), 0.0);  // Lemma 3.1 basis q=1
  EXPECT_DOUBLE_EQ(Hamming1CoverBound(2), 1.0);  // basis q=2
  EXPECT_DOUBLE_EQ(Hamming1CoverBound(4), 4.0);
}

TEST(Bounds, RecipeReproducesTheorem32) {
  // The generic recipe bound must equal b/log2(q) for all q.
  for (int b : {4, 8, 16}) {
    const core::Recipe recipe = Hamming1Recipe(b);
    for (double q : {2.0, 4.0, 64.0, 1024.0}) {
      EXPECT_NEAR(core::ReplicationLowerBound(recipe, q),
                  Hamming1LowerBound(b, q), 1e-12)
          << "b=" << b << " q=" << q;
    }
  }
}

TEST(Bounds, RecipeMonotonicityHolds) {
  EXPECT_TRUE(core::CheckMonotoneGOverQ(Hamming1Recipe(16), 2, 1e6).ok());
}

TEST(Bounds, SplittingDReplicationEstimate) {
  // C(k,d) <= (ek/d)^d (standard bound the paper invokes).
  for (int k : {4, 8, 16}) {
    for (int d = 1; d < k; ++d) {
      EXPECT_LE(static_cast<double>(common::BinomialExact(k, d)),
                SplittingDistanceDReplicationEstimate(k, d) + 1e-9);
    }
  }
}

TEST(Bounds, WeightCellEstimates) {
  // The 2-D estimate is the d=2 instance of the d-dimensional formula.
  const int b = 16;
  EXPECT_NEAR(Weight2DCellEstimate(b, 2), WeightKDCellEstimate(b, 2, 2),
              1e-9);
}

// ----------------------------------------------------- similarity join

class SimilarityJoinTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SimilarityJoinTest, SplittingJoinMatchesSerial) {
  const auto [b, k, d, num_strings] = GetParam();
  common::SplitMix64 rng(1234 + b * 7 + k);
  auto sample = common::SampleWithoutReplacement(std::uint64_t{1} << b,
                                                 num_strings, rng);
  std::vector<BitString> strings(sample.begin(), sample.end());

  auto result = SplittingSimilarityJoin(strings, b, k, d);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->pairs, SerialSimilarityJoin(strings, d));
  // Replication rate is exactly C(k,d) regardless of the data.
  EXPECT_DOUBLE_EQ(result->metrics.replication_rate(),
                   static_cast<double>(common::BinomialExact(k, d)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimilarityJoinTest,
    ::testing::Values(std::tuple{8, 4, 1, 100}, std::tuple{8, 4, 2, 100},
                      std::tuple{8, 4, 3, 64}, std::tuple{12, 4, 2, 300},
                      std::tuple{12, 6, 1, 500}, std::tuple{12, 3, 2, 200},
                      std::tuple{16, 4, 1, 400},
                      std::tuple{16, 8, 2, 256}));

class BallJoinTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BallJoinTest, BallJoinMatchesSerial) {
  const auto [b, d, num_strings] = GetParam();
  common::SplitMix64 rng(99 + b + d);
  auto sample = common::SampleWithoutReplacement(std::uint64_t{1} << b,
                                                 num_strings, rng);
  std::vector<BitString> strings(sample.begin(), sample.end());

  auto result = BallSimilarityJoin(strings, b, d);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->pairs, SerialSimilarityJoin(strings, d));
  // Ball join replicates each string b+1 times (ball + center).
  EXPECT_DOUBLE_EQ(result->metrics.replication_rate(), b + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BallJoinTest,
                         ::testing::Values(std::tuple{8, 1, 120},
                                           std::tuple{8, 2, 120},
                                           std::tuple{10, 2, 300},
                                           std::tuple{12, 1, 500},
                                           std::tuple{12, 2, 400}));

TEST(SimilarityJoin, RejectsUnsupportedParameters) {
  std::vector<BitString> strings{1, 2, 3};
  EXPECT_FALSE(SplittingSimilarityJoin(strings, 10, 3, 1).ok());  // 3 !| 10
  EXPECT_FALSE(BallSimilarityJoin(strings, 8, 3).ok());           // d > 2
}

TEST(SimilarityJoin, FullDomainPairCountMatchesFormula) {
  // On the full 2^b domain, the number of distance-1 pairs is (b/2)2^b.
  const int b = 8;
  auto strings = AllStrings(b);
  auto result = SplittingSimilarityJoin(strings, b, 4, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pairs.size(),
            static_cast<std::size_t>(b) * (1u << b) / 2);
}

TEST(SimilarityJoin, EmptyAndSingletonInputs) {
  EXPECT_TRUE(SplittingSimilarityJoin({}, 8, 4, 1)->pairs.empty());
  EXPECT_TRUE(SplittingSimilarityJoin({5}, 8, 4, 1)->pairs.empty());
  EXPECT_TRUE(BallSimilarityJoin({}, 8, 2)->pairs.empty());
}

// ------------------------------------- empirical g(q) (Sec 3.6 probe)

TEST(Coverage, ExactMatchesLemma31AtPowersOfTwo) {
  // Lemma 3.1 is tight at q = 2^j: the best q-subset is a sub-hypercube
  // with (q/2) log2 q distance-1 pairs. The exact search must find it.
  for (int b : {3, 4, 5}) {
    for (int j = 0; j <= 3 && j <= b; ++j) {
      const int q = 1 << j;
      EXPECT_EQ(ExactMaxCoverage(b, 1, q),
                static_cast<std::uint64_t>(q / 2 * j))
          << "b=" << b << " q=" << q;
    }
  }
}

TEST(Coverage, ExactNeverExceedsLemma31) {
  for (int b : {4, 5}) {
    for (int q = 2; q <= 8; ++q) {
      EXPECT_LE(static_cast<double>(ExactMaxCoverage(b, 1, q)),
                Hamming1CoverBound(q) + 1e-9)
          << "b=" << b << " q=" << q;
    }
  }
}

TEST(Coverage, GreedyIsALowerBoundOnExact) {
  for (int b : {4, 5}) {
    for (int d : {1, 2}) {
      for (int q : {3, 5, 7}) {
        EXPECT_LE(GreedyCoverage(b, d, q), ExactMaxCoverage(b, d, q))
            << "b=" << b << " d=" << d << " q=" << q;
      }
    }
  }
}

TEST(Coverage, Distance2GrowsQuadratically) {
  // Section 3.6: for d = 2 the Ball-2 construction shows g(q) =
  // Omega(q^2) for q <= b+1 — far above the (q/2)log2(q) shape of d=1.
  // The exact search confirms: at b=5, q=6 a ball already packs C(5,2)=10
  // distance-2 pairs while the d=1 optimum is 8.
  EXPECT_GE(ExactMaxCoverage(5, 2, 6), 10u);
  EXPECT_EQ(ExactMaxCoverage(5, 1, 8), 12u);  // (8/2) log2 8 = 12
}

TEST(Coverage, FullDomainIsExactFormula) {
  // q = 2^b: all C(b,d) 2^{b-1} pairs are covered.
  EXPECT_EQ(ExactMaxCoverage(4, 1, 16), 4u * 8 / 1);
  EXPECT_EQ(ExactMaxCoverage(4, 2, 16),
            common::BinomialExact(4, 2) * 8);
}

TEST(Coverage, MonotoneInQ) {
  std::uint64_t prev = 0;
  for (int q = 1; q <= 8; ++q) {
    const std::uint64_t cur = ExactMaxCoverage(4, 2, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace mrcost::hamming
