#ifndef MRCOST_ENGINE_PIPELINE_H_
#define MRCOST_ENGINE_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/lower_bound.h"
#include "src/engine/job.h"
#include "src/engine/metrics.h"
#include "src/obs/export.h"

namespace mrcost::engine {

/// Knobs for a multi-round pipeline.
struct PipelineOptions {
  /// Pool size when the pipeline owns its pool. 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Optional external pool; when set the pipeline does not construct one.
  common::ThreadPool* pool = nullptr;
  /// Defaults applied to every round (num_shards, shuffle config,
  /// simulation knobs). A per-round JobOptions passed to AddRound is
  /// merged over these defaults field-wise (MergedJobOptions): fields the
  /// round leaves unset inherit the default — a round overriding only
  /// `num_shards` still runs under the defaults' memory budget. The pool
  /// field is always overridden with the pipeline's shared pool.
  JobOptions round_defaults;
  /// Pipeline-wide cluster simulation: applied to any round whose own
  /// options leave simulation off, so one knob simulates every round of a
  /// multi-round computation under the same cluster.
  SimulationOptions simulation;
  /// Pipeline-wide shuffle backstop, mirroring `simulation`: any shuffle
  /// field a round (and the round defaults) leaves unset inherits this
  /// config field-wise, so one setting runs every round of a multi-round
  /// computation under the same external-shuffle budget. See
  /// ShuffleConfig's comment for the full resolution order.
  ShuffleConfig shuffle;
  /// When non-empty, the pipeline's whole lifetime runs inside an obs
  /// capture scope (same semantics as ExecutionOptions::trace_out /
  /// metrics_out); files are written when the pipeline is destroyed.
  std::string trace_out;
  std::string metrics_out;
};

/// Multi-round map-reduce driver: one thread pool shared by every round
/// (instead of a pool constructed and torn down per RunMapReduce call) and
/// one PipelineMetrics accumulating each round's exact JobMetrics. Rounds
/// execute eagerly as they are added — the outputs of round k are returned
/// so they can be fed (or transformed) into round k+1 — which keeps the
/// API fully typed without erasing Key/Value/Output types.
///
/// This is the engine-level form of the paper's multi-round computations:
/// Section 6.3's two-phase matrix multiplication and Section 7.1's
/// join-then-aggregate pipelines are both two AddRound calls.
class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});
  /// Convenience: a pipeline matching one round's JobOptions (pool or
  /// thread count, shard count, worker simulation) — what the four problem
  /// family drivers construct from their caller-facing options argument.
  explicit Pipeline(const JobOptions& round_defaults);

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Runs one plain round on the shared pool, records its metrics, and
  /// returns the reducer outputs (deterministic first-seen key order).
  template <typename Input, typename Key, typename Value, typename Output,
            typename MapFn, typename ReduceFn>
  std::vector<Output> AddRound(const std::vector<Input>& inputs,
                               MapFn&& map_fn, ReduceFn&& reduce_fn,
                               std::optional<JobOptions> round_options =
                                   std::nullopt) {
    auto result = RunMapReduce<Input, Key, Value, Output>(
        inputs, std::forward<MapFn>(map_fn),
        std::forward<ReduceFn>(reduce_fn), Resolve(round_options));
    metrics_.Add(std::move(result.metrics));
    return std::move(result.outputs);
  }

  /// Runs one round with a map-side combiner (see RunMapReduceCombined).
  template <typename Input, typename Key, typename Value, typename Output,
            typename MapFn, typename CombineFn, typename ReduceFn>
  std::vector<Output> AddCombinedRound(const std::vector<Input>& inputs,
                                       MapFn&& map_fn,
                                       CombineFn&& combine_fn,
                                       ReduceFn&& reduce_fn,
                                       std::optional<JobOptions>
                                           round_options = std::nullopt) {
    auto result = RunMapReduceCombined<Input, Key, Value, Output>(
        inputs, std::forward<MapFn>(map_fn),
        std::forward<CombineFn>(combine_fn),
        std::forward<ReduceFn>(reduce_fn), Resolve(round_options));
    metrics_.Add(std::move(result.metrics));
    return std::move(result.outputs);
  }

  common::ThreadPool& pool() { return pool_ref_.get(); }
  std::size_t num_rounds() const { return metrics_.rounds.size(); }
  const PipelineMetrics& metrics() const { return metrics_; }
  /// Moves the accumulated metrics out (for result structs), leaving the
  /// pipeline empty.
  PipelineMetrics TakeMetrics() { return std::move(metrics_); }

 private:
  /// The pool-sizing JobOptions internal::PoolRef expects, derived from
  /// pipeline options.
  static JobOptions PoolSizing(const PipelineOptions& options);

  JobOptions Resolve(const std::optional<JobOptions>& round_options);

  PipelineOptions options_;
  /// Declared before pool_ref_ so capture outlives the rounds' tasks and
  /// is written only after the pool has drained at destruction.
  std::optional<obs::ScopedCapture> capture_;
  internal::PoolRef pool_ref_;
  PipelineMetrics metrics_;
};

/// Realized-vs-bound accounting for one round of a pipeline, in the
/// paper's coordinates: the realized reducer load q (max input-list
/// length), the realized replication rate r = pairs_shuffled / num_inputs,
/// and the Section 2.4 recipe lower bound on r at that q (clamped at the
/// trivial r >= 1).
struct RoundCostReport {
  std::size_t round = 0;  // 1-based, matching PipelineMetrics::ToString
  double realized_q = 0;
  double realized_r = 0;
  double lower_bound_r = 0;
  /// realized_r / lower_bound_r. For a round that solves the recipe's
  /// problem outright this is >= 1 (Equation 4), and close to 1 means the
  /// schema is communication-optimal at its q. A ratio below 1 is not a
  /// bound violation — it is the signature of a round that only computes
  /// partial results (e.g. round 1 of Section 6.3's two-phase matmul),
  /// quantifying exactly how much the multi-round computation evades the
  /// single-round tradeoff.
  double optimality_ratio = 0;

  /// Cluster-simulation results for the round, copied from JobMetrics when
  /// the round was simulated (see src/engine/simulator.h): how the paper's
  /// q/r point actually behaved on the simulated cluster.
  bool simulated = false;
  double makespan = 0;
  double load_imbalance = 0;
  double straggler_impact = 0;
  std::uint64_t capacity_violations = 0;

  /// Skew-defense counters for the round, copied from JobMetrics (all
  /// zero when no defense ran): speculative backups launched/won, hot
  /// keys split, and the shard-placement skew the partitioner realized.
  std::uint64_t speculative_launched = 0;
  std::uint64_t speculative_won = 0;
  std::uint64_t hot_keys_split = 0;
  double partition_skew_ratio = 0;

  /// External-shuffle spill counters for the round, copied from JobMetrics
  /// when the round shuffled externally (see src/storage/): how much of
  /// the round's communication had to move through disk to fit the memory
  /// budget.
  bool external_shuffle = false;
  std::uint64_t spill_runs = 0;
  std::uint64_t spill_bytes_written = 0;
  std::uint64_t merge_passes = 0;
  /// Raw/encoded ratio over the round's spilled blocks (0 = no spill).
  double compression_ratio = 0;

  /// Columnar-block counters for the round, copied from JobMetrics:
  /// blocks the map stage handed downstream, and the bytes physically
  /// copied into them (vs bytes_shuffled crossing the shuffle).
  std::uint64_t blocks_emitted = 0;
  std::uint64_t bytes_copied = 0;

  /// Stage-graph timings for the round, copied from JobMetrics when the
  /// round ran timed (see src/engine/executor.h): where the round's wall
  /// clock went, what the stage barriers cost, and how much adjacent
  /// stages overlapped — the execution-side cost the paper's per-round
  /// (q, r) pricing abstracts away.
  bool timed = false;
  double map_ms = 0;
  double shuffle_ms = 0;
  double reduce_ms = 0;
  double barrier_wait_ms = 0;
  double overlap_fraction = 0;
};

/// Evaluates every round of `metrics` against `recipe`'s lower bound.
std::vector<RoundCostReport> CompareToLowerBound(
    const PipelineMetrics& metrics, const core::Recipe& recipe);

/// Single-round convenience: evaluates one JobMetrics (a one-round job or
/// schema-stat synthesis) against `recipe` — what the bench tables call.
RoundCostReport CompareToLowerBound(const JobMetrics& metrics,
                                    const core::Recipe& recipe);

std::string ToString(const std::vector<RoundCostReport>& reports);

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_PIPELINE_H_
