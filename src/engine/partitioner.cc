#include "src/engine/partitioner.h"

#include <utility>

namespace mrcost::engine {

RangePartitioner BuildRangePartitioner(
    std::vector<std::uint64_t> sampled_hashes, std::size_t num_shards) {
  MRCOST_CHECK(num_shards > 0);
  std::vector<std::uint64_t> bounds;
  if (num_shards > 1 && !sampled_hashes.empty()) {
    std::sort(sampled_hashes.begin(), sampled_hashes.end());
    bounds.reserve(num_shards - 1);
    const std::size_t n = sampled_hashes.size();
    for (std::size_t p = 1; p < num_shards; ++p) {
      // The cut sits *after* the p-th equal-count slice. Using the next
      // strictly larger hash as the (exclusive) boundary keeps every
      // occurrence of the boundary hash in the left shard.
      const std::uint64_t at = sampled_hashes[p * n / num_shards];
      const auto above = std::upper_bound(sampled_hashes.begin(),
                                          sampled_hashes.end(), at);
      if (above == sampled_hashes.end()) break;  // tail is one hash
      const std::uint64_t cut = *above;
      if (!bounds.empty() && cut <= bounds.back()) continue;
      bounds.push_back(cut);
    }
  } else if (num_shards > 1) {
    // No sample: equal-width ranges, the uniform-key behaviour.
    const std::uint64_t width = ~std::uint64_t{0} / num_shards;
    for (std::size_t p = 1; p < num_shards; ++p) {
      bounds.push_back(width * p);
    }
  }
  return RangePartitioner(std::move(bounds), num_shards);
}

RangePartitioner BuildWeightedRangePartitioner(
    std::vector<std::pair<std::uint64_t, double>> items,
    std::size_t num_shards) {
  MRCOST_CHECK(num_shards > 0);
  std::vector<std::uint64_t> bounds;
  if (num_shards > 1 && !items.empty()) {
    std::sort(items.begin(), items.end());
    double remaining = 0;
    for (const auto& [hash, weight] : items) remaining += weight;
    bounds.reserve(num_shards - 1);
    double acc = 0;
    std::size_t ranges_left = num_shards;
    for (std::size_t i = 0; i + 1 < items.size(); ++i) {
      acc += items[i].second;
      remaining -= items[i].second;
      // Close the range once it carries its share of what is left; the
      // target re-averages over the remaining ranges so early heavy items
      // do not starve the tail of boundaries.
      if (ranges_left > 1 &&
          acc >= remaining / static_cast<double>(ranges_left - 1) &&
          items[i + 1].first > items[i].first) {
        bounds.push_back(items[i + 1].first);
        --ranges_left;
        acc = 0;
        if (ranges_left == 1) break;
      }
    }
  }
  return RangePartitioner(std::move(bounds), num_shards);
}

}  // namespace mrcost::engine
