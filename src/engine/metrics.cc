#include "src/engine/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/obs/registry.h"

namespace mrcost::engine {

void JobMetrics::PublishTo(obs::Registry& registry) const {
  registry.AddCounter("engine.rounds");
  registry.AddCounter("engine.inputs", num_inputs);
  registry.AddCounter("engine.pairs_shuffled", pairs_shuffled);
  registry.AddCounter("engine.pairs_before_combine", pairs_before_combine);
  registry.AddCounter("engine.bytes_shuffled", bytes_shuffled);
  registry.AddCounter("engine.reducers", num_reducers);
  registry.AddCounter("engine.outputs", num_outputs);
  registry.AddCounter("engine.blocks_emitted", blocks_emitted);
  registry.AddCounter("engine.bytes_copied", bytes_copied);
  if (external_shuffle()) {
    registry.AddCounter("engine.spill_runs", spill_runs);
    registry.AddCounter("engine.spill_bytes_written", spill_bytes_written);
    registry.AddCounter("engine.merge_passes", merge_passes);
  }
  if (speculative_launched > 0) {
    registry.AddCounter("engine.speculative_launched", speculative_launched);
    registry.AddCounter("engine.speculative_won", speculative_won);
  }
  if (hot_keys_split > 0) {
    registry.AddCounter("engine.hot_keys_split", hot_keys_split);
  }
  if (capacity_violations > 0) {
    registry.AddCounter("engine.capacity_violations", capacity_violations);
  }
  registry.MergeStats("engine.reducer_sizes", reducer_sizes);
  if (simulated()) {
    registry.MergeStats("engine.worker_loads", worker_loads);
    registry.SetGauge("engine.last_makespan", makespan);
    registry.SetGauge("engine.last_load_imbalance", load_imbalance);
    registry.SetGauge("engine.last_straggler_impact", straggler_impact);
  }
  if (partition_skew_ratio > 0) {
    registry.SetGauge("engine.last_partition_skew_ratio",
                      partition_skew_ratio);
  }
  if (compression_ratio > 0) {
    registry.SetGauge("engine.last_compression_ratio", compression_ratio);
  }
  if (timed()) {
    registry.ObserveStats("engine.round_span_ms", span_ms);
    registry.ObserveStats("engine.barrier_wait_ms", barrier_wait_ms);
    registry.ObserveStats("engine.overlap_ms", overlap_ms);
  }
}

std::string JobMetrics::ToString() const {
  std::ostringstream os;
  os << "inputs=" << num_inputs << " pairs=" << pairs_shuffled;
  if (pairs_before_combine != pairs_shuffled) {
    os << " (pre-combine " << pairs_before_combine << ")";
  }
  os << " bytes=" << bytes_shuffled << " reducers=" << num_reducers
     << " max_q=" << max_reducer_input << " outputs=" << num_outputs
     << " r=" << replication_rate();
  if (external_shuffle()) {
    os << " | spill: runs=" << spill_runs
       << " bytes=" << spill_bytes_written
       << " merge_passes=" << merge_passes;
    if (compression_ratio > 0) os << " compression=" << compression_ratio;
  }
  if (blocks_emitted > 0) {
    os << " | blocks: emitted=" << blocks_emitted
       << " copied_bytes=" << bytes_copied;
  }
  if (simulated()) {
    os << " | sim: workers=" << worker_loads.count()
       << " makespan=" << makespan << " imbalance=" << load_imbalance
       << " straggler_impact=" << straggler_impact
       << " capacity_violations=" << capacity_violations;
  }
  if (speculative_launched > 0 || hot_keys_split > 0 ||
      partition_skew_ratio > 0) {
    os << " | defense:";
    if (partition_skew_ratio > 0) {
      os << " partition_skew=" << partition_skew_ratio;
    }
    if (speculative_launched > 0) {
      os << " speculative=" << speculative_won << "/" << speculative_launched;
    }
    if (hot_keys_split > 0) os << " hot_keys_split=" << hot_keys_split;
  }
  if (timed()) {
    os << " | stages: map=" << map_ms << "ms shuffle=" << shuffle_ms
       << "ms reduce=" << reduce_ms << "ms barrier_wait=" << barrier_wait_ms
       << "ms overlap=" << overlap_fraction();
  }
  return os.str();
}

std::uint64_t PipelineMetrics::total_pairs() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds) total += m.pairs_shuffled;
  return total;
}

std::uint64_t PipelineMetrics::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds) total += m.bytes_shuffled;
  return total;
}

std::uint64_t PipelineMetrics::max_reducer_input() const {
  std::uint64_t max_q = 0;
  for (const auto& m : rounds) max_q = std::max(max_q, m.max_reducer_input);
  return max_q;
}

double PipelineMetrics::max_makespan() const {
  double worst = 0;
  for (const auto& m : rounds) worst = std::max(worst, m.makespan);
  return worst;
}

double PipelineMetrics::total_makespan() const {
  double total = 0;
  for (const auto& m : rounds) total += m.makespan;
  return total;
}

double PipelineMetrics::max_load_imbalance() const {
  double worst = 0;
  for (const auto& m : rounds) worst = std::max(worst, m.load_imbalance);
  return worst;
}

std::uint64_t PipelineMetrics::total_capacity_violations() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds) total += m.capacity_violations;
  return total;
}

std::uint64_t PipelineMetrics::total_spill_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds) total += m.spill_bytes_written;
  return total;
}

std::uint64_t PipelineMetrics::total_spill_runs() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds) total += m.spill_runs;
  return total;
}

std::uint64_t PipelineMetrics::total_merge_passes() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds) total += m.merge_passes;
  return total;
}

std::uint64_t PipelineMetrics::total_speculative_launched() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds) total += m.speculative_launched;
  return total;
}

std::uint64_t PipelineMetrics::total_speculative_won() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds) total += m.speculative_won;
  return total;
}

std::uint64_t PipelineMetrics::total_hot_keys_split() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds) total += m.hot_keys_split;
  return total;
}

double PipelineMetrics::max_partition_skew_ratio() const {
  double worst = 0;
  for (const auto& m : rounds) worst = std::max(worst, m.partition_skew_ratio);
  return worst;
}

double PipelineMetrics::total_barrier_wait_ms() const {
  double total = 0;
  for (const auto& m : rounds) total += m.barrier_wait_ms;
  return total;
}

double PipelineMetrics::total_overlap_ms() const {
  double total = streamed_overlap_ms;
  for (const auto& m : rounds) total += m.overlap_ms;
  return total;
}

double PipelineMetrics::overlap_fraction() const {
  double span = exec_span_ms;
  if (span <= 0) {
    for (const auto& m : rounds) span += m.span_ms;
  }
  return span > 0 ? total_overlap_ms() / span : 0.0;
}

double PipelineMetrics::replication_rate(std::size_t i) const {
  return i < rounds.size() ? rounds[i].replication_rate() : 0.0;
}

double PipelineMetrics::total_replication_rate() const {
  if (rounds.empty() || rounds.front().num_inputs == 0) return 0.0;
  return static_cast<double>(total_pairs()) /
         static_cast<double>(rounds.front().num_inputs);
}

std::string PipelineMetrics::ToString() const {
  std::ostringstream os;
  os << rounds.size() << " round(s), total pairs=" << total_pairs()
     << ", total bytes=" << total_bytes()
     << ", total r=" << total_replication_rate();
  if (total_merge_passes() > 0) {
    os << ", spill runs=" << total_spill_runs()
       << ", spill bytes=" << total_spill_bytes();
  }
  if (total_capacity_violations() > 0 || max_makespan() > 0) {
    os << ", sim makespan=" << total_makespan()
       << ", worst imbalance=" << max_load_imbalance()
       << ", capacity violations=" << total_capacity_violations();
  }
  if (total_speculative_launched() > 0 || total_hot_keys_split() > 0) {
    os << ", speculative=" << total_speculative_won() << "/"
       << total_speculative_launched()
       << ", hot keys split=" << total_hot_keys_split();
  }
  if (total_overlap_ms() > 0 || streamed_rounds > 0) {
    os << ", overlap=" << overlap_fraction()
       << " (streamed rounds=" << streamed_rounds
       << "), barrier wait=" << total_barrier_wait_ms() << "ms";
  }
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    os << "\n  round " << i + 1 << ": " << rounds[i].ToString();
  }
  return os.str();
}

}  // namespace mrcost::engine
