#ifndef MRCOST_ENGINE_BYTE_SIZE_H_
#define MRCOST_ENGINE_BYTE_SIZE_H_

#include <cstddef>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace mrcost::engine {

/// Estimated wire size of a value, used for the engine's byte-level
/// communication accounting. Trivially copyable types count their object
/// size; strings and vectors count contents plus a length word. User types
/// can specialize ByteSizeOf or expose a `ByteSize()` member.
///
/// All overloads are declared before any definition so that overloads for
/// std:: containers are visible from inside the composite overloads
/// (ordinary lookup happens at template definition time; ADL would not
/// find them in namespace mrcost::engine).
template <typename T>
std::size_t ByteSizeOf(const T& value);
template <typename A, typename B>
std::size_t ByteSizeOf(const std::pair<A, B>& p);
template <typename... Ts>
std::size_t ByteSizeOf(const std::tuple<Ts...>& t);
inline std::size_t ByteSizeOf(const std::string& s);
template <typename T>
std::size_t ByteSizeOf(const std::vector<T>& v);

namespace internal {

template <typename T, typename = void>
struct HasByteSizeMember : std::false_type {};

template <typename T>
struct HasByteSizeMember<T,
                         std::void_t<decltype(std::declval<const T&>()
                                                  .ByteSize())>>
    : std::true_type {};

}  // namespace internal

template <typename A, typename B>
std::size_t ByteSizeOf(const std::pair<A, B>& p) {
  return ByteSizeOf(p.first) + ByteSizeOf(p.second);
}

template <typename... Ts>
std::size_t ByteSizeOf(const std::tuple<Ts...>& t) {
  return std::apply(
      [](const Ts&... elems) { return (std::size_t{0} + ... +
                                       ByteSizeOf(elems)); },
      t);
}

inline std::size_t ByteSizeOf(const std::string& s) {
  return sizeof(std::size_t) + s.size();
}

template <typename T>
std::size_t ByteSizeOf(const std::vector<T>& v) {
  std::size_t total = sizeof(std::size_t);
  for (const T& x : v) total += ByteSizeOf(x);
  return total;
}

template <typename T>
std::size_t ByteSizeOf(const T& value) {
  if constexpr (internal::HasByteSizeMember<T>::value) {
    return value.ByteSize();
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteSizeOf: provide an overload, a ByteSize() member, or "
                  "a trivially copyable type");
    return sizeof(T);
  }
}

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_BYTE_SIZE_H_
