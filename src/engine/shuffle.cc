#include "src/engine/shuffle.h"

namespace mrcost::engine {

const char* ToString(ShuffleStrategy strategy) {
  switch (strategy) {
    case ShuffleStrategy::kAuto: return "auto";
    case ShuffleStrategy::kSerial: return "serial";
    case ShuffleStrategy::kSharded: return "sharded";
    case ShuffleStrategy::kExternal: return "external";
  }
  return "?";
}

const char* ToString(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kAuto: return "auto";
    case PartitionerKind::kHash: return "hash";
    case PartitionerKind::kSampledRange: return "sampled-range";
  }
  return "?";
}

std::size_t ResolveShardCount(std::size_t requested, std::size_t num_threads,
                              std::size_t num_pairs) {
  if (requested > 0) return requested;
  if (num_threads <= 1) return 1;
  // One shard per thread, but never so many that shards average fewer than
  // ~4k pairs — below that the hashing prepass and merge dominate and the
  // serial path wins.
  constexpr std::size_t kMinPairsPerShard = 4096;
  const std::size_t useful = num_pairs / kMinPairsPerShard;
  return std::max<std::size_t>(1, std::min(num_threads, useful));
}

}  // namespace mrcost::engine
