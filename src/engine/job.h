#ifndef MRCOST_ENGINE_JOB_H_
#define MRCOST_ENGINE_JOB_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/engine/byte_size.h"
#include "src/engine/hashing.h"
#include "src/engine/metrics.h"

namespace mrcost::engine {

/// Mapper-side sink: map functions call Emit once per key-value pair. Every
/// Emit is one unit of mapper->reducer communication; the engine charges it
/// to JobMetrics exactly (Section 2.2's cost model).
template <typename Key, typename Value>
class Emitter {
 public:
  void Emit(Key key, Value value) {
    bytes_ += ByteSizeOf(key) + ByteSizeOf(value);
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::pair<Key, Value>>& pairs() { return pairs_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::vector<std::pair<Key, Value>> pairs_;
  std::uint64_t bytes_ = 0;
};

/// Execution knobs for one round.
struct JobOptions {
  /// Threads used to run map and reduce tasks. 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// If nonzero, reduce keys are additionally assigned (by hash) to this
  /// many simulated reduce workers and JobMetrics::worker_loads reports the
  /// per-worker input load — the "reduce-worker is assigned many keys"
  /// model of Section 1.1.
  std::size_t num_simulated_workers = 0;

  std::size_t ResolvedThreads() const {
    if (num_threads > 0) return num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
  }
};

/// Result of one round: reducer outputs (in deterministic first-seen key
/// order) plus the exact cost metrics.
template <typename Output>
struct JobResult {
  std::vector<Output> outputs;
  JobMetrics metrics;
};

/// Runs one map-reduce round.
///
/// `map_fn`   : void(const Input&, Emitter<Key, Value>&)
/// `reduce_fn`: void(const Key&, const std::vector<Value>&,
///              std::vector<Output>&)
///
/// Semantics mirror the paper's model: every input is mapped independently
/// (Section 2.3), pairs are shuffled by key, and each distinct key forms one
/// reducer whose input list is the values emitted for it, in input order.
/// Determinism: outputs are grouped in first-seen key order and value lists
/// preserve input order regardless of thread count.
template <typename Input, typename Key, typename Value, typename Output,
          typename MapFn, typename ReduceFn>
JobResult<Output> RunMapReduce(const std::vector<Input>& inputs,
                               MapFn&& map_fn, ReduceFn&& reduce_fn,
                               const JobOptions& options = {}) {
  JobResult<Output> result;
  JobMetrics& metrics = result.metrics;
  metrics.num_inputs = inputs.size();

  common::ThreadPool pool(options.ResolvedThreads());

  // ---- Map phase: chunked across threads, buffered per chunk so that the
  // merge below can preserve input order deterministically.
  const std::size_t num_chunks =
      std::max<std::size_t>(1, std::min(inputs.size(),
                                        options.ResolvedThreads() * 4));
  const std::size_t chunk_size =
      inputs.empty() ? 0 : (inputs.size() + num_chunks - 1) / num_chunks;
  std::vector<Emitter<Key, Value>> emitters(num_chunks);
  if (!inputs.empty()) {
    common::ParallelFor(pool, 0, num_chunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(lo + chunk_size, inputs.size());
      for (std::size_t i = lo; i < hi; ++i) {
        map_fn(inputs[i], emitters[c]);
      }
    });
  }

  // ---- Shuffle: group values by key, first-seen key order.
  std::unordered_map<Key, std::size_t, KeyHash> key_index;
  std::vector<Key> keys;
  std::vector<std::vector<Value>> groups;
  for (auto& emitter : emitters) {
    metrics.bytes_shuffled += emitter.bytes();
    for (auto& [key, value] : emitter.pairs()) {
      ++metrics.pairs_shuffled;
      auto [it, inserted] = key_index.try_emplace(key, keys.size());
      if (inserted) {
        keys.push_back(key);
        groups.emplace_back();
      }
      groups[it->second].push_back(std::move(value));
    }
    emitter.pairs().clear();
  }
  metrics.pairs_before_combine = metrics.pairs_shuffled;

  metrics.num_reducers = keys.size();
  for (const auto& group : groups) {
    metrics.reducer_sizes.Add(static_cast<double>(group.size()));
    metrics.max_reducer_input =
        std::max<std::uint64_t>(metrics.max_reducer_input, group.size());
  }

  // ---- Optional cluster placement simulation.
  if (options.num_simulated_workers > 0) {
    std::vector<std::uint64_t> load(options.num_simulated_workers, 0);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      load[HashValue(keys[i]) % options.num_simulated_workers] +=
          groups[i].size();
    }
    for (std::uint64_t l : load) {
      metrics.worker_loads.Add(static_cast<double>(l));
    }
  }

  // ---- Reduce phase: parallel across keys, buffered per key so the final
  // concatenation is in deterministic key order.
  std::vector<std::vector<Output>> per_key_outputs(keys.size());
  common::ParallelFor(pool, 0, keys.size(), [&](std::size_t i) {
    reduce_fn(keys[i], groups[i], per_key_outputs[i]);
  });

  std::size_t total_outputs = 0;
  for (const auto& v : per_key_outputs) total_outputs += v.size();
  result.outputs.reserve(total_outputs);
  for (auto& v : per_key_outputs) {
    for (auto& out : v) result.outputs.push_back(std::move(out));
  }
  metrics.num_outputs = result.outputs.size();
  return result;
}

/// Runs one map-reduce round with a map-side combiner, the standard
/// Hadoop-style optimization: each mapper chunk pre-merges the values it
/// emitted for the same key with the associative `combine_fn`
/// (Value x Value -> Value) before the shuffle. Semantically equivalent to
/// RunMapReduce whenever `combine_fn` agrees with how `reduce_fn` folds
/// its value list; the difference shows up only in the metrics:
/// pairs_shuffled counts post-combine traffic while pairs_before_combine
/// preserves the raw map output count.
///
/// This is the footnote-1 point of the paper made executable: mapper-side
/// computation can trade against communication, but it cannot reduce the
/// number of *distinct* (reducer, key) deliveries a mapping schema
/// requires — combiners help aggregation-shaped problems (Examples 2.4,
/// 2.5) and do nothing for join-shaped ones.
template <typename Input, typename Key, typename Value, typename Output,
          typename MapFn, typename CombineFn, typename ReduceFn>
JobResult<Output> RunMapReduceCombined(const std::vector<Input>& inputs,
                                       MapFn&& map_fn,
                                       CombineFn&& combine_fn,
                                       ReduceFn&& reduce_fn,
                                       const JobOptions& options = {}) {
  JobResult<Output> result;
  JobMetrics& metrics = result.metrics;
  metrics.num_inputs = inputs.size();

  common::ThreadPool pool(options.ResolvedThreads());

  const std::size_t num_chunks =
      std::max<std::size_t>(1, std::min(inputs.size(),
                                        options.ResolvedThreads() * 4));
  const std::size_t chunk_size =
      inputs.empty() ? 0 : (inputs.size() + num_chunks - 1) / num_chunks;
  std::vector<Emitter<Key, Value>> emitters(num_chunks);
  std::vector<std::uint64_t> raw_pairs(num_chunks, 0);
  std::vector<std::uint64_t> combined_bytes(num_chunks, 0);
  // Per-chunk combined output, in first-seen key order for determinism.
  std::vector<std::vector<std::pair<Key, Value>>> combined(num_chunks);
  if (!inputs.empty()) {
    common::ParallelFor(pool, 0, num_chunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(lo + chunk_size, inputs.size());
      for (std::size_t i = lo; i < hi; ++i) {
        map_fn(inputs[i], emitters[c]);
      }
      raw_pairs[c] = emitters[c].pairs().size();
      // Combine within the chunk.
      std::unordered_map<Key, std::size_t, KeyHash> local_index;
      auto& out = combined[c];
      for (auto& [key, value] : emitters[c].pairs()) {
        auto [it, inserted] = local_index.try_emplace(key, out.size());
        if (inserted) {
          out.emplace_back(key, std::move(value));
        } else {
          out[it->second].second =
              combine_fn(std::move(out[it->second].second),
                         std::move(value));
        }
      }
      emitters[c].pairs().clear();
      std::uint64_t bytes = 0;
      for (const auto& [key, value] : out) {
        bytes += ByteSizeOf(key) + ByteSizeOf(value);
      }
      combined_bytes[c] = bytes;
    });
  }

  // ---- Shuffle the combined pairs.
  std::unordered_map<Key, std::size_t, KeyHash> key_index;
  std::vector<Key> keys;
  std::vector<std::vector<Value>> groups;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    metrics.pairs_before_combine += raw_pairs[c];
    metrics.bytes_shuffled += combined_bytes[c];
    for (auto& [key, value] : combined[c]) {
      ++metrics.pairs_shuffled;
      auto [it, inserted] = key_index.try_emplace(key, keys.size());
      if (inserted) {
        keys.push_back(key);
        groups.emplace_back();
      }
      groups[it->second].push_back(std::move(value));
    }
    combined[c].clear();
  }

  metrics.num_reducers = keys.size();
  for (const auto& group : groups) {
    metrics.reducer_sizes.Add(static_cast<double>(group.size()));
    metrics.max_reducer_input =
        std::max<std::uint64_t>(metrics.max_reducer_input, group.size());
  }
  if (options.num_simulated_workers > 0) {
    std::vector<std::uint64_t> load(options.num_simulated_workers, 0);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      load[HashValue(keys[i]) % options.num_simulated_workers] +=
          groups[i].size();
    }
    for (std::uint64_t l : load) {
      metrics.worker_loads.Add(static_cast<double>(l));
    }
  }

  std::vector<std::vector<Output>> per_key_outputs(keys.size());
  common::ParallelFor(pool, 0, keys.size(), [&](std::size_t i) {
    reduce_fn(keys[i], groups[i], per_key_outputs[i]);
  });
  std::size_t total_outputs = 0;
  for (const auto& v : per_key_outputs) total_outputs += v.size();
  result.outputs.reserve(total_outputs);
  for (auto& v : per_key_outputs) {
    for (auto& out : v) result.outputs.push_back(std::move(out));
  }
  metrics.num_outputs = result.outputs.size();
  return result;
}

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_JOB_H_
