#ifndef MRCOST_ENGINE_JOB_H_
#define MRCOST_ENGINE_JOB_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/byte_size.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/engine/emitter.h"
#include "src/engine/hashing.h"
#include "src/engine/metrics.h"
#include "src/engine/shuffle.h"
#include "src/engine/simulator.h"

namespace mrcost::engine {

/// Execution knobs for one round.
struct JobOptions {
  /// Threads used to run map and reduce tasks. 0 = hardware concurrency.
  /// Ignored when `pool` is set (the pool's size governs).
  std::size_t num_threads = 0;
  /// Optional caller-owned thread pool. When set, the round runs on it
  /// instead of constructing (and tearing down) a private pool — the
  /// Pipeline driver uses this to reuse one pool across every round.
  common::ThreadPool* pool = nullptr;
  /// Shuffle shards. 0 = auto (one per thread, capped for small jobs);
  /// 1 = the serial reference shuffle. Ignored by the external shuffle.
  std::size_t num_shards = 0;
  /// Shuffle configuration (strategy, memory budget, spill dir, merge
  /// fan-in) — the one ShuffleConfig shared with PipelineOptions and the
  /// external shuffle; see its comment for the field-wise resolution
  /// order. All strategies produce byte-identical outputs; only memory
  /// behaviour and metrics differ.
  ShuffleConfig shuffle;
  /// DEPRECATED legacy shorthand for `simulation.num_workers`: if nonzero
  /// (and simulation is otherwise off), reduce keys are assigned (by hash)
  /// to this many simulated reduce workers and JobMetrics::worker_loads
  /// reports the per-worker input load. New code should set
  /// `simulation.num_workers` directly; this field survives only for the
  /// ResolvedSimulation() compatibility path and will be removed once the
  /// remaining external callers migrate.
  std::size_t num_simulated_workers = 0;
  /// Full cluster-simulation knobs (per-worker queues, capacity q,
  /// stragglers, heterogeneous speeds). When enabled, JobMetrics gains
  /// makespan, load_imbalance, straggler_impact, and capacity_violations.
  /// Simulation never changes reduce outputs — only the metrics.
  SimulationOptions simulation;

  /// The simulation that actually runs: `simulation` when enabled, else
  /// the num_simulated_workers shorthand (with every other knob default).
  /// Skew/capacity knobs with num_workers left 0 are a misconfiguration
  /// (the run would silently report makespan 0 / no violations), so they
  /// fail loudly instead.
  SimulationOptions ResolvedSimulation() const {
    if (simulation.enabled()) return simulation;
    MRCOST_CHECK(!simulation.customized());
    SimulationOptions legacy;
    legacy.num_workers = num_simulated_workers;
    return legacy;
  }

  ShuffleStrategy ResolvedShuffleStrategy() const {
    return shuffle.Resolved();
  }

  std::size_t ResolvedThreads() const {
    if (pool != nullptr) return pool->num_threads();
    if (num_threads > 0) return num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
  }
};

/// Field-wise merge of per-round overrides onto defaults: every field left
/// at its unset value (0 / nullptr / kAuto / "" / disabled simulation)
/// inherits the default's value. This is the single merge rule used by
/// Pipeline round defaults and the plan executor — a round overriding only
/// `num_shards` still gets the defaults' memory budget, simulation, and
/// thread sizing.
inline JobOptions MergedJobOptions(JobOptions overrides,
                                   const JobOptions& defaults) {
  if (overrides.num_threads == 0) overrides.num_threads = defaults.num_threads;
  if (overrides.pool == nullptr) overrides.pool = defaults.pool;
  if (overrides.num_shards == 0) overrides.num_shards = defaults.num_shards;
  overrides.shuffle = overrides.shuffle.MergedOver(defaults.shuffle);
  // Simulation is one logical knob (the options struct plus the deprecated
  // worker-count shorthand): inherit it only when the override configures
  // neither half, so a round's explicit simulation always wins whole.
  if (!overrides.simulation.enabled() && !overrides.simulation.customized() &&
      overrides.num_simulated_workers == 0) {
    overrides.simulation = defaults.simulation;
    overrides.num_simulated_workers = defaults.num_simulated_workers;
  }
  return overrides;
}

/// Result of one round: reducer outputs (in deterministic first-seen key
/// order) plus the exact cost metrics.
template <typename Output>
struct JobResult {
  std::vector<Output> outputs;
  JobMetrics metrics;
};

namespace internal {

/// RAII choice between a caller-owned pool and a pool private to one round.
class PoolRef {
 public:
  explicit PoolRef(const JobOptions& options) {
    if (options.pool != nullptr) {
      pool_ = options.pool;
    } else {
      owned_.emplace(options.ResolvedThreads());
      pool_ = &*owned_;
    }
  }
  common::ThreadPool& get() { return *pool_; }

 private:
  std::optional<common::ThreadPool> owned_;
  common::ThreadPool* pool_ = nullptr;
};

/// Chunking shared by the plain and combined rounds: inputs are cut into
/// contiguous chunks, a small multiple of the thread count. Chunk
/// boundaries never affect results: downstream grouping runs in global
/// scan order, which equals emission order in input order for every
/// chunking.
inline std::size_t NumChunks(std::size_t num_inputs,
                             std::size_t num_threads) {
  return std::max<std::size_t>(1, std::min(num_inputs, num_threads * 4));
}

/// Map phase: each chunk is mapped on the pool into its own Emitter, and
/// the emitters are returned in chunk order. `configure_fn(c, emitter)`
/// runs on the chunk's pool thread before its first map call — the
/// external shuffle uses it to bind the chunk's spill sink.
template <typename Key, typename Value, typename Input, typename MapFn,
          typename ConfigureFn>
std::vector<Emitter<Key, Value>> RunMapPhase(const std::vector<Input>& inputs,
                                             MapFn&& map_fn,
                                             common::ThreadPool& pool,
                                             ConfigureFn&& configure_fn) {
  const std::size_t num_chunks = NumChunks(inputs.size(), pool.num_threads());
  const std::size_t chunk_size =
      inputs.empty() ? 0 : (inputs.size() + num_chunks - 1) / num_chunks;
  std::vector<Emitter<Key, Value>> emitters(num_chunks);
  if (!inputs.empty()) {
    common::ParallelFor(pool, 0, num_chunks, [&](std::size_t c) {
      configure_fn(c, emitters[c]);
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(lo + chunk_size, inputs.size());
      for (std::size_t i = lo; i < hi; ++i) {
        map_fn(inputs[i], emitters[c]);
      }
      emitters[c].Flush();
    });
  }
  return emitters;
}

template <typename Key, typename Value, typename Input, typename MapFn>
std::vector<Emitter<Key, Value>> RunMapPhase(const std::vector<Input>& inputs,
                                             MapFn&& map_fn,
                                             common::ThreadPool& pool) {
  return RunMapPhase<Key, Value>(inputs, std::forward<MapFn>(map_fn), pool,
                                 [](std::size_t, Emitter<Key, Value>&) {});
}

/// In-memory shuffle dispatch shared by the plain and combined rounds:
/// kSerial forces the single-map reference shuffle, everything else goes
/// through the sharded shuffle (whose shard resolution falls back to
/// serial for tiny jobs).
template <typename Key, typename Value>
ShuffleResult<Key, Value> RunInMemoryShuffle(
    std::vector<std::vector<std::pair<Key, Value>>>& chunks,
    common::ThreadPool& pool, const JobOptions& options,
    std::uint64_t num_pairs) {
  if (options.ResolvedShuffleStrategy() == ShuffleStrategy::kSerial) {
    return SerialShuffle(chunks);
  }
  return ShardedShuffle(chunks, pool,
                        ResolveShardCount(options.num_shards,
                                          pool.num_threads(),
                                          static_cast<std::size_t>(
                                              num_pairs)));
}

/// Copies one shuffle's spill counters into the round metrics.
inline void RecordSpillStats(const storage::SpillStats& stats,
                             JobMetrics& metrics) {
  metrics.spill_bytes_written = stats.spill_bytes_written;
  metrics.spill_runs = stats.spill_runs;
  metrics.merge_passes = stats.merge_passes;
}

/// Everything after the shuffle, shared by the plain and combined rounds:
/// reducer-size metrics, the optional worker-placement simulation, the
/// parallel reduce, and the deterministic concatenation of outputs.
template <typename Output, typename Key, typename Value, typename ReduceFn>
std::vector<Output> RunReducePhase(ShuffleResult<Key, Value>& shuffled,
                                   ReduceFn&& reduce_fn,
                                   const JobOptions& options,
                                   common::ThreadPool& pool,
                                   JobMetrics& metrics) {
  const std::vector<Key>& keys = shuffled.keys;
  const std::vector<std::vector<Value>>& groups = shuffled.groups;

  metrics.num_reducers = keys.size();
  for (const auto& group : groups) {
    metrics.reducer_sizes.Add(static_cast<double>(group.size()));
    metrics.max_reducer_input =
        std::max<std::uint64_t>(metrics.max_reducer_input, group.size());
  }

  // Optional cluster simulation: every reduce key becomes a ReducerLoad
  // (hash decides the worker via the same finalized-hash IndexOfHash
  // placement the sharded shuffle uses; ByteSizeOf measures its input
  // list) and the per-worker queues are drained under the configured
  // skew/straggler model. Outputs are untouched — only metrics change.
  const SimulationOptions sim = options.ResolvedSimulation();
  if (sim.enabled()) {
    // Byte accounting costs a full pass over the shuffled values; skip it
    // unless a byte-based knob actually consumes the result.
    const bool need_bytes =
        sim.cost_per_byte > 0 || sim.reducer_capacity_bytes > 0;
    std::vector<ReducerLoad> loads(keys.size());
    common::ParallelFor(pool, 0, keys.size(), [&](std::size_t i) {
      std::uint64_t bytes = 0;
      if (need_bytes) {
        bytes = common::ByteSizeOf(keys[i]);
        for (const Value& v : groups[i]) bytes += common::ByteSizeOf(v);
      }
      loads[i] = ReducerLoad{HashValue(keys[i]), groups[i].size(), bytes};
    });
    const SimulationReport report = SimulateCluster(loads, sim);
    metrics.worker_loads = report.worker_pairs;
    metrics.makespan = report.makespan;
    metrics.load_imbalance = report.load_imbalance;
    metrics.straggler_impact = report.straggler_impact;
    metrics.capacity_violations = report.capacity_violations;
  }

  // Reduce phase: parallel across keys, buffered per key so the final
  // concatenation is in deterministic key order.
  std::vector<std::vector<Output>> per_key_outputs(keys.size());
  common::ParallelFor(pool, 0, keys.size(), [&](std::size_t i) {
    reduce_fn(keys[i], groups[i], per_key_outputs[i]);
  });

  std::size_t total_outputs = 0;
  for (const auto& v : per_key_outputs) total_outputs += v.size();
  std::vector<Output> outputs;
  outputs.reserve(total_outputs);
  for (auto& v : per_key_outputs) {
    for (auto& out : v) outputs.push_back(std::move(out));
  }
  metrics.num_outputs = outputs.size();
  return outputs;
}

}  // namespace internal

/// Runs one map-reduce round.
///
/// `map_fn`   : void(const Input&, Emitter<Key, Value>&)
/// `reduce_fn`: void(const Key&, const std::vector<Value>&,
///              std::vector<Output>&)
///
/// Semantics mirror the paper's model: every input is mapped independently
/// (Section 2.3), pairs are shuffled by key, and each distinct key forms one
/// reducer whose input list is the values emitted for it, in input order.
/// Determinism: outputs are grouped in first-seen key order and value lists
/// preserve input order regardless of thread count and shard count.
template <typename Input, typename Key, typename Value, typename Output,
          typename MapFn, typename ReduceFn>
JobResult<Output> RunMapReduce(const std::vector<Input>& inputs,
                               MapFn&& map_fn, ReduceFn&& reduce_fn,
                               const JobOptions& options = {}) {
  JobResult<Output> result;
  JobMetrics& metrics = result.metrics;
  metrics.num_inputs = inputs.size();

  internal::PoolRef pool(options);

  ShuffleResult<Key, Value> shuffled;
  if (options.ResolvedShuffleStrategy() == ShuffleStrategy::kExternal) {
    // External shuffle, integrated with the map phase: every chunk's
    // emitter spills its over-budget batches through a RunWriter as the
    // chunk is still being mapped, so map output never accumulates beyond
    // the budget in memory. The unspilled tails and the disk runs are then
    // k-way merged back into groups. RunMapReduce has no error channel,
    // so environmental spill failures (disk full, unwritable spill_dir,
    // a corrupted run) CHECK-fail the round; the storage APIs themselves
    // return Status for callers that need to handle them.
    storage::RunSpiller spiller(options.shuffle.spill_dir);
    const std::size_t num_chunks =
        internal::NumChunks(inputs.size(), pool.get().num_threads());
    // Each chunk's share is split between the two buffering stages —
    // the emitter's pair buffer and the RunWriter's serialized batch —
    // which briefly coexist while a flush drains, so the chunk's peak
    // working set stays at its share rather than twice it.
    const std::uint64_t per_stage_budget =
        options.shuffle.memory_budget_bytes / num_chunks / 2;
    std::vector<std::unique_ptr<storage::RunWriter<Key, Value>>> writers(
        num_chunks);
    std::vector<common::Status> spill_status(num_chunks);
    auto configure = [&](std::size_t c, Emitter<Key, Value>& emitter) {
      writers[c] = std::make_unique<storage::RunWriter<Key, Value>>(
          &spiller, per_stage_budget, static_cast<std::uint32_t>(c));
      storage::RunWriter<Key, Value>* writer = writers[c].get();
      common::Status* status = &spill_status[c];
      emitter.SetOverflow(
          per_stage_budget,
          [writer, status](std::vector<std::pair<Key, Value>>& pairs) {
            if (!status->ok()) return;
            for (const auto& [key, value] : pairs) {
              *status = writer->Add(HashValue(key), key, value);
              if (!status->ok()) return;
            }
          });
    };
    auto emitters = internal::RunMapPhase<Key, Value>(
        inputs, std::forward<MapFn>(map_fn), pool.get(), configure);
    for (auto& emitter : emitters) {
      metrics.bytes_shuffled += emitter.bytes();
      metrics.pairs_shuffled += emitter.num_emitted();
    }
    metrics.pairs_before_combine = metrics.pairs_shuffled;
    for (const common::Status& status : spill_status) {
      MRCOST_CHECK_OK(status);
    }
    std::vector<std::vector<storage::SpillRecord>> tails(emitters.size());
    common::ParallelFor(pool.get(), 0, emitters.size(), [&](std::size_t c) {
      if (writers[c] != nullptr) tails[c] = writers[c]->TakeTail();
    });
    storage::SpillStats stats;
    auto merged = internal::MergeSpilledRuns<Key, Value>(
        spiller, tails, options.shuffle.merge_fan_in, stats);
    MRCOST_CHECK_OK(merged.status());
    internal::RecordSpillStats(stats, metrics);
    shuffled = std::move(merged.value());
  } else {
    auto emitters = internal::RunMapPhase<Key, Value>(
        inputs, std::forward<MapFn>(map_fn), pool.get());
    std::vector<std::vector<std::pair<Key, Value>>> chunks;
    chunks.reserve(emitters.size());
    for (auto& emitter : emitters) {
      metrics.bytes_shuffled += emitter.bytes();
      metrics.pairs_shuffled += emitter.num_emitted();
      chunks.push_back(std::move(emitter.pairs()));
    }
    metrics.pairs_before_combine = metrics.pairs_shuffled;
    shuffled = internal::RunInMemoryShuffle(chunks, pool.get(), options,
                                            metrics.pairs_shuffled);
  }

  result.outputs = internal::RunReducePhase<Output>(
      shuffled, std::forward<ReduceFn>(reduce_fn), options, pool.get(),
      metrics);
  return result;
}

/// Runs one map-reduce round with a map-side combiner, the standard
/// Hadoop-style optimization: each mapper chunk pre-merges the values it
/// emitted for the same key with the associative `combine_fn`
/// (Value x Value -> Value) before the shuffle. Semantically equivalent to
/// RunMapReduce whenever `combine_fn` agrees with how `reduce_fn` folds
/// its value list; the difference shows up only in the metrics:
/// pairs_shuffled counts post-combine traffic while pairs_before_combine
/// preserves the raw map output count.
///
/// This is the footnote-1 point of the paper made executable: mapper-side
/// computation can trade against communication, but it cannot reduce the
/// number of *distinct* (reducer, key) deliveries a mapping schema
/// requires — combiners help aggregation-shaped problems (Examples 2.4,
/// 2.5) and do nothing for join-shaped ones.
template <typename Input, typename Key, typename Value, typename Output,
          typename MapFn, typename CombineFn, typename ReduceFn>
JobResult<Output> RunMapReduceCombined(const std::vector<Input>& inputs,
                                       MapFn&& map_fn,
                                       CombineFn&& combine_fn,
                                       ReduceFn&& reduce_fn,
                                       const JobOptions& options = {}) {
  JobResult<Output> result;
  JobMetrics& metrics = result.metrics;
  metrics.num_inputs = inputs.size();

  internal::PoolRef pool(options);

  // Fused map + combine: each chunk is mapped into a task-local emitter
  // and combined (first-seen key order, for determinism) inside the same
  // task, so raw pre-combine pairs never outlive their chunk and bytes are
  // re-measured on the post-combine pairs that actually cross the shuffle.
  const std::size_t num_chunks =
      internal::NumChunks(inputs.size(), pool.get().num_threads());
  const std::size_t chunk_size =
      inputs.empty() ? 0 : (inputs.size() + num_chunks - 1) / num_chunks;
  std::vector<std::uint64_t> raw_pairs(num_chunks, 0);
  std::vector<std::uint64_t> combined_bytes(num_chunks, 0);
  std::vector<std::vector<std::pair<Key, Value>>> chunks(num_chunks);
  if (!inputs.empty()) {
    common::ParallelFor(pool.get(), 0, num_chunks, [&](std::size_t c) {
      Emitter<Key, Value> emitter;
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(lo + chunk_size, inputs.size());
      for (std::size_t i = lo; i < hi; ++i) {
        map_fn(inputs[i], emitter);
      }
      raw_pairs[c] = emitter.pairs().size();
      std::unordered_map<Key, std::size_t, KeyHash> local_index;
      auto& out = chunks[c];
      for (auto& [key, value] : emitter.pairs()) {
        auto [it, inserted] = local_index.try_emplace(key, out.size());
        if (inserted) {
          out.emplace_back(key, std::move(value));
        } else {
          out[it->second].second =
              combine_fn(std::move(out[it->second].second), std::move(value));
        }
      }
      std::uint64_t bytes = 0;
      for (const auto& [key, value] : out) {
        bytes += common::ByteSizeOf(key) + common::ByteSizeOf(value);
      }
      combined_bytes[c] = bytes;
    });
  }
  for (std::size_t c = 0; c < num_chunks; ++c) {
    metrics.pairs_before_combine += raw_pairs[c];
    metrics.bytes_shuffled += combined_bytes[c];
    metrics.pairs_shuffled += chunks[c].size();
  }

  // Post-combine chunks are already materialized, so the external
  // strategy routes them through the chunk-level ExternalShuffle (chunks
  // are freed as they serialize into runs).
  ShuffleResult<Key, Value> shuffled;
  if (options.ResolvedShuffleStrategy() == ShuffleStrategy::kExternal) {
    storage::SpillStats stats;
    auto merged =
        ExternalShuffle(chunks, pool.get(), options.shuffle, &stats);
    MRCOST_CHECK_OK(merged.status());
    internal::RecordSpillStats(stats, metrics);
    shuffled = std::move(merged.value());
  } else {
    shuffled = internal::RunInMemoryShuffle(chunks, pool.get(), options,
                                            metrics.pairs_shuffled);
  }

  result.outputs = internal::RunReducePhase<Output>(
      shuffled, std::forward<ReduceFn>(reduce_fn), options, pool.get(),
      metrics);
  return result;
}

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_JOB_H_
