#ifndef MRCOST_ENGINE_JOB_H_
#define MRCOST_ENGINE_JOB_H_

#include <type_traits>
#include <utility>
#include <vector>

#include "src/engine/executor.h"

namespace mrcost::engine {

// One-round entry points over the stage-graph executor (executor.h).
// JobOptions / JobResult / MergedJobOptions live there too — this header
// re-exports them, so callers keep including src/engine/job.h.

/// Runs one map-reduce round.
///
/// `map_fn`   : void(const Input&, Emitter<Key, Value>&)
/// `reduce_fn`: void(const Key&, const std::vector<Value>&,
///              std::vector<Output>&)
///
/// Semantics mirror the paper's model: every input is mapped independently
/// (Section 2.3), pairs are shuffled by key, and each distinct key forms one
/// reducer whose input list is the values emitted for it, in input order.
/// Determinism: outputs are grouped in first-seen key order and value lists
/// preserve input order regardless of thread count, shard count, and task
/// schedule — the staged executor tags every pair with its scan position
/// and merges on tags, so the barrier engine's ordering contract survives
/// the barriers' removal. The round executes as a task graph (map chunks ->
/// per-shard grouping -> per-shard reduce -> finalize): a shard whose group
/// is complete starts reducing while other shards still group, and
/// JobMetrics reports the stage timings, barrier wait, and overlap.
///
/// The external shuffle has no error channel here: environmental spill
/// failures (disk full, unwritable spill_dir, a corrupted run) CHECK-fail
/// the round; the storage APIs themselves return Status for callers that
/// need to handle them.
template <typename Input, typename Key, typename Value, typename Output,
          typename MapFn, typename ReduceFn>
JobResult<Output> RunMapReduce(const std::vector<Input>& inputs,
                               MapFn&& map_fn, ReduceFn&& reduce_fn,
                               const JobOptions& options = {}) {
  internal::PoolRef pool(options);
  StageGraphExecutor executor(pool.get());
  using Round =
      internal::StagedRound<Input, Key, Value, Output, std::decay_t<MapFn>,
                            internal::NoCombine, std::decay_t<ReduceFn>>;
  auto round = Round::StageMaterialized(
      executor, 0, inputs, /*keepalive=*/nullptr,
      std::forward<MapFn>(map_fn), internal::NoCombine{},
      std::forward<ReduceFn>(reduce_fn), options);
  round->StageFinalize({});
  executor.Wait();
  return round->TakeResult();
}

/// Runs one map-reduce round with a map-side combiner, the standard
/// Hadoop-style optimization: each mapper chunk pre-merges the values it
/// emitted for the same key with the associative `combine_fn`
/// (Value x Value -> Value) before the shuffle. Semantically equivalent to
/// RunMapReduce whenever `combine_fn` agrees with how `reduce_fn` folds
/// its value list; the difference shows up only in the metrics:
/// pairs_shuffled counts post-combine traffic while pairs_before_combine
/// preserves the raw map output count.
///
/// This is the footnote-1 point of the paper made executable: mapper-side
/// computation can trade against communication, but it cannot reduce the
/// number of *distinct* (reducer, key) deliveries a mapping schema
/// requires — combiners help aggregation-shaped problems (Examples 2.4,
/// 2.5) and do nothing for join-shaped ones.
template <typename Input, typename Key, typename Value, typename Output,
          typename MapFn, typename CombineFn, typename ReduceFn>
JobResult<Output> RunMapReduceCombined(const std::vector<Input>& inputs,
                                       MapFn&& map_fn,
                                       CombineFn&& combine_fn,
                                       ReduceFn&& reduce_fn,
                                       const JobOptions& options = {}) {
  internal::PoolRef pool(options);
  StageGraphExecutor executor(pool.get());
  using Round =
      internal::StagedRound<Input, Key, Value, Output, std::decay_t<MapFn>,
                            std::decay_t<CombineFn>, std::decay_t<ReduceFn>>;
  auto round = Round::StageMaterialized(
      executor, 0, inputs, /*keepalive=*/nullptr,
      std::forward<MapFn>(map_fn), std::forward<CombineFn>(combine_fn),
      std::forward<ReduceFn>(reduce_fn), options);
  round->StageFinalize({});
  executor.Wait();
  return round->TakeResult();
}

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_JOB_H_
