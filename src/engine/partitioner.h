#ifndef MRCOST_ENGINE_PARTITIONER_H_
#define MRCOST_ENGINE_PARTITIONER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/engine/shuffle.h"

namespace mrcost::engine {

// Placement policies beyond blind hashing, plus the hot-key split/merge
// primitives — the engine's defenses against skewed key distributions.
//
// The paper prices a computation as a replication rate r against a reducer
// capacity q assuming keys spread evenly; a Zipf-skewed key set breaks that
// assumption twice over: (1) hash placement hands whole hot ranges to one
// shard/worker, and (2) one hot key can exceed q all by itself. The
// RangePartitioner fixes (1) by cutting the *sampled* hash distribution
// into ranges of equal pair weight instead of equal hash width
// ("Assignment Problems of Different-Sized Inputs in MapReduce" is the
// theory); SplitHotGroups fixes (2) by splitting an over-q group across
// sub-reducers and re-merging deterministically — the q-vs-r tradeoff
// applied adaptively: each split buys capacity compliance at the price of
// replicating one key.

/// Shard placement by hash. The two implementations must agree on the
/// contract that equal hashes always land on the same shard (grouping
/// correctness depends on it); they differ only in how the hash space is
/// cut.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::size_t ShardOf(std::uint64_t hash) const = 0;
  virtual std::size_t num_shards() const = 0;
};

/// The PR-1 radix path as a Partitioner: IndexOfHash (Lemire fastrange)
/// over equal-width hash ranges.
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(std::size_t num_shards)
      : num_shards_(num_shards) {
    MRCOST_CHECK(num_shards > 0);
  }
  std::size_t ShardOf(std::uint64_t hash) const override {
    return IndexOfHash(hash, num_shards_);
  }
  std::size_t num_shards() const override { return num_shards_; }

 private:
  std::size_t num_shards_;
};

/// Contiguous hash ranges with explicit boundaries: shard p owns hashes in
/// [bounds[p-1], bounds[p]) with an implicit 0 floor and 2^64 ceiling.
/// Built from a sample of the actual mapped hash distribution (one entry
/// per *pair*, so a hot key's weight counts once per occurrence), cut at
/// equal-weight quantiles. Equal hashes never straddle a boundary.
class RangePartitioner final : public Partitioner {
 public:
  /// `upper_bounds` must be strictly increasing; size = num_shards - 1
  /// (the last shard is unbounded above).
  RangePartitioner(std::vector<std::uint64_t> upper_bounds,
                   std::size_t num_shards)
      : bounds_(std::move(upper_bounds)), num_shards_(num_shards) {
    MRCOST_CHECK(num_shards > 0);
    MRCOST_CHECK(bounds_.size() < num_shards);
  }

  std::size_t ShardOf(std::uint64_t hash) const override {
    // First boundary strictly above the hash; the hash belongs to that
    // boundary's shard. Boundaries are few (num_shards - 1), so the
    // binary search is ~log2(shards) probes.
    return static_cast<std::size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), hash) -
        bounds_.begin());
  }
  std::size_t num_shards() const override { return num_shards_; }
  const std::vector<std::uint64_t>& upper_bounds() const { return bounds_; }

 private:
  std::vector<std::uint64_t> bounds_;
  std::size_t num_shards_;
};

/// Builds a RangePartitioner from a sample of pair hashes: sorts the
/// sample and cuts it at the i * |sample| / num_shards quantiles, skipping
/// cuts that would duplicate a boundary (equal hashes stay together, so a
/// single ultra-hot key degenerates gracefully toward fewer effective
/// ranges rather than splitting a group). Consumes `sampled_hashes`.
/// An empty sample yields equal-width ranges (= hash behaviour under
/// uniform keys). Deterministic: same sample, same cuts.
RangePartitioner BuildRangePartitioner(
    std::vector<std::uint64_t> sampled_hashes, std::size_t num_shards);

/// Weighted form for the simulator: items are (hash, weight) reducer
/// loads. Sorts by hash and sweeps greedily, closing a range once its
/// accumulated weight reaches the remaining-average target — the classic
/// LPT-flavoured contiguous assignment. Consumes `items`.
RangePartitioner BuildWeightedRangePartitioner(
    std::vector<std::pair<std::uint64_t, double>> items,
    std::size_t num_shards);

/// One hot-key split decision, recorded so the merge step can undo it and
/// metrics can count it.
struct HotKeySplitStats {
  /// Keys whose group exceeded the threshold and was split.
  std::uint64_t hot_keys_split = 0;
  /// Sub-groups created across all split keys (>= 2 per split key).
  std::uint64_t sub_groups = 0;
  /// Extra key replicas the splits cost (sub_groups - hot_keys_split):
  /// the adaptive-r price of staying within q.
  std::uint64_t extra_replicas() const {
    return sub_groups - hot_keys_split;
  }
};

/// A shuffle result after hot-key splitting: groups all fit within the
/// threshold, split keys appear once per sub-group (adjacent, in order),
/// and `origin[i]` names the index of the pre-split key group `i` came
/// from — the metadata MergeSplitGroups needs to restore the original.
template <typename Key, typename Value>
struct SplitShuffleResult {
  ShuffleResult<Key, Value> shuffled;
  std::vector<std::size_t> origin;
  HotKeySplitStats stats;
};

/// Splits every group of `result` larger than `threshold` pairs into
/// ceil(size / threshold) consecutive sub-groups of near-equal size (the
/// earlier sub-groups take the remainder), each under its original key —
/// the paper's q-vs-r tradeoff applied per key: capacity q is restored by
/// paying (sub_groups - 1) extra key replicas. threshold == 0 disables
/// splitting. Value order concatenated across a key's sub-groups equals
/// the original group order, so a deterministic merge can reverse the
/// split exactly. Consumes `result`.
template <typename Key, typename Value>
SplitShuffleResult<Key, Value> SplitHotGroups(
    ShuffleResult<Key, Value> result, std::uint64_t threshold) {
  SplitShuffleResult<Key, Value> split;
  if (threshold == 0) {
    split.origin.resize(result.keys.size());
    for (std::size_t i = 0; i < split.origin.size(); ++i) {
      split.origin[i] = i;
    }
    split.shuffled = std::move(result);
    return split;
  }
  for (std::size_t i = 0; i < result.keys.size(); ++i) {
    auto& group = result.groups[i];
    const std::uint64_t size = group.size();
    if (size <= threshold) {
      split.shuffled.keys.push_back(std::move(result.keys[i]));
      split.shuffled.groups.push_back(std::move(group));
      split.origin.push_back(i);
      continue;
    }
    const std::uint64_t parts = (size + threshold - 1) / threshold;
    ++split.stats.hot_keys_split;
    split.stats.sub_groups += parts;
    // Near-equal sub-group sizes (the first `size % parts` take one
    // extra), preserving the group's value order across the parts.
    std::size_t begin = 0;
    for (std::uint64_t p = 0; p < parts; ++p) {
      const std::size_t len = static_cast<std::size_t>(
          size / parts + (p < size % parts ? 1 : 0));
      std::vector<Value> sub;
      sub.reserve(len);
      for (std::size_t j = begin; j < begin + len; ++j) {
        sub.push_back(std::move(group[j]));
      }
      begin += len;
      split.shuffled.keys.push_back(result.keys[i]);  // replicated key
      split.shuffled.groups.push_back(std::move(sub));
      split.origin.push_back(i);
    }
  }
  return split;
}

/// The deterministic merge round undoing SplitHotGroups: consecutive
/// sub-groups sharing an origin concatenate back (in order) into one
/// group under one key. Split-then-merge is the identity on any shuffle
/// result, which is what keeps defended outputs byte-identical. Consumes
/// `split`.
template <typename Key, typename Value>
ShuffleResult<Key, Value> MergeSplitGroups(
    SplitShuffleResult<Key, Value> split) {
  ShuffleResult<Key, Value> merged;
  for (std::size_t i = 0; i < split.shuffled.keys.size(); ++i) {
    if (!merged.keys.empty() && i > 0 &&
        split.origin[i] == split.origin[i - 1]) {
      auto& group = merged.groups.back();
      for (auto& v : split.shuffled.groups[i]) {
        group.push_back(std::move(v));
      }
      continue;
    }
    merged.keys.push_back(std::move(split.shuffled.keys[i]));
    merged.groups.push_back(std::move(split.shuffled.groups[i]));
  }
  return merged;
}

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_PARTITIONER_H_
