#ifndef MRCOST_ENGINE_TASK_SCHEDULER_H_
#define MRCOST_ENGINE_TASK_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mrcost::engine {

/// Which stage of a round a task belongs to, for the timing breakdown.
enum class StageKind { kMap, kShuffle, kReduce, kFinalize, kOther };

/// Wall-clock span of one task, in ms since the scheduler's epoch.
struct TaskSpan {
  double begin_ms = 0;
  double end_ms = 0;
};

/// The dependency-scheduling seam between a plan's task graph and where
/// its tasks actually run. Two implementations stand behind it:
/// StageGraphExecutor (src/engine/executor.h) runs tasks on the in-process
/// thread pool; dist::DistTaskScheduler (src/dist/scheduler.h) runs each
/// task body as a blocking RPC that a coordinator dispatches to worker
/// processes. Tasks are added with explicit dependency edges and start the
/// moment their last dependency completes; Wait blocks until every task
/// added so far has finished. Task completion must be published such that
/// a task's writes happen-before every dependent task's reads.
class TaskScheduler {
 public:
  using TaskId = std::size_t;
  static constexpr TaskId kNoTask = static_cast<TaskId>(-1);

  virtual ~TaskScheduler() = default;

  /// Adds a task depending on `deps` (kNoTask entries are ignored;
  /// already-finished deps are fine). `fn` must never block on another
  /// task — all waiting is the caller's (Wait). `speculatable` marks fn as
  /// safe to run twice concurrently (first finisher wins); schedulers
  /// without speculation may ignore it. `trace_name` must be a string
  /// literal (only the pointer is kept); `shard` labels the task's trace
  /// span.
  virtual TaskId AddTask(StageKind kind, std::uint32_t round_tag,
                         std::vector<TaskId> deps, std::function<void()> fn,
                         bool speculatable = false,
                         const char* trace_name = nullptr,
                         std::uint32_t shard = 0) = 0;

  /// Blocks until every task added so far has finished.
  virtual void Wait() = 0;

  /// The task's recorded span (zeros until it ran). Thread-safe.
  virtual TaskSpan SpanOf(TaskId id) const = 0;

  /// Milliseconds since this scheduler's construction.
  virtual double NowMs() const = 0;
};

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_TASK_SCHEDULER_H_
