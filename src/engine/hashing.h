#ifndef MRCOST_ENGINE_HASHING_H_
#define MRCOST_ENGINE_HASHING_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/random.h"

namespace mrcost::engine {

/// Generic, standard-library-independent hashing for reduce keys. The engine
/// and the Cluster worker assignment both use HashValue so that key grouping
/// and worker placement are stable across platforms. Supports integral and
/// enum types, strings, pairs, tuples, vectors, and any type exposing a
/// `std::uint64_t Hash() const` member.
template <typename T>
std::uint64_t HashValue(const T& value);

namespace internal {

inline std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t h) {
  // Boost-style combine strengthened with a 64-bit mix.
  return common::Mix64(seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                               (seed >> 2)));
}

template <typename T, typename = void>
struct HasHashMember : std::false_type {};

template <typename T>
struct HasHashMember<
    T, std::void_t<decltype(std::declval<const T&>().Hash())>>
    : std::true_type {};

}  // namespace internal

inline std::uint64_t HashValue(const std::string& s) {
  // FNV-1a, then mixed.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return common::Mix64(h);
}

template <typename A, typename B>
std::uint64_t HashValue(const std::pair<A, B>& p) {
  return internal::HashCombine(HashValue(p.first), HashValue(p.second));
}

template <typename... Ts>
std::uint64_t HashValue(const std::tuple<Ts...>& t) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  std::apply(
      [&h](const Ts&... elems) {
        ((h = internal::HashCombine(h, HashValue(elems))), ...);
      },
      t);
  return h;
}

template <typename T>
std::uint64_t HashValue(const std::vector<T>& v) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const T& x : v) h = internal::HashCombine(h, HashValue(x));
  return h;
}

template <typename T>
std::uint64_t HashValue(const T& value) {
  if constexpr (internal::HasHashMember<T>::value) {
    return value.Hash();
  } else if constexpr (std::is_enum_v<T>) {
    return common::Mix64(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
  } else {
    static_assert(std::is_integral_v<T>,
                  "HashValue: unsupported key type; add an overload or a "
                  "Hash() member");
    return common::Mix64(static_cast<std::uint64_t>(value));
  }
}

/// Functor adapter so HashValue can be used as an unordered_map hasher.
struct KeyHash {
  template <typename T>
  std::size_t operator()(const T& key) const {
    return static_cast<std::size_t>(HashValue(key));
  }
};

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_HASHING_H_
