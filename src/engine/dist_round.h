#ifndef MRCOST_ENGINE_DIST_ROUND_H_
#define MRCOST_ENGINE_DIST_ROUND_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "src/common/byte_size.h"
#include "src/common/status.h"
#include "src/engine/emitter.h"
#include "src/engine/metrics.h"
#include "src/engine/shuffle.h"
#include "src/storage/block.h"
#include "src/storage/external_merge.h"
#include "src/storage/run_writer.h"
#include "src/storage/serde.h"
#include "src/storage/spill_file.h"
#include "src/storage/wire_run.h"

namespace mrcost::engine::internal {

// The multi-process lowering of one plan round. A round node whose typed
// closures were captured at plan-build time cannot cross a process
// boundary; what can cross is data. MakeDistRoundOps therefore wraps the
// node's map/combine/reduce closures into four type-erased, file-oriented
// operations:
//
//   coordinator   write_chunk : input slot slice -> framed chunk file
//   worker        run_map     : chunk file -> per-shard sorted run files
//                               (spill format v2, pos = MakeSpillPos)
//   worker        run_reduce  : one shard's runs -> k-way merge -> reduce
//                               -> framed result file
//   coordinator   collect     : result files -> output slot + JobMetrics
//
// Both the coordinator and the worker binary rebuild the identical plan
// from the recipe registry (src/dist/registry.h), so node indices line up
// and each side invokes the ops it needs. Outputs are byte-identical to
// the in-process backend: runs are sorted by (hash, key bytes, emission
// pos), the merge surfaces each group's minimum emission position as
// first_pos, and collect restores the engine's global first-seen key
// order by sorting groups on it — the same scan-order contract
// StagedRound::Finalize enforces in-process.

/// One sorted run file a map task produced for one reduce shard.
struct DistRunInfo {
  std::uint32_t shard = 0;
  std::uint64_t rows = 0;
  std::string path;
};

/// What one map task reports back, mirroring StagedRound's per-chunk
/// counters so the merged JobMetrics match the in-process round's.
struct DistMapOutcome {
  std::vector<DistRunInfo> runs;
  std::uint64_t raw_pairs = 0;  // pre-combine emitted pairs
  std::uint64_t pairs = 0;      // pairs crossing the shuffle
  std::uint64_t bytes = 0;      // ByteSizeOf of what crosses the shuffle
  std::uint64_t blocks_emitted = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t spill_bytes_written = 0;
  std::uint64_t encode_raw_bytes = 0;
  std::uint64_t encode_encoded_bytes = 0;
};

struct DistReduceOutcome {
  std::uint64_t keys = 0;
  std::uint64_t outputs = 0;
  std::uint64_t max_group = 0;
  std::uint64_t merge_passes = 0;
  std::uint64_t spill_bytes_written = 0;
};

struct DistMapSpec {
  std::string chunk_path;
  std::uint32_t chunk_index = 0;
  std::uint32_t num_shards = 1;
  /// Run files are written as `<run_prefix>-s<shard>.run`; the coordinator
  /// bakes the attempt number into the prefix so a re-issued task never
  /// collides with a dead worker's partial files.
  std::string run_prefix;
  /// kWireStream: runs are encoded into this worker-local registry under
  /// the id `<run_prefix>-s<shard>.wire` (no shared-dir file) and served
  /// to reducers over the data socket. nullptr = spill-file transport.
  storage::RunRegistry* run_registry = nullptr;
};

struct DistReduceSpec {
  std::uint32_t shard = 0;
  std::vector<std::string> run_paths;
  /// Parallel to run_paths: the owner worker's data endpoint for wire
  /// runs, "" for a run read from disk. Shorter than run_paths (or empty)
  /// = trailing runs are on disk.
  std::vector<std::string> run_endpoints;
  /// Per-source block credit window for wire fetches (0 = default 4).
  std::uint32_t fetch_credits = 0;
  std::string result_path;
  /// Scratch dir for multi-pass merge rewrites (the shared job dir).
  std::string scratch_dir;
  std::size_t merge_fan_in = storage::kDefaultMergeFanIn;
};

struct DistRoundOps {
  std::function<common::Status(const std::shared_ptr<void>& input_slot,
                               std::size_t lo, std::size_t hi,
                               const std::string& path)>
      write_chunk;
  std::function<common::Result<DistMapOutcome>(const DistMapSpec&)> run_map;
  std::function<common::Result<DistReduceOutcome>(const DistReduceSpec&)>
      run_reduce;
  std::function<common::Result<std::shared_ptr<void>>(
      const std::vector<std::string>& result_paths, JobMetrics& metrics)>
      collect;
};

/// Flush granularity of the framed chunk/result files (well under the
/// spill reader's block-size ceiling).
inline constexpr std::size_t kDistFileBlockBytes = std::size_t{4} << 20;

template <typename In, typename K, typename V, typename Out>
DistRoundOps MakeDistRoundOps(
    std::function<void(const In&, Emitter<K, V>&)> map_fn,
    std::function<V(V, V)> combine_fn,
    std::function<void(const K&, const std::vector<V>&, std::vector<Out>&)>
        reduce_fn) {
  DistRoundOps ops;

  ops.write_chunk = [](const std::shared_ptr<void>& input_slot,
                       std::size_t lo, std::size_t hi,
                       const std::string& path) -> common::Status {
    auto input =
        std::static_pointer_cast<const std::vector<In>>(input_slot);
    if (!input) {
      return common::Status::FailedPrecondition(
          "dist write_chunk: input slot not materialized");
    }
    auto file = storage::SpillFileWriter::Create(path, /*version=*/1);
    if (!file.ok()) return file.status();
    storage::SpillFileWriter writer = std::move(file.value());
    std::string payload;
    std::uint64_t count = 0;
    auto flush = [&]() -> common::Status {
      std::string framed;
      storage::SerializeValue(count, framed);
      framed.append(payload);
      auto status = writer.AppendBlock(framed);
      payload.clear();
      count = 0;
      return status;
    };
    for (std::size_t i = lo; i < hi; ++i) {
      storage::SerializeValue((*input)[i], payload);
      ++count;
      if (payload.size() >= kDistFileBlockBytes) {
        if (auto status = flush(); !status.ok()) return status;
      }
    }
    if (count > 0) {
      if (auto status = flush(); !status.ok()) return status;
    }
    return writer.Close();
  };

  ops.run_map = [map_fn, combine_fn](const DistMapSpec& spec)
      -> common::Result<DistMapOutcome> {
    auto file = storage::SpillFileReader::Open(spec.chunk_path);
    if (!file.ok()) return file.status();
    storage::SpillFileReader reader = std::move(file.value());

    // Re-run the captured map over the chunk. The whole chunk accumulates
    // in one block, matching the in-process in-memory path: emission row
    // index == local emission position.
    Emitter<K, V> emitter;
    std::string payload;
    bool done = false;
    while (true) {
      if (auto status = reader.Next(payload, done); !status.ok()) {
        return status;
      }
      if (done) break;
      const char* p = payload.data();
      const char* end = p + payload.size();
      std::uint64_t count = 0;
      if (!storage::DeserializeValue(p, end, count)) {
        return common::Status::Internal("dist run_map: corrupt chunk block");
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        In row;
        if (!storage::DeserializeValue(p, end, row)) {
          return common::Status::Internal("dist run_map: corrupt chunk row");
        }
        map_fn(row, emitter);
      }
    }

    DistMapOutcome outcome;
    using Block = storage::KVBlock<K, V>;
    Block& emitted = emitter.block();
    outcome.raw_pairs = emitted.rows();
    outcome.blocks_emitted = emitter.blocks_emitted();
    outcome.bytes_copied = emitter.bytes_copied();

    // Map-side combine: the same first-seen fold StagedRound::CombineBlock
    // runs, so post-combine rows — and therefore spill positions — are
    // identical to the in-process combined round.
    Block combined;
    Block* work = &emitted;
    if (combine_fn) {
      storage::KeyIndex index;
      index.Reserve(emitted.rows());
      for (std::size_t r = 0; r < emitted.rows(); ++r) {
        bool inserted = false;
        const std::size_t g =
            index.FindOrInsert(emitted.hash(r), emitted.key_bytes(r),
                               inserted);
        if (inserted) {
          combined.AppendRaw(emitted.key_bytes(r), emitted.hash(r),
                             std::move(emitted.value(r)));
        } else {
          combined.value(g) =
              combine_fn(std::move(combined.value(g)),
                         std::move(emitted.value(r)));
        }
      }
      work = &combined;
      outcome.bytes_copied += combined.CopiedBytes();
      for (std::size_t r = 0; r < combined.rows(); ++r) {
        outcome.bytes += common::ByteSizeOf(combined.KeyAt(r)) +
                         common::ByteSizeOf(combined.value(r));
      }
    } else {
      outcome.bytes = emitter.bytes();
    }
    const Block& block = *work;
    outcome.pairs = block.rows();

    // Partition rows by hash, then write one sorted run per non-empty
    // shard: (hash, key bytes, row) order with pos = MakeSpillPos(chunk,
    // row) — exactly SortedRunFromBlock's contract, applied to the
    // non-contiguous row subset of each shard.
    std::vector<std::vector<std::uint32_t>> shard_rows(spec.num_shards);
    for (std::size_t r = 0; r < block.rows(); ++r) {
      shard_rows[IndexOfHash(block.hash(r), spec.num_shards)].push_back(
          static_cast<std::uint32_t>(r));
    }
    for (std::uint32_t p = 0; p < spec.num_shards; ++p) {
      std::vector<std::uint32_t>& rows = shard_rows[p];
      if (rows.empty()) continue;
      std::sort(rows.begin(), rows.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (block.hash(a) != block.hash(b)) {
                    return block.hash(a) < block.hash(b);
                  }
                  const int c =
                      block.key_bytes(a).compare(block.key_bytes(b));
                  if (c != 0) return c < 0;
                  return a < b;  // row order == emission (pos) order
                });
      storage::ColumnarRun run;
      run.hashes.reserve(rows.size());
      run.positions.reserve(rows.size());
      for (const std::uint32_t r : rows) {
        run.hashes.push_back(block.hash(r));
        run.positions.push_back(storage::MakeSpillPos(spec.chunk_index, r));
        run.keys.Append(block.key_bytes(r));
        run.values.AppendSerialized(block.value(r));
      }
      if (spec.run_registry != nullptr) {
        // Wire transport: the same frame slicing the file writer would
        // have used, but raw columnar frames kept local for reducers to
        // pull — no shared-dir write, no read-back, no codec CPU, and no
        // per-key hash recompute on decode (the hash column ships).
        // Merge output depends only on the record sequence, which the
        // frame encoding cannot change.
        std::vector<std::string> frames;
        storage::BlockEncodeStats stats;
        storage::EncodeRawRunFrames(run, storage::kDefaultBlockBytes,
                                    frames, stats);
        const std::string run_id =
            spec.run_prefix + "-s" + std::to_string(p) + ".wire";
        if (auto status = spec.run_registry->Put(run_id, std::move(frames),
                                                 rows.size());
            !status.ok()) {
          return status;
        }
        outcome.encode_raw_bytes += stats.raw_bytes;
        outcome.encode_encoded_bytes += stats.encoded_bytes;
        outcome.runs.push_back(DistRunInfo{p, rows.size(), run_id});
        continue;
      }
      const std::string path =
          spec.run_prefix + "-s" + std::to_string(p) + ".run";
      auto writer = storage::BlockRunFileWriter::Create(path);
      if (!writer.ok()) return writer.status();
      if (auto status =
              writer.value().AppendRun(run, 0, rows.size());
          !status.ok()) {
        return status;
      }
      if (auto status = writer.value().Finish(); !status.ok()) {
        return status;
      }
      outcome.spill_bytes_written += writer.value().bytes_written();
      outcome.encode_raw_bytes += writer.value().stats().raw_bytes;
      outcome.encode_encoded_bytes += writer.value().stats().encoded_bytes;
      outcome.runs.push_back(DistRunInfo{p, rows.size(), path});
    }
    return outcome;
  };

  ops.run_reduce = [reduce_fn](const DistReduceSpec& spec)
      -> common::Result<DistReduceOutcome> {
    std::vector<std::unique_ptr<storage::BlockRunSource>> sources;
    sources.reserve(spec.run_paths.size());
    for (std::size_t i = 0; i < spec.run_paths.size(); ++i) {
      const bool wire = i < spec.run_endpoints.size() &&
                        !spec.run_endpoints[i].empty();
      if (!wire) {
        sources.push_back(
            std::make_unique<storage::DiskBlockRunSource>(
                spec.run_paths[i]));
        continue;
      }
      storage::WireBlockRunSource::Options wire_options;
      wire_options.endpoint = spec.run_endpoints[i];
      wire_options.run_id = spec.run_paths[i];
      wire_options.credits =
          spec.fetch_credits > 0 ? spec.fetch_credits : 4;
      wire_options.reducer_shard = spec.shard;
      sources.push_back(std::make_unique<storage::WireBlockRunSource>(
          std::move(wire_options)));
    }
    storage::RunSpiller scratch(spec.scratch_dir);
    storage::SpillStats stats;
    auto merged = storage::MergeBlockRunsToGroups<K, V>(
        std::move(sources), scratch, spec.merge_fan_in, stats);
    if (!merged.ok()) return merged.status();
    storage::MergedGroups<K, V>& groups = merged.value();

    DistReduceOutcome outcome;
    outcome.keys = groups.keys.size();
    outcome.merge_passes = stats.merge_passes;
    outcome.spill_bytes_written = stats.spill_bytes_written;

    auto file =
        storage::SpillFileWriter::Create(spec.result_path, /*version=*/1);
    if (!file.ok()) return file.status();
    storage::SpillFileWriter writer = std::move(file.value());
    std::string payload;
    std::uint64_t count = 0;
    auto flush = [&]() -> common::Status {
      std::string framed;
      storage::SerializeValue(count, framed);
      framed.append(payload);
      auto status = writer.AppendBlock(framed);
      payload.clear();
      count = 0;
      return status;
    };
    std::vector<Out> outs;
    for (std::size_t i = 0; i < groups.keys.size(); ++i) {
      outs.clear();
      reduce_fn(groups.keys[i], groups.groups[i], outs);
      outcome.outputs += outs.size();
      outcome.max_group = std::max(
          outcome.max_group,
          static_cast<std::uint64_t>(groups.groups[i].size()));
      storage::SerializeValue(groups.first_pos[i], payload);
      storage::SerializeValue(
          static_cast<std::uint64_t>(groups.groups[i].size()), payload);
      storage::SerializeValue(outs, payload);
      ++count;
      if (payload.size() >= kDistFileBlockBytes) {
        if (auto status = flush(); !status.ok()) return status;
      }
    }
    if (count > 0) {
      if (auto status = flush(); !status.ok()) return status;
    }
    if (auto status = writer.Close(); !status.ok()) return status;
    return outcome;
  };

  ops.collect = [](const std::vector<std::string>& result_paths,
                   JobMetrics& metrics)
      -> common::Result<std::shared_ptr<void>> {
    struct Entry {
      std::uint64_t first_pos = 0;
      std::uint64_t group_size = 0;
      std::vector<Out> outs;
    };
    std::vector<Entry> entries;
    for (const std::string& path : result_paths) {
      auto file = storage::SpillFileReader::Open(path);
      if (!file.ok()) return file.status();
      storage::SpillFileReader reader = std::move(file.value());
      std::string payload;
      bool done = false;
      while (true) {
        if (auto status = reader.Next(payload, done); !status.ok()) {
          return status;
        }
        if (done) break;
        const char* p = payload.data();
        const char* end = p + payload.size();
        std::uint64_t count = 0;
        if (!storage::DeserializeValue(p, end, count)) {
          return common::Status::Internal(
              "dist collect: corrupt result block");
        }
        for (std::uint64_t i = 0; i < count; ++i) {
          Entry entry;
          if (!storage::DeserializeValue(p, end, entry.first_pos) ||
              !storage::DeserializeValue(p, end, entry.group_size) ||
              !storage::DeserializeValue(p, end, entry.outs)) {
            return common::Status::Internal(
                "dist collect: corrupt result row");
          }
          entries.push_back(std::move(entry));
        }
      }
    }
    // Global first-seen order: each group's first_pos is its minimum
    // emission position; sorting on it restores the exact output order of
    // the in-process backends (positions are unique — one row, one key).
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.first_pos < b.first_pos;
              });
    auto outputs = std::make_shared<std::vector<Out>>();
    for (Entry& entry : entries) {
      metrics.num_reducers += 1;
      metrics.reducer_sizes.Add(static_cast<double>(entry.group_size));
      metrics.max_reducer_input =
          std::max(metrics.max_reducer_input, entry.group_size);
      metrics.num_outputs += entry.outs.size();
      outputs->insert(outputs->end(),
                      std::make_move_iterator(entry.outs.begin()),
                      std::make_move_iterator(entry.outs.end()));
    }
    return std::static_pointer_cast<void>(outputs);
  };

  return ops;
}

}  // namespace mrcost::engine::internal

#endif  // MRCOST_ENGINE_DIST_ROUND_H_
