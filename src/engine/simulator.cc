#include "src/engine/simulator.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <utility>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/engine/partitioner.h"
#include "src/engine/shuffle.h"
#include "src/obs/trace.h"

namespace mrcost::engine {
namespace {

// Per-purpose stream constants: jitter and straggler selection derive
// independent SplitMix64 streams from the user seed. With one shared
// stream, turning the jitter knob would advance the generator and change
// *which* workers straggle — every skew sweep would entangle its axes.
constexpr std::uint64_t kJitterStream = 0x5b8e6b3a1f0c2d4eULL;
constexpr std::uint64_t kStragglerStream = 0x94d049bb133111ebULL;

std::uint64_t NumStragglers(const SimulationOptions& options) {
  return static_cast<std::uint64_t>(options.straggler_fraction *
                                    static_cast<double>(options.num_workers));
}

// One entry of the post-defense reducer list: a real reducer, a sub-reducer
// carved out of a hot key, or the merge reducer that recombines a split
// key's partial results. `origin` indexes the caller's ReducerLoad vector.
struct SimReducer {
  std::uint64_t hash = 0;
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
  std::uint32_t origin = 0;
};

// Applies the hot-key-split defense in the cost domain: every reducer whose
// input exceeds the threshold becomes ceil(pairs / threshold) sub-reducers
// (scattered across the hash space by sub-hash) plus one merge reducer
// under the original hash combining the partial results. This is the
// paper's q-vs-r tradeoff per key: capacity q is restored for the price of
// (parts - 1) extra key replicas plus a merge input of `parts` pairs.
std::vector<SimReducer> ApplyHotKeySplit(
    const std::vector<ReducerLoad>& reducers, const SimulationOptions& options,
    SimulationReport& report) {
  const double threshold = options.defense.hot_key_split_threshold;
  std::vector<SimReducer> effective;
  effective.reserve(reducers.size());
  for (std::size_t i = 0; i < reducers.size(); ++i) {
    const ReducerLoad& r = reducers[i];
    const auto origin = static_cast<std::uint32_t>(i);
    if (threshold <= 0 || static_cast<double>(r.pairs) <= threshold) {
      effective.push_back({r.key_hash, r.pairs, r.bytes, origin});
      continue;
    }
    const auto parts = static_cast<std::uint64_t>(
        (static_cast<double>(r.pairs) + threshold - 1) / threshold);
    ++report.hot_keys_split;
    for (std::uint64_t p = 0; p < parts; ++p) {
      // Sub-hashes scatter the fragments across the hash space so they
      // land on different workers; near-equal sizes, earlier parts take
      // the remainder (mirrors SplitHotGroups).
      SimReducer sub;
      sub.hash = common::Mix64(r.key_hash ^ (p + 1));
      sub.pairs = r.pairs / parts + (p < r.pairs % parts ? 1 : 0);
      sub.bytes = r.bytes / parts + (p < r.bytes % parts ? 1 : 0);
      sub.origin = origin;
      effective.push_back(sub);
    }
    // The deterministic merge step: one pair per partial result, placed
    // back on the original key's hash.
    effective.push_back({r.key_hash, parts, 0, origin});
  }
  return effective;
}

}  // namespace

std::vector<double> WorkerSpeeds(const SimulationOptions& options) {
  MRCOST_CHECK(options.num_workers > 0);
  MRCOST_CHECK(options.straggler_slowdown >= 1.0);
  MRCOST_CHECK(options.speed_jitter >= 0.0 && options.speed_jitter < 1.0);
  MRCOST_CHECK(options.straggler_fraction >= 0.0 &&
               options.straggler_fraction <= 1.0);
  std::vector<double> speeds(options.num_workers, 1.0);
  if (options.speed_jitter > 0) {
    common::SplitMix64 jitter(options.seed ^ kJitterStream);
    for (double& s : speeds) {
      s = 1.0 - options.speed_jitter +
          2.0 * options.speed_jitter * jitter.UniformDouble();
    }
  }
  if (options.straggler_slowdown > 1.0) {
    for (std::uint64_t w : StragglerWorkers(options)) {
      speeds[w] /= options.straggler_slowdown;
    }
  }
  return speeds;
}

std::vector<std::uint64_t> StragglerWorkers(const SimulationOptions& options) {
  MRCOST_CHECK(options.num_workers > 0);
  MRCOST_CHECK(options.straggler_fraction >= 0.0 &&
               options.straggler_fraction <= 1.0);
  const std::uint64_t count = NumStragglers(options);
  if (count == 0) return {};
  common::SplitMix64 rng(options.seed ^ kStragglerStream);
  auto workers =
      common::SampleWithoutReplacement(options.num_workers, count, rng);
  std::sort(workers.begin(), workers.end());
  return workers;
}

SimulationReport SimulateCluster(const std::vector<ReducerLoad>& reducers,
                                 const SimulationOptions& options) {
  MRCOST_CHECK(options.enabled());
  MRCOST_CHECK(options.defense.speculation_slowdown_factor >= 1.0);
  SimulationReport report;
  report.num_workers = options.num_workers;
  report.queues.resize(options.num_workers);
  const std::vector<double> speeds = WorkerSpeeds(options);
  for (std::size_t w = 0; w < options.num_workers; ++w) {
    report.queues[w].speed = speeds[w];
  }

  // Defense 1 — hot-key splitting. Runs before capacity accounting: a
  // split that brings every sub-group under q removes the violation.
  const std::vector<SimReducer> effective =
      ApplyHotKeySplit(reducers, options, report);
  for (const SimReducer& r : effective) {
    if ((options.reducer_capacity_q > 0 &&
         static_cast<double>(r.pairs) > options.reducer_capacity_q) ||
        (options.reducer_capacity_bytes > 0 &&
         r.bytes > options.reducer_capacity_bytes)) {
      ++report.capacity_violations;
    }
  }

  // Defense 2 — placement. Default is the blind IndexOfHash placement the
  // sharded shuffle uses, so the simulated cluster and the real shuffle
  // agree on where a key lives. kSampledRange instead cuts the sorted hash
  // line into contiguous ranges of near-equal *cost*, the sampled
  // range-partitioning the engine applies when the chooser detects skew.
  const bool ranged =
      options.defense.partitioner == PartitionerKind::kSampledRange &&
      options.num_workers > 1;
  RangePartitioner range(std::vector<std::uint64_t>{}, 1);
  if (ranged) {
    std::vector<std::pair<std::uint64_t, double>> weighted;
    weighted.reserve(effective.size());
    for (const SimReducer& r : effective) {
      weighted.emplace_back(
          r.hash, options.cost_per_pair * static_cast<double>(r.pairs) +
                      options.cost_per_byte * static_cast<double>(r.bytes));
    }
    range = BuildWeightedRangePartitioner(std::move(weighted),
                                          options.num_workers);
  }

  // Assignment pass: each (possibly split) reducer joins the queue of the
  // worker its hash lands on under the chosen placement. queue.reducers
  // records the *origin* index into the caller's ReducerLoad vector, so
  // placement stays inspectable even after splitting.
  for (const SimReducer& r : effective) {
    const std::size_t w = ranged
                              ? range.ShardOf(r.hash)
                              : IndexOfHash(r.hash, options.num_workers);
    WorkerQueue& queue = report.queues[w];
    queue.reducers.push_back(r.origin);
    queue.pairs += r.pairs;
    queue.bytes += r.bytes;
  }

  // Cost pass: each worker drains its queue at its own speed; a round ends
  // when the slowest worker finishes (the paper's rounds are barriers).
  double total_cost = 0;
  double total_speed = 0;
  double homogeneous_makespan = 0;
  double max_speed = 0;
  for (WorkerQueue& queue : report.queues) {
    queue.cost = options.cost_per_pair * static_cast<double>(queue.pairs) +
                 options.cost_per_byte * static_cast<double>(queue.bytes);
    queue.finish_time = queue.cost / queue.speed;
    queue.effective_finish_time = queue.finish_time;
    total_cost += queue.cost;
    total_speed += queue.speed;
    max_speed = std::max(max_speed, queue.speed);
    homogeneous_makespan = std::max(homogeneous_makespan, queue.cost);
  }

  // Defense 3 — speculative backups. A worker whose projected finish
  // exceeds factor x the median busy-worker finish gets its queue
  // re-issued on the fastest worker at the trigger time; whichever copy
  // finishes first wins (the executor's first-finisher-wins contract, in
  // cost units). The original's result is never discarded early, so the
  // effective finish is the min of the two.
  if (options.defense.speculation) {
    std::vector<double> busy;
    busy.reserve(report.queues.size());
    for (const WorkerQueue& queue : report.queues) {
      if (queue.cost > 0) busy.push_back(queue.finish_time);
    }
    if (!busy.empty() && max_speed > 0) {
      std::sort(busy.begin(), busy.end());
      const double median = busy[busy.size() / 2];
      const double trigger =
          options.defense.speculation_slowdown_factor * median;
      if (median > 0) {
        for (WorkerQueue& queue : report.queues) {
          if (queue.finish_time <= trigger || queue.cost <= 0) continue;
          ++report.speculative_launched;
          const double backup = trigger + queue.cost / max_speed;
          if (backup < queue.finish_time) {
            queue.effective_finish_time = backup;
            ++report.speculative_won;
          }
        }
      }
    }
  }

  for (WorkerQueue& queue : report.queues) {
    report.makespan = std::max(report.makespan, queue.effective_finish_time);
    report.max_worker_pairs =
        std::max<std::uint64_t>(report.max_worker_pairs, queue.pairs);
    report.worker_pairs.Add(static_cast<double>(queue.pairs));
    report.worker_bytes.Add(static_cast<double>(queue.bytes));
    report.worker_times.Add(queue.effective_finish_time);
  }
  report.ideal_makespan = total_speed > 0 ? total_cost / total_speed : 0;
  report.load_imbalance = report.worker_pairs.skew();
  report.straggler_impact =
      homogeneous_makespan > 0 ? report.makespan / homogeneous_makespan : 0;

  if (obs::TraceRecorder::enabled()) {
    // Virtual-time lanes: one span per simulated worker on the simulated
    // pid, scaled cost-units -> us. Concurrent simulated rounds each
    // claim a disjoint window from a shared virtual clock so their worker
    // lanes stack side by side instead of overlapping at t=0.
    constexpr double kUsPerCostUnit = 1000.0;
    static std::atomic<std::uint64_t> virtual_clock{0};
    const std::uint64_t span_us = static_cast<std::uint64_t>(
        report.makespan * kUsPerCostUnit) + 1;
    const std::uint64_t base_us = virtual_clock.fetch_add(
        span_us, std::memory_order_relaxed);
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    for (std::size_t w = 0; w < report.queues.size(); ++w) {
      const WorkerQueue& queue = report.queues[w];
      obs::TraceEvent event;
      event.name = "SimWorker";
      event.category = "sim";
      event.pid = obs::kSimulatedPid;
      event.tid = static_cast<std::uint32_t>(w);
      event.t_start_us = base_us;
      event.t_end_us =
          base_us + static_cast<std::uint64_t>(
                        queue.effective_finish_time * kUsPerCostUnit);
      event.args.push_back(obs::Arg("pairs", queue.pairs));
      event.args.push_back(obs::Arg("bytes", queue.bytes));
      event.args.push_back(
          obs::Arg("reducers", static_cast<std::uint64_t>(queue.reducers.size())));
      event.args.push_back(obs::Arg("speed", queue.speed));
      if (queue.effective_finish_time < queue.finish_time) {
        event.args.push_back(obs::Arg("rescued_by", "speculation"));
      }
      recorder.Append(std::move(event));
    }
    if (report.hot_keys_split > 0) {
      obs::TraceInstant("HotKeysSplit", "sim", 0,
                        {obs::Arg("count", report.hot_keys_split)});
    }
  }
  return report;
}

std::string SimulationReport::ToString() const {
  std::ostringstream os;
  os << "workers=" << num_workers << " makespan=" << makespan
     << " ideal=" << ideal_makespan << " imbalance=" << load_imbalance
     << " straggler_impact=" << straggler_impact
     << " capacity_violations=" << capacity_violations
     << " max_worker_pairs=" << max_worker_pairs;
  if (hot_keys_split > 0 || speculative_launched > 0) {
    os << " hot_keys_split=" << hot_keys_split
       << " speculative=" << speculative_won << "/" << speculative_launched;
  }
  return os.str();
}

}  // namespace mrcost::engine
