#include "src/engine/simulator.h"

#include <algorithm>
#include <sstream>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/engine/shuffle.h"

namespace mrcost::engine {

std::vector<double> WorkerSpeeds(const SimulationOptions& options) {
  MRCOST_CHECK(options.num_workers > 0);
  MRCOST_CHECK(options.straggler_slowdown >= 1.0);
  MRCOST_CHECK(options.speed_jitter >= 0.0 && options.speed_jitter < 1.0);
  MRCOST_CHECK(options.straggler_fraction >= 0.0 &&
               options.straggler_fraction <= 1.0);
  std::vector<double> speeds(options.num_workers, 1.0);
  common::SplitMix64 rng(options.seed ^ 0x5b8e6b3a1f0c2d4eULL);
  if (options.speed_jitter > 0) {
    for (double& s : speeds) {
      s = 1.0 - options.speed_jitter +
          2.0 * options.speed_jitter * rng.UniformDouble();
    }
  }
  const auto num_stragglers = static_cast<std::uint64_t>(
      options.straggler_fraction * static_cast<double>(options.num_workers));
  if (num_stragglers > 0 && options.straggler_slowdown > 1.0) {
    for (std::uint64_t w :
         common::SampleWithoutReplacement(options.num_workers,
                                          num_stragglers, rng)) {
      speeds[w] /= options.straggler_slowdown;
    }
  }
  return speeds;
}

SimulationReport SimulateCluster(const std::vector<ReducerLoad>& reducers,
                                 const SimulationOptions& options) {
  MRCOST_CHECK(options.enabled());
  SimulationReport report;
  report.num_workers = options.num_workers;
  report.queues.resize(options.num_workers);
  const std::vector<double> speeds = WorkerSpeeds(options);
  for (std::size_t w = 0; w < options.num_workers; ++w) {
    report.queues[w].speed = speeds[w];
  }

  // Assignment pass: each reducer joins the queue of the worker its
  // finalized key hash lands on — the same IndexOfHash placement the
  // sharded shuffle uses, so the simulated cluster and the real shuffle
  // agree on where a key lives.
  for (std::size_t i = 0; i < reducers.size(); ++i) {
    const ReducerLoad& r = reducers[i];
    WorkerQueue& queue =
        report.queues[IndexOfHash(r.key_hash, options.num_workers)];
    queue.reducers.push_back(static_cast<std::uint32_t>(i));
    queue.pairs += r.pairs;
    queue.bytes += r.bytes;
    if ((options.reducer_capacity_q > 0 &&
         static_cast<double>(r.pairs) > options.reducer_capacity_q) ||
        (options.reducer_capacity_bytes > 0 &&
         r.bytes > options.reducer_capacity_bytes)) {
      ++report.capacity_violations;
    }
  }

  // Cost pass: each worker drains its queue at its own speed; a round ends
  // when the slowest worker finishes (the paper's rounds are barriers).
  double total_cost = 0;
  double total_speed = 0;
  double homogeneous_makespan = 0;
  for (WorkerQueue& queue : report.queues) {
    queue.cost = options.cost_per_pair * static_cast<double>(queue.pairs) +
                 options.cost_per_byte * static_cast<double>(queue.bytes);
    queue.finish_time = queue.cost / queue.speed;
    total_cost += queue.cost;
    total_speed += queue.speed;
    homogeneous_makespan = std::max(homogeneous_makespan, queue.cost);
    report.makespan = std::max(report.makespan, queue.finish_time);
    report.max_worker_pairs =
        std::max<std::uint64_t>(report.max_worker_pairs, queue.pairs);
    report.worker_pairs.Add(static_cast<double>(queue.pairs));
    report.worker_bytes.Add(static_cast<double>(queue.bytes));
    report.worker_times.Add(queue.finish_time);
  }
  report.ideal_makespan = total_speed > 0 ? total_cost / total_speed : 0;
  report.load_imbalance = report.worker_pairs.skew();
  report.straggler_impact =
      homogeneous_makespan > 0 ? report.makespan / homogeneous_makespan : 0;
  return report;
}

std::string SimulationReport::ToString() const {
  std::ostringstream os;
  os << "workers=" << num_workers << " makespan=" << makespan
     << " ideal=" << ideal_makespan << " imbalance=" << load_imbalance
     << " straggler_impact=" << straggler_impact
     << " capacity_violations=" << capacity_violations
     << " max_worker_pairs=" << max_worker_pairs;
  return os.str();
}

}  // namespace mrcost::engine
