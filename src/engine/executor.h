#ifndef MRCOST_ENGINE_EXECUTOR_H_
#define MRCOST_ENGINE_EXECUTOR_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/byte_size.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/engine/emitter.h"
#include "src/engine/hashing.h"
#include "src/engine/metrics.h"
#include "src/engine/partitioner.h"
#include "src/engine/shuffle.h"
#include "src/engine/simulator.h"
#include "src/engine/task_scheduler.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/storage/block.h"
#include "src/storage/external_merge.h"
#include "src/storage/run_writer.h"

namespace mrcost::engine {

// The stage-graph execution core. The previous engine ran every round as
// map -> barrier -> shuffle -> barrier -> reduce; this layer dissolves
// those barriers into a task graph scheduled on the shared ThreadPool:
// each round decomposes into per-chunk MapPartition tasks, per-shard
// ShardGroup tasks, per-shard ReduceShard tasks, and one Finalize task,
// with explicit dependency edges. A shard whose group is complete starts
// reducing while other shards are still grouping, and — when a Plan stage
// declares a per-key input dependency — round k's reduce output for shard
// s streams straight into round k+1's map with no global barrier.
// Outputs stay byte-identical to the barrier engine for every strategy:
// every emitted pair carries a scan-order tag (internal::PairPos) and the
// deterministic first-seen merge runs on tags instead of arrival order.

/// Speculative-backup knobs: the executor re-issues a slow shard task
/// (ShardGroup / ReduceShard) on another pool thread once its elapsed time
/// exceeds slowdown_factor x the median duration of completed tasks of the
/// same stage, and the first finisher's result wins. Backups never change
/// outputs — both attempts compute the same deterministic result and the
/// loser's copy is discarded — they only cut the makespan a straggling
/// thread (or a skew-overloaded shard) would impose on the round barrier.
struct SpeculationConfig {
  bool enabled = false;
  /// A task is "slow" once it runs this many times longer than the median
  /// completed task of its stage. Must be >= 1.
  double slowdown_factor = 3.0;
  /// Completed same-stage tasks required before the median is trusted —
  /// below this no backup launches (a lone task has no peers to compare
  /// against).
  std::size_t min_completed = 3;
  /// Floor on the median (ms) so micro-tasks never trigger backups: the
  /// effective threshold is slowdown_factor * max(median, min_task_ms).
  double min_task_ms = 1.0;
};

/// Execution knobs for one round.
struct JobOptions {
  /// Threads used to run map and reduce tasks. 0 = hardware concurrency.
  /// Ignored when `pool` is set (the pool's size governs).
  std::size_t num_threads = 0;
  /// Optional caller-owned thread pool. When set, the round runs on it
  /// instead of constructing (and tearing down) a private pool — the
  /// Pipeline driver uses this to reuse one pool across every round.
  common::ThreadPool* pool = nullptr;
  /// Shuffle shards. 0 = auto: one per thread, capped for small rounds
  /// when a pair estimate is available (the plan executor passes its
  /// declared or sampled estimate; the eager entry points have none
  /// before the map runs, so they size for a large round — tiny jobs pay
  /// a few near-empty shard tasks rather than fan-out jobs losing their
  /// parallelism). 1 = the serial reference shuffle. Ignored by the
  /// external shuffle.
  std::size_t num_shards = 0;
  /// Shuffle configuration (strategy, memory budget, spill dir, merge
  /// fan-in) — the one ShuffleConfig shared with PipelineOptions and the
  /// external shuffle; see its comment for the field-wise resolution
  /// order. All strategies produce byte-identical outputs; only memory
  /// behaviour and metrics differ.
  ShuffleConfig shuffle;
  /// Full cluster-simulation knobs (per-worker queues, capacity q,
  /// stragglers, heterogeneous speeds). When enabled, JobMetrics gains
  /// makespan, load_imbalance, straggler_impact, and capacity_violations.
  /// Simulation never changes reduce outputs — only the metrics.
  SimulationOptions simulation;
  /// Speculative backup tasks for slow in-memory shard tasks (first
  /// finisher wins, outputs unchanged). Requires copyable value types;
  /// rounds whose values are move-only silently run without backups.
  SpeculationConfig speculation;

  /// The simulation that actually runs. Skew/capacity knobs with
  /// num_workers left 0 are a misconfiguration (the run would silently
  /// report makespan 0 / no violations), so they fail loudly instead.
  SimulationOptions ResolvedSimulation() const {
    if (simulation.enabled()) return simulation;
    MRCOST_CHECK(!simulation.customized());
    return SimulationOptions{};
  }

  ShuffleStrategy ResolvedShuffleStrategy() const {
    return shuffle.Resolved();
  }

  std::size_t ResolvedThreads() const {
    if (pool != nullptr) return pool->num_threads();
    if (num_threads > 0) return num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
  }
};

/// Field-wise merge of per-round overrides onto defaults: every field left
/// at its unset value (0 / nullptr / kAuto / "" / disabled simulation)
/// inherits the default's value. This is the single merge rule used by
/// Pipeline round defaults and the plan executor — a round overriding only
/// `num_shards` still gets the defaults' memory budget, simulation, and
/// thread sizing.
inline JobOptions MergedJobOptions(JobOptions overrides,
                                   const JobOptions& defaults) {
  if (overrides.num_threads == 0) overrides.num_threads = defaults.num_threads;
  if (overrides.pool == nullptr) overrides.pool = defaults.pool;
  if (overrides.num_shards == 0) overrides.num_shards = defaults.num_shards;
  overrides.shuffle = overrides.shuffle.MergedOver(defaults.shuffle);
  // Simulation inherits only when the override configures nothing, so a
  // round's explicit simulation always wins whole.
  if (!overrides.simulation.enabled() && !overrides.simulation.customized()) {
    overrides.simulation = defaults.simulation;
  }
  if (!overrides.speculation.enabled) {
    overrides.speculation = defaults.speculation;
  }
  return overrides;
}

/// Result of one round: reducer outputs (in deterministic first-seen key
/// order) plus the exact cost metrics.
template <typename Output>
struct JobResult {
  std::vector<Output> outputs;
  JobMetrics metrics;
};

// StageKind and TaskSpan moved to src/engine/task_scheduler.h with the
// TaskScheduler interface; this header keeps the in-process
// implementation.

/// A dependency-graph task scheduler over the shared ThreadPool. Tasks are
/// added with explicit dependency edges and submitted to the pool the
/// moment their last dependency completes — there are no phase barriers,
/// only the edges the computation actually requires. Tasks may be added
/// while the graph is running (the plan executor stages round k+1 against
/// round k's still-running tasks); Wait blocks until every task added so
/// far has finished. Task completion is published under the executor's
/// mutex, so a task's writes happen-before every dependent task's reads.
class StageGraphExecutor : public TaskScheduler {
 public:
  using TaskId = TaskScheduler::TaskId;
  static constexpr TaskId kNoTask = TaskScheduler::kNoTask;

  explicit StageGraphExecutor(common::ThreadPool& pool);
  ~StageGraphExecutor() override;  // waits for every added task

  StageGraphExecutor(const StageGraphExecutor&) = delete;
  StageGraphExecutor& operator=(const StageGraphExecutor&) = delete;

  /// Adds a task depending on `deps` (kNoTask entries are ignored;
  /// already-finished deps are fine). Runs on the pool as soon as every
  /// dep is done. `fn` must never block on another task — all waiting is
  /// the caller's (Wait), so pool threads always make progress.
  ///
  /// A `speculatable` task may be run twice concurrently (original +
  /// backup) once speculation is configured: its fn must be idempotent,
  /// race-free against a concurrent copy of itself, and commit its result
  /// first-wins (StagedRound's shard tasks compute into attempt-local
  /// buffers and publish under a commit lock). The executor keeps a
  /// speculatable task's fn alive after the first attempt starts so a
  /// backup can re-run it.
  /// `trace_name` (a string literal; the executor keeps only the pointer)
  /// and `shard` label the task's span in the obs trace; a null name falls
  /// back to the stage kind's generic name.
  TaskId AddTask(StageKind kind, std::uint32_t round_tag,
                 std::vector<TaskId> deps, std::function<void()> fn,
                 bool speculatable = false, const char* trace_name = nullptr,
                 std::uint32_t shard = 0) override;

  /// Arms speculative backups for subsequently running speculatable tasks.
  /// Latest call wins; a disabled config turns backups off again.
  void ConfigureSpeculation(const SpeculationConfig& config);

  /// Speculation accounting, per round tag. Stable once the round's tasks
  /// have drained (no further backups can launch for finished tasks).
  struct SpeculationStats {
    std::uint64_t launched = 0;   // backup attempts submitted
    std::uint64_t won = 0;        // backups that finished first
    std::uint64_t discarded = 0;  // losing attempts (original or backup)
  };
  SpeculationStats speculation_stats(std::uint32_t round_tag) const;

  /// Replaces the clock used to measure task elapsed time for speculation
  /// decisions (ms, monotone). Tests inject a manual clock to make backup
  /// triggering deterministic; timing spans keep using the real clock.
  void SetClockForTest(std::function<double()> clock);

  /// Blocks until every task added so far has finished — including losing
  /// speculative attempts, so no attempt can touch round state after Wait
  /// returns. Polls the speculation check while blocked (backups launch
  /// even when every pool thread is busy running stragglers).
  void Wait() override;

  /// The task's recorded span (zeros until it ran). Thread-safe.
  TaskSpan SpanOf(TaskId id) const override;

  /// Every task's (kind, round tag, span), for cross-round overlap
  /// accounting. Call after Wait.
  struct TaskRecord {
    StageKind kind;
    std::uint32_t round_tag;
    TaskSpan span;
  };
  std::vector<TaskRecord> SnapshotRecords() const;

  /// Milliseconds since this executor's construction.
  double NowMs() const override;

  common::ThreadPool& pool() { return pool_; }

 private:
  struct Task {
    std::function<void()> fn;
    std::vector<TaskId> dependents;
    std::size_t unmet = 0;
    bool done = false;
    StageKind kind = StageKind::kOther;
    std::uint32_t round_tag = 0;
    TaskSpan span;
    // Speculation bookkeeping.
    bool speculatable = false;
    bool started = false;          // first attempt picked the task up
    bool backup_launched = false;  // at most one backup per task
    double start_clock_ms = 0;     // speculation clock at first start
    // Trace labeling (trace_id == 0 when tracing was off at AddTask).
    const char* trace_name = nullptr;
    std::uint32_t shard = 0;
    std::uint64_t trace_id = 0;
  };

  void RunAttempt(TaskId id, bool is_backup);
  void SubmitAttempt(TaskId id, bool is_backup);
  /// Scans running speculatable tasks against the median completed
  /// duration of their (round, stage) peers; launches backups for the
  /// slow ones. Caller holds mu_; returns the backups to submit.
  std::vector<TaskId> MaybeSpeculateLocked();
  double SpecClockLocked() const {
    return clock_ ? clock_() : NowMs();
  }

  common::ThreadPool& pool_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::condition_variable all_done_;
  std::deque<Task> tasks_;
  std::size_t pending_ = 0;
  /// Attempts submitted to the pool but not yet returned — includes
  /// losing attempts of already-done tasks, which Wait must drain before
  /// the round's state can be torn down.
  std::size_t attempts_outstanding_ = 0;
  SpeculationConfig spec_;
  std::function<double()> clock_;  // test override for speculation timing
  /// Completed durations of speculatable tasks, keyed by
  /// (round_tag, stage): the population the median is drawn from.
  std::unordered_map<std::uint64_t, std::vector<double>> completed_ms_;
  std::unordered_map<std::uint32_t, SpeculationStats> spec_stats_;
};

/// Bounded replacement for the std::async-thread-per-call ExecuteAsync:
/// every async plan execution runs on this small shared pool, so the
/// number of concurrently driven executions is bounded by its thread
/// count instead of growing with the number of outstanding futures. The
/// heavy lifting still happens on each execution's own (or caller-owned)
/// pool — these threads only drive the staging loop.
class AsyncRunner {
 public:
  static AsyncRunner& Global();

  template <typename Fn>
  auto Run(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    pool_.Submit([task] { (*task)(); });
    return future;
  }

 private:
  AsyncRunner();
  common::ThreadPool pool_;
};

namespace internal {

/// RAII choice between a caller-owned pool and a pool private to one round.
class PoolRef {
 public:
  explicit PoolRef(const JobOptions& options) {
    if (options.pool != nullptr) {
      pool_ = options.pool;
    } else {
      owned_.emplace(options.ResolvedThreads());
      pool_ = &*owned_;
    }
  }
  common::ThreadPool& get() { return *pool_; }

 private:
  std::optional<common::ThreadPool> owned_;
  common::ThreadPool* pool_ = nullptr;
};

/// Chunking shared by every round form: inputs are cut into contiguous
/// chunks, a small multiple of the thread count. Chunk boundaries never
/// affect results: grouping runs in scan-order-tag order, which equals
/// emission order in input order for every chunking.
inline std::size_t NumChunks(std::size_t num_inputs,
                             std::size_t num_threads) {
  return std::max<std::size_t>(1, std::min(num_inputs, num_threads * 4));
}

/// Scan-order tag carried by every routed pair. Lexicographic (major,
/// minor) order over a round's pairs equals the barrier engine's global
/// scan order, so the first-seen-key merge is identical no matter which
/// task produced a pair or when it ran:
///   * materialized input — major is the pair's global emission position
///     (task base + local index, bases applied at group time), minor 0;
///   * streamed input — major is the producing upstream key's global
///     first-seen rank, minor a per-key emission counter (a key's outputs
///     are mapped in order, so (rank, counter) reproduces the order a
///     barrier round would scan the materialized outputs in).
struct PairPos {
  std::uint64_t major = 0;
  std::uint64_t minor = 0;
  friend bool operator<(const PairPos& a, const PairPos& b) {
    return a.major != b.major ? a.major < b.major : a.minor < b.minor;
  }
};

/// Sentinel combiner type marking a plain (uncombined) round.
struct NoCombine {};

/// What the planner predicted for a round before running it, attached to
/// the round's trace so predicted-vs-realized q/r can be read off a single
/// span ("which stage blew its bound"). All zeros / !valid when the round
/// was staged without an estimate.
struct RoundPrediction {
  bool valid = false;
  double q = 0;            // predicted max reducer input
  double r = 0;            // predicted replication rate
  double bound_ratio = 0;  // predicted r / lower-bound r(q); 0 = unknown
};

/// Type-erased face of a staged round — all the plan driver needs: stage
/// the finalize task, read metrics, and wire streamed consumers.
class StagedHandleBase {
 public:
  virtual ~StagedHandleBase() = default;

  /// Attaches the planner's prediction for trace attribution. Call before
  /// the round's finalize task can run (i.e. before executor Wait).
  virtual void SetPrediction(const RoundPrediction& prediction) = 0;
  virtual const RoundPrediction& prediction() const = 0;

  /// Stages the finalize task (deterministic merge + metrics). Streaming
  /// consumers pass their map-task ids as `extra_deps` so finalize does
  /// not move the shard outputs out from under a reader. Idempotent after
  /// the first call.
  virtual void StageFinalize(
      std::vector<StageGraphExecutor::TaskId> extra_deps) = 0;
  virtual bool finalize_staged() const = 0;

  /// Valid once the executor has drained this round's tasks.
  virtual const JobMetrics& metrics() const = 0;
  virtual ShuffleStrategy strategy() const = 0;

  /// Map / reduce task ids, for cross-round overlap accounting and for
  /// chaining a streamed consumer's maps behind this round's reduces.
  virtual const std::vector<StageGraphExecutor::TaskId>& map_task_ids()
      const = 0;
  virtual const std::vector<StageGraphExecutor::TaskId>& reduce_task_ids()
      const = 0;
};

/// Typed streaming face of a staged round: per-shard blocks of reduce
/// outputs a downstream per-key round consumes without a global barrier.
template <typename T>
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  virtual std::size_t stream_block_count() const = 0;
  /// Task after which block `b`'s outputs are readable (its reduce task).
  virtual StageGraphExecutor::TaskId stream_block_task(
      std::size_t block) const = 0;
  /// Task after which every block's key ranks are readable; staged on
  /// first call. kNoTask when ranks ride with the block tasks themselves
  /// (the external shuffle's merged key order is already global).
  virtual StageGraphExecutor::TaskId stream_ranks_task() = 0;
  /// Visits block `b`'s keys: global first-seen rank plus the key's
  /// reduce outputs. Only valid from a task depending on the block task
  /// and the ranks task.
  virtual void VisitStreamBlock(
      std::size_t block,
      const std::function<void(std::uint64_t rank,
                               const std::vector<T>& outputs)>& fn)
      const = 0;
};

inline double IntervalOverlap(double a_begin, double a_end, double b_begin,
                              double b_end) {
  return std::max(0.0, std::min(a_end, b_end) - std::max(a_begin, b_begin));
}

/// Wall-clock envelope of a set of tasks (invalid when empty).
struct StageWindow {
  double begin = 0;
  double end = 0;
  bool valid = false;
};

inline StageWindow WindowOf(const StageGraphExecutor& exec,
                            const std::vector<StageGraphExecutor::TaskId>&
                                tasks) {
  StageWindow w;
  for (const auto id : tasks) {
    const TaskSpan span = exec.SpanOf(id);
    if (!w.valid || span.begin_ms < w.begin) w.begin = span.begin_ms;
    if (!w.valid || span.end_ms > w.end) w.end = span.end_ms;
    w.valid = true;
  }
  return w;
}

/// One staged map-reduce round: builds the MapPartition -> ShardGroup ->
/// ReduceShard -> Finalize task graph (MapSpill -> Merge -> ReduceRange ->
/// Finalize for the external shuffle) on a StageGraphExecutor, and doubles
/// as a StreamSource so a per-key downstream round can consume its shard
/// outputs as they complete. MapFn / CombineFn / ReduceFn are template
/// parameters so the eager RunMapReduce path keeps direct calls; the plan
/// path instantiates with std::function. CombineFn == NoCombine marks a
/// plain round.
template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
class StagedRound final : public StagedHandleBase, public StreamSource<Out> {
 public:
  using TaskId = StageGraphExecutor::TaskId;
  static constexpr bool kCombined = !std::is_same_v<CombineFn, NoCombine>;

  /// Stages a round over a materialized input vector. `inputs` must stay
  /// valid until the executor drains the round (`keepalive`, when set,
  /// guarantees that for plan slots). `pairs_hint` sizes the shard count
  /// before any pair exists — the plan driver passes its declared or
  /// sampled pair estimate; 0 means unknown, which assumes a large round
  /// (one shard per thread) rather than starving fan-out rounds of
  /// parallelism.
  static std::shared_ptr<StagedRound> StageMaterialized(
      StageGraphExecutor& exec, std::uint32_t round_tag,
      const std::vector<In>& inputs, std::shared_ptr<const void> keepalive,
      MapFn map_fn, CombineFn combine_fn, ReduceFn reduce_fn,
      const JobOptions& options, std::uint64_t pairs_hint = 0) {
    auto self = std::shared_ptr<StagedRound>(new StagedRound(
        exec, round_tag, std::move(map_fn), std::move(combine_fn),
        std::move(reduce_fn), options));
    self->self_ = self;
    self->inputs_ = &inputs;
    self->keepalive_ = std::move(keepalive);
    self->BuildMaterialized(
        pairs_hint == 0 ? static_cast<std::size_t>(-1)
                        : static_cast<std::size_t>(pairs_hint));
    return self;
  }

  /// Stages a plain round whose input streams per-shard from `upstream`.
  /// Only in-memory strategies stream; the caller falls back to the
  /// materialized path for external and combined rounds.
  static std::shared_ptr<StagedRound> StageStreamed(
      StageGraphExecutor& exec, std::uint32_t round_tag,
      std::shared_ptr<StagedHandleBase> upstream_handle,
      StreamSource<In>* upstream, MapFn map_fn, ReduceFn reduce_fn,
      const JobOptions& options) {
    static_assert(!kCombined, "combined rounds do not stream their input");
    auto self = std::shared_ptr<StagedRound>(new StagedRound(
        exec, round_tag, std::move(map_fn), CombineFn{},
        std::move(reduce_fn), options));
    self->self_ = self;
    self->upstream_keepalive_ = std::move(upstream_handle);
    self->BuildStreamed(upstream);
    return self;
  }

  /// Where finalize publishes the merged outputs (a plan slot); when
  /// unset, outputs land in result().
  void set_output_slot(std::shared_ptr<void>* slot) { output_slot_ = slot; }

  /// Valid after StageGraphExecutor::Wait (finalize staged and drained).
  JobResult<Out>& result() { return result_; }
  JobResult<Out> TakeResult() { return std::move(result_); }

  // ----- StagedHandleBase

  void StageFinalize(std::vector<TaskId> extra_deps) override {
    if (finalize_staged_) return;
    finalize_staged_ = true;
    std::vector<TaskId> deps = reduce_tasks_;
    deps.insert(deps.end(), extra_deps.begin(), extra_deps.end());
    auto self = self_.lock();
    finalize_task_ = exec_.AddTask(StageKind::kFinalize, round_tag_,
                                   std::move(deps),
                                   [self] { self->Finalize(); },
                                   /*speculatable=*/false, "Finalize");
  }
  bool finalize_staged() const override { return finalize_staged_; }
  const JobMetrics& metrics() const override { return result_.metrics; }
  ShuffleStrategy strategy() const override { return strategy_; }
  void SetPrediction(const RoundPrediction& prediction) override {
    prediction_ = prediction;
  }
  const RoundPrediction& prediction() const override { return prediction_; }
  const std::vector<TaskId>& map_task_ids() const override {
    return map_tasks_;
  }
  const std::vector<TaskId>& reduce_task_ids() const override {
    return reduce_tasks_;
  }

  // ----- StreamSource<Out>

  std::size_t stream_block_count() const override {
    return reduce_tasks_.size();
  }
  TaskId stream_block_task(std::size_t block) const override {
    return reduce_tasks_[block];
  }
  TaskId stream_ranks_task() override {
    if (strategy_ == ShuffleStrategy::kExternal) {
      return StageGraphExecutor::kNoTask;  // merged order is global already
    }
    if (ranks_task_ == StageGraphExecutor::kNoTask) {
      auto self = self_.lock();
      ranks_task_ =
          exec_.AddTask(StageKind::kOther, round_tag_, group_tasks_,
                        [self] { self->AssignKeyRanks(); },
                        /*speculatable=*/false, "AssignKeyRanks");
    }
    return ranks_task_;
  }
  void VisitStreamBlock(
      std::size_t block,
      const std::function<void(std::uint64_t rank,
                               const std::vector<Out>& outputs)>& fn)
      const override {
    if (strategy_ == ShuffleStrategy::kExternal) {
      for (std::size_t i = range_begin_[block];
           i < range_begin_[block + 1]; ++i) {
        fn(static_cast<std::uint64_t>(i), flat_outputs_[i]);
      }
      return;
    }
    const Shard& shard = shards_[block];
    for (std::size_t i = 0; i < shard.keys.size(); ++i) {
      fn(shard.ranks[i], shard.outputs[i]);
    }
  }

 private:
  using Block = storage::KVBlock<K, V>;

  /// One in-memory shard's grouped state, filled by its ShardGroup task
  /// and consumed by its ReduceShard task.
  struct Shard {
    std::vector<K> keys;
    std::vector<PairPos> first;  // scan tag of each key's first pair
    std::vector<std::vector<V>> groups;
    std::vector<std::uint64_t> ranks;       // filled by AssignKeyRanks
    std::vector<std::uint64_t> sizes;       // group sizes (groups freed)
    std::vector<std::vector<Out>> outputs;  // filled by ReduceShard
    std::vector<ReducerLoad> loads;         // when simulating
    std::uint64_t routed_rows = 0;          // rows routed to this shard
  };

  StagedRound(StageGraphExecutor& exec, std::uint32_t round_tag, MapFn map_fn,
              CombineFn combine_fn, ReduceFn reduce_fn,
              const JobOptions& options)
      : exec_(exec),
        round_tag_(round_tag),
        map_(std::move(map_fn)),
        combine_(std::move(combine_fn)),
        reduce_(std::move(reduce_fn)),
        options_(options),
        strategy_(options.ResolvedShuffleStrategy()),
        simulation_(options.ResolvedSimulation()) {
    // Speculation covers the in-memory shard tasks only (spill/merge is
    // I/O-bound and externally ordered) and needs copyable values: both
    // attempts read the same routed blocks, so neither may move from
    // them. Move-only rounds silently run undefended.
    speculative_ = options_.speculation.enabled &&
                   strategy_ != ShuffleStrategy::kExternal &&
                   std::is_copy_constructible_v<V>;
    if (speculative_) exec_.ConfigureSpeculation(options_.speculation);
    // Paired clock samples so executor-relative task times (ms) convert
    // into the trace timebase (us) when Finalize emits the round span.
    trace_base_us_ = obs::TraceRecorder::NowUs();
    exec_base_ms_ = exec_.NowMs();
  }

  void BuildMaterialized(std::size_t pairs_hint);
  void BuildStreamed(StreamSource<In>* upstream);
  void StageGroupAndReduce();

  void MapChunk(std::size_t c, std::size_t lo, std::size_t hi);
  void MapStreamBlock(std::size_t b);
  void PlanPartition();
  void RouteBlock(std::size_t task);
  std::unique_ptr<Block> CombineBlock(Block& in, std::uint64_t& bytes,
                                      std::vector<std::uint64_t>* row_bytes);
  void GroupShard(std::size_t p);
  void MergeSpills();
  template <typename Keys, typename Groups>
  void ReduceKeyRange(const Keys& keys, Groups& groups, std::size_t lo,
                      std::size_t hi, std::vector<std::uint64_t>& sizes,
                      std::vector<std::vector<Out>>& outputs,
                      std::vector<ReducerLoad>* loads);
  void ReduceShard(std::size_t p);
  void ReduceRange(std::size_t t);
  void AssignKeyRanks();
  void Finalize();
  void FillTimings(JobMetrics& m) const;

  /// The shards' keys in global first-seen order: (scan tag, shard, index
  /// within shard), sorted by tag. The single source of the cross-shard
  /// key order — AssignKeyRanks and Finalize's merge both use it, so
  /// streamed ranks can never diverge from the finalize order.
  std::vector<std::tuple<PairPos, std::uint32_t, std::uint32_t>>
  SortedKeyOrder() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.keys.size();
    std::vector<std::tuple<PairPos, std::uint32_t, std::uint32_t>> order;
    order.reserve(total);
    for (std::uint32_t p = 0; p < shards_.size(); ++p) {
      for (std::uint32_t i = 0; i < shards_[p].keys.size(); ++i) {
        order.emplace_back(shards_[p].first[i], p, i);
      }
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) {
                return std::get<0>(a) < std::get<0>(b);
              });
    return order;
  }

  StageGraphExecutor& exec_;
  std::uint32_t round_tag_ = 0;
  MapFn map_;
  CombineFn combine_;
  ReduceFn reduce_;
  JobOptions options_;
  ShuffleStrategy strategy_;
  SimulationOptions simulation_;
  RoundPrediction prediction_;
  std::uint64_t trace_base_us_ = 0;
  double exec_base_ms_ = 0;
  std::weak_ptr<StagedRound> self_;

  // Input: exactly one of (inputs_, upstream_) is set.
  const std::vector<In>* inputs_ = nullptr;
  std::shared_ptr<const void> keepalive_;
  StreamSource<In>* upstream_ = nullptr;
  std::shared_ptr<StagedHandleBase> upstream_keepalive_;
  bool streamed_input_ = false;

  std::size_t num_map_tasks_ = 0;
  std::size_t num_shards_ = 1;

  // Per-map-task partials (indexed by task). Each map task owns one
  // columnar block; shard_rows_[task][shard] holds the row indices the
  // radix pass routed to that shard, so ShardGroup tasks consume index
  // ranges instead of copied pairs.
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<std::vector<std::vector<std::uint32_t>>> shard_rows_;
  // Streamed only: scan-order tag per block row (parallel column).
  std::vector<std::vector<PairPos>> tag_pos_;
  std::vector<std::uint64_t> task_pairs_;      // routed (post-combine)
  std::vector<std::uint64_t> task_raw_pairs_;  // pre-combine
  std::vector<std::uint64_t> task_bytes_;      // shuffled bytes
  std::vector<std::uint64_t> task_inputs_;     // streamed: inputs consumed
  std::vector<std::uint64_t> task_blocks_;     // blocks handed downstream
  std::vector<std::uint64_t> task_copied_;     // bytes physically copied

  // External-shuffle state.
  std::unique_ptr<storage::RunSpiller> spiller_;
  std::vector<common::Status> spill_status_;
  std::vector<storage::ColumnarRun> tails_;
  storage::SpillStats spill_stats_;
  ShuffleResult<K, V> merged_;
  std::vector<std::size_t> range_begin_;  // ReduceRange key boundaries
  std::vector<std::vector<Out>> flat_outputs_;
  std::vector<std::uint64_t> flat_sizes_;
  std::vector<ReducerLoad> flat_loads_;

  std::vector<Shard> shards_;

  /// Global key order cached by AssignKeyRanks for Finalize (empty when
  /// no streamed consumer forced the rank task).
  std::vector<std::tuple<PairPos, std::uint32_t, std::uint32_t>> key_order_;

  // Skew defenses (see src/engine/partitioner.h). use_range_ defers the
  // radix routing behind a sampling task; speculative_ lets shard tasks
  // run twice, computing into attempt-local buffers committed first-wins
  // under commit_mu_.
  bool use_range_ = false;
  bool speculative_ = false;
  std::unique_ptr<RangePartitioner> range_partitioner_;
  std::mutex commit_mu_;
  std::vector<char> group_committed_;
  std::vector<char> reduce_committed_;

  std::vector<TaskId> map_tasks_;
  std::vector<TaskId> route_tasks_;   // sampled-range only: deferred radix
  std::vector<TaskId> group_tasks_;   // in-memory: per shard; external: merge
  std::vector<TaskId> reduce_tasks_;  // per shard / per key range
  TaskId ranks_task_ = StageGraphExecutor::kNoTask;
  TaskId finalize_task_ = StageGraphExecutor::kNoTask;
  bool finalize_staged_ = false;

  std::shared_ptr<void>* output_slot_ = nullptr;
  JobResult<Out> result_;
};

// ---------------------------------------------------------------------------
// StagedRound implementation.

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::
    BuildMaterialized(std::size_t pairs_hint) {
  const std::size_t n = inputs_->size();
  num_map_tasks_ = NumChunks(n, exec_.pool().num_threads());
  result_.metrics.num_inputs = n;
  if (strategy_ != ShuffleStrategy::kExternal) {
    num_shards_ = strategy_ == ShuffleStrategy::kSerial
                      ? 1
                      : ResolveShardCount(options_.num_shards,
                                          exec_.pool().num_threads(),
                                          std::max<std::size_t>(pairs_hint,
                                                                1));
    use_range_ =
        options_.shuffle.partitioner == PartitionerKind::kSampledRange &&
        num_shards_ > 1;
  }
  task_pairs_.assign(num_map_tasks_, 0);
  task_raw_pairs_.assign(num_map_tasks_, 0);
  task_bytes_.assign(num_map_tasks_, 0);
  task_blocks_.assign(num_map_tasks_, 0);
  task_copied_.assign(num_map_tasks_, 0);
  if (strategy_ == ShuffleStrategy::kExternal) {
    spiller_ =
        std::make_unique<storage::RunSpiller>(options_.shuffle.spill_dir);
    spill_status_.assign(num_map_tasks_, common::Status::Ok());
    tails_.resize(num_map_tasks_);
  } else {
    blocks_.resize(num_map_tasks_);
    shard_rows_.resize(num_map_tasks_);
    for (auto& rows : shard_rows_) rows.resize(num_shards_);
  }

  const std::size_t chunk_size =
      n == 0 ? 0 : (n + num_map_tasks_ - 1) / num_map_tasks_;
  map_tasks_.reserve(num_map_tasks_);
  auto self = self_.lock();
  for (std::size_t c = 0; c < num_map_tasks_; ++c) {
    const std::size_t lo = std::min(n, c * chunk_size);
    const std::size_t hi = std::min(n, lo + chunk_size);
    map_tasks_.push_back(exec_.AddTask(
        StageKind::kMap, round_tag_, {},
        [self, c, lo, hi] { self->MapChunk(c, lo, hi); },
        /*speculatable=*/false,
        strategy_ == ShuffleStrategy::kExternal ? "MapSpill" : "MapPartition",
        static_cast<std::uint32_t>(c)));
  }
  StageGroupAndReduce();
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::BuildStreamed(
    StreamSource<In>* upstream) {
  MRCOST_CHECK(strategy_ != ShuffleStrategy::kExternal);
  streamed_input_ = true;
  upstream_ = upstream;
  num_map_tasks_ = std::max<std::size_t>(1, upstream->stream_block_count());
  num_shards_ = strategy_ == ShuffleStrategy::kSerial
                    ? 1
                    : ResolveShardCount(options_.num_shards,
                                        exec_.pool().num_threads(),
                                        static_cast<std::size_t>(-1));
  use_range_ =
      options_.shuffle.partitioner == PartitionerKind::kSampledRange &&
      num_shards_ > 1;
  task_pairs_.assign(num_map_tasks_, 0);
  task_raw_pairs_.assign(num_map_tasks_, 0);
  task_bytes_.assign(num_map_tasks_, 0);
  task_inputs_.assign(num_map_tasks_, 0);
  task_blocks_.assign(num_map_tasks_, 0);
  task_copied_.assign(num_map_tasks_, 0);
  blocks_.resize(num_map_tasks_);
  shard_rows_.resize(num_map_tasks_);
  for (auto& rows : shard_rows_) rows.resize(num_shards_);
  tag_pos_.resize(num_map_tasks_);

  const TaskId ranks = upstream->stream_ranks_task();
  map_tasks_.reserve(num_map_tasks_);
  auto self = self_.lock();
  for (std::size_t b = 0; b < upstream->stream_block_count(); ++b) {
    map_tasks_.push_back(exec_.AddTask(
        StageKind::kMap, round_tag_,
        {upstream->stream_block_task(b), ranks},
        [self, b] { self->MapStreamBlock(b); },
        /*speculatable=*/false, "MapPartition",
        static_cast<std::uint32_t>(b)));
  }
  if (map_tasks_.empty()) {
    // Degenerate upstream with zero blocks: a single empty map task keeps
    // the stage graph (and its timing windows) well-formed.
    map_tasks_.push_back(exec_.AddTask(StageKind::kMap, round_tag_, {},
                                       [] {}, /*speculatable=*/false,
                                       "MapPartition"));
  }
  StageGroupAndReduce();
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn,
                 ReduceFn>::StageGroupAndReduce() {
  auto self = self_.lock();
  if (strategy_ == ShuffleStrategy::kExternal) {
    const TaskId merge = exec_.AddTask(StageKind::kShuffle, round_tag_,
                                       map_tasks_,
                                       [self] { self->MergeSpills(); },
                                       /*speculatable=*/false, "Merge");
    group_tasks_ = {merge};
    const std::size_t ranges =
        std::max<std::size_t>(1, exec_.pool().num_threads() * 2);
    range_begin_.assign(ranges + 1, 0);
    reduce_tasks_.reserve(ranges);
    for (std::size_t t = 0; t < ranges; ++t) {
      reduce_tasks_.push_back(
          exec_.AddTask(StageKind::kReduce, round_tag_, {merge},
                        [self, t] { self->ReduceRange(t); },
                        /*speculatable=*/false, "ReduceRange",
                        static_cast<std::uint32_t>(t)));
    }
    return;
  }
  shards_.resize(num_shards_);
  if (speculative_) {
    group_committed_.assign(num_shards_, 0);
    reduce_committed_.assign(num_shards_, 0);
  }
  // Sampled-range placement defers routing: one plan task samples the
  // mapped hash distribution once every map finished, then per-map route
  // tasks run the radix pass against the planned ranges. Under hash
  // placement the maps route inline and groups depend on them directly.
  const std::vector<TaskId>* group_deps = &map_tasks_;
  if (use_range_) {
    const TaskId plan =
        exec_.AddTask(StageKind::kShuffle, round_tag_, map_tasks_,
                      [self] { self->PlanPartition(); },
                      /*speculatable=*/false, "PlanPartition");
    route_tasks_.reserve(num_map_tasks_);
    for (std::size_t t = 0; t < num_map_tasks_; ++t) {
      route_tasks_.push_back(
          exec_.AddTask(StageKind::kShuffle, round_tag_, {plan},
                        [self, t] { self->RouteBlock(t); },
                        /*speculatable=*/false, "RouteBlock",
                        static_cast<std::uint32_t>(t)));
    }
    group_deps = &route_tasks_;
  }
  group_tasks_.reserve(num_shards_);
  for (std::size_t p = 0; p < num_shards_; ++p) {
    group_tasks_.push_back(
        exec_.AddTask(StageKind::kShuffle, round_tag_, *group_deps,
                      [self, p] { self->GroupShard(p); }, speculative_,
                      "ShardGroup", static_cast<std::uint32_t>(p)));
  }
  reduce_tasks_.reserve(num_shards_);
  for (std::size_t p = 0; p < num_shards_; ++p) {
    reduce_tasks_.push_back(
        exec_.AddTask(StageKind::kReduce, round_tag_, {group_tasks_[p]},
                      [self, p] { self->ReduceShard(p); }, speculative_,
                      "ReduceShard", static_cast<std::uint32_t>(p)));
  }
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
auto StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::CombineBlock(
    Block& in, std::uint64_t& bytes, std::vector<std::uint64_t>* row_bytes)
    -> std::unique_ptr<Block> {
  // Map-side combine, first-seen key order within the chunk — the same
  // fold the barrier engine ran, so post-combine rows (and their bytes,
  // re-measured on what actually crosses the shuffle) are identical. Keys
  // dedup on serialized bytes (serde is injective), so no key object is
  // ever rebuilt: inserts re-append the raw key slab bytes and duplicates
  // fold into the already-typed value column.
  auto out = std::make_unique<Block>();
  if constexpr (kCombined) {
    storage::KeyIndex index;
    index.Reserve(in.rows());
    for (std::size_t r = 0; r < in.rows(); ++r) {
      bool inserted = false;
      const std::size_t g =
          index.FindOrInsert(in.hash(r), in.key_bytes(r), inserted);
      if (inserted) {
        out->AppendRaw(in.key_bytes(r), in.hash(r), std::move(in.value(r)));
      } else {
        out->value(g) = combine_(std::move(out->value(g)),
                                 std::move(in.value(r)));
      }
    }
    bytes = 0;
    if (row_bytes != nullptr) row_bytes->reserve(out->rows());
    for (std::size_t r = 0; r < out->rows(); ++r) {
      const std::uint64_t b =
          common::ByteSizeOf(out->KeyAt(r)) + common::ByteSizeOf(out->value(r));
      bytes += b;
      if (row_bytes != nullptr) row_bytes->push_back(b);
    }
  }
  return out;
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::MapChunk(
    std::size_t c, std::size_t lo, std::size_t hi) {
  Emitter<K, V> emitter;
  const auto cc = static_cast<std::uint32_t>(c);
  if (strategy_ == ShuffleStrategy::kExternal) {
    common::Status& status = spill_status_[c];
    if constexpr (kCombined) {
      // Post-combine rows are what cross the shuffle. The combined block
      // is sliced by accumulated ByteSizeOf at the chunk's budget share;
      // each slice sorts and spills as one columnar run. Spill positions
      // are the post-combine emission order, matching the RunWriter path.
      const std::uint64_t budget =
          options_.shuffle.memory_budget_bytes / num_map_tasks_;
      for (std::size_t i = lo; i < hi; ++i) map_((*inputs_)[i], emitter);
      task_raw_pairs_[c] = emitter.block().rows();
      std::uint64_t bytes = 0;
      std::vector<std::uint64_t> row_bytes;
      auto combined = CombineBlock(emitter.block(), bytes, &row_bytes);
      task_bytes_[c] = bytes;
      task_pairs_[c] = combined->rows();
      task_blocks_[c] = emitter.blocks_emitted();
      task_copied_[c] = emitter.bytes_copied() + combined->CopiedBytes();
      std::size_t lo_row = 0;
      std::uint64_t acc = 0;
      for (std::size_t r = 0; r < combined->rows() && status.ok(); ++r) {
        acc += row_bytes[r];
        if (acc > budget) {
          auto run = storage::SortedRunFromBlock(
              *combined, lo_row, r + 1, [&](std::uint32_t j) {
                return storage::MakeSpillPos(cc, lo_row + j);
              });
          status = spiller_->SpillBlockRun(run);
          lo_row = r + 1;
          acc = 0;
        }
      }
      if (status.ok() && lo_row < combined->rows()) {
        tails_[c] = storage::SortedRunFromBlock(
            *combined, lo_row, combined->rows(), [&](std::uint32_t j) {
              return storage::MakeSpillPos(cc, lo_row + j);
            });
      }
    } else {
      // One block buffer at the chunk's full budget share (the old path
      // halved the share between the pair buffer and the RunWriter's
      // serialized batch; blocks spill straight from the emitter, so
      // there is no second stage to reserve for). Each overflowed block
      // sorts and spills as one columnar run.
      const std::uint64_t share =
          options_.shuffle.memory_budget_bytes / num_map_tasks_;
      std::uint64_t next_local = 0;
      emitter.SetOverflow(share, [this, &status, &next_local, cc](
                                     Block& block) {
        if (!status.ok()) return;
        auto run = storage::SortedRunFromBlock(
            block, 0, block.rows(), [&](std::uint32_t j) {
              return storage::MakeSpillPos(cc, next_local + j);
            });
        next_local += block.rows();
        status = spiller_->SpillBlockRun(run);
      });
      for (std::size_t i = lo; i < hi; ++i) map_((*inputs_)[i], emitter);
      task_bytes_[c] = emitter.bytes();
      task_raw_pairs_[c] = task_pairs_[c] = emitter.num_emitted();
      task_blocks_[c] = emitter.blocks_emitted();
      task_copied_[c] = emitter.bytes_copied();
      if (status.ok() && !emitter.block().empty()) {
        Block& block = emitter.block();
        tails_[c] = storage::SortedRunFromBlock(
            block, 0, block.rows(), [&](std::uint32_t j) {
              return storage::MakeSpillPos(cc, next_local + j);
            });
      }
    }
    return;
  }

  for (std::size_t i = lo; i < hi; ++i) map_((*inputs_)[i], emitter);
  if constexpr (kCombined) {
    task_raw_pairs_[c] = emitter.block().rows();
    std::uint64_t bytes = 0;
    blocks_[c] = CombineBlock(emitter.block(), bytes, nullptr);
    task_bytes_[c] = bytes;
    task_pairs_[c] = blocks_[c]->rows();
    task_blocks_[c] = emitter.blocks_emitted();
    task_copied_[c] = emitter.bytes_copied() + blocks_[c]->CopiedBytes();
  } else {
    task_raw_pairs_[c] = task_pairs_[c] = emitter.num_emitted();
    task_bytes_[c] = emitter.bytes();
    task_blocks_[c] = emitter.blocks_emitted();
    task_copied_[c] = emitter.bytes_copied();
    blocks_[c] = std::make_unique<Block>(std::move(emitter.block()));
  }
  if (!use_range_) RouteBlock(c);
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn,
                 ReduceFn>::PlanPartition() {
  // Samples the mapped hash distribution (strided over every block's hash
  // column, capped so huge rounds pay a bounded sort) and cuts it into
  // ranges of near-equal pair weight. One entry per sampled *pair*, so a
  // hot key's weight counts once per occurrence — exactly the skew the
  // equal-width hash placement is blind to.
  constexpr std::size_t kMaxSample = std::size_t{64} * 1024;
  std::size_t total = 0;
  for (const auto& block : blocks_) {
    if (block != nullptr) total += block->rows();
  }
  const std::size_t stride = std::max<std::size_t>(1, total / kMaxSample);
  std::vector<std::uint64_t> sample;
  sample.reserve(total / stride + num_map_tasks_);
  for (const auto& block : blocks_) {
    if (block == nullptr) continue;
    for (std::size_t r = 0; r < block->rows(); r += stride) {
      sample.push_back(block->hash(r));
    }
  }
  range_partitioner_ = std::make_unique<RangePartitioner>(
      BuildRangePartitioner(std::move(sample), num_shards_));
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::RouteBlock(
    std::size_t task) {
  // Radix pass: shards receive row-index ranges into the task's block,
  // not copies — the block's hash column already holds the routing hash.
  // Under sampled-range placement this runs as its own task (after
  // PlanPartition); equal hashes land on equal shards either way, which
  // is all grouping correctness needs.
  if (blocks_[task] == nullptr) return;
  auto& rows = shard_rows_[task];
  const Block& block = *blocks_[task];
  const RangePartitioner* range = range_partitioner_.get();
  for (std::size_t r = 0; r < block.rows(); ++r) {
    const std::size_t p =
        num_shards_ == 1
            ? 0
            : (range != nullptr ? range->ShardOf(block.hash(r))
                                : IndexOfHash(block.hash(r), num_shards_));
    rows[p].push_back(static_cast<std::uint32_t>(r));
  }
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::MapStreamBlock(
    std::size_t b) {
  Emitter<K, V> emitter;
  std::vector<PairPos>& tags = tag_pos_[b];
  std::uint64_t inputs_seen = 0;
  upstream_->VisitStreamBlock(
      b, [&](std::uint64_t rank, const std::vector<In>& outs) {
        const std::size_t mark = emitter.block().rows();
        for (const In& o : outs) {
          ++inputs_seen;
          map_(o, emitter);
        }
        // Rows emitted for this upstream key carry its final (rank, seq)
        // tag in a parallel column — the block itself stays append-only.
        std::uint64_t seq = 0;
        for (std::size_t r = mark; r < emitter.block().rows(); ++r) {
          tags.push_back(PairPos{rank, seq++});
        }
      });
  task_inputs_[b] = inputs_seen;
  task_raw_pairs_[b] = task_pairs_[b] = emitter.block().rows();
  task_bytes_[b] = emitter.bytes();
  task_blocks_[b] = emitter.blocks_emitted();
  task_copied_[b] = emitter.bytes_copied();
  blocks_[b] = std::make_unique<Block>(std::move(emitter.block()));
  if (!use_range_) RouteBlock(b);
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::GroupShard(
    std::size_t p) {
  // Grouping builds into an attempt-local Shard: non-speculative rounds
  // move it straight into place; speculative attempts race to commit it
  // first-wins (the loser's copy is dropped, so duplicated work never
  // changes the round's state). Under speculation values are *copied* out
  // of the routed blocks and the row indices are kept — the concurrent
  // twin attempt reads the same blocks.
  Shard sh;
  std::size_t owned = 0;
  for (std::size_t t = 0; t < num_map_tasks_; ++t) {
    owned += shard_rows_[t][p].size();
  }
  sh.routed_rows = owned;
  // Grouping dedups on the blocks' serialized key bytes (serde is
  // injective): one open-addressing probe per row, no typed hashing or
  // key copies until a group's first row deserializes its key once.
  storage::KeyIndex index;
  index.Reserve(owned);
  const auto take = [this](Block& block, std::uint32_t r) -> V {
    if constexpr (std::is_copy_constructible_v<V>) {
      if (speculative_) return block.value(r);
    }
    return std::move(block.value(r));
  };

  if (!streamed_input_) {
    // Scanning each task's routed rows in row order visits pairs in
    // global scan order (tasks are contiguous input ranges), so append
    // order is already deterministic; only the tag's task base needs
    // applying.
    std::uint64_t base = 0;
    for (std::size_t t = 0; t < num_map_tasks_; ++t) {
      auto& rows = shard_rows_[t][p];
      if (blocks_[t] != nullptr) {
        Block& block = *blocks_[t];
        for (const std::uint32_t r : rows) {
          bool inserted = false;
          const std::size_t g =
              index.FindOrInsert(block.hash(r), block.key_bytes(r), inserted);
          if (inserted) {
            sh.keys.push_back(block.KeyAt(r));
            sh.groups.emplace_back();
            sh.first.push_back(PairPos{base + r, 0});
          }
          sh.groups[g].push_back(take(block, r));
        }
      }
      if (!speculative_) {
        rows.clear();
        rows.shrink_to_fit();
      }
      base += task_pairs_[t];
    }
  } else {
    // Streamed input: rows carry final (rank, seq) tags but arrive
    // interleaved across upstream shards, so value order inside a group
    // (and each key's first-seen tag) must be restored by tag.
    std::vector<std::vector<PairPos>> vpos;
    for (std::size_t t = 0; t < num_map_tasks_; ++t) {
      auto& rows = shard_rows_[t][p];
      if (blocks_[t] != nullptr) {
        Block& block = *blocks_[t];
        const auto& tags = tag_pos_[t];
        for (const std::uint32_t r : rows) {
          const PairPos pos = tags[r];
          bool inserted = false;
          const std::size_t g =
              index.FindOrInsert(block.hash(r), block.key_bytes(r), inserted);
          if (inserted) {
            sh.keys.push_back(block.KeyAt(r));
            sh.groups.emplace_back();
            vpos.emplace_back();
            sh.first.push_back(pos);
          } else if (pos < sh.first[g]) {
            sh.first[g] = pos;
          }
          sh.groups[g].push_back(take(block, r));
          vpos[g].push_back(pos);
        }
      }
      if (!speculative_) {
        rows.clear();
        rows.shrink_to_fit();
      }
    }
    for (std::size_t g = 0; g < sh.groups.size(); ++g) {
      auto& tags = vpos[g];
      if (std::is_sorted(tags.begin(), tags.end())) continue;
      std::vector<std::uint32_t> order(tags.size());
      for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&tags](std::uint32_t a, std::uint32_t b) {
                  return tags[a] < tags[b];
                });
      std::vector<V> sorted;
      sorted.reserve(order.size());
      for (std::uint32_t i : order) {
        sorted.push_back(std::move(sh.groups[g][i]));
      }
      sh.groups[g] = std::move(sorted);
    }
  }

  if (!speculative_) {
    shards_[p] = std::move(sh);
    return;
  }
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (!group_committed_[p]) {
    group_committed_[p] = 1;
    shards_[p] = std::move(sh);
  }
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::MergeSpills() {
  for (const common::Status& status : spill_status_) {
    MRCOST_CHECK_OK(status);
  }
  storage::SpillStats stats;
  auto merged = internal::MergeSpilledBlockRuns<K, V>(
      *spiller_, tails_, options_.shuffle.merge_fan_in, stats);
  MRCOST_CHECK_OK(merged.status());
  spill_stats_ = stats;
  merged_ = std::move(merged.value());
  spiller_.reset();  // run files removed as soon as the merge is done
  tails_.clear();

  const std::size_t nkeys = merged_.keys.size();
  const std::size_t ranges = range_begin_.size() - 1;
  for (std::size_t t = 0; t <= ranges; ++t) {
    range_begin_[t] = t * nkeys / ranges;
  }
  flat_outputs_.resize(nkeys);
  flat_sizes_.resize(nkeys);
  if (simulation_.enabled()) flat_loads_.resize(nkeys);
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
template <typename Keys, typename Groups>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::ReduceKeyRange(
    const Keys& keys, Groups& groups, std::size_t lo, std::size_t hi,
    std::vector<std::uint64_t>& sizes,
    std::vector<std::vector<Out>>& outputs,
    std::vector<ReducerLoad>* loads) {
  const bool need_bytes =
      loads != nullptr && (simulation_.cost_per_byte > 0 ||
                           simulation_.reducer_capacity_bytes > 0);
  for (std::size_t i = lo; i < hi; ++i) {
    if constexpr (std::is_copy_constructible_v<V>) {
      if (speculative_) {
        // Twin attempts may reduce this shard concurrently and a reduce
        // fn takes its group by mutable reference, so each attempt works
        // on its own copy and the shared group is neither mutated nor
        // freed (it dies with the round object instead).
        std::vector<V> group = groups[i];
        sizes[i] = group.size();
        if (loads != nullptr) {
          std::uint64_t bytes = 0;
          if (need_bytes) {
            bytes = common::ByteSizeOf(keys[i]);
            for (const V& v : group) bytes += common::ByteSizeOf(v);
          }
          (*loads)[i] = ReducerLoad{HashValue(keys[i]), group.size(), bytes};
        }
        reduce_(keys[i], group, outputs[i]);
        continue;
      }
    }
    auto& group = groups[i];
    sizes[i] = group.size();
    if (loads != nullptr) {
      std::uint64_t bytes = 0;
      if (need_bytes) {
        bytes = common::ByteSizeOf(keys[i]);
        for (const V& v : group) bytes += common::ByteSizeOf(v);
      }
      (*loads)[i] = ReducerLoad{HashValue(keys[i]), group.size(), bytes};
    }
    reduce_(keys[i], group, outputs[i]);
    std::vector<V>().swap(group);  // free each group as it reduces
  }
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::ReduceShard(
    std::size_t p) {
  Shard& shard = shards_[p];
  const std::size_t n = shard.keys.size();
  if (!speculative_) {
    shard.outputs.resize(n);
    shard.sizes.resize(n);
    if (simulation_.enabled()) shard.loads.resize(n);
    ReduceKeyRange(shard.keys, shard.groups, 0, n, shard.sizes,
                   shard.outputs,
                   simulation_.enabled() ? &shard.loads : nullptr);
    return;
  }
  // Speculative attempt: reduce into attempt-local buffers (reading the
  // committed keys/groups, which no attempt mutates) and publish
  // first-wins.
  std::vector<std::vector<Out>> outputs(n);
  std::vector<std::uint64_t> sizes(n);
  std::vector<ReducerLoad> loads;
  if (simulation_.enabled()) loads.resize(n);
  ReduceKeyRange(shard.keys, shard.groups, 0, n, sizes, outputs,
                 simulation_.enabled() ? &loads : nullptr);
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (!reduce_committed_[p]) {
    reduce_committed_[p] = 1;
    shard.outputs = std::move(outputs);
    shard.sizes = std::move(sizes);
    shard.loads = std::move(loads);
  }
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::ReduceRange(
    std::size_t t) {
  ReduceKeyRange(merged_.keys, merged_.groups, range_begin_[t],
                 range_begin_[t + 1], flat_sizes_, flat_outputs_,
                 simulation_.enabled() ? &flat_loads_ : nullptr);
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn,
                 ReduceFn>::AssignKeyRanks() {
  for (Shard& shard : shards_) shard.ranks.resize(shard.keys.size());
  // Cache the order for Finalize, which runs strictly after this task
  // (finalize depends on the consumer maps, which depend on it) — the
  // O(K log K) merge sort is paid once per round, not twice.
  key_order_ = SortedKeyOrder();
  for (std::size_t r = 0; r < key_order_.size(); ++r) {
    shards_[std::get<1>(key_order_[r])].ranks[std::get<2>(key_order_[r])] =
        r;
  }
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::FillTimings(
    JobMetrics& m) const {
  const StageWindow map = internal::WindowOf(exec_, map_tasks_);
  const StageWindow shuffle = internal::WindowOf(exec_, group_tasks_);
  const StageWindow reduce = internal::WindowOf(exec_, reduce_tasks_);
  if (!map.valid || !shuffle.valid || !reduce.valid) return;
  m.map_ms = map.end - map.begin;
  m.shuffle_ms = shuffle.end - shuffle.begin;
  m.reduce_ms = reduce.end - reduce.begin;
  // Idle thread-time at the graph's real dependency edges: map chunks
  // waiting for the slowest map before any group can start (the one true
  // barrier the stage graph keeps), plus each shard's gap between its
  // group finishing and its reduce starting (≈0 here; the cost the old
  // engine's reduce barrier paid).
  double wait = 0;
  for (TaskId id : map_tasks_) {
    wait += std::max(0.0, shuffle.begin - exec_.SpanOf(id).end_ms);
  }
  if (group_tasks_.size() == reduce_tasks_.size()) {
    for (std::size_t p = 0; p < group_tasks_.size(); ++p) {
      wait += std::max(0.0, exec_.SpanOf(reduce_tasks_[p]).begin_ms -
                                exec_.SpanOf(group_tasks_[p]).end_ms);
    }
  } else {
    for (TaskId id : reduce_tasks_) {
      wait += std::max(0.0, exec_.SpanOf(id).begin_ms - shuffle.end);
    }
  }
  m.barrier_wait_ms = wait;
  m.overlap_ms =
      IntervalOverlap(map.begin, map.end, shuffle.begin, shuffle.end) +
      IntervalOverlap(shuffle.begin, shuffle.end, reduce.begin, reduce.end);
  m.span_ms = std::max({map.end, shuffle.end, reduce.end}) - map.begin;
}

template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename CombineFn, typename ReduceFn>
void StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceFn>::Finalize() {
  JobMetrics& m = result_.metrics;
  const bool obs_metrics = obs::MetricsEnabled();
  common::Log2Histogram reducer_q_hist;
  common::Log2Histogram map_bytes_hist;
  for (std::size_t t = 0; t < num_map_tasks_; ++t) {
    m.pairs_before_combine += task_raw_pairs_[t];
    m.pairs_shuffled += task_pairs_[t];
    m.bytes_shuffled += task_bytes_[t];
    m.blocks_emitted += task_blocks_[t];
    m.bytes_copied += task_copied_[t];
    if (obs_metrics) map_bytes_hist.Add(task_bytes_[t]);
  }
  if (streamed_input_) {
    m.num_inputs = 0;
    for (std::uint64_t n : task_inputs_) m.num_inputs += n;
  }

  std::vector<Out> outputs;
  std::vector<ReducerLoad> loads;
  const bool sim = simulation_.enabled();

  if (strategy_ == ShuffleStrategy::kExternal) {
    m.spill_runs = spill_stats_.spill_runs;
    m.spill_bytes_written = spill_stats_.spill_bytes_written;
    m.merge_passes = spill_stats_.merge_passes;
    m.compression_ratio = spill_stats_.encode.CompressionRatio();
    const std::size_t nkeys = merged_.keys.size();
    m.num_reducers = nkeys;
    std::size_t total_outputs = 0;
    for (std::size_t i = 0; i < nkeys; ++i) {
      m.reducer_sizes.Add(static_cast<double>(flat_sizes_[i]));
      m.max_reducer_input =
          std::max<std::uint64_t>(m.max_reducer_input, flat_sizes_[i]);
      total_outputs += flat_outputs_[i].size();
      if (obs_metrics) reducer_q_hist.Add(flat_sizes_[i]);
    }
    outputs.reserve(total_outputs);
    for (auto& v : flat_outputs_) {
      for (auto& out : v) outputs.push_back(std::move(out));
    }
    if (sim) loads = std::move(flat_loads_);
  } else {
    // Deterministic merge: interleave the shards' keys back into global
    // first-seen order by scan tag — byte-identical to the serial
    // reference for every shard count, thread count, and task schedule.
    // (AssignKeyRanks caches the order when a streamed consumer ran.)
    const auto order =
        key_order_.empty() ? SortedKeyOrder() : std::move(key_order_);
    m.num_reducers = order.size();
    std::size_t total_outputs = 0;
    for (const auto& [pos, p, i] : order) {
      const std::uint64_t size = shards_[p].sizes[i];
      m.reducer_sizes.Add(static_cast<double>(size));
      m.max_reducer_input = std::max<std::uint64_t>(m.max_reducer_input,
                                                    size);
      total_outputs += shards_[p].outputs[i].size();
      if (obs_metrics) reducer_q_hist.Add(size);
    }
    outputs.reserve(total_outputs);
    if (sim) loads.reserve(order.size());
    for (const auto& [pos, p, i] : order) {
      for (auto& out : shards_[p].outputs[i]) {
        outputs.push_back(std::move(out));
      }
      if (sim) loads.push_back(shards_[p].loads[i]);
    }
    // How evenly the partitioner spread the routed pairs: max over mean
    // per-shard routed rows. 1.0 = perfectly balanced shards; the gap to
    // 1.0 is what sampled-range placement exists to close.
    if (num_shards_ > 1) {
      std::uint64_t total_routed = 0;
      std::uint64_t max_routed = 0;
      for (const Shard& shard : shards_) {
        total_routed += shard.routed_rows;
        max_routed = std::max(max_routed, shard.routed_rows);
      }
      if (total_routed > 0) {
        m.partition_skew_ratio =
            static_cast<double>(max_routed) /
            (static_cast<double>(total_routed) /
             static_cast<double>(num_shards_));
      }
    }
  }
  m.num_outputs = outputs.size();

  if (speculative_) {
    const auto stats = exec_.speculation_stats(round_tag_);
    m.speculative_launched = stats.launched;
    m.speculative_won = stats.won;
  }

  if (sim) {
    // Loads arrive in global first-seen key order — the exact order the
    // barrier engine fed SimulateCluster, so reports are bit-identical.
    const SimulationReport report = SimulateCluster(loads, simulation_);
    m.worker_loads = report.worker_pairs;
    m.makespan = report.makespan;
    m.load_imbalance = report.load_imbalance;
    m.straggler_impact = report.straggler_impact;
    m.capacity_violations = report.capacity_violations;
    // Simulated-defense accounting folds into the same counters the
    // executor's real backups use: both measure the round's defenses.
    m.hot_keys_split = report.hot_keys_split;
    m.speculative_launched += report.speculative_launched;
    m.speculative_won += report.speculative_won;
  }

  FillTimings(m);

  if (obs_metrics) {
    obs::Registry& registry = obs::Registry::Global();
    m.PublishTo(registry);
    registry.MergeHistogram("engine.reducer_q", reducer_q_hist);
    registry.MergeHistogram("engine.map_task_bytes", map_bytes_hist);
  }
  if (obs::TraceRecorder::enabled()) {
    // One summary span covering the round from its first map task to now
    // (finalize is the round's last task), carrying the planner's
    // predicted q/r next to the realized values so a trace answers
    // "which stage blew its bound" without cross-referencing logs.
    const StageWindow window = WindowOf(exec_, map_tasks_);
    const double begin_ms = window.valid ? window.begin : exec_base_ms_;
    auto to_trace_us = [&](double ms) {
      const double us =
          static_cast<double>(trace_base_us_) + (ms - exec_base_ms_) * 1000.0;
      return us > 0 ? static_cast<std::uint64_t>(us) : 0;
    };
    obs::TraceEvent event;
    event.name = "Round";
    event.category = "round";
    event.round = round_tag_;
    event.t_start_us = to_trace_us(begin_ms);
    event.t_end_us = to_trace_us(exec_.NowMs());
    event.args.push_back(obs::Arg(
        "strategy", strategy_ == ShuffleStrategy::kExternal ? "external"
                    : strategy_ == ShuffleStrategy::kSerial ? "serial"
                                                            : "sharded"));
    event.args.push_back(
        obs::Arg("shards", static_cast<std::uint64_t>(num_shards_)));
    event.args.push_back(obs::Arg("pairs", m.pairs_shuffled));
    event.args.push_back(obs::Arg("reducers", m.num_reducers));
    event.args.push_back(obs::Arg("realized_q", m.max_reducer_input));
    event.args.push_back(obs::Arg("realized_r", m.replication_rate()));
    if (prediction_.valid) {
      event.args.push_back(obs::Arg("predicted_q", prediction_.q));
      event.args.push_back(obs::Arg("predicted_r", prediction_.r));
      if (prediction_.q > 0) {
        event.args.push_back(obs::Arg(
            "q_residual",
            static_cast<double>(m.max_reducer_input) / prediction_.q));
      }
      if (prediction_.r > 0) {
        event.args.push_back(
            obs::Arg("r_residual", m.replication_rate() / prediction_.r));
      }
      if (prediction_.bound_ratio > 0) {
        event.args.push_back(
            obs::Arg("predicted_bound_ratio", prediction_.bound_ratio));
      }
    }
    obs::TraceRecorder::Global().Append(std::move(event));
  }

  if (output_slot_ != nullptr) {
    *output_slot_ = std::make_shared<std::vector<Out>>(std::move(outputs));
  } else {
    result_.outputs = std::move(outputs);
  }
  // Release the bulky intermediate state; nothing reads it after finalize
  // (streamed consumers are finalize dependencies). A speculative round
  // keeps it: a losing attempt may still be draining against the blocks
  // and groups, so the state dies with the round object instead (Wait
  // drains every attempt before results are consumed).
  if (!speculative_) {
    shards_.clear();
    merged_ = ShuffleResult<K, V>{};
    flat_outputs_.clear();
    flat_sizes_.clear();
    blocks_.clear();
    shard_rows_.clear();
    tag_pos_.clear();
  }
}

}  // namespace internal
}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_EXECUTOR_H_
