#include "src/engine/pipeline.h"

#include <sstream>

namespace mrcost::engine {

JobOptions Pipeline::PoolSizing(const PipelineOptions& options) {
  JobOptions sizing;
  sizing.num_threads = options.num_threads;
  sizing.pool = options.pool;
  return sizing;
}

Pipeline::Pipeline(PipelineOptions options)
    : options_(std::move(options)), pool_ref_(PoolSizing(options_)) {
  if (!options_.trace_out.empty() || !options_.metrics_out.empty()) {
    capture_.emplace(options_.trace_out, options_.metrics_out);
  }
}

Pipeline::Pipeline(const JobOptions& round_defaults)
    : Pipeline([&] {
        PipelineOptions options;
        options.num_threads = round_defaults.num_threads;
        options.pool = round_defaults.pool;
        options.round_defaults = round_defaults;
        return options;
      }()) {}

JobOptions Pipeline::Resolve(const std::optional<JobOptions>& round_options) {
  // Per-round options are merged over the round defaults field-wise (see
  // MergedJobOptions): explicitly set fields win, unset fields inherit.
  JobOptions resolved =
      round_options.has_value()
          ? MergedJobOptions(*round_options, options_.round_defaults)
          : options_.round_defaults;
  resolved.pool = &pool_ref_.get();
  // Pipeline-wide simulation backstop: a round that configures nothing
  // itself inherits the pipeline's simulated cluster.
  if (!resolved.simulation.enabled() && options_.simulation.enabled()) {
    resolved.simulation = options_.simulation;
  }
  // Same backstop for the shuffle, field-wise: whatever the round and the
  // round defaults left unset inherits the pipeline's shuffle config.
  resolved.shuffle = resolved.shuffle.MergedOver(options_.shuffle);
  return resolved;
}

std::vector<RoundCostReport> CompareToLowerBound(
    const PipelineMetrics& metrics, const core::Recipe& recipe) {
  std::vector<RoundCostReport> reports;
  reports.reserve(metrics.rounds.size());
  for (std::size_t i = 0; i < metrics.rounds.size(); ++i) {
    const JobMetrics& round = metrics.rounds[i];
    RoundCostReport report;
    report.round = i + 1;
    report.realized_q = static_cast<double>(round.max_reducer_input);
    report.realized_r = round.replication_rate();
    report.lower_bound_r = report.realized_q >= 1
                               ? core::ClampedReplicationLowerBound(
                                     recipe, report.realized_q)
                               : 0.0;
    report.optimality_ratio = report.lower_bound_r > 0
                                  ? report.realized_r / report.lower_bound_r
                                  : 0.0;
    report.simulated = round.simulated();
    report.makespan = round.makespan;
    report.load_imbalance = round.load_imbalance;
    report.straggler_impact = round.straggler_impact;
    report.capacity_violations = round.capacity_violations;
    report.speculative_launched = round.speculative_launched;
    report.speculative_won = round.speculative_won;
    report.hot_keys_split = round.hot_keys_split;
    report.partition_skew_ratio = round.partition_skew_ratio;
    report.external_shuffle = round.external_shuffle();
    report.spill_runs = round.spill_runs;
    report.spill_bytes_written = round.spill_bytes_written;
    report.merge_passes = round.merge_passes;
    report.compression_ratio = round.compression_ratio;
    report.blocks_emitted = round.blocks_emitted;
    report.bytes_copied = round.bytes_copied;
    report.timed = round.timed();
    report.map_ms = round.map_ms;
    report.shuffle_ms = round.shuffle_ms;
    report.reduce_ms = round.reduce_ms;
    report.barrier_wait_ms = round.barrier_wait_ms;
    report.overlap_fraction = round.overlap_fraction();
    reports.push_back(report);
  }
  return reports;
}

RoundCostReport CompareToLowerBound(const JobMetrics& metrics,
                                    const core::Recipe& recipe) {
  PipelineMetrics wrapped;
  wrapped.Add(metrics);
  return CompareToLowerBound(wrapped, recipe).front();
}

std::string ToString(const std::vector<RoundCostReport>& reports) {
  std::ostringstream os;
  for (const RoundCostReport& report : reports) {
    if (report.round > 1) os << "\n";
    os << "round " << report.round << ": q=" << report.realized_q
       << " r=" << report.realized_r << " bound=" << report.lower_bound_r
       << " ratio=" << report.optimality_ratio;
    if (report.external_shuffle) {
      os << " spill_runs=" << report.spill_runs
         << " spill_bytes=" << report.spill_bytes_written
         << " merge_passes=" << report.merge_passes;
      if (report.compression_ratio > 0) {
        os << " compression=" << report.compression_ratio;
      }
    }
    if (report.blocks_emitted > 0) {
      os << " blocks=" << report.blocks_emitted
         << " copied_bytes=" << report.bytes_copied;
    }
    if (report.simulated) {
      os << " makespan=" << report.makespan
         << " imbalance=" << report.load_imbalance
         << " straggler_impact=" << report.straggler_impact
         << " capacity_violations=" << report.capacity_violations;
    }
    if (report.speculative_launched > 0 || report.hot_keys_split > 0 ||
        report.partition_skew_ratio > 0) {
      os << " partition_skew=" << report.partition_skew_ratio
         << " speculative=" << report.speculative_won << "/"
         << report.speculative_launched
         << " hot_keys_split=" << report.hot_keys_split;
    }
    if (report.timed) {
      os << " map_ms=" << report.map_ms << " shuffle_ms=" << report.shuffle_ms
         << " reduce_ms=" << report.reduce_ms
         << " barrier_wait_ms=" << report.barrier_wait_ms
         << " overlap=" << report.overlap_fraction;
    }
  }
  return os.str();
}

}  // namespace mrcost::engine
