#include "src/engine/executor.h"

#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace mrcost::engine {
namespace {

std::uint64_t StageBucket(std::uint32_t round_tag, StageKind kind) {
  return (static_cast<std::uint64_t>(round_tag) << 3) |
         static_cast<std::uint64_t>(kind);
}

const char* StageCategory(StageKind kind) {
  switch (kind) {
    case StageKind::kMap:
      return "map";
    case StageKind::kShuffle:
      return "shuffle";
    case StageKind::kReduce:
      return "reduce";
    case StageKind::kFinalize:
      return "finalize";
    case StageKind::kOther:
      return "other";
  }
  return "other";
}

const char* DefaultTaskName(StageKind kind) {
  switch (kind) {
    case StageKind::kMap:
      return "MapTask";
    case StageKind::kShuffle:
      return "ShuffleTask";
    case StageKind::kReduce:
      return "ReduceTask";
    case StageKind::kFinalize:
      return "Finalize";
    case StageKind::kOther:
      return "Task";
  }
  return "Task";
}

/// Everything a trace span needs about a task, copied out under mu_ so the
/// event can be composed and appended lock-free.
struct AttemptLabel {
  const char* name = nullptr;
  StageKind kind = StageKind::kOther;
  std::uint32_t round = 0;
  std::uint32_t shard = 0;
  std::uint64_t trace_id = 0;
};

void EmitAttemptSpan(const AttemptLabel& label, std::uint64_t t_start_us,
                     std::uint64_t t_end_us, bool is_backup, bool won) {
  if (!obs::TraceRecorder::enabled() || label.trace_id == 0) return;
  obs::TraceEvent event;
  event.name = label.name != nullptr ? label.name
                                     : DefaultTaskName(label.kind);
  event.category = StageCategory(label.kind);
  event.round = label.round;
  event.shard = label.shard;
  event.task_id = label.trace_id;
  event.t_start_us = t_start_us;
  event.t_end_us = t_end_us;
  event.args.push_back(obs::Arg("attempt", is_backup ? "backup" : "primary"));
  event.args.push_back(obs::Arg("outcome", won ? "win" : "loss"));
  obs::TraceRecorder::Global().Append(std::move(event));
}

}  // namespace

StageGraphExecutor::StageGraphExecutor(common::ThreadPool& pool)
    : pool_(pool), epoch_(std::chrono::steady_clock::now()) {}

StageGraphExecutor::~StageGraphExecutor() { Wait(); }

double StageGraphExecutor::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void StageGraphExecutor::ConfigureSpeculation(
    const SpeculationConfig& config) {
  MRCOST_CHECK(!config.enabled || config.slowdown_factor >= 1.0);
  std::unique_lock<std::mutex> lock(mu_);
  spec_ = config;
}

StageGraphExecutor::SpeculationStats StageGraphExecutor::speculation_stats(
    std::uint32_t round_tag) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = spec_stats_.find(round_tag);
  return it == spec_stats_.end() ? SpeculationStats{} : it->second;
}

void StageGraphExecutor::SetClockForTest(std::function<double()> clock) {
  std::unique_lock<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

StageGraphExecutor::TaskId StageGraphExecutor::AddTask(
    StageKind kind, std::uint32_t round_tag, std::vector<TaskId> deps,
    std::function<void()> fn, bool speculatable, const char* trace_name,
    std::uint32_t shard) {
  TaskId id;
  bool ready;
  {
    std::unique_lock<std::mutex> lock(mu_);
    id = tasks_.size();
    tasks_.emplace_back();
    Task& task = tasks_.back();
    task.fn = std::move(fn);
    task.kind = kind;
    task.round_tag = round_tag;
    task.speculatable = speculatable;
    task.trace_name = trace_name;
    task.shard = shard;
    if (obs::TraceRecorder::enabled()) {
      task.trace_id = obs::TraceRecorder::Global().NextTaskId();
    }
    for (TaskId dep : deps) {
      if (dep == kNoTask) continue;
      if (!tasks_[dep].done) {
        ++task.unmet;
        tasks_[dep].dependents.push_back(id);
      }
    }
    ready = task.unmet == 0;
    ++pending_;
    if (ready) ++attempts_outstanding_;
  }
  if (ready) SubmitAttempt(id, /*is_backup=*/false);
  return id;
}

void StageGraphExecutor::SubmitAttempt(TaskId id, bool is_backup) {
  // attempts_outstanding_ was incremented by the caller under mu_, so Wait
  // cannot return between the decision to run this attempt and its start.
  pool_.Submit([this, id, is_backup] { RunAttempt(id, is_backup); });
}

void StageGraphExecutor::RunAttempt(TaskId id, bool is_backup) {
  std::function<void()> fn;
  AttemptLabel label;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Task& task = tasks_[id];
    label = AttemptLabel{task.trace_name, task.kind, task.round_tag,
                         task.shard, task.trace_id};
    if (task.done) {
      // The task finished before this attempt even started (a backup that
      // lost the race to the scheduler): nothing to run. A zero-length
      // loss span keeps the trace's attempt accounting complete.
      ++spec_stats_[task.round_tag].discarded;
      // Emit before the outstanding-count decrement: once Wait() can
      // return, every attempt span must already be recorded.
      const std::uint64_t now_us = obs::TraceRecorder::NowUs();
      EmitAttemptSpan(label, now_us, now_us, is_backup, /*won=*/false);
      if (--attempts_outstanding_ == 0 && pending_ == 0) {
        all_done_.notify_all();
      }
      return;
    }
    if (!task.started) {
      task.started = true;
      task.start_clock_ms = SpecClockLocked();
      task.span.begin_ms = NowMs();
    }
    if (task.speculatable) {
      fn = task.fn;  // keep the original alive for a (second) attempt
    } else {
      fn = std::move(task.fn);
      task.fn = nullptr;
    }
  }

  const std::uint64_t attempt_start_us = obs::TraceRecorder::NowUs();
  fn();
  const std::uint64_t attempt_end_us = obs::TraceRecorder::NowUs();

  std::vector<TaskId> ready;
  bool won = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Task& task = tasks_[id];
    if (task.done) {
      // The other attempt committed first; this copy's work is discarded
      // (its data never left attempt-local buffers).
      ++spec_stats_[task.round_tag].discarded;
    } else {
      won = true;
      task.done = true;
      task.fn = nullptr;
      task.span.end_ms = NowMs();
      if (task.speculatable) {
        completed_ms_[StageBucket(task.round_tag, task.kind)].push_back(
            SpecClockLocked() - task.start_clock_ms);
      }
      if (is_backup) ++spec_stats_[task.round_tag].won;
      for (TaskId dependent : task.dependents) {
        if (--tasks_[dependent].unmet == 0) ready.push_back(dependent);
      }
      task.dependents.clear();
      --pending_;
    }
    attempts_outstanding_ += ready.size();
    std::vector<TaskId> backups;
    if (won && spec_.enabled) {
      backups = MaybeSpeculateLocked();
    }
    // Record before the outstanding-count decrement: once Wait() can
    // return, every attempt's span and counters must already be visible.
    // The recorder/registry only take their own uncontended per-thread
    // locks, never mu_, so there is no ordering cycle.
    EmitAttemptSpan(label, attempt_start_us, attempt_end_us, is_backup, won);
    if (obs::MetricsEnabled()) {
      obs::Registry& registry = obs::Registry::Global();
      registry.ObserveHistogram("exec.task_duration_us",
                                attempt_end_us - attempt_start_us);
      registry.AddCounter(std::string("exec.tasks.") +
                          StageCategory(label.kind));
      if (is_backup && won) registry.AddCounter("exec.speculative_won");
      if (!won) registry.AddCounter("exec.attempts_discarded");
    }
    if (--attempts_outstanding_ == 0 && pending_ == 0) {
      all_done_.notify_all();
    }
    lock.unlock();
    for (TaskId backup : backups) SubmitAttempt(backup, /*is_backup=*/true);
  }
  for (TaskId next : ready) SubmitAttempt(next, /*is_backup=*/false);
}

std::vector<StageGraphExecutor::TaskId>
StageGraphExecutor::MaybeSpeculateLocked() {
  std::vector<TaskId> backups;
  if (!spec_.enabled) return backups;
  const double now = SpecClockLocked();
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    Task& task = tasks_[id];
    if (!task.speculatable || !task.started || task.done ||
        task.backup_launched) {
      continue;
    }
    const auto it = completed_ms_.find(StageBucket(task.round_tag,
                                                   task.kind));
    if (it == completed_ms_.end() || it->second.size() < spec_.min_completed) {
      continue;
    }
    // Median of completed same-stage peers (copy: the stored order is
    // completion order and must stay stable for determinism of spans).
    std::vector<double> durations = it->second;
    std::nth_element(durations.begin(),
                     durations.begin() + durations.size() / 2,
                     durations.end());
    const double median = durations[durations.size() / 2];
    const double threshold =
        spec_.slowdown_factor * std::max(median, spec_.min_task_ms);
    if (now - task.start_clock_ms <= threshold) continue;
    task.backup_launched = true;
    ++spec_stats_[task.round_tag].launched;
    ++attempts_outstanding_;
    backups.push_back(id);
    if (obs::MetricsEnabled()) {
      obs::Registry::Global().AddCounter("exec.speculative_launched");
    }
    if (obs::TraceRecorder::enabled()) {
      obs::TraceEvent event;
      event.name = "SpeculativeBackup";
      event.category = "speculation";
      event.phase = 'i';
      event.round = task.round_tag;
      event.shard = task.shard;
      event.task_id = task.trace_id;
      event.t_start_us = obs::TraceRecorder::NowUs();
      event.t_end_us = event.t_start_us;
      obs::TraceRecorder::Global().Append(std::move(event));
    }
  }
  return backups;
}

void StageGraphExecutor::Wait() {
  std::vector<TaskId> backups;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (pending_ == 0 && attempts_outstanding_ == 0) break;
      if (!spec_.enabled) {
        all_done_.wait(lock, [this] {
          return pending_ == 0 && attempts_outstanding_ == 0;
        });
        break;
      }
      // Speculation needs a heartbeat: a straggling task wakes nobody, so
      // poll the scan while blocked. 20ms keeps the check cheap relative
      // to any task worth backing up.
      all_done_.wait_for(lock, std::chrono::milliseconds(20));
      backups = MaybeSpeculateLocked();
      if (!backups.empty()) break;
    }
  }
  for (TaskId backup : backups) SubmitAttempt(backup, /*is_backup=*/true);
  if (!backups.empty()) Wait();
}

TaskSpan StageGraphExecutor::SpanOf(TaskId id) const {
  std::unique_lock<std::mutex> lock(mu_);
  return tasks_[id].span;
}

std::vector<StageGraphExecutor::TaskRecord>
StageGraphExecutor::SnapshotRecords() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<TaskRecord> records;
  records.reserve(tasks_.size());
  for (const Task& task : tasks_) {
    records.push_back(TaskRecord{task.kind, task.round_tag, task.span});
  }
  return records;
}

AsyncRunner::AsyncRunner() : pool_(2) {}

AsyncRunner& AsyncRunner::Global() {
  // Meyers singleton: destroyed at exit, after draining queued executions
  // (the pool destructor joins its workers), and leak-clean under ASan.
  static AsyncRunner runner;
  return runner;
}

}  // namespace mrcost::engine
