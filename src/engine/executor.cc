#include "src/engine/executor.h"

namespace mrcost::engine {
namespace {

std::uint64_t StageBucket(std::uint32_t round_tag, StageKind kind) {
  return (static_cast<std::uint64_t>(round_tag) << 3) |
         static_cast<std::uint64_t>(kind);
}

}  // namespace

StageGraphExecutor::StageGraphExecutor(common::ThreadPool& pool)
    : pool_(pool), epoch_(std::chrono::steady_clock::now()) {}

StageGraphExecutor::~StageGraphExecutor() { Wait(); }

double StageGraphExecutor::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void StageGraphExecutor::ConfigureSpeculation(
    const SpeculationConfig& config) {
  MRCOST_CHECK(!config.enabled || config.slowdown_factor >= 1.0);
  std::unique_lock<std::mutex> lock(mu_);
  spec_ = config;
}

StageGraphExecutor::SpeculationStats StageGraphExecutor::speculation_stats(
    std::uint32_t round_tag) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = spec_stats_.find(round_tag);
  return it == spec_stats_.end() ? SpeculationStats{} : it->second;
}

void StageGraphExecutor::SetClockForTest(std::function<double()> clock) {
  std::unique_lock<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

StageGraphExecutor::TaskId StageGraphExecutor::AddTask(
    StageKind kind, std::uint32_t round_tag, std::vector<TaskId> deps,
    std::function<void()> fn, bool speculatable) {
  TaskId id;
  bool ready;
  {
    std::unique_lock<std::mutex> lock(mu_);
    id = tasks_.size();
    tasks_.emplace_back();
    Task& task = tasks_.back();
    task.fn = std::move(fn);
    task.kind = kind;
    task.round_tag = round_tag;
    task.speculatable = speculatable;
    for (TaskId dep : deps) {
      if (dep == kNoTask) continue;
      if (!tasks_[dep].done) {
        ++task.unmet;
        tasks_[dep].dependents.push_back(id);
      }
    }
    ready = task.unmet == 0;
    ++pending_;
    if (ready) ++attempts_outstanding_;
  }
  if (ready) SubmitAttempt(id, /*is_backup=*/false);
  return id;
}

void StageGraphExecutor::SubmitAttempt(TaskId id, bool is_backup) {
  // attempts_outstanding_ was incremented by the caller under mu_, so Wait
  // cannot return between the decision to run this attempt and its start.
  pool_.Submit([this, id, is_backup] { RunAttempt(id, is_backup); });
}

void StageGraphExecutor::RunAttempt(TaskId id, bool is_backup) {
  std::function<void()> fn;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Task& task = tasks_[id];
    if (task.done) {
      // The task finished before this attempt even started (a backup that
      // lost the race to the scheduler): nothing to run.
      ++spec_stats_[task.round_tag].discarded;
      if (--attempts_outstanding_ == 0 && pending_ == 0) {
        all_done_.notify_all();
      }
      return;
    }
    if (!task.started) {
      task.started = true;
      task.start_clock_ms = SpecClockLocked();
      task.span.begin_ms = NowMs();
    }
    if (task.speculatable) {
      fn = task.fn;  // keep the original alive for a (second) attempt
    } else {
      fn = std::move(task.fn);
      task.fn = nullptr;
    }
  }

  fn();

  std::vector<TaskId> ready;
  bool won = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Task& task = tasks_[id];
    if (task.done) {
      // The other attempt committed first; this copy's work is discarded
      // (its data never left attempt-local buffers).
      ++spec_stats_[task.round_tag].discarded;
    } else {
      won = true;
      task.done = true;
      task.fn = nullptr;
      task.span.end_ms = NowMs();
      if (task.speculatable) {
        completed_ms_[StageBucket(task.round_tag, task.kind)].push_back(
            SpecClockLocked() - task.start_clock_ms);
      }
      if (is_backup) ++spec_stats_[task.round_tag].won;
      for (TaskId dependent : task.dependents) {
        if (--tasks_[dependent].unmet == 0) ready.push_back(dependent);
      }
      task.dependents.clear();
      --pending_;
    }
    attempts_outstanding_ += ready.size();
    std::vector<TaskId> backups;
    if (won && spec_.enabled) {
      backups = MaybeSpeculateLocked();
    }
    if (--attempts_outstanding_ == 0 && pending_ == 0) {
      all_done_.notify_all();
    }
    lock.unlock();
    for (TaskId backup : backups) SubmitAttempt(backup, /*is_backup=*/true);
  }
  for (TaskId next : ready) SubmitAttempt(next, /*is_backup=*/false);
}

std::vector<StageGraphExecutor::TaskId>
StageGraphExecutor::MaybeSpeculateLocked() {
  std::vector<TaskId> backups;
  if (!spec_.enabled) return backups;
  const double now = SpecClockLocked();
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    Task& task = tasks_[id];
    if (!task.speculatable || !task.started || task.done ||
        task.backup_launched) {
      continue;
    }
    const auto it = completed_ms_.find(StageBucket(task.round_tag,
                                                   task.kind));
    if (it == completed_ms_.end() || it->second.size() < spec_.min_completed) {
      continue;
    }
    // Median of completed same-stage peers (copy: the stored order is
    // completion order and must stay stable for determinism of spans).
    std::vector<double> durations = it->second;
    std::nth_element(durations.begin(),
                     durations.begin() + durations.size() / 2,
                     durations.end());
    const double median = durations[durations.size() / 2];
    const double threshold =
        spec_.slowdown_factor * std::max(median, spec_.min_task_ms);
    if (now - task.start_clock_ms <= threshold) continue;
    task.backup_launched = true;
    ++spec_stats_[task.round_tag].launched;
    ++attempts_outstanding_;
    backups.push_back(id);
  }
  return backups;
}

void StageGraphExecutor::Wait() {
  std::vector<TaskId> backups;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (pending_ == 0 && attempts_outstanding_ == 0) break;
      if (!spec_.enabled) {
        all_done_.wait(lock, [this] {
          return pending_ == 0 && attempts_outstanding_ == 0;
        });
        break;
      }
      // Speculation needs a heartbeat: a straggling task wakes nobody, so
      // poll the scan while blocked. 20ms keeps the check cheap relative
      // to any task worth backing up.
      all_done_.wait_for(lock, std::chrono::milliseconds(20));
      backups = MaybeSpeculateLocked();
      if (!backups.empty()) break;
    }
  }
  for (TaskId backup : backups) SubmitAttempt(backup, /*is_backup=*/true);
  if (!backups.empty()) Wait();
}

TaskSpan StageGraphExecutor::SpanOf(TaskId id) const {
  std::unique_lock<std::mutex> lock(mu_);
  return tasks_[id].span;
}

std::vector<StageGraphExecutor::TaskRecord>
StageGraphExecutor::SnapshotRecords() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<TaskRecord> records;
  records.reserve(tasks_.size());
  for (const Task& task : tasks_) {
    records.push_back(TaskRecord{task.kind, task.round_tag, task.span});
  }
  return records;
}

AsyncRunner::AsyncRunner() : pool_(2) {}

AsyncRunner& AsyncRunner::Global() {
  // Meyers singleton: destroyed at exit, after draining queued executions
  // (the pool destructor joins its workers), and leak-clean under ASan.
  static AsyncRunner runner;
  return runner;
}

}  // namespace mrcost::engine
