#include "src/engine/executor.h"

namespace mrcost::engine {

StageGraphExecutor::StageGraphExecutor(common::ThreadPool& pool)
    : pool_(pool), epoch_(std::chrono::steady_clock::now()) {}

StageGraphExecutor::~StageGraphExecutor() { Wait(); }

double StageGraphExecutor::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

StageGraphExecutor::TaskId StageGraphExecutor::AddTask(
    StageKind kind, std::uint32_t round_tag, std::vector<TaskId> deps,
    std::function<void()> fn) {
  TaskId id;
  bool ready;
  {
    std::unique_lock<std::mutex> lock(mu_);
    id = tasks_.size();
    tasks_.emplace_back();
    Task& task = tasks_.back();
    task.fn = std::move(fn);
    task.kind = kind;
    task.round_tag = round_tag;
    for (TaskId dep : deps) {
      if (dep == kNoTask) continue;
      if (!tasks_[dep].done) {
        ++task.unmet;
        tasks_[dep].dependents.push_back(id);
      }
    }
    ready = task.unmet == 0;
    ++pending_;
  }
  if (ready) {
    pool_.Submit([this, id] { RunTask(id); });
  }
  return id;
}

void StageGraphExecutor::RunTask(TaskId id) {
  std::function<void()> fn;
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_[id].span.begin_ms = NowMs();
    fn = std::move(tasks_[id].fn);
    tasks_[id].fn = nullptr;
  }
  fn();
  std::vector<TaskId> ready;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Task& task = tasks_[id];
    task.span.end_ms = NowMs();
    task.done = true;
    for (TaskId dependent : task.dependents) {
      if (--tasks_[dependent].unmet == 0) ready.push_back(dependent);
    }
    task.dependents.clear();
    if (--pending_ == 0) all_done_.notify_all();
  }
  for (TaskId next : ready) {
    pool_.Submit([this, next] { RunTask(next); });
  }
}

void StageGraphExecutor::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

TaskSpan StageGraphExecutor::SpanOf(TaskId id) const {
  std::unique_lock<std::mutex> lock(mu_);
  return tasks_[id].span;
}

std::vector<StageGraphExecutor::TaskRecord>
StageGraphExecutor::SnapshotRecords() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<TaskRecord> records;
  records.reserve(tasks_.size());
  for (const Task& task : tasks_) {
    records.push_back(TaskRecord{task.kind, task.round_tag, task.span});
  }
  return records;
}

AsyncRunner::AsyncRunner() : pool_(2) {}

AsyncRunner& AsyncRunner::Global() {
  // Meyers singleton: destroyed at exit, after draining queued executions
  // (the pool destructor joins its workers), and leak-clean under ASan.
  static AsyncRunner runner;
  return runner;
}

}  // namespace mrcost::engine
