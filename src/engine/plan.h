#ifndef MRCOST_ENGINE_PLAN_H_
#define MRCOST_ENGINE_PLAN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/cost_model.h"
#include "src/core/lower_bound.h"
#include "src/engine/dist_round.h"
#include "src/engine/emitter.h"
#include "src/engine/executor.h"
#include "src/engine/hashing.h"
#include "src/engine/job.h"
#include "src/engine/metrics.h"
#include "src/engine/pipeline.h"

namespace mrcost::engine {

// The lazy, typed dataflow surface of the engine: a Plan is a DAG of
// map-reduce round nodes built with Dataset<T> fluent calls
// (Map / CombineByKey / ReduceByKey) that run nothing when built. The
// paper's whole point is that a map-reduce computation has a knowable cost
// *before* it runs — the Section 2.4 recipe prices a mapping schema
// analytically — so the plan offers, in order:
//   * Estimate(recipe)  — predicted q, r, and lower-bound ratio per round
//                         from declared schema hints or map-fn sampling,
//                         priced through core::CostModel, before any data
//                         moves;
//   * Explain(options)  — the physical plan: per-round shuffle strategy,
//                         shard count, memory budget, simulation;
//   * Execute(options)  — lowering onto the stage-graph executor
//                         (src/engine/executor.h), byte-identical to the
//                         eager RunMapReduce for every shuffle strategy,
//                         with a per-round strategy chooser
//                         (serial/sharded/external from estimated
//                         intermediate bytes vs budget). Rounds whose
//                         stage declares a per-key input dependency
//                         (WithPerKeyInput) stream: round k's reduce
//                         output for shard s feeds round k+1's map with
//                         no global barrier between the rounds;
//   * ExecuteAsync      — the same, returning a future backed by the
//                         bounded AsyncRunner instead of a detached
//                         thread per call.

template <typename T>
class Dataset;
class Plan;

/// Analytic estimate hints for one round, declared by whoever knows the
/// mapping schema (the four family drivers declare the paper's exact
/// formulas). A stage declaring both `replication` and `num_reducers` is
/// priced by Estimate without executing anything; when either is 0,
/// Estimate samples the map function over the round's materialized input
/// instead — an exhaustive sample (max_sample_inputs >= |I|) reproduces
/// the realized r and q exactly, a partial sample extrapolates linearly.
struct StageEstimate {
  /// Pairs emitted per input — the schema's replication rate r.
  double replication = 0;
  /// Distinct reduce keys the schema addresses (the paper's reducers).
  double num_reducers = 0;
  /// Predicted reduce outputs per reducer, used to propagate the input
  /// count of the next round of a multi-round plan. Defaults to 1 (the
  /// aggregation-shaped common case).
  double outputs_per_reducer = 1;
  /// ByteSizeOf bytes per shuffled pair; 0 = measure by sampling.
  double bytes_per_pair = 0;
};

/// One round of a PlanEstimate: the predicted communication geometry and
/// its standing against the recipe lower bound, all computed before the
/// round runs.
struct RoundEstimate {
  std::size_t round = 0;  // 1-based, matching RoundCostReport
  std::string label;
  /// True when the round's input count was read off a materialized
  /// dataset (always true for round 1); false when it was propagated from
  /// the previous round's predicted reducers x outputs_per_reducer.
  bool inputs_known = false;
  double num_inputs = 0;
  double predicted_pairs = 0;
  /// Predicted replication rate r = predicted_pairs / num_inputs. For a
  /// combined round this is the pre-combine rate (an upper bound on what
  /// crosses the shuffle).
  double predicted_r = 0;
  double predicted_reducers = 0;
  /// Predicted reducer size q: the exact max input-list length when the
  /// round was sampled exhaustively, else the mean load
  /// predicted_pairs / predicted_reducers.
  double predicted_q = 0;
  double predicted_bytes = 0;
  /// Section 2.4 bound at predicted_q, clamped at the trivial r >= 1.
  double lower_bound_r = 0;
  /// predicted_r / lower_bound_r (see RoundCostReport::optimality_ratio
  /// for the reading of values below 1 on partial-result rounds).
  double optimality_ratio = 0;
  /// cost_model.Cost(predicted_r, predicted_q) — the Section 1.2 price.
  double cost = 0;
  /// The strategy the per-round chooser would pick for this round under
  /// the EstimateOptions' shuffle config.
  ShuffleStrategy planned_strategy = ShuffleStrategy::kAuto;
  /// True when any field came from sampling the map function (vs hints
  /// and propagation alone).
  bool sampled = false;
};

struct PlanEstimate {
  std::vector<RoundEstimate> rounds;

  double total_predicted_pairs() const;
  double total_cost() const;
  std::string ToString() const;
};

/// Knobs for Plan::Estimate.
struct EstimateOptions {
  /// Prices each round's (r, q) point; default weighs communication only.
  core::CostModel cost_model;
  /// Inputs sampled per round to fill hint gaps (deterministic stride
  /// sample). >= the source size means exhaustive: predicted r and q are
  /// then exact for round 1. 0 = sample everything.
  std::size_t max_sample_inputs = 1024;
  /// Shuffle config the planned_strategy annotation is computed against.
  ShuffleConfig shuffle;
  /// Optional feedback from executed rounds: when set, each round's
  /// wall-clock cost terms are scaled by calibration->skew_factor() — the
  /// realized makespan inflation previous executions observed — so the
  /// estimate prices the cluster that actually ran, not the perfectly
  /// balanced one. Not owned; may be null.
  const core::RuntimeCalibration* calibration = nullptr;
};

/// Which runtime executes the plan's rounds.
enum class ExecutionBackend {
  /// Stage-graph tasks on the in-process thread pool (the default).
  kInProcess,
  /// A coordinator process (this one) fork/execs N `mrcost-worker`
  /// processes and dispatches map/reduce tasks over socket RPC; the
  /// shuffle moves through spill-format-v2 run files in a shared
  /// directory (see src/dist/). Outputs are byte-identical to
  /// kInProcess. Requires the plan to be registered as a dist recipe
  /// (src/dist/registry.h) so workers can rebuild it; unregistered plans
  /// fall back to in-process execution with a warning. Simulation options
  /// are ignored — real worker processes replace the simulated cluster.
  kMultiProcess,
};

/// How shuffled bytes travel from map workers to reduce workers.
enum class ShuffleTransport {
  /// Map tasks write spill-format-v2 run files into the shared job
  /// directory; reduce tasks read them back. Correct and observable, but
  /// every shuffled byte pays a filesystem write + read and the runtime
  /// is pinned to one machine.
  kSpillFiles,
  /// Map tasks retain their encoded runs in a worker-local registry and
  /// reduce tasks pull them over per-worker data sockets with
  /// credit-based flow control (reducers never buffer more than their
  /// share of memory_budget_bytes). Outputs are byte-identical to
  /// kSpillFiles; a source worker dying mid-stream triggers map
  /// re-execution and a re-fetch (dist.refetched_runs).
  kWireStream,
};

/// Knobs for the multi-process backend.
struct DistOptions {
  int num_workers = 2;
  /// Shuffle data path; see ShuffleTransport.
  ShuffleTransport shuffle_transport = ShuffleTransport::kSpillFiles;
  /// kWireStream only: cap on the encoded run bytes each worker retains
  /// in memory for serving; past it, new runs overflow to worker-private
  /// files (still served over the wire). 0 = unbounded.
  std::uint64_t retain_budget_bytes = 0;
  /// Shared shuffle directory; empty = a fresh TempDir under the system
  /// temp dir, removed when the job finishes (unless keep_spills).
  std::string spill_dir;
  bool keep_spills = false;
  /// Worker executable; empty = "mrcost-worker" next to this binary.
  std::string worker_binary;
  double heartbeat_interval_ms = 100;
  /// A worker silent for this long is declared dead (SIGKILL + task
  /// re-issue).
  double heartbeat_timeout_ms = 2000;
  /// Fault injection: worker `kill_worker_index` raises SIGKILL on
  /// receiving its `kill_after_tasks`-th map task (-1 = disabled). The
  /// coordinator re-issues its tasks; outputs stay byte-identical.
  int kill_worker_index = -1;
  int kill_after_tasks = 1;
  /// Fault injection (kWireStream): worker `kill_worker_index` raises
  /// SIGKILL while serving its `kill_after_fetches`-th FetchRun — a death
  /// mid-stream, with reducers actively pulling from it. 0 = disabled;
  /// overrides kill_after_tasks when set.
  int kill_after_fetches = 0;
};

/// Knobs for Plan::Execute / ExecuteAsync.
struct ExecutionOptions {
  /// Thread sizing, round defaults, simulation, and the pipeline-wide
  /// shuffle backstop — exactly what the eager Pipeline takes, so a plan
  /// execution is configured like the pipeline it lowers onto.
  PipelineOptions pipeline;
  /// Per-round strategy chooser: a round whose resolved shuffle strategy
  /// is still kAuto gets serial/sharded/external picked from its
  /// estimated intermediate bytes vs the memory budget (sampling the map
  /// function over `strategy_sample_inputs` of the round's actual,
  /// materialized inputs). Replaces the eager path's all-or-nothing
  /// budget=>external rule: only rounds estimated over budget pay the
  /// spill path. Outputs are byte-identical for every choice; only memory
  /// behaviour and spill metrics differ.
  bool choose_strategy_per_round = true;
  std::size_t strategy_sample_inputs = 256;
  /// Dissolve the barrier between consecutive rounds whose consumer stage
  /// declared a per-key input dependency (WithPerKeyInput): the producer's
  /// per-shard reduce outputs stream into the consumer's map tasks as
  /// each shard completes, on one shared stage graph. Byte-identical to
  /// the barrier schedule — outputs and (non-timing) metrics are the
  /// same; only wall-clock overlap changes. Streaming needs an in-memory
  /// strategy on both sides, a plain (uncombined) consumer, and a sole
  /// consumer; anything else falls back to the barrier path. Set false to
  /// force the sequential round-by-round schedule (the bench's baseline).
  bool streaming = true;
  /// Optional feedback sink: after each simulated round, the executor
  /// calls calibration->Observe(load_imbalance, straggler_impact) so later
  /// Plan::Estimate calls (passing the same object in EstimateOptions)
  /// price the cluster's realized skew. Not owned; may be null. The
  /// object is mutated from the execution thread — share one per planning
  /// thread.
  core::RuntimeCalibration* calibration = nullptr;
  /// When non-empty, the execution runs inside an obs capture scope:
  /// trace_out receives a Chrome trace_event JSON timeline (Perfetto /
  /// chrome://tracing loadable) of every stage-graph task plus one
  /// "Round" summary span per round carrying predicted-vs-realized q/r;
  /// metrics_out receives the obs::Registry snapshot as one JSON
  /// document. Files are written when execution finishes.
  std::string trace_out;
  std::string metrics_out;
  /// Optional problem recipe for trace attribution: when set, each
  /// round's predicted bound ratio (predicted r over the recipe's
  /// lower-bound r(q) at the predicted q) rides on the round span.
  /// Not owned; may be null.
  const core::Recipe* recipe = nullptr;
  /// Where the rounds run; see ExecutionBackend.
  ExecutionBackend backend = ExecutionBackend::kInProcess;
  DistOptions dist;

  ExecutionOptions() = default;
  explicit ExecutionOptions(PipelineOptions options)
      : pipeline(std::move(options)) {}
  /// Convenience mirroring Pipeline(const JobOptions&): a plan execution
  /// matching one round's JobOptions — what the family drivers construct
  /// from their caller-facing options argument.
  explicit ExecutionOptions(const JobOptions& round_defaults) {
    pipeline.num_threads = round_defaults.num_threads;
    pipeline.pool = round_defaults.pool;
    pipeline.round_defaults = round_defaults;
  }
};

/// What Execute returns for a typed target dataset: its materialized
/// elements plus the exact per-round metrics of everything that ran.
template <typename T>
struct ExecutionResult {
  std::vector<T> outputs;
  PipelineMetrics metrics;
  /// The shuffle strategy each executed round actually ran (after the
  /// per-round chooser), aligned with metrics.rounds.
  std::vector<ShuffleStrategy> round_strategies;
};

namespace internal {

inline constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);
inline constexpr std::size_t kUnknownSize = static_cast<std::size_t>(-1);

/// What sampling a round's map function over (a stride sample of) its
/// materialized input measures.
struct MapSample {
  bool valid = false;       // input was materialized, sampling ran
  bool exhaustive = false;  // the sample covered every input
  std::size_t sampled_inputs = 0;
  double pairs_per_input = 0;
  double bytes_per_input = 0;
  std::uint64_t distinct_keys = 0;
  std::uint64_t max_group = 0;  // max pairs sharing one key in the sample
};

struct PlanGraph;

/// One type-erased node of the DAG: either a materialized source or a
/// map(+combine)+reduce round. The typed closures are bound by
/// KeyedDataset::ReduceByKey; everything the untyped executor needs
/// (stage / sample / input_size) is std::function.
struct PlanNode {
  std::string label;
  bool is_source = false;
  bool combined = false;
  /// The stage declared a per-key input dependency: its map consumes each
  /// upstream output independently, so the executor may stream the
  /// producer's per-shard reduce outputs into this round's map tasks.
  bool per_key_input = false;
  std::size_t input = kNoNode;  // producer node of this round's input
  std::size_t source_size = 0;  // for sources
  StageEstimate hint;
  std::optional<JobOptions> options;  // per-round overrides (field-wise)
  /// Stages this round's task graph onto `exec`. `upstream` non-null asks
  /// for the streamed form (input read per-shard from the producer's
  /// StreamSource); returns null if this round cannot stream, in which
  /// case the driver materializes the input and calls again with null.
  /// `pairs_hint` is the driver's pair estimate for shard sizing (0 =
  /// unknown).
  std::function<std::shared_ptr<StagedHandleBase>(
      PlanGraph&, StageGraphExecutor& exec, const JobOptions&,
      const std::shared_ptr<StagedHandleBase>& upstream,
      std::uint64_t pairs_hint)>
      stage;
  std::function<MapSample(const PlanGraph&, std::size_t)> sample;
  std::function<std::size_t(const PlanGraph&)> input_size;
  /// The round's multi-process lowering (see src/engine/dist_round.h);
  /// null when the round's types cannot cross a process boundary through
  /// serde — such rounds run in-process even under kMultiProcess.
  std::shared_ptr<DistRoundOps> dist;
};

/// Shared state behind Plan and every Dataset handle: the nodes in
/// creation (= topological) order and, per node, the materialized
/// std::vector<T> slot (type-erased; sources are materialized at build
/// time, rounds when they execute).
struct PlanGraph {
  std::vector<PlanNode> nodes;
  std::vector<std::shared_ptr<void>> slots;
  /// Per executed round (in execution order), the strategy it ran with —
  /// filled by the most recent Execute.
  std::vector<ShuffleStrategy> last_strategies;
  /// Recipe identity for the multi-process backend: when non-empty, a
  /// worker process rebuilds this exact graph via
  /// dist::PlanRegistry::Build(dist_recipe, dist_args), so node indices
  /// (and the typed closures behind them) line up across processes.
  /// Stamped by the recipe builders in src/dist/recipes.h; empty for
  /// ad-hoc plans, which then cannot run multi-process.
  std::string dist_recipe;
  std::string dist_args;
};

/// Deterministic stride sample of `map_fn` over `inputs`: runs the map on
/// every stride-th input into a scratch emitter and measures fan-out,
/// bytes, and key multiplicity. Never moves any data — this is the
/// "evaluate the schema, not the job" half of the paper's cost model.
template <typename In, typename K, typename V>
MapSample SampleMapFanout(
    const std::vector<In>& inputs,
    const std::function<void(const In&, Emitter<K, V>&)>& map_fn,
    std::size_t max_inputs) {
  MapSample sample;
  sample.valid = true;
  if (inputs.empty()) {
    sample.exhaustive = true;
    return sample;
  }
  const std::size_t take =
      max_inputs == 0 ? inputs.size() : std::min(inputs.size(), max_inputs);
  // Indices spread across the whole range (i * n / take), not a prefix:
  // drivers concatenate heterogeneous inputs (e.g. one relation after
  // another), so a prefix sample would miss the tail's fan-out entirely.
  Emitter<K, V> scratch;
  for (std::size_t i = 0; i < take; ++i) {
    map_fn(inputs[i * inputs.size() / take], scratch);
  }
  sample.sampled_inputs = take;
  sample.exhaustive = take == inputs.size();
  sample.pairs_per_input =
      static_cast<double>(scratch.num_emitted()) / static_cast<double>(take);
  sample.bytes_per_input =
      static_cast<double>(scratch.bytes()) / static_cast<double>(take);
  // Multiplicity over the scratch block's serialized key bytes (serde is
  // injective, so byte equality is key equality — no typed rebuild).
  std::unordered_map<std::string_view, std::uint64_t> groups;
  const auto& block = scratch.block();
  for (std::size_t r = 0; r < block.rows(); ++r) ++groups[block.key_bytes(r)];
  sample.distinct_keys = groups.size();
  for (const auto& [key, count] : groups) {
    sample.max_group = std::max(sample.max_group, count);
  }
  return sample;
}

/// Resolves the JobOptions one round executes with: per-round overrides
/// merged over the execution's round defaults, then the pipeline-wide
/// shuffle backstop — the same order Pipeline::Resolve applies, computed
/// here too so the strategy chooser sees the merged view.
JobOptions ResolveRoundOptions(const PlanNode& node,
                               const ExecutionOptions& options);

/// The per-round strategy chooser (see ExecutionOptions).
ShuffleStrategy ChooseStrategy(const ShuffleConfig& config,
                               const MapSample& sample,
                               std::size_t num_inputs);

/// The per-round partitioner chooser: kAuto resolves to kSampledRange
/// when the sample shows a skewed key distribution (the hottest key's
/// group is several times the mean group), and to plain hash placement
/// otherwise. An explicit configuration always wins.
PartitionerKind ChoosePartitioner(const ShuffleConfig& config,
                                  const MapSample& sample);

/// Runs every round node that `target` depends on (all rounds when
/// target == kNoNode) in node order on one StageGraphExecutor,
/// materializing slots, and returns the accumulated metrics. Consecutive
/// rounds joined by a per-key dependency hint share the task graph with
/// no barrier between them (ExecutionOptions::streaming); everything else
/// runs round by round exactly as before. Not reentrant: one execution
/// per PlanGraph at a time.
PipelineMetrics ExecutePlanGraph(PlanGraph& graph,
                                 const ExecutionOptions& options,
                                 std::size_t target);

/// The multi-process counterpart (defined in src/dist/dist_exec.cc):
/// rounds with dist ops run as chunked map tasks + per-shard reduce tasks
/// on worker processes, everything else in-process. ExecutePlanGraph
/// forwards here when options.backend == kMultiProcess.
PipelineMetrics ExecutePlanGraphMulti(PlanGraph& graph,
                                      const ExecutionOptions& options,
                                      std::size_t target);

PlanEstimate EstimatePlanGraph(const PlanGraph& graph,
                               const core::Recipe& recipe,
                               const EstimateOptions& options);

std::string ExplainPlanGraph(const PlanGraph& graph,
                             const ExecutionOptions& options);

}  // namespace internal

/// A keyed intermediate: a dataset with a map function attached but no
/// reducer yet. Value-semantic builder — WithLabel / WithEstimate /
/// WithOptions / CombineByKey return updated copies; ReduceByKey appends
/// the round node to the plan and returns the typed output dataset.
template <typename In, typename K, typename V>
class KeyedDataset {
 public:
  using MapFn = std::function<void(const In&, Emitter<K, V>&)>;
  using CombineFn = std::function<V(V, V)>;

  KeyedDataset WithLabel(std::string label) const {
    KeyedDataset copy = *this;
    copy.label_ = std::move(label);
    return copy;
  }

  /// Declares the schema's analytic estimate (replication rate, reducer
  /// count) so Estimate can price the round without sampling.
  KeyedDataset WithEstimate(StageEstimate hint) const {
    KeyedDataset copy = *this;
    copy.hint_ = hint;
    return copy;
  }

  /// Per-round execution overrides, merged field-wise over the
  /// execution's round defaults (MergedJobOptions).
  KeyedDataset WithOptions(JobOptions options) const {
    KeyedDataset copy = *this;
    copy.options_ = std::move(options);
    return copy;
  }

  /// Attaches a map-side combiner (associative V x V -> V); the round
  /// lowers onto the combined (map+combine+reduce) form.
  KeyedDataset CombineByKey(CombineFn combine_fn) const {
    KeyedDataset copy = *this;
    copy.combine_ = std::move(combine_fn);
    return copy;
  }

  /// Declares that this stage's map depends on each upstream output
  /// individually (per key), not on the producing round as a whole —
  /// always true of a map function by the paper's model (Section 2.3);
  /// the hint is the caller's assertion that nothing outside the plan
  /// needs the producer's materialized output before this round runs.
  /// With it, Execute streams the producer's per-shard reduce outputs
  /// into this round's map tasks with no global barrier between the
  /// rounds (see ExecutionOptions::streaming for the fallback rules).
  /// Outputs are byte-identical either way.
  KeyedDataset WithPerKeyInput(bool per_key = true) const {
    KeyedDataset copy = *this;
    copy.per_key_input_ = per_key;
    return copy;
  }

  /// Closes the round: appends a lazy map(+combine)+reduce node to the
  /// plan and returns the typed (unmaterialized) output dataset.
  template <typename Out, typename ReduceFn>
  Dataset<Out> ReduceByKey(ReduceFn reduce, std::string label = "") const;

 private:
  template <typename T>
  friend class Dataset;

  KeyedDataset(std::shared_ptr<internal::PlanGraph> graph, std::size_t input,
               MapFn map_fn, std::string label)
      : graph_(std::move(graph)),
        input_(input),
        map_(std::move(map_fn)),
        label_(std::move(label)) {}

  std::shared_ptr<internal::PlanGraph> graph_;
  std::size_t input_;
  MapFn map_;
  CombineFn combine_;  // empty = plain round
  std::string label_;
  StageEstimate hint_;
  std::optional<JobOptions> options_;
  bool per_key_input_ = false;
};

/// A typed handle onto one node of a plan: either a materialized source
/// (Plan::Source) or the future output of a round. Cheap to copy; all
/// copies share the plan.
template <typename T>
class Dataset {
 public:
  /// Starts a round: attaches `map_fn` (void(const T&, Emitter<K, V>&))
  /// under key type K and value type V. Nothing runs until Execute.
  template <typename K, typename V, typename MapFn>
  KeyedDataset<T, K, V> Map(MapFn map_fn, std::string label = "round") const {
    return KeyedDataset<T, K, V>(
        graph_, node_,
        typename KeyedDataset<T, K, V>::MapFn(std::move(map_fn)),
        std::move(label));
  }

  /// Runs every round this dataset depends on and returns its elements
  /// plus the metrics of everything that ran. Re-executes from the
  /// sources each call.
  ExecutionResult<T> Execute(const ExecutionOptions& options = {}) const {
    ExecutionResult<T> result;
    result.metrics = internal::ExecutePlanGraph(*graph_, options, node_);
    result.round_strategies = graph_->last_strategies;
    auto slot = std::static_pointer_cast<std::vector<T>>(graph_->slots[node_]);
    if (graph_->nodes[node_].is_source) {
      result.outputs = *slot;  // sources stay materialized
    } else {
      result.outputs = std::move(*slot);
      graph_->slots[node_] = nullptr;
    }
    return result;
  }

  /// Execute asynchronously, returning a future backed by the bounded
  /// AsyncRunner (src/engine/executor.h) — concurrent async executions
  /// queue behind its fixed thread count instead of each spawning a
  /// fresh thread. The plan must not be executed (or estimated)
  /// concurrently with the returned future — one execution per plan at a
  /// time; a caller-owned pool in the options must outlive the future.
  std::future<ExecutionResult<T>> ExecuteAsync(
      ExecutionOptions options = {}) const {
    Dataset self = *this;
    return AsyncRunner::Global().Run(
        [self, options = std::move(options)]() {
          return self.Execute(options);
        });
  }

  /// The plan this dataset belongs to (for Estimate / Explain).
  Plan plan() const;

  std::size_t node() const { return node_; }

 private:
  friend class Plan;
  template <typename In, typename K, typename V>
  friend class KeyedDataset;

  Dataset(std::shared_ptr<internal::PlanGraph> graph, std::size_t node)
      : graph_(std::move(graph)), node_(node) {}

  std::shared_ptr<internal::PlanGraph> graph_;
  std::size_t node_;
};

/// The plan handle: owns the shared DAG, creates sources, and offers the
/// untyped whole-plan operations (Estimate / Explain / Execute /
/// ExecuteAsync). Typed outputs are read through Dataset<T>::Execute.
class Plan {
 public:
  Plan() : graph_(std::make_shared<internal::PlanGraph>()) {}

  /// Materializes `inputs` as a source dataset (moved into the plan).
  template <typename T>
  Dataset<T> Source(std::vector<T> inputs, std::string label = "source") {
    internal::PlanNode node;
    node.label = std::move(label);
    node.is_source = true;
    node.source_size = inputs.size();
    const std::size_t id = graph_->nodes.size();
    graph_->nodes.push_back(std::move(node));
    graph_->slots.push_back(
        std::make_shared<std::vector<T>>(std::move(inputs)));
    return Dataset<T>(graph_, id);
  }

  std::size_t num_rounds() const;

  /// Prices every round against `recipe` before any data moves — see
  /// RoundEstimate. Rounds whose inputs are not yet materialized are
  /// propagated from the previous round's predicted reducers x
  /// outputs_per_reducer.
  PlanEstimate Estimate(const core::Recipe& recipe,
                        const EstimateOptions& options = {}) const;

  /// The human-readable physical plan: per-round shuffle strategy (with
  /// the chooser's reasoning where it applies), shard count, memory
  /// budget, and simulation, as `options` would execute it.
  std::string Explain(const ExecutionOptions& options = {}) const;

  /// Runs every round, returning the accumulated metrics. Typed outputs
  /// are read through Dataset<T>::Execute instead.
  PipelineMetrics Execute(const ExecutionOptions& options = {});

  /// Execute asynchronously on the bounded AsyncRunner (see
  /// Dataset::ExecuteAsync's caveats).
  std::future<PipelineMetrics> ExecuteAsync(ExecutionOptions options = {});

  /// Per executed round, the strategy the most recent Execute ran with.
  const std::vector<ShuffleStrategy>& last_round_strategies() const;

  /// The shared node graph. Used by the dist layer: recipe builders stamp
  /// the graph's recipe identity through it and the worker runtime walks
  /// nodes to run their dist ops.
  const std::shared_ptr<internal::PlanGraph>& graph() const {
    return graph_;
  }

 private:
  template <typename T>
  friend class Dataset;

  explicit Plan(std::shared_ptr<internal::PlanGraph> graph)
      : graph_(std::move(graph)) {}

  std::shared_ptr<internal::PlanGraph> graph_;
};

template <typename T>
Plan Dataset<T>::plan() const {
  return Plan(graph_);
}

template <typename In, typename K, typename V>
template <typename Out, typename ReduceFn>
Dataset<Out> KeyedDataset<In, K, V>::ReduceByKey(ReduceFn reduce,
                                                 std::string label) const {
  using ReduceStd =
      std::function<void(const K&, const std::vector<V>&, std::vector<Out>&)>;
  internal::PlanNode node;
  node.label = label.empty() ? label_ : std::move(label);
  node.input = input_;
  node.combined = static_cast<bool>(combine_);
  node.per_key_input = per_key_input_;
  node.hint = hint_;
  node.options = options_;

  const std::size_t in_id = input_;
  const std::size_t out_id = graph_->nodes.size();
  MapFn map_fn = map_;
  CombineFn combine_fn = combine_;
  ReduceStd reduce_fn = std::move(reduce);

  node.stage = [in_id, out_id, map_fn, combine_fn, reduce_fn](
                   internal::PlanGraph& graph, StageGraphExecutor& exec,
                   const JobOptions& options,
                   const std::shared_ptr<internal::StagedHandleBase>&
                       upstream,
                   std::uint64_t pairs_hint)
      -> std::shared_ptr<internal::StagedHandleBase> {
    using PlainRound = internal::StagedRound<In, K, V, Out, MapFn,
                                             internal::NoCombine, ReduceStd>;
    using CombinedRound =
        internal::StagedRound<In, K, V, Out, MapFn, CombineFn, ReduceStd>;
    const auto tag = static_cast<std::uint32_t>(out_id);
    if (upstream != nullptr) {
      // Streamed form: only a plain round over a producer whose output
      // type matches can consume per-shard blocks.
      auto* source =
          dynamic_cast<internal::StreamSource<In>*>(upstream.get());
      if (combine_fn || source == nullptr) return nullptr;
      auto round = PlainRound::StageStreamed(exec, tag, upstream, source,
                                             map_fn, reduce_fn, options);
      round->set_output_slot(&graph.slots[out_id]);
      return round;
    }
    auto input =
        std::static_pointer_cast<const std::vector<In>>(graph.slots[in_id]);
    if (combine_fn) {
      auto round = CombinedRound::StageMaterialized(
          exec, tag, *input, input, map_fn, combine_fn, reduce_fn, options,
          pairs_hint);
      round->set_output_slot(&graph.slots[out_id]);
      return round;
    }
    auto round = PlainRound::StageMaterialized(
        exec, tag, *input, input, map_fn, internal::NoCombine{}, reduce_fn,
        options, pairs_hint);
    round->set_output_slot(&graph.slots[out_id]);
    return round;
  };
  node.sample = [in_id, map_fn](const internal::PlanGraph& graph,
                                std::size_t max_inputs) {
    auto input =
        std::static_pointer_cast<const std::vector<In>>(graph.slots[in_id]);
    if (!input) return internal::MapSample{};
    return internal::SampleMapFanout<In, K, V>(*input, map_fn, max_inputs);
  };
  node.input_size =
      [in_id](const internal::PlanGraph& graph) -> std::size_t {
    auto input =
        std::static_pointer_cast<const std::vector<In>>(graph.slots[in_id]);
    return input ? input->size() : internal::kUnknownSize;
  };
  // The multi-process lowering exists exactly when every boundary type
  // can cross a process through serde; other rounds keep dist null and
  // run in-process under every backend.
  if constexpr (storage::IsSerdeSerializableV<In> &&
                storage::IsSerdeSerializableV<K> &&
                storage::IsSerdeSerializableV<V> &&
                storage::IsSerdeSerializableV<Out>) {
    node.dist = std::make_shared<internal::DistRoundOps>(
        internal::MakeDistRoundOps<In, K, V, Out>(map_fn, combine_fn,
                                                  reduce_fn));
  }

  auto graph = graph_;
  graph->nodes.push_back(std::move(node));
  graph->slots.push_back(nullptr);
  return Dataset<Out>(graph, out_id);
}

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_PLAN_H_
