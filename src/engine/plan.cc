#include "src/engine/plan.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <utility>

#include "src/obs/export.h"

namespace mrcost::engine {
namespace internal {
namespace {

/// Pairs below this estimate run the serial reference shuffle — the same
/// regime where ResolveShardCount's auto mode would collapse to one shard
/// anyway (its kMinPairsPerShard), decided here before the map runs.
constexpr double kSerialCutoffPairs = 4096;

/// Extrapolates the sample's distinct-key count to the full input: exact
/// when exhaustive, else linear in the input count (a deliberate, crude
/// upper bound — fan-out schemas revisit keys, so scaling overestimates;
/// declared hints beat it).
double ExtrapolateDistinct(const MapSample& sample, double num_inputs) {
  if (sample.exhaustive) return static_cast<double>(sample.distinct_keys);
  if (sample.sampled_inputs == 0) return num_inputs;
  return static_cast<double>(sample.distinct_keys) * num_inputs /
         static_cast<double>(sample.sampled_inputs);
}

std::string HumanBytes(double bytes) {
  std::ostringstream os;
  if (bytes >= 1024.0 * 1024.0) {
    os << bytes / (1024.0 * 1024.0) << " MiB";
  } else if (bytes >= 1024.0) {
    os << bytes / 1024.0 << " KiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

}  // namespace

JobOptions ResolveRoundOptions(const PlanNode& node,
                               const ExecutionOptions& options) {
  JobOptions resolved =
      node.options.has_value()
          ? MergedJobOptions(*node.options, options.pipeline.round_defaults)
          : options.pipeline.round_defaults;
  resolved.shuffle = resolved.shuffle.MergedOver(options.pipeline.shuffle);
  // Pipeline-wide simulation backstop, exactly as Pipeline::Resolve
  // applies it: a round that configures nothing itself inherits the
  // pipeline's simulated cluster.
  if (!resolved.simulation.enabled() &&
      options.pipeline.simulation.enabled()) {
    resolved.simulation = options.pipeline.simulation;
  }
  return resolved;
}

/// The in-memory shuffles briefly hold the map output and its grouped
/// copy at once, and the sample is an extrapolation; a round is only kept
/// in memory when its estimated intermediate fits the budget with this
/// factor of headroom, so a mispredicted sample errs toward spilling
/// (the budget-respecting side), not toward blowing the budget.
constexpr double kInMemoryHeadroomFactor = 2.0;

/// The one decision rule behind both the Execute-time chooser and
/// Estimate's planned_strategy annotation, fed by whichever estimates are
/// available (a map-fn sample at execution, declared hints + optional
/// sample at estimation). Unknown bytes with a budget set fall back to
/// the conservative Resolved() rule (budget => external).
ShuffleStrategy ChooseFromEstimates(const ShuffleConfig& config,
                                    double estimated_pairs,
                                    double estimated_bytes,
                                    bool bytes_known) {
  if (config.strategy != ShuffleStrategy::kAuto) return config.strategy;
  if (config.memory_budget_bytes > 0) {
    if (!bytes_known) return config.Resolved();
    if (kInMemoryHeadroomFactor * estimated_bytes >
        static_cast<double>(config.memory_budget_bytes)) {
      return ShuffleStrategy::kExternal;
    }
  }
  if (estimated_pairs <= kSerialCutoffPairs) return ShuffleStrategy::kSerial;
  return ShuffleStrategy::kSharded;
}

ShuffleStrategy ChooseStrategy(const ShuffleConfig& config,
                               const MapSample& sample,
                               std::size_t num_inputs) {
  if (config.strategy != ShuffleStrategy::kAuto) return config.strategy;
  if (!sample.valid || num_inputs == kUnknownSize) return config.Resolved();
  const double n = static_cast<double>(num_inputs);
  return ChooseFromEstimates(config, sample.pairs_per_input * n,
                             sample.bytes_per_input * n,
                             /*bytes_known=*/true);
}

/// A key whose sampled group is this many times the mean group marks the
/// distribution as skewed enough that equal-width hash placement will
/// overload whichever shard owns it — sampled-range placement pays one
/// extra routing pass to rebalance.
constexpr double kSkewTriggerRatio = 4.0;

PartitionerKind ChoosePartitioner(const ShuffleConfig& config,
                                  const MapSample& sample) {
  if (config.partitioner != PartitionerKind::kAuto) {
    return config.partitioner;
  }
  if (!sample.valid || sample.distinct_keys == 0) {
    return PartitionerKind::kHash;
  }
  const double sampled_pairs =
      sample.pairs_per_input * static_cast<double>(sample.sampled_inputs);
  const double mean_group =
      sampled_pairs / static_cast<double>(sample.distinct_keys);
  return static_cast<double>(sample.max_group) >
                 kSkewTriggerRatio * std::max(mean_group, 1.0)
             ? PartitionerKind::kSampledRange
             : PartitionerKind::kHash;
}

/// What the planner would tell the cost model about this round, mirroring
/// EstimatePlanGraph's pricing inputs: declared hints first, the chooser's
/// map sample as fallback. Attached to the round's trace span and used for
/// per-stage calibration residuals after the round runs.
RoundPrediction PredictRound(const PlanNode& node, const MapSample& sample,
                             std::size_t input_size,
                             const core::Recipe* recipe) {
  RoundPrediction pred;
  const double n =
      input_size != kUnknownSize ? static_cast<double>(input_size) : 0.0;
  const StageEstimate& hint = node.hint;
  const double r = hint.replication > 0
                       ? hint.replication
                       : (sample.valid ? sample.pairs_per_input : 0.0);
  if (r <= 0) return pred;  // nothing declared or sampled
  pred.r = r;
  pred.valid = true;
  const double reducers =
      hint.num_reducers > 0
          ? hint.num_reducers
          : (sample.valid && n > 0 ? ExtrapolateDistinct(sample, n) : 0.0);
  if (hint.num_reducers <= 0 && sample.valid && sample.exhaustive) {
    // An exhaustive sample knows the exact max input-list length.
    pred.q = static_cast<double>(sample.max_group);
  } else if (reducers > 0 && n > 0) {
    pred.q = r * n / reducers;
  }
  if (recipe != nullptr && pred.q >= 1) {
    const double lower_bound =
        core::ClampedReplicationLowerBound(*recipe, pred.q);
    if (lower_bound > 0) pred.bound_ratio = pred.r / lower_bound;
  }
  return pred;
}

PipelineMetrics ExecutePlanGraph(PlanGraph& graph,
                                 const ExecutionOptions& options,
                                 std::size_t target) {
  if (options.backend == ExecutionBackend::kMultiProcess) {
    return ExecutePlanGraphMulti(graph, options, target);
  }
  // Tracing/metrics capture spans the whole execution; files are written
  // when the scope closes, after metrics (and calibration) are final.
  std::optional<obs::ScopedCapture> capture;
  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    capture.emplace(options.trace_out, options.metrics_out);
  }
  // Only the target's ancestry runs (everything when target == kNoNode):
  // node order is creation order, so producers precede consumers.
  std::vector<bool> needed(graph.nodes.size(), target == kNoNode);
  for (std::size_t id = target;
       id != kNoNode && id < graph.nodes.size();
       id = graph.nodes[id].input) {
    needed[id] = true;
  }

  JobOptions sizing;
  sizing.num_threads = options.pipeline.num_threads;
  sizing.pool = options.pipeline.pool;
  PoolRef pool(sizing);
  StageGraphExecutor exec(pool.get());
  graph.last_strategies.clear();

  // How many needed rounds consume each node's output. Streaming needs a
  // sole consumer: the producer's finalize (which moves the shard
  // outputs) is sequenced behind exactly that consumer's map tasks.
  std::vector<int> needed_consumers(graph.nodes.size(), 0);
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    if (needed[id] && !graph.nodes[id].is_source &&
        graph.nodes[id].input != kNoNode) {
      ++needed_consumers[graph.nodes[id].input];
    }
  }

  std::vector<std::shared_ptr<StagedHandleBase>> handles(graph.nodes.size());
  // Rounds staged but not yet finalized/awaited — the open streaming
  // chain. Every non-streamed round first closes it (the old sequential
  // schedule); a streamed round keeps it growing instead.
  std::vector<std::size_t> open;
  std::vector<std::size_t> executed;  // round node ids, node order
  struct StreamedEdge {
    std::size_t producer;
    std::size_t consumer;
  };
  std::vector<StreamedEdge> streamed;

  const auto close_chain = [&] {
    if (open.empty()) return;
    for (std::size_t id : open) {
      handles[id]->StageFinalize({});
    }
    open.clear();
    exec.Wait();
  };

  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    PlanNode& node = graph.nodes[id];
    if (node.is_source || !needed[id]) continue;
    executed.push_back(id);
    JobOptions resolved = ResolveRoundOptions(node, options);

    const std::size_t producer = node.input;
    const bool producer_open =
        producer != kNoNode &&
        std::find(open.begin(), open.end(), producer) != open.end();
    bool stream = options.streaming && node.per_key_input &&
                  !node.combined && producer_open &&
                  needed_consumers[producer] == 1;
    if (stream) {
      // A streamed round has no materialized input to sample, so the
      // strategy resolves from the config alone; external (spill) rounds
      // fall back to the barrier path — spilling wants the whole input
      // on hand anyway.
      const ShuffleStrategy s = resolved.shuffle.Resolved();
      if (s == ShuffleStrategy::kExternal) {
        stream = false;
      } else {
        resolved.shuffle.strategy = s;
      }
    }

    MapSample sample;
    std::shared_ptr<StagedHandleBase> handle;
    if (stream) {
      handle = node.stage(graph, exec, resolved, handles[producer], 0);
      if (handle != nullptr) {
        // The producer's finalize moves its shard outputs; sequence it
        // behind the consumer's map tasks that read them.
        handles[producer]->StageFinalize(handle->map_task_ids());
        streamed.push_back(StreamedEdge{producer, id});
      }
    }
    if (handle == nullptr) {
      close_chain();  // materialize this round's input
      if (options.choose_strategy_per_round &&
          resolved.shuffle.strategy == ShuffleStrategy::kAuto) {
        sample = node.sample(graph, options.strategy_sample_inputs);
        resolved.shuffle.strategy = ChooseStrategy(resolved.shuffle, sample,
                                                   node.input_size(graph));
        // An explicit shard request asks for the sharded code path; the
        // small-round serial downgrade must not override it (the eager
        // ResolveShardCount honors the request too).
        if (resolved.shuffle.strategy == ShuffleStrategy::kSerial &&
            resolved.num_shards > 1) {
          resolved.shuffle.strategy = ShuffleStrategy::kSharded;
        }
      }
      if (options.choose_strategy_per_round &&
          resolved.shuffle.partitioner == PartitionerKind::kAuto) {
        // Same sample feeds the placement decision: a skewed key
        // distribution flips the round to sampled-range partitioning
        // (outputs unchanged — the deterministic merge runs on scan
        // tags, not shard ownership).
        if (!sample.valid) {
          sample = node.sample(graph, options.strategy_sample_inputs);
        }
        resolved.shuffle.partitioner =
            ChoosePartitioner(resolved.shuffle, sample);
      }
      // Shard sizing from whatever estimate is on hand: the declared
      // schema replication, else the chooser's sample (0 = unknown).
      std::uint64_t pairs_hint = 0;
      const std::size_t input_size = node.input_size(graph);
      if (input_size != kUnknownSize) {
        const double n = static_cast<double>(input_size);
        if (node.hint.replication > 0) {
          pairs_hint =
              static_cast<std::uint64_t>(node.hint.replication * n);
        } else if (sample.valid) {
          pairs_hint =
              static_cast<std::uint64_t>(sample.pairs_per_input * n);
        }
      }
      handle = node.stage(graph, exec, resolved, nullptr, pairs_hint);
    }
    handles[id] = handle;
    handle->SetPrediction(
        PredictRound(node, sample, node.input_size(graph), options.recipe));
    open.push_back(id);
    graph.last_strategies.push_back(handle->strategy());
  }
  close_chain();

  PipelineMetrics metrics;
  for (std::size_t id : executed) metrics.Add(handles[id]->metrics());
  metrics.streamed_rounds = streamed.size();
  if (!executed.empty()) {
    const auto records = exec.SnapshotRecords();
    double begin = records.front().span.begin_ms;
    double end = records.front().span.end_ms;
    for (const auto& record : records) {
      begin = std::min(begin, record.span.begin_ms);
      end = std::max(end, record.span.end_ms);
    }
    metrics.exec_span_ms = end - begin;
    // Cross-round overlap per streamed edge: the producer's reduce window
    // against the consumer's map window.
    for (const StreamedEdge& edge : streamed) {
      const StageWindow reduce =
          WindowOf(exec, handles[edge.producer]->reduce_task_ids());
      const StageWindow map =
          WindowOf(exec, handles[edge.consumer]->map_task_ids());
      metrics.streamed_overlap_ms += IntervalOverlap(
          reduce.begin, reduce.end, map.begin, map.end);
    }
  }
  // Feed realized skew and per-stage residuals back into the caller's
  // calibration so later estimates price the cluster — and the stages —
  // that actually ran: "map" carries the replication (communication)
  // residual, "reduce" the max-reducer-input residual.
  if (options.calibration != nullptr) {
    for (std::size_t id : executed) {
      const JobMetrics& m = handles[id]->metrics();
      if (m.simulated()) {
        options.calibration->Observe(m.load_imbalance, m.straggler_impact);
      }
      const RoundPrediction& pred = handles[id]->prediction();
      if (pred.valid) {
        if (pred.r > 0 && m.replication_rate() > 0) {
          options.calibration->ObserveStage(
              "map", m.replication_rate() / pred.r);
        }
        if (pred.q > 0 && m.max_reducer_input > 0) {
          options.calibration->ObserveStage(
              "reduce",
              static_cast<double>(m.max_reducer_input) / pred.q);
        }
      }
    }
  }
  return metrics;
}

PlanEstimate EstimatePlanGraph(const PlanGraph& graph,
                               const core::Recipe& recipe,
                               const EstimateOptions& options) {
  PlanEstimate estimate;
  // Predicted output count per node, so each round reads its own
  // producer's prediction (node.input) — correct for branched plans and
  // multiple sources, not just a single chain.
  std::vector<double> predicted_outputs(graph.nodes.size(), 0);
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    const PlanNode& node = graph.nodes[id];
    if (node.is_source) {
      predicted_outputs[id] = static_cast<double>(node.source_size);
      continue;
    }
    RoundEstimate round;
    round.round = estimate.rounds.size() + 1;
    round.label = node.label;

    const std::size_t materialized = node.input_size(graph);
    if (materialized != kUnknownSize) {
      round.num_inputs = static_cast<double>(materialized);
      round.inputs_known = true;
    } else {
      round.num_inputs = predicted_outputs[node.input];
    }

    const StageEstimate& hint = node.hint;
    // The shuffle config the planned_strategy annotation is judged
    // against: per-stage overrides merged over the estimate's config,
    // the same order the Execute-time chooser resolves.
    const ShuffleConfig stage_shuffle =
        node.options.has_value()
            ? node.options->shuffle.MergedOver(options.shuffle)
            : options.shuffle;
    // A stage declaring both r and its reducer count is priced without
    // executing anything; sampling runs only to fill a missing core
    // field — or, when the stage's resolved shuffle config sets a budget
    // and no bytes_per_pair is declared, to give the planned_strategy
    // annotation the bytes the budget comparison needs.
    MapSample sample;
    const bool need_sample =
        hint.replication <= 0 || hint.num_reducers <= 0 ||
        (stage_shuffle.memory_budget_bytes > 0 &&
         hint.bytes_per_pair <= 0);
    if (need_sample && materialized != kUnknownSize) {
      sample = node.sample(graph, options.max_sample_inputs);
    }
    round.sampled = sample.valid;

    const double replication =
        hint.replication > 0
            ? hint.replication
            : (sample.valid ? sample.pairs_per_input : 1.0);
    const double reducers =
        hint.num_reducers > 0
            ? hint.num_reducers
            : (sample.valid ? ExtrapolateDistinct(sample, round.num_inputs)
                            : round.num_inputs);
    round.predicted_r = replication;
    round.predicted_pairs = replication * round.num_inputs;
    round.predicted_reducers = reducers;
    if (hint.num_reducers <= 0 && sample.valid && sample.exhaustive) {
      // An exhaustive sample knows the exact max input-list length.
      round.predicted_q = static_cast<double>(sample.max_group);
    } else {
      round.predicted_q =
          reducers > 0 ? round.predicted_pairs / reducers : 0;
    }
    round.predicted_bytes =
        hint.bytes_per_pair > 0
            ? hint.bytes_per_pair * round.predicted_pairs
            : (sample.valid ? sample.bytes_per_input * round.num_inputs : 0);

    round.lower_bound_r =
        round.predicted_q >= 1
            ? core::ClampedReplicationLowerBound(recipe, round.predicted_q)
            : 0;
    round.optimality_ratio = round.lower_bound_r > 0
                                 ? round.predicted_r / round.lower_bound_r
                                 : 0;
    round.cost =
        options.cost_model.Cost(round.predicted_r, round.predicted_q);
    if (options.calibration != nullptr &&
        (options.calibration->observations() > 0 ||
         options.calibration->stage_observations("map") > 0 ||
         options.calibration->stage_observations("reduce") > 0)) {
      // Calibrated correction, two independent knobs: per-stage residuals
      // scale the predictions themselves (executed rounds reported how far
      // realized r and q landed from the model's), then the realized-skew
      // factor inflates the processing/wall-clock terms for uneven
      // placement. Both default to 1.0 when unobserved, so an uncalibrated
      // estimate is unchanged. Communication (r) is placement-independent
      // and skips the skew factor.
      const double skew = options.calibration->skew_factor();
      const double calibrated_r =
          round.predicted_r * options.calibration->stage_factor("map");
      const double calibrated_q =
          round.predicted_q * options.calibration->stage_factor("reduce");
      const core::CostModel& cm = options.cost_model;
      round.cost = cm.communication_weight * calibrated_r +
                   skew * (cm.processing_weight * calibrated_q +
                           cm.wallclock_weight * calibrated_q *
                               calibrated_q);
    }
    // The same decision rule the Execute-time chooser applies, fed by the
    // round's (declared or sampled) predictions.
    round.planned_strategy = ChooseFromEstimates(
        stage_shuffle, round.predicted_pairs, round.predicted_bytes,
        /*bytes_known=*/round.predicted_bytes > 0);
    if (round.planned_strategy == ShuffleStrategy::kSerial &&
        node.options.has_value() && node.options->num_shards > 1) {
      round.planned_strategy = ShuffleStrategy::kSharded;
    }

    const double outputs_per_reducer =
        hint.outputs_per_reducer > 0 ? hint.outputs_per_reducer : 1.0;
    predicted_outputs[id] = reducers * outputs_per_reducer;
    estimate.rounds.push_back(std::move(round));
  }
  return estimate;
}

std::string ExplainPlanGraph(const PlanGraph& graph,
                             const ExecutionOptions& options) {
  std::ostringstream os;
  std::size_t round_index = 0;
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    const PlanNode& node = graph.nodes[id];
    if (id > 0) os << "\n";
    if (node.is_source) {
      os << "source '" << node.label << "': " << node.source_size
         << " inputs materialized";
      continue;
    }
    ++round_index;
    os << "round " << round_index << " '" << node.label << "' ("
       << (node.combined ? "map+combine+reduce" : "map+reduce") << ")";

    const std::size_t materialized = node.input_size(graph);
    os << "\n  inputs: ";
    if (materialized != kUnknownSize) {
      os << materialized << " (materialized)";
    } else {
      os << "unmaterialized (produced by round upstream)";
    }

    JobOptions resolved = ResolveRoundOptions(node, options);
    os << "\n  shuffle: ";
    if (resolved.shuffle.strategy != ShuffleStrategy::kAuto) {
      os << ToString(resolved.shuffle.strategy) << " (explicit)";
    } else if (!options.choose_strategy_per_round) {
      os << ToString(resolved.shuffle.Resolved()) << " (auto, no chooser)";
    } else if (materialized == kUnknownSize) {
      os << "auto (chooser decides at run time from estimated bytes vs "
         << (resolved.shuffle.memory_budget_bytes > 0
                 ? HumanBytes(static_cast<double>(
                       resolved.shuffle.memory_budget_bytes)) + " budget"
                 : std::string("no budget")) << ")";
    } else {
      const MapSample sample =
          node.sample(graph, options.strategy_sample_inputs);
      const ShuffleStrategy chosen =
          ChooseStrategy(resolved.shuffle, sample,
                         materialized);
      os << ToString(chosen) << " (chooser: ~"
         << HumanBytes(sample.bytes_per_input *
                       static_cast<double>(materialized))
         << " intermediate vs "
         << (resolved.shuffle.memory_budget_bytes > 0
                 ? HumanBytes(static_cast<double>(
                       resolved.shuffle.memory_budget_bytes)) + " budget"
                 : std::string("no budget"))
         << ")";
      const PartitionerKind partitioner =
          ChoosePartitioner(resolved.shuffle, sample);
      os << "\n  partitioner: " << ToString(partitioner);
      if (resolved.shuffle.partitioner != PartitionerKind::kAuto) {
        os << " (explicit)";
      } else if (partitioner == PartitionerKind::kSampledRange) {
        os << " (chooser: hottest sampled key x"
           << (sample.distinct_keys > 0
                   ? static_cast<double>(sample.max_group) /
                         std::max(1.0, sample.pairs_per_input *
                                           static_cast<double>(
                                               sample.sampled_inputs) /
                                           static_cast<double>(
                                               sample.distinct_keys))
                   : 0.0)
           << " the mean group)";
      } else {
        os << " (chooser: keys spread evenly)";
      }
    }
    os << "\n  shards: ";
    if (resolved.num_shards > 0) {
      os << resolved.num_shards;
    } else {
      os << "auto (per thread, capped for small rounds)";
    }
    if (resolved.shuffle.memory_budget_bytes > 0) {
      os << "\n  memory budget: "
         << HumanBytes(
                static_cast<double>(resolved.shuffle.memory_budget_bytes))
         << (resolved.shuffle.spill_dir.empty()
                 ? std::string(", spill dir: <system temp>")
                 : ", spill dir: " + resolved.shuffle.spill_dir);
    }
    // ResolveRoundOptions already applied the pipeline-wide backstop.
    const SimulationOptions simulation = resolved.ResolvedSimulation();
    os << "\n  simulation: ";
    if (simulation.enabled()) {
      os << simulation.num_workers << " workers";
      if (simulation.reducer_capacity_q > 0) {
        os << ", capacity q=" << simulation.reducer_capacity_q;
      }
      if (simulation.straggler_fraction > 0) {
        os << ", stragglers " << simulation.straggler_fraction << "x"
           << simulation.straggler_slowdown;
      }
    } else {
      os << "off";
    }
  }
  return os.str();
}

}  // namespace internal

double PlanEstimate::total_predicted_pairs() const {
  double total = 0;
  for (const RoundEstimate& round : rounds) total += round.predicted_pairs;
  return total;
}

double PlanEstimate::total_cost() const {
  double total = 0;
  for (const RoundEstimate& round : rounds) total += round.cost;
  return total;
}

std::string PlanEstimate::ToString() const {
  std::ostringstream os;
  for (const RoundEstimate& round : rounds) {
    if (round.round > 1) os << "\n";
    os << "round " << round.round << " '" << round.label
       << "': inputs=" << round.num_inputs
       << (round.inputs_known ? "" : " (propagated)")
       << " q=" << round.predicted_q << " r=" << round.predicted_r
       << " pairs=" << round.predicted_pairs
       << " reducers=" << round.predicted_reducers
       << " bound=" << round.lower_bound_r
       << " ratio=" << round.optimality_ratio << " cost=" << round.cost
       << " strategy=" << engine::ToString(round.planned_strategy)
       << (round.sampled ? " (sampled)" : " (declared)");
  }
  return os.str();
}

std::size_t Plan::num_rounds() const {
  std::size_t rounds = 0;
  for (const internal::PlanNode& node : graph_->nodes) {
    if (!node.is_source) ++rounds;
  }
  return rounds;
}

PlanEstimate Plan::Estimate(const core::Recipe& recipe,
                            const EstimateOptions& options) const {
  return internal::EstimatePlanGraph(*graph_, recipe, options);
}

std::string Plan::Explain(const ExecutionOptions& options) const {
  return internal::ExplainPlanGraph(*graph_, options);
}

PipelineMetrics Plan::Execute(const ExecutionOptions& options) {
  return internal::ExecutePlanGraph(*graph_, options, internal::kNoNode);
}

std::future<PipelineMetrics> Plan::ExecuteAsync(ExecutionOptions options) {
  auto graph = graph_;
  return AsyncRunner::Global().Run([graph, options = std::move(options)]() {
    return internal::ExecutePlanGraph(*graph, options, internal::kNoNode);
  });
}

const std::vector<ShuffleStrategy>& Plan::last_round_strategies() const {
  return graph_->last_strategies;
}

}  // namespace mrcost::engine
