#ifndef MRCOST_ENGINE_EMITTER_H_
#define MRCOST_ENGINE_EMITTER_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/byte_size.h"
#include "src/storage/block.h"

namespace mrcost::engine {

/// Mapper-side sink: map functions call Emit once per key-value pair, or
/// EmitBatch with a locally accumulated batch. Every emitted pair is one
/// unit of mapper->reducer communication; the engine charges it to
/// JobMetrics exactly (Section 2.2's cost model), so bytes() and
/// num_emitted() count every pair ever emitted even after the buffer has
/// been drained.
///
/// Emissions land in a columnar KVBlock (src/storage/block.h) rather than
/// a vector of pairs: the key serializes once into the block's arena (and
/// is hashed there, once), the value moves into a typed column, and every
/// downstream stage — routing, grouping, spilling — works on row indices
/// into the block instead of copying pairs.
///
/// Under the external shuffle the engine binds an overflow sink: once the
/// buffered block's ByteSizeOf footprint reaches the budget, the sink
/// consumes block() (spilling it as a sorted columnar run) and the block
/// restarts empty. Blocks spill straight from the emitter buffer — there
/// is no second serialization stage — so the chunk's full budget share
/// backs this one buffer.
template <typename Key, typename Value>
class Emitter {
 public:
  using Batch = std::vector<std::pair<Key, Value>>;
  using Block = storage::KVBlock<Key, Value>;

  void Emit(Key key, Value value) {
    const std::uint64_t size =
        common::ByteSizeOf(key) + common::ByteSizeOf(value);
    bytes_ += size;
    block_bytes_ += size;
    ++num_emitted_;
    block_.Append(key, std::move(value));
    if (sink_ && block_bytes_ >= budget_) Flush();
  }

  /// Appends a whole batch with one accounting sweep — the batched fast
  /// path for map functions that emit many pairs per input. Consumes
  /// `batch`, returning it empty but with usable capacity (elements move
  /// into the block; the vector keeps its buffer), so callers can reuse
  /// one (e.g. thread_local) buffer across inputs without reallocating.
  /// An empty batch is a no-op — it neither counts emissions nor
  /// triggers a flush.
  void EmitBatch(Batch& batch) {
    if (batch.empty()) return;
    std::uint64_t size = 0;
    for (const auto& [key, value] : batch) {
      size += common::ByteSizeOf(key) + common::ByteSizeOf(value);
    }
    bytes_ += size;
    block_bytes_ += size;
    num_emitted_ += batch.size();
    for (auto& [key, value] : batch) {
      block_.Append(key, std::move(value));
    }
    batch.clear();
    if (sink_ && block_bytes_ >= budget_) Flush();
  }

  /// Binds the overflow sink (the external shuffle's spill path). The sink
  /// receives the buffered block by reference and may leave it in any
  /// state; the emitter clears the block afterwards.
  void SetOverflow(std::uint64_t budget_bytes,
                   std::function<void(Block&)> sink) {
    budget_ = budget_bytes;
    sink_ = std::move(sink);
  }

  /// Hands any buffered rows to the overflow sink now (no-op without a
  /// sink); the engine calls this after the last map call of a chunk.
  void Flush() {
    if (!sink_ || block_.empty()) return;
    copied_ += block_.CopiedBytes();
    ++blocks_flushed_;
    sink_(block_);
    block_.Clear();
    block_bytes_ = 0;
  }

  Block& block() { return block_; }
  const Block& block() const { return block_; }
  /// Cumulative ByteSizeOf of every pair ever emitted.
  std::uint64_t bytes() const { return bytes_; }
  /// Cumulative count of every pair ever emitted (block().rows() only
  /// until an overflow sink drains the buffer).
  std::uint64_t num_emitted() const { return num_emitted_; }
  /// Blocks handed downstream: sink flushes plus the live block if it
  /// holds rows.
  std::uint64_t blocks_emitted() const {
    return blocks_flushed_ + (block_.empty() ? 0 : 1);
  }
  /// Bytes physically copied into blocks (key arena bytes + moved value
  /// objects) — the numerator of the copy-efficiency metrics.
  std::uint64_t bytes_copied() const {
    return copied_ + block_.CopiedBytes();
  }

 private:
  Block block_;
  std::uint64_t bytes_ = 0;
  std::uint64_t block_bytes_ = 0;
  std::uint64_t num_emitted_ = 0;
  std::uint64_t blocks_flushed_ = 0;
  std::uint64_t copied_ = 0;
  std::uint64_t budget_ = 0;
  std::function<void(Block&)> sink_;
};

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_EMITTER_H_
