#ifndef MRCOST_ENGINE_EMITTER_H_
#define MRCOST_ENGINE_EMITTER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/engine/byte_size.h"

namespace mrcost::engine {

/// Mapper-side sink: map functions call Emit once per key-value pair. Every
/// Emit is one unit of mapper->reducer communication; the engine charges it
/// to JobMetrics exactly (Section 2.2's cost model).
template <typename Key, typename Value>
class Emitter {
 public:
  void Emit(Key key, Value value) {
    bytes_ += ByteSizeOf(key) + ByteSizeOf(value);
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::pair<Key, Value>>& pairs() { return pairs_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::vector<std::pair<Key, Value>> pairs_;
  std::uint64_t bytes_ = 0;
};

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_EMITTER_H_
