#ifndef MRCOST_ENGINE_EMITTER_H_
#define MRCOST_ENGINE_EMITTER_H_

#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "src/common/byte_size.h"

namespace mrcost::engine {

/// Mapper-side sink: map functions call Emit once per key-value pair, or
/// EmitBatch with a locally accumulated batch. Every emitted pair is one
/// unit of mapper->reducer communication; the engine charges it to
/// JobMetrics exactly (Section 2.2's cost model), so bytes() and
/// num_emitted() count every pair ever emitted even after the buffer has
/// been drained.
///
/// Under the external shuffle the engine binds an overflow sink: once the
/// buffered batch's ByteSizeOf footprint reaches the budget, the sink
/// consumes pairs() (spilling them to a sorted run) and the buffer
/// restarts empty. The engine gives this buffer and the sink's own
/// serialized batch half the chunk's budget share each, so the chunk's
/// peak working set — both stages live while a flush drains — stays at
/// its share (plus one batch of slack).
template <typename Key, typename Value>
class Emitter {
 public:
  using Batch = std::vector<std::pair<Key, Value>>;

  void Emit(Key key, Value value) {
    const std::uint64_t size =
        common::ByteSizeOf(key) + common::ByteSizeOf(value);
    bytes_ += size;
    batch_bytes_ += size;
    ++num_emitted_;
    pairs_.emplace_back(std::move(key), std::move(value));
    if (sink_ && batch_bytes_ >= budget_) Flush();
  }

  /// Appends a whole batch with one accounting sweep and one bulk move —
  /// the batched fast path for map functions that emit many pairs per
  /// input. Consumes `batch`, returning it empty but with usable capacity
  /// (buffers are swapped, not freed), so callers can reuse one
  /// (e.g. thread_local) buffer across inputs without reallocating.
  void EmitBatch(Batch& batch) {
    std::uint64_t size = 0;
    for (const auto& [key, value] : batch) {
      size += common::ByteSizeOf(key) + common::ByteSizeOf(value);
    }
    bytes_ += size;
    batch_bytes_ += size;
    num_emitted_ += batch.size();
    if (pairs_.empty()) {
      pairs_.swap(batch);
    } else {
      pairs_.insert(pairs_.end(), std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
    }
    batch.clear();
    if (sink_ && batch_bytes_ >= budget_) Flush();
  }

  /// Binds the overflow sink (the external shuffle's run writer). The sink
  /// receives the buffered pairs by reference and may leave them in any
  /// state; the emitter clears the buffer afterwards.
  void SetOverflow(std::uint64_t budget_bytes,
                   std::function<void(Batch&)> sink) {
    budget_ = budget_bytes;
    sink_ = std::move(sink);
  }

  /// Hands any buffered pairs to the overflow sink now (no-op without a
  /// sink); the engine calls this after the last map call of a chunk.
  void Flush() {
    if (!sink_ || pairs_.empty()) return;
    sink_(pairs_);
    pairs_.clear();
    batch_bytes_ = 0;
  }

  Batch& pairs() { return pairs_; }
  /// Cumulative ByteSizeOf of every pair ever emitted.
  std::uint64_t bytes() const { return bytes_; }
  /// Cumulative count of every pair ever emitted (pairs().size() only
  /// until an overflow sink drains the buffer).
  std::uint64_t num_emitted() const { return num_emitted_; }

 private:
  Batch pairs_;
  std::uint64_t bytes_ = 0;
  std::uint64_t batch_bytes_ = 0;
  std::uint64_t num_emitted_ = 0;
  std::uint64_t budget_ = 0;
  std::function<void(Batch&)> sink_;
};

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_EMITTER_H_
