#ifndef MRCOST_ENGINE_METRICS_H_
#define MRCOST_ENGINE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace mrcost::obs {
class Registry;
}  // namespace mrcost::obs

namespace mrcost::engine {

/// Exact cost accounting for one map-reduce round, in the units the paper
/// reasons about (Section 2.2):
///   * communication = number of key-value pairs crossing the shuffle
///     (plus a byte estimate),
///   * reducer size q_i = length of each reducer's value list,
///   * replication rate r = (sum of q_i) / (number of inputs).
struct JobMetrics {
  std::uint64_t num_inputs = 0;
  /// Key-value pairs crossing the shuffle == Sum_i q_i. When a combiner
  /// runs, this counts post-combine pairs (what actually crosses the
  /// network).
  std::uint64_t pairs_shuffled = 0;
  /// Pairs emitted by map functions before any map-side combining;
  /// equals pairs_shuffled when no combiner is used.
  std::uint64_t pairs_before_combine = 0;
  std::uint64_t bytes_shuffled = 0;
  /// Number of distinct reduce keys (the paper's "reducers").
  std::uint64_t num_reducers = 0;
  /// Max over reducers of the input-list length (the realized q).
  std::uint64_t max_reducer_input = 0;
  std::uint64_t num_outputs = 0;

  /// Distribution of q_i across reducers.
  common::RunningStats reducer_sizes;
  /// Distribution of per-worker input load (pairs) when keys are assigned
  /// to simulated reduce workers (empty if not simulated).
  common::RunningStats worker_loads;

  /// Cluster-simulation results (all zero unless the round ran with
  /// SimulationOptions enabled; see src/engine/simulator.h):
  /// time the slowest simulated worker finished,
  double makespan = 0;
  /// max/mean per-worker load in pairs (1.0 = perfectly even),
  double load_imbalance = 0;
  /// makespan relative to identical-speed workers (1.0 = homogeneous),
  double straggler_impact = 0;
  /// and reducers whose input exceeded the configured capacity q.
  std::uint64_t capacity_violations = 0;

  /// Skew-defense accounting (all zero when no defense ran; see
  /// src/engine/partitioner.h and SpeculationConfig in executor.h):
  /// speculative backup tasks the executor launched for slow shards,
  std::uint64_t speculative_launched = 0;
  /// backups that finished before the original (first finisher wins),
  std::uint64_t speculative_won = 0;
  /// hot keys the simulated defense split across sub-reducers,
  std::uint64_t hot_keys_split = 0;
  /// and max/mean routed rows per shard after partitioning (1.0 =
  /// perfectly even shards; 0 when the round did not route shards).
  double partition_skew_ratio = 0;

  /// Stage-graph timing (all zero when the round ran untimed — see
  /// src/engine/executor.h). Wall-clock spans of the map, shuffle
  /// (group/merge), and reduce stages:
  double map_ms = 0;
  double shuffle_ms = 0;
  double reduce_ms = 0;
  /// Idle thread-time at the graph's real dependency edges: map chunks
  /// waiting for the slowest map before grouping can start, plus each
  /// shard's gap between group end and reduce start — the barrier cost
  /// the paper's per-round pricing abstracts away.
  double barrier_wait_ms = 0;
  /// Wall-clock during which two adjacent stages ran concurrently (a
  /// shard reducing while other shards still group); always 0 under a
  /// strict phase-barrier schedule.
  double overlap_ms = 0;
  /// The round's whole span (first map start to last reduce end).
  double span_ms = 0;

  /// External-shuffle spill accounting (all zero unless the round ran
  /// ShuffleStrategy::kExternal; see src/storage/):
  /// bytes written to spill files (map-side runs plus multi-pass merge
  /// rewrites),
  std::uint64_t spill_bytes_written = 0;
  /// sorted runs spilled to disk by over-budget map batches,
  std::uint64_t spill_runs = 0;
  /// and k-way merge passes, the final grouping pass included (>1 means
  /// the run count exceeded the merge fan-in).
  std::uint64_t merge_passes = 0;

  /// Columnar-block accounting (src/storage/block.h):
  /// blocks map tasks handed downstream (emitter flushes plus live
  /// tail blocks),
  std::uint64_t blocks_emitted = 0;
  /// bytes physically copied into blocks (key arena bytes + moved value
  /// objects) — compare against bytes_shuffled to see the copy saving,
  std::uint64_t bytes_copied = 0;
  /// and raw/encoded ratio over every block the spill path encoded
  /// (>1 means the codec + dictionary shrank the spill; 0 when the round
  /// spilled nothing).
  double compression_ratio = 0;

  /// True iff this round ran the external (spill-to-disk) shuffle.
  bool external_shuffle() const { return merge_passes > 0; }

  /// True iff this round ran the cluster simulation.
  bool simulated() const { return worker_loads.count() > 0; }

  /// True iff the round recorded stage timings.
  bool timed() const { return span_ms > 0; }

  /// overlap_ms / span_ms: the fraction of the round's wall clock during
  /// which adjacent stages overlapped. 0 when untimed.
  double overlap_fraction() const {
    return span_ms > 0 ? overlap_ms / span_ms : 0.0;
  }

  /// r = pairs_shuffled / num_inputs; 0 when there are no inputs.
  double replication_rate() const {
    return num_inputs == 0 ? 0.0
                           : static_cast<double>(pairs_shuffled) /
                                 static_cast<double>(num_inputs);
  }

  /// Accumulates this round into the obs registry under "engine.*" names
  /// (counters for pair/byte/spill totals, stats for reducer sizes,
  /// gauges for ratios). The struct stays the source of truth for a
  /// single round; the registry aggregates across rounds and jobs.
  void PublishTo(obs::Registry& registry) const;

  std::string ToString() const;
};

/// Accumulated metrics across the rounds of a multi-round computation
/// (Section 6.3's two-phase matrix multiplication).
struct PipelineMetrics {
  std::vector<JobMetrics> rounds;

  /// Cross-round streaming observed by the plan executor: wall-clock
  /// during which a streamed round's map overlapped its producer's
  /// reduce, the executor's whole span, and how many rounds consumed
  /// their input as a stream. All zero for barrier (sequential-round)
  /// executions.
  double streamed_overlap_ms = 0;
  double exec_span_ms = 0;
  std::size_t streamed_rounds = 0;

  void Add(JobMetrics m) { rounds.push_back(std::move(m)); }

  std::uint64_t total_pairs() const;
  std::uint64_t total_bytes() const;
  std::uint64_t max_reducer_input() const;
  /// Simulation aggregates across rounds (0 when no round was simulated):
  /// the slowest round's makespan, the sum of round makespans (total
  /// simulated wall clock — rounds are barriers), the worst per-round
  /// imbalance, and the total capacity violations.
  double max_makespan() const;
  double total_makespan() const;
  double max_load_imbalance() const;
  std::uint64_t total_capacity_violations() const;
  /// Spill aggregates across rounds (0 when no round shuffled
  /// externally).
  std::uint64_t total_spill_bytes() const;
  std::uint64_t total_spill_runs() const;
  std::uint64_t total_merge_passes() const;
  /// Timing aggregates (0 when rounds ran untimed): total idle
  /// thread-time at stage barriers, total stage overlap (within-round
  /// plus cross-round streaming), and the overlap as a fraction of the
  /// execution span.
  double total_barrier_wait_ms() const;
  double total_overlap_ms() const;
  double overlap_fraction() const;
  /// Skew-defense aggregates (0 when no round ran a defense): speculative
  /// backups launched/won across rounds, hot keys split, and the worst
  /// per-round partition skew.
  std::uint64_t total_speculative_launched() const;
  std::uint64_t total_speculative_won() const;
  std::uint64_t total_hot_keys_split() const;
  double max_partition_skew_ratio() const;

  /// Replication rate of round `i` (0-based): rounds[i].replication_rate().
  double replication_rate(std::size_t i) const;
  /// Whole-computation replication rate: every pair shuffled in any round,
  /// charged against the round-1 input count — the multi-round analogue of
  /// r that makes two-phase algorithms (Section 6.3) comparable with their
  /// one-phase rivals on a single number. 0 when no rounds have run.
  double total_replication_rate() const;

  std::string ToString() const;
};

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_METRICS_H_
