#ifndef MRCOST_ENGINE_SHUFFLE_H_
#define MRCOST_ENGINE_SHUFFLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/engine/hashing.h"
#include "src/obs/trace.h"
#include "src/storage/block.h"
#include "src/storage/external_merge.h"
#include "src/storage/run_writer.h"

namespace mrcost::engine {

/// How a round's shuffle is executed.
///   kAuto     — kExternal when a memory budget is set, else kSharded.
///   kSerial   — the single-map reference shuffle (one thread, no shards).
///   kSharded  — radix-partitioned parallel in-memory shuffle.
///   kExternal — spill-to-disk shuffle: map-side batches over the memory
///               budget are sorted and spilled as runs, then k-way merged
///               back into groups. The only strategy that can run rounds
///               whose intermediate data exceeds RAM.
/// All strategies produce byte-identical ShuffleResults.
enum class ShuffleStrategy { kAuto = 0, kSerial, kSharded, kExternal };

const char* ToString(ShuffleStrategy strategy);

/// How pairs are placed onto shuffle shards (and, in the simulator, how
/// reducers are placed onto workers).
///   kAuto         — kHash unless the plan chooser's map-fn sample detects
///                   key skew (max group far above the mean), in which case
///                   kSampledRange.
///   kHash         — blind IndexOfHash placement (the PR-1 radix path).
///   kSampledRange — sample the mapped key-hash distribution, then cut it
///                   into contiguous hash ranges holding equal pair counts,
///                   so a skewed key distribution still spreads its weight
///                   evenly (see src/engine/partitioner.h). Placement only:
///                   outputs stay byte-identical to kHash via the
///                   scan-order-tag merge.
enum class PartitionerKind { kAuto = 0, kHash, kSampledRange };

const char* ToString(PartitionerKind kind);

/// The one shuffle-configuration struct, shared by every layer that used
/// to duplicate these knobs (JobOptions, PipelineOptions, and the external
/// shuffle's own options). Resolution order, applied field-wise — each
/// field's zero value (kAuto / 0 / "") means "unset":
///   1. explicit per-round settings (JobOptions::shuffle) win;
///   2. fields still unset inherit the pipeline-wide config
///      (PipelineOptions::shuffle / the plan executor's
///      ExecutionOptions) via MergedOver;
///   3. a still-kAuto strategy resolves through Resolved(): kExternal when
///      a memory budget is set, else kSharded. The plan executor's
///      per-round chooser (src/engine/plan.h) refines this step using the
///      round's estimated intermediate bytes, so only rounds that actually
///      exceed the budget pay the spill path.
struct ShuffleConfig {
  /// How the shuffle executes; kAuto defers to step 3 above.
  ShuffleStrategy strategy = ShuffleStrategy::kAuto;
  /// Shuffle memory budget in ByteSizeOf bytes (src/common/byte_size.h —
  /// the same convention the simulator's capacity checks use). The budget
  /// is split evenly across the round's map chunks; a chunk's batch spills
  /// to a sorted run once it exceeds its share. 0 spills every pair
  /// individually when kExternal is explicit (valid, maximally
  /// degenerate).
  std::uint64_t memory_budget_bytes = 0;
  /// Where run files live; "" = std::filesystem::temp_directory_path().
  std::string spill_dir;
  /// Runs merged per k-way pass; 0 = storage::kDefaultMergeFanIn. Runs in
  /// excess are first merged down in extra passes (merge_passes counts
  /// them).
  std::size_t merge_fan_in = 0;
  /// How pairs are placed onto shards. kAuto lets the plan chooser pick
  /// from its map-fn sample (skewed keys => kSampledRange) and otherwise
  /// behaves as kHash. Ignored by the external shuffle (its placement is
  /// the sorted merge order) and by the one-shard serial path.
  PartitionerKind partitioner = PartitionerKind::kAuto;

  /// True when any field was moved off its unset value.
  bool configured() const {
    return strategy != ShuffleStrategy::kAuto || memory_budget_bytes > 0 ||
           !spill_dir.empty() || merge_fan_in > 0 ||
           partitioner != PartitionerKind::kAuto;
  }

  /// Step 2 of the resolution order: fields still unset here inherit
  /// `fallback`'s values.
  ShuffleConfig MergedOver(const ShuffleConfig& fallback) const {
    ShuffleConfig merged = *this;
    if (merged.strategy == ShuffleStrategy::kAuto) {
      merged.strategy = fallback.strategy;
    }
    if (merged.memory_budget_bytes == 0) {
      merged.memory_budget_bytes = fallback.memory_budget_bytes;
    }
    if (merged.spill_dir.empty()) merged.spill_dir = fallback.spill_dir;
    if (merged.merge_fan_in == 0) merged.merge_fan_in = fallback.merge_fan_in;
    if (merged.partitioner == PartitionerKind::kAuto) {
      merged.partitioner = fallback.partitioner;
    }
    return merged;
  }

  /// Step 3 of the resolution order: the strategy that actually runs when
  /// no plan-level chooser intervenes.
  ShuffleStrategy Resolved() const {
    if (strategy != ShuffleStrategy::kAuto) return strategy;
    return memory_budget_bytes > 0 ? ShuffleStrategy::kExternal
                                   : ShuffleStrategy::kSharded;
  }
};

/// Maps a finalized 64-bit hash onto [0, n) with a 128-bit multiply
/// (Lemire's fastrange) instead of `%`. All of the engine's placement
/// decisions — shuffle shard selection and the simulated reduce-worker
/// assignment — go through this one function, so they draw on the hash's
/// high bits uniformly rather than on its low-bit residue.
inline std::size_t IndexOfHash(std::uint64_t hash, std::size_t n) {
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(hash) * n) >> 64);
}

/// Number of shuffle shards to use: an explicit request wins; otherwise one
/// shard per pool thread (capped so tiny jobs do not over-partition).
std::size_t ResolveShardCount(std::size_t requested, std::size_t num_threads,
                              std::size_t num_pairs);

/// Grouped shuffle output: `keys` in global first-seen order (the order the
/// pairs appear scanning chunk 0, chunk 1, ... in emission order), with
/// `groups[i]` holding the values emitted for `keys[i]` in that same order.
/// This is exactly the seed engine's deterministic ordering contract, so
/// results are identical for every thread count and shard count.
template <typename Key, typename Value>
struct ShuffleResult {
  std::vector<Key> keys;
  std::vector<std::vector<Value>> groups;
};

/// Serial reference shuffle: a single hash map over all chunks, as the seed
/// engine did inline. Kept both as the one-shard fast path (no hashing
/// prepass, no merge) and as the benchmark baseline the sharded shuffle is
/// measured against.
template <typename Key, typename Value>
ShuffleResult<Key, Value> SerialShuffle(
    std::vector<std::vector<std::pair<Key, Value>>>& chunks) {
  ShuffleResult<Key, Value> result;
  std::unordered_map<Key, std::size_t, KeyHash> key_index;
  for (auto& chunk : chunks) {
    for (auto& [key, value] : chunk) {
      auto [it, inserted] = key_index.try_emplace(key, result.keys.size());
      if (inserted) {
        result.keys.push_back(key);
        result.groups.emplace_back();
      }
      result.groups[it->second].push_back(std::move(value));
    }
    chunk.clear();
    chunk.shrink_to_fit();
  }
  return result;
}

/// Sharded parallel shuffle. A radix-partition pass routes every pair into
/// one of `num_shards` independent shards by finalized key hash (parallel
/// over chunks, O(pairs) total); each shard then groups its own keys on a
/// pool thread with a private hash map a factor `num_shards` smaller (and
/// correspondingly more cache-resident) than the serial shuffle's single
/// table; a deterministic merge finally restores the global first-seen key
/// order. Consumes `chunks`.
template <typename Key, typename Value>
ShuffleResult<Key, Value> ShardedShuffle(
    std::vector<std::vector<std::pair<Key, Value>>>& chunks,
    common::ThreadPool& pool, std::size_t num_shards) {
  if (num_shards <= 1) return SerialShuffle(chunks);
  const std::size_t num_chunks = chunks.size();

  // Global emission position of the first pair of each chunk, so shards can
  // tag every key with the position of its first occurrence.
  std::vector<std::uint64_t> chunk_offset(num_chunks + 1, 0);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    chunk_offset[c + 1] = chunk_offset[c] + chunks[c].size();
  }

  // Pass 1 (radix partition): each chunk routes its pairs, tagged with
  // their global position, into per-(chunk, shard) buckets. Hashes are
  // finalized exactly once here.
  struct Routed {
    std::uint64_t pos;
    std::pair<Key, Value> kv;
  };
  std::vector<std::vector<Routed>> buckets(num_chunks * num_shards);
  common::ParallelFor(pool, 0, num_chunks, [&](std::size_t c) {
    std::vector<Routed>* out = &buckets[c * num_shards];
    for (std::size_t i = 0; i < chunks[c].size(); ++i) {
      const std::size_t p =
          IndexOfHash(HashValue(chunks[c][i].first), num_shards);
      out[p].push_back(Routed{chunk_offset[c] + i, std::move(chunks[c][i])});
    }
    chunks[c].clear();
    chunks[c].shrink_to_fit();
  });

  // Pass 2: each shard groups the pairs it owns. Scanning its buckets in
  // chunk order visits pairs in global scan order, so per-shard key order
  // (and value order within a key) is already deterministic.
  struct Shard {
    std::unordered_map<Key, std::size_t, KeyHash> index;
    std::vector<Key> keys;
    std::vector<std::vector<Value>> groups;
    std::vector<std::uint64_t> first_pos;  // increasing by construction
  };
  std::vector<Shard> shards(num_shards);
  common::ParallelFor(pool, 0, num_shards, [&](std::size_t p) {
    Shard& shard = shards[p];
    std::size_t owned = 0;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      owned += buckets[c * num_shards + p].size();
    }
    shard.index.reserve(owned);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      auto& bucket = buckets[c * num_shards + p];
      for (Routed& routed : bucket) {
        auto& [key, value] = routed.kv;
        auto [it, inserted] = shard.index.try_emplace(key, shard.keys.size());
        if (inserted) {
          shard.keys.push_back(key);
          shard.groups.emplace_back();
          shard.first_pos.push_back(routed.pos);
        }
        shard.groups[it->second].push_back(std::move(value));
      }
      bucket.clear();
      bucket.shrink_to_fit();
    }
  });

  // Deterministic merge: interleave the shards' (already ordered) key lists
  // back into global first-seen order.
  std::size_t total_keys = 0;
  for (const Shard& shard : shards) total_keys += shard.keys.size();
  struct MergeEntry {
    std::uint64_t first_pos;
    std::uint32_t shard;
    std::uint32_t index;
  };
  std::vector<MergeEntry> order;
  order.reserve(total_keys);
  for (std::size_t p = 0; p < num_shards; ++p) {
    for (std::size_t i = 0; i < shards[p].keys.size(); ++i) {
      order.push_back(MergeEntry{shards[p].first_pos[i],
                                 static_cast<std::uint32_t>(p),
                                 static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const MergeEntry& a, const MergeEntry& b) {
              return a.first_pos < b.first_pos;
            });

  ShuffleResult<Key, Value> result;
  result.keys.reserve(total_keys);
  result.groups.reserve(total_keys);
  for (const MergeEntry& e : order) {
    result.keys.push_back(std::move(shards[e.shard].keys[e.index]));
    result.groups.push_back(std::move(shards[e.shard].groups[e.index]));
  }
  return result;
}

/// Columnar counterpart of ShardedShuffle, and the form the staged
/// executor uses internally: inputs arrive as KVBlocks (one per map
/// chunk), the radix pass routes *row indices* into per-(block, shard)
/// index lists — no pair is copied — and each shard groups its rows
/// through a storage::KeyIndex probe over the blocks' precomputed hashes
/// and key-byte views. Values move exactly once, block column to group.
/// Consumes the blocks' values (blocks stay allocated until return).
template <typename Key, typename Value>
ShuffleResult<Key, Value> BlockShardedShuffle(
    std::vector<std::unique_ptr<storage::KVBlock<Key, Value>>>& blocks,
    common::ThreadPool& pool, std::size_t num_shards) {
  const std::size_t num_blocks = blocks.size();
  num_shards = std::max<std::size_t>(1, num_shards);

  obs::TraceSpan shuffle_span("BlockShardedShuffle", "shuffle");
  if (shuffle_span.active()) {
    shuffle_span.AddArg(
        obs::Arg("blocks", static_cast<std::uint64_t>(num_blocks)));
    shuffle_span.AddArg(
        obs::Arg("shards", static_cast<std::uint64_t>(num_shards)));
  }

  std::vector<std::uint64_t> block_offset(num_blocks + 1, 0);
  for (std::size_t c = 0; c < num_blocks; ++c) {
    block_offset[c + 1] =
        block_offset[c] + (blocks[c] ? blocks[c]->rows() : 0);
  }

  // Pass 1 (radix partition): route row indices, never rows.
  obs::TraceSpan radix_span("RadixPartition", "shuffle");
  std::vector<std::vector<std::uint32_t>> rows(num_blocks * num_shards);
  common::ParallelFor(pool, 0, num_blocks, [&](std::size_t c) {
    if (!blocks[c]) return;
    const auto& block = *blocks[c];
    std::vector<std::uint32_t>* out = &rows[c * num_shards];
    for (std::size_t r = 0; r < block.rows(); ++r) {
      const std::size_t p =
          num_shards == 1 ? 0 : IndexOfHash(block.hash(r), num_shards);
      out[p].push_back(static_cast<std::uint32_t>(r));
    }
  });
  radix_span.End();

  // Pass 2: group each shard's rows. Scanning blocks in order visits rows
  // in global scan order, so per-shard first_pos is increasing.
  obs::TraceSpan group_span("ShardGroup", "shuffle");
  struct Shard {
    std::vector<Key> keys;
    std::vector<std::vector<Value>> groups;
    std::vector<std::uint64_t> first_pos;
  };
  std::vector<Shard> shards(num_shards);
  common::ParallelFor(pool, 0, num_shards, [&](std::size_t p) {
    Shard& shard = shards[p];
    std::size_t owned = 0;
    for (std::size_t c = 0; c < num_blocks; ++c) {
      owned += rows[c * num_shards + p].size();
    }
    storage::KeyIndex index;
    index.Reserve(owned);
    for (std::size_t c = 0; c < num_blocks; ++c) {
      auto& bucket = rows[c * num_shards + p];
      if (!blocks[c]) continue;
      auto& block = *blocks[c];
      for (const std::uint32_t r : bucket) {
        bool inserted = false;
        const std::size_t g =
            index.FindOrInsert(block.hash(r), block.key_bytes(r), inserted);
        if (inserted) {
          shard.keys.push_back(block.KeyAt(r));
          shard.groups.emplace_back();
          shard.first_pos.push_back(block_offset[c] + r);
        }
        shard.groups[g].push_back(std::move(block.value(r)));
      }
      bucket.clear();
      bucket.shrink_to_fit();
    }
  });
  group_span.End();

  std::size_t total_keys = 0;
  for (const Shard& shard : shards) total_keys += shard.keys.size();
  if (shuffle_span.active()) {
    shuffle_span.AddArg(
        obs::Arg("keys", static_cast<std::uint64_t>(total_keys)));
  }
  struct MergeEntry {
    std::uint64_t first_pos;
    std::uint32_t shard;
    std::uint32_t index;
  };
  std::vector<MergeEntry> order;
  order.reserve(total_keys);
  for (std::size_t p = 0; p < num_shards; ++p) {
    for (std::size_t i = 0; i < shards[p].keys.size(); ++i) {
      order.push_back(MergeEntry{shards[p].first_pos[i],
                                 static_cast<std::uint32_t>(p),
                                 static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const MergeEntry& a, const MergeEntry& b) {
              return a.first_pos < b.first_pos;
            });

  ShuffleResult<Key, Value> result;
  result.keys.reserve(total_keys);
  result.groups.reserve(total_keys);
  for (const MergeEntry& e : order) {
    result.keys.push_back(std::move(shards[e.shard].keys[e.index]));
    result.groups.push_back(std::move(shards[e.shard].groups[e.index]));
  }
  return result;
}

namespace internal {

/// Restores the engine's first-seen-key-order contract on a key-ordered
/// external merge: groups are permuted by the global position of each
/// key's first record — exactly the order SerialShuffle discovers keys in.
template <typename Key, typename Value>
ShuffleResult<Key, Value> ReorderByFirstSeen(
    storage::MergedGroups<Key, Value>& merged) {
  std::vector<std::size_t> order(merged.keys.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&merged](std::size_t a, std::size_t b) {
              return merged.first_pos[a] < merged.first_pos[b];
            });
  ShuffleResult<Key, Value> result;
  result.keys.reserve(order.size());
  result.groups.reserve(order.size());
  for (std::size_t i : order) {
    result.keys.push_back(std::move(merged.keys[i]));
    result.groups.push_back(std::move(merged.groups[i]));
  }
  return result;
}

/// Builds the merge inputs from per-chunk writers' unspilled tails plus
/// every disk run, merges, and reorders. `spiller` must outlive the call
/// (it owns the run files) but not the result.
template <typename Key, typename Value>
common::Result<ShuffleResult<Key, Value>> MergeSpilledRuns(
    storage::RunSpiller& spiller,
    std::vector<std::vector<storage::SpillRecord>>& tails,
    std::size_t merge_fan_in, storage::SpillStats& stats) {
  std::vector<std::unique_ptr<storage::RunSource>> sources;
  for (auto& tail : tails) {
    if (!tail.empty()) {
      sources.push_back(
          std::make_unique<storage::MemoryRunSource>(std::move(tail)));
    }
  }
  for (const std::string& path : spiller.spill_run_paths()) {
    sources.push_back(std::make_unique<storage::DiskRunSource>(path));
  }
  auto merged = storage::MergeRunsToGroups<Key, Value>(
      std::move(sources), spiller, merge_fan_in, stats);
  if (!merged.ok()) return merged.status();
  stats.spill_runs = spiller.spill_runs();
  stats.spill_bytes_written = spiller.bytes_written();
  return ReorderByFirstSeen(*merged);
}

/// Block-format counterpart of MergeSpilledRuns: tails are columnar runs,
/// disk runs are version-2 block files, and the merge walks block cursors
/// (storage::BlockLoserTree). Fills `stats.encode` with the spiller's
/// raw-vs-encoded counters on top of the run/byte counts.
template <typename Key, typename Value>
common::Result<ShuffleResult<Key, Value>> MergeSpilledBlockRuns(
    storage::RunSpiller& spiller,
    std::vector<storage::ColumnarRun>& tails, std::size_t merge_fan_in,
    storage::SpillStats& stats) {
  std::vector<std::unique_ptr<storage::BlockRunSource>> sources;
  for (auto& tail : tails) {
    if (!tail.empty()) {
      sources.push_back(
          std::make_unique<storage::MemoryBlockRunSource>(std::move(tail)));
    }
  }
  for (const std::string& path : spiller.spill_run_paths()) {
    sources.push_back(std::make_unique<storage::DiskBlockRunSource>(path));
  }
  auto merged = storage::MergeBlockRunsToGroups<Key, Value>(
      std::move(sources), spiller, merge_fan_in, stats);
  if (!merged.ok()) return merged.status();
  stats.spill_runs = spiller.spill_runs();
  stats.spill_bytes_written = spiller.bytes_written();
  stats.encode = spiller.encode_stats();
  return ReorderByFirstSeen(*merged);
}

}  // namespace internal

/// External (spill-to-disk) shuffle over materialized chunks: each chunk
/// streams through a budgeted RunWriter (over-budget batches become sorted
/// disk runs, chunks are freed as they are consumed), and a k-way
/// loser-tree merge groups the runs back in key order before the
/// first-seen reorder. Byte-identical to SerialShuffle for every budget,
/// chunking, and fan-in; errors (I/O failure, corrupt run) surface as a
/// Status. Consumes `chunks`.
template <typename Key, typename Value>
common::Result<ShuffleResult<Key, Value>> ExternalShuffle(
    std::vector<std::vector<std::pair<Key, Value>>>& chunks,
    common::ThreadPool& pool, const ShuffleConfig& options,
    storage::SpillStats* stats = nullptr) {
  const std::size_t num_chunks = chunks.size();
  storage::RunSpiller spiller(options.spill_dir);
  const std::uint64_t per_chunk_budget =
      options.memory_budget_bytes / std::max<std::size_t>(1, num_chunks);
  std::vector<std::vector<storage::SpillRecord>> tails(num_chunks);
  std::vector<common::Status> chunk_status(num_chunks);
  common::ParallelFor(pool, 0, num_chunks, [&](std::size_t c) {
    storage::RunWriter<Key, Value> writer(&spiller, per_chunk_budget,
                                          static_cast<std::uint32_t>(c));
    for (auto& [key, value] : chunks[c]) {
      if (auto status = writer.Add(HashValue(key), key, value);
          !status.ok()) {
        chunk_status[c] = status;
        return;
      }
    }
    chunks[c].clear();
    chunks[c].shrink_to_fit();
    tails[c] = writer.TakeTail();
  });
  for (const common::Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  storage::SpillStats local;
  auto result = internal::MergeSpilledRuns<Key, Value>(
      spiller, tails, options.merge_fan_in, local);
  if (result.ok() && stats != nullptr) *stats = local;
  return result;
}

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_SHUFFLE_H_
