#ifndef MRCOST_ENGINE_SIMULATOR_H_
#define MRCOST_ENGINE_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/engine/shuffle.h"

namespace mrcost::engine {

/// The simulator's runtime skew defenses — the counterpart of the engine's
/// own speculative tasks and sampled-range shuffle placement, applied in
/// the simulated cost domain where makespan is defined. All three knobs
/// change only how reducer load is placed and re-executed across simulated
/// workers; the reduce outputs a defended round produces stay byte-
/// identical to the undefended run (defenses never touch data).
struct SkewDefense {
  /// How reducers are assigned to workers. kAuto/kHash = the blind
  /// IndexOfHash placement; kSampledRange = sort reducers by key hash and
  /// cut contiguous ranges of near-equal *cost* (pairs/bytes-weighted), so
  /// a hot key stops dragging a full hash range's worth of neighbours onto
  /// its worker.
  PartitionerKind partitioner = PartitionerKind::kAuto;
  /// Speculative backup tasks: a worker whose finish time exceeds
  /// speculation_slowdown_factor x the median worker finish gets its queue
  /// re-issued on the fastest worker at the trigger time; the earlier
  /// finisher wins. Models the executor's first-finisher-wins backups.
  bool speculation = false;
  double speculation_slowdown_factor = 3.0;
  /// A reducer whose input exceeds this many pairs is split into
  /// ceil(pairs / threshold) sub-reducers (scattered by sub-hash) plus one
  /// merge reducer combining the partial results — the paper's q-vs-r
  /// tradeoff applied adaptively. 0 = off.
  double hot_key_split_threshold = 0;

  bool configured() const {
    return partitioner != PartitionerKind::kAuto || speculation ||
           speculation_slowdown_factor != 3.0 ||
           hot_key_split_threshold != 0;
  }
};

/// Knobs for the cluster-simulation layer. The paper's cost model charges a
/// computation a replication rate r against a reducer capacity q; this layer
/// makes the other half of that tradeoff observable by assigning every
/// reduce key to a simulated worker queue and accumulating per-worker cost,
/// so skewed key distributions, heterogeneous machines, and stragglers show
/// up as makespan and load imbalance instead of staying invisible behind
/// placement counts.
struct SimulationOptions {
  /// Number of simulated reduce workers; 0 disables the simulation.
  std::size_t num_workers = 0;

  /// The recipe's reducer capacity q, in input pairs: a reducer (key group)
  /// whose value list is longer than this is a capacity violation.
  /// 0 = unlimited.
  double reducer_capacity_q = 0;
  /// Byte-level form of the same capacity, measured with ByteSizeOf over
  /// the key and its value list. 0 = unlimited.
  std::uint64_t reducer_capacity_bytes = 0;

  /// Fraction of workers (rounded down, chosen by `seed`) that straggle.
  double straggler_fraction = 0;
  /// Stragglers process their queue this factor slower. Must be >= 1.
  double straggler_slowdown = 1.0;
  /// Relative uniform jitter on every worker's speed: each worker's speed
  /// is drawn from [1 - jitter, 1 + jitter]. Models mildly heterogeneous
  /// machines; 0 = identical workers.
  double speed_jitter = 0;
  /// Seeds the speed jitter and the straggler choice. The simulation is a
  /// pure function of (reducer loads, options), so a fixed seed gives
  /// identical reports for every thread/shard count. Jitter and straggler
  /// selection draw from independent streams derived from this seed, so
  /// each axis is reproducible on its own: changing the jitter knob never
  /// changes *which* workers straggle, and vice versa.
  std::uint64_t seed = 0;

  /// Runtime skew defenses (range placement, speculative backups, hot-key
  /// splitting); see SkewDefense. Defaults leave every defense off — the
  /// undefended cluster the defenses are measured against.
  SkewDefense defense;

  /// Simulated time units charged per input pair and per input byte of a
  /// reducer's value list. Defaults model the paper's pair-count cost;
  /// set cost_per_byte to weigh big values more.
  double cost_per_pair = 1.0;
  double cost_per_byte = 0;

  bool enabled() const { return num_workers > 0; }

  /// True when any knob beyond num_workers was moved off its default.
  /// Used to catch configurations that set skew/capacity knobs but forgot
  /// num_workers — which would otherwise silently skip the simulation.
  bool customized() const {
    return reducer_capacity_q != 0 || reducer_capacity_bytes != 0 ||
           straggler_fraction != 0 || straggler_slowdown != 1.0 ||
           speed_jitter != 0 || cost_per_pair != 1.0 || cost_per_byte != 0 ||
           defense.configured();
  }
};

/// One reducer (reduce key) as the simulator sees it: its finalized key
/// hash (which decides the worker via IndexOfHash) and the size of its
/// input list in pairs and bytes.
struct ReducerLoad {
  std::uint64_t key_hash = 0;
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
};

/// One simulated worker's queue after assignment: the reducers it owns (in
/// arrival order, i.e. global first-seen key order), its accumulated load,
/// its speed, and when it finishes draining the queue.
struct WorkerQueue {
  std::vector<std::uint32_t> reducers;  // indices into the ReducerLoad list
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
  double cost = 0;         // cost_per_pair * pairs + cost_per_byte * bytes
  double speed = 1.0;      // jitter and straggler slowdown applied
  double finish_time = 0;  // cost / speed, before any speculative rescue
  /// Finish after a speculative backup (if one fired and won); equals
  /// finish_time when speculation is off or did not help this worker.
  double effective_finish_time = 0;
};

/// Everything the simulation measures for one round.
struct SimulationReport {
  std::size_t num_workers = 0;

  /// Time the slowest worker finishes: max over workers of cost / speed.
  double makespan = 0;
  /// Perfect-balance floor: total cost / total speed. makespan/ideal
  /// quantifies what placement skew plus heterogeneity cost this round.
  double ideal_makespan = 0;
  /// Max worker load / mean worker load, in pairs; 1.0 = perfectly even,
  /// grows with key skew. 0 when nothing was shuffled.
  double load_imbalance = 0;
  /// makespan / (makespan on identical-speed workers): the slowdown
  /// attributable purely to stragglers and jitter. 1.0 = homogeneous.
  double straggler_impact = 0;
  /// Reducers whose input list exceeds reducer_capacity_q pairs or
  /// reducer_capacity_bytes bytes — the schema promised q and broke it.
  /// Counted after hot-key splitting: a split that brings every sub-group
  /// under q removes the violation (that is the point of the defense).
  std::uint64_t capacity_violations = 0;
  std::uint64_t max_worker_pairs = 0;

  /// Skew-defense accounting (all zero when SkewDefense is off):
  /// hot keys split into sub-reducers,
  std::uint64_t hot_keys_split = 0;
  /// speculative backups launched for slow workers,
  std::uint64_t speculative_launched = 0;
  /// and backups that actually finished before their straggler.
  std::uint64_t speculative_won = 0;

  /// Per-worker distributions (count == num_workers, zero-load workers
  /// included).
  common::RunningStats worker_pairs;
  common::RunningStats worker_bytes;
  common::RunningStats worker_times;

  /// The queues themselves, for callers that want to inspect placement
  /// (tests, benches). queues[w].reducers indexes the ReducerLoad vector
  /// passed to SimulateCluster.
  std::vector<WorkerQueue> queues;

  std::string ToString() const;
};

/// Deterministic per-worker speeds for `options`: jitter applied from the
/// seed, then the straggler subset (floor(fraction * workers) workers,
/// sampled without replacement) divided by straggler_slowdown. Jitter and
/// straggler selection use independent streams derived from the seed
/// (seed ^ per-purpose constants), so the straggler set is a function of
/// (seed, num_workers, fraction) alone — sweeping the jitter axis keeps
/// the same workers straggling.
std::vector<double> WorkerSpeeds(const SimulationOptions& options);

/// The straggler subset on its own (sorted worker indices) — the second
/// of WorkerSpeeds' two streams, exposed so tests can pin it per-axis.
std::vector<std::uint64_t> StragglerWorkers(const SimulationOptions& options);

/// Runs the simulation: every reducer is enqueued on worker
/// IndexOfHash(key_hash, num_workers), per-worker cost accumulates, and the
/// report summarizes makespan, imbalance, straggler impact, and capacity
/// violations. Pure and serial — identical results for any thread count.
/// Requires options.enabled().
SimulationReport SimulateCluster(const std::vector<ReducerLoad>& reducers,
                                 const SimulationOptions& options);

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_SIMULATOR_H_
