#ifndef MRCOST_ENGINE_SIMULATOR_H_
#define MRCOST_ENGINE_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace mrcost::engine {

/// Knobs for the cluster-simulation layer. The paper's cost model charges a
/// computation a replication rate r against a reducer capacity q; this layer
/// makes the other half of that tradeoff observable by assigning every
/// reduce key to a simulated worker queue and accumulating per-worker cost,
/// so skewed key distributions, heterogeneous machines, and stragglers show
/// up as makespan and load imbalance instead of staying invisible behind
/// placement counts.
struct SimulationOptions {
  /// Number of simulated reduce workers; 0 disables the simulation.
  std::size_t num_workers = 0;

  /// The recipe's reducer capacity q, in input pairs: a reducer (key group)
  /// whose value list is longer than this is a capacity violation.
  /// 0 = unlimited.
  double reducer_capacity_q = 0;
  /// Byte-level form of the same capacity, measured with ByteSizeOf over
  /// the key and its value list. 0 = unlimited.
  std::uint64_t reducer_capacity_bytes = 0;

  /// Fraction of workers (rounded down, chosen by `seed`) that straggle.
  double straggler_fraction = 0;
  /// Stragglers process their queue this factor slower. Must be >= 1.
  double straggler_slowdown = 1.0;
  /// Relative uniform jitter on every worker's speed: each worker's speed
  /// is drawn from [1 - jitter, 1 + jitter]. Models mildly heterogeneous
  /// machines; 0 = identical workers.
  double speed_jitter = 0;
  /// Seeds the speed jitter and the straggler choice. The simulation is a
  /// pure function of (reducer loads, options), so a fixed seed gives
  /// identical reports for every thread/shard count.
  std::uint64_t seed = 0;

  /// Simulated time units charged per input pair and per input byte of a
  /// reducer's value list. Defaults model the paper's pair-count cost;
  /// set cost_per_byte to weigh big values more.
  double cost_per_pair = 1.0;
  double cost_per_byte = 0;

  bool enabled() const { return num_workers > 0; }

  /// True when any knob beyond num_workers was moved off its default.
  /// Used to catch configurations that set skew/capacity knobs but forgot
  /// num_workers — which would otherwise silently skip the simulation.
  bool customized() const {
    return reducer_capacity_q != 0 || reducer_capacity_bytes != 0 ||
           straggler_fraction != 0 || straggler_slowdown != 1.0 ||
           speed_jitter != 0 || cost_per_pair != 1.0 || cost_per_byte != 0;
  }
};

/// One reducer (reduce key) as the simulator sees it: its finalized key
/// hash (which decides the worker via IndexOfHash) and the size of its
/// input list in pairs and bytes.
struct ReducerLoad {
  std::uint64_t key_hash = 0;
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
};

/// One simulated worker's queue after assignment: the reducers it owns (in
/// arrival order, i.e. global first-seen key order), its accumulated load,
/// its speed, and when it finishes draining the queue.
struct WorkerQueue {
  std::vector<std::uint32_t> reducers;  // indices into the ReducerLoad list
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
  double cost = 0;         // cost_per_pair * pairs + cost_per_byte * bytes
  double speed = 1.0;      // jitter and straggler slowdown applied
  double finish_time = 0;  // cost / speed
};

/// Everything the simulation measures for one round.
struct SimulationReport {
  std::size_t num_workers = 0;

  /// Time the slowest worker finishes: max over workers of cost / speed.
  double makespan = 0;
  /// Perfect-balance floor: total cost / total speed. makespan/ideal
  /// quantifies what placement skew plus heterogeneity cost this round.
  double ideal_makespan = 0;
  /// Max worker load / mean worker load, in pairs; 1.0 = perfectly even,
  /// grows with key skew. 0 when nothing was shuffled.
  double load_imbalance = 0;
  /// makespan / (makespan on identical-speed workers): the slowdown
  /// attributable purely to stragglers and jitter. 1.0 = homogeneous.
  double straggler_impact = 0;
  /// Reducers whose input list exceeds reducer_capacity_q pairs or
  /// reducer_capacity_bytes bytes — the schema promised q and broke it.
  std::uint64_t capacity_violations = 0;
  std::uint64_t max_worker_pairs = 0;

  /// Per-worker distributions (count == num_workers, zero-load workers
  /// included).
  common::RunningStats worker_pairs;
  common::RunningStats worker_bytes;
  common::RunningStats worker_times;

  /// The queues themselves, for callers that want to inspect placement
  /// (tests, benches). queues[w].reducers indexes the ReducerLoad vector
  /// passed to SimulateCluster.
  std::vector<WorkerQueue> queues;

  std::string ToString() const;
};

/// Deterministic per-worker speeds for `options`: jitter applied from the
/// seed, then the straggler subset (floor(fraction * workers) workers,
/// sampled without replacement) divided by straggler_slowdown.
std::vector<double> WorkerSpeeds(const SimulationOptions& options);

/// Runs the simulation: every reducer is enqueued on worker
/// IndexOfHash(key_hash, num_workers), per-worker cost accumulates, and the
/// report summarizes makespan, imbalance, straggler impact, and capacity
/// violations. Pure and serial — identical results for any thread count.
/// Requires options.enabled().
SimulationReport SimulateCluster(const std::vector<ReducerLoad>& reducers,
                                 const SimulationOptions& options);

}  // namespace mrcost::engine

#endif  // MRCOST_ENGINE_SIMULATOR_H_
