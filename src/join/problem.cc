#include "src/join/problem.h"

#include <sstream>

#include "src/common/status.h"

namespace mrcost::join {

NaturalJoinProblem::NaturalJoinProblem(int na, int nb, int nc)
    : na_(na), nb_(nb), nc_(nc) {
  MRCOST_CHECK(na >= 1 && nb >= 1 && nc >= 1);
}

std::string NaturalJoinProblem::name() const {
  std::ostringstream os;
  os << "natural-join R(A,B)|x|S(B,C) (" << na_ << "x" << nb_ << "x" << nc_
     << ")";
  return os.str();
}

std::vector<core::InputId> NaturalJoinProblem::InputsOfOutput(
    core::OutputId output) const {
  // output = ((a * NB) + b) * NC + c.
  const std::uint64_t c = output % nc_;
  const std::uint64_t ab = output / nc_;
  const std::uint64_t b = ab % nb_;
  const std::uint64_t a = ab / nb_;
  const core::InputId r_tuple = a * nb_ + b;
  const core::InputId s_tuple =
      static_cast<std::uint64_t>(na_) * nb_ + b * nc_ + c;
  return {r_tuple, s_tuple};
}

std::vector<core::ReducerId> HashJoinSchema::ReducersOfInput(
    core::InputId input) const {
  const std::uint64_t r_count = static_cast<std::uint64_t>(na_) * nb_;
  if (input < r_count) {
    return {input % nb_};  // R(a,b) -> reducer b
  }
  return {(input - r_count) / nc_};  // S(b,c) -> reducer b
}

GroupByProblem::GroupByProblem(int na, int nb) : na_(na), nb_(nb) {
  MRCOST_CHECK(na >= 1 && nb >= 1);
}

std::string GroupByProblem::name() const {
  std::ostringstream os;
  os << "group-by-sum (" << na_ << " groups x " << nb_ << " values)";
  return os.str();
}

std::vector<core::InputId> GroupByProblem::InputsOfOutput(
    core::OutputId output) const {
  std::vector<core::InputId> deps;
  deps.reserve(nb_);
  for (int b = 0; b < nb_; ++b) {
    deps.push_back(output * nb_ + b);
  }
  return deps;
}

}  // namespace mrcost::join
