#ifndef MRCOST_JOIN_AGGREGATE_H_
#define MRCOST_JOIN_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/job.h"
#include "src/join/relation.h"

namespace mrcost::join {

/// Splits documents into whitespace-separated lowercase words — the
/// "inputs are the word occurrences themselves" view of Example 2.5 under
/// which word count has replication rate exactly 1.
std::vector<std::string> Tokenize(const std::vector<std::string>& documents);

struct WordCountResult {
  /// (word, count), sorted by word.
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  engine::JobMetrics metrics;
};

/// Example 2.5: the canonical embarrassingly parallel job. Inputs are word
/// occurrences; each is mapped to exactly one key-value pair, so
/// metrics.replication_rate() == 1 for every reducer-size limit.
WordCountResult WordCount(const std::vector<std::string>& occurrences,
                          const engine::JobOptions& options = {});

struct GroupBySumResult {
  /// (group value, sum), sorted by group.
  std::vector<std::pair<Value, std::int64_t>> sums;
  engine::JobMetrics metrics;
};

/// Example 2.4: SELECT A, SUM(B) FROM R GROUP BY A. Each input tuple maps
/// to one pair keyed by its A-value; r == 1.
GroupBySumResult GroupBySum(const std::vector<std::pair<Value, Value>>& rows,
                            const engine::JobOptions& options = {});

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_AGGREGATE_H_
