#include "src/join/shares.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mrcost::join {
namespace {

/// Projects y onto {y >= 0, sum y = target} (Euclidean), the standard
/// scaled-simplex projection.
void ProjectOntoSimplex(std::vector<double>& y, double target) {
  const int n = static_cast<int>(y.size());
  std::vector<double> sorted = y;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumulative = 0.0;
  double theta = 0.0;
  int support = 0;
  for (int i = 0; i < n; ++i) {
    cumulative += sorted[i];
    const double candidate = (cumulative - target) / (i + 1);
    if (sorted[i] - candidate > 0) {
      theta = candidate;
      support = i + 1;
    }
  }
  (void)support;
  for (double& v : y) v = std::max(0.0, v - theta);
}

}  // namespace

double PredictedCommunication(const Query& query,
                              const std::vector<std::uint64_t>& sizes,
                              const std::vector<double>& shares) {
  MRCOST_CHECK(static_cast<int>(shares.size()) == query.num_attributes());
  MRCOST_CHECK(sizes.size() == static_cast<std::size_t>(query.num_atoms()));
  double total = 0.0;
  for (int e = 0; e < query.num_atoms(); ++e) {
    double replication = 1.0;
    std::vector<bool> in_atom(query.num_attributes(), false);
    for (int a : query.atoms()[e].attributes) in_atom[a] = true;
    for (int a = 0; a < query.num_attributes(); ++a) {
      if (!in_atom[a]) replication *= shares[a];
    }
    total += static_cast<double>(sizes[e]) * replication;
  }
  return total;
}

common::Result<SharesSolution> OptimizeShares(
    const Query& query, const std::vector<std::uint64_t>& sizes, double p,
    int iterations) {
  const int n = query.num_attributes();
  if (p < 1.0) {
    return common::Status::InvalidArgument("OptimizeShares: need p >= 1");
  }
  if (sizes.size() != static_cast<std::size_t>(query.num_atoms())) {
    return common::Status::InvalidArgument(
        "OptimizeShares: sizes must align with atoms");
  }
  const double budget = std::log(p);

  // Work in log space: y_a = ln(share_a) >= 0, sum y = ln p. The objective
  // sum_e |R_e| exp(sum_{a not in e} y_a) is convex in y.
  std::vector<double> y(n, budget / n);
  // Membership masks per atom.
  std::vector<std::vector<bool>> in_atom(query.num_atoms(),
                                         std::vector<bool>(n, false));
  for (int e = 0; e < query.num_atoms(); ++e) {
    for (int a : query.atoms()[e].attributes) in_atom[e][a] = true;
  }

  auto objective = [&](const std::vector<double>& yy) {
    double total = 0.0;
    for (int e = 0; e < query.num_atoms(); ++e) {
      double exponent = 0.0;
      for (int a = 0; a < n; ++a) {
        if (!in_atom[e][a]) exponent += yy[a];
      }
      total += static_cast<double>(sizes[e]) * std::exp(exponent);
    }
    return total;
  };

  double step = 0.5;
  double current = objective(y);
  std::vector<double> grad(n), trial(n);
  for (int iter = 0; iter < iterations; ++iter) {
    // Gradient: d/dy_a = sum over atoms not containing a of their term.
    std::fill(grad.begin(), grad.end(), 0.0);
    for (int e = 0; e < query.num_atoms(); ++e) {
      double exponent = 0.0;
      for (int a = 0; a < n; ++a) {
        if (!in_atom[e][a]) exponent += y[a];
      }
      const double term = static_cast<double>(sizes[e]) * std::exp(exponent);
      for (int a = 0; a < n; ++a) {
        if (!in_atom[e][a]) grad[a] += term;
      }
    }
    // Normalized gradient step with backtracking.
    double norm = 0.0;
    for (double g : grad) norm += g * g;
    norm = std::sqrt(norm);
    if (norm < 1e-15) break;
    bool improved = false;
    for (int attempt = 0; attempt < 40; ++attempt) {
      for (int a = 0; a < n; ++a) {
        trial[a] = y[a] - step * budget * grad[a] / norm;
      }
      ProjectOntoSimplex(trial, budget);
      const double value = objective(trial);
      if (value < current - 1e-12 * std::abs(current)) {
        y = trial;
        current = value;
        improved = true;
        break;
      }
      step *= 0.5;
    }
    if (!improved || step < 1e-14) break;
  }

  SharesSolution solution;
  solution.shares.resize(n);
  for (int a = 0; a < n; ++a) solution.shares[a] = std::exp(y[a]);
  solution.communication =
      PredictedCommunication(query, sizes, solution.shares);
  return solution;
}

SharesSolution StarShares(const Query& star_query,
                          const std::vector<std::uint64_t>& sizes,
                          double p) {
  const int n = star_query.num_attributes();
  // Fact attributes are those of atom 0 (see StarQuery).
  const Atom& fact = star_query.atoms()[0];
  const int num_fact_attrs = static_cast<int>(fact.attributes.size());
  SharesSolution solution;
  solution.shares.assign(n, 1.0);
  const double fact_share = std::pow(p, 1.0 / num_fact_attrs);
  for (int a : fact.attributes) solution.shares[a] = fact_share;
  solution.communication =
      PredictedCommunication(star_query, sizes, solution.shares);
  return solution;
}

std::vector<int> RoundShares(const std::vector<double>& shares, double p) {
  const int n = static_cast<int>(shares.size());
  std::vector<int> rounded(n);
  for (int a = 0; a < n; ++a) {
    rounded[a] = std::max(1, static_cast<int>(std::floor(shares[a])));
  }
  // Greedily bump the share with the largest multiplicative deficit while
  // the product stays within p.
  while (true) {
    double product = 1.0;
    for (int a = 0; a < n; ++a) product *= rounded[a];
    int best = -1;
    double best_deficit = 1.0;
    for (int a = 0; a < n; ++a) {
      if (product / rounded[a] * (rounded[a] + 1) > p) continue;
      const double deficit = shares[a] / rounded[a];
      if (deficit > best_deficit + 1e-12) {
        best_deficit = deficit;
        best = a;
      }
    }
    if (best < 0) break;
    ++rounded[best];
  }
  return rounded;
}

}  // namespace mrcost::join
