#include "src/join/hypercube.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "src/common/random.h"
#include "src/join/serial_join.h"

namespace mrcost::join {
namespace {

/// Deterministic per-attribute hash of a value into its share count.
int ValueBucket(Value v, int attribute, int share, std::uint64_t seed) {
  const std::uint64_t mixed = common::Mix64(
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) *
          0x100000001ULL +
      static_cast<std::uint64_t>(attribute) + seed * 0x9e3779b97f4a7c15ULL);
  return static_cast<int>(mixed % static_cast<std::uint64_t>(share));
}

}  // namespace

namespace internal {

common::Status CheckHyperCubeArgs(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares) {
  if (relations.size() != static_cast<std::size_t>(query.num_atoms())) {
    return common::Status::InvalidArgument(
        "HyperCube: relations must align with atoms");
  }
  if (shares.size() != static_cast<std::size_t>(query.num_attributes())) {
    return common::Status::InvalidArgument(
        "HyperCube: shares must align with attributes");
  }
  for (int s : shares) {
    if (s < 1) {
      return common::Status::InvalidArgument(
          "HyperCube: shares must be >= 1");
    }
  }
  for (int e = 0; e < query.num_atoms(); ++e) {
    if (relations[e]->arity() !=
        static_cast<int>(query.atoms()[e].attributes.size())) {
      return common::Status::InvalidArgument(
          "HyperCube: relation arity mismatch for atom " +
          query.atoms()[e].relation);
    }
  }
  return common::Status::Ok();
}

void ForEachHyperCubeCell(const Query& query, const std::vector<int>& shares,
                          int atom_idx, const Tuple& tuple,
                          std::uint64_t seed,
                          const std::function<void(std::uint64_t)>& fn) {
  const int num_attrs = query.num_attributes();
  const Atom& atom = query.atoms()[atom_idx];
  std::vector<int> coord(num_attrs, -1);
  for (int pos = 0; pos < static_cast<int>(atom.attributes.size()); ++pos) {
    const int a = atom.attributes[pos];
    coord[a] = ValueBucket(tuple[pos], a, shares[a], seed);
  }
  std::vector<int> free_attrs;
  for (int a = 0; a < num_attrs; ++a) {
    if (coord[a] < 0) free_attrs.push_back(a);
  }
  auto cell_id = [&]() {
    std::uint64_t id = 0;
    for (int a = 0; a < num_attrs; ++a) {
      id = id * static_cast<std::uint64_t>(shares[a]) +
           static_cast<std::uint64_t>(coord[a]);
    }
    return id;
  };
  // Odometer over the free attributes' coordinates.
  std::vector<int> cursor(free_attrs.size(), 0);
  while (true) {
    for (std::size_t i = 0; i < free_attrs.size(); ++i) {
      coord[free_attrs[i]] = cursor[i];
    }
    fn(cell_id());
    std::size_t i = 0;
    for (; i < free_attrs.size(); ++i) {
      if (++cursor[i] < shares[free_attrs[i]]) break;
      cursor[i] = 0;
    }
    if (i == free_attrs.size()) break;
  }
}

engine::StageEstimate HyperCubeStageEstimate(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares) {
  double cells = 1;
  for (int s : shares) cells *= static_cast<double>(s);
  double tuples = 0;
  double weighted_fanout = 0;
  for (int e = 0; e < query.num_atoms(); ++e) {
    double bound = 1;
    for (int a : query.atoms()[e].attributes) {
      bound *= static_cast<double>(shares[a]);
    }
    const double size = static_cast<double>(relations[e]->size());
    tuples += size;
    weighted_fanout += size * (cells / bound);
  }
  engine::StageEstimate estimate;
  estimate.replication = tuples > 0 ? weighted_fanout / tuples : 0;
  estimate.num_reducers = cells;
  return estimate;
}

}  // namespace internal

common::Result<MultiwayJoinPlan> BuildHyperCubeJoinPlan(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares, std::uint64_t seed) {
  if (auto status = internal::CheckHyperCubeArgs(query, relations, shares);
      !status.ok()) {
    return status;
  }
  const int num_atoms = query.num_atoms();

  using Input = std::pair<int, Tuple>;
  std::vector<Input> inputs;
  for (int e = 0; e < num_atoms; ++e) {
    for (const Tuple& t : relations[e]->tuples()) inputs.emplace_back(e, t);
  }

  // A tuple is replicated to every cell matching its atom's shares, so the
  // fan-out is batched through a reused thread-local buffer. The closures
  // outlive this function (the plan is lazy): query/shares/seed are
  // captured by value, the relation pointers must stay valid until
  // Execute.
  auto map_fn = [query, shares, seed](
                    const Input& input,
                    engine::Emitter<std::uint64_t, Input>& emitter) {
    static thread_local engine::Emitter<std::uint64_t, Input>::Batch batch;
    internal::ForEachHyperCubeCell(
        query, shares, input.first, input.second, seed,
        [&](std::uint64_t cell) { batch.emplace_back(cell, input); });
    emitter.EmitBatch(batch);
  };

  auto reduce_fn = [query, relations, num_atoms](
                       const std::uint64_t& /*cell*/,
                       const std::vector<Input>& values,
                       std::vector<Tuple>& out) {
    // Rebuild per-atom fragments and run the serial join on them.
    std::vector<Relation> fragments;
    fragments.reserve(num_atoms);
    for (int e = 0; e < num_atoms; ++e) {
      fragments.emplace_back(relations[e]->name(),
                             relations[e]->attributes());
    }
    for (const auto& [atom_idx, tuple] : values) {
      fragments[atom_idx].Add(tuple);
    }
    std::vector<const Relation*> fragment_ptrs;
    fragment_ptrs.reserve(num_atoms);
    for (const Relation& r : fragments) fragment_ptrs.push_back(&r);
    out = SerialMultiwayJoin(query, fragment_ptrs);
  };

  engine::Plan plan;
  auto tuples =
      plan.Source(std::move(inputs), "tagged tuples")
          .Map<std::uint64_t, Input>(map_fn, "hypercube cells")
          .WithEstimate(
              internal::HyperCubeStageEstimate(query, relations, shares))
          .ReduceByKey<Tuple>(reduce_fn);
  return MultiwayJoinPlan{std::move(plan), std::move(tuples)};
}

common::Result<MultiwayJoinResult> HyperCubeJoin(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares, std::uint64_t seed,
    const engine::JobOptions& options) {
  auto plan = BuildHyperCubeJoinPlan(query, relations, shares, seed);
  if (!plan.ok()) return plan.status();
  auto run = plan->tuples.Execute(engine::ExecutionOptions(options));
  std::sort(run.outputs.begin(), run.outputs.end());
  return MultiwayJoinResult{std::move(run.outputs),
                            std::move(run.metrics.rounds[0])};
}

}  // namespace mrcost::join
