#ifndef MRCOST_JOIN_PROBLEM_H_
#define MRCOST_JOIN_PROBLEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/mapping_schema.h"
#include "src/core/problem.h"

namespace mrcost::join {

/// Example 2.1 as a model problem: the natural join R(A,B) |x| S(B,C) over
/// finite domains of sizes NA, NB, NC. Inputs are the NA*NB possible R
/// tuples (ids 0 .. NA*NB-1, row-major (a,b)) followed by the NB*NC
/// possible S tuples (ids NA*NB .. NA*NB+NB*NC-1, row-major (b,c)).
/// Outputs are the NA*NB*NC triples (a,b,c), each depending on R(a,b) and
/// S(b,c).
class NaturalJoinProblem final : public core::Problem {
 public:
  NaturalJoinProblem(int na, int nb, int nc);

  std::string name() const override;
  std::uint64_t num_inputs() const override {
    return static_cast<std::uint64_t>(na_) * nb_ +
           static_cast<std::uint64_t>(nb_) * nc_;
  }
  std::uint64_t num_outputs() const override {
    return static_cast<std::uint64_t>(na_) * nb_ * nc_;
  }
  std::vector<core::InputId> InputsOfOutput(
      core::OutputId output) const override;

  int na() const { return na_; }
  int nb() const { return nb_; }
  int nc() const { return nc_; }

 private:
  int na_;
  int nb_;
  int nc_;
};

/// The canonical hash-join mapping schema for NaturalJoinProblem: one
/// reducer per B-value; both R(a,b) and S(b,c) go to reducer b. This is
/// the r = 1 extreme of the join tradeoff with q = NA + NC, the schema
/// every MapReduce join tutorial teaches.
class HashJoinSchema final : public core::MappingSchema {
 public:
  explicit HashJoinSchema(const NaturalJoinProblem& problem)
      : na_(problem.na()), nb_(problem.nb()), nc_(problem.nc()) {}

  std::string name() const override { return "hash-join-by-B"; }
  std::uint64_t num_reducers() const override { return nb_; }
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

 private:
  int na_;
  int nb_;
  int nc_;
};

/// Example 2.4 as a model problem: SELECT A, SUM(B) FROM R GROUP BY A
/// over domains of sizes NA and NB. Inputs are the NA*NB possible tuples
/// (a,b) (row-major); outputs are the NA sums, each depending on all NB
/// tuples with its A-value.
class GroupByProblem final : public core::Problem {
 public:
  GroupByProblem(int na, int nb);

  std::string name() const override;
  std::uint64_t num_inputs() const override {
    return static_cast<std::uint64_t>(na_) * nb_;
  }
  std::uint64_t num_outputs() const override { return na_; }
  std::vector<core::InputId> InputsOfOutput(
      core::OutputId output) const override;

 private:
  int na_;
  int nb_;
};

/// The canonical group-by schema: one reducer per A-value, r = 1, q = NB.
/// Like word count (Example 2.5), the problem is embarrassingly parallel:
/// there is no replication/parallelism tradeoff at all.
class GroupBySchema final : public core::MappingSchema {
 public:
  explicit GroupBySchema(const GroupByProblem& problem, int nb)
      : nb_(nb), num_groups_(problem.num_outputs()) {}

  std::string name() const override { return "group-by-A"; }
  std::uint64_t num_reducers() const override { return num_groups_; }
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override {
    return {input / nb_};
  }

 private:
  int nb_;
  std::uint64_t num_groups_;
};

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_PROBLEM_H_
