#ifndef MRCOST_JOIN_SERIAL_JOIN_H_
#define MRCOST_JOIN_SERIAL_JOIN_H_

#include <vector>

#include "src/join/query.h"
#include "src/join/relation.h"

namespace mrcost::join {

/// Serial natural multiway join baseline: returns one tuple per result,
/// with values positionally aligned to query.attribute_names(). Atoms are
/// joined left to right; each atom is hash-indexed on the attributes it
/// shares with the atoms before it, so the cost is output-sensitive for
/// the chain/star/clique queries used here. `relations` aligns with
/// query.atoms(). Results are sorted lexicographically.
std::vector<Tuple> SerialMultiwayJoin(
    const Query& query, const std::vector<const Relation*>& relations);

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_SERIAL_JOIN_H_
