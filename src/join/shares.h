#ifndef MRCOST_JOIN_SHARES_H_
#define MRCOST_JOIN_SHARES_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/join/query.h"

namespace mrcost::join {

/// A share vector for the Shares/HyperCube algorithm of [1] (Afrati–Ullman,
/// "Optimizing multiway joins in a map-reduce environment"): attribute `a`
/// is hashed into `share[a]` buckets and the reducer grid is the product of
/// all shares (p reducers total). A tuple of relation R is replicated to
/// every grid cell agreeing with its hashes on R's attributes — i.e.,
/// prod_{a not in R} share[a] cells.
struct SharesSolution {
  std::vector<double> shares;
  /// Predicted communication sum_e |R_e| * prod_{a not in e} share[a].
  double communication = 0.0;
};

/// Predicted total mapper->reducer communication for the given share
/// vector (the objective the Shares algorithm minimizes).
double PredictedCommunication(const Query& query,
                              const std::vector<std::uint64_t>& sizes,
                              const std::vector<double>& shares);

/// Minimizes PredictedCommunication over real shares >= 1 with
/// prod shares = p, by projected gradient descent in log space (the
/// problem is convex there). `sizes` is aligned with query.atoms().
common::Result<SharesSolution> OptimizeShares(
    const Query& query, const std::vector<std::uint64_t>& sizes, double p,
    int iterations = 4000);

/// Section 5.5.2's closed form for star joins: dimension-only attributes
/// get share 1, each of the N fact attributes gets p^{1/N}.
SharesSolution StarShares(const Query& star_query,
                          const std::vector<std::uint64_t>& sizes, double p);

/// Rounds real shares to integers >= 1 with product <= p, greedily
/// restoring the largest multiplicative losses first.
std::vector<int> RoundShares(const std::vector<double>& shares, double p);

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_SHARES_H_
