#ifndef MRCOST_JOIN_GENERATORS_H_
#define MRCOST_JOIN_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/join/query.h"
#include "src/join/relation.h"

namespace mrcost::join {

/// A random relation whose attribute values are drawn Zipf(`exponent`)
/// over [0, domain) — the classic join-skew generator: at exponent 0 this
/// is the uniform relation the benches already build by hand, and at
/// exponent >= 1 a handful of hot values dominate, so HyperCube cells and
/// reduce keys containing them blow up. The skew-injection input for the
/// join family.
Relation ZipfRelation(std::string name, std::vector<std::string> attributes,
                      std::uint64_t size, Value domain, double exponent,
                      std::uint64_t seed);

/// One Zipf relation per atom of `query`, schema-aligned with the query's
/// attribute names — what HyperCubeJoin / HyperCubeJoinAggregate consume.
std::vector<Relation> ZipfRelationsForQuery(const Query& query,
                                            std::uint64_t size_per_relation,
                                            Value domain, double exponent,
                                            std::uint64_t seed);

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_GENERATORS_H_
