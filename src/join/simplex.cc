#include "src/join/simplex.h"

#include <cmath>
#include <limits>
#include <vector>

namespace mrcost::join {
namespace {

constexpr double kEps = 1e-9;

/// Dense tableau for the revised problem in equality form. Columns are
/// [original x | surplus s | artificial a]; the last entry of each row is
/// the right-hand side.
struct Tableau {
  int m;                          // constraints
  int total;                      // columns excluding rhs
  std::vector<std::vector<double>> row;  // m x (total+1)
  std::vector<int> basis;         // basic variable per row

  double& Rhs(int i) { return row[i][total]; }
};

/// One simplex pass minimizing `cost` (size tableau.total), entering
/// variables restricted to indices < allowed_cols. Bland's rule for both
/// choices prevents cycling. Returns false if unbounded.
bool RunSimplex(Tableau& t, const std::vector<double>& cost,
                int allowed_cols) {
  while (true) {
    // Reduced costs: cost_j - cost_B . column_j.
    int entering = -1;
    for (int j = 0; j < allowed_cols; ++j) {
      double reduced = cost[j];
      for (int i = 0; i < t.m; ++i) {
        reduced -= cost[t.basis[i]] * t.row[i][j];
      }
      if (reduced < -kEps) {
        entering = j;
        break;  // Bland: first improving column
      }
    }
    if (entering < 0) return true;  // optimal

    int leaving = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < t.m; ++i) {
      if (t.row[i][entering] > kEps) {
        const double ratio = t.Rhs(i) / t.row[i][entering];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leaving < 0 || t.basis[i] < t.basis[leaving]))) {
          best_ratio = ratio;
          leaving = i;
        }
      }
    }
    if (leaving < 0) return false;  // unbounded

    // Pivot on (leaving, entering).
    const double pivot = t.row[leaving][entering];
    for (int j = 0; j <= t.total; ++j) t.row[leaving][j] /= pivot;
    for (int i = 0; i < t.m; ++i) {
      if (i == leaving) continue;
      const double factor = t.row[i][entering];
      if (std::abs(factor) < kEps) continue;
      for (int j = 0; j <= t.total; ++j) {
        t.row[i][j] -= factor * t.row[leaving][j];
      }
    }
    t.basis[leaving] = entering;
  }
}

}  // namespace

common::Result<LpSolution> SolveMinLp(
    const std::vector<double>& c, const std::vector<std::vector<double>>& a,
    const std::vector<double>& b) {
  const int n = static_cast<int>(c.size());
  const int m = static_cast<int>(a.size());
  if (static_cast<int>(b.size()) != m) {
    return common::Status::InvalidArgument("SolveMinLp: |b| != rows of A");
  }
  for (const auto& row : a) {
    if (static_cast<int>(row.size()) != n) {
      return common::Status::InvalidArgument(
          "SolveMinLp: row width != |c|");
    }
  }

  // Equality form: A x - s + art = b (rows pre-negated so rhs >= 0).
  Tableau t;
  t.m = m;
  t.total = n + m + m;
  t.row.assign(m, std::vector<double>(t.total + 1, 0.0));
  t.basis.resize(m);
  for (int i = 0; i < m; ++i) {
    const double sign = b[i] >= 0 ? 1.0 : -1.0;
    for (int j = 0; j < n; ++j) t.row[i][j] = sign * a[i][j];
    t.row[i][n + i] = sign * -1.0;  // surplus
    t.row[i][n + m + i] = 1.0;      // artificial
    t.row[i][t.total] = sign * b[i];
    t.basis[i] = n + m + i;
  }

  // Phase 1: minimize the sum of artificials.
  std::vector<double> phase1_cost(t.total, 0.0);
  for (int i = 0; i < m; ++i) phase1_cost[n + m + i] = 1.0;
  if (!RunSimplex(t, phase1_cost, t.total)) {
    return common::Status::Internal("SolveMinLp: phase 1 unbounded");
  }
  double artificial_sum = 0.0;
  for (int i = 0; i < m; ++i) {
    if (t.basis[i] >= n + m) artificial_sum += t.Rhs(i);
  }
  if (artificial_sum > 1e-7) {
    return common::Status::FailedPrecondition("SolveMinLp: infeasible");
  }
  // Drive any degenerate artificials out of the basis.
  for (int i = 0; i < m; ++i) {
    if (t.basis[i] < n + m) continue;
    int pivot_col = -1;
    for (int j = 0; j < n + m; ++j) {
      if (std::abs(t.row[i][j]) > kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col < 0) continue;  // redundant row; harmless to keep
    const double pivot = t.row[i][pivot_col];
    for (int j = 0; j <= t.total; ++j) t.row[i][j] /= pivot;
    for (int r = 0; r < m; ++r) {
      if (r == i) continue;
      const double factor = t.row[r][pivot_col];
      if (std::abs(factor) < kEps) continue;
      for (int j = 0; j <= t.total; ++j) {
        t.row[r][j] -= factor * t.row[i][j];
      }
    }
    t.basis[i] = pivot_col;
  }

  // Phase 2: original objective, artificial columns barred from entering.
  std::vector<double> phase2_cost(t.total, 0.0);
  for (int j = 0; j < n; ++j) phase2_cost[j] = c[j];
  if (!RunSimplex(t, phase2_cost, n + m)) {
    return common::Status::OutOfRange("SolveMinLp: unbounded");
  }

  LpSolution solution;
  solution.x.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (t.basis[i] < n) solution.x[t.basis[i]] = t.Rhs(i);
  }
  for (int j = 0; j < n; ++j) solution.objective += c[j] * solution.x[j];
  return solution;
}

}  // namespace mrcost::join
