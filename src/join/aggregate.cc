#include "src/join/aggregate.h"

#include <algorithm>
#include <cctype>

namespace mrcost::join {

std::vector<std::string> Tokenize(const std::vector<std::string>& documents) {
  std::vector<std::string> words;
  for (const std::string& doc : documents) {
    std::string current;
    for (char c : doc) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        current.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
      } else if (!current.empty()) {
        words.push_back(std::move(current));
        current.clear();
      }
    }
    if (!current.empty()) words.push_back(std::move(current));
  }
  return words;
}

WordCountResult WordCount(const std::vector<std::string>& occurrences,
                          const engine::JobOptions& options) {
  auto map_fn = [](const std::string& word,
                   engine::Emitter<std::string, std::uint64_t>& emitter) {
    emitter.Emit(word, 1);
  };
  auto reduce_fn = [](const std::string& word,
                      const std::vector<std::uint64_t>& ones,
                      std::vector<std::pair<std::string, std::uint64_t>>&
                          out) {
    std::uint64_t total = 0;
    for (std::uint64_t one : ones) total += one;
    out.emplace_back(word, total);
  };
  auto job = engine::RunMapReduce<std::string, std::string, std::uint64_t,
                                  std::pair<std::string, std::uint64_t>>(
      occurrences, map_fn, reduce_fn, options);
  std::sort(job.outputs.begin(), job.outputs.end());
  return WordCountResult{std::move(job.outputs), std::move(job.metrics)};
}

GroupBySumResult GroupBySum(const std::vector<std::pair<Value, Value>>& rows,
                            const engine::JobOptions& options) {
  auto map_fn = [](const std::pair<Value, Value>& row,
                   engine::Emitter<Value, Value>& emitter) {
    emitter.Emit(row.first, row.second);
  };
  auto reduce_fn = [](const Value& group, const std::vector<Value>& values,
                      std::vector<std::pair<Value, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (Value v : values) total += v;
    out.emplace_back(group, total);
  };
  auto job = engine::RunMapReduce<std::pair<Value, Value>, Value, Value,
                                  std::pair<Value, std::int64_t>>(
      rows, map_fn, reduce_fn, options);
  std::sort(job.outputs.begin(), job.outputs.end());
  return GroupBySumResult{std::move(job.outputs), std::move(job.metrics)};
}

}  // namespace mrcost::join
