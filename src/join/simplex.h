#ifndef MRCOST_JOIN_SIMPLEX_H_
#define MRCOST_JOIN_SIMPLEX_H_

#include <vector>

#include "src/common/status.h"

namespace mrcost::join {

/// Solution of a linear program.
struct LpSolution {
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves   minimize c^T x   subject to   A x >= b,  x >= 0
/// by the two-phase dense simplex method (Bland's rule, so it cannot
/// cycle). Dimensions here are tiny — query hypergraphs have a handful of
/// attributes and atoms — so no effort is spent on sparsity.
///
/// Returns InvalidArgument on shape mismatch, FailedPrecondition if the
/// program is infeasible, and OutOfRange if it is unbounded.
common::Result<LpSolution> SolveMinLp(const std::vector<double>& c,
                                      const std::vector<std::vector<double>>& a,
                                      const std::vector<double>& b);

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_SIMPLEX_H_
