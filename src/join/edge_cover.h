#ifndef MRCOST_JOIN_EDGE_COVER_H_
#define MRCOST_JOIN_EDGE_COVER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/core/lower_bound.h"
#include "src/join/query.h"

namespace mrcost::join {

/// A fractional edge cover of a query hypergraph: weight x_e per atom with
/// sum_{e containing v} x_e >= 1 for every attribute v. `rho` is the
/// minimum total weight rho* — the exponent in the paper's g(q) = q^rho
/// bound for multiway joins (Section 5.5.1, citing [6]).
///
/// Note: the LP printed in the paper's Section 5.5 text is garbled; this is
/// the standard Atserias–Grohe–Marx per-node covering LP the prose
/// describes (see DESIGN.md).
struct FractionalEdgeCover {
  double rho = 0.0;
  std::vector<double> weights;  // one per atom
};

/// Solves the covering LP by simplex. Fails (FailedPrecondition) only if
/// some attribute appears in no atom.
common::Result<FractionalEdgeCover> SolveFractionalEdgeCover(
    const Query& query);

/// The AGM output-size bound |O| <= prod_e |R_e|^{x_e} evaluated at the
/// given cover weights and relation sizes (aligned with query.atoms()).
double AgmBound(const FractionalEdgeCover& cover,
                const std::vector<std::uint64_t>& relation_sizes);

/// Section 5.5.1's recipe: g(q) = q^rho, |I| ~ n^2 (binary relations over
/// an n-value domain), |O| ~ n^m for m attributes; closed form
/// r >= n^{m-2} / q^{rho-1}.
core::Recipe MultiwayJoinRecipe(double n, int num_attributes, double rho);
double MultiwayJoinLowerBound(double n, int num_attributes, double rho,
                              double q);

/// Section 5.5.2's matching chain-join form: r = (n/sqrt(q))^{N-1}.
double ChainJoinReplication(double n, int num_relations, double q);

/// Section 5.5.2's star-join lower bound
/// r = N d0 (N d0 / q)^{N-1} / (f + N d0), with fact size f and dimension
/// size d0.
double StarJoinLowerBound(double fact_size, double dim_size,
                          int num_dimensions, double q);

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_EDGE_COVER_H_
