#include "src/join/query.h"

#include <sstream>

namespace mrcost::join {

Query::Query(std::vector<std::string> attribute_names,
             std::vector<Atom> atoms)
    : attribute_names_(std::move(attribute_names)), atoms_(std::move(atoms)) {
  atoms_of_attribute_.resize(attribute_names_.size());
  for (int e = 0; e < static_cast<int>(atoms_.size()); ++e) {
    for (int a : atoms_[e].attributes) {
      MRCOST_CHECK(a >= 0 &&
                   a < static_cast<int>(attribute_names_.size()));
      atoms_of_attribute_[a].push_back(e);
    }
  }
}

Query ChainQuery(int num_relations) {
  MRCOST_CHECK(num_relations >= 1);
  std::vector<std::string> attrs;
  for (int i = 0; i <= num_relations; ++i) {
    attrs.push_back("A" + std::to_string(i));
  }
  std::vector<Atom> atoms;
  for (int i = 0; i < num_relations; ++i) {
    atoms.push_back(Atom{"R" + std::to_string(i + 1), {i, i + 1}});
  }
  return Query(std::move(attrs), std::move(atoms));
}

Query StarQuery(int num_dimensions) {
  MRCOST_CHECK(num_dimensions >= 1);
  std::vector<std::string> attrs;
  std::vector<int> fact_attrs;
  for (int i = 0; i < num_dimensions; ++i) {
    attrs.push_back("A" + std::to_string(i + 1));
    fact_attrs.push_back(i);
  }
  for (int i = 0; i < num_dimensions; ++i) {
    attrs.push_back("B" + std::to_string(i + 1));
  }
  std::vector<Atom> atoms;
  atoms.push_back(Atom{"F", fact_attrs});
  for (int i = 0; i < num_dimensions; ++i) {
    atoms.push_back(
        Atom{"D" + std::to_string(i + 1), {i, num_dimensions + i}});
  }
  return Query(std::move(attrs), std::move(atoms));
}

Query CycleQuery(int length) {
  MRCOST_CHECK(length >= 3);
  std::vector<std::string> attrs;
  for (int i = 0; i < length; ++i) attrs.push_back("A" + std::to_string(i));
  std::vector<Atom> atoms;
  for (int i = 0; i < length; ++i) {
    atoms.push_back(Atom{"R" + std::to_string(i + 1), {i, (i + 1) % length}});
  }
  return Query(std::move(attrs), std::move(atoms));
}

Query CliqueQuery(int num_attributes) {
  MRCOST_CHECK(num_attributes >= 2);
  std::vector<std::string> attrs;
  for (int i = 0; i < num_attributes; ++i) {
    attrs.push_back("A" + std::to_string(i));
  }
  std::vector<Atom> atoms;
  int idx = 1;
  for (int i = 0; i < num_attributes; ++i) {
    for (int j = i + 1; j < num_attributes; ++j) {
      atoms.push_back(Atom{"R" + std::to_string(idx++), {i, j}});
    }
  }
  return Query(std::move(attrs), std::move(atoms));
}

}  // namespace mrcost::join
