#include "src/join/serial_join.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "src/common/status.h"
#include "src/engine/hashing.h"

namespace mrcost::join {
namespace {

/// Hash key for a projection of values.
struct ProjectionHash {
  std::size_t operator()(const std::vector<Value>& v) const {
    std::uint64_t h = 0x8f3a9c4d2b1e0f57ULL;
    for (Value x : v) {
      h = engine::internal::HashCombine(
          h, common::Mix64(static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(x))));
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

std::vector<Tuple> SerialMultiwayJoin(
    const Query& query, const std::vector<const Relation*>& relations) {
  MRCOST_CHECK(relations.size() ==
               static_cast<std::size_t>(query.num_atoms()));
  const int num_attrs = query.num_attributes();
  const int num_atoms = query.num_atoms();

  // For atom i, the positions (within the atom) of attributes bound by
  // atoms 0..i-1, and the hash index keyed on those positions' values.
  std::vector<std::vector<int>> bound_positions(num_atoms);
  std::vector<
      std::unordered_map<std::vector<Value>, std::vector<int>, ProjectionHash>>
      index(num_atoms);
  {
    std::vector<bool> bound(num_attrs, false);
    for (int i = 0; i < num_atoms; ++i) {
      const Atom& atom = query.atoms()[i];
      for (int pos = 0; pos < static_cast<int>(atom.attributes.size());
           ++pos) {
        if (bound[atom.attributes[pos]]) bound_positions[i].push_back(pos);
      }
      for (int a : atom.attributes) bound[a] = true;
      // Build the index for this atom.
      const auto& tuples = relations[i]->tuples();
      for (int t = 0; t < static_cast<int>(tuples.size()); ++t) {
        std::vector<Value> key;
        key.reserve(bound_positions[i].size());
        for (int pos : bound_positions[i]) key.push_back(tuples[t][pos]);
        index[i][key].push_back(t);
      }
    }
  }

  std::vector<Tuple> results;
  Tuple assignment(num_attrs, 0);
  std::vector<bool> assigned(num_attrs, false);

  std::function<void(int)> recurse = [&](int atom_idx) {
    if (atom_idx == num_atoms) {
      results.push_back(assignment);
      return;
    }
    const Atom& atom = query.atoms()[atom_idx];
    std::vector<Value> key;
    key.reserve(bound_positions[atom_idx].size());
    for (int pos : bound_positions[atom_idx]) {
      key.push_back(assignment[atom.attributes[pos]]);
    }
    const auto it = index[atom_idx].find(key);
    if (it == index[atom_idx].end()) return;
    const auto& tuples = relations[atom_idx]->tuples();
    for (int t : it->second) {
      // Bind this atom's unbound attributes.
      std::vector<int> newly_bound;
      bool consistent = true;
      for (int pos = 0; pos < static_cast<int>(atom.attributes.size());
           ++pos) {
        const int a = atom.attributes[pos];
        if (assigned[a]) {
          if (assignment[a] != tuples[t][pos]) {
            consistent = false;
            break;
          }
        } else {
          assigned[a] = true;
          assignment[a] = tuples[t][pos];
          newly_bound.push_back(a);
        }
      }
      if (consistent) recurse(atom_idx + 1);
      for (int a : newly_bound) assigned[a] = false;
    }
  };
  recurse(0);
  std::sort(results.begin(), results.end());
  return results;
}

}  // namespace mrcost::join
