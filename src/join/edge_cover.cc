#include "src/join/edge_cover.h"

#include <cmath>

#include "src/join/simplex.h"

namespace mrcost::join {

common::Result<FractionalEdgeCover> SolveFractionalEdgeCover(
    const Query& query) {
  const int num_atoms = query.num_atoms();
  const int num_attrs = query.num_attributes();
  for (int v = 0; v < num_attrs; ++v) {
    if (query.AtomsOfAttribute(v).empty()) {
      return common::Status::FailedPrecondition(
          "edge cover: attribute '" + query.attribute_names()[v] +
          "' appears in no atom");
    }
  }
  // min 1^T x  s.t.  (incidence) x >= 1, x >= 0.
  std::vector<double> c(num_atoms, 1.0);
  std::vector<std::vector<double>> a(num_attrs,
                                     std::vector<double>(num_atoms, 0.0));
  std::vector<double> b(num_attrs, 1.0);
  for (int v = 0; v < num_attrs; ++v) {
    for (int e : query.AtomsOfAttribute(v)) a[v][e] = 1.0;
  }
  auto lp = SolveMinLp(c, a, b);
  if (!lp.ok()) return lp.status();
  FractionalEdgeCover cover;
  cover.rho = lp->objective;
  cover.weights = lp->x;
  return cover;
}

double AgmBound(const FractionalEdgeCover& cover,
                const std::vector<std::uint64_t>& relation_sizes) {
  MRCOST_CHECK(cover.weights.size() == relation_sizes.size());
  double log_bound = 0.0;
  for (std::size_t e = 0; e < cover.weights.size(); ++e) {
    if (cover.weights[e] <= 0.0) continue;
    log_bound +=
        cover.weights[e] * std::log(static_cast<double>(relation_sizes[e]));
  }
  return std::exp(log_bound);
}

core::Recipe MultiwayJoinRecipe(double n, int num_attributes, double rho) {
  core::Recipe recipe;
  recipe.problem_name = "multiway-join";
  recipe.g = [rho](double q) { return std::pow(q, rho); };
  recipe.num_inputs = n * n;
  recipe.num_outputs = std::pow(n, num_attributes);
  return recipe;
}

double MultiwayJoinLowerBound(double n, int num_attributes, double rho,
                              double q) {
  return std::pow(n, num_attributes - 2) / std::pow(q, rho - 1.0);
}

double ChainJoinReplication(double n, int num_relations, double q) {
  return std::pow(n / std::sqrt(q), num_relations - 1);
}

double StarJoinLowerBound(double fact_size, double dim_size,
                          int num_dimensions, double q) {
  const double nd0 = num_dimensions * dim_size;
  return nd0 * std::pow(nd0 / q, num_dimensions - 1) / (fact_size + nd0);
}

}  // namespace mrcost::join
