#ifndef MRCOST_JOIN_TWO_ROUND_H_
#define MRCOST_JOIN_TWO_ROUND_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/engine/metrics.h"
#include "src/engine/plan.h"
#include "src/join/query.h"
#include "src/join/relation.h"

namespace mrcost::join {

/// Result of a two-round join-then-aggregate pipeline:
/// SELECT group_attr, SUM(sum_attr) FROM <multiway join> GROUP BY
/// group_attr.
struct JoinAggregateResult {
  /// (group value, sum), sorted by group.
  std::vector<std::pair<Value, std::int64_t>> sums;
  engine::PipelineMetrics metrics;  // round 1 (join), round 2 (aggregate)
};

/// The Section 7.1 pipeline as a lazy two-round plan: round 1 (HyperCube
/// join emitting per-group contributions) feeds round 2 (group + sum)
/// without executing either. Round 1 declares the Shares schema's
/// analytic estimate; round 2's data-dependent group count is left to
/// sampling at execution/estimation time. The pointed-to relations must
/// outlive every Execute; tuples are copied into the plan's source.
struct JoinAggregatePlan {
  engine::Plan plan;
  engine::Dataset<std::pair<Value, std::int64_t>> sums;  // unsorted
};
common::Result<JoinAggregatePlan> BuildHyperCubeJoinAggregatePlan(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares, int group_attr, int sum_attr,
    bool pre_aggregate, std::uint64_t seed);

/// The Section 7.1 "joins followed by aggregations" pipeline, analyzed the
/// way Section 6.3 analyzes two-phase matrix multiplication. Round 1 runs
/// the HyperCube join; round 2 groups the results by `group_attr` and
/// sums `sum_attr`.
///
/// With `pre_aggregate` set, each round-1 reducer collapses its local join
/// results to one partial sum per group before emitting — the exact
/// analogue of the matmul partial sums x_ijk: round-2 communication drops
/// from |join result| pairs to at most (#cells x #groups), while round 1
/// is unchanged. Because SUM is associative and commutative and every
/// joined tuple is produced by exactly one cell, the final sums are
/// identical either way; only the metrics differ.
common::Result<JoinAggregateResult> HyperCubeJoinAggregate(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares, int group_attr, int sum_attr,
    bool pre_aggregate, std::uint64_t seed,
    const engine::JobOptions& options = {});

/// Serial baseline for verification.
std::vector<std::pair<Value, std::int64_t>> SerialJoinAggregate(
    const Query& query, const std::vector<const Relation*>& relations,
    int group_attr, int sum_attr);

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_TWO_ROUND_H_
