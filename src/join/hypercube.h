#ifndef MRCOST_JOIN_HYPERCUBE_H_
#define MRCOST_JOIN_HYPERCUBE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/engine/job.h"
#include "src/engine/plan.h"
#include "src/join/query.h"
#include "src/join/relation.h"

namespace mrcost::join {

struct MultiwayJoinResult {
  /// Result tuples aligned with query.attribute_names(), sorted.
  std::vector<Tuple> results;
  engine::JobMetrics metrics;
};

/// The HyperCube join as a lazy plan: the dataset of (unsorted) result
/// tuples plus the plan handle. The stage declares the Shares schema's
/// analytic estimate (see internal::HyperCubeStageEstimate). The pointed-to
/// relations must outlive every Execute of the plan; tuples are copied
/// into the plan's source.
struct MultiwayJoinPlan {
  engine::Plan plan;
  engine::Dataset<Tuple> tuples;
};
common::Result<MultiwayJoinPlan> BuildHyperCubeJoinPlan(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares, std::uint64_t seed);

/// The Shares/HyperCube single-round multiway join of [1] (the upper-bound
/// algorithm of Section 5.5.2): attribute `a` is hashed into `shares[a]`
/// buckets; reducers form the grid prod_a shares[a]; a tuple of relation R
/// is sent to every cell that agrees with its hash on R's attributes.
/// Every result tuple is assembled at exactly one cell (the one indexed by
/// the hashes of all its attribute values), so the output has no
/// duplicates by construction.
///
/// `relations` aligns with query.atoms(); `shares` with query attributes.
common::Result<MultiwayJoinResult> HyperCubeJoin(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares, std::uint64_t seed,
    const engine::JobOptions& options = {});

namespace internal {

/// The HyperCube routing rule, shared by HyperCubeJoin and the two-round
/// pipelines: calls `fn(cell_id)` for every grid cell that must receive
/// the given tuple of atom `atom_idx` (its hashed coordinates fixed, all
/// combinations of the free attributes enumerated). Cell ids are the
/// mixed-radix encoding of the coordinate vector over `shares`.
void ForEachHyperCubeCell(const Query& query, const std::vector<int>& shares,
                          int atom_idx, const Tuple& tuple,
                          std::uint64_t seed,
                          const std::function<void(std::uint64_t)>& fn);

/// Validates the (query, relations, shares) triple; shared precondition
/// checks for the HyperCube entry points.
common::Status CheckHyperCubeArgs(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares);

/// The Shares schema's analytic estimate, shared by the one-round join and
/// the two-round aggregate pipelines: a tuple of atom e fans out to
/// (prod_a shares[a]) / (prod_{a in e} shares[a]) cells, so the declared
/// replication rate is the tuple-count-weighted average of the per-atom
/// fan-outs, onto prod_a shares[a] cell reducers.
engine::StageEstimate HyperCubeStageEstimate(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares);

}  // namespace internal

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_HYPERCUBE_H_
