#ifndef MRCOST_JOIN_RELATION_H_
#define MRCOST_JOIN_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mrcost::join {

/// Attribute values are small integers drawn from the finite domains the
/// model requires (Example 2.1: "we need to assume finite domains").
using Value = std::int32_t;
/// A tuple: one Value per attribute of its relation's schema.
using Tuple = std::vector<Value>;

/// A named relation with a fixed schema (list of attribute names) and a
/// bag of tuples. Tuples are positionally aligned with the schema.
class Relation {
 public:
  Relation(std::string name, std::vector<std::string> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attributes() const { return attributes_; }
  int arity() const { return static_cast<int>(attributes_.size()); }

  void Add(Tuple t) {
    MRCOST_CHECK(static_cast<int>(t.size()) == arity());
    tuples_.push_back(std::move(t));
  }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::uint64_t size() const { return tuples_.size(); }

 private:
  std::string name_;
  std::vector<std::string> attributes_;
  std::vector<Tuple> tuples_;
};

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_RELATION_H_
