#include "src/join/generators.h"

#include <utility>

#include "src/common/random.h"
#include "src/common/status.h"

namespace mrcost::join {

Relation ZipfRelation(std::string name, std::vector<std::string> attributes,
                      std::uint64_t size, Value domain, double exponent,
                      std::uint64_t seed) {
  MRCOST_CHECK(domain >= 1);
  common::SplitMix64 rng(seed);
  const common::ZipfDistribution zipf(static_cast<std::uint64_t>(domain),
                                      exponent);
  Relation rel(std::move(name), std::move(attributes));
  const auto arity = static_cast<std::size_t>(rel.arity());
  for (std::uint64_t i = 0; i < size; ++i) {
    Tuple t(arity);
    for (Value& v : t) v = static_cast<Value>(zipf.Sample(rng));
    rel.Add(std::move(t));
  }
  return rel;
}

std::vector<Relation> ZipfRelationsForQuery(const Query& query,
                                            std::uint64_t size_per_relation,
                                            Value domain, double exponent,
                                            std::uint64_t seed) {
  std::vector<Relation> rels;
  rels.reserve(query.num_atoms());
  for (int e = 0; e < query.num_atoms(); ++e) {
    const Atom& atom = query.atoms()[e];
    std::vector<std::string> names;
    names.reserve(atom.attributes.size());
    for (int a : atom.attributes) {
      names.push_back(query.attribute_names()[a]);
    }
    rels.push_back(ZipfRelation(atom.relation, std::move(names),
                                size_per_relation, domain, exponent,
                                seed + static_cast<std::uint64_t>(e)));
  }
  return rels;
}

}  // namespace mrcost::join
