#ifndef MRCOST_JOIN_QUERY_H_
#define MRCOST_JOIN_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mrcost::join {

/// One relational atom of a multiway join: a relation name plus the query
/// attributes it binds, positionally. Repeated attributes within one atom
/// are not supported.
struct Atom {
  std::string relation;
  std::vector<int> attributes;  // indexes into Query::attribute_names
};

/// A natural multiway join seen as a hypergraph (Section 5.5): nodes are
/// the query attributes, edges are the atoms' attribute sets. Chain, star,
/// cycle, and clique builders cover the paper's analyzed cases.
class Query {
 public:
  Query(std::vector<std::string> attribute_names, std::vector<Atom> atoms);

  int num_attributes() const {
    return static_cast<int>(attribute_names_.size());
  }
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  const std::vector<Atom>& atoms() const { return atoms_; }
  int num_atoms() const { return static_cast<int>(atoms_.size()); }

  /// Atoms (edges) incident to attribute `a`.
  const std::vector<int>& AtomsOfAttribute(int a) const {
    return atoms_of_attribute_[a];
  }

 private:
  std::vector<std::string> attribute_names_;
  std::vector<Atom> atoms_;
  std::vector<std::vector<int>> atoms_of_attribute_;
};

/// Chain join of N binary relations (Section 5.5.2):
/// R1(A0,A1) |x| R2(A1,A2) |x| ... |x| RN(A_{N-1},A_N); m = N+1 attributes.
Query ChainQuery(int num_relations);

/// Star join (Section 5.5.2): fact table F(A1..AN) joined with N dimension
/// tables D_i(A_i, B_i); attributes A1..AN are shared, B1..BN are private.
Query StarQuery(int num_dimensions);

/// Cycle join of s binary relations: R_i(A_i, A_{i+1 mod s}).
Query CycleQuery(int length);

/// Clique join over s attributes: one binary relation per attribute pair
/// (the triangle query for s = 3).
Query CliqueQuery(int num_attributes);

}  // namespace mrcost::join

#endif  // MRCOST_JOIN_QUERY_H_
