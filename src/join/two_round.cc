#include "src/join/two_round.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/join/hypercube.h"
#include "src/join/serial_join.h"

namespace mrcost::join {
namespace {

/// Round-1 output: one partial contribution to a group's sum. Without
/// pre-aggregation there is one per joined tuple; with it, one per
/// (cell, group).
struct Partial {
  Value group;
  std::int64_t sum;
};

}  // namespace

common::Result<JoinAggregatePlan> BuildHyperCubeJoinAggregatePlan(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares, int group_attr, int sum_attr,
    bool pre_aggregate, std::uint64_t seed) {
  if (auto status = internal::CheckHyperCubeArgs(query, relations, shares);
      !status.ok()) {
    return status;
  }
  if (group_attr < 0 || group_attr >= query.num_attributes() ||
      sum_attr < 0 || sum_attr >= query.num_attributes()) {
    return common::Status::InvalidArgument(
        "HyperCubeJoinAggregate: attribute index out of range");
  }

  const int num_atoms = query.num_atoms();
  using Input = std::pair<int, Tuple>;
  std::vector<Input> inputs;
  for (int e = 0; e < num_atoms; ++e) {
    for (const Tuple& t : relations[e]->tuples()) inputs.emplace_back(e, t);
  }

  // ---- Round 1: HyperCube join, emitting per-group contributions. The
  // per-tuple cell fan-out is batched (see HyperCubeJoin). The closures
  // outlive this function (the plan is lazy): query/shares/seed captured
  // by value, the relation pointers must stay valid until Execute.
  auto map1 = [query, shares, seed](
                  const Input& input,
                  engine::Emitter<std::uint64_t, Input>& emitter) {
    static thread_local engine::Emitter<std::uint64_t, Input>::Batch batch;
    internal::ForEachHyperCubeCell(
        query, shares, input.first, input.second, seed,
        [&](std::uint64_t cell) { batch.emplace_back(cell, input); });
    emitter.EmitBatch(batch);
  };

  auto reduce1 = [query, relations, num_atoms, group_attr, sum_attr,
                  pre_aggregate](const std::uint64_t& /*cell*/,
                                 const std::vector<Input>& values,
                                 std::vector<Partial>& out) {
    std::vector<Relation> fragments;
    fragments.reserve(num_atoms);
    for (int e = 0; e < num_atoms; ++e) {
      fragments.emplace_back(relations[e]->name(),
                             relations[e]->attributes());
    }
    for (const auto& [atom_idx, tuple] : values) {
      fragments[atom_idx].Add(tuple);
    }
    std::vector<const Relation*> fragment_ptrs;
    for (const Relation& r : fragments) fragment_ptrs.push_back(&r);
    const std::vector<Tuple> joined =
        SerialMultiwayJoin(query, fragment_ptrs);
    if (pre_aggregate) {
      // Collapse to one partial per group — the Section 6.3 partial-sum
      // idea (ordered map for deterministic output order).
      std::map<Value, std::int64_t> partials;
      for (const Tuple& t : joined) {
        partials[t[group_attr]] += t[sum_attr];
      }
      for (const auto& [group, sum] : partials) {
        out.push_back(Partial{group, sum});
      }
    } else {
      for (const Tuple& t : joined) {
        out.push_back(Partial{t[group_attr], t[sum_attr]});
      }
    }
  };

  // ---- Round 2: group by the grouping attribute and add.
  auto map2 = [](const Partial& p,
                 engine::Emitter<Value, std::int64_t>& emitter) {
    emitter.Emit(p.group, p.sum);
  };
  auto reduce2 = [](const Value& group,
                    const std::vector<std::int64_t>& partials,
                    std::vector<std::pair<Value, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t p : partials) total += p;
    out.emplace_back(group, total);
  };

  engine::Plan plan;
  auto partials =
      plan.Source(std::move(inputs), "tagged tuples")
          .Map<std::uint64_t, Input>(map1, "hypercube join")
          .WithEstimate(
              internal::HyperCubeStageEstimate(query, relations, shares))
          .ReduceByKey<Partial>(reduce1);
  // Round 2 consumes each partial independently (per key), so Execute
  // streams round 1's per-shard reduce outputs straight into round 2's
  // map — the join cells' aggregation starts while other cells still
  // join.
  auto sums = partials
                  .Map<Value, std::int64_t>(map2, pre_aggregate
                                                      ? "sum partials"
                                                      : "group and sum")
                  .WithPerKeyInput()
                  .ReduceByKey<std::pair<Value, std::int64_t>>(reduce2);
  return JoinAggregatePlan{std::move(plan), std::move(sums)};
}

common::Result<JoinAggregateResult> HyperCubeJoinAggregate(
    const Query& query, const std::vector<const Relation*>& relations,
    const std::vector<int>& shares, int group_attr, int sum_attr,
    bool pre_aggregate, std::uint64_t seed,
    const engine::JobOptions& options) {
  auto plan = BuildHyperCubeJoinAggregatePlan(
      query, relations, shares, group_attr, sum_attr, pre_aggregate, seed);
  if (!plan.ok()) return plan.status();
  auto run = plan->sums.Execute(engine::ExecutionOptions(options));

  JoinAggregateResult result;
  std::sort(run.outputs.begin(), run.outputs.end());
  result.sums = std::move(run.outputs);
  result.metrics = std::move(run.metrics);
  return result;
}

std::vector<std::pair<Value, std::int64_t>> SerialJoinAggregate(
    const Query& query, const std::vector<const Relation*>& relations,
    int group_attr, int sum_attr) {
  std::map<Value, std::int64_t> sums;
  for (const Tuple& t : SerialMultiwayJoin(query, relations)) {
    sums[t[group_attr]] += t[sum_attr];
  }
  return {sums.begin(), sums.end()};
}

}  // namespace mrcost::join
