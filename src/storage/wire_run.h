#ifndef MRCOST_STORAGE_WIRE_RUN_H_
#define MRCOST_STORAGE_WIRE_RUN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/block.h"
#include "src/storage/external_merge.h"
#include "src/storage/spill_file.h"

namespace mrcost::storage {

// The wire shuffle's storage half: map tasks keep their sorted runs as
// encoded spill-v2 block frames in a worker-local RunRegistry instead of
// writing them into the shared job directory, and reduce tasks pull them
// through a WireBlockRunSource — a BlockRunSource that decodes frames
// straight off a data socket, so the k-way merge overlaps the fetch. The
// frame payloads are byte-for-byte what BlockRunFileWriter would have put
// inside a run file's CRC frames; only the transport differs, which is
// why both transports produce identical merge outputs.

/// Encodes rows of a sorted run into spill-v2 frame payloads, cut at
/// ~`block_bytes` of raw columnar data — the same slicing
/// BlockRunFileWriter::AppendRun applies before framing. `codec` nullptr
/// means DefaultSpillCodec.
void EncodeRunFrames(const ColumnarRun& run, const Codec* codec,
                     std::size_t block_bytes,
                     std::vector<std::string>& frames,
                     BlockEncodeStats& stats);

/// First byte of a raw columnar frame. Deliberately outside the codec id
/// space, so a raw frame misrouted into DecodeBlock fails loudly instead
/// of decoding garbage.
inline constexpr std::uint8_t kRawFrameMarker = 0xFF;

/// The wire transport's frame format: the run's columns shipped verbatim
/// (hash column included) instead of the spill files' codec-compressed,
/// varint-packed bodies. Local sockets move bytes at memcpy speed, so
/// spending CPU to shrink them is a loss there — and shipping the hashes
/// lets the decoder skip recomputing HashBytes per key, which is a large
/// share of DecodeBlock's work. Same `block_bytes` slicing as
/// EncodeRunFrames. Layout after the marker byte:
///
///   varint rows | varint key bytes | varint value bytes |
///   hashes (rows u64) | positions (rows u64) |
///   key offsets (rows+1 u32, rebased to 0) | key slab |
///   value offsets (rows+1 u32, rebased) | value slab
///
/// Rebased offsets fit u32 because a frame never exceeds the RPC layer's
/// 1 GiB frame cap — an encoder producing a larger frame (one monster
/// row) fails loudly at WriteRunBlock rather than wrapping here.
void EncodeRawRunFrames(const ColumnarRun& run, std::size_t block_bytes,
                        std::vector<std::string>& frames,
                        BlockEncodeStats& stats);

/// Decodes one raw columnar frame back into `run` (cleared first).
common::Status DecodeRawBlock(std::string_view payload, ColumnarRun& run);

/// Frame dispatch: DecodeRawBlock for raw-marker payloads, DecodeBlock
/// for spill-v2 codec payloads — so a fetcher handles both in-memory raw
/// frames and overflow-file frames transparently.
common::Status DecodeAnyBlock(std::string_view payload, ColumnarRun& run);

/// A worker's local store of encoded runs awaiting fetch, keyed by run id.
/// Thread-safe: map tasks Put from the worker main loop while data-server
/// threads Find and stream. Entries are immutable once published (shared
/// ownership keeps a run alive for in-flight fetches even if the registry
/// dies first).
///
/// `retain_budget_bytes` caps the in-memory frame bytes: a Put that would
/// exceed it lands in an overflow file under `overflow_dir` instead
/// (spill-v2, one frame per CRC block) and is served from disk — the
/// shuffle degrades to spill-file behavior instead of OOMing.
class RunRegistry {
 public:
  struct Run {
    /// In-memory frames; empty when the run overflowed to disk.
    std::vector<std::string> frames;
    /// Overflow file path; empty when the run is in memory.
    std::string overflow_path;
    std::uint64_t rows = 0;
    std::uint64_t frame_bytes = 0;
  };

  explicit RunRegistry(std::string overflow_dir,
                       std::uint64_t retain_budget_bytes = 0)
      : overflow_dir_(std::move(overflow_dir)),
        budget_(retain_budget_bytes) {}

  /// Publishes `frames` under `run_id` (ids must be unique — the caller
  /// bakes attempt numbers in). Consumes the frames.
  common::Status Put(const std::string& run_id,
                     std::vector<std::string> frames, std::uint64_t rows);

  /// The run, or nullptr if the id is unknown.
  std::shared_ptr<const Run> Find(const std::string& run_id) const;

  std::uint64_t retained_bytes() const;
  std::uint64_t overflow_bytes() const;

 private:
  std::string overflow_dir_;
  std::uint64_t budget_ = 0;
  mutable std::mutex mu_;
  std::uint64_t retained_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t next_overflow_id_ = 0;
  std::unordered_map<std::string, std::shared_ptr<const Run>> runs_;
};

/// A sorted run streamed over a worker data socket (dist/protocol.h
/// FetchRun family), decoded one block at a time like DiskBlockRunSource.
/// Connects lazily on the first Peek: sends FetchRun{run_id, credits},
/// then decodes RunBlock frames, returning one credit per decoded block so
/// the server never has more than `credits` un-consumed blocks in flight —
/// the reducer's memory bound under memory_budget_bytes.
///
/// A connect failure, mid-stream EOF, or RunError surfaces as
/// StatusCode::kUnavailable — the signal the distributed executor turns
/// into map re-execution + re-fetch. Everything else (CRC mismatch,
/// malformed block) stays kInternal: corruption is not retryable.
class WireBlockRunSource : public BlockRunSource {
 public:
  struct Options {
    std::string endpoint;  // AF_UNIX path of the owner's data socket
    std::string run_id;
    std::uint32_t credits = 4;  // block window granted to the server
    /// Trace tagging: which reducer shard this fetch feeds.
    std::uint32_t reducer_shard = 0;
  };

  explicit WireBlockRunSource(Options options)
      : options_(std::move(options)) {}
  ~WireBlockRunSource() override;

  const RecordView* Peek() override;
  void Advance() override { ++next_; }
  common::Status status() const override { return status_; }

 private:
  bool Open();       // connect + FetchRun; false sets status_
  bool NextBlock();  // one RunBlock into run_; false = end/error
  void EmitFetchSpan();

  Options options_;
  int fd_ = -1;
  bool opened_ = false;
  bool done_ = false;
  common::Status status_;
  std::string payload_;
  ColumnarRun run_;
  std::size_t next_ = 0;
  RecordView view_;

  // Per-fetch observability, emitted once as a "FetchRun" span.
  std::uint64_t t_open_us_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t wire_bytes_ = 0;
  double stall_ms_ = 0;
  double credit_wait_ms_ = 0;  // server-side, reported in RunEnd
  bool span_emitted_ = false;
};

}  // namespace mrcost::storage

#endif  // MRCOST_STORAGE_WIRE_RUN_H_
