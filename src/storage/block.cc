#include "src/storage/block.h"

#include <cstring>

#include "src/storage/spill_file.h"  // kMaxBlockBytes

namespace mrcost::storage {
namespace {

// ----------------------------------------------------------------------
// Identity codec.

class IdentityCodecImpl final : public Codec {
 public:
  std::uint8_t id() const override { return 0; }
  const char* name() const override { return "identity"; }

  void Compress(std::string_view in, std::string& out) const override {
    out.assign(in.data(), in.size());
  }

  common::Status Decompress(std::string_view in, std::size_t raw_size,
                            std::string& out) const override {
    if (in.size() != raw_size) {
      return common::Status::Internal(
          "identity codec: stored size mismatch");
    }
    out.assign(in.data(), in.size());
    return common::Status::Ok();
  }
};

// ----------------------------------------------------------------------
// "mrlz": greedy LZ77 with LZ4-style framing.
//
// A compressed stream is a sequence of sequences:
//
//   +--------+-----------------+-------------+------------------+
//   | token  | extra lit len.. | literals .. | u16 LE offset,   |
//   | u8     | (0xFF chain)    |             | extra match len..|
//   +--------+-----------------+-------------+------------------+
//
// token = (literal_len:4 | match_len-4:4); nibble 15 extends with
// 255-continuation bytes. Matches are at least 4 bytes within a 65535-byte
// window; the final sequence is literals-only (no offset field). The
// decoder trusts nothing: every length and offset is bounds-checked and
// decode stops exactly at raw_size.

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashLog = 13;

inline std::uint32_t HashQuad(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashLog);
}

void PutLzLength(std::size_t extra, std::string& out) {
  while (extra >= 255) {
    out.push_back(static_cast<char>(0xFF));
    extra -= 255;
  }
  out.push_back(static_cast<char>(extra));
}

bool GetLzLength(const char*& p, const char* end, std::size_t& len) {
  while (true) {
    if (p == end) return false;
    const auto byte = static_cast<unsigned char>(*p++);
    len += byte;
    if (byte != 255) return true;
  }
}

class Lz77CodecImpl final : public Codec {
 public:
  std::uint8_t id() const override { return 1; }
  const char* name() const override { return "mrlz"; }

  void Compress(std::string_view in, std::string& out) const override {
    out.clear();
    const auto* base = reinterpret_cast<const unsigned char*>(in.data());
    const std::size_t n = in.size();
    std::size_t lit_start = 0;  // first unemitted literal
    std::size_t i = 0;
    // head[h] = 1 + last position hashing to h (0 = none).
    std::vector<std::uint32_t> head(std::size_t{1} << kHashLog, 0);
    while (n >= kMinMatch && i + kMinMatch <= n) {
      const std::uint32_t h = HashQuad(base + i);
      const std::size_t cand = head[h];
      head[h] = static_cast<std::uint32_t>(i + 1);
      std::size_t match_len = 0;
      std::size_t offset = 0;
      if (cand != 0 && i + 1 - cand <= kMaxOffset) {
        const std::size_t c = cand - 1;
        if (std::memcmp(base + c, base + i, kMinMatch) == 0) {
          match_len = kMinMatch;
          while (i + match_len < n &&
                 base[c + match_len] == base[i + match_len]) {
            ++match_len;
          }
          offset = i - c;
        }
      }
      if (match_len == 0) {
        ++i;
        continue;
      }
      EmitSequence(in, lit_start, i - lit_start, offset, match_len, out);
      i += match_len;
      lit_start = i;
    }
    // Final literals-only sequence (always present, possibly empty, so the
    // decoder can tell a clean end from truncation).
    EmitFinal(in, lit_start, n - lit_start, out);
  }

  common::Status Decompress(std::string_view in, std::size_t raw_size,
                            std::string& out) const override {
    out.clear();
    out.reserve(raw_size);
    const char* p = in.data();
    const char* const end = p + in.size();
    while (true) {
      if (p == end) {
        return common::Status::Internal("mrlz: truncated stream");
      }
      const auto token = static_cast<unsigned char>(*p++);
      std::size_t lit_len = token >> 4;
      if (lit_len == 15 && !GetLzLength(p, end, lit_len)) {
        return common::Status::Internal("mrlz: truncated literal length");
      }
      if (static_cast<std::size_t>(end - p) < lit_len) {
        return common::Status::Internal("mrlz: literals overrun input");
      }
      if (out.size() + lit_len > raw_size) {
        return common::Status::Internal("mrlz: output overruns raw size");
      }
      out.append(p, lit_len);
      p += lit_len;
      if (out.size() == raw_size) {
        // Clean end: the final sequence carries no match.
        if (p != end) {
          return common::Status::Internal("mrlz: trailing bytes");
        }
        return common::Status::Ok();
      }
      if (static_cast<std::size_t>(end - p) < 2) {
        return common::Status::Internal("mrlz: truncated match offset");
      }
      const std::size_t offset =
          static_cast<unsigned char>(p[0]) |
          (static_cast<std::size_t>(static_cast<unsigned char>(p[1])) << 8);
      p += 2;
      std::size_t match_len = (token & 0x0F) + kMinMatch;
      if ((token & 0x0F) == 15 && !GetLzLength(p, end, match_len)) {
        return common::Status::Internal("mrlz: truncated match length");
      }
      if (offset == 0 || offset > out.size()) {
        return common::Status::Internal("mrlz: match offset out of range");
      }
      if (out.size() + match_len > raw_size) {
        return common::Status::Internal("mrlz: match overruns raw size");
      }
      // Byte-by-byte: overlapping matches (offset < len) are the RLE case.
      std::size_t src = out.size() - offset;
      for (std::size_t k = 0; k < match_len; ++k) {
        out.push_back(out[src + k]);
      }
    }
  }

 private:
  static void EmitSequence(std::string_view in, std::size_t lit_start,
                           std::size_t lit_len, std::size_t offset,
                           std::size_t match_len, std::string& out) {
    const std::size_t match_code = match_len - kMinMatch;
    const unsigned lit_nibble = lit_len < 15 ? static_cast<unsigned>(lit_len)
                                             : 15u;
    const unsigned match_nibble =
        match_code < 15 ? static_cast<unsigned>(match_code) : 15u;
    out.push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15) PutLzLength(lit_len - 15, out);
    out.append(in.data() + lit_start, lit_len);
    out.push_back(static_cast<char>(offset & 0xFF));
    out.push_back(static_cast<char>((offset >> 8) & 0xFF));
    if (match_nibble == 15) PutLzLength(match_code - 15, out);
  }

  static void EmitFinal(std::string_view in, std::size_t lit_start,
                        std::size_t lit_len, std::string& out) {
    const unsigned lit_nibble = lit_len < 15 ? static_cast<unsigned>(lit_len)
                                             : 15u;
    out.push_back(static_cast<char>(lit_nibble << 4));
    if (lit_nibble == 15) PutLzLength(lit_len - 15, out);
    out.append(in.data() + lit_start, lit_len);
  }
};

constexpr std::uint8_t kFlagKeyDict = 1u << 0;

}  // namespace

const Codec& IdentityCodec() {
  static const IdentityCodecImpl codec;
  return codec;
}

const Codec& Lz77Codec() {
  static const Lz77CodecImpl codec;
  return codec;
}

const Codec& DefaultSpillCodec() { return Lz77Codec(); }

const Codec* CodecById(std::uint8_t id) {
  switch (id) {
    case 0:
      return &IdentityCodec();
    case 1:
      return &Lz77Codec();
    default:
      return nullptr;
  }
}

void EncodeBlock(const ColumnarRun& run, std::size_t lo, std::size_t hi,
                 const Codec& codec, std::string& payload,
                 BlockEncodeStats& stats) {
  const std::size_t n = hi - lo;
  std::string body;
  PutVarint(n, body);

  // Keys: sorted order puts equal keys adjacent, so a run-length
  // dictionary is worth it whenever it at least halves the entries.
  std::size_t n_runs = 0;
  for (std::size_t i = lo; i < hi;) {
    std::size_t j = i + 1;
    while (j < hi && run.keys.At(j) == run.keys.At(i)) ++j;
    ++n_runs;
    i = j;
  }
  const bool use_dict = n > 0 && n_runs * 2 <= n;
  body.push_back(static_cast<char>(use_dict ? kFlagKeyDict : 0));
  if (use_dict) {
    PutVarint(n_runs, body);
    for (std::size_t i = lo; i < hi;) {
      std::size_t j = i + 1;
      while (j < hi && run.keys.At(j) == run.keys.At(i)) ++j;
      const std::string_view key = run.keys.At(i);
      PutVarint(key.size(), body);
      body.append(key.data(), key.size());
      PutVarint(j - i, body);
      i = j;
    }
  } else {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::string_view key = run.keys.At(i);
      PutVarint(key.size(), body);
      body.append(key.data(), key.size());
    }
  }

  // Positions: zigzag deltas (sorted by key, so positions are only
  // near-monotone; deltas still tend small within a key's run).
  std::int64_t prev = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const auto pos = static_cast<std::int64_t>(run.positions[i]);
    PutVarint(ZigZagEncode(pos - prev), body);
    prev = pos;
  }

  for (std::size_t i = lo; i < hi; ++i) {
    const std::string_view value = run.values.At(i);
    PutVarint(value.size(), body);
    body.append(value.data(), value.size());
  }

  std::string compressed;
  codec.Compress(body, compressed);
  const bool keep = compressed.size() < body.size();
  const std::string& chosen = keep ? compressed : body;
  const std::uint8_t codec_id = keep ? codec.id() : IdentityCodec().id();

  payload.clear();
  payload.push_back(static_cast<char>(codec_id));
  PutVarint(body.size(), payload);
  payload.append(chosen);

  stats.raw_bytes += body.size();
  stats.encoded_bytes += payload.size();
  stats.blocks += 1;
  if (use_dict) stats.dict_blocks += 1;
}

common::Status DecodeBlock(std::string_view payload, ColumnarRun& run) {
  run.Clear();
  const char* p = payload.data();
  const char* const end = p + payload.size();
  if (p == end) {
    return common::Status::Internal("block: empty payload");
  }
  const auto codec_id = static_cast<std::uint8_t>(*p++);
  const Codec* codec = CodecById(codec_id);
  if (codec == nullptr) {
    return common::Status::Internal("block: unknown codec id " +
                                    std::to_string(codec_id));
  }
  std::uint64_t raw_size = 0;
  if (!GetVarint(p, end, raw_size)) {
    return common::Status::Internal("block: truncated raw size");
  }
  if (raw_size > kMaxBlockBytes) {
    return common::Status::Internal("block: implausible raw size " +
                                    std::to_string(raw_size));
  }
  std::string body;
  auto status = codec->Decompress(
      std::string_view(p, static_cast<std::size_t>(end - p)),
      static_cast<std::size_t>(raw_size), body);
  if (!status.ok()) return status;

  p = body.data();
  const char* const body_end = p + body.size();
  std::uint64_t n = 0;
  if (!GetVarint(p, body_end, n)) {
    return common::Status::Internal("block: truncated row count");
  }
  if (n > kMaxBlockBytes) {
    return common::Status::Internal("block: implausible row count");
  }
  if (p == body_end) {
    return common::Status::Internal("block: truncated flags");
  }
  const auto flags = static_cast<std::uint8_t>(*p++);
  if ((flags & ~kFlagKeyDict) != 0) {
    return common::Status::Internal("block: unknown flags");
  }

  run.hashes.reserve(n);
  run.positions.reserve(n);
  if ((flags & kFlagKeyDict) != 0) {
    std::uint64_t n_runs = 0;
    if (!GetVarint(p, body_end, n_runs)) {
      return common::Status::Internal("block: truncated dictionary size");
    }
    std::uint64_t total = 0;
    for (std::uint64_t r = 0; r < n_runs; ++r) {
      std::uint64_t key_len = 0;
      if (!GetVarint(p, body_end, key_len) ||
          static_cast<std::uint64_t>(body_end - p) < key_len) {
        return common::Status::Internal("block: truncated dictionary key");
      }
      const std::string_view key(p, static_cast<std::size_t>(key_len));
      p += key_len;
      std::uint64_t count = 0;
      if (!GetVarint(p, body_end, count)) {
        return common::Status::Internal("block: truncated run count");
      }
      if (count == 0 || total + count > n) {
        return common::Status::Internal("block: dictionary rows mismatch");
      }
      const std::uint64_t hash = HashBytes(key);
      for (std::uint64_t k = 0; k < count; ++k) {
        run.keys.Append(key);
        run.hashes.push_back(hash);
      }
      total += count;
    }
    if (total != n) {
      return common::Status::Internal("block: dictionary rows mismatch");
    }
  } else {
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t key_len = 0;
      if (!GetVarint(p, body_end, key_len) ||
          static_cast<std::uint64_t>(body_end - p) < key_len) {
        return common::Status::Internal("block: truncated key");
      }
      const std::string_view key(p, static_cast<std::size_t>(key_len));
      p += key_len;
      run.keys.Append(key);
      run.hashes.push_back(HashBytes(key));
    }
  }

  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t delta = 0;
    if (!GetVarint(p, body_end, delta)) {
      return common::Status::Internal("block: truncated position");
    }
    prev += ZigZagDecode(delta);
    run.positions.push_back(static_cast<std::uint64_t>(prev));
  }

  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t value_len = 0;
    if (!GetVarint(p, body_end, value_len) ||
        static_cast<std::uint64_t>(body_end - p) < value_len) {
      return common::Status::Internal("block: truncated value");
    }
    run.values.Append(std::string_view(p, static_cast<std::size_t>(value_len)));
    p += value_len;
  }
  if (p != body_end) {
    return common::Status::Internal("block: trailing bytes in body");
  }
  return common::Status::Ok();
}

}  // namespace mrcost::storage
