#ifndef MRCOST_STORAGE_RUN_WRITER_H_
#define MRCOST_STORAGE_RUN_WRITER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/byte_size.h"
#include "src/common/status.h"
#include "src/common/temp_dir.h"
#include "src/storage/block.h"
#include "src/storage/serde.h"
#include "src/storage/spill_file.h"

namespace mrcost::storage {

/// One serialized key-value pair inside a run: the key's finalized hash,
/// the pair's global emission position, and the serialized key bytes
/// followed by the serialized value bytes.
struct SpillRecord {
  std::uint64_t hash = 0;
  std::uint64_t pos = 0;
  std::uint32_t key_size = 0;
  std::string bytes;

  std::string_view key_bytes() const {
    return std::string_view(bytes).substr(0, key_size);
  }
  std::string_view value_bytes() const {
    return std::string_view(bytes).substr(key_size);
  }
};

/// The total order every run is sorted in and the k-way merge pops in:
/// (hash, key bytes, position). Serialization is injective, so equal
/// (hash, key bytes) means equal keys, and ordering by position within a
/// key reproduces emission order — the engine's determinism contract.
inline bool SpillRecordLess(const SpillRecord& a, const SpillRecord& b) {
  if (a.hash != b.hash) return a.hash < b.hash;
  const int c = a.key_bytes().compare(b.key_bytes());
  if (c != 0) return c < 0;
  return a.pos < b.pos;
}

inline bool SameKey(const SpillRecord& a, const SpillRecord& b) {
  return a.hash == b.hash && a.key_bytes() == b.key_bytes();
}

/// Emission positions are (map chunk, position within chunk) packed so
/// that the numeric order equals the global scan order the in-memory
/// shuffles use: chunk index in the high bits, local position below.
inline constexpr int kSpillPosLocalBits = 44;

inline std::uint64_t MakeSpillPos(std::uint32_t chunk, std::uint64_t local) {
  MRCOST_CHECK(chunk < (std::uint32_t{1} << (64 - kSpillPosLocalBits)));
  MRCOST_CHECK(local < (std::uint64_t{1} << kSpillPosLocalBits));
  return (static_cast<std::uint64_t>(chunk) << kSpillPosLocalBits) | local;
}

/// Appends `rec` to a block payload: u64 hash, u64 pos, u32 key bytes,
/// u32 total bytes, then the bytes.
void EncodeRecord(const SpillRecord& rec, std::string& out);

/// Decodes the record at `p`, advancing past it; false on truncated or
/// malformed input.
bool DecodeRecord(const char*& p, const char* end, SpillRecord& rec);

/// Spill counters for one shuffle, surfaced through JobMetrics.
struct SpillStats {
  /// Sorted runs spilled to disk by over-budget emitter batches.
  std::uint64_t spill_runs = 0;
  /// Bytes written to spill files: the runs above plus any intermediate
  /// runs rewritten by multi-pass merging.
  std::uint64_t spill_bytes_written = 0;
  /// k-way merge passes, the final grouping pass included; more than one
  /// means the run count exceeded the merge fan-in.
  std::uint64_t merge_passes = 0;
  /// Block-format runs only: raw-vs-encoded byte counters for every block
  /// written (spills and merge rewrites), the source of
  /// JobMetrics::compression_ratio.
  BlockEncodeStats encode;
};

/// Streams pre-sorted records into one spill file, packing them into
/// CRC-framed blocks of ~`block_bytes`.
class RunFileWriter {
 public:
  static common::Result<RunFileWriter> Create(
      const std::string& path, std::size_t block_bytes = kDefaultBlockBytes);

  RunFileWriter(RunFileWriter&&) = default;
  RunFileWriter& operator=(RunFileWriter&&) = default;

  common::Status Append(const SpillRecord& rec);
  common::Status Finish();

  std::uint64_t bytes_written() const { return file_.bytes_written(); }
  const std::string& path() const { return file_.path(); }

 private:
  explicit RunFileWriter(SpillFileWriter file, std::size_t block_bytes)
      : file_(std::move(file)), block_bytes_(block_bytes) {}

  SpillFileWriter file_;
  std::size_t block_bytes_ = kDefaultBlockBytes;
  std::string block_;
};

/// Streams pre-sorted records into one version-2 spill file, buffering a
/// ColumnarRun and encoding it (dictionary + codec, src/storage/block.h)
/// as one CRC frame whenever the raw columnar bytes reach `block_bytes`.
class BlockRunFileWriter {
 public:
  static common::Result<BlockRunFileWriter> Create(
      const std::string& path, const Codec* codec = nullptr,
      std::size_t block_bytes = kDefaultBlockBytes);

  BlockRunFileWriter(BlockRunFileWriter&&) = default;
  BlockRunFileWriter& operator=(BlockRunFileWriter&&) = default;

  common::Status Append(const RecordView& rec);
  /// Appends rows [lo, hi) of an already-sorted run.
  common::Status AppendRun(const ColumnarRun& run, std::size_t lo,
                           std::size_t hi);
  common::Status Finish();

  std::uint64_t bytes_written() const { return file_.bytes_written(); }
  const std::string& path() const { return file_.path(); }
  const BlockEncodeStats& stats() const { return stats_; }

 private:
  BlockRunFileWriter(SpillFileWriter file, const Codec* codec,
                     std::size_t block_bytes)
      : file_(std::move(file)), codec_(codec), block_bytes_(block_bytes) {}

  common::Status FlushPending();

  SpillFileWriter file_;
  const Codec* codec_ = nullptr;
  std::size_t block_bytes_ = kDefaultBlockBytes;
  ColumnarRun pending_;
  std::string payload_;
  BlockEncodeStats stats_;
};

/// Owns the run files of one shuffle: names them uniquely, counts runs and
/// bytes, and removes every file it created on destruction. Thread-safe —
/// the map chunks of one round spill through a shared spiller
/// concurrently.
class RunSpiller {
 public:
  /// `dir` empty = a fresh unique directory under the system temp dir
  /// (a common::TempDir owned by this spiller and removed with it), so
  /// concurrent spillers in separate processes never share a directory
  /// unless a shared `dir` is passed explicitly — which is exactly what
  /// the multi-process shuffle transport does.
  explicit RunSpiller(std::string dir = {});
  ~RunSpiller();

  RunSpiller(const RunSpiller&) = delete;
  RunSpiller& operator=(const RunSpiller&) = delete;

  /// Sorts `records` by SpillRecordLess and writes them as one run,
  /// consuming them. Counts toward spill_runs().
  common::Status SpillRun(std::vector<SpillRecord>& records);

  /// Writes an already-sorted columnar run as one version-2 run file,
  /// consuming it. Counts toward spill_runs(); encode stats accumulate in
  /// encode_stats().
  common::Status SpillBlockRun(ColumnarRun& run,
                               const Codec* codec = nullptr);

  /// Block-format counterpart of NewRun/CloseRun for merge rewrites.
  common::Result<BlockRunFileWriter> NewBlockRun(
      const Codec* codec = nullptr);
  common::Status CloseBlockRun(BlockRunFileWriter& writer);

  /// Raw-vs-encoded byte counters over every block run written.
  BlockEncodeStats encode_stats() const;

  /// Opens a new (registered, auto-cleaned) run file for an already-sorted
  /// stream — the merge uses this to rewrite intermediate runs. Close with
  /// CloseRun so the bytes are counted. Does not count toward
  /// spill_runs().
  common::Result<RunFileWriter> NewRun();
  common::Status CloseRun(RunFileWriter& writer);

  /// Paths of every run file created so far (spills and merge rewrites).
  std::vector<std::string> run_paths() const;
  /// Paths created by SpillRun/SpillBlockRun only, in a deterministic
  /// order: block runs sort by their smallest emission position, so the
  /// merge consumes them in scan order no matter which thread registered
  /// its spill first (record runs keep creation order).
  std::vector<std::string> spill_run_paths() const;

  std::uint64_t spill_runs() const;
  std::uint64_t bytes_written() const;

 private:
  std::string NextPath();

  std::string dir_;
  /// Owns the scratch directory when none was passed in; empty handle
  /// (no cleanup) when the caller supplied a shared dir.
  common::TempDir owned_dir_;
  mutable std::mutex mu_;
  /// (order key, path): block runs key on their smallest emission
  /// position, record runs on registration order.
  std::vector<std::pair<std::uint64_t, std::string>> spill_paths_;
  std::vector<std::string> merge_paths_;
  BlockEncodeStats encode_stats_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t next_run_id_ = 0;
  std::uint64_t spiller_id_ = 0;
};

/// Per-map-chunk spilling frontend: serializes pairs into SpillRecords and
/// hands the batch to the spiller as one sorted run whenever its
/// ByteSizeOf footprint exceeds `memory_budget_bytes` (the same size
/// convention the simulator's capacity checks use — see
/// src/common/byte_size.h). A budget of zero spills every record
/// individually: degenerate but valid, exercised by tests as the
/// worst-case spill path.
template <typename Key, typename Value>
class RunWriter {
 public:
  RunWriter(RunSpiller* spiller, std::uint64_t memory_budget_bytes,
            std::uint32_t chunk_id)
      : spiller_(spiller),
        budget_(memory_budget_bytes),
        chunk_id_(chunk_id) {}

  /// `hash` must be the key's finalized HashValue — the writer does not
  /// hash so that storage stays independent of the engine's hashing.
  common::Status Add(std::uint64_t hash, const Key& key, const Value& value) {
    SpillRecord rec;
    rec.hash = hash;
    rec.pos = MakeSpillPos(chunk_id_, next_local_++);
    SerializeValue(key, rec.bytes);
    rec.key_size = static_cast<std::uint32_t>(rec.bytes.size());
    SerializeValue(value, rec.bytes);
    buffered_bytes_ +=
        common::ByteSizeOf(key) + common::ByteSizeOf(value);
    batch_.push_back(std::move(rec));
    if (buffered_bytes_ > budget_) {
      buffered_bytes_ = 0;
      return spiller_->SpillRun(batch_);
    }
    return common::Status::Ok();
  }

  /// Sorts and surrenders the unspilled tail as an in-memory run for the
  /// merge (tail pairs never touch disk).
  std::vector<SpillRecord> TakeTail() {
    std::sort(batch_.begin(), batch_.end(),
              [](const SpillRecord& a, const SpillRecord& b) {
                return SpillRecordLess(a, b);
              });
    buffered_bytes_ = 0;
    return std::move(batch_);
  }

 private:
  RunSpiller* spiller_;
  std::uint64_t budget_;
  std::uint32_t chunk_id_;
  std::uint64_t next_local_ = 0;
  std::uint64_t buffered_bytes_ = 0;
  std::vector<SpillRecord> batch_;
};

}  // namespace mrcost::storage

#endif  // MRCOST_STORAGE_RUN_WRITER_H_
