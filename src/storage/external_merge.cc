#include "src/storage/external_merge.h"

#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace mrcost::storage {

bool DiskRunSource::Next(SpillRecord& out) {
  if (done_ || !status_.ok()) return false;
  if (!opened_) {
    opened_ = true;
    auto reader = SpillFileReader::Open(path_);
    if (!reader.ok()) {
      status_ = reader.status();
      return false;
    }
    reader_ = std::make_unique<SpillFileReader>(std::move(reader.value()));
  }
  while (cursor_ == nullptr || cursor_ == block_.data() + block_.size()) {
    bool file_done = false;
    status_ = reader_->Next(block_, file_done);
    if (!status_.ok()) return false;
    if (file_done) {
      done_ = true;
      return false;
    }
    cursor_ = block_.data();
  }
  const char* end = block_.data() + block_.size();
  if (!DecodeRecord(cursor_, end, out)) {
    status_ = common::Status::Internal(
        "spill file: malformed record in block of " + path_);
    return false;
  }
  return true;
}

LoserTree::LoserTree(std::vector<RunSource*> sources)
    : sources_(std::move(sources)),
      current_(sources_.size()),
      valid_(sources_.size(), false) {
  const std::size_t k = sources_.size();
  for (std::size_t s = 0; s < k; ++s) {
    valid_[s] = sources_[s]->Next(current_[s]);
    if (!valid_[s] && !sources_[s]->status().ok()) {
      status_ = sources_[s]->status();
    }
  }
  if (k <= 1) {
    winner_ = 0;
    return;
  }
  // Build the tournament bottom-up in the complete-tree layout: leaves are
  // nodes k..2k-1 (leaf k+s = source s), internal nodes 1..k-1 each store
  // the loser of their subtree while the winner advances.
  std::vector<std::size_t> winners(2 * k);
  for (std::size_t s = 0; s < k; ++s) winners[k + s] = s;
  losers_.assign(k, 0);
  for (std::size_t node = k - 1; node >= 1; --node) {
    const std::size_t a = winners[2 * node];
    const std::size_t b = winners[2 * node + 1];
    const bool a_wins = Beats(a, b);
    winners[node] = a_wins ? a : b;
    losers_[node] = a_wins ? b : a;
  }
  winner_ = winners[1];
}

bool LoserTree::Beats(std::size_t a, std::size_t b) const {
  if (!valid_[a]) return false;
  if (!valid_[b]) return true;
  return SpillRecordLess(current_[a], current_[b]);
}

void LoserTree::Replay(std::size_t source) {
  const std::size_t k = sources_.size();
  std::size_t w = source;
  for (std::size_t node = (k + source) / 2; node >= 1; node /= 2) {
    if (Beats(losers_[node], w)) std::swap(w, losers_[node]);
  }
  winner_ = w;
}

bool LoserTree::Next(SpillRecord& out) {
  if (sources_.empty() || !status_.ok() || !valid_[winner_]) return false;
  out = std::move(current_[winner_]);
  valid_[winner_] = sources_[winner_]->Next(current_[winner_]);
  if (!valid_[winner_] && !sources_[winner_]->status().ok()) {
    status_ = sources_[winner_]->status();
    return false;
  }
  if (sources_.size() > 1) Replay(winner_);
  return true;
}

common::Status ReduceFanIn(std::vector<std::unique_ptr<RunSource>>& sources,
                           RunSpiller& spiller, std::size_t max_fan_in,
                           SpillStats& stats) {
  if (max_fan_in < 2) max_fan_in = 2;
  while (sources.size() > max_fan_in) {
    stats.merge_passes += 1;
    obs::TraceSpan pass_span("MergePass", "spill");
    if (pass_span.active()) {
      pass_span.AddArg(
          obs::Arg("runs_in", static_cast<std::uint64_t>(sources.size())));
      pass_span.AddArg(
          obs::Arg("fan_in", static_cast<std::uint64_t>(max_fan_in)));
    }
    if (obs::MetricsEnabled()) {
      obs::Registry::Global().AddCounter("storage.merge_passes", 1);
    }
    std::vector<std::unique_ptr<RunSource>> next;
    next.reserve((sources.size() + max_fan_in - 1) / max_fan_in);
    for (std::size_t lo = 0; lo < sources.size(); lo += max_fan_in) {
      const std::size_t hi = std::min(lo + max_fan_in, sources.size());
      if (hi - lo == 1) {
        next.push_back(std::move(sources[lo]));
        continue;
      }
      std::vector<RunSource*> batch;
      batch.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        batch.push_back(sources[i].get());
      }
      LoserTree tree(std::move(batch));
      auto writer = spiller.NewRun();
      if (!writer.ok()) return writer.status();
      SpillRecord rec;
      while (tree.Next(rec)) {
        if (auto status = writer->Append(rec); !status.ok()) return status;
      }
      if (auto status = tree.status(); !status.ok()) return status;
      if (auto status = spiller.CloseRun(*writer); !status.ok()) {
        return status;
      }
      next.push_back(std::make_unique<DiskRunSource>(writer->path()));
    }
    sources = std::move(next);
  }
  return common::Status::Ok();
}

const RecordView* DiskBlockRunSource::Peek() {
  if (done_ || !status_.ok()) return nullptr;
  if (!opened_) {
    opened_ = true;
    auto reader = SpillFileReader::Open(path_);
    if (!reader.ok()) {
      status_ = reader.status();
      return nullptr;
    }
    if (reader->version() != kSpillFormatVersionBlocks) {
      status_ = common::Status::InvalidArgument(
          "spill file: " + path_ + " is not a block-format run");
      return nullptr;
    }
    reader_ = std::make_unique<SpillFileReader>(std::move(reader.value()));
  }
  while (next_ >= run_.rows()) {
    bool file_done = false;
    status_ = reader_->Next(payload_, file_done);
    if (!status_.ok()) return nullptr;
    if (file_done) {
      done_ = true;
      return nullptr;
    }
    status_ = DecodeBlock(payload_, run_);
    if (!status_.ok()) return nullptr;
    next_ = 0;
  }
  view_ = run_.View(next_);
  return &view_;
}

BlockLoserTree::BlockLoserTree(std::vector<BlockRunSource*> sources)
    : sources_(std::move(sources)) {
  const std::size_t k = sources_.size();
  for (std::size_t s = 0; s < k; ++s) {
    if (sources_[s]->Peek() == nullptr && !sources_[s]->status().ok()) {
      status_ = sources_[s]->status();
    }
  }
  if (k <= 1) {
    winner_ = 0;
    return;
  }
  std::vector<std::size_t> winners(2 * k);
  for (std::size_t s = 0; s < k; ++s) winners[k + s] = s;
  losers_.assign(k, 0);
  for (std::size_t node = k - 1; node >= 1; --node) {
    const std::size_t a = winners[2 * node];
    const std::size_t b = winners[2 * node + 1];
    const bool a_wins = Beats(a, b);
    winners[node] = a_wins ? a : b;
    losers_[node] = a_wins ? b : a;
  }
  winner_ = winners[1];
}

bool BlockLoserTree::Beats(std::size_t a, std::size_t b) {
  const RecordView* va = sources_[a]->Peek();
  const RecordView* vb = sources_[b]->Peek();
  if (va == nullptr) return false;
  if (vb == nullptr) return true;
  return RecordViewLess(*va, *vb);
}

void BlockLoserTree::Replay(std::size_t source) {
  const std::size_t k = sources_.size();
  std::size_t w = source;
  for (std::size_t node = (k + source) / 2; node >= 1; node /= 2) {
    if (Beats(losers_[node], w)) std::swap(w, losers_[node]);
  }
  winner_ = w;
}

const RecordView* BlockLoserTree::Peek() {
  if (sources_.empty() || !status_.ok()) return nullptr;
  const RecordView* v = sources_[winner_]->Peek();
  if (v == nullptr && !sources_[winner_]->status().ok()) {
    status_ = sources_[winner_]->status();
  }
  return status_.ok() ? v : nullptr;
}

void BlockLoserTree::Pop() {
  if (sources_.empty() || !status_.ok()) return;
  sources_[winner_]->Advance();
  if (sources_[winner_]->Peek() == nullptr &&
      !sources_[winner_]->status().ok()) {
    status_ = sources_[winner_]->status();
    return;
  }
  if (sources_.size() > 1) Replay(winner_);
}

common::Status ReduceBlockFanIn(
    std::vector<std::unique_ptr<BlockRunSource>>& sources,
    RunSpiller& spiller, std::size_t max_fan_in, SpillStats& stats) {
  if (max_fan_in < 2) max_fan_in = 2;
  while (sources.size() > max_fan_in) {
    stats.merge_passes += 1;
    obs::TraceSpan pass_span("MergePass", "spill");
    if (pass_span.active()) {
      pass_span.AddArg(
          obs::Arg("runs_in", static_cast<std::uint64_t>(sources.size())));
      pass_span.AddArg(
          obs::Arg("fan_in", static_cast<std::uint64_t>(max_fan_in)));
    }
    if (obs::MetricsEnabled()) {
      obs::Registry::Global().AddCounter("storage.merge_passes", 1);
    }
    std::vector<std::unique_ptr<BlockRunSource>> next;
    next.reserve((sources.size() + max_fan_in - 1) / max_fan_in);
    for (std::size_t lo = 0; lo < sources.size(); lo += max_fan_in) {
      const std::size_t hi = std::min(lo + max_fan_in, sources.size());
      if (hi - lo == 1) {
        next.push_back(std::move(sources[lo]));
        continue;
      }
      std::vector<BlockRunSource*> batch;
      batch.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        batch.push_back(sources[i].get());
      }
      BlockLoserTree tree(std::move(batch));
      auto writer = spiller.NewBlockRun();
      if (!writer.ok()) return writer.status();
      while (const RecordView* rec = tree.Peek()) {
        if (auto status = writer->Append(*rec); !status.ok()) return status;
        tree.Pop();
      }
      if (auto status = tree.status(); !status.ok()) return status;
      if (auto status = spiller.CloseBlockRun(*writer); !status.ok()) {
        return status;
      }
      next.push_back(std::make_unique<DiskBlockRunSource>(writer->path()));
    }
    sources = std::move(next);
  }
  return common::Status::Ok();
}

}  // namespace mrcost::storage
