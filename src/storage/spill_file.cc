#include "src/storage/spill_file.h"

#include <array>
#include <cstring>

namespace mrcost::storage {
namespace {

// Standard IEEE 802.3 CRC-32 (reflected polynomial), computed
// slicing-by-8: eight derived tables let the hot loop fold eight input
// bytes per iteration instead of one. Same polynomial, same values as
// the classic bytewise loop — only the throughput changes (~8x), which
// matters because every RPC frame and spill-file block is CRC'd on both
// the write and the read side.
std::array<std::array<std::uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (int t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

/// Reads exactly `n` bytes; false on short read (stream eof/fail set).
bool ReadExact(std::ifstream& in, char* data, std::size_t n) {
  in.read(data, static_cast<std::streamsize>(n));
  return in.gcount() == static_cast<std::streamsize>(n);
}

}  // namespace

namespace {

/// The pre/post-inversion-free core: feeds `n` bytes into a running CRC
/// state. Crc32 and Crc32Resume wrap it with the standard inversions.
std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                          std::size_t n) {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      MakeCrcTables();
  const auto& t = tables;
  // The 8-byte fold below reads words in memory order, which matches the
  // reflected CRC bit order only on little-endian hosts.
  static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__);
  const auto* p = static_cast<const unsigned char*>(data);
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
          t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^ t[3][hi & 0xFF] ^
          t[2][(hi >> 8) & 0xFF] ^ t[1][(hi >> 16) & 0xFF] ^
          t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n) {
  return Crc32Update(0xFFFFFFFFu, data, n) ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32Resume(std::uint32_t crc, const void* data,
                          std::size_t n) {
  return Crc32Update(crc ^ 0xFFFFFFFFu, data, n) ^ 0xFFFFFFFFu;
}

common::Result<SpillFileWriter> SpillFileWriter::Create(
    const std::string& path, std::uint32_t version) {
  SpillFileWriter writer;
  writer.path_ = path;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_) {
    return common::Status::NotFound("spill file: cannot create " + path);
  }
  const std::uint32_t header[2] = {kSpillMagic, version};
  writer.out_.write(reinterpret_cast<const char*>(header), sizeof(header));
  writer.bytes_written_ = sizeof(header);
  if (!writer.out_) {
    return common::Status::Internal("spill file: header write failed for " +
                                    path);
  }
  return writer;
}

common::Status SpillFileWriter::AppendBlock(const std::string& payload) {
  const std::uint32_t frame[2] = {static_cast<std::uint32_t>(payload.size()),
                                  Crc32(payload.data(), payload.size())};
  out_.write(reinterpret_cast<const char*>(frame), sizeof(frame));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out_) {
    return common::Status::Internal("spill file: block write failed for " +
                                    path_);
  }
  bytes_written_ += sizeof(frame) + payload.size();
  return common::Status::Ok();
}

common::Status SpillFileWriter::Close() {
  if (!out_.is_open()) return common::Status::Ok();
  out_.flush();
  out_.close();
  if (out_.fail()) {
    return common::Status::Internal("spill file: close failed for " + path_);
  }
  return common::Status::Ok();
}

common::Result<SpillFileReader> SpillFileReader::Open(
    const std::string& path) {
  SpillFileReader reader;
  reader.path_ = path;
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_) {
    return common::Status::NotFound("spill file: cannot open " + path);
  }
  std::uint32_t header[2] = {0, 0};
  if (!ReadExact(reader.in_, reinterpret_cast<char*>(header),
                 sizeof(header))) {
    return common::Status::OutOfRange("spill file: truncated header in " +
                                      path);
  }
  if (header[0] != kSpillMagic) {
    return common::Status::InvalidArgument("spill file: bad magic in " +
                                           path);
  }
  if (header[1] != kSpillFormatVersion &&
      header[1] != kSpillFormatVersionBlocks) {
    return common::Status::InvalidArgument(
        "spill file: unsupported version " + std::to_string(header[1]) +
        " in " + path);
  }
  reader.version_ = header[1];
  return reader;
}

common::Status SpillFileReader::Next(std::string& payload, bool& done) {
  done = false;
  std::uint32_t frame[2] = {0, 0};
  in_.read(reinterpret_cast<char*>(frame), sizeof(frame));
  if (in_.gcount() == 0 && in_.eof()) {
    done = true;
    return common::Status::Ok();
  }
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(frame))) {
    return common::Status::OutOfRange(
        "spill file: truncated block header in " + path_);
  }
  if (frame[0] > kMaxBlockBytes) {
    return common::Status::Internal("spill file: implausible block length " +
                                    std::to_string(frame[0]) + " in " +
                                    path_);
  }
  payload.resize(frame[0]);
  if (!ReadExact(in_, payload.data(), payload.size())) {
    return common::Status::OutOfRange("spill file: truncated block in " +
                                      path_);
  }
  if (Crc32(payload.data(), payload.size()) != frame[1]) {
    return common::Status::Internal("spill file: CRC mismatch in " + path_);
  }
  return common::Status::Ok();
}

}  // namespace mrcost::storage
