#include "src/storage/spill_file.h"

#include <array>

namespace mrcost::storage {
namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  // Standard IEEE 802.3 CRC-32, reflected polynomial.
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Reads exactly `n` bytes; false on short read (stream eof/fail set).
bool ReadExact(std::ifstream& in, char* data, std::size_t n) {
  in.read(data, static_cast<std::streamsize>(n));
  return in.gcount() == static_cast<std::streamsize>(n);
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

common::Result<SpillFileWriter> SpillFileWriter::Create(
    const std::string& path, std::uint32_t version) {
  SpillFileWriter writer;
  writer.path_ = path;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_) {
    return common::Status::NotFound("spill file: cannot create " + path);
  }
  const std::uint32_t header[2] = {kSpillMagic, version};
  writer.out_.write(reinterpret_cast<const char*>(header), sizeof(header));
  writer.bytes_written_ = sizeof(header);
  if (!writer.out_) {
    return common::Status::Internal("spill file: header write failed for " +
                                    path);
  }
  return writer;
}

common::Status SpillFileWriter::AppendBlock(const std::string& payload) {
  const std::uint32_t frame[2] = {static_cast<std::uint32_t>(payload.size()),
                                  Crc32(payload.data(), payload.size())};
  out_.write(reinterpret_cast<const char*>(frame), sizeof(frame));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out_) {
    return common::Status::Internal("spill file: block write failed for " +
                                    path_);
  }
  bytes_written_ += sizeof(frame) + payload.size();
  return common::Status::Ok();
}

common::Status SpillFileWriter::Close() {
  if (!out_.is_open()) return common::Status::Ok();
  out_.flush();
  out_.close();
  if (out_.fail()) {
    return common::Status::Internal("spill file: close failed for " + path_);
  }
  return common::Status::Ok();
}

common::Result<SpillFileReader> SpillFileReader::Open(
    const std::string& path) {
  SpillFileReader reader;
  reader.path_ = path;
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_) {
    return common::Status::NotFound("spill file: cannot open " + path);
  }
  std::uint32_t header[2] = {0, 0};
  if (!ReadExact(reader.in_, reinterpret_cast<char*>(header),
                 sizeof(header))) {
    return common::Status::OutOfRange("spill file: truncated header in " +
                                      path);
  }
  if (header[0] != kSpillMagic) {
    return common::Status::InvalidArgument("spill file: bad magic in " +
                                           path);
  }
  if (header[1] != kSpillFormatVersion &&
      header[1] != kSpillFormatVersionBlocks) {
    return common::Status::InvalidArgument(
        "spill file: unsupported version " + std::to_string(header[1]) +
        " in " + path);
  }
  reader.version_ = header[1];
  return reader;
}

common::Status SpillFileReader::Next(std::string& payload, bool& done) {
  done = false;
  std::uint32_t frame[2] = {0, 0};
  in_.read(reinterpret_cast<char*>(frame), sizeof(frame));
  if (in_.gcount() == 0 && in_.eof()) {
    done = true;
    return common::Status::Ok();
  }
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(frame))) {
    return common::Status::OutOfRange(
        "spill file: truncated block header in " + path_);
  }
  if (frame[0] > kMaxBlockBytes) {
    return common::Status::Internal("spill file: implausible block length " +
                                    std::to_string(frame[0]) + " in " +
                                    path_);
  }
  payload.resize(frame[0]);
  if (!ReadExact(in_, payload.data(), payload.size())) {
    return common::Status::OutOfRange("spill file: truncated block in " +
                                      path_);
  }
  if (Crc32(payload.data(), payload.size()) != frame[1]) {
    return common::Status::Internal("spill file: CRC mismatch in " + path_);
  }
  return common::Status::Ok();
}

}  // namespace mrcost::storage
