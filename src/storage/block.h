#ifndef MRCOST_STORAGE_BLOCK_H_
#define MRCOST_STORAGE_BLOCK_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/byte_size.h"
#include "src/common/status.h"
#include "src/storage/serde.h"

namespace mrcost::storage {

// Columnar block layer (see README "Zero-copy columnar shuffle"): instead
// of moving every <Key, Value> pair through its own heap-allocated
// objects, the engine packs a map task's emissions into one arena-backed
// block — serialized key bytes in a shared slab addressed by an offset
// array, values in a typed column, finalized key hashes in a third column.
// Downstream stages route *row indices* into the block rather than copying
// pairs, spill paths encode whole blocks (varint lengths, optional
// run-length key dictionary, optional per-block compression behind the
// Codec interface) into the existing CRC32 spill frames, and the k-way
// merge walks block cursors instead of materialized records.

// ----------------------------------------------------------------------
// Varint encoding: LEB128, the block format's length encoding.

inline void PutVarint(std::uint64_t v, std::string& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline bool GetVarint(const char*& p, const char* end, std::uint64_t& out) {
  out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p == end) return false;
    const auto byte = static_cast<unsigned char>(*p++);
    out |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // > 10 continuation bytes: malformed
}

/// Signed deltas (the position column is sorted by key, not position) map
/// onto unsigned varints via zigzag.
inline std::uint64_t ZigZagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t ZigZagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// ----------------------------------------------------------------------
// Key hashing over serialized bytes.

/// FNV-1a over the serialized key bytes with a final avalanche mix — the
/// one hash both the emitter (at append time) and the block decoder (when
/// a spilled block is re-read) compute, so routing and merge order agree
/// without storing the hash column on disk. Serialization is injective,
/// so equal hashes + equal bytes means equal keys.
inline std::uint64_t HashBytes(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

// ----------------------------------------------------------------------
// Codec interface: optional per-block compression.

/// A block compression codec. Compress never fails (worst case the caller
/// keeps the raw body — EncodeBlock stores whichever is smaller, tagged
/// with the codec id). Decompress validates against the recorded raw size
/// and returns a Status on corrupt input.
class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::uint8_t id() const = 0;
  virtual const char* name() const = 0;
  virtual void Compress(std::string_view in, std::string& out) const = 0;
  virtual common::Status Decompress(std::string_view in,
                                    std::size_t raw_size,
                                    std::string& out) const = 0;
};

/// Codec 0: stores the body verbatim (also the fallback when a codec
/// fails to shrink a block).
const Codec& IdentityCodec();

/// Codec 1 ("mrlz"): a byte-oriented LZ77 with a greedy hash-chain
/// matcher and LZ4-style token framing — no external dependency, built
/// for the redundancy spill blocks actually have (repeated key bytes,
/// small-integer varints).
const Codec& Lz77Codec();

/// The codec spill writers use unless told otherwise.
const Codec& DefaultSpillCodec();

/// Codec registry for decode: nullptr for unknown ids (corrupt block).
const Codec* CodecById(std::uint8_t id);

// ----------------------------------------------------------------------
// ByteSlab: the arena.

/// An append-only arena of variable-length byte strings: one contiguous
/// byte buffer plus an offset column (leading 0 sentinel). At(i) is a view
/// into the arena — stable until Clear, because the buffer only grows.
class ByteSlab {
 public:
  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  std::string_view At(std::size_t i) const {
    return std::string_view(bytes_.data() + offsets_[i],
                            offsets_[i + 1] - offsets_[i]);
  }

  void Append(std::string_view bytes) {
    bytes_.append(bytes.data(), bytes.size());
    offsets_.push_back(bytes_.size());
  }

  /// Serializes `value` (src/storage/serde.h) straight into the arena —
  /// no per-entry temporary string.
  template <typename T>
  void AppendSerialized(const T& value) {
    SerializeValue(value, bytes_);
    offsets_.push_back(bytes_.size());
  }

  const std::string& bytes() const { return bytes_; }
  /// The offset column (leading 0 sentinel, size() + 1 entries) — the
  /// wire shuffle's raw-frame encoder ships it verbatim.
  const std::vector<std::uint64_t>& offsets() const { return offsets_; }

  /// Replaces the slab wholesale with an already-concatenated payload and
  /// its offset column (leading 0 sentinel required) — the raw-frame
  /// decoder's bulk load, skipping size() individual Appends.
  void AssignConcat(std::string bytes, std::vector<std::uint64_t> offsets) {
    bytes_ = std::move(bytes);
    offsets_ = std::move(offsets);
  }

  void Clear() {
    bytes_.clear();
    offsets_.resize(1);
  }

  /// In-memory footprint: arena payload plus the offset column (the
  /// object itself is charged by the containing block's ByteSize).
  std::size_t PayloadBytes() const {
    return bytes_.size() + offsets_.size() * sizeof(std::uint64_t);
  }

 private:
  std::string bytes_;
  std::vector<std::uint64_t> offsets_ = {0};
};

// ----------------------------------------------------------------------
// ColumnarRun: one sorted spill run in columnar form.

/// A borrowed view of one record of a run: the key/value views point into
/// the owning run's slabs and stay valid until the run (or the disk
/// cursor's current segment) is released.
struct RecordView {
  std::uint64_t hash = 0;
  std::uint64_t pos = 0;
  std::string_view key;
  std::string_view value;
};

/// The spill order every run is sorted in and the k-way merge pops in:
/// (hash, key bytes, position) — the same total order the record-based
/// spill path used (SpillRecordLess), so determinism arguments carry over.
inline bool RecordViewLess(const RecordView& a, const RecordView& b) {
  if (a.hash != b.hash) return a.hash < b.hash;
  const int c = a.key.compare(b.key);
  if (c != 0) return c < 0;
  return a.pos < b.pos;
}

/// One sorted run of records in columnar form: hash and position columns
/// plus key/value byte slabs. Rows are sorted by (hash, key bytes, pos).
struct ColumnarRun {
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint64_t> positions;
  ByteSlab keys;
  ByteSlab values;

  std::size_t rows() const { return hashes.size(); }
  bool empty() const { return hashes.empty(); }

  RecordView View(std::size_t i) const {
    return RecordView{hashes[i], positions[i], keys.At(i), values.At(i)};
  }

  void Append(const RecordView& rec) {
    hashes.push_back(rec.hash);
    positions.push_back(rec.pos);
    keys.Append(rec.key);
    values.Append(rec.value);
  }

  void Clear() {
    hashes.clear();
    positions.clear();
    keys.Clear();
    values.Clear();
  }

  /// Approximate raw encoded size, the writers' frame-flush threshold.
  std::size_t RawBytes() const {
    return keys.bytes().size() + values.bytes().size() +
           rows() * 2 * sizeof(std::uint64_t);
  }

  std::size_t ByteSize() const {
    return sizeof(ColumnarRun) + keys.PayloadBytes() +
           values.PayloadBytes() +
           (hashes.size() + positions.size()) * sizeof(std::uint64_t);
  }
};

// ----------------------------------------------------------------------
// Block encode / decode.

/// Aggregate counters for encoded blocks: raw (pre-codec) vs encoded
/// (framed payload) bytes and how many blocks chose the key dictionary.
/// raw/encoded is the compression_ratio JobMetrics reports.
struct BlockEncodeStats {
  std::uint64_t raw_bytes = 0;
  std::uint64_t encoded_bytes = 0;
  std::uint64_t blocks = 0;
  std::uint64_t dict_blocks = 0;

  void Add(const BlockEncodeStats& other) {
    raw_bytes += other.raw_bytes;
    encoded_bytes += other.encoded_bytes;
    blocks += other.blocks;
    dict_blocks += other.dict_blocks;
  }

  double CompressionRatio() const {
    return encoded_bytes > 0 ? static_cast<double>(raw_bytes) /
                                   static_cast<double>(encoded_bytes)
                             : 0.0;
  }
};

/// Encodes rows [lo, hi) of a sorted run as one spill-frame payload:
///
///   u8 codec id | varint raw body size | body (codec-compressed)
///
/// body: varint rows | u8 flags | key section | position section | value
/// section. Keys are varint-length-prefixed; when the rows' sorted order
/// makes equal keys adjacent and at least halves the entry count, the key
/// section switches to a run-length dictionary (flags bit 0): varint runs,
/// then per run (varint key length, key bytes, varint row count).
/// Positions are zigzag varint deltas. The hash column is not stored — the
/// decoder recomputes HashBytes over the key bytes.
void EncodeBlock(const ColumnarRun& run, std::size_t lo, std::size_t hi,
                 const Codec& codec, std::string& payload,
                 BlockEncodeStats& stats);

/// Decodes one spill-frame payload back into `run` (cleared first),
/// recomputing the hash column. Any malformed byte surfaces as a Status.
common::Status DecodeBlock(std::string_view payload, ColumnarRun& run);

// ----------------------------------------------------------------------
// KeyIndex: grouping over (hash, key bytes).

/// Open-addressing hash index from (hash, key bytes) to a dense group id —
/// the grouping engine behind the block shuffle. Replaces the per-shard
/// std::unordered_map<Key, ...>: no per-node allocation, no re-hashing of
/// typed keys (hashes arrive precomputed from the block's hash column),
/// and key equality is one byte comparison against a slab view. The views
/// handed to FindOrInsert must stay valid for the index's lifetime (block
/// slabs are stable until cleared).
class KeyIndex {
 public:
  void Reserve(std::size_t expected) {
    std::size_t cap = 16;
    while (cap * 7 < expected * 10) cap <<= 1;
    Rehash(cap);
  }

  /// Group id for (hash, key); allocates the next dense id when unseen.
  std::size_t FindOrInsert(std::uint64_t hash, std::string_view key,
                           bool& inserted) {
    if ((groups_.size() + 1) * 10 >= slots_.size() * 7) {
      Rehash(std::max<std::size_t>(16, slots_.size() * 2));
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash & mask;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.group == kEmpty) {
        slot.hash = hash;
        slot.group = static_cast<std::uint32_t>(groups_.size());
        groups_.emplace_back(hash, key);
        inserted = true;
        return slot.group;
      }
      if (slot.hash == hash && groups_[slot.group].second == key) {
        inserted = false;
        return slot.group;
      }
      i = (i + 1) & mask;
    }
  }

  std::size_t size() const { return groups_.size(); }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t group = kEmpty;
  };
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  void Rehash(std::size_t cap) {
    if (cap <= slots_.size()) return;
    std::vector<Slot> fresh(cap);
    const std::size_t mask = cap - 1;
    for (std::uint32_t g = 0; g < groups_.size(); ++g) {
      std::size_t i = groups_[g].first & mask;
      while (fresh[i].group != kEmpty) i = (i + 1) & mask;
      fresh[i] = Slot{groups_[g].first, g};
    }
    slots_ = std::move(fresh);
  }

  std::vector<Slot> slots_;
  std::vector<std::pair<std::uint64_t, std::string_view>> groups_;
};

// ----------------------------------------------------------------------
// KVBlock: the emitter-facing block.

/// One map task's emissions in columnar form: serialized key bytes in a
/// slab, finalized hashes (HashBytes, computed once at append), and the
/// values still typed — values only serialize when a block spills, so the
/// in-memory path moves each value exactly once (emitter column to reduce
/// group). Rows are in emission order; row index == the pair's local
/// emission position, which is what the executor's scan-order tags build
/// on.
template <typename Key, typename Value>
class KVBlock {
 public:
  std::size_t rows() const { return hashes_.size(); }
  bool empty() const { return hashes_.empty(); }

  void Append(const Key& key, Value&& value) {
    const std::size_t r = rows();
    keys_.AppendSerialized(key);
    hashes_.push_back(HashBytes(keys_.At(r)));
    values_.push_back(std::move(value));
  }

  /// Appends an already-serialized key (map-side combine reuses the input
  /// block's bytes and hash instead of re-serializing).
  void AppendRaw(std::string_view key_bytes, std::uint64_t hash,
                 Value&& value) {
    keys_.Append(key_bytes);
    hashes_.push_back(hash);
    values_.push_back(std::move(value));
  }

  std::string_view key_bytes(std::size_t i) const { return keys_.At(i); }
  std::uint64_t hash(std::size_t i) const { return hashes_[i]; }
  Value& value(std::size_t i) { return values_[i]; }
  const Value& value(std::size_t i) const { return values_[i]; }

  /// Deserializes row i's key — paid once per distinct key at group time,
  /// not once per pair.
  Key KeyAt(std::size_t i) const {
    Key key{};
    const std::string_view bytes = keys_.At(i);
    const char* p = bytes.data();
    MRCOST_CHECK(DeserializeValue(p, bytes.data() + bytes.size(), key));
    return key;
  }

  void Clear() {
    keys_.Clear();
    hashes_.clear();
    values_.clear();
  }

  /// Bytes physically copied into this block so far: the key slab plus
  /// one moved Value object per row — the JobMetrics::bytes_copied
  /// currency.
  std::uint64_t CopiedBytes() const {
    return keys_.bytes().size() + values_.size() * sizeof(Value);
  }

  /// In-memory footprint under the src/common/byte_size.h convention:
  /// the block object plus every owned payload (key arena, offset and
  /// hash columns, and each value's own footprint).
  std::size_t ByteSize() const {
    std::size_t total = sizeof(KVBlock) + keys_.PayloadBytes() +
                        hashes_.size() * sizeof(std::uint64_t);
    for (const Value& v : values_) total += common::ByteSizeOf(v);
    return total;
  }

  const ByteSlab& keys() const { return keys_; }

 private:
  ByteSlab keys_;
  std::vector<std::uint64_t> hashes_;
  std::vector<Value> values_;
};

/// Sorts rows [lo, hi) of `block` into spill order and serializes them as
/// a ColumnarRun. Row r's emission position is MakeSpillPos-style
/// `local_base + (r - lo)` packed by the caller via `make_pos`; the rows
/// of [lo, hi) must be in emission order (they are — row index is local
/// emission position). Values serialize here, at spill time only.
template <typename Key, typename Value, typename MakePos>
ColumnarRun SortedRunFromBlock(const KVBlock<Key, Value>& block,
                               std::size_t lo, std::size_t hi,
                               MakePos make_pos) {
  const std::size_t n = hi - lo;
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const std::size_t ra = lo + a, rb = lo + b;
              if (block.hash(ra) != block.hash(rb)) {
                return block.hash(ra) < block.hash(rb);
              }
              const int c = block.key_bytes(ra).compare(block.key_bytes(rb));
              if (c != 0) return c < 0;
              return a < b;  // row order == emission order == pos order
            });
  ColumnarRun run;
  run.hashes.reserve(n);
  run.positions.reserve(n);
  for (const std::uint32_t j : order) {
    const std::size_t r = lo + j;
    run.hashes.push_back(block.hash(r));
    run.positions.push_back(make_pos(j));
    run.keys.Append(block.key_bytes(r));
    run.values.AppendSerialized(block.value(r));
  }
  return run;
}

}  // namespace mrcost::storage

namespace mrcost::common {

/// ByteSizeOf overloads for the block types, so blocks and runs plug into
/// the same footprint accounting (budgets, metrics) as every other value.
inline std::size_t ByteSizeOf(const storage::ColumnarRun& run) {
  return run.ByteSize();
}

template <typename Key, typename Value>
std::size_t ByteSizeOf(const storage::KVBlock<Key, Value>& block) {
  return block.ByteSize();
}

}  // namespace mrcost::common

#endif  // MRCOST_STORAGE_BLOCK_H_
