#ifndef MRCOST_STORAGE_EXTERNAL_MERGE_H_
#define MRCOST_STORAGE_EXTERNAL_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/storage/block.h"
#include "src/storage/run_writer.h"
#include "src/storage/serde.h"
#include "src/storage/spill_file.h"

namespace mrcost::storage {

/// Runs merged per k-way pass when the caller does not say otherwise.
inline constexpr std::size_t kDefaultMergeFanIn = 64;

/// A sorted stream of spill records (one run). Next returns false when the
/// stream is drained or errored — check status() to tell the two apart.
class RunSource {
 public:
  virtual ~RunSource() = default;
  virtual bool Next(SpillRecord& out) = 0;
  virtual common::Status status() const = 0;
};

/// An unspilled in-memory tail, already sorted by SpillRecordLess.
class MemoryRunSource : public RunSource {
 public:
  explicit MemoryRunSource(std::vector<SpillRecord> records)
      : records_(std::move(records)) {}

  bool Next(SpillRecord& out) override {
    if (next_ >= records_.size()) return false;
    out = std::move(records_[next_++]);
    return true;
  }
  common::Status status() const override { return common::Status::Ok(); }

 private:
  std::vector<SpillRecord> records_;
  std::size_t next_ = 0;
};

/// A spill-run file, streamed block by block (so a k-way merge holds k
/// blocks in memory, not k runs).
class DiskRunSource : public RunSource {
 public:
  explicit DiskRunSource(std::string path) : path_(std::move(path)) {}

  bool Next(SpillRecord& out) override;
  common::Status status() const override { return status_; }

 private:
  std::string path_;
  std::unique_ptr<SpillFileReader> reader_;  // opened on first Next
  bool opened_ = false;
  bool done_ = false;
  common::Status status_;
  std::string block_;
  const char* cursor_ = nullptr;
};

/// Loser-tree k-way merge: pops the least record (by SpillRecordLess)
/// across all sources with one leaf-to-root replay per pop — log2(k)
/// comparisons instead of the k-1 a naive scan costs. Positions are
/// globally unique, so the order is total and the merge deterministic.
class LoserTree {
 public:
  explicit LoserTree(std::vector<RunSource*> sources);

  /// False when every source is drained or one errored (see status()).
  bool Next(SpillRecord& out);
  common::Status status() const { return status_; }

 private:
  /// True iff source `a`'s current record beats (precedes) source `b`'s;
  /// exhausted sources lose to everything.
  bool Beats(std::size_t a, std::size_t b) const;
  void Replay(std::size_t source);

  std::vector<RunSource*> sources_;
  std::vector<SpillRecord> current_;
  std::vector<bool> valid_;
  std::vector<std::size_t> losers_;  // internal nodes 1..k-1
  std::size_t winner_ = 0;
  common::Status status_;
};

/// Merges `sources` down to at most `max_fan_in` by rewriting batches of
/// runs into single merged runs through `spiller`. Each sweep over the
/// sources counts one merge pass in `stats`.
common::Status ReduceFanIn(std::vector<std::unique_ptr<RunSource>>& sources,
                           RunSpiller& spiller, std::size_t max_fan_in,
                           SpillStats& stats);

/// Merge output: groups in (hash, key bytes) order — "key order" for the
/// external shuffle — with each group's values in emission order and
/// first_pos[i] the global position where keys[i] first appeared. The
/// engine reorders groups by first_pos to restore its first-seen contract.
template <typename Key, typename Value>
struct MergedGroups {
  std::vector<Key> keys;
  std::vector<std::vector<Value>> groups;
  std::vector<std::uint64_t> first_pos;
};

/// The final merge pass: reduces fan-in if needed, then streams the merged
/// record order once, cutting it into groups at key-byte boundaries and
/// deserializing each key once and each value once.
template <typename Key, typename Value>
common::Result<MergedGroups<Key, Value>> MergeRunsToGroups(
    std::vector<std::unique_ptr<RunSource>> sources, RunSpiller& spiller,
    std::size_t max_fan_in, SpillStats& stats) {
  if (max_fan_in == 0) max_fan_in = kDefaultMergeFanIn;
  if (auto status = ReduceFanIn(sources, spiller, max_fan_in, stats);
      !status.ok()) {
    return status;
  }
  stats.merge_passes += 1;

  std::vector<RunSource*> raw;
  raw.reserve(sources.size());
  for (const auto& source : sources) raw.push_back(source.get());
  LoserTree tree(std::move(raw));

  MergedGroups<Key, Value> out;
  SpillRecord rec;
  std::uint64_t prev_hash = 0;
  std::string prev_key;
  bool has_prev = false;
  while (tree.Next(rec)) {
    const bool new_group =
        !has_prev || rec.hash != prev_hash || rec.key_bytes() != prev_key;
    if (new_group) {
      prev_hash = rec.hash;
      prev_key.assign(rec.key_bytes());
      has_prev = true;
      Key key;
      const char* p = rec.bytes.data();
      if (!DeserializeValue(p, p + rec.key_size, key)) {
        return common::Status::Internal(
            "external merge: corrupt key bytes in spill record");
      }
      out.keys.push_back(std::move(key));
      out.groups.emplace_back();
      out.first_pos.push_back(rec.pos);
    }
    Value value;
    const char* p = rec.bytes.data() + rec.key_size;
    if (!DeserializeValue(p, rec.bytes.data() + rec.bytes.size(), value)) {
      return common::Status::Internal(
          "external merge: corrupt value bytes in spill record");
    }
    out.groups.back().push_back(std::move(value));
  }
  if (auto status = tree.status(); !status.ok()) return status;
  return out;
}

// ----------------------------------------------------------------------
// Block-cursor merge (spill format v2).
//
// The record path above materializes a SpillRecord (an owning std::string)
// per pop. The block path merges *cursors*: each source exposes a borrowed
// RecordView into its current decoded block, the loser tree compares
// views, and consumers copy only what they keep (group values) or
// re-append raw bytes (merge rewrites). No per-record allocation anywhere
// in the merge.

/// A sorted stream of records in columnar form. Peek returns the current
/// record or nullptr when drained/errored (check status()); the view stays
/// valid until the next Advance on this source.
class BlockRunSource {
 public:
  virtual ~BlockRunSource() = default;
  virtual const RecordView* Peek() = 0;
  virtual void Advance() = 0;
  virtual common::Status status() const = 0;
};

/// An unspilled in-memory tail, already sorted by RecordViewLess.
class MemoryBlockRunSource : public BlockRunSource {
 public:
  explicit MemoryBlockRunSource(ColumnarRun run) : run_(std::move(run)) {}

  const RecordView* Peek() override {
    if (next_ >= run_.rows()) return nullptr;
    view_ = run_.View(next_);
    return &view_;
  }
  void Advance() override { ++next_; }
  common::Status status() const override { return common::Status::Ok(); }

 private:
  ColumnarRun run_;
  std::size_t next_ = 0;
  RecordView view_;
};

/// A version-2 spill file, streamed and decoded one block at a time (a
/// k-way merge holds k decoded blocks, not k runs).
class DiskBlockRunSource : public BlockRunSource {
 public:
  explicit DiskBlockRunSource(std::string path) : path_(std::move(path)) {}

  const RecordView* Peek() override;
  void Advance() override { ++next_; }
  common::Status status() const override { return status_; }

 private:
  std::string path_;
  std::unique_ptr<SpillFileReader> reader_;  // opened on first Peek
  bool opened_ = false;
  bool done_ = false;
  common::Status status_;
  std::string payload_;
  ColumnarRun run_;
  std::size_t next_ = 0;
  RecordView view_;
};

/// Loser-tree merge over block cursors, same tournament as LoserTree but
/// popping borrowed views: consume *Peek() before calling Pop — Pop
/// advances the winning source, which may decode a new block over the
/// view's storage.
class BlockLoserTree {
 public:
  explicit BlockLoserTree(std::vector<BlockRunSource*> sources);

  /// The least unconsumed record across all sources; nullptr when drained
  /// or errored (see status()).
  const RecordView* Peek();
  void Pop();
  common::Status status() const { return status_; }

 private:
  bool Beats(std::size_t a, std::size_t b);
  void Replay(std::size_t source);

  std::vector<BlockRunSource*> sources_;
  std::vector<std::size_t> losers_;
  std::size_t winner_ = 0;
  common::Status status_;
};

/// Block-format ReduceFanIn: rewrites batches of runs through
/// `spiller.NewBlockRun`, re-appending raw key/value bytes — records are
/// never deserialized during fan-in reduction.
common::Status ReduceBlockFanIn(
    std::vector<std::unique_ptr<BlockRunSource>>& sources,
    RunSpiller& spiller, std::size_t max_fan_in, SpillStats& stats);

/// Block-format MergeRunsToGroups: the final pass streams the merged view
/// order, cuts groups at (hash, key bytes) boundaries, deserializes each
/// key once per group and each value once.
template <typename Key, typename Value>
common::Result<MergedGroups<Key, Value>> MergeBlockRunsToGroups(
    std::vector<std::unique_ptr<BlockRunSource>> sources,
    RunSpiller& spiller, std::size_t max_fan_in, SpillStats& stats) {
  if (max_fan_in == 0) max_fan_in = kDefaultMergeFanIn;
  if (auto status = ReduceBlockFanIn(sources, spiller, max_fan_in, stats);
      !status.ok()) {
    return status;
  }
  stats.merge_passes += 1;

  std::vector<BlockRunSource*> raw;
  raw.reserve(sources.size());
  for (const auto& source : sources) raw.push_back(source.get());
  BlockLoserTree tree(std::move(raw));

  MergedGroups<Key, Value> out;
  std::uint64_t prev_hash = 0;
  std::string prev_key;
  bool has_prev = false;
  while (const RecordView* rec = tree.Peek()) {
    const bool new_group =
        !has_prev || rec->hash != prev_hash || rec->key != prev_key;
    if (new_group) {
      prev_hash = rec->hash;
      prev_key.assign(rec->key);
      has_prev = true;
      Key key;
      const char* p = rec->key.data();
      if (!DeserializeValue(p, p + rec->key.size(), key)) {
        return common::Status::Internal(
            "external merge: corrupt key bytes in spill block");
      }
      out.keys.push_back(std::move(key));
      out.groups.emplace_back();
      out.first_pos.push_back(rec->pos);
    }
    Value value;
    const char* p = rec->value.data();
    if (!DeserializeValue(p, p + rec->value.size(), value)) {
      return common::Status::Internal(
          "external merge: corrupt value bytes in spill block");
    }
    out.groups.back().push_back(std::move(value));
    tree.Pop();
  }
  if (auto status = tree.status(); !status.ok()) return status;
  return out;
}

}  // namespace mrcost::storage

#endif  // MRCOST_STORAGE_EXTERNAL_MERGE_H_
