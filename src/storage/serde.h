#ifndef MRCOST_STORAGE_SERDE_H_
#define MRCOST_STORAGE_SERDE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace mrcost::storage {

/// Binary serialization for the key and value types the engine shuffles:
/// trivially copyable types are copied byte-for-byte, strings and vectors
/// are length-prefixed (64-bit count), pairs and tuples recurse over their
/// members. The encoding is injective per type — equal encodings mean
/// equal values — which is what lets the external merge group records by
/// comparing key bytes without deserializing them.
///
/// Spill files are process-lifetime temporaries, so the encoding uses host
/// byte order and host widths; it is not a portable interchange format.
///
/// All overloads are declared before any definition so the container
/// overloads are visible from inside the composite overloads (ordinary
/// lookup happens at template definition time).
template <typename T>
void SerializeValue(const T& value, std::string& out);
template <typename A, typename B>
void SerializeValue(const std::pair<A, B>& p, std::string& out);
template <typename... Ts>
void SerializeValue(const std::tuple<Ts...>& t, std::string& out);
inline void SerializeValue(const std::string& s, std::string& out);
template <typename T>
void SerializeValue(const std::vector<T>& v, std::string& out);

/// Deserializers advance `p` past the bytes they consume and return false
/// (leaving `out` unspecified) when the input is truncated or malformed.
template <typename T>
bool DeserializeValue(const char*& p, const char* end, T& out);
template <typename A, typename B>
bool DeserializeValue(const char*& p, const char* end, std::pair<A, B>& out);
template <typename... Ts>
bool DeserializeValue(const char*& p, const char* end,
                      std::tuple<Ts...>& out);
inline bool DeserializeValue(const char*& p, const char* end,
                             std::string& out);
template <typename T>
bool DeserializeValue(const char*& p, const char* end, std::vector<T>& out);

namespace internal {

inline void AppendRaw(const void* data, std::size_t n, std::string& out) {
  out.append(static_cast<const char*>(data), n);
}

inline bool ReadRaw(const char*& p, const char* end, void* data,
                    std::size_t n) {
  if (static_cast<std::size_t>(end - p) < n) return false;
  std::memcpy(data, p, n);
  p += n;
  return true;
}

}  // namespace internal

template <typename A, typename B>
void SerializeValue(const std::pair<A, B>& p, std::string& out) {
  SerializeValue(p.first, out);
  SerializeValue(p.second, out);
}

template <typename A, typename B>
bool DeserializeValue(const char*& p, const char* end, std::pair<A, B>& out) {
  return DeserializeValue(p, end, out.first) &&
         DeserializeValue(p, end, out.second);
}

template <typename... Ts>
void SerializeValue(const std::tuple<Ts...>& t, std::string& out) {
  std::apply([&out](const Ts&... elems) { (SerializeValue(elems, out), ...); },
             t);
}

template <typename... Ts>
bool DeserializeValue(const char*& p, const char* end,
                      std::tuple<Ts...>& out) {
  return std::apply(
      [&p, end](Ts&... elems) {
        return (DeserializeValue(p, end, elems) && ...);
      },
      out);
}

inline void SerializeValue(const std::string& s, std::string& out) {
  const std::uint64_t n = s.size();
  internal::AppendRaw(&n, sizeof(n), out);
  out.append(s);
}

inline bool DeserializeValue(const char*& p, const char* end,
                             std::string& out) {
  std::uint64_t n = 0;
  if (!internal::ReadRaw(p, end, &n, sizeof(n))) return false;
  if (static_cast<std::uint64_t>(end - p) < n) return false;
  out.assign(p, static_cast<std::size_t>(n));
  p += n;
  return true;
}

template <typename T>
void SerializeValue(const std::vector<T>& v, std::string& out) {
  const std::uint64_t n = v.size();
  internal::AppendRaw(&n, sizeof(n), out);
  for (const T& x : v) SerializeValue(x, out);
}

template <typename T>
bool DeserializeValue(const char*& p, const char* end, std::vector<T>& out) {
  std::uint64_t n = 0;
  if (!internal::ReadRaw(p, end, &n, sizeof(n))) return false;
  out.clear();
  // A corrupt count cannot force a huge allocation: every element consumes
  // at least one byte, so the remaining input bounds any honest count.
  if (n > static_cast<std::uint64_t>(end - p)) return false;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    T elem;
    if (!DeserializeValue(p, end, elem)) return false;
    out.push_back(std::move(elem));
  }
  return true;
}

template <typename T>
void SerializeValue(const T& value, std::string& out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "SerializeValue: provide an overload or a trivially "
                "copyable type");
  internal::AppendRaw(&value, sizeof(T), out);
}

template <typename T>
bool DeserializeValue(const char*& p, const char* end, T& out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "DeserializeValue: provide an overload or a trivially "
                "copyable type");
  return internal::ReadRaw(p, end, &out, sizeof(T));
}

/// Compile-time "does SerializeValue/DeserializeValue accept T?". The
/// generic overload accepts any type syntactically and only static_asserts
/// inside its body, so SFINAE cannot answer this — the trait mirrors the
/// overload set by hand: trivially copyable types plus std::string,
/// std::vector, std::pair, and std::tuple of serializable types. The
/// multi-process runtime uses it to decide, per round, whether the typed
/// closures can be re-run in a worker process with inputs and outputs
/// crossing the process boundary through serde.
template <typename T>
struct IsSerdeSerializable : std::is_trivially_copyable<T> {};

template <>
struct IsSerdeSerializable<std::string> : std::true_type {};

template <typename T>
struct IsSerdeSerializable<std::vector<T>> : IsSerdeSerializable<T> {};

template <typename A, typename B>
struct IsSerdeSerializable<std::pair<A, B>>
    : std::bool_constant<IsSerdeSerializable<A>::value &&
                         IsSerdeSerializable<B>::value> {};

template <typename... Ts>
struct IsSerdeSerializable<std::tuple<Ts...>>
    : std::conjunction<IsSerdeSerializable<Ts>...> {};

template <typename T>
inline constexpr bool IsSerdeSerializableV = IsSerdeSerializable<T>::value;

}  // namespace mrcost::storage

#endif  // MRCOST_STORAGE_SERDE_H_
