#include "src/storage/wire_run.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <utility>

#include "src/dist/protocol.h"
#include "src/dist/rpc.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace mrcost::storage {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void EncodeRunFrames(const ColumnarRun& run, const Codec* codec,
                     std::size_t block_bytes,
                     std::vector<std::string>& frames,
                     BlockEncodeStats& stats) {
  if (codec == nullptr) codec = &DefaultSpillCodec();
  if (block_bytes == 0) block_bytes = kDefaultBlockBytes;
  // The same raw-size slicing BlockRunFileWriter::AppendRun applies, so a
  // wire run's frame payloads are exactly what the file transport would
  // have framed. (Frame boundaries do not affect merge output — only the
  // record sequence does — but identical slicing keeps the encode stats
  // and compression ratios comparable across transports.)
  std::size_t start = 0;
  std::size_t raw = 0;
  const std::size_t rows = run.rows();
  for (std::size_t i = 0; i < rows; ++i) {
    raw += run.keys.At(i).size() + run.values.At(i).size() + 16;
    if (raw >= block_bytes) {
      std::string payload;
      EncodeBlock(run, start, i + 1, *codec, payload, stats);
      frames.push_back(std::move(payload));
      start = i + 1;
      raw = 0;
    }
  }
  if (start < rows) {
    std::string payload;
    EncodeBlock(run, start, rows, *codec, payload, stats);
    frames.push_back(std::move(payload));
  }
}

namespace {

/// One raw frame for rows [lo, hi): marker, counts, then bulk column
/// appends. `scratch` holds the rebased offsets between frames so each
/// frame costs one capacity check per column, not one per row — and no
/// resize() zero-fill pass over the payload before the real bytes land.
void EncodeRawFrame(const ColumnarRun& run, std::size_t lo, std::size_t hi,
                    std::vector<std::uint32_t>& scratch,
                    std::string& payload) {
  const std::size_t rows = hi - lo;
  const auto& koff = run.keys.offsets();
  const auto& voff = run.values.offsets();
  const std::uint64_t key_bytes = koff[hi] - koff[lo];
  const std::uint64_t value_bytes = voff[hi] - voff[lo];

  payload.clear();
  payload.reserve(16 + rows * 2 * sizeof(std::uint64_t) +
                  (rows + 1) * 2 * sizeof(std::uint32_t) + key_bytes +
                  value_bytes);
  payload.push_back(static_cast<char>(kRawFrameMarker));
  PutVarint(rows, payload);
  PutVarint(key_bytes, payload);
  PutVarint(value_bytes, payload);
  auto append_u64s = [&payload](const std::uint64_t* data, std::size_t n) {
    payload.append(reinterpret_cast<const char*>(data),
                   n * sizeof(std::uint64_t));
  };
  auto append_rebased = [&](const std::vector<std::uint64_t>& off) {
    scratch.resize(rows + 1);
    const std::uint64_t base = off[lo];
    for (std::size_t i = lo; i <= hi; ++i) {
      scratch[i - lo] = static_cast<std::uint32_t>(off[i] - base);
    }
    payload.append(reinterpret_cast<const char*>(scratch.data()),
                   (rows + 1) * sizeof(std::uint32_t));
  };
  append_u64s(run.hashes.data() + lo, rows);
  append_u64s(run.positions.data() + lo, rows);
  append_rebased(koff);
  payload.append(run.keys.bytes().data() + koff[lo], key_bytes);
  append_rebased(voff);
  payload.append(run.values.bytes().data() + voff[lo], value_bytes);
}

}  // namespace

void EncodeRawRunFrames(const ColumnarRun& run, std::size_t block_bytes,
                        std::vector<std::string>& frames,
                        BlockEncodeStats& stats) {
  if (block_bytes == 0) block_bytes = kDefaultBlockBytes;
  std::size_t start = 0;
  std::size_t raw = 0;
  const std::size_t rows = run.rows();
  std::vector<std::uint32_t> scratch;
  auto flush = [&](std::size_t end) {
    std::string payload;
    EncodeRawFrame(run, start, end, scratch, payload);
    stats.raw_bytes += raw;
    stats.encoded_bytes += payload.size();
    ++stats.blocks;
    frames.push_back(std::move(payload));
  };
  for (std::size_t i = 0; i < rows; ++i) {
    raw += run.keys.At(i).size() + run.values.At(i).size() + 16;
    if (raw >= block_bytes) {
      flush(i + 1);
      start = i + 1;
      raw = 0;
    }
  }
  if (start < rows) flush(rows);
}

common::Status DecodeRawBlock(std::string_view payload, ColumnarRun& run) {
  run.Clear();
  const char* p = payload.data();
  const char* end = p + payload.size();
  if (p == end || static_cast<std::uint8_t>(*p) != kRawFrameMarker) {
    return common::Status::Internal("raw block: bad marker");
  }
  ++p;
  std::uint64_t rows = 0, key_bytes = 0, value_bytes = 0;
  if (!GetVarint(p, end, rows) || !GetVarint(p, end, key_bytes) ||
      !GetVarint(p, end, value_bytes)) {
    return common::Status::Internal("raw block: truncated header");
  }
  const std::size_t need =
      rows * 2 * sizeof(std::uint64_t) +
      (rows + 1) * 2 * sizeof(std::uint32_t) + key_bytes + value_bytes;
  if (static_cast<std::size_t>(end - p) != need) {
    return common::Status::Internal("raw block: size mismatch");
  }
  auto take_u64s = [&](std::size_t n, std::vector<std::uint64_t>& out) {
    out.resize(n);
    std::memcpy(out.data(), p, n * sizeof(std::uint64_t));
    p += n * sizeof(std::uint64_t);
  };
  // Offsets ship as u32 (see wire_run.h); widen them back to the
  // ByteSlab's u64 column.
  auto take_offsets = [&](std::vector<std::uint64_t>& out) {
    out.resize(rows + 1);
    for (std::size_t i = 0; i <= rows; ++i) {
      std::uint32_t v = 0;
      std::memcpy(&v, p + i * sizeof(std::uint32_t), sizeof(v));
      out[i] = v;
    }
    p += (rows + 1) * sizeof(std::uint32_t);
  };
  take_u64s(rows, run.hashes);
  take_u64s(rows, run.positions);
  std::vector<std::uint64_t> koff;
  take_offsets(koff);
  std::string kbytes(p, key_bytes);
  p += key_bytes;
  std::vector<std::uint64_t> voff;
  take_offsets(voff);
  std::string vbytes(p, value_bytes);
  if (koff.empty() || koff.front() != 0 || koff.back() != key_bytes ||
      voff.front() != 0 || voff.back() != value_bytes) {
    return common::Status::Internal("raw block: bad offset column");
  }
  run.keys.AssignConcat(std::move(kbytes), std::move(koff));
  run.values.AssignConcat(std::move(vbytes), std::move(voff));
  return common::Status::Ok();
}

common::Status DecodeAnyBlock(std::string_view payload, ColumnarRun& run) {
  if (!payload.empty() &&
      static_cast<std::uint8_t>(payload.front()) == kRawFrameMarker) {
    return DecodeRawBlock(payload, run);
  }
  return DecodeBlock(payload, run);
}

common::Status RunRegistry::Put(const std::string& run_id,
                                std::vector<std::string> frames,
                                std::uint64_t rows) {
  auto run = std::make_shared<Run>();
  run->rows = rows;
  for (const std::string& frame : frames) run->frame_bytes += frame.size();

  std::unique_lock<std::mutex> lock(mu_);
  const bool overflow =
      budget_ > 0 && retained_ + run->frame_bytes > budget_;
  std::string overflow_path;
  if (overflow) {
    overflow_path = overflow_dir_ + "/ovf-" +
                    std::to_string(next_overflow_id_++) + ".run";
  }
  lock.unlock();

  if (overflow) {
    std::error_code ec;
    std::filesystem::create_directories(overflow_dir_, ec);
    auto file = SpillFileWriter::Create(overflow_path,
                                        kSpillFormatVersionBlocks);
    if (!file.ok()) return file.status();
    SpillFileWriter writer = std::move(file.value());
    for (const std::string& frame : frames) {
      if (auto status = writer.AppendBlock(frame); !status.ok()) {
        return status;
      }
    }
    if (auto status = writer.Close(); !status.ok()) return status;
    run->overflow_path = overflow_path;
  } else {
    run->frames = std::move(frames);
  }

  lock.lock();
  if (run->overflow_path.empty()) {
    retained_ += run->frame_bytes;
  } else {
    overflow_ += run->frame_bytes;
  }
  if (!runs_.emplace(run_id, std::move(run)).second) {
    return common::Status::InvalidArgument(
        "run registry: duplicate run id " + run_id);
  }
  return common::Status::Ok();
}

std::shared_ptr<const RunRegistry::Run> RunRegistry::Find(
    const std::string& run_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = runs_.find(run_id);
  return it == runs_.end() ? nullptr : it->second;
}

std::uint64_t RunRegistry::retained_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_;
}

std::uint64_t RunRegistry::overflow_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflow_;
}

// ------------------------------------------------------ WireBlockRunSource

WireBlockRunSource::~WireBlockRunSource() {
  EmitFetchSpan();
  if (fd_ >= 0) ::close(fd_);
}

bool WireBlockRunSource::Open() {
  opened_ = true;
  t_open_us_ = obs::TraceRecorder::NowUs();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    status_ = common::Status::Internal(
        std::string("wire run: socket: ") + std::strerror(errno));
    return false;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.endpoint.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    status_ = common::Status::InvalidArgument(
        "wire run: endpoint path too long: " + options_.endpoint);
    return false;
  }
  std::memcpy(addr.sun_path, options_.endpoint.c_str(),
              options_.endpoint.size() + 1);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    // A dead owner leaves a stale socket path (ECONNREFUSED) or none at
    // all (ENOENT) — both are the retryable "source is gone" signal.
    ::close(fd);
    status_ = common::Status::Unavailable(
        "wire run: connect " + options_.endpoint + ": " +
        std::strerror(errno));
    return false;
  }
  fd_ = fd;
  dist::FetchRunMsg fetch;
  fetch.run_id = options_.run_id;
  fetch.credits = options_.credits > 0 ? options_.credits : 1;
  if (auto status = dist::WriteFrame(fd_, dist::EncodeFetchRun(fetch));
      !status.ok()) {
    status_ = common::Status::Unavailable("wire run: send FetchRun: " +
                                          status.ToString());
    return false;
  }
  return true;
}

bool WireBlockRunSource::NextBlock() {
  const auto t0 = std::chrono::steady_clock::now();
  if (auto status = dist::ReadFrame(fd_, payload_); !status.ok()) {
    // EOF mid-stream = the owner died under us; retryable.
    status_ = dist::IsEof(status)
                  ? common::Status::Unavailable(
                        "wire run: source closed mid-stream for " +
                        options_.run_id)
                  : status;
    return false;
  }
  stall_ms_ += MsSince(t0);
  auto type = dist::PeekType(payload_);
  if (!type.ok()) {
    status_ = type.status();
    return false;
  }
  switch (*type) {
    case dist::MsgType::kRunBlock: {
      auto view = dist::RunBlockView(payload_);
      if (!view.ok()) {
        status_ = view.status();
        return false;
      }
      status_ = DecodeAnyBlock(*view, run_);
      if (!status_.ok()) return false;
      ++blocks_;
      wire_bytes_ += view->size();
      // The block is consumed (decoded) — hand its credit back so the
      // owner may push the next one past the window.
      if (auto status =
              dist::WriteFrame(fd_, dist::EncodeRunCredit({1}));
          !status.ok()) {
        status_ = common::Status::Unavailable(
            "wire run: send RunCredit: " + status.ToString());
        return false;
      }
      return true;
    }
    case dist::MsgType::kRunEnd: {
      dist::RunEndMsg end;
      if (auto status = dist::DecodeRunEnd(payload_, end); !status.ok()) {
        status_ = status;
        return false;
      }
      credit_wait_ms_ = end.credit_wait_ms;
      if (end.blocks != blocks_) {
        status_ = common::Status::Internal(
            "wire run: stream for " + options_.run_id + " delivered " +
            std::to_string(blocks_) + " blocks, owner sent " +
            std::to_string(end.blocks));
        return false;
      }
      done_ = true;
      EmitFetchSpan();
      return false;
    }
    case dist::MsgType::kRunError: {
      dist::RunErrorMsg error;
      if (auto status = dist::DecodeRunError(payload_, error);
          !status.ok()) {
        status_ = status;
        return false;
      }
      status_ = common::Status::Unavailable("wire run: " + error.message);
      return false;
    }
    default:
      status_ = common::Status::Internal(
          "wire run: unexpected message type " +
          std::to_string(static_cast<unsigned>(*type)) +
          " on data stream");
      return false;
  }
}

const RecordView* WireBlockRunSource::Peek() {
  if (done_ || !status_.ok()) return nullptr;
  if (!opened_ && !Open()) return nullptr;
  while (next_ >= run_.rows()) {
    if (!NextBlock()) return nullptr;
    next_ = 0;
  }
  view_ = run_.View(next_);
  return &view_;
}

void WireBlockRunSource::EmitFetchSpan() {
  if (span_emitted_ || !opened_) return;
  span_emitted_ = true;
  if (obs::MetricsEnabled()) {
    auto& registry = obs::Registry::Global();
    registry.AddCounter("dist.shuffle_bytes_wire", wire_bytes_);
    registry.ObserveHistogram("dist.fetch_stall_ms",
                              static_cast<std::uint64_t>(stall_ms_));
  }
  if (!obs::TraceRecorder::enabled()) return;
  obs::TraceEvent event;
  event.name = "FetchRun";
  event.category = "fetch";
  event.shard = options_.reducer_shard;
  event.t_start_us = t_open_us_;
  event.t_end_us = obs::TraceRecorder::NowUs();
  event.args.push_back(obs::Arg("run", options_.run_id));
  event.args.push_back(obs::Arg("reducer", options_.reducer_shard));
  event.args.push_back(obs::Arg("credits", options_.credits));
  event.args.push_back(obs::Arg("blocks", blocks_));
  event.args.push_back(obs::Arg("bytes", wire_bytes_));
  event.args.push_back(obs::Arg("stall_ms", stall_ms_));
  event.args.push_back(obs::Arg("credit_wait_ms", credit_wait_ms_));
  obs::TraceRecorder::Global().Append(std::move(event));
}

}  // namespace mrcost::storage
