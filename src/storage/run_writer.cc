#include "src/storage/run_writer.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>

namespace mrcost::storage {
namespace {

/// Distinguishes the spill files of concurrent shuffles (and of successive
/// shuffles in one process) within the shared spill directory.
std::uint64_t NextSpillerId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void EncodeRecord(const SpillRecord& rec, std::string& out) {
  internal::AppendRaw(&rec.hash, sizeof(rec.hash), out);
  internal::AppendRaw(&rec.pos, sizeof(rec.pos), out);
  internal::AppendRaw(&rec.key_size, sizeof(rec.key_size), out);
  const std::uint32_t total = static_cast<std::uint32_t>(rec.bytes.size());
  internal::AppendRaw(&total, sizeof(total), out);
  out.append(rec.bytes);
}

bool DecodeRecord(const char*& p, const char* end, SpillRecord& rec) {
  std::uint32_t total = 0;
  if (!internal::ReadRaw(p, end, &rec.hash, sizeof(rec.hash)) ||
      !internal::ReadRaw(p, end, &rec.pos, sizeof(rec.pos)) ||
      !internal::ReadRaw(p, end, &rec.key_size, sizeof(rec.key_size)) ||
      !internal::ReadRaw(p, end, &total, sizeof(total))) {
    return false;
  }
  if (rec.key_size > total ||
      total > static_cast<std::uint64_t>(end - p)) {
    return false;
  }
  rec.bytes.assign(p, total);
  p += total;
  return true;
}

common::Result<RunFileWriter> RunFileWriter::Create(const std::string& path,
                                                    std::size_t block_bytes) {
  auto file = SpillFileWriter::Create(path);
  if (!file.ok()) return file.status();
  return RunFileWriter(std::move(file.value()), block_bytes);
}

common::Status RunFileWriter::Append(const SpillRecord& rec) {
  // The reader rejects blocks over kMaxBlockBytes, and the u32 length
  // fields cannot frame more; refuse oversized records at write time with
  // a clear error instead of producing a run no merge can read, and flush
  // the current block early when appending would push it past the limit.
  constexpr std::size_t kRecordHeaderBytes = 24;  // hash, pos, two u32s
  const std::size_t encoded = kRecordHeaderBytes + rec.bytes.size();
  if (encoded > kMaxBlockBytes) {
    return common::Status::InvalidArgument(
        "run writer: record of " + std::to_string(rec.bytes.size()) +
        " bytes exceeds the maximum spill block size");
  }
  if (!block_.empty() && block_.size() + encoded > kMaxBlockBytes) {
    auto status = file_.AppendBlock(block_);
    block_.clear();
    if (!status.ok()) return status;
  }
  EncodeRecord(rec, block_);
  if (block_.size() >= block_bytes_) {
    auto status = file_.AppendBlock(block_);
    block_.clear();
    return status;
  }
  return common::Status::Ok();
}

common::Status RunFileWriter::Finish() {
  if (!block_.empty()) {
    auto status = file_.AppendBlock(block_);
    block_.clear();
    if (!status.ok()) return status;
  }
  return file_.Close();
}

RunSpiller::RunSpiller(std::string dir)
    : dir_(std::move(dir)), spiller_id_(NextSpillerId()) {
  if (dir_.empty()) {
    std::error_code ec;
    dir_ = std::filesystem::temp_directory_path(ec).string();
    if (ec) dir_ = ".";
  }
}

RunSpiller::~RunSpiller() {
  std::error_code ec;
  for (const std::string& path : spill_paths_) {
    std::filesystem::remove(path, ec);
  }
  for (const std::string& path : merge_paths_) {
    std::filesystem::remove(path, ec);
  }
}

std::string RunSpiller::NextPath() {
  // Callers hold mu_.
  return (std::filesystem::path(dir_) /
          ("mrcost-spill-" + std::to_string(::getpid()) + "-" +
           std::to_string(spiller_id_) + "-" +
           std::to_string(next_run_id_++) + ".run"))
      .string();
}

common::Status RunSpiller::SpillRun(std::vector<SpillRecord>& records) {
  std::sort(records.begin(), records.end(),
            [](const SpillRecord& a, const SpillRecord& b) {
              return SpillRecordLess(a, b);
            });
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = NextPath();
    spill_paths_.push_back(path);
  }
  auto writer = RunFileWriter::Create(path);
  if (!writer.ok()) return writer.status();
  for (const SpillRecord& rec : records) {
    if (auto status = writer->Append(rec); !status.ok()) return status;
  }
  if (auto status = writer->Finish(); !status.ok()) return status;
  records.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_written_ += writer->bytes_written();
  }
  return common::Status::Ok();
}

common::Result<RunFileWriter> RunSpiller::NewRun() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = NextPath();
    merge_paths_.push_back(path);
  }
  return RunFileWriter::Create(path);
}

common::Status RunSpiller::CloseRun(RunFileWriter& writer) {
  if (auto status = writer.Finish(); !status.ok()) return status;
  std::lock_guard<std::mutex> lock(mu_);
  bytes_written_ += writer.bytes_written();
  return common::Status::Ok();
}

std::vector<std::string> RunSpiller::run_paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> all = spill_paths_;
  all.insert(all.end(), merge_paths_.begin(), merge_paths_.end());
  return all;
}

std::vector<std::string> RunSpiller::spill_run_paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_paths_;
}

std::uint64_t RunSpiller::spill_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_paths_.size();
}

std::uint64_t RunSpiller::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

}  // namespace mrcost::storage
