#include "src/storage/run_writer.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace mrcost::storage {
namespace {

/// Distinguishes the spill files of concurrent shuffles (and of successive
/// shuffles in one process) within the shared spill directory.
std::uint64_t NextSpillerId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void EncodeRecord(const SpillRecord& rec, std::string& out) {
  internal::AppendRaw(&rec.hash, sizeof(rec.hash), out);
  internal::AppendRaw(&rec.pos, sizeof(rec.pos), out);
  internal::AppendRaw(&rec.key_size, sizeof(rec.key_size), out);
  const std::uint32_t total = static_cast<std::uint32_t>(rec.bytes.size());
  internal::AppendRaw(&total, sizeof(total), out);
  out.append(rec.bytes);
}

bool DecodeRecord(const char*& p, const char* end, SpillRecord& rec) {
  std::uint32_t total = 0;
  if (!internal::ReadRaw(p, end, &rec.hash, sizeof(rec.hash)) ||
      !internal::ReadRaw(p, end, &rec.pos, sizeof(rec.pos)) ||
      !internal::ReadRaw(p, end, &rec.key_size, sizeof(rec.key_size)) ||
      !internal::ReadRaw(p, end, &total, sizeof(total))) {
    return false;
  }
  if (rec.key_size > total ||
      total > static_cast<std::uint64_t>(end - p)) {
    return false;
  }
  rec.bytes.assign(p, total);
  p += total;
  return true;
}

common::Result<RunFileWriter> RunFileWriter::Create(const std::string& path,
                                                    std::size_t block_bytes) {
  auto file = SpillFileWriter::Create(path);
  if (!file.ok()) return file.status();
  return RunFileWriter(std::move(file.value()), block_bytes);
}

common::Status RunFileWriter::Append(const SpillRecord& rec) {
  // The reader rejects blocks over kMaxBlockBytes, and the u32 length
  // fields cannot frame more; refuse oversized records at write time with
  // a clear error instead of producing a run no merge can read, and flush
  // the current block early when appending would push it past the limit.
  constexpr std::size_t kRecordHeaderBytes = 24;  // hash, pos, two u32s
  const std::size_t encoded = kRecordHeaderBytes + rec.bytes.size();
  if (encoded > kMaxBlockBytes) {
    return common::Status::InvalidArgument(
        "run writer: record of " + std::to_string(rec.bytes.size()) +
        " bytes exceeds the maximum spill block size");
  }
  if (!block_.empty() && block_.size() + encoded > kMaxBlockBytes) {
    auto status = file_.AppendBlock(block_);
    block_.clear();
    if (!status.ok()) return status;
  }
  EncodeRecord(rec, block_);
  if (block_.size() >= block_bytes_) {
    auto status = file_.AppendBlock(block_);
    block_.clear();
    return status;
  }
  return common::Status::Ok();
}

common::Status RunFileWriter::Finish() {
  if (!block_.empty()) {
    auto status = file_.AppendBlock(block_);
    block_.clear();
    if (!status.ok()) return status;
  }
  return file_.Close();
}

common::Result<BlockRunFileWriter> BlockRunFileWriter::Create(
    const std::string& path, const Codec* codec, std::size_t block_bytes) {
  auto file = SpillFileWriter::Create(path, kSpillFormatVersionBlocks);
  if (!file.ok()) return file.status();
  if (codec == nullptr) codec = &DefaultSpillCodec();
  return BlockRunFileWriter(std::move(file.value()), codec, block_bytes);
}

common::Status BlockRunFileWriter::Append(const RecordView& rec) {
  pending_.Append(rec);
  if (pending_.RawBytes() >= block_bytes_) return FlushPending();
  return common::Status::Ok();
}

common::Status BlockRunFileWriter::AppendRun(const ColumnarRun& run,
                                             std::size_t lo,
                                             std::size_t hi) {
  // Rows are already sorted and contiguous — encode directly in
  // ~block_bytes_ slices instead of staging through pending_.
  if (auto status = FlushPending(); !status.ok()) return status;
  std::size_t start = lo;
  std::size_t raw = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    raw += run.keys.At(i).size() + run.values.At(i).size() + 16;
    if (raw >= block_bytes_) {
      EncodeBlock(run, start, i + 1, *codec_, payload_, stats_);
      if (auto status = file_.AppendBlock(payload_); !status.ok()) {
        return status;
      }
      start = i + 1;
      raw = 0;
    }
  }
  if (start < hi) {
    EncodeBlock(run, start, hi, *codec_, payload_, stats_);
    if (auto status = file_.AppendBlock(payload_); !status.ok()) {
      return status;
    }
  }
  return common::Status::Ok();
}

common::Status BlockRunFileWriter::Finish() {
  if (auto status = FlushPending(); !status.ok()) return status;
  return file_.Close();
}

common::Status BlockRunFileWriter::FlushPending() {
  if (pending_.empty()) return common::Status::Ok();
  EncodeBlock(pending_, 0, pending_.rows(), *codec_, payload_, stats_);
  pending_.Clear();
  return file_.AppendBlock(payload_);
}

RunSpiller::RunSpiller(std::string dir)
    : dir_(std::move(dir)), spiller_id_(NextSpillerId()) {
  if (dir_.empty()) {
    auto owned = common::TempDir::Create("", "mrcost-spill-dir-");
    if (owned.ok()) {
      owned_dir_ = std::move(owned.value());
      dir_ = owned_dir_.path();
    } else {
      std::error_code ec;
      dir_ = std::filesystem::temp_directory_path(ec).string();
      if (ec) dir_ = ".";
    }
  }
}

RunSpiller::~RunSpiller() {
  std::error_code ec;
  for (const auto& [key, path] : spill_paths_) {
    std::filesystem::remove(path, ec);
  }
  for (const std::string& path : merge_paths_) {
    std::filesystem::remove(path, ec);
  }
}

std::string RunSpiller::NextPath() {
  // Callers hold mu_.
  return (std::filesystem::path(dir_) /
          ("mrcost-spill-" + std::to_string(::getpid()) + "-" +
           std::to_string(spiller_id_) + "-" +
           std::to_string(next_run_id_++) + ".run"))
      .string();
}

common::Status RunSpiller::SpillRun(std::vector<SpillRecord>& records) {
  obs::TraceSpan span("SpillRun", "spill");
  if (span.active()) {
    span.AddArg(obs::Arg("rows", static_cast<std::uint64_t>(records.size())));
  }
  std::sort(records.begin(), records.end(),
            [](const SpillRecord& a, const SpillRecord& b) {
              return SpillRecordLess(a, b);
            });
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = NextPath();
    spill_paths_.emplace_back(spill_paths_.size(), path);
  }
  auto writer = RunFileWriter::Create(path);
  if (!writer.ok()) return writer.status();
  for (const SpillRecord& rec : records) {
    if (auto status = writer->Append(rec); !status.ok()) return status;
  }
  if (auto status = writer->Finish(); !status.ok()) return status;
  records.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_written_ += writer->bytes_written();
  }
  if (span.active()) {
    span.AddArg(obs::Arg("bytes", writer->bytes_written()));
  }
  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.AddCounter("storage.spill_runs", 1);
    registry.AddCounter("storage.spill_bytes", writer->bytes_written());
  }
  return common::Status::Ok();
}

common::Status RunSpiller::SpillBlockRun(ColumnarRun& run,
                                         const Codec* codec) {
  obs::TraceSpan span("SpillBlockRun", "spill");
  if (span.active()) {
    span.AddArg(obs::Arg("rows", static_cast<std::uint64_t>(run.rows())));
  }
  // Emission positions are globally unique and assigned in scan order, so
  // a run's smallest position is a deterministic merge-order key — unlike
  // registration order, which depends on which map thread spilled first.
  std::uint64_t order_key = 0;
  if (!run.positions.empty()) {
    order_key =
        *std::min_element(run.positions.begin(), run.positions.end());
  }
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = NextPath();
    spill_paths_.emplace_back(order_key, path);
  }
  auto writer = BlockRunFileWriter::Create(path, codec);
  if (!writer.ok()) return writer.status();
  if (auto status = writer->AppendRun(run, 0, run.rows()); !status.ok()) {
    return status;
  }
  if (auto status = writer->Finish(); !status.ok()) return status;
  run.Clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_written_ += writer->bytes_written();
    encode_stats_.Add(writer->stats());
  }
  if (span.active()) {
    span.AddArg(obs::Arg("bytes", writer->bytes_written()));
  }
  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.AddCounter("storage.spill_runs", 1);
    registry.AddCounter("storage.spill_bytes", writer->bytes_written());
  }
  return common::Status::Ok();
}

common::Result<BlockRunFileWriter> RunSpiller::NewBlockRun(
    const Codec* codec) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = NextPath();
    merge_paths_.push_back(path);
  }
  return BlockRunFileWriter::Create(path, codec);
}

common::Status RunSpiller::CloseBlockRun(BlockRunFileWriter& writer) {
  if (auto status = writer.Finish(); !status.ok()) return status;
  std::lock_guard<std::mutex> lock(mu_);
  bytes_written_ += writer.bytes_written();
  encode_stats_.Add(writer.stats());
  return common::Status::Ok();
}

BlockEncodeStats RunSpiller::encode_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return encode_stats_;
}

common::Result<RunFileWriter> RunSpiller::NewRun() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = NextPath();
    merge_paths_.push_back(path);
  }
  return RunFileWriter::Create(path);
}

common::Status RunSpiller::CloseRun(RunFileWriter& writer) {
  if (auto status = writer.Finish(); !status.ok()) return status;
  std::lock_guard<std::mutex> lock(mu_);
  bytes_written_ += writer.bytes_written();
  return common::Status::Ok();
}

std::vector<std::string> RunSpiller::run_paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> all;
  all.reserve(spill_paths_.size() + merge_paths_.size());
  for (const auto& [key, path] : spill_paths_) all.push_back(path);
  all.insert(all.end(), merge_paths_.begin(), merge_paths_.end());
  return all;
}

std::vector<std::string> RunSpiller::spill_run_paths() const {
  std::vector<std::pair<std::uint64_t, std::string>> keyed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keyed = spill_paths_;
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<std::string> paths;
  paths.reserve(keyed.size());
  for (auto& [key, path] : keyed) paths.push_back(std::move(path));
  return paths;
}

std::uint64_t RunSpiller::spill_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_paths_.size();
}

std::uint64_t RunSpiller::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

}  // namespace mrcost::storage
