#ifndef MRCOST_STORAGE_SPILL_FILE_H_
#define MRCOST_STORAGE_SPILL_FILE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>

#include "src/common/status.h"

namespace mrcost::storage {

/// On-disk format of one spill run (see README "External shuffle"):
///
///   +-------------------+  file header
///   | u32 magic "MRSP"  |
///   | u32 version       |
///   +-------------------+  block, repeated until end of file
///   | u32 payload bytes |
///   | u32 CRC32(payload)|
///   | payload ...       |
///   +-------------------+
///
/// Payloads are opaque to this layer (the run writer packs length-prefixed
/// records into them; records never straddle a block). Every block is
/// CRC-checked on read, so a torn write, a truncated file, or bit rot
/// surfaces as a Status instead of garbage groups.
std::uint32_t Crc32(const void* data, std::size_t n);

/// Extends a finished Crc32 value over more bytes, as if the original
/// buffer and `data` had been checksummed in one call:
/// Crc32Resume(Crc32(a), b) == Crc32(a + b). Lets framing layers checksum
/// a logically concatenated payload without materializing it.
std::uint32_t Crc32Resume(std::uint32_t crc, const void* data,
                          std::size_t n);

inline constexpr std::uint32_t kSpillMagic = 0x5053524Du;  // "MRSP"
inline constexpr std::uint32_t kSpillFormatVersion = 1;

/// Version 2: each payload is one encoded columnar block
/// (src/storage/block.h — codec id, varint raw size, compressed body)
/// instead of a pack of fixed-header records. The frame layer is
/// unchanged; readers accept both versions and expose which one they got.
inline constexpr std::uint32_t kSpillFormatVersionBlocks = 2;

/// Blocks are flushed once their payload reaches this size (a single
/// oversized record still forms one valid, larger block).
inline constexpr std::size_t kDefaultBlockBytes = 256 * 1024;

/// Reject block length fields beyond this before allocating: no writer
/// produces them, so a larger length means a corrupt frame header.
inline constexpr std::uint32_t kMaxBlockBytes = 1u << 30;

/// Appends CRC-framed blocks to a spill file. Create() writes the header;
/// Close() flushes (the file persists — cleanup belongs to the caller,
/// normally a RunSpiller).
class SpillFileWriter {
 public:
  static common::Result<SpillFileWriter> Create(
      const std::string& path,
      std::uint32_t version = kSpillFormatVersion);

  SpillFileWriter(SpillFileWriter&&) = default;
  SpillFileWriter& operator=(SpillFileWriter&&) = default;

  common::Status AppendBlock(const std::string& payload);
  common::Status Close();

  /// Bytes written so far, header and block frames included.
  std::uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  SpillFileWriter() = default;

  std::ofstream out_;
  std::string path_;
  std::uint64_t bytes_written_ = 0;
};

/// Streams the blocks of a spill file back, verifying the header on Open
/// and each block's CRC on Next.
class SpillFileReader {
 public:
  static common::Result<SpillFileReader> Open(const std::string& path);

  SpillFileReader(SpillFileReader&&) = default;
  SpillFileReader& operator=(SpillFileReader&&) = default;

  /// Reads the next block's payload. Sets `done` (payload untouched) at a
  /// clean end of file; a partial frame returns kOutOfRange ("truncated")
  /// and a CRC mismatch kInternal.
  common::Status Next(std::string& payload, bool& done);

  const std::string& path() const { return path_; }

  /// Format version from the file header (1 = record payloads, 2 = block
  /// payloads).
  std::uint32_t version() const { return version_; }

 private:
  SpillFileReader() = default;

  std::ifstream in_;
  std::string path_;
  std::uint32_t version_ = kSpillFormatVersion;
};

}  // namespace mrcost::storage

#endif  // MRCOST_STORAGE_SPILL_FILE_H_
