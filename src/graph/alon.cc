#include "src/graph/alon.h"

#include "src/common/bit_util.h"
#include <cmath>
#include <vector>

#include "src/common/combinatorics.h"
#include "src/common/status.h"

namespace mrcost::graph {
namespace {

/// True iff the subgraph of `g` induced by the nodes of `mask` (a bitmask)
/// has a Hamiltonian cycle. Bitmask DP over <= 10 nodes.
bool HasHamiltonianCycle(const Graph& g, std::uint32_t mask) {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mask & (1u << v)) nodes.push_back(v);
  }
  const int s = static_cast<int>(nodes.size());
  if (s < 3) return false;
  // Local adjacency matrix.
  std::vector<std::uint32_t> adj(s, 0);
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j < s; ++j) {
      if (i != j && g.HasEdge(nodes[i], nodes[j])) adj[i] |= 1u << j;
    }
  }
  // dp[subset][last]: a path over `subset` starting at node 0, ending at
  // `last`. Cycle exists iff some full-set path ends adjacent to 0.
  const std::uint32_t full = (1u << s) - 1;
  std::vector<std::uint32_t> reach(1u << s, 0);  // bitset over `last`
  reach[1u << 0] = 1u << 0;
  for (std::uint32_t subset = 1; subset <= full; ++subset) {
    if (!(subset & 1u)) continue;  // paths start at local node 0
    const std::uint32_t ends = reach[subset];
    if (ends == 0) continue;
    for (int last = 0; last < s; ++last) {
      if (!(ends & (1u << last))) continue;
      std::uint32_t candidates = adj[last] & ~subset;
      while (candidates) {
        const int next = common::CountTrailingZeros(candidates);
        candidates &= candidates - 1;
        reach[subset | (1u << next)] |= 1u << next;
      }
    }
  }
  return (reach[full] & adj[0]) != 0;
}

/// Recursive partition search: `assigned` marks nodes already placed.
bool PartitionSearch(const Graph& g, std::uint32_t assigned,
                     std::uint32_t all) {
  if (assigned == all) return true;
  // Lowest unassigned node anchors the next part (canonical, avoids
  // revisiting the same partition in different orders).
  const int anchor = common::CountTrailingZeros(~assigned & all);
  const std::uint32_t remaining = all & ~assigned;
  // Enumerate subsets of `remaining` containing `anchor`.
  const std::uint32_t pool = remaining & ~(1u << anchor);
  // Iterate over all subsets `sub` of pool; part = sub | anchor bit.
  std::uint32_t sub = pool;
  while (true) {
    const std::uint32_t part = sub | (1u << anchor);
    const int size = common::PopCount(part);
    bool part_ok = false;
    if (size == 2) {
      // Must induce a single edge.
      const int a = common::CountTrailingZeros(part);
      const int b = common::CountTrailingZeros(part & (part - 1));
      part_ok = g.HasEdge(static_cast<NodeId>(a), static_cast<NodeId>(b));
    } else if (size >= 3 && size % 2 == 1) {
      part_ok = HasHamiltonianCycle(g, part);
    }
    if (part_ok && PartitionSearch(g, assigned | part, all)) return true;
    if (sub == 0) break;
    sub = (sub - 1) & pool;
  }
  return false;
}

}  // namespace

bool InAlonClass(const Graph& sample) {
  MRCOST_CHECK(sample.num_nodes() >= 1 && sample.num_nodes() <= 10);
  const std::uint32_t all = (1u << sample.num_nodes()) - 1;
  return PartitionSearch(sample, 0, all);
}

core::Recipe AlonSampleRecipe(NodeId n, int s) {
  MRCOST_CHECK(s >= 3);
  core::Recipe recipe;
  recipe.problem_name = "alon-sample-graph";
  recipe.g = [s](double q) { return std::pow(q, s / 2.0); };
  recipe.num_inputs = static_cast<double>(n) * (n - 1) / 2.0;
  recipe.num_outputs = std::pow(static_cast<double>(n), s) /
                       static_cast<double>(common::FactorialExact(s));
  return recipe;
}

double AlonSampleLowerBound(NodeId n, int s, double q) {
  return std::pow(static_cast<double>(n) / std::sqrt(q), s - 2);
}

double AlonSampleEdgeLowerBound(std::uint64_t m, int s, double q) {
  return std::pow(std::sqrt(static_cast<double>(m) / q), s - 2);
}

core::Recipe AlonSampleEdgeRecipe(std::uint64_t m, int s) {
  MRCOST_CHECK(s >= 3);
  core::Recipe recipe;
  recipe.problem_name = "alon-sample-graph-edges";
  recipe.g = [s](double q) { return std::pow(q, s / 2.0); };
  recipe.num_inputs = static_cast<double>(m);
  recipe.num_outputs = std::pow(static_cast<double>(m), s / 2.0);
  return recipe;
}

}  // namespace mrcost::graph
