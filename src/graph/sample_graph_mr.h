#ifndef MRCOST_GRAPH_SAMPLE_GRAPH_MR_H_
#define MRCOST_GRAPH_SAMPLE_GRAPH_MR_H_

#include <cstdint>

#include "src/engine/plan.h"
#include "src/graph/graph.h"

namespace mrcost::graph {

struct SampleGraphJobResult {
  std::uint64_t instance_count = 0;
  engine::JobMetrics metrics;
};

/// The sample-graph enumeration as a lazy plan: the dataset of per-reducer
/// instance counts plus the plan handle. No analytic hints are declared —
/// the edge fan-out is data-dependent (bucket collisions dedup keys), so
/// Plan::Estimate samples the map function instead; an exhaustive sample
/// reproduces the realized r and q exactly.
struct SampleGraphPlan {
  engine::Plan plan;
  engine::Dataset<std::uint64_t> counts;
};

/// Builds (without running) the enumeration plan. `data`'s edges are
/// copied into the plan; `pattern` is copied into the closures.
SampleGraphPlan BuildSampleGraphPlan(const Graph& data, const Graph& pattern,
                                     int k, std::uint64_t seed);

/// Map-reduce enumeration of sample-graph instances (the algorithm family
/// of [2] that matches the Section 5.2/5.3 bounds): nodes are hashed into k
/// buckets; one reducer per size-s bucket multiset, where s is the number
/// of pattern nodes; the edge {u,v} is replicated to every multiset
/// containing {h(u), h(v)} — Theta(k^{s-2}) reducers, giving
/// r = Theta(k^{s-2}) = Theta((sqrt(m/q))^{s-2}) at q = Theta(m/k^2).
///
/// Each instance is counted by exactly one reducer: the one whose multiset
/// equals the instance's node-bucket multiset. Requires pattern with
/// 3 <= s <= 5 nodes and no isolated nodes.
SampleGraphJobResult MRSampleGraphInstances(
    const Graph& data, const Graph& pattern, int k, std::uint64_t seed,
    const engine::JobOptions& options = {});

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_SAMPLE_GRAPH_MR_H_
