#include "src/graph/problem.h"

#include <algorithm>
#include <sstream>

#include "src/common/combinatorics.h"

namespace mrcost::graph {

std::uint64_t TripleRank(std::uint64_t n, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c) {
  MRCOST_CHECK(a < b && b < c && c < n);
  // Triples are ordered lexicographically; count predecessors.
  std::uint64_t rank = 0;
  rank += common::BinomialExact(static_cast<int>(n), 3) -
          common::BinomialExact(static_cast<int>(n - a), 3);
  rank += common::BinomialExact(static_cast<int>(n - a - 1), 2) -
          common::BinomialExact(static_cast<int>(n - b), 2);
  rank += c - b - 1;
  return rank;
}

std::array<NodeId, 3> TripleUnrank(std::uint64_t n, std::uint64_t rank) {
  std::uint64_t a = 0;
  while (true) {
    const std::uint64_t block =
        common::BinomialExact(static_cast<int>(n - a - 1), 2);
    if (rank < block) break;
    rank -= block;
    ++a;
  }
  std::uint64_t b = a + 1;
  while (true) {
    const std::uint64_t row = n - b - 1;
    if (rank < row) break;
    rank -= row;
    ++b;
  }
  const std::uint64_t c = b + 1 + rank;
  return {static_cast<NodeId>(a), static_cast<NodeId>(b),
          static_cast<NodeId>(c)};
}

TriangleProblem::TriangleProblem(NodeId n) : n_(n) { MRCOST_CHECK(n >= 3); }

std::string TriangleProblem::name() const {
  std::ostringstream os;
  os << "triangles (n=" << n_ << ")";
  return os.str();
}

std::uint64_t TriangleProblem::num_inputs() const {
  return static_cast<std::uint64_t>(n_) * (n_ - 1) / 2;
}

std::uint64_t TriangleProblem::num_outputs() const {
  return common::BinomialExact(static_cast<int>(n_), 3);
}

std::vector<core::InputId> TriangleProblem::InputsOfOutput(
    core::OutputId output) const {
  const auto [a, b, c] = TripleUnrank(n_, output);
  return {PairRank(n_, a, b), PairRank(n_, a, c), PairRank(n_, b, c)};
}

TwoPathProblem::TwoPathProblem(NodeId n) : n_(n) { MRCOST_CHECK(n >= 3); }

std::string TwoPathProblem::name() const {
  std::ostringstream os;
  os << "2-paths (n=" << n_ << ")";
  return os.str();
}

std::uint64_t TwoPathProblem::num_inputs() const {
  return static_cast<std::uint64_t>(n_) * (n_ - 1) / 2;
}

std::uint64_t TwoPathProblem::num_outputs() const {
  return 3 * common::BinomialExact(static_cast<int>(n_), 3);
}

std::vector<core::InputId> TwoPathProblem::InputsOfOutput(
    core::OutputId output) const {
  const auto [a, b, c] = TripleUnrank(n_, output / 3);
  const int middle_index = static_cast<int>(output % 3);
  const NodeId mid = middle_index == 0 ? a : (middle_index == 1 ? b : c);
  const NodeId x = middle_index == 0 ? b : a;
  const NodeId y = middle_index == 2 ? b : c;
  // The 2-path x - mid - y needs edges {mid,x} and {mid,y}.
  return {PairRank(n_, std::min(mid, x), std::max(mid, x)),
          PairRank(n_, std::min(mid, y), std::max(mid, y))};
}

}  // namespace mrcost::graph
