#ifndef MRCOST_GRAPH_GENERATORS_H_
#define MRCOST_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/common/random.h"
#include "src/graph/graph.h"

namespace mrcost::graph {

/// K_n: all C(n,2) edges present — the model's worst-case instance
/// (Section 2.3: pretend all inputs are present).
Graph CompleteGraph(NodeId n);

/// Erdős–Rényi G(n, m): exactly m distinct edges sampled uniformly from the
/// C(n,2) possible ones. The random sparse instance of Section 4.2.
Graph RandomGnm(NodeId n, std::uint64_t m, std::uint64_t seed);

/// A cycle on n nodes (used for sample-graph tests).
Graph CycleGraph(NodeId n);

/// A path with `edges` edges (edges+1 nodes).
Graph PathGraph(NodeId edges);

/// A complete bipartite-free "social network"-like graph with a heavy
///-tailed degree distribution: preferential attachment, `attach` edges per
/// new node. Used by the examples as realistic sparse input.
Graph PreferentialAttachmentGraph(NodeId n, int attach, std::uint64_t seed);

/// A skewed random graph with directly tunable degree skew: up to m
/// distinct edges whose endpoints are drawn Zipf(`exponent`) over the n
/// nodes, so node 0 is a hub touching most edges at large exponents and
/// the graph degenerates to (loop-free) G(n, m)-like uniform sampling at
/// exponent 0. The cluster simulator's skew-injection input for the graph
/// family: hub nodes concentrate reducer load exactly the way the paper's
/// "curse of the last reducer" citation describes. May return fewer than m
/// edges when the skew concentrates samples on few distinct pairs.
Graph ZipfGraph(NodeId n, std::uint64_t m, double exponent,
                std::uint64_t seed);

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_GENERATORS_H_
