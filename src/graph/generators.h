#ifndef MRCOST_GRAPH_GENERATORS_H_
#define MRCOST_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/common/random.h"
#include "src/graph/graph.h"

namespace mrcost::graph {

/// K_n: all C(n,2) edges present — the model's worst-case instance
/// (Section 2.3: pretend all inputs are present).
Graph CompleteGraph(NodeId n);

/// Erdős–Rényi G(n, m): exactly m distinct edges sampled uniformly from the
/// C(n,2) possible ones. The random sparse instance of Section 4.2.
Graph RandomGnm(NodeId n, std::uint64_t m, std::uint64_t seed);

/// A cycle on n nodes (used for sample-graph tests).
Graph CycleGraph(NodeId n);

/// A path with `edges` edges (edges+1 nodes).
Graph PathGraph(NodeId edges);

/// A complete bipartite-free "social network"-like graph with a heavy
///-tailed degree distribution: preferential attachment, `attach` edges per
/// new node. Used by the examples as realistic sparse input.
Graph PreferentialAttachmentGraph(NodeId n, int attach, std::uint64_t seed);

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_GENERATORS_H_
