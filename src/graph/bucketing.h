#ifndef MRCOST_GRAPH_BUCKETING_H_
#define MRCOST_GRAPH_BUCKETING_H_

#include <cstdint>

#include "src/common/random.h"
#include "src/graph/graph.h"

namespace mrcost::graph {

/// The hash function `h` of the paper's bucket-based algorithms (Sections 4
/// and 5.4): maps nodes to `k` buckets, seeded for reproducibility. All
/// mappers and reducers of one job must share the same NodeBucketer.
class NodeBucketer {
 public:
  NodeBucketer(int k, std::uint64_t seed) : k_(k), seed_(seed) {
    MRCOST_CHECK(k >= 1);
  }

  int k() const { return k_; }

  int Bucket(NodeId node) const {
    return static_cast<int>(
        common::Mix64(static_cast<std::uint64_t>(node) + seed_ * 0x9e3779b9) %
        static_cast<std::uint64_t>(k_));
  }

 private:
  int k_;
  std::uint64_t seed_;
};

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_BUCKETING_H_
