#ifndef MRCOST_GRAPH_TRIANGLE_H_
#define MRCOST_GRAPH_TRIANGLE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/core/lower_bound.h"
#include "src/core/mapping_schema.h"
#include "src/engine/job.h"
#include "src/graph/bucketing.h"
#include "src/graph/graph.h"

namespace mrcost::graph {

/// A triangle as a sorted node triple.
using Triangle = std::array<NodeId, 3>;

/// Serial baseline: all triangles, by ordered adjacency intersection
/// (O(sum over edges of min-degree)). Sorted output.
std::vector<Triangle> SerialTriangles(const Graph& graph);
std::uint64_t SerialTriangleCount(const Graph& graph);

/// Global clustering coefficient 3*#triangles / #wedges (0 for wedge-free
/// graphs) — the community-structure statistic triangle counting feeds
/// (the paper's Section 4 motivation).
double GlobalClusteringCoefficient(const Graph& graph);

/// The partition mapping schema for triangle finding (Section 4.1's upper
/// bound, after [21]): nodes are hashed into k buckets; one reducer per
/// size-3 bucket multiset {i <= j <= l}; the possible edge {u,v} is sent to
/// every multiset containing both endpoint buckets — exactly k reducers, so
/// r = k. Over the complete domain each reducer holds Theta(n^2/k^2) edges.
class TrianglePartitionSchema final : public core::MappingSchema {
 public:
  /// `n` is the node-domain size (inputs are the C(n,2) possible edges).
  TrianglePartitionSchema(NodeId n, const NodeBucketer& bucketer);

  std::string name() const override;
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

 private:
  NodeId n_;
  NodeBucketer bucketer_;
};

/// Result of the map-reduce triangle enumeration.
struct TriangleJobResult {
  std::vector<Triangle> triangles;  // sorted
  engine::JobMetrics metrics;
};

/// Runs the partition algorithm on `graph` with k buckets. Every triangle
/// is emitted by exactly one reducer — the one whose bucket multiset equals
/// the triangle's — so the output needs no deduplication. Setting
/// `dedup_rule` to false disables that ownership check (used by the bench
/// ablation to demonstrate the duplicate blow-up it prevents).
TriangleJobResult MRTriangles(const Graph& graph, int k, std::uint64_t seed,
                              const engine::JobOptions& options = {},
                              bool dedup_rule = true);

/// Result of the two-round node-iterator triangle algorithm.
struct TriangleTwoRoundResult {
  std::vector<Triangle> triangles;  // sorted
  engine::PipelineMetrics metrics;  // wedge round, closing round
};

/// The two-round MR-NodeIterator algorithm of [21] (the paper's "curse of
/// the last reducer" reference): round 1 groups edges by node and emits
/// every wedge (2-path) centered there, keyed by its endpoint pair; round
/// 2 joins wedges against the edge set — a wedge whose endpoints are
/// adjacent closes a triangle.
///
/// Wedges are emitted only around each edge's *lower-degree* endpoint
/// (degrees are broadcast via the graph object), [21]'s mitigation of the
/// high-degree-node blowup; without it, round-2 communication is the full
/// wedge count, which explodes on skewed graphs. Set
/// `low_degree_ordering` to false to reproduce that blowup (bench
/// ablation). Contrast with the one-round MRTriangles: this algorithm
/// needs no replication in round 1 (r = 2, one key per edge endpoint) but
/// pays per-wedge communication in round 2 — a 1-vs-2-round tradeoff of
/// exactly the Section 6.3 flavor.
TriangleTwoRoundResult MRTrianglesNodeIterator(
    const Graph& graph, bool low_degree_ordering = true,
    const engine::JobOptions& options = {});

/// Section 4.1's recipe: g(q) = (sqrt(2)/3) q^{3/2}, |I| = C(n,2),
/// |O| = C(n,3); closed-form bound r >= n / sqrt(2 q).
core::Recipe TriangleRecipe(NodeId n);
double TriangleLowerBound(NodeId n, double q);

/// Section 4.2: the sparse-graph transformation. Given a desired expected
/// reducer load q on a random graph with m of the C(n,2) edges present, the
/// target possible-edge budget is q_t = q * C(n,2) / m, and the bound
/// becomes r = Omega(sqrt(m/q)).
double SparseTriangleTargetQ(NodeId n, std::uint64_t m, double q);
double SparseTriangleLowerBound(std::uint64_t m, double q);

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_TRIANGLE_H_
