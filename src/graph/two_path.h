#ifndef MRCOST_GRAPH_TWO_PATH_H_
#define MRCOST_GRAPH_TWO_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/lower_bound.h"
#include "src/core/mapping_schema.h"
#include "src/engine/job.h"
#include "src/graph/bucketing.h"
#include "src/graph/graph.h"

namespace mrcost::graph {

/// A path of length two: ends a < b, middle node `mid` (Section 5.4).
struct TwoPath {
  NodeId mid;
  NodeId a;
  NodeId b;

  bool operator==(const TwoPath& o) const {
    return mid == o.mid && a == o.a && b == o.b;
  }
  bool operator<(const TwoPath& o) const {
    if (mid != o.mid) return mid < o.mid;
    if (a != o.a) return a < o.a;
    return b < o.b;
  }
};

/// Serial baseline: all 2-paths (each once), sorted.
std::vector<TwoPath> SerialTwoPaths(const Graph& graph);
std::uint64_t SerialTwoPathCount(const Graph& graph);

/// The q = n algorithm of Section 5.4.2: one reducer per node; each edge is
/// sent to both endpoint reducers (r = 2); the reducer for u emits every
/// 2-path with middle u.
class TwoPathNodeSchema final : public core::MappingSchema {
 public:
  explicit TwoPathNodeSchema(NodeId n) : n_(n) {}
  std::string name() const override { return "2path-node"; }
  std::uint64_t num_reducers() const override { return n_; }
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

 private:
  NodeId n_;
};

/// The q < n algorithm of Section 5.4.2: reducers [u, {i, j}] for every
/// node u and unordered bucket pair i < j; the edge (a, b) goes to the
/// 2(k-1) reducers [b, {h(a), *}] and [a, {*, h(b)}]. Replication rate is
/// 2(k-1); over the complete domain each reducer receives ~2n/k edges.
class TwoPathBucketSchema final : public core::MappingSchema {
 public:
  /// Requires k >= 2.
  TwoPathBucketSchema(NodeId n, const NodeBucketer& bucketer);

  std::string name() const override;
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

 private:
  NodeId n_;
  NodeBucketer bucketer_;
};

struct TwoPathJobResult {
  std::vector<TwoPath> paths;  // sorted
  engine::JobMetrics metrics;
};

/// Runs the node algorithm (q = max degree, r = 2).
TwoPathJobResult MRTwoPathsNode(const Graph& graph,
                                const engine::JobOptions& options = {});

/// Runs the bucket-pair algorithm with k >= 2 buckets, using the paper's
/// tie-break rule so that each 2-path is emitted by exactly one reducer:
/// reducer [u, {i, j}] produces v-u-w iff {h(v), h(w)} == {i, j}, or
/// h(v) == h(w) == x in {i,j} and the other element is x+1 (mod k).
TwoPathJobResult MRTwoPathsBucket(const Graph& graph, int k,
                                  std::uint64_t seed,
                                  const engine::JobOptions& options = {});

/// Section 5.4.1's recipe: g(q) = C(q,2), |I| = C(n,2), |O| = 3 C(n,3);
/// closed-form bound r >= 2n/q (clamped below by 1).
core::Recipe TwoPathRecipe(NodeId n);
double TwoPathLowerBound(NodeId n, double q);

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_TWO_PATH_H_
