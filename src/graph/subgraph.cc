#include "src/graph/subgraph.h"

#include <algorithm>

#include "src/common/status.h"

namespace mrcost::graph {
namespace {

/// Orders pattern nodes so each (after the first) connects to an earlier
/// one when possible — standard backtracking heuristic.
std::vector<NodeId> ConnectivityOrder(const Graph& pattern) {
  const NodeId s = pattern.num_nodes();
  std::vector<NodeId> order;
  std::vector<bool> placed(s, false);
  order.reserve(s);
  for (NodeId start = 0; start < s; ++start) {
    if (placed[start]) continue;
    order.push_back(start);
    placed[start] = true;
    // Grow the component breadth-first.
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      for (NodeId nb : pattern.Neighbors(order[head])) {
        if (!placed[nb]) {
          placed[nb] = true;
          order.push_back(nb);
        }
      }
    }
  }
  return order;
}

}  // namespace

void ForEachEmbedding(
    const Graph& pattern, const Graph& data,
    const std::function<void(const std::vector<NodeId>&)>& fn) {
  const NodeId s = pattern.num_nodes();
  MRCOST_CHECK(s >= 1 && s <= 8);
  if (data.num_nodes() < s) return;

  const std::vector<NodeId> order = ConnectivityOrder(pattern);
  // For each position p, the pattern neighbors of order[p] that appear
  // earlier in the order (constraints to check when placing position p).
  std::vector<std::vector<int>> earlier_neighbors(s);
  {
    std::vector<int> position(s);
    for (int p = 0; p < static_cast<int>(s); ++p) position[order[p]] = p;
    for (int p = 0; p < static_cast<int>(s); ++p) {
      for (NodeId nb : pattern.Neighbors(order[p])) {
        if (position[nb] < p) earlier_neighbors[p].push_back(position[nb]);
      }
    }
  }

  std::vector<NodeId> assigned(s);       // by position in `order`
  std::vector<NodeId> mapping(s);        // by pattern node id
  std::vector<bool> used(data.num_nodes(), false);

  std::function<void(int)> recurse = [&](int p) {
    if (p == static_cast<int>(s)) {
      for (int i = 0; i < static_cast<int>(s); ++i) {
        mapping[order[i]] = assigned[i];
      }
      fn(mapping);
      return;
    }
    if (!earlier_neighbors[p].empty()) {
      // Candidates: data neighbors of the first constraining node.
      const NodeId anchor = assigned[earlier_neighbors[p][0]];
      for (NodeId cand : data.Neighbors(anchor)) {
        if (used[cand]) continue;
        bool ok = true;
        for (std::size_t c = 1; c < earlier_neighbors[p].size(); ++c) {
          if (!data.HasEdge(cand, assigned[earlier_neighbors[p][c]])) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        used[cand] = true;
        assigned[p] = cand;
        recurse(p + 1);
        used[cand] = false;
      }
    } else {
      // Unconstrained position (new component): try every unused node.
      for (NodeId cand = 0; cand < data.num_nodes(); ++cand) {
        if (used[cand]) continue;
        used[cand] = true;
        assigned[p] = cand;
        recurse(p + 1);
        used[cand] = false;
      }
    }
  };
  recurse(0);
}

std::uint64_t CountEmbeddings(const Graph& pattern, const Graph& data) {
  std::uint64_t count = 0;
  ForEachEmbedding(pattern, data,
                   [&count](const std::vector<NodeId>&) { ++count; });
  return count;
}

std::uint64_t CountAutomorphisms(const Graph& pattern) {
  return CountEmbeddings(pattern, pattern);
}

std::uint64_t CountInstances(const Graph& pattern, const Graph& data) {
  const std::uint64_t autos = CountAutomorphisms(pattern);
  MRCOST_CHECK(autos > 0);
  return CountEmbeddings(pattern, data) / autos;
}

}  // namespace mrcost::graph
