#include "src/graph/sample_graph_mr.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/combinatorics.h"
#include "src/common/status.h"
#include "src/graph/bucketing.h"
#include "src/graph/subgraph.h"

namespace mrcost::graph {
namespace {

/// Builds the local graph over exactly the nodes present in `edges`,
/// remapping node ids to a dense range; `local_to_global` gives the
/// inverse mapping.
Graph BuildLocalGraph(const std::vector<Edge>& edges,
                      std::vector<NodeId>& local_to_global) {
  std::unordered_map<NodeId, NodeId> global_to_local;
  local_to_global.clear();
  auto local_id = [&](NodeId g) {
    auto [it, inserted] =
        global_to_local.try_emplace(g, local_to_global.size());
    if (inserted) local_to_global.push_back(g);
    return it->second;
  };
  std::vector<Edge> local_edges;
  local_edges.reserve(edges.size());
  for (const Edge& e : edges) {
    local_edges.emplace_back(local_id(e.u), local_id(e.v));
  }
  return Graph(static_cast<NodeId>(local_to_global.size()),
               std::move(local_edges));
}

/// Canonical identity of an instance: the sorted list of its (global)
/// edges, hashed. Two embeddings are the same instance iff they use the
/// same edge set.
std::uint64_t InstanceFingerprint(std::vector<Edge> instance_edges) {
  std::sort(instance_edges.begin(), instance_edges.end());
  std::uint64_t h = 0x51ed270b0a5f2c1dULL;
  for (const Edge& e : instance_edges) {
    h = common::Mix64(h ^ e.Hash());
  }
  return h;
}

}  // namespace

SampleGraphPlan BuildSampleGraphPlan(const Graph& data, const Graph& pattern,
                                     int k, std::uint64_t seed) {
  const int s = static_cast<int>(pattern.num_nodes());
  MRCOST_CHECK(s >= 3 && s <= 5);
  for (NodeId v = 0; v < pattern.num_nodes(); ++v) {
    MRCOST_CHECK(pattern.Degree(v) > 0);  // no isolated pattern nodes
  }
  const NodeBucketer bucketer(k, seed);

  // Key = rank of the size-s bucket multiset; value = edge. The closures
  // outlive this function (the plan is lazy), so the bucketer and the
  // (small) pattern graph are captured by value.
  auto map_fn = [bucketer, k, s](const Edge& e,
                                 engine::Emitter<std::uint64_t, Edge>&
                                     emitter) {
    const int a = bucketer.Bucket(e.u);
    const int b = bucketer.Bucket(e.v);
    std::vector<std::uint64_t> keys;
    // Every multiset of size s containing {a, b}: append any size-(s-2)
    // multiset over the k buckets.
    common::ForEachSubsetOfSize(k + s - 3, s - 2, [&](const std::vector<int>&
                                                          combo) {
      // Convert the combination back to a multiset over buckets.
      std::vector<int> rest(combo.size());
      for (std::size_t i = 0; i < combo.size(); ++i) {
        rest[i] = combo[i] - static_cast<int>(i);
      }
      std::vector<int> multiset = rest;
      multiset.push_back(a);
      multiset.push_back(b);
      std::sort(multiset.begin(), multiset.end());
      keys.push_back(common::MultisetRank(k, multiset));
    });
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    // One batched hand-off for the edge's whole reducer fan-out.
    static thread_local engine::Emitter<std::uint64_t, Edge>::Batch batch;
    for (std::uint64_t key : keys) batch.emplace_back(key, e);
    emitter.EmitBatch(batch);
  };

  auto reduce_fn = [bucketer, pattern, k, s](const std::uint64_t& key,
                                             const std::vector<Edge>& edges,
                                             std::vector<std::uint64_t>& out) {
    const std::vector<int> owned = common::MultisetUnrank(k, s, key);
    std::vector<NodeId> local_to_global;
    const Graph local = BuildLocalGraph(edges, local_to_global);
    std::unordered_set<std::uint64_t> seen;
    std::uint64_t count = 0;
    ForEachEmbedding(pattern, local, [&](const std::vector<NodeId>& map) {
      // Ownership: the instance's node-bucket multiset must equal the
      // reducer's multiset, so exactly one reducer counts it.
      std::vector<int> buckets(s);
      for (int i = 0; i < s; ++i) {
        buckets[i] = bucketer.Bucket(local_to_global[map[i]]);
      }
      std::sort(buckets.begin(), buckets.end());
      if (buckets != owned) return;
      // Dedup the |Aut| embeddings of the same copy via its edge set.
      std::vector<Edge> instance_edges;
      instance_edges.reserve(pattern.num_edges());
      for (const Edge& pe : pattern.edges()) {
        instance_edges.emplace_back(local_to_global[map[pe.u]],
                                    local_to_global[map[pe.v]]);
      }
      if (seen.insert(InstanceFingerprint(std::move(instance_edges))).second) {
        ++count;
      }
    });
    if (count > 0) out.push_back(count);
  };

  engine::Plan plan;
  auto counts = plan.Source(data.edges(), "edges")
                    .Map<std::uint64_t, Edge>(map_fn, "bucket multisets")
                    .ReduceByKey<std::uint64_t>(reduce_fn);
  return SampleGraphPlan{std::move(plan), std::move(counts)};
}

SampleGraphJobResult MRSampleGraphInstances(const Graph& data,
                                            const Graph& pattern, int k,
                                            std::uint64_t seed,
                                            const engine::JobOptions& options) {
  auto plan = BuildSampleGraphPlan(data, pattern, k, seed);
  auto run = plan.counts.Execute(engine::ExecutionOptions(options));
  SampleGraphJobResult result;
  result.metrics = std::move(run.metrics.rounds[0]);
  for (std::uint64_t c : run.outputs) result.instance_count += c;
  return result;
}

}  // namespace mrcost::graph
