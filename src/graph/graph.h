#ifndef MRCOST_GRAPH_GRAPH_H_
#define MRCOST_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace mrcost::graph {

using NodeId = std::uint32_t;

/// An undirected edge, stored with u < v.
struct Edge {
  NodeId u;
  NodeId v;

  Edge() : u(0), v(0) {}
  Edge(NodeId a, NodeId b) : u(a < b ? a : b), v(a < b ? b : a) {}

  bool operator==(const Edge& other) const {
    return u == other.u && v == other.v;
  }
  bool operator<(const Edge& other) const {
    return u != other.u ? u < other.u : v < other.v;
  }

  std::uint64_t Hash() const {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
};

/// A simple undirected graph: `n` nodes (0..n-1) and a sorted, deduplicated
/// edge list. This is the "data graph" of Sections 4 and 5; the set of
/// *possible* edges (the model's hypothetical input domain) is all C(n,2)
/// node pairs, indexed by PairRank below.
class Graph {
 public:
  Graph() : n_(0) {}
  /// Normalizes: orients edges u < v, sorts, drops duplicates and loops.
  Graph(NodeId n, std::vector<Edge> edges);

  NodeId num_nodes() const { return n_; }
  std::uint64_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// True iff {u, v} is an edge (binary search; O(log m)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Neighbor lists (built lazily on construction).
  const std::vector<NodeId>& Neighbors(NodeId u) const {
    return adjacency_[u];
  }
  std::uint64_t Degree(NodeId u) const { return adjacency_[u].size(); }

 private:
  NodeId n_;
  std::vector<Edge> edges_;
  std::vector<std::vector<NodeId>> adjacency_;
};

/// Rank of the pair (u, v), u < v, among all C(n,2) pairs over n nodes, in
/// colexicographic-free standard order: pairs with smaller u first. This is
/// the input id of a possible edge in the model problems.
std::uint64_t PairRank(std::uint64_t n, std::uint64_t u, std::uint64_t v);

/// Inverse of PairRank.
std::pair<NodeId, NodeId> PairUnrank(std::uint64_t n, std::uint64_t rank);

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_GRAPH_H_
