#ifndef MRCOST_GRAPH_PROBLEM_H_
#define MRCOST_GRAPH_PROBLEM_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/problem.h"
#include "src/graph/graph.h"

namespace mrcost::graph {

/// The triangle-finding problem of Example 2.2 over an n-node domain:
/// inputs are the C(n,2) possible edges (ids = PairRank), outputs are the
/// C(n,3) node triples, each mapped to its three edges.
class TriangleProblem final : public core::Problem {
 public:
  explicit TriangleProblem(NodeId n);

  std::string name() const override;
  std::uint64_t num_inputs() const override;
  std::uint64_t num_outputs() const override;
  std::vector<core::InputId> InputsOfOutput(
      core::OutputId output) const override;

  NodeId n() const { return n_; }

 private:
  NodeId n_;
};

/// The 2-path problem of Section 5.4: inputs are the C(n,2) possible edges;
/// outputs are 3*C(n,3) — each node triple {a,b,c} yields three 2-paths,
/// one per choice of middle node. Output id = 3*triple_rank + middle_index.
class TwoPathProblem final : public core::Problem {
 public:
  explicit TwoPathProblem(NodeId n);

  std::string name() const override;
  std::uint64_t num_inputs() const override;
  std::uint64_t num_outputs() const override;
  std::vector<core::InputId> InputsOfOutput(
      core::OutputId output) const override;

  NodeId n() const { return n_; }

 private:
  NodeId n_;
};

/// Rank of the sorted triple (a < b < c) among C(n,3) triples; inverse
/// provided for output-id decoding.
std::uint64_t TripleRank(std::uint64_t n, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c);
std::array<NodeId, 3> TripleUnrank(std::uint64_t n, std::uint64_t rank);

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_PROBLEM_H_
