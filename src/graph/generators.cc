#include "src/graph/generators.h"

#include <unordered_set>
#include <vector>

namespace mrcost::graph {

Graph CompleteGraph(NodeId n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph(n, std::move(edges));
}

Graph RandomGnm(NodeId n, std::uint64_t m, std::uint64_t seed) {
  const std::uint64_t possible = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  MRCOST_CHECK(m <= possible);
  common::SplitMix64 rng(seed);
  std::vector<std::uint64_t> ranks =
      common::SampleWithoutReplacement(possible, m, rng);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t r : ranks) {
    auto [u, v] = PairUnrank(n, r);
    edges.emplace_back(u, v);
  }
  return Graph(n, std::move(edges));
}

Graph CycleGraph(NodeId n) {
  MRCOST_CHECK(n >= 3);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph(n, std::move(edges));
}

Graph PathGraph(NodeId edges_count) {
  std::vector<Edge> edges;
  edges.reserve(edges_count);
  for (NodeId i = 0; i < edges_count; ++i) edges.emplace_back(i, i + 1);
  return Graph(edges_count + 1, std::move(edges));
}

Graph PreferentialAttachmentGraph(NodeId n, int attach, std::uint64_t seed) {
  MRCOST_CHECK(attach >= 1 && n > static_cast<NodeId>(attach));
  common::SplitMix64 rng(seed);
  std::vector<Edge> edges;
  // Endpoint pool: each node appears once per incident edge, so sampling
  // from the pool is degree-proportional.
  std::vector<NodeId> pool;
  // Seed clique over the first attach+1 nodes.
  for (NodeId u = 0; u <= static_cast<NodeId>(attach); ++u) {
    for (NodeId v = u + 1; v <= static_cast<NodeId>(attach); ++v) {
      edges.emplace_back(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  for (NodeId u = attach + 1; u < n; ++u) {
    for (int e = 0; e < attach; ++e) {
      const NodeId target = pool[rng.UniformBelow(pool.size())];
      if (target == u) continue;  // skip loops; Graph dedups repeats
      edges.emplace_back(u, target);
      pool.push_back(u);
      pool.push_back(target);
    }
  }
  return Graph(n, std::move(edges));
}

Graph ZipfGraph(NodeId n, std::uint64_t m, double exponent,
                std::uint64_t seed) {
  MRCOST_CHECK(n >= 2);
  common::SplitMix64 rng(seed);
  const common::ZipfDistribution zipf(n, exponent);
  std::vector<Edge> edges;
  edges.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  // Rejection-sample distinct loop-free edges; the attempt cap bounds the
  // loop when heavy skew keeps landing on the same few hub pairs.
  const std::uint64_t max_attempts = 20 * m + 100;
  for (std::uint64_t attempt = 0;
       attempt < max_attempts && edges.size() < m; ++attempt) {
    const auto u = static_cast<NodeId>(zipf.Sample(rng));
    const auto v = static_cast<NodeId>(zipf.Sample(rng));
    if (u == v) continue;
    const Edge e(u, v);
    if (seen.insert(e.Hash()).second) edges.push_back(e);
  }
  return Graph(n, std::move(edges));
}

}  // namespace mrcost::graph
