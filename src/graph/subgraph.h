#ifndef MRCOST_GRAPH_SUBGRAPH_H_
#define MRCOST_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/graph/graph.h"

namespace mrcost::graph {

/// Calls `fn(mapping)` for every embedding (injective, edge-preserving map)
/// of `pattern`'s nodes into `data`'s nodes; mapping[i] is the data node
/// for pattern node i. Non-induced semantics: pattern edges must be data
/// edges, pattern non-edges are unconstrained — the subgraph-instance
/// notion of Section 5. Backtracking with adjacency pruning; intended for
/// pattern sizes s <= 8.
void ForEachEmbedding(const Graph& pattern, const Graph& data,
                      const std::function<void(const std::vector<NodeId>&)>& fn);

/// Number of embeddings of `pattern` in `data`.
std::uint64_t CountEmbeddings(const Graph& pattern, const Graph& data);

/// Number of distinct instances (copies) of `pattern` in `data`:
/// embeddings divided by |Aut(pattern)|. This is the quantity Alon's bound
/// O(m^{s/2}) (Section 5.2) controls.
std::uint64_t CountInstances(const Graph& pattern, const Graph& data);

/// |Aut(pattern)| = number of embeddings of the pattern into itself.
std::uint64_t CountAutomorphisms(const Graph& pattern);

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_SUBGRAPH_H_
