#include "src/graph/triangle.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/common/combinatorics.h"

namespace mrcost::graph {

std::vector<Triangle> SerialTriangles(const Graph& graph) {
  std::vector<Triangle> out;
  // For each edge (u,v), intersect the higher-numbered neighbors so each
  // triangle is found exactly once at its lexicographically least edge.
  for (const Edge& e : graph.edges()) {
    const auto& nu = graph.Neighbors(e.u);
    const auto& nv = graph.Neighbors(e.v);
    auto iu = std::upper_bound(nu.begin(), nu.end(), e.v);
    auto iv = std::upper_bound(nv.begin(), nv.end(), e.v);
    while (iu != nu.end() && iv != nv.end()) {
      if (*iu < *iv) {
        ++iu;
      } else if (*iv < *iu) {
        ++iv;
      } else {
        out.push_back({e.u, e.v, *iu});
        ++iu;
        ++iv;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t SerialTriangleCount(const Graph& graph) {
  return SerialTriangles(graph).size();
}

double GlobalClusteringCoefficient(const Graph& graph) {
  std::uint64_t wedges = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const std::uint64_t d = graph.Degree(u);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(SerialTriangleCount(graph)) /
         static_cast<double>(wedges);
}

TrianglePartitionSchema::TrianglePartitionSchema(NodeId n,
                                                 const NodeBucketer& bucketer)
    : n_(n), bucketer_(bucketer) {}

std::string TrianglePartitionSchema::name() const {
  std::ostringstream os;
  os << "triangle-partition(k=" << bucketer_.k() << ")";
  return os.str();
}

std::uint64_t TrianglePartitionSchema::num_reducers() const {
  return common::MultisetCount(bucketer_.k(), 3);
}

std::vector<core::ReducerId> TrianglePartitionSchema::ReducersOfInput(
    core::InputId input) const {
  const auto [u, v] = PairUnrank(n_, input);
  const int a = bucketer_.Bucket(u);
  const int b = bucketer_.Bucket(v);
  std::vector<core::ReducerId> out;
  out.reserve(bucketer_.k());
  // All size-3 bucket multisets containing {a, b}: one per choice of the
  // third bucket. Each choice yields a distinct multiset, so r = k exactly.
  for (int x = 0; x < bucketer_.k(); ++x) {
    std::array<int, 3> t = {a, b, x};
    std::sort(t.begin(), t.end());
    out.push_back(common::MultisetRank(bucketer_.k(),
                                       std::vector<int>{t[0], t[1], t[2]}));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TriangleJobResult MRTriangles(const Graph& graph, int k, std::uint64_t seed,
                              const engine::JobOptions& options,
                              bool dedup_rule) {
  const NodeBucketer bucketer(k, seed);

  // Key = rank of the sorted bucket multiset; value = the edge.
  auto map_fn = [&bucketer](const Edge& e,
                            engine::Emitter<std::uint64_t, Edge>& emitter) {
    const int a = bucketer.Bucket(e.u);
    const int b = bucketer.Bucket(e.v);
    std::vector<std::uint64_t> keys;
    keys.reserve(bucketer.k());
    for (int x = 0; x < bucketer.k(); ++x) {
      std::array<int, 3> t = {a, b, x};
      std::sort(t.begin(), t.end());
      keys.push_back(common::MultisetRank(
          bucketer.k(), std::vector<int>{t[0], t[1], t[2]}));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (std::uint64_t key : keys) emitter.Emit(key, e);
  };

  auto reduce_fn = [&bucketer, k, dedup_rule](
                       const std::uint64_t& key,
                       const std::vector<Edge>& edges,
                       std::vector<Triangle>& out) {
    const std::vector<int> owned = common::MultisetUnrank(k, 3, key);
    // Local adjacency over the nodes present in this reducer.
    std::unordered_map<NodeId, std::vector<NodeId>> adj;
    std::unordered_set<std::uint64_t> edge_set;
    for (const Edge& e : edges) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
      edge_set.insert(e.Hash());
    }
    for (auto& [node, neighbors] : adj) {
      std::sort(neighbors.begin(), neighbors.end());
      neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                      neighbors.end());
    }
    for (const Edge& e : edges) {
      // Extend each edge by common higher neighbors, as in the serial
      // algorithm, so each triangle appears once per reducer.
      const auto& nu = adj[e.u];
      const auto& nv = adj[e.v];
      auto iu = std::upper_bound(nu.begin(), nu.end(), e.v);
      auto iv = std::upper_bound(nv.begin(), nv.end(), e.v);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          const NodeId w = *iu;
          ++iu;
          ++iv;
          if (dedup_rule) {
            // Ownership: emit only if this triangle's bucket multiset is
            // exactly the reducer's multiset. Exactly one reducer passes
            // this test per triangle.
            std::array<int, 3> t = {bucketer.Bucket(e.u),
                                    bucketer.Bucket(e.v), bucketer.Bucket(w)};
            std::sort(t.begin(), t.end());
            if (t[0] != owned[0] || t[1] != owned[1] || t[2] != owned[2]) {
              continue;
            }
          }
          out.push_back({e.u, e.v, w});
        }
      }
    }
  };

  auto job = engine::RunMapReduce<Edge, std::uint64_t, Edge, Triangle>(
      graph.edges(), map_fn, reduce_fn, options);
  std::sort(job.outputs.begin(), job.outputs.end());
  return TriangleJobResult{std::move(job.outputs), std::move(job.metrics)};
}

TriangleTwoRoundResult MRTrianglesNodeIterator(
    const Graph& graph, bool low_degree_ordering,
    const engine::JobOptions& options) {
  // A wedge record: endpoints (a < b by id) with the middle node; edge
  // records reuse the key with a marker value.
  constexpr NodeId kEdgeMarker = 0xFFFFFFFFu;

  // Total order for pivot selection: by (degree, id) when mitigating
  // skew, so high-degree nodes center few wedges.
  auto precedes = [&graph, low_degree_ordering](NodeId x, NodeId y) {
    if (!low_degree_ordering) return false;  // placeholder, unused
    const std::uint64_t dx = graph.Degree(x);
    const std::uint64_t dy = graph.Degree(y);
    return dx != dy ? dx < dy : x < y;
  };

  // ---- Round 1: group edges around pivot nodes and emit wedges.
  auto map1 = [&](const Edge& e, engine::Emitter<NodeId, NodeId>& emitter) {
    if (low_degree_ordering) {
      // The edge lives only at its smaller endpoint in the (degree, id)
      // order; the value is the other endpoint.
      if (precedes(e.u, e.v)) {
        emitter.Emit(e.u, e.v);
      } else {
        emitter.Emit(e.v, e.u);
      }
    } else {
      emitter.Emit(e.u, e.v);
      emitter.Emit(e.v, e.u);
    }
  };
  struct Wedge {
    NodeId a;
    NodeId b;
    NodeId middle;
  };
  auto reduce1 = [](const NodeId& pivot, const std::vector<NodeId>& ends,
                    std::vector<Wedge>& out) {
    std::vector<NodeId> sorted = ends;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      for (std::size_t j = i + 1; j < sorted.size(); ++j) {
        out.push_back(Wedge{sorted[i], sorted[j], pivot});
      }
    }
  };
  auto round1 = engine::RunMapReduce<Edge, NodeId, NodeId, Wedge>(
      graph.edges(), map1, reduce1, options);

  // ---- Round 2: join wedges with the edge set; a present closing edge
  // turns each wedge into a triangle.
  struct Record {
    Edge key;
    NodeId middle;  // kEdgeMarker for edge records
  };
  std::vector<Record> round2_inputs;
  round2_inputs.reserve(round1.outputs.size() + graph.num_edges());
  for (const Wedge& w : round1.outputs) {
    round2_inputs.push_back(Record{Edge(w.a, w.b), w.middle});
  }
  for (const Edge& e : graph.edges()) {
    round2_inputs.push_back(Record{e, kEdgeMarker});
  }
  auto map2 = [](const Record& r, engine::Emitter<Edge, NodeId>& emitter) {
    emitter.Emit(r.key, r.middle);
  };
  auto reduce2 = [low_degree_ordering](const Edge& key,
                                       const std::vector<NodeId>& values,
                                       std::vector<Triangle>& out) {
    bool edge_present = false;
    for (NodeId v : values) {
      if (v == kEdgeMarker) {
        edge_present = true;
        break;
      }
    }
    if (!edge_present) return;
    for (NodeId middle : values) {
      if (middle == kEdgeMarker) continue;
      Triangle t = {key.u, key.v, middle};
      std::sort(t.begin(), t.end());
      if (!low_degree_ordering && middle != t[0]) {
        // Ablation mode centers every triangle at all three middles; keep
        // only the id-minimal one so the output stays duplicate-free (the
        // communication blowup remains visible in the metrics).
        continue;
      }
      out.push_back(t);
    }
  };
  auto round2 = engine::RunMapReduce<Record, Edge, NodeId, Triangle>(
      round2_inputs, map2, reduce2, options);

  TriangleTwoRoundResult result;
  std::sort(round2.outputs.begin(), round2.outputs.end());
  result.triangles = std::move(round2.outputs);
  result.metrics.Add(std::move(round1.metrics));
  result.metrics.Add(std::move(round2.metrics));
  return result;
}

core::Recipe TriangleRecipe(NodeId n) {
  core::Recipe recipe;
  recipe.problem_name = "triangles";
  recipe.g = [](double q) { return std::sqrt(2.0) / 3.0 * std::pow(q, 1.5); };
  recipe.num_inputs = static_cast<double>(n) * (n - 1) / 2.0;
  recipe.num_outputs =
      static_cast<double>(n) * (n - 1) * (n - 2) / 6.0;
  return recipe;
}

double TriangleLowerBound(NodeId n, double q) {
  return static_cast<double>(n) / std::sqrt(2.0 * q);
}

double SparseTriangleTargetQ(NodeId n, std::uint64_t m, double q) {
  const double possible = static_cast<double>(n) * (n - 1) / 2.0;
  return q * possible / static_cast<double>(m);
}

double SparseTriangleLowerBound(std::uint64_t m, double q) {
  return std::sqrt(static_cast<double>(m) / q);
}

}  // namespace mrcost::graph
