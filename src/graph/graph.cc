#include "src/graph/graph.h"

#include <algorithm>

namespace mrcost::graph {

Graph::Graph(NodeId n, std::vector<Edge> edges) : n_(n) {
  edges_.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;  // drop loops
    MRCOST_CHECK(e.v < n);
    edges_.push_back(e);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  adjacency_.resize(n);
  for (const Edge& e : edges_) {
    adjacency_[e.u].push_back(e.v);
    adjacency_[e.v].push_back(e.u);
  }
  for (auto& neighbors : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u == v) return false;
  const Edge e(u, v);
  return std::binary_search(edges_.begin(), edges_.end(), e);
}

std::uint64_t PairRank(std::uint64_t n, std::uint64_t u, std::uint64_t v) {
  MRCOST_CHECK(u < v && v < n);
  // Pairs with first element < u: sum_{i<u} (n-1-i) = u*n - u(u+1)/2.
  return u * n - u * (u + 1) / 2 + (v - u - 1);
}

std::pair<NodeId, NodeId> PairUnrank(std::uint64_t n, std::uint64_t rank) {
  std::uint64_t u = 0;
  std::uint64_t row = n - 1;  // pairs with this u
  while (rank >= row) {
    rank -= row;
    ++u;
    --row;
  }
  return {static_cast<NodeId>(u), static_cast<NodeId>(u + 1 + rank)};
}

}  // namespace mrcost::graph
