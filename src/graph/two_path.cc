#include "src/graph/two_path.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/common/combinatorics.h"

namespace mrcost::graph {

std::vector<TwoPath> SerialTwoPaths(const Graph& graph) {
  std::vector<TwoPath> out;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto& neighbors = graph.Neighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        out.push_back(TwoPath{u, neighbors[i], neighbors[j]});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t SerialTwoPathCount(const Graph& graph) {
  std::uint64_t count = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const std::uint64_t d = graph.Degree(u);
    count += d * (d - 1) / 2;
  }
  return count;
}

std::vector<core::ReducerId> TwoPathNodeSchema::ReducersOfInput(
    core::InputId input) const {
  const auto [u, v] = PairUnrank(n_, input);
  return {u, v};
}

TwoPathBucketSchema::TwoPathBucketSchema(NodeId n,
                                         const NodeBucketer& bucketer)
    : n_(n), bucketer_(bucketer) {
  MRCOST_CHECK(bucketer.k() >= 2);
}

std::string TwoPathBucketSchema::name() const {
  std::ostringstream os;
  os << "2path-bucket(k=" << bucketer_.k() << ")";
  return os.str();
}

std::uint64_t TwoPathBucketSchema::num_reducers() const {
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(bucketer_.k()) * (bucketer_.k() - 1) / 2;
  return static_cast<std::uint64_t>(n_) * pairs;
}

std::vector<core::ReducerId> TwoPathBucketSchema::ReducersOfInput(
    core::InputId input) const {
  const auto [a, b] = PairUnrank(n_, input);
  const int k = bucketer_.k();
  const std::uint64_t pairs_per_node =
      static_cast<std::uint64_t>(k) * (k - 1) / 2;
  std::vector<core::ReducerId> out;
  out.reserve(2 * (k - 1));
  auto add = [&](NodeId u, int i, int x) {
    const int lo = std::min(i, x);
    const int hi = std::max(i, x);
    out.push_back(static_cast<std::uint64_t>(u) * pairs_per_node +
                  PairRank(k, lo, hi));
  };
  const int ha = bucketer_.Bucket(a);
  const int hb = bucketer_.Bucket(b);
  for (int x = 0; x < k; ++x) {
    if (x != ha) add(b, ha, x);  // [b, {h(a), *}]
    if (x != hb) add(a, hb, x);  // [a, {*, h(b)}]
  }
  return out;
}

TwoPathJobResult MRTwoPathsNode(const Graph& graph,
                                const engine::JobOptions& options) {
  // Key = middle-node candidate; value = the other endpoint.
  auto map_fn = [](const Edge& e,
                   engine::Emitter<NodeId, NodeId>& emitter) {
    emitter.Emit(e.u, e.v);
    emitter.Emit(e.v, e.u);
  };
  auto reduce_fn = [](const NodeId& mid, const std::vector<NodeId>& ends,
                      std::vector<TwoPath>& out) {
    std::vector<NodeId> sorted = ends;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      for (std::size_t j = i + 1; j < sorted.size(); ++j) {
        out.push_back(TwoPath{mid, sorted[i], sorted[j]});
      }
    }
  };
  auto job = engine::RunMapReduce<Edge, NodeId, NodeId, TwoPath>(
      graph.edges(), map_fn, reduce_fn, options);
  std::sort(job.outputs.begin(), job.outputs.end());
  return TwoPathJobResult{std::move(job.outputs), std::move(job.metrics)};
}

TwoPathJobResult MRTwoPathsBucket(const Graph& graph, int k,
                                  std::uint64_t seed,
                                  const engine::JobOptions& options) {
  MRCOST_CHECK(k >= 2);
  const NodeBucketer bucketer(k, seed);
  using Key = std::pair<NodeId, std::uint32_t>;  // (middle, bucket-pair rank)

  auto pair_rank = [k](int i, int x) {
    const int lo = std::min(i, x);
    const int hi = std::max(i, x);
    return static_cast<std::uint32_t>(PairRank(k, lo, hi));
  };

  auto map_fn = [&](const Edge& e, engine::Emitter<Key, NodeId>& emitter) {
    const int ha = bucketer.Bucket(e.u);
    const int hb = bucketer.Bucket(e.v);
    for (int x = 0; x < k; ++x) {
      // Edge (a,b) reaches [b, {h(a), *}] and [a, {*, h(b)}] (Sec. 5.4.2).
      if (x != ha) emitter.Emit({e.v, pair_rank(ha, x)}, e.u);
      if (x != hb) emitter.Emit({e.u, pair_rank(hb, x)}, e.v);
    }
  };

  auto reduce_fn = [&](const Key& key, const std::vector<NodeId>& ends,
                       std::vector<TwoPath>& out) {
    const auto [i, j] = PairUnrank(k, key.second);
    std::vector<NodeId> sorted = ends;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (std::size_t x = 0; x < sorted.size(); ++x) {
      for (std::size_t y = x + 1; y < sorted.size(); ++y) {
        const NodeId v = sorted[x];
        const NodeId w = sorted[y];
        const int hv = bucketer.Bucket(v);
        const int hw = bucketer.Bucket(w);
        bool emit = false;
        if (hv != hw) {
          // Produced by the unique reducer whose set is {h(v), h(w)}.
          emit = (std::min(hv, hw) == static_cast<int>(i) &&
                  std::max(hv, hw) == static_cast<int>(j));
        } else {
          // h(v) == h(w) == x: produced where the other element is x+1
          // (mod k), the paper's tie-break.
          const int c = hv;
          const int other =
              c == static_cast<int>(i) ? static_cast<int>(j)
                                       : static_cast<int>(i);
          emit = (c == static_cast<int>(i) || c == static_cast<int>(j)) &&
                 other == (c + 1) % k;
        }
        if (emit) out.push_back(TwoPath{key.first, v, w});
      }
    }
  };

  auto job = engine::RunMapReduce<Edge, Key, NodeId, TwoPath>(
      graph.edges(), map_fn, reduce_fn, options);
  std::sort(job.outputs.begin(), job.outputs.end());
  return TwoPathJobResult{std::move(job.outputs), std::move(job.metrics)};
}

core::Recipe TwoPathRecipe(NodeId n) {
  core::Recipe recipe;
  recipe.problem_name = "2-paths";
  recipe.g = [](double q) { return q * (q - 1) / 2.0; };
  recipe.num_inputs = static_cast<double>(n) * (n - 1) / 2.0;
  recipe.num_outputs = 3.0 * common::BinomialDouble(static_cast<int>(n), 3);
  return recipe;
}

double TwoPathLowerBound(NodeId n, double q) {
  return std::max(1.0, 2.0 * static_cast<double>(n) / q);
}

}  // namespace mrcost::graph
