#ifndef MRCOST_GRAPH_ALON_H_
#define MRCOST_GRAPH_ALON_H_

#include "src/core/lower_bound.h"
#include "src/graph/graph.h"

namespace mrcost::graph {

/// Decides membership in the Alon class of sample graphs (Section 5.1):
/// the node set must admit a partition into disjoint parts such that each
/// part's induced subgraph is either
///   (1) a single edge between two nodes, or
///   (2) has an odd-length Hamiltonian cycle (so the part size is odd).
/// Exhaustive search; intended for sample graphs with <= 10 nodes.
///
/// Known members exercised by tests: every cycle, every graph with a
/// perfect matching, every complete graph, odd-length paths. Known
/// non-member: paths of even length (e.g., the 2-path).
bool InAlonClass(const Graph& sample);

/// Section 5.2's recipe for an Alon-class sample graph with s nodes over an
/// n-node data domain: g(q) = q^{s/2}, |I| = C(n,2), |O| = n^s / |Aut| (we
/// use n^s/s! as the paper's conservative count); closed-form bound
/// r = Omega((n/sqrt(q))^{s-2}).
core::Recipe AlonSampleRecipe(NodeId n, int s);
double AlonSampleLowerBound(NodeId n, int s, double q);

/// Section 5.3's edge-scaled form: r = Omega((sqrt(m/q))^{s-2}).
double AlonSampleEdgeLowerBound(std::uint64_t m, int s, double q);

/// The Section 5.3 recipe in edge coordinates, for sparse instances with m
/// edges: g(q) = q^{s/2}, |I| = m, |O| = m^{s/2} — Equation 4 then yields
/// exactly the closed form r >= (sqrt(m/q))^{s-2} above, so sparse
/// reproductions can go through the generic CompareToLowerBound machinery.
core::Recipe AlonSampleEdgeRecipe(std::uint64_t m, int s);

}  // namespace mrcost::graph

#endif  // MRCOST_GRAPH_ALON_H_
