#include "src/hamming/coverage.h"

#include <algorithm>
#include <vector>

#include "src/common/combinatorics.h"
#include "src/common/status.h"
#include "src/hamming/bitstring.h"

namespace mrcost::hamming {
namespace {

/// DFS state for the exact search: strings are considered in increasing
/// numeric order; `chosen` is the current subset.
struct SearchState {
  int b;
  int d;
  int q;
  std::uint64_t domain;      // 2^b
  std::uint64_t max_degree;  // C(b, d): neighbors per string
  std::vector<BitString> chosen;
  std::uint64_t best = 0;
};

/// Pairs the next `remaining` picks can add at most: the i-th additional
/// string can pair with min(existing + i - 1, max_degree) others.
std::uint64_t OptimisticGain(const SearchState& s, int remaining) {
  std::uint64_t gain = 0;
  const std::uint64_t existing = s.chosen.size();
  for (int i = 0; i < remaining; ++i) {
    gain += std::min<std::uint64_t>(existing + i, s.max_degree);
  }
  return gain;
}

void Dfs(SearchState& s, BitString next, std::uint64_t pairs) {
  if (static_cast<int>(s.chosen.size()) == s.q) {
    s.best = std::max(s.best, pairs);
    return;
  }
  const int remaining = s.q - static_cast<int>(s.chosen.size());
  if (pairs + OptimisticGain(s, remaining) <= s.best) return;  // prune
  // Not enough strings left to fill the subset?
  if (s.domain - next < static_cast<std::uint64_t>(remaining)) return;
  for (BitString w = next; w < s.domain; ++w) {
    std::uint64_t gained = 0;
    for (BitString u : s.chosen) {
      if (HammingDistance(u, w) == s.d) ++gained;
    }
    s.chosen.push_back(w);
    Dfs(s, w + 1, pairs + gained);
    s.chosen.pop_back();
    // Re-check the bound as best may have improved.
    if (pairs + OptimisticGain(s, remaining) <= s.best) return;
  }
}

}  // namespace

std::uint64_t ExactMaxCoverage(int b, int d, int q) {
  MRCOST_CHECK(b >= 1 && b <= 6);  // exact search is exponential
  MRCOST_CHECK(d >= 1 && d <= b);
  MRCOST_CHECK(q >= 1);
  const std::uint64_t domain = std::uint64_t{1} << b;
  if (static_cast<std::uint64_t>(q) >= domain) {
    // Whole domain: count all pairs at distance exactly d.
    return common::BinomialExact(b, d) * (domain / 2);
  }
  if (q == 1) return 0;
  SearchState s;
  s.b = b;
  s.d = d;
  s.q = q;
  s.domain = domain;
  s.max_degree = common::BinomialExact(b, d);
  // Seed with the greedy solution so pruning bites immediately.
  s.best = GreedyCoverage(b, d, q);
  // WLOG the subset contains 0: XOR-translation by any member maps any
  // optimal subset to one containing 0 without changing pair distances.
  s.chosen.push_back(0);
  Dfs(s, 1, 0);
  return s.best;
}

std::uint64_t GreedyCoverage(int b, int d, int q) {
  MRCOST_CHECK(b >= 1 && b <= 20);
  MRCOST_CHECK(d >= 1 && d <= b);
  MRCOST_CHECK(q >= 1);
  const std::uint64_t domain = std::uint64_t{1} << b;
  std::vector<BitString> chosen{0};
  std::vector<bool> in_set(domain, false);
  in_set[0] = true;
  std::uint64_t pairs = 0;
  while (chosen.size() < static_cast<std::size_t>(q) &&
         chosen.size() < domain) {
    BitString best_w = 0;
    std::int64_t best_gain = -1;
    for (BitString w = 0; w < domain; ++w) {
      if (in_set[w]) continue;
      std::int64_t gain = 0;
      for (BitString u : chosen) {
        if (HammingDistance(u, w) == d) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_w = w;
      }
    }
    chosen.push_back(best_w);
    in_set[best_w] = true;
    pairs += static_cast<std::uint64_t>(best_gain);
  }
  return pairs;
}

}  // namespace mrcost::hamming
