#include "src/hamming/problem.h"

#include <sstream>

#include "src/common/combinatorics.h"
#include "src/common/status.h"

namespace mrcost::hamming {

HammingProblem::HammingProblem(int b, int d) : b_(b), d_(d) {
  MRCOST_CHECK(b >= 1 && b <= 16);
  MRCOST_CHECK(d >= 1 && d <= b);
  const std::uint64_t n = std::uint64_t{1} << b;
  // Enumerate pairs once: for every string u and every weight-d flip mask,
  // keep the pair with u < v to count each unordered pair exactly once.
  common::ForEachSubsetOfSize(b, d, [&](const std::vector<int>& bits) {
    BitString mask = 0;
    for (int i : bits) mask |= BitString{1} << i;
    for (std::uint64_t u = 0; u < n; ++u) {
      const BitString v = u ^ mask;
      if (u < v) pairs_.emplace_back(u, v);
    }
  });
}

std::string HammingProblem::name() const {
  std::ostringstream os;
  os << "hamming-distance-" << d_ << " (b=" << b_ << ")";
  return os.str();
}

}  // namespace mrcost::hamming
