#ifndef MRCOST_HAMMING_BOUNDS_H_
#define MRCOST_HAMMING_BOUNDS_H_

#include "src/core/lower_bound.h"

namespace mrcost::hamming {

/// Lemma 3.1: a reducer with q inputs covers at most (q/2) log2(q) outputs
/// of the Hamming-distance-1 problem. Defined as 0 for q <= 1.
double Hamming1CoverBound(double q);

/// The Section 2.4 recipe instantiated for Hamming distance 1 on b-bit
/// strings: g(q) = (q/2) log2 q, |I| = 2^b, |O| = (b/2) 2^b.
core::Recipe Hamming1Recipe(int b);

/// Theorem 3.2's closed form: r >= b / log2(q). Requires q > 1.
double Hamming1LowerBound(int b, double q);

/// The Section 3.4 estimate of the most populous cell of the 2-D weight
/// schema: q ~= k^2 2^b / (pi b).
double Weight2DCellEstimate(int b, int k);

/// The Section 3.5 estimate for d dimensions:
/// q ~= k^d 2^b / (b^{d/2} (2 pi / d)^{d/2}).
double WeightKDCellEstimate(int b, int d, int k);

/// Section 3.6's approximation of the distance-d Splitting replication:
/// r = C(k,d) ~= (e k / d)^d for k >> d.
double SplittingDistanceDReplicationEstimate(int k, int d);

}  // namespace mrcost::hamming

#endif  // MRCOST_HAMMING_BOUNDS_H_
