#include "src/hamming/bitstring.h"

#include <unordered_set>

#include "src/common/random.h"
#include "src/common/status.h"

namespace mrcost::hamming {

std::vector<BitString> NeighborsAtDistance1(BitString w, int b) {
  std::vector<BitString> out;
  out.reserve(b);
  for (int i = 0; i < b; ++i) {
    out.push_back(w ^ (BitString{1} << i));
  }
  return out;
}

std::vector<BitString> AllStrings(int b) {
  MRCOST_CHECK(b >= 1 && b <= 24);
  const std::uint64_t n = std::uint64_t{1} << b;
  std::vector<BitString> out;
  out.reserve(n);
  for (std::uint64_t w = 0; w < n; ++w) out.push_back(w);
  return out;
}

std::vector<BitString> SkewedStrings(int b, std::size_t n,
                                     std::size_t num_hubs, double exponent,
                                     std::uint64_t seed) {
  MRCOST_CHECK(b >= 1 && b <= 32);
  MRCOST_CHECK(num_hubs >= 1);
  MRCOST_CHECK(n >= 1 && n <= (std::uint64_t{1} << b));
  common::SplitMix64 rng(seed);
  const BitString mask = (BitString{1} << b) - 1;

  std::vector<BitString> hubs(num_hubs);
  for (BitString& h : hubs) h = rng.Next() & mask;
  const common::ZipfDistribution zipf(num_hubs, exponent);

  std::unordered_set<BitString> seen;
  std::vector<BitString> out;
  out.reserve(n);
  auto add = [&](BitString w) {
    if (seen.insert(w).second) out.push_back(w);
  };
  // Cluster pass: Zipf-pick a hub, flip 1..3 random bits. Distinctness can
  // stall near a saturated hub ball, so cap the attempts...
  for (std::uint64_t attempt = 0; attempt < 40 * n && out.size() < n;
       ++attempt) {
    BitString w = hubs[zipf.Sample(rng)];
    const int flips = 1 + static_cast<int>(rng.UniformBelow(3));
    for (int f = 0; f < flips; ++f) {
      w ^= BitString{1} << rng.UniformBelow(static_cast<std::uint64_t>(b));
    }
    add(w);
  }
  // ...and top up with uniform strings (always distinct eventually, since
  // n <= 2^b).
  while (out.size() < n) add(rng.Next() & mask);
  return out;
}

}  // namespace mrcost::hamming
