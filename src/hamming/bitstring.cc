#include "src/hamming/bitstring.h"

#include "src/common/status.h"

namespace mrcost::hamming {

std::vector<BitString> NeighborsAtDistance1(BitString w, int b) {
  std::vector<BitString> out;
  out.reserve(b);
  for (int i = 0; i < b; ++i) {
    out.push_back(w ^ (BitString{1} << i));
  }
  return out;
}

std::vector<BitString> AllStrings(int b) {
  MRCOST_CHECK(b >= 1 && b <= 24);
  const std::uint64_t n = std::uint64_t{1} << b;
  std::vector<BitString> out;
  out.reserve(n);
  for (std::uint64_t w = 0; w < n; ++w) out.push_back(w);
  return out;
}

}  // namespace mrcost::hamming
