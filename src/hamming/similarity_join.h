#ifndef MRCOST_HAMMING_SIMILARITY_JOIN_H_
#define MRCOST_HAMMING_SIMILARITY_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/engine/plan.h"
#include "src/hamming/bitstring.h"

namespace mrcost::hamming {

/// Result of a map-reduce similarity join: the matching pairs (u < v, each
/// exactly once) plus the exact communication metrics of the round.
struct SimilarityJoinResult {
  std::vector<std::pair<BitString, BitString>> pairs;
  engine::JobMetrics metrics;
};

/// The similarity join as a lazy engine::Plan: the typed dataset of result
/// pairs (unsorted; the executing wrappers below sort) plus the plan
/// handle for Estimate / Explain before anything runs. `strings` is copied
/// into the plan's source.
struct SimilarityJoinPlan {
  engine::Plan plan;
  engine::Dataset<std::pair<BitString, BitString>> pairs;
};

/// Builds (without running) the Splitting-schema join plan. The stage
/// carries the schema's analytic estimate — r = C(k,d) and
/// C(k,d) * 2^(b - d*b/k) reducers, Section 3.6's exact numbers on the
/// full domain — so Plan::Estimate prices it without sampling.
common::Result<SimilarityJoinPlan> BuildSplittingSimilarityJoinPlan(
    const std::vector<BitString>& strings, int b, int k, int d);

/// Builds (without running) the Ball-2 join plan; r = b + 1 declared, the
/// data-dependent reducer count left to sampling.
common::Result<SimilarityJoinPlan> BuildBallSimilarityJoinPlan(
    const std::vector<BitString>& strings, int b, int d);

/// Map-reduce fuzzy join via the distance-d Splitting schema (Sections 3.3
/// and 3.6): finds all unordered pairs of distinct strings in `strings`
/// (bit strings of length b) at Hamming distance in [1, d]. Each string is
/// replicated to C(k,d) reducers; a pair is emitted by exactly one reducer
/// (the lexicographically least deleted-segment set covering the pair's
/// differing segments), so no post-hoc deduplication is needed.
///
/// Requires k | b and 1 <= d < k. `strings` must be distinct.
common::Result<SimilarityJoinResult> SplittingSimilarityJoin(
    const std::vector<BitString>& strings, int b, int k, int d,
    const engine::JobOptions& options = {});

/// Map-reduce fuzzy join via the Ball-2 algorithm of Section 3.6 (from
/// [3]): one reducer per center string; every input is sent to its own
/// reducer and to the b reducers at distance 1. Finds all pairs at distance
/// in [1, d] for d in {1, 2}; replication rate is b + 1 independent of the
/// data. Each pair is emitted by exactly one canonical center.
///
/// Requires 1 <= d <= 2. `strings` must be distinct.
common::Result<SimilarityJoinResult> BallSimilarityJoin(
    const std::vector<BitString>& strings, int b, int d,
    const engine::JobOptions& options = {});

/// Serial O(N^2) baseline for verification: all pairs at distance in
/// [1, d], u < v, sorted.
std::vector<std::pair<BitString, BitString>> SerialSimilarityJoin(
    const std::vector<BitString>& strings, int d);

}  // namespace mrcost::hamming

#endif  // MRCOST_HAMMING_SIMILARITY_JOIN_H_
