#include "src/hamming/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/common/bit_util.h"
#include "src/common/combinatorics.h"
#include "src/hamming/schemas.h"

namespace mrcost::hamming {
namespace {

using Pair = std::pair<BitString, BitString>;

/// Indexes of the segments (of `k` total, length b/k each) where u and v
/// differ, ascending.
std::vector<int> DifferingSegments(BitString u, BitString v, int b, int k) {
  const int seg = b / k;
  std::vector<int> out;
  const BitString diff = u ^ v;
  for (int s = 0; s < k; ++s) {
    if (common::ExtractBits(diff, s * seg, seg) != 0) out.push_back(s);
  }
  return out;
}

/// The canonical deleted-segment set for a pair with differing segments
/// `diff_segs`: pad with the smallest segment indexes not already present
/// until the set has size d. This is the lexicographically least d-superset
/// of diff_segs, so exactly one reducer emits each pair.
std::vector<int> CanonicalSubset(const std::vector<int>& diff_segs, int k,
                                 int d) {
  std::vector<int> subset = diff_segs;
  std::vector<bool> used(k, false);
  for (int s : subset) used[s] = true;
  for (int v = 0; v < k && static_cast<int>(subset.size()) < d; ++v) {
    if (!used[v]) subset.push_back(v);
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

void SortPairs(std::vector<Pair>& pairs) {
  std::sort(pairs.begin(), pairs.end());
}

/// Builds a plan, executes it with the caller's round options, and sorts.
common::Result<SimilarityJoinResult> ExecuteJoinPlan(
    common::Result<SimilarityJoinPlan> plan,
    const engine::JobOptions& options) {
  if (!plan.ok()) return plan.status();
  auto run = plan->pairs.Execute(engine::ExecutionOptions(options));
  SortPairs(run.outputs);
  return SimilarityJoinResult{std::move(run.outputs),
                              std::move(run.metrics.rounds[0])};
}

}  // namespace

common::Result<SimilarityJoinPlan> BuildSplittingSimilarityJoinPlan(
    const std::vector<BitString>& strings, int b, int k, int d) {
  auto schema = SplittingDistanceDSchema::Make(b, k, d);
  if (!schema.ok()) return schema.status();
  // The map closure outlives this function (the plan is lazy), so the
  // schema is owned by shared_ptr rather than captured by reference.
  auto s = std::make_shared<SplittingDistanceDSchema>(std::move(*schema));

  // Key = reducer id (deleted-subset rank in the high bits, residual bits
  // below); value = the original string. Each string fans out to C(k,d)
  // reducers, so the emissions are collected in a reused thread-local
  // batch and handed over in one EmitBatch call.
  auto map_fn = [s](const BitString& w,
                    engine::Emitter<std::uint64_t, BitString>& emitter) {
    static thread_local engine::Emitter<std::uint64_t, BitString>::Batch
        batch;
    common::ForEachSubsetOfSize(
        s->k(), s->d(), [&](const std::vector<int>& subset) {
          batch.emplace_back(s->ReducerFor(w, subset), w);
        });
    emitter.EmitBatch(batch);
  };

  const int residual_bits = b - d * (b / k);
  auto reduce_fn = [b, k, d, residual_bits](
                       const std::uint64_t& key,
                       const std::vector<BitString>& values,
                       std::vector<Pair>& out) {
    const std::uint64_t rank = key >> residual_bits;
    const std::vector<int> subset = common::CombinationUnrank(k, d, rank);
    for (std::size_t i = 0; i < values.size(); ++i) {
      for (std::size_t j = i + 1; j < values.size(); ++j) {
        const BitString u = std::min(values[i], values[j]);
        const BitString v = std::max(values[i], values[j]);
        const int dist = HammingDistance(u, v);
        if (dist < 1 || dist > d) continue;
        // Emit only from the canonical reducer for this pair.
        if (CanonicalSubset(DifferingSegments(u, v, b, k), k, d) == subset) {
          out.emplace_back(u, v);
        }
      }
    }
  };

  // Section 3.6's exact schema geometry, declared so Estimate needs no
  // sampling: every string goes to C(k,d) reducers, of C(k,d) * 2^residual
  // possible; on the full domain every reducer holds exactly 2^(d*b/k)
  // strings, so the mean load is the max.
  engine::StageEstimate estimate;
  estimate.replication = common::BinomialDouble(k, d);
  estimate.num_reducers =
      common::BinomialDouble(k, d) * std::ldexp(1.0, residual_bits);

  engine::Plan plan;
  auto pairs =
      plan.Source(strings, "bit strings")
          .Map<std::uint64_t, BitString>(map_fn, "splitting fan-out")
          .WithEstimate(estimate)
          .ReduceByKey<Pair>(reduce_fn);
  return SimilarityJoinPlan{std::move(plan), std::move(pairs)};
}

common::Result<SimilarityJoinResult> SplittingSimilarityJoin(
    const std::vector<BitString>& strings, int b, int k, int d,
    const engine::JobOptions& options) {
  return ExecuteJoinPlan(BuildSplittingSimilarityJoinPlan(strings, b, k, d),
                         options);
}

common::Result<SimilarityJoinPlan> BuildBallSimilarityJoinPlan(
    const std::vector<BitString>& strings, int b, int d) {
  if (d < 1 || d > 2) {
    return common::Status::InvalidArgument(
        "BallSimilarityJoin: only d in {1,2} is supported");
  }
  if (b < 1 || b > 32) {
    return common::Status::InvalidArgument("BallSimilarityJoin: 1<=b<=32");
  }

  // Key = center string; value = original string (center itself included so
  // distance-1 pairs are covered; see Section 3.6 discussion). The b + 1
  // emissions per string go through the batched path.
  auto map_fn = [b](const BitString& w,
                    engine::Emitter<BitString, BitString>& emitter) {
    static thread_local engine::Emitter<BitString, BitString>::Batch batch;
    batch.emplace_back(w, w);
    for (int i = 0; i < b; ++i) {
      batch.emplace_back(w ^ (BitString{1} << i), w);
    }
    emitter.EmitBatch(batch);
  };

  auto reduce_fn = [d](const BitString& center,
                       const std::vector<BitString>& values,
                       std::vector<Pair>& out) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      for (std::size_t j = i + 1; j < values.size(); ++j) {
        const BitString u = std::min(values[i], values[j]);
        const BitString v = std::max(values[i], values[j]);
        const int dist = HammingDistance(u, v);
        if (dist < 1 || dist > d) continue;
        // Canonical center: for a distance-1 pair the smaller endpoint; for
        // a distance-2 pair the smaller endpoint with its lowest differing
        // bit flipped (one of the exactly two centers seeing both).
        BitString canonical;
        if (dist == 1) {
          canonical = u;
        } else {
          const int low_bit = common::CountTrailingZeros(u ^ v);
          canonical = u ^ (BitString{1} << low_bit);
        }
        if (center == canonical) out.emplace_back(u, v);
      }
    }
  };

  // r = b + 1 independent of the data (the Ball-2 signature); how many
  // distinct centers the strings touch is data-dependent, left to
  // sampling.
  engine::StageEstimate estimate;
  estimate.replication = static_cast<double>(b) + 1.0;

  engine::Plan plan;
  auto pairs = plan.Source(strings, "bit strings")
                   .Map<BitString, BitString>(map_fn, "ball-2 fan-out")
                   .WithEstimate(estimate)
                   .ReduceByKey<Pair>(reduce_fn);
  return SimilarityJoinPlan{std::move(plan), std::move(pairs)};
}

common::Result<SimilarityJoinResult> BallSimilarityJoin(
    const std::vector<BitString>& strings, int b, int d,
    const engine::JobOptions& options) {
  return ExecuteJoinPlan(BuildBallSimilarityJoinPlan(strings, b, d), options);
}

std::vector<std::pair<BitString, BitString>> SerialSimilarityJoin(
    const std::vector<BitString>& strings, int d) {
  std::vector<Pair> out;
  for (std::size_t i = 0; i < strings.size(); ++i) {
    for (std::size_t j = i + 1; j < strings.size(); ++j) {
      const int dist = HammingDistance(strings[i], strings[j]);
      if (dist >= 1 && dist <= d) {
        out.emplace_back(std::min(strings[i], strings[j]),
                         std::max(strings[i], strings[j]));
      }
    }
  }
  SortPairs(out);
  return out;
}

}  // namespace mrcost::hamming
