#include "src/hamming/bounds.h"

#include <cmath>

#include "src/common/status.h"

namespace mrcost::hamming {

double Hamming1CoverBound(double q) {
  if (q <= 1.0) return 0.0;
  return (q / 2.0) * std::log2(q);
}

core::Recipe Hamming1Recipe(int b) {
  core::Recipe recipe;
  recipe.problem_name = "hamming-distance-1";
  recipe.g = [](double q) { return Hamming1CoverBound(q); };
  recipe.num_inputs = std::ldexp(1.0, b);            // 2^b
  recipe.num_outputs = (b / 2.0) * std::ldexp(1.0, b);  // (b/2) 2^b
  return recipe;
}

double Hamming1LowerBound(int b, double q) {
  MRCOST_CHECK(q > 1.0);
  return static_cast<double>(b) / std::log2(q);
}

double Weight2DCellEstimate(int b, int k) {
  return static_cast<double>(k) * k * std::ldexp(1.0, b) / (M_PI * b);
}

double WeightKDCellEstimate(int b, int d, int k) {
  const double kd = std::pow(static_cast<double>(k), d);
  const double denom = std::pow(static_cast<double>(b), d / 2.0) *
                       std::pow(2.0 * M_PI / d, d / 2.0);
  return kd * std::ldexp(1.0, b) / denom;
}

double SplittingDistanceDReplicationEstimate(int k, int d) {
  return std::pow(M_E * k / d, d);
}

}  // namespace mrcost::hamming
