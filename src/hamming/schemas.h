#ifndef MRCOST_HAMMING_SCHEMAS_H_
#define MRCOST_HAMMING_SCHEMAS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/mapping_schema.h"
#include "src/hamming/bitstring.h"

namespace mrcost::hamming {

/// The q=2 extreme of Section 3.3: one reducer per unordered pair of strings
/// at Hamming distance 1. Replication rate is exactly b (the lower bound
/// b/log2(2)). Reducer ids are u*b + i for the pair {u, u ^ (1<<i)} with bit
/// i of u clear; ids whose bit is set are unused (and receive no input).
class PairsSchema final : public core::MappingSchema {
 public:
  explicit PairsSchema(int b);

  std::string name() const override { return "hamming1-pairs"; }
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

 private:
  int b_;
};

/// The q=2^b extreme: a single reducer receives everything; r = 1.
class SingleReducerSchema final : public core::MappingSchema {
 public:
  explicit SingleReducerSchema(std::uint64_t num_inputs);

  std::string name() const override { return "single-reducer"; }
  std::uint64_t num_reducers() const override { return 1; }
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override {
    (void)input;
    return {0};
  }

 private:
  std::uint64_t num_inputs_;
};

/// The Splitting Algorithm of Section 3.3 generalized to c segments:
/// bit strings of length b are split into c segments of b/c bits; Group-i
/// reducers are indexed by the string with segment i deleted. Each input
/// goes to exactly c reducers (r = c), each reducer receives q = 2^{b/c}
/// inputs, matching the lower bound b/log2(q) = c exactly.
class SplittingSchema final : public core::MappingSchema {
 public:
  /// Requires 1 <= c <= b and c | b.
  static common::Result<SplittingSchema> Make(int b, int c);

  std::string name() const override;
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

  int b() const { return b_; }
  int c() const { return c_; }
  /// Reducer size: every reducer receives exactly 2^{b/c} inputs.
  std::uint64_t reducer_size() const { return std::uint64_t{1} << (b_ / c_); }

 private:
  SplittingSchema(int b, int c) : b_(b), c_(c) {}
  int b_;
  int c_;
};

/// Generalization of the Splitting Algorithm to segment counts c that do
/// not divide b: the b bits are cut into c segments of length floor(b/c)
/// or ceil(b/c) (the b mod c leading segments are one bit longer). The
/// covering argument of Section 3.3 is unchanged — a distance-1 pair
/// differs in exactly one segment — so r = c with reducer size
/// q = 2^{ceil(b/c)}, filling in the gaps between the paper's divisor-only
/// points on the Figure 1 hyperbola (within one bit of optimal).
class UnevenSplittingSchema final : public core::MappingSchema {
 public:
  /// Requires 1 <= c <= b <= 32.
  static common::Result<UnevenSplittingSchema> Make(int b, int c);

  std::string name() const override;
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

  int b() const { return b_; }
  int c() const { return c_; }
  /// Max reducer size: 2^{ceil(b/c)}.
  std::uint64_t reducer_size() const {
    return std::uint64_t{1} << ((b_ + c_ - 1) / c_);
  }
  /// Start bit position of segment i (segments ordered low to high).
  int SegmentStart(int i) const;
  /// Length in bits of segment i.
  int SegmentLength(int i) const;

 private:
  UnevenSplittingSchema(int b, int c) : b_(b), c_(c) {}
  int b_;
  int c_;
};

/// The large-q algorithm of Section 3.4: split strings into left/right
/// halves of b/2 bits and bucket by (left weight, right weight) into cells
/// of side k. Strings whose half-weight is the lowest of its group are
/// additionally replicated to the neighboring lower cell, giving
/// r ~= 1 + 2/k with q ~= k^2 2^b / (pi b) (the most populous cell).
class Weight2DSchema final : public core::MappingSchema {
 public:
  /// Requires b even and k | (b/2), k >= 1.
  static common::Result<Weight2DSchema> Make(int b, int k);

  std::string name() const override;
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

  int num_groups() const { return groups_; }

 private:
  Weight2DSchema(int b, int k, int groups)
      : b_(b), k_(k), groups_(groups) {}
  int b_;
  int k_;
  int groups_;  // b/(2k); the last group also takes weight b/2
};

/// Section 3.5: the d-dimensional generalization of Weight2DSchema. Strings
/// are split into d pieces of b/d bits; each piece's weight selects a cell
/// coordinate; lower-border strings are replicated one cell down per
/// dimension, giving r ~= 1 + d/k.
class WeightKDSchema final : public core::MappingSchema {
 public:
  /// Requires d | b and k | (b/d), d >= 1, k >= 1.
  static common::Result<WeightKDSchema> Make(int b, int d, int k);

  std::string name() const override;
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

  int num_groups_per_dim() const { return groups_; }

 private:
  WeightKDSchema(int b, int d, int k, int groups)
      : b_(b), d_(d), k_(k), groups_(groups) {}
  int b_;
  int d_;
  int k_;
  int groups_;
};

/// The Ball-2 algorithm of Section 3.6 (from [3]): one reducer per length-b
/// string s; input w is sent to the reducers of every string at distance 1
/// from w (and to its own reducer when `include_center`, which additionally
/// covers distance-1 pairs). Covers all pairs at Hamming distance 2 with
/// q = b (+1) and r = b (+1); each reducer covers Theta(q^2) outputs, the
/// reason the Section 3.1 style lower-bound argument fails for distance 2.
class BallSchema final : public core::MappingSchema {
 public:
  BallSchema(int b, bool include_center);

  std::string name() const override;
  std::uint64_t num_reducers() const override {
    return std::uint64_t{1} << b_;
  }
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

 private:
  int b_;
  bool include_center_;
};

/// The distance-d Splitting generalization of Section 3.6: strings are cut
/// into k segments; a reducer corresponds to a choice of d segments to
/// delete plus the remaining b(1 - d/k) bits. Each input goes to C(k,d)
/// reducers; every pair at distance <= d (hence exactly d) shares one.
/// q = 2^{bd/k}, r = C(k,d) ~= (ek/d)^d.
class SplittingDistanceDSchema final : public core::MappingSchema {
 public:
  /// Requires k | b and 1 <= d < k.
  static common::Result<SplittingDistanceDSchema> Make(int b, int k, int d);

  std::string name() const override;
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

  int b() const { return b_; }
  int k() const { return k_; }
  int d() const { return d_; }
  std::uint64_t replication() const;  // C(k, d)

  /// Key construction shared with the similarity join: the reducer id for
  /// string `w` and deleted-segment subset `subset` (sorted ascending).
  core::ReducerId ReducerFor(BitString w,
                             const std::vector<int>& subset) const;

 private:
  SplittingDistanceDSchema(int b, int k, int d) : b_(b), k_(k), d_(d) {}
  int b_;
  int k_;
  int d_;
};

namespace internal {

/// Weight grouping shared by the Section 3.4/3.5 schemas: weights
/// 0..(k*groups) map to `groups` consecutive ranges of k weights, with the
/// top weight (== k*groups) folded into the last group.
int WeightGroup(int weight, int k, int groups);

/// True iff `weight` is the lowest weight of its group (and therefore needs
/// replication to the lower neighbor when one exists).
bool IsLowestInGroup(int weight, int k, int groups);

}  // namespace internal

}  // namespace mrcost::hamming

#endif  // MRCOST_HAMMING_SCHEMAS_H_
